package mmdr

// Public-API and persistence lockdowns for the quantized scan path: a model
// with a trained quantizer round-trips through Save/Load bit-identically
// (codebooks are exported state; the table-offset cache is rebuilt, the same
// discipline as the subspace kernel caches), and indexes built from either
// side of the round-trip answer KNNQuantized identically.

import (
	"bytes"
	"testing"

	"mmdr/internal/datagen"
)

func quantModel(t *testing.T) *Model {
	t.Helper()
	cfg := datagen.CorrelatedConfig{
		N: 900, Dim: 16, NumClusters: 3, SDim: 2, VarRatio: 20, Seed: 53,
	}
	ds, _, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	datagen.Normalize(ds)
	model, err := ReduceDataset(ds, WithSeed(53))
	if err != nil {
		t.Fatal(err)
	}
	if err := model.TrainQuantizer(QuantizeConfig{Blocks: 4, Bits: 5}); err != nil {
		t.Fatal(err)
	}
	return model
}

func TestTrainQuantizerAndQuery(t *testing.T) {
	model := quantModel(t)
	if !model.HasQuantizer() {
		t.Fatal("TrainQuantizer succeeded but HasQuantizer is false")
	}
	// Blocks clamps to each partition's dimensionality (the fixture's
	// subspaces retain 2 dims), so the code size is bounded by the config,
	// not equal to it.
	if cb := model.CodeBytesPerVector(); cb < 1 || cb > 4 {
		t.Fatalf("CodeBytesPerVector = %d, want within [1,4]", cb)
	}
	idx, err := model.NewIndex()
	if err != nil {
		t.Fatal(err)
	}
	q := model.Point(7)
	got, err := idx.KNNQuantized(q, 10, model.N())
	if err != nil {
		t.Fatal(err)
	}
	// Full budget keeps every scanned candidate: exact answers, bitwise.
	want := idx.KNN(q, 10)
	if len(got) != len(want) {
		t.Fatalf("%d results, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rank %d: quantized full-budget %v, exact %v", i, got[i], want[i])
		}
	}

	// The seq-scan baseline has no quantized path.
	if _, err := model.NewSeqScan().KNNQuantized(q, 10, 100); err == nil {
		t.Fatal("seq-scan KNNQuantized should error")
	}
}

func TestBatchKNNQuantizedPublicAPI(t *testing.T) {
	model := quantModel(t)
	idx, err := model.NewIndex()
	if err != nil {
		t.Fatal(err)
	}
	const nq, k, budget = 9, 10, 80
	queries := make([]float64, 0, nq*model.Dim())
	for i := 0; i < nq; i++ {
		queries = append(queries, model.Point(i*13)...)
	}
	batch, err := idx.BatchKNNQuantized(queries, k, budget)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != nq {
		t.Fatalf("%d batch results, want %d", len(batch), nq)
	}
	for i := 0; i < nq; i++ {
		solo, err := idx.KNNQuantized(queries[i*model.Dim():(i+1)*model.Dim()], k, budget)
		if err != nil {
			t.Fatal(err)
		}
		for r := range solo {
			if batch[i][r] != solo[r] {
				t.Fatalf("query %d rank %d: batch %v, solo %v", i, r, batch[i][r], solo[r])
			}
		}
	}

	// Concurrent wrapper: same answers under the read lock.
	c := Concurrent(idx)
	cb, err := c.BatchKNNQuantized(queries, k, budget)
	if err != nil {
		t.Fatal(err)
	}
	for i := range batch {
		for r := range batch[i] {
			if cb[i][r] != batch[i][r] {
				t.Fatalf("concurrent batch diverged at query %d rank %d", i, r)
			}
		}
	}
	if _, err := c.KNNQuantized(model.Point(0), k, budget); err != nil {
		t.Fatal(err)
	}
}

func TestQuantizerRoundTrip(t *testing.T) {
	model := quantModel(t)
	var buf bytes.Buffer
	if err := model.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.HasQuantizer() {
		t.Fatal("quantizer lost across Save/Load")
	}
	if got, want := loaded.CodeBytesPerVector(), model.CodeBytesPerVector(); got != want {
		t.Fatalf("CodeBytesPerVector = %d after load, want %d", got, want)
	}

	// Codebooks are bit-identical field by field.
	for bi, orig := range model.quant.Books {
		got := loaded.quant.Books[bi]
		if (orig == nil) != (got == nil) {
			t.Fatalf("book %d presence changed across load", bi)
		}
		if orig == nil {
			continue
		}
		if got.Dim != orig.Dim || got.M != orig.M || got.K != orig.K {
			t.Fatalf("book %d shape changed: (%d,%d,%d) vs (%d,%d,%d)",
				bi, got.Dim, got.M, got.K, orig.Dim, orig.M, orig.K)
		}
		for i := range orig.Centroids {
			if got.Centroids[i] != orig.Centroids[i] {
				t.Fatalf("book %d centroid[%d] = %v after load, want %v",
					bi, i, got.Centroids[i], orig.Centroids[i])
			}
		}
	}

	// Indexes built before and after the round-trip answer identically.
	idx, err := model.NewIndex()
	if err != nil {
		t.Fatal(err)
	}
	lidx, err := loaded.NewIndex()
	if err != nil {
		t.Fatal(err)
	}
	for _, qi := range []int{0, 101, 555} {
		q := model.Point(qi)
		a, err := idx.KNNQuantized(q, 10, 80)
		if err != nil {
			t.Fatal(err)
		}
		b, err := lidx.KNNQuantized(q, 10, 80)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("query %d: %d vs %d results across load", qi, len(a), len(b))
		}
		for r := range a {
			if a[r] != b[r] {
				t.Fatalf("query %d rank %d: %v before save, %v after load", qi, r, a[r], b[r])
			}
		}
	}
}

func TestLoadWithoutQuantizerStaysNil(t *testing.T) {
	cfg := datagen.CorrelatedConfig{N: 400, Dim: 12, NumClusters: 2, SDim: 2, VarRatio: 20, Seed: 59}
	ds, _, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	datagen.Normalize(ds)
	model, err := ReduceDataset(ds, WithSeed(59))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := model.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.HasQuantizer() {
		t.Fatal("model without a quantizer grew one across Save/Load")
	}
	idx, err := loaded.NewIndex()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := idx.KNNQuantized(ds.Point(0), 5, 50); err == nil {
		t.Fatal("KNNQuantized without a trained quantizer should error")
	}
}
