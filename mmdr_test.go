package mmdr_test

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"mmdr"
	"mmdr/internal/datagen"
	"mmdr/internal/matrix"
)

// testData builds a normalized locally-correlated dataset and returns its
// flat storage plus dimensionality.
func testData(t *testing.T, n, dim, clusters int, seed int64) ([]float64, int) {
	t.Helper()
	cfg := datagen.CorrelatedConfig{
		N: n, Dim: dim, NumClusters: clusters, SDim: 3,
		VarRatio: 25, ScaleDecay: 0.8, Seed: seed,
	}
	ds, _, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	datagen.Normalize(ds)
	return ds.Data, ds.Dim
}

func TestReduceAndQueryEndToEnd(t *testing.T) {
	data, dim := testData(t, 1200, 16, 3, 201)
	model, err := mmdr.Reduce(data, dim, mmdr.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if model.Method() != "MMDR" {
		t.Fatalf("method %q", model.Method())
	}
	if model.N() != 1200 || model.Dim() != 16 {
		t.Fatalf("shape %dx%d", model.N(), model.Dim())
	}
	if err := model.Validate(); err != nil {
		t.Fatal(err)
	}
	subs := model.Subspaces()
	if len(subs) == 0 {
		t.Fatal("no subspaces")
	}
	for _, s := range subs {
		if s.Dim <= 0 || s.Points <= 0 {
			t.Fatalf("bad subspace %+v", s)
		}
	}
	if ad := model.AvgDim(); ad <= 0 || ad > 16 {
		t.Fatalf("AvgDim %v", ad)
	}

	idx, err := model.NewIndex()
	if err != nil {
		t.Fatal(err)
	}
	q := data[:dim]
	res := idx.KNN(q, 10)
	if len(res) != 10 {
		t.Fatalf("%d results", len(res))
	}
	if res[0].ID != 0 || res[0].Dist > 1e-9 {
		t.Fatalf("query point should be its own 1-NN: %+v", res[0])
	}

	// Sequential scan over the same model returns the same answers.
	scan := model.NewSeqScan()
	want := scan.KNN(q, 10)
	for i := range want {
		if math.Abs(res[i].Dist-want[i].Dist) > 1e-9 {
			t.Fatalf("rank %d: %v vs %v", i, res[i].Dist, want[i].Dist)
		}
	}
}

func TestReduceValidation(t *testing.T) {
	if _, err := mmdr.Reduce(nil, 4); err == nil {
		t.Fatal("expected error for empty data")
	}
	if _, err := mmdr.Reduce([]float64{1, 2, 3}, 2); err == nil {
		t.Fatal("expected error for ragged data")
	}
}

func TestAllMethods(t *testing.T) {
	data, dim := testData(t, 800, 12, 2, 202)
	for _, m := range []mmdr.Method{
		mmdr.MethodMMDR, mmdr.MethodMMDRScalable, mmdr.MethodLDR, mmdr.MethodGDR,
	} {
		model, err := mmdr.Reduce(data, dim, mmdr.WithMethod(m), mmdr.WithSeed(2))
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if err := model.Validate(); err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		idx, err := model.NewIndex()
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if res := idx.KNN(data[:dim], 5); len(res) != 5 {
			t.Fatalf("%v: %d results", m, len(res))
		}
	}
}

func TestMethodString(t *testing.T) {
	if mmdr.MethodMMDR.String() != "MMDR" || mmdr.MethodGDR.String() != "GDR" ||
		mmdr.MethodLDR.String() != "LDR" || mmdr.MethodMMDRScalable.String() != "MMDR-scalable" {
		t.Fatal("method names")
	}
	if mmdr.Method(99).String() == "" {
		t.Fatal("unknown method should still render")
	}
}

func TestForcedDimOption(t *testing.T) {
	data, dim := testData(t, 700, 12, 2, 203)
	model, err := mmdr.Reduce(data, dim, mmdr.WithSeed(3), mmdr.WithForcedDim(5))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range model.Subspaces() {
		if s.Dim != 5 {
			t.Fatalf("forced dim violated: %d", s.Dim)
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	data, dim := testData(t, 900, 12, 2, 204)
	model, err := mmdr.Reduce(data, dim, mmdr.WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := model.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := mmdr.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.N() != model.N() || loaded.Dim() != model.Dim() || loaded.Method() != model.Method() {
		t.Fatal("metadata mismatch after load")
	}
	// Queries against the loaded model match the original exactly.
	origIdx, err := model.NewIndex()
	if err != nil {
		t.Fatal(err)
	}
	loadIdx, err := loaded.NewIndex()
	if err != nil {
		t.Fatal(err)
	}
	q := data[5*dim : 6*dim]
	a := origIdx.KNN(q, 10)
	b := loadIdx.KNN(q, 10)
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Dist != b[i].Dist {
			t.Fatalf("rank %d differs after reload", i)
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := mmdr.Load(bytes.NewReader([]byte("not a model"))); err == nil {
		t.Fatal("expected decode error")
	}
}

func TestDynamicInsert(t *testing.T) {
	data, dim := testData(t, 800, 12, 2, 205)
	model, err := mmdr.Reduce(data, dim, mmdr.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	idx, err := model.NewIndex()
	if err != nil {
		t.Fatal(err)
	}
	p := make([]float64, dim)
	copy(p, data[:dim])
	p[0] += 1e-4
	id, err := idx.Insert(p)
	if err != nil {
		t.Fatal(err)
	}
	res := idx.KNN(p, 1)
	if len(res) != 1 || res[0].ID != id {
		t.Fatalf("inserted point not retrievable: %+v", res)
	}
	// Sequential-scan indexes do not support insertion.
	scan := model.NewSeqScan()
	if _, err := scan.Insert(p); err == nil {
		t.Fatal("expected insert error on seq-scan")
	}
}

func TestCostCounter(t *testing.T) {
	data, dim := testData(t, 800, 12, 2, 206)
	var ctr mmdr.CostCounter
	model, err := mmdr.Reduce(data, dim, mmdr.WithSeed(6), mmdr.WithCostCounter(&ctr))
	if err != nil {
		t.Fatal(err)
	}
	if ctr.Distances() == 0 {
		t.Fatal("reduction counted no distance ops")
	}
	ctr.Reset()
	idx, err := model.NewIndex(mmdr.WithCostCounter(&ctr))
	if err != nil {
		t.Fatal(err)
	}
	ctr.Reset()
	idx.KNN(data[:dim], 10)
	if ctr.PageIO() == 0 {
		t.Fatal("query counted no page IO")
	}
}

func TestOptionKnobs(t *testing.T) {
	data, dim := testData(t, 700, 12, 2, 207)
	model, err := mmdr.Reduce(data, dim,
		mmdr.WithSeed(7),
		mmdr.WithMaxClusters(4),
		mmdr.WithMaxDim(6),
		mmdr.WithBeta(0.2),
		mmdr.WithOutlierBudget(0.01),
		mmdr.WithStreamFraction(0.1),
		mmdr.WithPageSize(4096),
	)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range model.Subspaces() {
		if s.Dim > 6 {
			t.Fatalf("MaxDim violated: %d", s.Dim)
		}
	}
	if _, err := model.NewIndex(); err != nil {
		t.Fatal(err)
	}
}

func TestRangeAndDelete(t *testing.T) {
	data, dim := testData(t, 800, 12, 2, 208)
	model, err := mmdr.Reduce(data, dim, mmdr.WithSeed(8))
	if err != nil {
		t.Fatal(err)
	}
	idx, err := model.NewIndex()
	if err != nil {
		t.Fatal(err)
	}
	q := model.Point(3)
	res, err := idx.Range(q, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 || res[0].ID != 3 {
		t.Fatalf("range around a data point should contain it: %+v", res)
	}
	for _, n := range res {
		if n.Dist > 0.05 {
			t.Fatalf("range result outside radius: %v", n.Dist)
		}
	}
	ok, err := idx.Delete(3)
	if err != nil || !ok {
		t.Fatalf("Delete: %v %v", ok, err)
	}
	res, err = idx.Range(q, 0.0)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range res {
		if n.ID == 3 {
			t.Fatal("deleted point still in range results")
		}
	}
	// Seq-scan indexes reject maintenance operations.
	scan := model.NewSeqScan()
	if _, err := scan.Range(q, 0.1); err == nil {
		t.Fatal("expected range error on seq-scan")
	}
	if _, err := scan.Delete(1); err == nil {
		t.Fatal("expected delete error on seq-scan")
	}
}

func TestIndexStats(t *testing.T) {
	data, dim := testData(t, 700, 12, 2, 210)
	model, err := mmdr.Reduce(data, dim, mmdr.WithSeed(10))
	if err != nil {
		t.Fatal(err)
	}
	idx, err := model.NewIndex()
	if err != nil {
		t.Fatal(err)
	}
	st := idx.Stats()
	if st.Points != 700 || st.Partitions == 0 || st.TreeHeight < 1 || st.LeafPages < 1 || st.C <= 0 {
		t.Fatalf("implausible stats %+v", st)
	}
	if model.NewSeqScan().Stats().Points != 0 {
		t.Fatal("seq-scan stats should be zero")
	}
}

func TestReconstructAndCompression(t *testing.T) {
	data, dim := testData(t, 900, 16, 2, 211)
	model, err := mmdr.Reduce(data, dim, mmdr.WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	// Reconstruction error of each member equals its projection distance,
	// which the β threshold bounds (modulo the ξ eviction cap).
	var worst float64
	for i := 0; i < 50; i++ {
		rec, err := model.ReconstructPoint(i)
		if err != nil {
			t.Fatal(err)
		}
		orig := model.Point(i)
		var d2 float64
		for j := range orig {
			diff := rec[j] - orig[j]
			d2 += diff * diff
		}
		if d := math.Sqrt(d2); d > worst {
			worst = d
		}
	}
	if worst > 0.5 {
		t.Fatalf("reconstruction error %v too large", worst)
	}
	if _, err := model.ReconstructPoint(-1); err == nil {
		t.Fatal("expected range error")
	}
	if cr := model.CompressionRatio(); cr < 1.5 {
		t.Fatalf("compression ratio %v; locally 3-d data in 16 dims should compress", cr)
	}
}

func TestAnomalyScore(t *testing.T) {
	data, dim := testData(t, 900, 16, 2, 212)
	model, err := mmdr.Reduce(data, dim, mmdr.WithSeed(12))
	if err != nil {
		t.Fatal(err)
	}
	// A subspace member scores near zero; a far random point scores high.
	member := model.Point(0)
	far := make([]float64, dim)
	for i := range far {
		far[i] = 5
	}
	ms := model.AnomalyScore(member)
	fs := model.AnomalyScore(far)
	if ms > 0.15 {
		t.Fatalf("member anomaly score %v too high", ms)
	}
	if fs < 10*ms || fs < 0.5 {
		t.Fatalf("far point score %v not clearly anomalous (member %v)", fs, ms)
	}
}

func TestMethodRawIsLossless(t *testing.T) {
	data, dim := testData(t, 600, 12, 2, 213)
	model, err := mmdr.Reduce(data, dim, mmdr.WithMethod(mmdr.MethodRaw), mmdr.WithSeed(13))
	if err != nil {
		t.Fatal(err)
	}
	if model.Method() != "identity" {
		t.Fatalf("method %q", model.Method())
	}
	queries := data[:10*dim]
	p, err := model.EvaluatePrecision(queries, 10)
	if err != nil {
		t.Fatal(err)
	}
	if p < 0.999 {
		t.Fatalf("raw method precision %v, want 1", p)
	}
}

// MMDR is rotation-equivariant: rotating the whole dataset by an
// orthonormal matrix must leave query precision essentially unchanged,
// because every ingredient (PCA, Mahalanobis distance, Euclidean KNN) is
// rotation-invariant. This exercises the entire pipeline end to end.
func TestRotationInvariance(t *testing.T) {
	data, dim := testData(t, 1000, 12, 3, 214)
	queries := append([]float64(nil), data[:25*dim]...)

	precision := func(d []float64, q []float64) float64 {
		model, err := mmdr.Reduce(append([]float64(nil), d...), dim, mmdr.WithSeed(14))
		if err != nil {
			t.Fatal(err)
		}
		p, err := model.EvaluatePrecision(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}

	rot := matrix.RandomOrthonormal(dim, rand.New(rand.NewSource(215)))
	rotate := func(src []float64) []float64 {
		out := make([]float64, len(src))
		for i := 0; i+dim <= len(src); i += dim {
			copy(out[i:i+dim], rot.MulVec(src[i:i+dim]))
		}
		return out
	}

	orig := precision(data, queries)
	rotated := precision(rotate(data), rotate(queries))
	if math.Abs(orig-rotated) > 0.1 {
		t.Fatalf("precision not rotation-invariant: %v vs %v", orig, rotated)
	}
	// The workload at this seed is hard (overlapping clusters); the test's
	// purpose is the invariance, not absolute precision.
	if orig < 0.2 {
		t.Fatalf("baseline precision %v unexpectedly low", orig)
	}
}

func TestRefitAfterInsertions(t *testing.T) {
	data, dim := testData(t, 800, 12, 2, 216)
	model, err := mmdr.Reduce(data, dim, mmdr.WithSeed(15))
	if err != nil {
		t.Fatal(err)
	}
	idx, err := model.NewIndex()
	if err != nil {
		t.Fatal(err)
	}
	// Insert a batch of far-off points that must land as outliers.
	for i := 0; i < 30; i++ {
		p := make([]float64, dim)
		for j := range p {
			p[j] = 3 + float64(i)*0.01
		}
		if _, err := idx.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	refit, err := model.Refit()
	if err != nil {
		t.Fatal(err)
	}
	if refit.N() != 830 {
		t.Fatalf("refit model covers %d points, want 830", refit.N())
	}
	if err := refit.Validate(); err != nil {
		t.Fatal(err)
	}
	// The refit model can discover the inserted blob as its own subspace or
	// keep it as outliers — either way it indexes everything.
	idx2, err := refit.NewIndex()
	if err != nil {
		t.Fatal(err)
	}
	q := make([]float64, dim)
	for j := range q {
		q[j] = 3
	}
	res := idx2.KNN(q, 5)
	if len(res) != 5 {
		t.Fatalf("%d results from refit index", len(res))
	}
}

func TestSaveFileErrors(t *testing.T) {
	data, dim := testData(t, 300, 8, 2, 217)
	model, err := mmdr.Reduce(data, dim, mmdr.WithSeed(16))
	if err != nil {
		t.Fatal(err)
	}
	if err := model.SaveFile("/nonexistent-dir/x.mmdr"); err == nil {
		t.Fatal("expected error for unwritable path")
	}
	if _, err := mmdr.LoadFile("/nonexistent-dir/x.mmdr"); err == nil {
		t.Fatal("expected error for missing file")
	}
}
