package mmdr

import (
	"fmt"
	"time"

	"mmdr/internal/idist"
	"mmdr/internal/iostat"
	"mmdr/internal/metrics"
	"mmdr/internal/obs"
)

// Tracer receives phase begin/end events and numeric attributes from every
// pipeline stage: reduction (per-recursion-level clustering, per-iteration
// elliptical k-means telemetry, dimensionality optimization, outlier
// separation) and index construction. A nil Tracer costs nothing — the hot
// paths skip all tracing work, allocation-free.
type Tracer = obs.Tracer

// Phase labels one traced pipeline stage.
type Phase = obs.Phase

// Pipeline phases, in the order the MMDR pipeline visits them.
const (
	// PhaseReduce spans one whole Reduce call.
	PhaseReduce = obs.PhaseReduce
	// PhaseGenerate spans one Generate Ellipsoid recursion level.
	PhaseGenerate = obs.PhaseGenerate
	// PhaseCluster spans one elliptical k-means run.
	PhaseCluster = obs.PhaseCluster
	// PhaseRestart spans one random restart inside a clustering run.
	PhaseRestart = obs.PhaseRestart
	// PhaseIteration marks one outer clustering pass (reassignments,
	// active-point counts, lookup-table hit rate ride along as attributes).
	PhaseIteration = obs.PhaseIteration
	// PhaseMerge spans the cross-level ellipsoid merge.
	PhaseMerge = obs.PhaseMerge
	// PhaseDimOpt spans Dimensionality Optimization.
	PhaseDimOpt = obs.PhaseDimOpt
	// PhaseOutliers spans β-threshold outlier separation.
	PhaseOutliers = obs.PhaseOutliers
	// PhaseStream spans one data stream of scalable MMDR.
	PhaseStream = obs.PhaseStream
	// PhaseLDR and PhaseGDR span the baseline reducers.
	PhaseLDR = obs.PhaseLDR
	PhaseGDR = obs.PhaseGDR
	// PhaseBuildIndex spans extended-iDistance construction.
	PhaseBuildIndex = obs.PhaseBuildIndex
)

// TraceCollector is a Tracer that records the span tree for later
// inspection: Spans for programmatic access, WriteTree for a rendered phase
// tree, MarshalJSON for export. Safe for concurrent use.
type TraceCollector = obs.Collector

// TraceSpan is one recorded phase with timing, attributes and children.
type TraceSpan = obs.Span

// NewTraceCollector returns an empty collector ready to pass to WithTracer.
func NewTraceCollector() *TraceCollector { return obs.NewCollector() }

// Metrics is a point-in-time snapshot of the library's logical cost model
// (page reads/writes, distance computations, key comparisons, node
// accesses). It marshals to JSON.
type Metrics = iostat.Counter

// WithTracer attaches a tracer to the pipeline. Multiple WithTracer /
// WithProgress options compose: every tracer sees every event.
func WithTracer(t Tracer) Option {
	return func(c *config) {
		c.tracer = obs.Multi(c.tracer, t)
		c.params.Tracer = c.tracer
	}
}

// WithProgress attaches a lightweight progress callback: fn is invoked at
// the end of every pipeline phase with the phase label and its wall-clock
// duration. For the full span tree (nesting, attributes) use WithTracer
// with a TraceCollector instead.
func WithProgress(fn func(phase Phase, elapsed time.Duration)) Option {
	if fn == nil {
		return func(*config) {}
	}
	return WithTracer(obs.OnPhase(fn))
}

// RuntimeMetrics is an allocation-free runtime metrics registry: per-
// operation latency histograms with exact-bucket p50/p90/p99/max, sharded
// counters, gauges, and a bounded slow-query log. Attach one to a pipeline
// with WithRuntimeMetrics (build phases + the built index) or to a live
// index with SetRuntimeMetrics, then read it via Snapshot (JSON-marshalable)
// or WritePrometheus (text exposition format).
//
// Tail-latency capture is automatic: once an operation has enough samples,
// queries slower than p99 × 4 are re-run through the tracing path and filed
// in the slow-query log together with their KNNTrace explain, rate-limited
// to one capture per 100ms. Pin the policy manually with
// Op(name).SetSlowPolicy.
type RuntimeMetrics = metrics.Registry

// RuntimeSnapshot is a point-in-time view of a RuntimeMetrics registry.
type RuntimeSnapshot = metrics.Snapshot

// SlowQuery is one captured tail-latency query, including its structured
// explain (Trace holds a *KNNTrace for KNN captures).
type SlowQuery = metrics.SlowQuery

// NewRuntimeMetrics returns an empty runtime metrics registry.
func NewRuntimeMetrics() *RuntimeMetrics { return metrics.NewRegistry() }

// WithRuntimeMetrics attaches a runtime metrics registry to the pipeline:
// every build phase records its duration as operation "build:<phase>", and
// indexes built from the model record per-operation query latencies into
// the same registry. The record path is allocation-free, so instrumented
// queries keep their allocation budgets.
func WithRuntimeMetrics(reg *RuntimeMetrics) Option {
	return func(c *config) {
		if reg == nil {
			return
		}
		c.metrics = reg
		c.tracer = obs.Multi(c.tracer, metrics.NewPhaseTracer(reg))
		c.params.Tracer = c.tracer
	}
}

// SetRuntimeMetrics attaches (or, with nil, detaches) a runtime metrics
// registry on a live index. Only the extended iDistance index records; the
// sequential-scan baseline ignores the call. Attach before serving — the
// swap is not synchronized with in-flight queries.
func (idx *Index) SetRuntimeMetrics(reg *RuntimeMetrics) {
	if idx.maint != nil {
		idx.maint.SetMetrics(reg)
	}
}

// SetRuntimeMetrics attaches a runtime metrics registry under the write
// lock, so it is safe to call while queries run through this wrapper.
func (c *ConcurrentIndex) SetRuntimeMetrics(reg *RuntimeMetrics) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.idx.SetRuntimeMetrics(reg)
}

// KNNTrace is the structured explain of one extended-iDistance KNN search:
// radius-enlargement rounds, final search radius, candidates examined,
// B⁺-tree leaf pages scanned, and one probe record per partition (subspace
// identity and dimensionality, query distance to the reference point, the
// key annulus scanned, candidates contributed, whether the partition was
// exhausted).
type KNNTrace = idist.QueryTrace

// PartitionProbe is the per-partition component of a KNNTrace.
type PartitionProbe = idist.PartitionProbe

// KNNTrace answers the k nearest neighbors of q exactly like KNN while also
// returning the structured explain of the search. Only the extended
// iDistance index supports tracing.
func (idx *Index) KNNTrace(q []float64, k int) ([]Neighbor, *KNNTrace, error) {
	if idx.maint == nil {
		return nil, nil, fmt.Errorf("mmdr: %s index does not support query tracing", idx.Name())
	}
	nb, tr := idx.maint.KNNTrace(q, k)
	return nb, tr, nil
}
