package pool

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(0); got != runtime.NumCPU() {
		t.Fatalf("Workers(0) = %d, want NumCPU %d", got, runtime.NumCPU())
	}
	if got := Workers(-3); got != runtime.NumCPU() {
		t.Fatalf("Workers(-3) = %d, want NumCPU %d", got, runtime.NumCPU())
	}
	if got := Workers(5); got != 5 {
		t.Fatalf("Workers(5) = %d", got)
	}
}

func TestRunCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 100} {
		const n = 257
		hits := make([]int32, n)
		Run(workers, n, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d hit %d times", workers, i, h)
			}
		}
	}
}

func TestRunSerialInline(t *testing.T) {
	// workers <= 1 must run in ascending order on the caller's goroutine.
	var order []int
	Run(1, 5, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("serial order %v", order)
		}
	}
	Run(4, 0, func(int) { t.Fatal("fn called for n=0") })
}

func TestChunksPartition(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7, 64} {
		for _, n := range []int{1, 2, 5, 16, 97} {
			covered := make([]int32, n)
			var chunks int32
			Chunks(workers, n, func(c, lo, hi int) {
				atomic.AddInt32(&chunks, 1)
				if lo >= hi {
					t.Errorf("workers=%d n=%d: empty chunk [%d,%d)", workers, n, lo, hi)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&covered[i], 1)
				}
			})
			if want := int32(NumChunks(workers, n)); chunks != want {
				t.Fatalf("workers=%d n=%d: %d chunks, want %d", workers, n, chunks, want)
			}
			for i, c := range covered {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d covered %d times", workers, n, i, c)
				}
			}
		}
	}
}

func TestChunkBoundsDeterministic(t *testing.T) {
	// Boundaries depend only on (workers, n): two invocations agree.
	record := func() [][2]int {
		var out [][2]int
		Chunks(1, 10, func(c, lo, hi int) { out = append(out, [2]int{lo, hi}) })
		return out
	}
	a, b := record(), record()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("chunk bounds changed between runs: %v vs %v", a, b)
		}
	}
}

func TestRunPanicPropagates(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("panic did not propagate")
		}
	}()
	Run(4, 16, func(i int) {
		if i == 7 {
			panic("boom")
		}
	})
}
