// Package pool provides the bounded worker-pool primitives the parallel
// MMDR pipeline is built on. Two shapes cover every hot path:
//
//   - Run fans n independent items out to a fixed number of workers with
//     dynamic (work-stealing) scheduling — right for uneven per-item work
//     such as per-cluster PCA or per-query KNN search.
//   - Chunks splits [0, n) into contiguous ranges, one goroutine each —
//     right for tight per-point loops where the caller keeps chunk-local
//     accumulators and reduces them in chunk order afterwards.
//
// Determinism contract: both helpers assign work purely by index, so a
// callback that writes only to slot i (or to its own chunk's accumulator)
// produces results independent of goroutine scheduling. Reductions the
// caller performs in index/chunk order are therefore reproducible across
// runs and across worker counts. With workers <= 1 the callbacks run inline
// on the caller's goroutine in ascending order — exactly the serial code
// path, byte for byte.
package pool

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a requested parallelism degree: values <= 0 select
// runtime.NumCPU(), anything else is returned unchanged.
func Workers(n int) int {
	if n <= 0 {
		return runtime.NumCPU()
	}
	return n
}

// Clamp bounds a resolved worker count by the number of work items so no
// goroutine starts with nothing to do.
func Clamp(workers, n int) int {
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// capturedPanic wraps a worker panic so the caller's goroutine can rethrow
// it with the original value visible.
type capturedPanic struct{ val any }

func (c capturedPanic) String() string { return fmt.Sprint(c.val) }

// Run invokes fn(i) for every i in [0, n) using at most workers
// goroutines. Items are handed out dynamically, so uneven work balances
// itself. When workers <= 1 or n <= 1 the calls run inline in ascending
// order (the serial path). A panic in any fn is re-raised on the caller's
// goroutine after all workers stop.
func Run(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers = Clamp(workers, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var panicked atomic.Pointer[capturedPanic]
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				if panicked.Load() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicked.CompareAndSwap(nil, &capturedPanic{val: r})
						}
					}()
					fn(i)
				}()
			}
		}()
	}
	wg.Wait()
	if p := panicked.Load(); p != nil {
		panic(p.val)
	}
}

// Chunks splits [0, n) into NumChunks(workers, n) contiguous ranges and
// invokes fn(chunk, lo, hi) for each, concurrently when workers > 1. Chunk
// boundaries depend only on (workers, n) — never on scheduling — so
// chunk-local accumulators reduced in chunk order are deterministic. With
// workers <= 1 the single chunk [0, n) runs inline on the caller's
// goroutine. Panics propagate like Run.
func Chunks(workers, n int, fn func(chunk, lo, hi int)) {
	if n <= 0 {
		return
	}
	chunks := NumChunks(workers, n)
	if chunks == 1 {
		fn(0, 0, n)
		return
	}
	Run(chunks, chunks, func(c int) {
		lo, hi := chunkBounds(c, chunks, n)
		fn(c, lo, hi)
	})
}

// NumChunks reports how many chunks Chunks will use for the given worker
// count and item count: min(workers, n), at least 1.
func NumChunks(workers, n int) int {
	return Clamp(workers, n)
}

// chunkBounds returns the half-open range of chunk c when n items are split
// into the given number of chunks as evenly as possible (the first n%chunks
// chunks get one extra item).
func chunkBounds(c, chunks, n int) (lo, hi int) {
	size := n / chunks
	rem := n % chunks
	lo = c*size + min(c, rem)
	hi = lo + size
	if c < rem {
		hi++
	}
	return lo, hi
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
