// Package iostat provides the logical cost model used by every index in the
// repository: counters for simulated disk-page accesses and for distance
// computations. The paper's evaluation (Figures 9 and 10) reports I/O in
// page accesses and CPU cost; on modern hardware wall clock alone would hide
// the structure, so all indexes report both logical counters and elapsed
// time.
//
// Two implementations share the Sink interface: Counter, a plain struct for
// single-goroutine measurement runs, and AtomicCounter, which is safe under
// the concurrent query path (ConcurrentIndex) at the cost of one atomic add
// per count.
package iostat

import (
	"encoding/json"
	"fmt"
)

// PageSize is the simulated disk page size in bytes, matching the common
// 8 KB configuration of the era's systems.
const PageSize = 8192

// Sink is the counting interface every cost producer (B⁺-tree, iDistance,
// sequential scan, elliptical k-means, …) writes to. All methods must
// tolerate concurrent callers for implementations documented as
// goroutine-safe; Counter is not, AtomicCounter is.
type Sink interface {
	CountPageReads(n int64)
	CountPageWrites(n int64)
	CountDistanceOps(n int64)
	CountKeyCompares(n int64)
	CountFloatOps(n int64)
	CountNodeAccesses(n int64)
	// Snapshot returns a point-in-time copy of the totals.
	Snapshot() Counter
}

// Counter accumulates logical costs. The zero value is ready to use. It is
// the single-goroutine implementation of Sink; use AtomicCounter when
// several goroutines count concurrently. All counting methods are nil-safe
// so a nil *Counter stored in a Sink variable degrades to a no-op instead
// of panicking.
type Counter struct {
	PageReads    int64 // simulated disk page reads
	PageWrites   int64 // simulated disk page writes
	DistanceOps  int64 // full distance computations (CPU proxy)
	KeyCompares  int64 // single-dimensional key comparisons in B+-trees
	FloatOps     int64 // optional finer-grained float-op estimate
	NodeAccesses int64 // tree nodes visited (incl. cached)
}

// Reset zeroes all counters.
func (c *Counter) Reset() { *c = Counter{} }

// Add accumulates other into c.
func (c *Counter) Add(other Counter) {
	c.PageReads += other.PageReads
	c.PageWrites += other.PageWrites
	c.DistanceOps += other.DistanceOps
	c.KeyCompares += other.KeyCompares
	c.FloatOps += other.FloatOps
	c.NodeAccesses += other.NodeAccesses
}

// CountPageReads implements Sink.
func (c *Counter) CountPageReads(n int64) {
	if c != nil {
		c.PageReads += n
	}
}

// CountPageWrites implements Sink.
func (c *Counter) CountPageWrites(n int64) {
	if c != nil {
		c.PageWrites += n
	}
}

// CountDistanceOps implements Sink.
func (c *Counter) CountDistanceOps(n int64) {
	if c != nil {
		c.DistanceOps += n
	}
}

// CountKeyCompares implements Sink.
func (c *Counter) CountKeyCompares(n int64) {
	if c != nil {
		c.KeyCompares += n
	}
}

// CountFloatOps implements Sink.
func (c *Counter) CountFloatOps(n int64) {
	if c != nil {
		c.FloatOps += n
	}
}

// CountNodeAccesses implements Sink.
func (c *Counter) CountNodeAccesses(n int64) {
	if c != nil {
		c.NodeAccesses += n
	}
}

// Snapshot implements Sink.
func (c *Counter) Snapshot() Counter {
	if c == nil {
		return Counter{}
	}
	return *c
}

// IO returns total simulated page I/O (reads + writes).
func (c *Counter) IO() int64 { return c.PageReads + c.PageWrites }

// String renders every counter for logs and tables.
func (c *Counter) String() string {
	return fmt.Sprintf("io=%d (reads=%d writes=%d) dist=%d keycmp=%d floatops=%d nodes=%d",
		c.IO(), c.PageReads, c.PageWrites, c.DistanceOps, c.KeyCompares, c.FloatOps, c.NodeAccesses)
}

// counterJSON is the export shape of a Counter snapshot; page_io duplicates
// reads+writes so dashboards need no arithmetic.
type counterJSON struct {
	PageIO       int64 `json:"page_io"`
	PageReads    int64 `json:"page_reads"`
	PageWrites   int64 `json:"page_writes"`
	DistanceOps  int64 `json:"distance_ops"`
	KeyCompares  int64 `json:"key_compares"`
	FloatOps     int64 `json:"float_ops"`
	NodeAccesses int64 `json:"node_accesses"`
}

// MarshalJSON exports the counter for snapshot files and the expvar
// endpoint.
func (c *Counter) MarshalJSON() ([]byte, error) {
	return json.Marshal(counterJSON{
		PageIO:       c.IO(),
		PageReads:    c.PageReads,
		PageWrites:   c.PageWrites,
		DistanceOps:  c.DistanceOps,
		KeyCompares:  c.KeyCompares,
		FloatOps:     c.FloatOps,
		NodeAccesses: c.NodeAccesses,
	})
}

// UnmarshalJSON accepts the MarshalJSON shape (page_io is derived and
// ignored).
func (c *Counter) UnmarshalJSON(data []byte) error {
	var in counterJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	*c = Counter{
		PageReads:    in.PageReads,
		PageWrites:   in.PageWrites,
		DistanceOps:  in.DistanceOps,
		KeyCompares:  in.KeyCompares,
		FloatOps:     in.FloatOps,
		NodeAccesses: in.NodeAccesses,
	}
	return nil
}

// Flush adds the totals accumulated in a goroutine-local Counter into sink.
// It is the reduction step of the parallel build paths: workers count into
// private Counters while they run, and the coordinating goroutine flushes
// each tally after the join — so a plain (non-atomic) Sink never sees
// concurrent writers and totals stay exact regardless of parallelism. A nil
// sink or an all-zero tally is a no-op.
func Flush(sink Sink, c Counter) {
	if sink == nil {
		return
	}
	if c.PageReads != 0 {
		sink.CountPageReads(c.PageReads)
	}
	if c.PageWrites != 0 {
		sink.CountPageWrites(c.PageWrites)
	}
	if c.DistanceOps != 0 {
		sink.CountDistanceOps(c.DistanceOps)
	}
	if c.KeyCompares != 0 {
		sink.CountKeyCompares(c.KeyCompares)
	}
	if c.FloatOps != 0 {
		sink.CountFloatOps(c.FloatOps)
	}
	if c.NodeAccesses != 0 {
		sink.CountNodeAccesses(c.NodeAccesses)
	}
}

// Each visits every counter as a (snake_case name, value) pair in a fixed,
// documented order — the iteration helper for exporters (Prometheus labels,
// expvar maps) so they need not hand-maintain the field list.
func (c Counter) Each(fn func(name string, v int64)) {
	fn("page_reads", c.PageReads)
	fn("page_writes", c.PageWrites)
	fn("distance_ops", c.DistanceOps)
	fn("key_compares", c.KeyCompares)
	fn("float_ops", c.FloatOps)
	fn("node_accesses", c.NodeAccesses)
}

// PagesForBytes returns the number of pages needed to hold n bytes.
func PagesForBytes(n int64) int64 {
	if n <= 0 {
		return 0
	}
	return (n + PageSize - 1) / PageSize
}

// PagesForPoints returns the sequential-scan page count for n points of
// dimension dim stored as float64.
func PagesForPoints(n, dim int) int64 {
	return PagesForBytes(int64(n) * int64(dim) * 8)
}
