// Package iostat provides the logical cost model used by every index in the
// repository: counters for simulated disk-page accesses and for distance
// computations. The paper's evaluation (Figures 9 and 10) reports I/O in
// page accesses and CPU cost; on modern hardware wall clock alone would hide
// the structure, so all indexes report both logical counters and elapsed
// time.
package iostat

import "fmt"

// PageSize is the simulated disk page size in bytes, matching the common
// 8 KB configuration of the era's systems.
const PageSize = 8192

// Counter accumulates logical costs. The zero value is ready to use.
type Counter struct {
	PageReads    int64 // simulated disk page reads
	PageWrites   int64 // simulated disk page writes
	DistanceOps  int64 // full distance computations (CPU proxy)
	KeyCompares  int64 // single-dimensional key comparisons in B+-trees
	FloatOps     int64 // optional finer-grained float-op estimate
	NodeAccesses int64 // tree nodes visited (incl. cached)
}

// Reset zeroes all counters.
func (c *Counter) Reset() { *c = Counter{} }

// Add accumulates other into c.
func (c *Counter) Add(other Counter) {
	c.PageReads += other.PageReads
	c.PageWrites += other.PageWrites
	c.DistanceOps += other.DistanceOps
	c.KeyCompares += other.KeyCompares
	c.FloatOps += other.FloatOps
	c.NodeAccesses += other.NodeAccesses
}

// IO returns total simulated page I/O (reads + writes).
func (c *Counter) IO() int64 { return c.PageReads + c.PageWrites }

// String renders the counter compactly for logs and tables.
func (c *Counter) String() string {
	return fmt.Sprintf("io=%d (r=%d w=%d) dist=%d keycmp=%d nodes=%d",
		c.IO(), c.PageReads, c.PageWrites, c.DistanceOps, c.KeyCompares, c.NodeAccesses)
}

// PagesForBytes returns the number of pages needed to hold n bytes.
func PagesForBytes(n int64) int64 {
	if n <= 0 {
		return 0
	}
	return (n + PageSize - 1) / PageSize
}

// PagesForPoints returns the sequential-scan page count for n points of
// dimension dim stored as float64.
func PagesForPoints(n, dim int) int64 {
	return PagesForBytes(int64(n) * int64(dim) * 8)
}
