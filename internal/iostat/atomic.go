package iostat

import "sync/atomic"

// AtomicCounter is the goroutine-safe Sink: every count is a single atomic
// add, so concurrent KNN calls through ConcurrentIndex can share one
// counter without a data race and without serializing on a lock. Each field
// is its own atomic word, so uncorrelated counters (distance ops from one
// query, page reads from another) do not contend on a shared cell —
// workers may also keep per-goroutine plain Counters and merge them here
// via Merge for fully contention-free sharding.
//
// The zero value is ready to use.
type AtomicCounter struct {
	pageReads    atomic.Int64
	pageWrites   atomic.Int64
	distanceOps  atomic.Int64
	keyCompares  atomic.Int64
	floatOps     atomic.Int64
	nodeAccesses atomic.Int64
}

// CountPageReads implements Sink.
func (c *AtomicCounter) CountPageReads(n int64) { c.pageReads.Add(n) }

// CountPageWrites implements Sink.
func (c *AtomicCounter) CountPageWrites(n int64) { c.pageWrites.Add(n) }

// CountDistanceOps implements Sink.
func (c *AtomicCounter) CountDistanceOps(n int64) { c.distanceOps.Add(n) }

// CountKeyCompares implements Sink.
func (c *AtomicCounter) CountKeyCompares(n int64) { c.keyCompares.Add(n) }

// CountFloatOps implements Sink.
func (c *AtomicCounter) CountFloatOps(n int64) { c.floatOps.Add(n) }

// CountNodeAccesses implements Sink.
func (c *AtomicCounter) CountNodeAccesses(n int64) { c.nodeAccesses.Add(n) }

// Snapshot implements Sink: a point-in-time copy of the totals. Fields are
// loaded individually, so a snapshot taken while writers are active is
// per-field consistent (each value was the field's total at some instant
// during the call).
func (c *AtomicCounter) Snapshot() Counter {
	return Counter{
		PageReads:    c.pageReads.Load(),
		PageWrites:   c.pageWrites.Load(),
		DistanceOps:  c.distanceOps.Load(),
		KeyCompares:  c.keyCompares.Load(),
		FloatOps:     c.floatOps.Load(),
		NodeAccesses: c.nodeAccesses.Load(),
	}
}

// Merge adds a plain Counter's totals (e.g. a per-worker shard) into c.
func (c *AtomicCounter) Merge(other Counter) {
	c.pageReads.Add(other.PageReads)
	c.pageWrites.Add(other.PageWrites)
	c.distanceOps.Add(other.DistanceOps)
	c.keyCompares.Add(other.KeyCompares)
	c.floatOps.Add(other.FloatOps)
	c.nodeAccesses.Add(other.NodeAccesses)
}

// Reset zeroes all counters. Counts from concurrent writers land either
// before or after the reset, never partially.
func (c *AtomicCounter) Reset() {
	c.pageReads.Store(0)
	c.pageWrites.Store(0)
	c.distanceOps.Store(0)
	c.keyCompares.Store(0)
	c.floatOps.Store(0)
	c.nodeAccesses.Store(0)
}

// IO returns total simulated page I/O (reads + writes).
func (c *AtomicCounter) IO() int64 { return c.pageReads.Load() + c.pageWrites.Load() }

// String renders the current totals like Counter.String.
func (c *AtomicCounter) String() string {
	s := c.Snapshot()
	return s.String()
}

// MarshalJSON exports the current totals like Counter.MarshalJSON.
func (c *AtomicCounter) MarshalJSON() ([]byte, error) {
	s := c.Snapshot()
	return s.MarshalJSON()
}
