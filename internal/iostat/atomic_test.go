package iostat

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// Both implementations must satisfy the shared counting interface.
var (
	_ Sink = (*Counter)(nil)
	_ Sink = (*AtomicCounter)(nil)
)

// TestAtomicCounterConcurrent hammers one AtomicCounter from many
// goroutines; run under -race this is the synchronization proof for the
// ConcurrentIndex metrics path.
func TestAtomicCounterConcurrent(t *testing.T) {
	var c AtomicCounter
	const workers = 16
	const perWorker = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.CountPageReads(1)
				c.CountPageWrites(2)
				c.CountDistanceOps(3)
				c.CountKeyCompares(4)
				c.CountFloatOps(5)
				c.CountNodeAccesses(6)
				_ = c.Snapshot() // concurrent readers must be safe too
			}
		}()
	}
	wg.Wait()
	s := c.Snapshot()
	want := Counter{
		PageReads:    workers * perWorker * 1,
		PageWrites:   workers * perWorker * 2,
		DistanceOps:  workers * perWorker * 3,
		KeyCompares:  workers * perWorker * 4,
		FloatOps:     workers * perWorker * 5,
		NodeAccesses: workers * perWorker * 6,
	}
	if s != want {
		t.Fatalf("snapshot %+v, want %+v", s, want)
	}
	if c.IO() != want.PageReads+want.PageWrites {
		t.Fatalf("IO = %d", c.IO())
	}
	c.Reset()
	if s := c.Snapshot(); s != (Counter{}) {
		t.Fatalf("Reset left %+v", s)
	}
}

func TestAtomicCounterMerge(t *testing.T) {
	var c AtomicCounter
	c.Merge(Counter{PageReads: 1, DistanceOps: 2})
	c.Merge(Counter{PageReads: 10, FloatOps: 3})
	s := c.Snapshot()
	if s.PageReads != 11 || s.DistanceOps != 2 || s.FloatOps != 3 {
		t.Fatalf("merged snapshot %+v", s)
	}
}

func TestNilCounterSinkIsNoop(t *testing.T) {
	var c *Counter // typed nil inside the interface must not panic
	var s Sink = c
	s.CountPageReads(1)
	s.CountDistanceOps(1)
	if snap := s.Snapshot(); snap != (Counter{}) {
		t.Fatalf("nil counter snapshot %+v", snap)
	}
}

// TestCounterStringIncludesAllFields pins the regression where FloatOps was
// omitted and PageWrites was easy to misread.
func TestCounterStringIncludesAllFields(t *testing.T) {
	c := Counter{PageReads: 1, PageWrites: 2, DistanceOps: 3, KeyCompares: 4, FloatOps: 5, NodeAccesses: 6}
	s := c.String()
	for _, want := range []string{"io=3", "reads=1", "writes=2", "dist=3", "keycmp=4", "floatops=5", "nodes=6"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestCounterJSONRoundTrip(t *testing.T) {
	c := Counter{PageReads: 7, PageWrites: 1, DistanceOps: 9, KeyCompares: 2, FloatOps: 5, NodeAccesses: 3}
	data, err := json.Marshal(&c)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"page_io", "page_reads", "page_writes", "distance_ops", "key_compares", "float_ops", "node_accesses"} {
		if !strings.Contains(string(data), `"`+key+`"`) {
			t.Errorf("JSON %s missing key %q", data, key)
		}
	}
	var back Counter
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != c {
		t.Fatalf("round trip %+v != %+v", back, c)
	}

	var a AtomicCounter
	a.Merge(c)
	adata, err := json.Marshal(&a)
	if err != nil {
		t.Fatal(err)
	}
	if string(adata) != string(data) {
		t.Fatalf("atomic JSON %s != counter JSON %s", adata, data)
	}
}
