package iostat

import "testing"

func TestCounterAddResetIO(t *testing.T) {
	var a, b Counter
	a.PageReads = 3
	a.PageWrites = 2
	b.PageReads = 5
	b.DistanceOps = 7
	b.KeyCompares = 1
	b.NodeAccesses = 4
	a.Add(b)
	if a.PageReads != 8 || a.PageWrites != 2 || a.DistanceOps != 7 || a.KeyCompares != 1 || a.NodeAccesses != 4 {
		t.Fatalf("Add result %+v", a)
	}
	if a.IO() != 10 {
		t.Fatalf("IO = %d", a.IO())
	}
	if a.String() == "" {
		t.Fatal("empty String")
	}
	a.Reset()
	if a.IO() != 0 || a.DistanceOps != 0 {
		t.Fatalf("Reset left %+v", a)
	}
}

func TestPagesForBytes(t *testing.T) {
	cases := []struct {
		in   int64
		want int64
	}{
		{0, 0}, {-5, 0}, {1, 1}, {PageSize, 1}, {PageSize + 1, 2}, {3 * PageSize, 3},
	}
	for _, c := range cases {
		if got := PagesForBytes(c.in); got != c.want {
			t.Errorf("PagesForBytes(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestPagesForPoints(t *testing.T) {
	// 1024 points of 64-d float64 = 512 KiB = 64 pages of 8 KiB.
	if got := PagesForPoints(1024, 64); got != 64 {
		t.Fatalf("PagesForPoints = %d, want 64", got)
	}
}
