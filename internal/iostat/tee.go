package iostat

// tee fans every count out to multiple sinks.
type tee struct {
	sinks []Sink
}

func (t *tee) CountPageReads(n int64) {
	for _, s := range t.sinks {
		s.CountPageReads(n)
	}
}

func (t *tee) CountPageWrites(n int64) {
	for _, s := range t.sinks {
		s.CountPageWrites(n)
	}
}

func (t *tee) CountDistanceOps(n int64) {
	for _, s := range t.sinks {
		s.CountDistanceOps(n)
	}
}

func (t *tee) CountKeyCompares(n int64) {
	for _, s := range t.sinks {
		s.CountKeyCompares(n)
	}
}

func (t *tee) CountFloatOps(n int64) {
	for _, s := range t.sinks {
		s.CountFloatOps(n)
	}
}

func (t *tee) CountNodeAccesses(n int64) {
	for _, s := range t.sinks {
		s.CountNodeAccesses(n)
	}
}

// Snapshot reports the first sink's totals (the primary); secondary sinks
// are write-only aggregation targets.
func (t *tee) Snapshot() Counter { return t.sinks[0].Snapshot() }

// Tee returns a Sink that forwards every count to each non-nil sink. Nil
// sinks are dropped; with zero survivors it returns nil (no counting), with
// one it returns that sink unwrapped. Snapshot reads the first survivor.
func Tee(sinks ...Sink) Sink {
	kept := make([]Sink, 0, len(sinks))
	for _, s := range sinks {
		if s != nil {
			kept = append(kept, s)
		}
	}
	switch len(kept) {
	case 0:
		return nil
	case 1:
		return kept[0]
	}
	return &tee{sinks: kept}
}
