// Package load type-checks this module's packages for the mmdrlint
// analyzers without golang.org/x/tools (the build environment has no module
// proxy). It shells out to `go list -export -deps -json` — the local
// toolchain, no network — which compiles dependencies into the build cache
// and reports an export-data file per package. Imports are then resolved
// through the stdlib gc importer's lookup hook while each target package is
// parsed and type-checked from source, which is exactly the strategy
// `go vet`'s unitchecker uses, minus the x/tools dependency.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package, ready for analysis.
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// listedPkg is the subset of `go list -json` output the loader consumes.
type listedPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
}

// Loader resolves and type-checks packages of the enclosing module.
type Loader struct {
	Fset *token.FileSet

	exports map[string]string // import path → export-data file
	targets []listedPkg       // module (non-standard) packages, listing order
	imp     types.Importer
}

// New lists the given package patterns (default "./...") relative to dir,
// compiling export data for every dependency. dir must lie inside a module.
func New(dir string, patterns ...string) (*Loader, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,Standard",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("load: go list failed: %v\n%s", err, stderr.String())
	}

	l := &Loader{
		Fset:    token.NewFileSet(),
		exports: make(map[string]string),
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("load: decoding go list output: %v", err)
		}
		if p.Export != "" {
			l.exports[p.ImportPath] = p.Export
		}
		if !p.Standard {
			l.targets = append(l.targets, p)
		}
	}
	l.imp = importer.ForCompiler(l.Fset, "gc", l.lookup)
	return l, nil
}

// lookup feeds the gc importer the export data `go list -export` compiled.
func (l *Loader) lookup(path string) (io.ReadCloser, error) {
	file, ok := l.exports[path]
	if !ok {
		return nil, fmt.Errorf("load: no export data for %q", path)
	}
	return os.Open(file)
}

// Packages parses and type-checks every module package from the listing,
// in listing (dependency) order.
func (l *Loader) Packages() ([]*Package, error) {
	out := make([]*Package, 0, len(l.targets))
	for _, t := range l.targets {
		files := make([]string, len(t.GoFiles))
		for i, g := range t.GoFiles {
			files[i] = filepath.Join(t.Dir, g)
		}
		pkg, err := l.check(t.ImportPath, t.Dir, files)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// LoadDir parses and type-checks the single package in dir (non-test files)
// under the given import path. It serves the analyzers' testdata packages,
// which `go list` deliberately does not see; their imports must be covered
// by the loader's listing (stdlib or module packages).
func (l *Loader) LoadDir(dir, pkgPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("load: %v", err)
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, filepath.Join(dir, name))
	}
	sort.Strings(files)
	if len(files) == 0 {
		return nil, fmt.Errorf("load: no Go files in %s", dir)
	}
	return l.check(pkgPath, dir, files)
}

// check parses the named files and type-checks them as one package.
func (l *Loader) check(pkgPath, dir string, filenames []string) (*Package, error) {
	var files []*ast.File
	for _, fn := range filenames {
		f, err := parser.ParseFile(l.Fset, fn, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("load: %v", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l.imp}
	tpkg, err := conf.Check(pkgPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("load: type-checking %s: %v", pkgPath, err)
	}
	return &Package{
		PkgPath: pkgPath,
		Dir:     dir,
		Fset:    l.Fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
	}, nil
}

// ModuleRoot walks up from dir to the nearest directory containing go.mod.
func ModuleRoot(dir string) (string, error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("load: no go.mod above %s", dir)
		}
		d = parent
	}
}
