// Package persistdrift audits gob-persisted model structs against the
// contract they declare with a //mmdr:persist directive, catching the
// cross-declaration drift that creeps in when a struct and its
// save/load/rebuild code evolve independently:
//
//	//mmdr:persist [save=F] [load=F] [rebuild=M]
//
// placed on the struct's type declaration. The rules, per field:
//
//   - Unexported fields are invisible to gob. Each one must be re-derived
//     after decode: the directive must name a rebuild= method, and the
//     rebuild path (the named method plus everything it calls inside the
//     package) must assign the field. This is what keeps the Subspace
//     query-kernel caches (basisT, mahaChol) from silently arriving nil
//     out of a Load and dropping queries onto the slow fallback forever.
//   - Exported fields are carried by gob automatically — but when the
//     struct is a persistence envelope written by one function and read
//     back by another (save=/load=), a field the save path never writes is
//     encoded as a zero, and a field the load path never reads is decoded
//     and dropped. Both are drift: the declaration promises a round trip
//     the code does not deliver. With save=/load= named, every exported
//     field must be referenced in the corresponding path.
//
// Field references and assignments are resolved through go/types object
// identity (selector uses, composite-literal keys, and positional
// composite literals), then closed transitively over same-package calls,
// so a rebuild method that delegates to helpers still counts. Misspelled
// directive options and save/load/rebuild names that resolve to nothing
// are findings themselves — a typo must not silently disable the audit.
//
// Legitimate deviations (a cache whose zero value is correct, a field
// intentionally reset on load) carry //mmdr:ignore persistdrift with a
// reason on the field's line.
package persistdrift

import (
	"go/ast"
	"go/token"
	"go/types"

	"mmdr/internal/analysis/framework"
)

// Analyzer is the persistdrift check.
var Analyzer = &framework.Analyzer{
	Name: "persistdrift",
	Doc:  "checks //mmdr:persist structs: unexported fields re-derived by the rebuild path, exported fields written and read by the save/load paths",
	Run:  run,
}

type checker struct {
	pass  *framework.Pass
	funcs []*ast.FuncDecl
	// decls maps a function/method object to its declaration, for the
	// same-package call closure.
	decls map[types.Object]*ast.FuncDecl
}

func run(pass *framework.Pass) error {
	c := &checker{pass: pass, decls: map[types.Object]*ast.FuncDecl{}}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				c.funcs = append(c.funcs, fn)
				if obj := pass.ObjectOf(fn.Name); obj != nil {
					c.decls[obj] = fn
				}
			}
		}
	}

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts := spec.(*ast.TypeSpec)
				d := framework.PersistDirectiveOf(ts.Doc)
				if d == nil && len(gd.Specs) == 1 {
					d = framework.PersistDirectiveOf(gd.Doc)
				}
				if d != nil {
					c.checkStruct(ts, d)
				}
			}
		}
	}
	return nil
}

func (c *checker) checkStruct(ts *ast.TypeSpec, d *framework.PersistDirective) {
	for _, opt := range d.Unknown {
		c.pass.Reportf(d.Pos, "//mmdr:persist on %s has unknown option %q (valid: save=, load=, rebuild=)", ts.Name.Name, opt)
	}

	obj := c.pass.ObjectOf(ts.Name)
	if obj == nil {
		return
	}
	st, ok := obj.Type().Underlying().(*types.Struct)
	if !ok {
		c.pass.Reportf(d.Pos, "//mmdr:persist applies to struct types; %s is not a struct", ts.Name.Name)
		return
	}

	resolve := func(kind, name string) []*ast.FuncDecl {
		if name == "" {
			return nil
		}
		var fns []*ast.FuncDecl
		for _, fn := range c.funcs {
			if fn.Name.Name == name {
				fns = append(fns, fn)
			}
		}
		if fns == nil {
			c.pass.Reportf(d.Pos, "//mmdr:persist on %s names %s=%q but the package declares no such function or method", ts.Name.Name, kind, name)
		}
		return fns
	}
	saveFns := resolve("save", d.Save)
	loadFns := resolve("load", d.Load)
	rebuildFns := resolve("rebuild", d.Rebuild)

	structType := obj.Type()
	var saveRefs, loadRefs, rebuilt map[types.Object]bool
	if saveFns != nil {
		saveRefs = c.fieldFacts(c.reach(saveFns), structType, false)
	}
	if loadFns != nil {
		loadRefs = c.fieldFacts(c.reach(loadFns), structType, false)
	}
	if rebuildFns != nil {
		rebuilt = c.fieldFacts(c.reach(rebuildFns), structType, true)
	}

	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() == "_" {
			continue
		}
		if !f.Exported() {
			switch {
			case d.Rebuild == "":
				c.pass.Reportf(f.Pos(), "unexported field %s of %s is skipped by gob and the //mmdr:persist directive names no rebuild= method to re-derive it after load", f.Name(), ts.Name.Name)
			case rebuildFns != nil && !rebuilt[f]:
				c.pass.Reportf(f.Pos(), "unexported field %s of %s is skipped by gob but the rebuild path %s never assigns it — a loaded value arrives with it zero forever", f.Name(), ts.Name.Name, d.Rebuild)
			}
			continue
		}
		if saveFns != nil && !saveRefs[f] {
			c.pass.Reportf(f.Pos(), "exported field %s of %s is gob-persisted but never written in the save path %s — files carry its zero value", f.Name(), ts.Name.Name, d.Save)
		}
		if loadFns != nil && !loadRefs[f] {
			c.pass.Reportf(f.Pos(), "exported field %s of %s is gob-persisted but never read in the load path %s — decoded then dropped", f.Name(), ts.Name.Name, d.Load)
		}
	}
}

// reach returns the set of package functions reachable from roots through
// same-package calls (the rebuild/save/load "path").
func (c *checker) reach(roots []*ast.FuncDecl) map[*ast.FuncDecl]bool {
	seen := map[*ast.FuncDecl]bool{}
	var visit func(fn *ast.FuncDecl)
	visit = func(fn *ast.FuncDecl) {
		if seen[fn] {
			return
		}
		seen[fn] = true
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			var id *ast.Ident
			switch f := call.Fun.(type) {
			case *ast.Ident:
				id = f
			case *ast.SelectorExpr:
				id = f.Sel
			default:
				return true
			}
			if callee := c.decls[c.pass.ObjectOf(id)]; callee != nil {
				visit(callee)
			}
			return true
		})
	}
	for _, fn := range roots {
		visit(fn)
	}
	return seen
}

// fieldFacts scans the bodies of fns for fields of structType. With
// assignOnly false it records every reference (selector use, composite
// literal key, positional literal slot); with assignOnly true only writes
// count: assignment/inc-dec targets and composite-literal construction.
func (c *checker) fieldFacts(fns map[*ast.FuncDecl]bool, structType types.Type, assignOnly bool) map[types.Object]bool {
	isField := func(o types.Object) bool {
		v, ok := o.(*types.Var)
		return ok && v.IsField()
	}
	facts := map[types.Object]bool{}
	for fn := range fns {
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.AssignStmt:
				if !assignOnly {
					return true
				}
				for _, lhs := range x.Lhs {
					if sel, ok := lhs.(*ast.SelectorExpr); ok {
						if o := c.pass.ObjectOf(sel.Sel); o != nil && isField(o) {
							facts[o] = true
						}
					}
				}
			case *ast.IncDecStmt:
				if !assignOnly {
					return true
				}
				if sel, ok := x.X.(*ast.SelectorExpr); ok {
					if o := c.pass.ObjectOf(sel.Sel); o != nil && isField(o) {
						facts[o] = true
					}
				}
			case *ast.CompositeLit:
				if !types.Identical(c.pass.TypeOf(x), structType) {
					return true
				}
				st, ok := structType.Underlying().(*types.Struct)
				if !ok {
					return true
				}
				for i, elt := range x.Elts {
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						if key, ok := kv.Key.(*ast.Ident); ok {
							if o := c.pass.ObjectOf(key); o != nil {
								facts[o] = true
							}
						}
					} else if i < st.NumFields() {
						// Positional literal: slot i is field i.
						facts[st.Field(i)] = true
					}
				}
			case *ast.Ident:
				if assignOnly {
					return true
				}
				if o := c.pass.ObjectOf(x); o != nil && isField(o) {
					facts[o] = true
				}
			}
			return true
		})
	}
	return facts
}
