// Package persist exercises persistdrift: //mmdr:persist structs whose
// unexported fields must be re-derived by the rebuild path and whose
// exported fields must flow through the declared save/load paths.
package persist

// Kerneled is the Subspace shape: exported fields gob-encoded directly,
// unexported caches re-derived — including through a helper the rebuild
// method calls.
//
//mmdr:persist rebuild=EnsureKernels
type Kerneled struct {
	Centroid []float64
	Basis    []float64
	basisT   []float64
	chol     []float64
}

func (k *Kerneled) EnsureKernels() {
	if k.basisT == nil {
		k.basisT = transpose(k.Basis)
	}
	k.ensureChol()
}

func (k *Kerneled) ensureChol() {
	if k.chol == nil {
		k.chol = factor(k.Basis)
	}
}

func transpose(b []float64) []float64 { return append([]float64(nil), b...) }
func factor(b []float64) []float64    { return append([]float64(nil), b...) }

// Drifted declares a rebuild method that re-derives only one of its two
// caches — the classic drift after a new cache field lands.
//
//mmdr:persist rebuild=Rebuild
type Drifted struct {
	Radius float64
	norm   float64
	cache  []float64 // want `unexported field cache of Drifted is skipped by gob but the rebuild path Rebuild never assigns it`
}

func (d *Drifted) Rebuild() {
	d.norm = d.Radius * d.Radius
}

// NoRebuild has an unexported field and no rebuild= at all.
//
//mmdr:persist
type NoRebuild struct {
	K       int
	scratch []float64 // want `unexported field scratch of NoRebuild is skipped by gob and the //mmdr:persist directive names no rebuild= method`
}

// Suppressed documents that its cache's zero value is correct — the
// deviation is justified in place.
//
//mmdr:persist
type Suppressed struct {
	N int
	//mmdr:ignore persistdrift zero hit-counter is correct for a freshly loaded value
	hits int
}

// envelope is the modelFile shape: written by SaveModel, read by
// LoadModel. Generation is written but never read back; Checksum is read
// but never written.
//
//mmdr:persist save=SaveModel load=LoadModel
type envelope struct {
	Version    int
	Payload    []float64
	Generation int     // want `exported field Generation of envelope is gob-persisted but never read in the load path LoadModel`
	Checksum   uint64  // want `exported field Checksum of envelope is gob-persisted but never written in the save path SaveModel`
	Skew       float64 // want `exported field Skew of envelope is gob-persisted but never written in the save path SaveModel` `exported field Skew of envelope is gob-persisted but never read in the load path LoadModel`
}

func SaveModel(payload []float64, gen int) envelope {
	return envelope{
		Version:    1,
		Payload:    payload,
		Generation: gen,
	}
}

func LoadModel(e envelope) ([]float64, error) {
	if e.Version != 1 {
		return nil, errBadVersion
	}
	if e.Checksum != sum(e.Payload) {
		return nil, errBadSum
	}
	return e.Payload, nil
}

type persistError string

func (p persistError) Error() string { return string(p) }

const (
	errBadVersion = persistError("bad version")
	errBadSum     = persistError("bad checksum")
)

func sum(p []float64) uint64 { return uint64(len(p)) }

// positional is saved via a positional composite literal: every slot
// counts as written.
//
//mmdr:persist save=SavePositional load=LoadPositional
type positional struct {
	A int
	B int
}

func SavePositional(a, b int) positional { return positional{a, b} }

func LoadPositional(p positional) int { return p.A + p.B }

// BadNames points its directive at functions that do not exist, and
// carries a misspelled option — typos must not silently disable the audit.
//
// want:+2 `//mmdr:persist on BadNames names rebuild="Missing" but the package declares no such function or method` `unknown option "checksum=CRC"`
//
//mmdr:persist rebuild=Missing checksum=CRC
type BadNames struct {
	X int
}

// NotAStruct cannot carry field contracts.
//
// want:+2 `//mmdr:persist applies to struct types; NotAStruct is not a struct`
//
//mmdr:persist
type NotAStruct float64
