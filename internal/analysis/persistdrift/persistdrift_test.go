package persistdrift_test

import (
	"testing"

	"mmdr/internal/analysis/analysistest"
	"mmdr/internal/analysis/persistdrift"
)

func TestPersistDrift(t *testing.T) {
	analysistest.Run(t, persistdrift.Analyzer, "persist")
}
