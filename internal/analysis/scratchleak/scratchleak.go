// Package scratchleak verifies the borrow discipline of sync.Pool-backed
// scratch buffers, path-sensitively, using the cfg+flow layers. The
// repository's query paths stay allocation-free by borrowing a
// queryScratch from a sync.Pool (idist.getScratch / idist.putScratch);
// the discipline that makes that safe is:
//
//   - Every borrow is returned: a value acquired from a pool (directly
//     via (*sync.Pool).Get, or through an acquirer helper like
//     getScratch) must reach a matching Put — executed directly or
//     registered with defer — on every non-panicking path to a return.
//     Paths that panic are exempt: the CFG routes them to its Panic
//     block, never to Exit, so a leak on a dying path is not demanded.
//   - No use after return: once a scratch has been handed back (and not
//     re-acquired), any further use races with the pool's next borrower.
//     Returning it twice is the same bug with a shorter fuse.
//   - No escape while borrowed: a pooled pointer (or anything
//     pointer-like derived from it — a field slice, a sub-slice) must
//     not leave the function through a return value, a store outside
//     the frame, a channel send, or a closure that may outlive the
//     call. The pool will re-issue the scratch to the next query; an
//     escaped alias turns that into cross-query data corruption.
//
// Helper classification runs package-wide to a fixpoint before any
// function is checked: an acquirer contains an acquire (a Pool.Get or a
// call to another acquirer) and returns the acquired value — ownership
// transfers to its caller, so acquirers are exempt from the must-Put and
// return-escape rules. A releaser passes one of its parameters to
// Pool.Put; calling it counts as a Put of the argument. This is what
// lets the analyzer see `sc := idx.getScratch(); defer idx.putScratch(sc)`
// for the Get/Put pair it is.
package scratchleak

import (
	"go/ast"
	"go/token"
	"go/types"

	"mmdr/internal/analysis/cfg"
	"mmdr/internal/analysis/flow"
	"mmdr/internal/analysis/framework"
)

// Analyzer is the scratchleak check.
var Analyzer = &framework.Analyzer{
	Name: "scratchleak",
	Doc:  "checks that pool-borrowed scratch is returned on every non-panicking path and never used or escaped after Put",
	Run:  run,
}

type checker struct {
	pass      *framework.Pass
	acquirers map[types.Object]bool // funcs that return a pool-acquired value
	releasers map[types.Object]bool // funcs that Put a parameter back
}

func run(pass *framework.Pass) error {
	c := &checker{
		pass:      pass,
		acquirers: map[types.Object]bool{},
		releasers: map[types.Object]bool{},
	}
	c.classify()

	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					c.checkFunc(fn.Body)
				}
			case *ast.FuncLit:
				c.checkFunc(fn.Body)
			}
			return true
		})
	}
	return nil
}

// classify computes the package's acquirer and releaser sets, iterating
// acquirers to a fixpoint so a wrapper that returns another acquirer's
// result is itself an acquirer.
func (c *checker) classify() {
	var decls []*ast.FuncDecl
	for _, file := range c.pass.Files {
		for _, d := range file.Decls {
			if fn, ok := d.(*ast.FuncDecl); ok && fn.Body != nil {
				decls = append(decls, fn)
			}
		}
	}

	for _, fn := range decls {
		if c.putsParam(fn) {
			c.releasers[c.pass.ObjectOf(fn.Name)] = true
		}
	}

	for changed := true; changed; {
		changed = false
		for _, fn := range decls {
			obj := c.pass.ObjectOf(fn.Name)
			if obj == nil || c.acquirers[obj] {
				continue
			}
			if c.returnsAcquired(fn.Body) {
				c.acquirers[obj] = true
				changed = true
			}
		}
	}
}

// putsParam reports whether fn passes one of its own parameters to
// (*sync.Pool).Put.
func (c *checker) putsParam(fn *ast.FuncDecl) bool {
	params := map[types.Object]bool{}
	if fn.Type.Params != nil {
		for _, f := range fn.Type.Params.List {
			for _, name := range f.Names {
				if obj := c.pass.ObjectOf(name); obj != nil {
					params[obj] = true
				}
			}
		}
	}
	if len(params) == 0 {
		return false
	}
	found := false
	walkShallow(fn.Body, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok || !c.isPoolPut(call) {
			return
		}
		for _, arg := range call.Args {
			if id, ok := arg.(*ast.Ident); ok && params[c.pass.ObjectOf(id)] {
				found = true
			}
		}
	})
	return found
}

// returnsAcquired reports whether body assigns an acquire result to a
// variable and returns that variable (or returns an acquire expression
// directly) — the acquirer shape.
func (c *checker) returnsAcquired(body *ast.BlockStmt) bool {
	acquired := map[types.Object]bool{}
	walkShallow(body, func(n ast.Node) {
		if as, ok := n.(*ast.AssignStmt); ok {
			if obj := c.acquireTarget(as); obj != nil {
				acquired[obj] = true
			}
		}
	})
	found := false
	walkShallow(body, func(n ast.Node) {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return
		}
		for _, res := range ret.Results {
			if c.isAcquireExpr(res) {
				found = true
			}
			if id, ok := res.(*ast.Ident); ok && acquired[c.pass.ObjectOf(id)] {
				found = true
			}
		}
	})
	return found
}

// acquireTarget returns the variable an assignment acquires into, or nil:
// `sc := pool.Get().(*T)`, `sc, ok := pool.Get().(*T)`, `sc := getScratch()`.
func (c *checker) acquireTarget(as *ast.AssignStmt) types.Object {
	if len(as.Rhs) != 1 || !c.isAcquireExpr(as.Rhs[0]) {
		return nil
	}
	id, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return nil
	}
	return c.pass.ObjectOf(id)
}

// isAcquireExpr reports whether e produces a fresh pool borrow: a
// (*sync.Pool).Get call or a call to a known acquirer, possibly wrapped
// in a type assertion or parentheses.
func (c *checker) isAcquireExpr(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.ParenExpr:
		return c.isAcquireExpr(x.X)
	case *ast.TypeAssertExpr:
		return c.isAcquireExpr(x.X)
	case *ast.CallExpr:
		if c.isPoolMethod(x, "Get") {
			return true
		}
		if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
			return c.acquirers[c.pass.ObjectOf(sel.Sel)]
		}
		if id, ok := x.Fun.(*ast.Ident); ok {
			return c.acquirers[c.pass.ObjectOf(id)]
		}
	}
	return false
}

func (c *checker) isPoolPut(call *ast.CallExpr) bool { return c.isPoolMethod(call, "Put") }

// isPoolMethod reports whether call invokes sync.Pool's named method.
func (c *checker) isPoolMethod(call *ast.CallExpr, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	fn, ok := c.pass.ObjectOf(sel.Sel).(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Pool"
}

// releasedVar returns the tracked variable call returns to a pool, or nil:
// a Pool.Put(v) or releaser(v) call whose argument is a tracked ident.
func (c *checker) releasedVar(call *ast.CallExpr, tracked map[types.Object]int) types.Object {
	isRelease := c.isPoolPut(call)
	if !isRelease {
		var callee types.Object
		switch f := call.Fun.(type) {
		case *ast.SelectorExpr:
			callee = c.pass.ObjectOf(f.Sel)
		case *ast.Ident:
			callee = c.pass.ObjectOf(f)
		}
		isRelease = callee != nil && c.releasers[callee]
	}
	if !isRelease {
		return nil
	}
	for _, arg := range call.Args {
		if id, ok := arg.(*ast.Ident); ok {
			if obj := c.pass.ObjectOf(id); obj != nil {
				if _, ok := tracked[obj]; ok {
					return obj
				}
			}
		}
	}
	return nil
}

// Facts per tracked variable.
const (
	live = iota // borrowed on this path and no Put seen (defer counts)
	released
	factsPerVar
)

func (c *checker) checkFunc(body *ast.BlockStmt) {
	// Track variables acquired in THIS body; nested literals are separate
	// functions with their own borrows.
	tracked := map[types.Object]int{}
	var order []types.Object
	pos := map[types.Object]token.Pos{}
	walkShallow(body, func(n ast.Node) {
		if as, ok := n.(*ast.AssignStmt); ok {
			if obj := c.acquireTarget(as); obj != nil {
				if _, seen := tracked[obj]; !seen {
					tracked[obj] = len(order) * factsPerVar
					order = append(order, obj)
					pos[obj] = as.Lhs[0].Pos()
				}
			}
		}
	})
	if len(order) == 0 {
		return
	}
	isAcquirer := c.returnsAcquired(body)

	nfacts := len(order) * factsPerVar
	g := cfg.New(body)
	may := flow.Forward(g, nfacts, flow.May, flow.NewSet(nfacts), func(n ast.Node, in flow.Set) flow.Set {
		return c.transfer(n, in, tracked)
	})

	// Leak: a non-panicking path reaches Exit with the borrow still live.
	// Acquirers hand the live borrow to their caller by design.
	if !isAcquirer {
		exitIn := may.In(g.Exit)
		for _, obj := range order {
			if exitIn.Has(tracked[obj] + live) {
				c.pass.Reportf(pos[obj], "%s is borrowed from the pool but not returned by Put on every non-panicking path", obj.Name())
			}
		}
	}

	for _, b := range g.Blocks {
		if !may.Reachable(b) {
			continue
		}
		may.WalkNode(b, func(n ast.Node, before flow.Set) {
			c.checkNode(n, before, tracked, isAcquirer)
		})
	}

	c.checkClosureCaptures(body, tracked)
}

// transfer is the dataflow transfer function over one CFG node.
func (c *checker) transfer(n ast.Node, in flow.Set, tracked map[types.Object]int) flow.Set {
	if d, ok := n.(*ast.DeferStmt); ok {
		// A deferred Put discharges the obligation for every later exit
		// but the scratch stays usable until the function returns, so it
		// clears live without setting released.
		c.deferredReleases(d, tracked, func(obj types.Object) {
			in.Remove(tracked[obj] + live)
		})
		return in
	}
	if _, ok := n.(*ast.RangeStmt); ok {
		return in // loop head: operand and body have their own nodes
	}
	walkShallow(n, func(m ast.Node) {
		switch x := m.(type) {
		case *ast.AssignStmt:
			if obj := c.acquireTarget(x); obj != nil {
				in.Add(tracked[obj] + live)
				in.Remove(tracked[obj] + released)
			}
		case *ast.CallExpr:
			if obj := c.releasedVar(x, tracked); obj != nil {
				in.Remove(tracked[obj] + live)
				in.Add(tracked[obj] + released)
			}
		}
	})
	return in
}

// deferredReleases invokes f for each tracked variable a defer statement
// returns to the pool — the deferred call itself, or every release inside
// a deferred function literal.
func (c *checker) deferredReleases(d *ast.DeferStmt, tracked map[types.Object]int, f func(types.Object)) {
	if obj := c.releasedVar(d.Call, tracked); obj != nil {
		f(obj)
		return
	}
	lit, ok := d.Call.Fun.(*ast.FuncLit)
	if !ok {
		return
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if obj := c.releasedVar(call, tracked); obj != nil {
				f(obj)
			}
		}
		return true
	})
}

// checkNode reports use-after-Put, double Put, and escapes given the
// facts holding immediately before n.
func (c *checker) checkNode(n ast.Node, before flow.Set, tracked map[types.Object]int, isAcquirer bool) {
	switch n.(type) {
	case *ast.DeferStmt, *ast.RangeStmt:
		return
	}

	// Idents that are not "uses": the arguments of a release call, and the
	// target of a (re)acquire assignment — `sc = getScratch()` after a Put
	// revives the variable rather than touching the returned buffer.
	releaseArgs := map[*ast.Ident]bool{}
	walkShallow(n, func(m ast.Node) {
		if as, ok := m.(*ast.AssignStmt); ok {
			if obj := c.acquireTarget(as); obj != nil {
				if id, ok := as.Lhs[0].(*ast.Ident); ok && c.pass.ObjectOf(id) == obj {
					releaseArgs[id] = true
				}
			}
		}
	})
	walkShallow(n, func(m ast.Node) {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return
		}
		obj := c.releasedVar(call, tracked)
		if obj == nil {
			return
		}
		for _, arg := range call.Args {
			if id, ok := arg.(*ast.Ident); ok && c.pass.ObjectOf(id) == obj {
				releaseArgs[id] = true
			}
		}
		if before.Has(tracked[obj] + released) {
			c.pass.Reportf(call.Pos(), "%s is returned to the pool twice", obj.Name())
		}
	})

	// Use after Put: any other mention of a released variable.
	walkShallow(n, func(m ast.Node) {
		id, ok := m.(*ast.Ident)
		if !ok || releaseArgs[id] {
			return
		}
		obj := c.pass.ObjectOf(id)
		if obj == nil {
			return
		}
		if base, ok := tracked[obj]; ok && before.Has(base+released) {
			c.pass.Reportf(id.Pos(), "%s is used after being returned to the pool — the next borrower may already own it", obj.Name())
		}
	})

	// Escapes while borrowed.
	switch x := n.(type) {
	case *ast.ReturnStmt:
		for _, res := range x.Results {
			id := pointerBase(res)
			if id == nil {
				continue
			}
			obj := c.pass.ObjectOf(id)
			if _, ok := tracked[obj]; !ok {
				continue
			}
			if res == id || !pointerLike(c.pass.TypeOf(res)) {
				// Returning the scratch itself is the acquirer shape
				// (handled by classification); a non-pointer derived
				// value (len, a copied element) is harmless.
				if res == id && !isAcquirer {
					c.pass.Reportf(id.Pos(), "pooled %s escapes via return — only acquirer helpers may hand scratch to callers", obj.Name())
				}
				continue
			}
			c.pass.Reportf(id.Pos(), "pointer derived from pooled %s escapes via return — the pool may hand %s to the next query while the caller still holds the alias", obj.Name(), obj.Name())
		}
	case *ast.SendStmt:
		if id := pointerBase(x.Value); id != nil {
			if obj := c.pass.ObjectOf(id); obj != nil {
				if _, ok := tracked[obj]; ok {
					c.pass.Reportf(id.Pos(), "pooled %s escapes via channel send", obj.Name())
				}
			}
		}
	case *ast.AssignStmt:
		c.checkStoreEscape(x, tracked)
	}
}

// checkStoreEscape flags assignments that store a tracked pointer (or a
// pointer-like value derived from it) into anything that outlives the
// frame: a field, an element, a dereference, or a package-level variable.
func (c *checker) checkStoreEscape(as *ast.AssignStmt, tracked map[types.Object]int) {
	for i, rhs := range as.Rhs {
		id := pointerBase(rhs)
		if id == nil {
			continue
		}
		obj := c.pass.ObjectOf(id)
		if obj == nil {
			continue
		}
		if _, ok := tracked[obj]; !ok {
			continue
		}
		if rhs != id && !pointerLike(c.pass.TypeOf(rhs)) {
			continue // a copied scalar derived from the scratch is fine
		}
		if i >= len(as.Lhs) {
			continue
		}
		// Self-store: writing a value derived from the scratch into one of
		// the scratch's own fields (`sc.visit = sc.knnVisit`) creates an
		// alias that lives exactly as long as the scratch — not an escape.
		if lhsBase := pointerBase(as.Lhs[i]); lhsBase != nil && c.pass.ObjectOf(lhsBase) == obj {
			continue
		}
		if c.escapingTarget(as.Lhs[i]) {
			c.pass.Reportf(id.Pos(), "pooled %s is stored outside the function's frame while borrowed", obj.Name())
		}
	}
}

// escapingTarget reports whether an assignment target outlives the
// current call frame.
func (c *checker) escapingTarget(lhs ast.Expr) bool {
	switch t := lhs.(type) {
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	case *ast.Ident:
		obj := c.pass.ObjectOf(t)
		// Package-level variables outlive everything.
		return obj != nil && obj.Parent() == c.pass.Pkg.Scope()
	}
	return false
}

// checkClosureCaptures flags tracked variables captured by function
// literals, which may outlive the borrow. Literals that release the
// variable themselves (the `defer func() { put(sc) }()` cleanup shape)
// are exempt.
func (c *checker) checkClosureCaptures(body *ast.BlockStmt, tracked map[types.Object]int) {
	ast.Inspect(body, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		reported := map[types.Object]bool{}
		releases := map[types.Object]bool{}
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			if call, ok := m.(*ast.CallExpr); ok {
				if obj := c.releasedVar(call, tracked); obj != nil {
					releases[obj] = true
				}
			}
			return true
		})
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			id, ok := m.(*ast.Ident)
			if !ok {
				return true
			}
			obj := c.pass.ObjectOf(id)
			if obj == nil || reported[obj] || releases[obj] {
				return true
			}
			if _, isTracked := tracked[obj]; isTracked {
				reported[obj] = true
				c.pass.Reportf(id.Pos(), "pooled %s is captured by a function literal that may outlive the borrow", obj.Name())
			}
			return true
		})
		return false // literal handled; its own borrows are checked separately
	})
}

// pointerBase unwraps selector/index/slice/star/paren chains and returns
// the root identifier, or nil when the expression is not rooted in one.
func pointerBase(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				e = x.X
				continue
			}
			return nil
		default:
			return nil
		}
	}
}

// pointerLike reports whether values of t alias memory: pointers, slices,
// maps, channels, functions and interfaces.
func pointerLike(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Signature, *types.Interface:
		return true
	}
	return false
}

// walkShallow walks the AST under n without descending into nested
// function literals (they run when called, as their own functions).
func walkShallow(n ast.Node, f func(ast.Node)) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		if m != nil {
			f(m)
		}
		return true
	})
}
