package scratchleak_test

import (
	"testing"

	"mmdr/internal/analysis/analysistest"
	"mmdr/internal/analysis/scratchleak"
)

func TestScratchLeak(t *testing.T) {
	analysistest.Run(t, scratchleak.Analyzer, "scratch")
}
