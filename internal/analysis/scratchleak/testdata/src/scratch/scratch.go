// Package scratch exercises scratchleak: pool-borrow discipline — Put on
// every non-panicking path, no use or double-return after Put, and no
// escape of pooled pointers while borrowed.
package scratch

import "sync"

type scratch struct {
	buf []float64
	n   int
}

var scratchPool = sync.Pool{New: func() any { return &scratch{} }}

// getScratch is the acquirer helper: it returns the borrow to its caller,
// so ownership transfer is its job, not a leak.
func getScratch() *scratch {
	sc := scratchPool.Get().(*scratch)
	sc.n = 0
	return sc
}

// putScratch is the releaser helper: calling it counts as a Put.
func putScratch(sc *scratch) {
	sc.buf = sc.buf[:0]
	scratchPool.Put(sc)
}

// wrapScratch returns another acquirer's result — itself an acquirer
// (classification iterates to a fixpoint).
func wrapScratch() *scratch {
	sc := getScratch()
	return sc
}

// DeferIdiom is the repository's standard shape — fine.
func DeferIdiom(q []float64) float64 {
	sc := getScratch()
	defer putScratch(sc)
	sc.buf = append(sc.buf, q...)
	return sc.buf[0]
}

// DirectPut releases on the single path — fine.
func DirectPut() {
	sc := scratchPool.Get().(*scratch)
	sc.n++
	scratchPool.Put(sc)
}

// EarlyReturnLeak skips the Put when cond is true.
func EarlyReturnLeak(cond bool) {
	sc := getScratch() // want `sc is borrowed from the pool but not returned by Put on every non-panicking path`
	if cond {
		return
	}
	putScratch(sc)
}

// NeverPut leaks on every path.
func NeverPut() int {
	sc := getScratch() // want `sc is borrowed from the pool but not returned by Put on every non-panicking path`
	return sc.n
}

// UseAfterPut touches the scratch after handing it back.
func UseAfterPut() int {
	sc := getScratch()
	putScratch(sc)
	return sc.n // want `sc is used after being returned to the pool`
}

// DoublePut returns the same borrow twice.
func DoublePut() {
	sc := getScratch()
	putScratch(sc)
	putScratch(sc) // want `sc is returned to the pool twice`
}

// DeferKeepsUsable: a deferred Put discharges the obligation but the
// scratch stays usable until return — fine.
func DeferKeepsUsable() int {
	sc := getScratch()
	defer scratchPool.Put(sc)
	sc.n = 7
	return sc.n
}

// DeferredClosureRelease releases through a deferred literal — fine, and
// the literal's capture of sc is the sanctioned cleanup shape.
func DeferredClosureRelease() {
	sc := getScratch()
	defer func() {
		putScratch(sc)
	}()
	sc.n++
}

// PanicPathExempt: the dying path owes no Put.
func PanicPathExempt(cond bool) {
	sc := getScratch()
	if cond {
		panic("corrupt index")
	}
	putScratch(sc)
}

// EscapeDerivedReturn leaks an alias into the caller while the pool gets
// the scratch back.
func EscapeDerivedReturn(q []float64) []float64 {
	sc := getScratch()
	defer putScratch(sc)
	sc.buf = append(sc.buf[:0], q...)
	return sc.buf // want `pointer derived from pooled sc escapes via return`
}

// CopiedScalarReturn returns a value copied out of the scratch — fine.
func CopiedScalarReturn() int {
	sc := getScratch()
	defer putScratch(sc)
	return sc.n
}

type registry struct {
	sc  *scratch
	buf []float64
}

// EscapeFieldStore parks a pooled pointer in a longer-lived struct.
func EscapeFieldStore(r *registry) {
	sc := getScratch()
	defer putScratch(sc)
	r.sc = sc // want `pooled sc is stored outside the function's frame while borrowed`
}

// EscapeDerivedFieldStore parks a derived slice.
func EscapeDerivedFieldStore(r *registry) {
	sc := getScratch()
	defer putScratch(sc)
	r.buf = sc.buf // want `pooled sc is stored outside the function's frame while borrowed`
}

var parkedGlobal *scratch

// EscapeGlobal stores the borrow into a package-level variable.
func EscapeGlobal() {
	sc := getScratch()
	defer putScratch(sc)
	parkedGlobal = sc // want `pooled sc is stored outside the function's frame while borrowed`
}

type visitor struct {
	buf   []float64
	visit func() int
}

func (v *visitor) count() int { return len(v.buf) }

var visitorPool = sync.Pool{New: func() any { return &visitor{} }}

// SelfStoreOK: binding a method value (or any derived pointer) into the
// scratch's own fields aliases nothing beyond the scratch's lifetime.
func SelfStoreOK() int {
	v := visitorPool.Get().(*visitor)
	defer visitorPool.Put(v)
	v.visit = v.count
	return v.visit()
}

// LocalAliasOK: an alias confined to the frame is fine.
func LocalAliasOK() float64 {
	sc := getScratch()
	defer putScratch(sc)
	sc.buf = append(sc.buf[:0], 1, 2, 3)
	b := sc.buf
	return b[0]
}

// EscapeChanSend hands the borrow to another goroutine.
func EscapeChanSend(ch chan *scratch) {
	sc := getScratch()
	defer putScratch(sc)
	ch <- sc // want `pooled sc escapes via channel send`
}

// ClosureCapture lets a goroutine outlive the borrow.
func ClosureCapture() {
	sc := getScratch()
	defer putScratch(sc)
	go func() {
		_ = sc.buf // want `pooled sc is captured by a function literal that may outlive the borrow`
	}()
}

// Reacquire: a fresh borrow into the same variable after a Put revives
// it — fine.
func Reacquire() {
	sc := getScratch()
	putScratch(sc)
	sc = getScratch()
	sc.n++
	putScratch(sc)
}

// Parked intentionally transfers ownership to the registry; both the leak
// and the store are visible, justified deviations.
func Parked(r *registry) {
	//mmdr:ignore scratchleak ownership transfers to the registry, flushed by its owner
	sc := getScratch()
	//mmdr:ignore scratchleak parked in the registry until flush
	r.sc = sc
}

// LoopBorrow borrows and returns per iteration — fine, including the back
// edge.
func LoopBorrow(n int) {
	for i := 0; i < n; i++ {
		sc := getScratch()
		sc.n = i
		putScratch(sc)
	}
}
