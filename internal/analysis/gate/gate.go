// Package gate enforces compiler contracts over the repo's hot-path
// kernels: it rebuilds the hot packages with escape-analysis, inlining and
// bounds-check diagnostics enabled (-gcflags='-m=2 -d=ssa/check_bce/debug=1'),
// parses the compiler's output into a structured model, maps every
// diagnostic to its enclosing function via go/ast position info, and checks
// the result against a committed per-function contract manifest
// (contracts/contracts.json).
//
// This is deliberately NOT an extension of mmdrlint. The mmdrlint analyzers
// (internal/analysis) enforce source-level invariants — what the code says.
// The gate enforces compiler decisions — what the optimizer actually did
// with it: whether a //mmdr:hotpath function heap-allocates, whether a
// kernel inner loop still carries bounds checks, whether a designated leaf
// kernel stayed inlinable. Those decisions are invisible in the AST; they
// can regress silently under an innocent-looking edit (a value captured by
// a closure, an index shape the prove pass no longer understands, one
// statement pushing a leaf past the inlining budget) and the only ground
// truth is the compiler's own diagnostics.
//
// Contract obligations, per function:
//
//   - no heap escapes: no "escapes to heap"/"moved to heap" diagnostics
//     attributed to the function, except constant-string spills on panic
//     paths (rodata, only materialized when the panic fires) and
//     explicitly allow-listed escapes (e.g. a batch API's per-query result
//     slices), each allowance carrying a reason.
//   - bounds-check budgets: "Found IsInBounds"/"Found IsSliceInBounds"
//     counts, total and inside loops, pinned per function. Zero for the
//     small-dimension kernels whose loop shapes were rewritten for the
//     prove pass; small pinned budgets (with justifications) where the
//     measured-fastest shape keeps a check the compiler cannot eliminate.
//   - inlining: designated leaf kernels must stay inlinable ("can inline"
//     reported); heavier kernels pin a cost ceiling instead, so a change
//     that makes an already-uninlinable kernel drastically hairier (or
//     trips an "unhandled op" bailout) is still caught.
//
// Diagnostics the parser does not recognize degrade to warnings, never
// hard failures: compiler output is not a stable API, and the gate must
// not break CI on a toolchain upgrade. Budget comparisons likewise demote
// to warnings when the running toolchain's minor version differs from the
// one the manifest was pinned against (strict mode reports the drift
// itself). See DESIGN.md §11.
package gate

import (
	"fmt"
	"io"
	"sort"
)

// Result is the outcome of one gate run.
type Result struct {
	// GoVersion is the toolchain that produced the diagnostics (go env
	// GOVERSION).
	GoVersion string
	// Drifted is true when GoVersion's minor differs from the manifest's
	// pinned toolchain; budget violations are demoted to warnings.
	Drifted bool
	// Violations are contract breaches (fail the gate in strict mode).
	Violations []Finding
	// Warnings are advisory: unknown diagnostic lines, drift-demoted
	// budget mismatches, uncovered hot-path packages.
	Warnings []Finding
	// Funcs is the per-function diagnostic summary (for -v output).
	Funcs []FuncReport
}

// Finding is one gate finding, formatted like the mmdrlint diagnostics so
// editors and CI logs treat both suites uniformly.
type Finding struct {
	File string // module-relative path ("" when not positional)
	Line int
	Col  int
	Func string // enclosing function ("" when not attributable)
	Msg  string
}

func (f Finding) String() string {
	pos := f.File
	if pos == "" {
		pos = "gate"
	} else {
		pos = fmt.Sprintf("%s:%d:%d", f.File, f.Line, f.Col)
	}
	if f.Func != "" {
		return fmt.Sprintf("%s: gate: %s [func %s]", pos, f.Msg, f.Func)
	}
	return fmt.Sprintf("%s: gate: %s", pos, f.Msg)
}

// FuncReport summarizes the compiler's decisions for one contracted or
// hot-path function.
type FuncReport struct {
	Pkg  string // package directory, module-relative
	Name string // compiler-style name: F, T.M, (*T).M
	File string
	Line int

	Hotpath bool

	Escapes      []string // non-benign escape subjects
	BenignSpills int      // constant-string panic spills
	LeakParams   []string // params whose pointees may outlive the call

	BoundsTotal  int // Found Is(Slice)InBounds anywhere in the function
	BoundsInLoop int // ... at loop depth >= 1

	InlineStatus string // "can", "cannot", "" (not reported)
	InlineCost   int    // parsed cost, -1 unknown
	InlineReason string // bailout reason for "cannot"
}

// Print renders the result in mmdrlint's one-line-per-finding style.
func (r *Result) Print(w io.Writer, verbose bool) {
	if verbose {
		funcs := append([]FuncReport(nil), r.Funcs...)
		sort.Slice(funcs, func(i, j int) bool {
			if funcs[i].Pkg != funcs[j].Pkg {
				return funcs[i].Pkg < funcs[j].Pkg
			}
			return funcs[i].Name < funcs[j].Name
		})
		for _, f := range funcs {
			inline := f.InlineStatus
			if inline == "" {
				inline = "?"
			}
			fmt.Fprintf(w, "# %s.%s: escapes=%d leaks=%d bounds=%d(loop %d) inline=%s cost=%d\n",
				f.Pkg, f.Name, len(f.Escapes), len(f.LeakParams), f.BoundsTotal, f.BoundsInLoop, inline, f.InlineCost)
		}
	}
	for _, f := range r.Warnings {
		fmt.Fprintf(w, "warning: %s\n", f)
	}
	for _, f := range r.Violations {
		fmt.Fprintln(w, f.String())
	}
}
