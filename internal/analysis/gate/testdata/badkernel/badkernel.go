// Package badkernel is the gate's negative fixture: every function here
// deliberately violates the compiler contract its test manifest pins, so
// the integration test can prove mmdrgate actually fails when the compiler
// regresses. Living under testdata/ keeps it out of ./... builds; the gate
// compiles it by explicit package path.
package badkernel

// Escapes returns a fresh heap slice from a hot-path function — the exact
// regression the default no-escape contract exists to catch.
//
//mmdr:hotpath
func Escapes(n int) []float64 {
	buf := make([]float64, n)
	for i := range buf {
		buf[i] = float64(i)
	}
	return buf
}

// Checked indexes through a data-dependent permutation, so the prove pass
// can never eliminate the inner bounds check. Its manifest pins a zero
// bounds budget.
//
//mmdr:hotpath
func Checked(xs []int, idx []int) int {
	s := 0
	for _, j := range idx {
		s += xs[j]
	}
	return s
}

// NotInlinable recurses, which the inliner categorically refuses; its
// manifest marks it must-inline.
//
//mmdr:hotpath
func NotInlinable(n int) int {
	if n <= 0 {
		return 0
	}
	return n + NotInlinable(n-1)
}
