package gate

import (
	"os"
	"path/filepath"
	"testing"
)

const funcmapFixture = `package fix

// Plain is a plain function.
//
//mmdr:hotpath
func Plain(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}

type T struct{ n int }

func (t T) Value() int { return t.n }

func (t *T) Bump(k int) {
	for i := 0; i < k; i++ {
		t.n++
	}
}

type G[E any] struct{ v E }

func (g *G[E]) Get() E { return g.v }
`

func loadFixtureFuncs(t *testing.T) *FuncMap {
	t.Helper()
	root := t.TempDir()
	dir := filepath.Join(root, "pkg", "fix")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "fix.go"), []byte(funcmapFixture), 0o644); err != nil {
		t.Fatal(err)
	}
	// A test file must be ignored even if present.
	if err := os.WriteFile(filepath.Join(dir, "fix_test.go"), []byte("package fix\n\nfunc helper() {}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	fm, err := LoadFuncs(root, []string{"pkg/fix"})
	if err != nil {
		t.Fatal(err)
	}
	return fm
}

func TestCompilerNames(t *testing.T) {
	fm := loadFixtureFuncs(t)
	for _, name := range []string{"Plain", "T.Value", "(*T).Bump", "(*G).Get"} {
		if fm.Lookup("pkg/fix", name) == nil {
			t.Errorf("Lookup(%q) = nil; have %v", name, spanNames(fm))
		}
	}
	if fm.Lookup("pkg/fix", "helper") != nil {
		t.Error("test-file function leaked into the map")
	}
}

func TestHotpathAndLoops(t *testing.T) {
	fm := loadFixtureFuncs(t)
	plain := fm.Lookup("pkg/fix", "Plain")
	if !plain.Hotpath {
		t.Error("Plain lost its //mmdr:hotpath directive")
	}
	if v := fm.Lookup("pkg/fix", "T.Value"); v.Hotpath {
		t.Error("T.Value is not hot-path")
	}
	// The range body spans lines 8-10 of the fixture.
	if !plain.InLoop(9) {
		t.Error("line inside the range body not classified in-loop")
	}
	if plain.InLoop(7) || plain.InLoop(11) {
		t.Error("line outside the range body classified in-loop")
	}
}

func TestEnclosing(t *testing.T) {
	fm := loadFixtureFuncs(t)
	if s := fm.Enclosing("pkg/fix/fix.go", 9); s == nil || s.Name != "Plain" {
		t.Errorf("Enclosing(line 9) = %v, want Plain", s)
	}
	if s := fm.Enclosing("pkg/fix/fix.go", 13); s != nil {
		t.Errorf("Enclosing(type decl line) = %v, want nil", s)
	}
	if s := fm.Enclosing("pkg/fix/other.go", 9); s != nil {
		t.Errorf("Enclosing(unknown file) = %v, want nil", s)
	}
}

func spanNames(fm *FuncMap) []string {
	var out []string
	for _, s := range fm.Spans {
		out = append(out, s.Name)
	}
	return out
}
