package gate

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// diagFlags are the compiler flags whose output the gate parses:
// -m=2 for escape analysis + inlining decisions (with flow traces),
// -d=ssa/check_bce/debug=1 for every bounds check the prove pass failed
// to eliminate.
const diagFlags = "-m=2 -d=ssa/check_bce/debug=1"

// Toolchain runs the go command rooted at the module being gated.
type Toolchain struct {
	// Root is the module root (directory containing go.mod).
	Root string
	// GoCmd is the go binary to invoke ("go" by default).
	GoCmd string
	// Module is the module path from go.mod ("mmdr").
	Module string
}

// FindToolchain locates the enclosing module from dir.
func FindToolchain(dir string) (*Toolchain, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("gate: no go.mod found above %s", abs)
		}
		root = parent
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	mod := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			mod = strings.TrimSpace(rest)
			break
		}
	}
	if mod == "" {
		return nil, fmt.Errorf("gate: no module directive in %s/go.mod", root)
	}
	return &Toolchain{Root: root, GoCmd: "go", Module: mod}, nil
}

// GoVersion reports the toolchain version ("go1.24.0").
func (tc *Toolchain) GoVersion() (string, error) {
	out, err := tc.run("env", "GOVERSION")
	if err != nil {
		return "", err
	}
	return strings.TrimSpace(out), nil
}

// MinorVersion truncates "go1.24.0" to "go1.24".
func MinorVersion(v string) string {
	parts := strings.SplitN(v, ".", 3)
	if len(parts) < 2 {
		return v
	}
	return parts[0] + "." + parts[1]
}

// BuildDiagnostics compiles the given module-relative package dirs with
// the diagnostic flags scoped to exactly those packages (so dependency
// compiles stay quiet) and returns the raw compiler stderr. The go build
// cache replays compiler diagnostics on cache hits, so repeat runs are
// cheap and still produce full output.
func (tc *Toolchain) BuildDiagnostics(pkgDirs []string) (string, error) {
	args := []string{"build"}
	patterns := make([]string, 0, len(pkgDirs))
	for _, dir := range pkgDirs {
		importPath := tc.Module + "/" + dir
		args = append(args, fmt.Sprintf("-gcflags=%s=%s", importPath, diagFlags))
		patterns = append(patterns, "./"+dir)
	}
	args = append(args, patterns...)
	cmd := exec.Command(tc.GoCmd, args...)
	cmd.Dir = tc.Root
	var stderr bytes.Buffer
	cmd.Stdout = &stderr // go build prints diagnostics on stderr; fold both
	cmd.Stderr = &stderr
	err := cmd.Run()
	out := stderr.String()
	if err != nil {
		// A compile failure means the diagnostics are garbage — that is
		// an infra error, not a contract finding.
		return out, fmt.Errorf("gate: go build failed: %w\n%s", err, out)
	}
	return out, nil
}

func (tc *Toolchain) run(args ...string) (string, error) {
	cmd := exec.Command(tc.GoCmd, args...)
	cmd.Dir = tc.Root
	var out bytes.Buffer
	cmd.Stdout = &out
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return "", fmt.Errorf("gate: go %s: %w\n%s", strings.Join(args, " "), err, stderr.String())
	}
	return out.String(), nil
}

// HotpathPackages scans the module for non-test files containing a
// //mmdr:hotpath directive and returns their package dirs — used to warn
// when a hot-path package is missing from the manifest. The scan is
// textual (no parsing): a false positive in a comment costs a warning,
// never a failure.
func (tc *Toolchain) HotpathPackages() ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	err := filepath.WalkDir(tc.Root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if name == "testdata" || name == ".git" || strings.HasPrefix(name, ".") && path != tc.Root {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		if !bytes.Contains(data, []byte("//mmdr:hotpath")) {
			return nil
		}
		rel, err := filepath.Rel(tc.Root, filepath.Dir(path))
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		if !seen[rel] {
			seen[rel] = true
			dirs = append(dirs, rel)
		}
		return nil
	})
	return dirs, err
}
