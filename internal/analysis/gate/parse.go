package gate

import (
	"strconv"
	"strings"
)

// Kind classifies one compiler diagnostic line.
type Kind int

const (
	// KindUnknown is a positional line the parser does not recognize.
	// Unknown lines degrade to warnings — compiler output is not a
	// stable API and the gate must survive toolchain drift.
	KindUnknown Kind = iota
	// KindEscape: "X escapes to heap" / "moved to heap: x" — a per-call
	// heap allocation attributed to the function.
	KindEscape
	// KindLeakParam: "leaking param: x" and friends — the parameter's
	// pointee may outlive the call. Not an allocation by itself (the
	// caller chose where x lives), so tracked separately from escapes.
	KindLeakParam
	// KindNoEscape: "x does not escape" — recorded for completeness.
	KindNoEscape
	// KindCanInline: "can inline F with cost N as: ..."
	KindCanInline
	// KindCannotInline: "cannot inline F: reason"
	KindCannotInline
	// KindInlineCall: "inlining call to F"
	KindInlineCall
	// KindBoundsCheck: "Found IsInBounds" / "Found IsSliceInBounds"
	// from -d=ssa/check_bce/debug=1.
	KindBoundsCheck
	// KindDetail is a -m=2 elaboration line (escape flow traces,
	// "parameter x leaks to {heap} ..." blocks). The summary line that
	// accompanies every block carries the fact; details are kept only
	// for -v rendering.
	KindDetail
)

// Diag is one parsed compiler diagnostic.
type Diag struct {
	File string // as printed by the compiler (module-relative when built from the module root)
	Line int
	Col  int

	Kind    Kind
	Subject string // escaped expression, leaked param, or function name
	Detail  string // remainder of the message (inline bailout reason, escape flow, ...)
	Cost    int    // inlining cost when the line carries one, else -1
	IsSlice bool   // for KindBoundsCheck: IsSliceInBounds vs IsInBounds
	Moved   bool   // for KindEscape: "moved to heap" (a local) vs "escapes to heap"

	Raw string // the full line, verbatim
}

// ConstString reports whether an escape subject is a quoted string
// constant — the storage spill of a panic("...") message. Those live in
// rodata and are only boxed on the (already-dead) panic path, so the
// no-escape contract treats them as benign.
func (d *Diag) ConstString() bool {
	return strings.HasPrefix(d.Subject, `"`) || strings.HasPrefix(d.Subject, "`")
}

// ParseDiagnostics parses `go build -gcflags='-m=2 -d=ssa/check_bce/debug=1'`
// stderr into structured diagnostics. Lines that carry no position
// ("# package" headers, linker chatter) are skipped; positional lines that
// match no known shape come back as KindUnknown so the caller can warn
// without failing.
func ParseDiagnostics(out string) []Diag {
	var diags []Diag
	for _, line := range strings.Split(out, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		file, ln, col, msg, ok := splitPos(line)
		if !ok {
			continue
		}
		d := Diag{File: file, Line: ln, Col: col, Cost: -1, Raw: line}
		classify(&d, msg)
		diags = append(diags, d)
	}
	return diags
}

// splitPos splits "file.go:12:34: message" (column optional in older
// toolchains: "file.go:12: message"). Returns ok=false for lines with no
// file:line prefix.
func splitPos(line string) (file string, ln, col int, msg string, ok bool) {
	// Find ": " after the positional prefix; the prefix itself contains
	// colons, so scan the first three fields manually.
	rest := line
	i := strings.Index(rest, ".go:")
	if i < 0 {
		return "", 0, 0, "", false
	}
	file = rest[:i+3]
	rest = rest[i+4:]
	j := strings.IndexByte(rest, ':')
	if j < 0 {
		return "", 0, 0, "", false
	}
	n, err := strconv.Atoi(rest[:j])
	if err != nil {
		return "", 0, 0, "", false
	}
	ln = n
	rest = rest[j+1:]
	// Optional column.
	if k := strings.IndexByte(rest, ':'); k >= 0 {
		if c, err := strconv.Atoi(rest[:k]); err == nil {
			col = c
			rest = rest[k+1:]
		}
	}
	msg = strings.TrimPrefix(rest, " ")
	return file, ln, col, msg, true
}

func classify(d *Diag, msg string) {
	// -m=2 elaboration blocks: indented flow traces under an escape
	// summary, and the verbose "parameter x leaks to {heap} with
	// derefs=N:" form that always accompanies a "leaking param" summary.
	if strings.HasPrefix(msg, " ") || strings.HasPrefix(msg, "\t") {
		d.Kind = KindDetail
		d.Detail = strings.TrimSpace(msg)
		return
	}
	switch {
	case msg == "Found IsInBounds":
		d.Kind = KindBoundsCheck
	case msg == "Found IsSliceInBounds":
		d.Kind = KindBoundsCheck
		d.IsSlice = true
	case strings.HasPrefix(msg, "can inline "):
		d.Kind = KindCanInline
		rest := strings.TrimPrefix(msg, "can inline ")
		if i := strings.Index(rest, " with cost "); i >= 0 {
			d.Subject = rest[:i]
			costStr := rest[i+len(" with cost "):]
			if j := strings.Index(costStr, " as:"); j >= 0 {
				d.Detail = costStr[j+1:]
				costStr = costStr[:j]
			}
			if c, err := strconv.Atoi(strings.TrimSpace(costStr)); err == nil {
				d.Cost = c
			}
		} else {
			// Older toolchains print "can inline F" with no cost.
			d.Subject = rest
		}
	case strings.HasPrefix(msg, "cannot inline "):
		d.Kind = KindCannotInline
		rest := strings.TrimPrefix(msg, "cannot inline ")
		if i := strings.Index(rest, ": "); i >= 0 {
			d.Subject = rest[:i]
			d.Detail = rest[i+2:]
		} else {
			d.Subject = rest
		}
		// "function too complex: cost 124 exceeds budget 80" → 124.
		if i := strings.Index(d.Detail, "cost "); i >= 0 {
			costStr := d.Detail[i+len("cost "):]
			if j := strings.IndexByte(costStr, ' '); j >= 0 {
				costStr = costStr[:j]
			}
			if c, err := strconv.Atoi(costStr); err == nil {
				d.Cost = c
			}
		}
	case strings.HasPrefix(msg, "inlining call to "):
		d.Kind = KindInlineCall
		d.Subject = strings.TrimPrefix(msg, "inlining call to ")
	case strings.HasPrefix(msg, "moved to heap: "):
		d.Kind = KindEscape
		d.Moved = true
		d.Subject = strings.TrimPrefix(msg, "moved to heap: ")
	case strings.HasSuffix(msg, " escapes to heap") || strings.HasSuffix(msg, " escapes to heap:"):
		d.Kind = KindEscape
		d.Subject = strings.TrimSuffix(strings.TrimSuffix(msg, ":"), " escapes to heap")
	case strings.HasPrefix(msg, "leaking param content: "):
		d.Kind = KindLeakParam
		d.Subject = strings.TrimPrefix(msg, "leaking param content: ")
	case strings.HasPrefix(msg, "leaking param: "):
		rest := strings.TrimPrefix(msg, "leaking param: ")
		d.Subject = rest
		if i := strings.Index(rest, " to result "); i >= 0 {
			// Flows to a result, not the heap: not a leak the
			// no-escape contract cares about.
			d.Kind = KindNoEscape
			d.Subject = rest[:i]
			d.Detail = rest[i+1:]
		} else {
			d.Kind = KindLeakParam
		}
	case strings.HasPrefix(msg, "parameter ") && strings.Contains(msg, " leaks to "):
		// -m=2 verbose block opener; the "leaking param" summary line
		// carries the same fact.
		d.Kind = KindDetail
		d.Detail = msg
	case strings.HasSuffix(msg, " does not escape"):
		d.Kind = KindNoEscape
		d.Subject = strings.TrimSuffix(msg, " does not escape")
	case msg == "index bounds check elided",
		strings.Contains(msg, " ignoring self-assignment in "),
		strings.Contains(msg, " capturing by ref: "),
		strings.Contains(msg, " capturing by value: "):
		// -m=2 / check_bce chatter with no contract relevance.
		d.Kind = KindDetail
		d.Detail = msg
	case strings.Contains(msg, "escapes to heap, but"):
		// e.g. "x escapes to heap, but is constant-sized" style variants
		// some toolchains emit; treat as escape with detail.
		d.Kind = KindEscape
		if i := strings.Index(msg, " escapes to heap"); i >= 0 {
			d.Subject = msg[:i]
			d.Detail = msg[i+1:]
		}
	default:
		d.Kind = KindUnknown
		d.Detail = msg
	}
}
