package gate

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestEmbeddedManifest: the committed manifest must always load and
// validate — a malformed edit should fail here, not at gate runtime.
func TestEmbeddedManifest(t *testing.T) {
	m, err := LoadManifest("")
	if err != nil {
		t.Fatal(err)
	}
	if m.Go == "" || len(m.Packages) == 0 {
		t.Fatalf("embedded manifest is empty: %+v", m)
	}
	if m.Contract("internal/matrix", "ADCSum") == nil {
		t.Error("embedded manifest lost the ADCSum contract")
	}
	if c := m.Contract("internal/matrix", "ADCSum"); c != nil && !c.MustInline {
		t.Error("ADCSum must stay a must-inline leaf")
	}
	if m.Contract("internal/matrix", "NoSuchKernel") != nil {
		t.Error("Contract invented an entry")
	}
}

func writeManifest(t *testing.T, body string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "m.json")
	if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestManifestValidation(t *testing.T) {
	cases := []struct {
		name    string
		body    string
		wantErr string
	}{
		{
			"missing go pin",
			`{"packages":[{"path":"internal/matrix"}]}`,
			"missing pinned go version",
		},
		{
			"duplicate package",
			`{"go":"go1.24","packages":[{"path":"a"},{"path":"a"}]}`,
			"duplicate package",
		},
		{
			"absolute path",
			`{"go":"go1.24","packages":[{"path":"/a"}]}`,
			"module-relative",
		},
		{
			"budget without reason",
			`{"go":"go1.24","packages":[{"path":"a","functions":[{"name":"F","max_bounds":3}]}]}`,
			"needs a reason",
		},
		{
			"allowance without reason",
			`{"go":"go1.24","packages":[{"path":"a","functions":[{"name":"F","allow_escapes":[{"pattern":"make("}]}]}]}`,
			"pattern and reason",
		},
		{
			"duplicate function",
			`{"go":"go1.24","packages":[{"path":"a","functions":[{"name":"F"},{"name":"F"}]}]}`,
			"duplicate contract",
		},
		{
			"unknown field",
			`{"go":"go1.24","packages":[{"path":"a","functions":[{"name":"F","max_escapes":1}]}]}`,
			"unknown field",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := LoadManifest(writeManifest(t, c.body))
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("err = %v, want substring %q", err, c.wantErr)
			}
		})
	}

	// Zero budgets are the strongest contract and need no justification.
	ok := `{"go":"go1.24","packages":[{"path":"a","functions":[{"name":"F","max_bounds":0,"max_loop_bounds":0}]}]}`
	if _, err := LoadManifest(writeManifest(t, ok)); err != nil {
		t.Fatalf("zero-budget contract rejected: %v", err)
	}
}

func TestMinorVersion(t *testing.T) {
	for in, want := range map[string]string{
		"go1.24.0": "go1.24",
		"go1.24":   "go1.24",
		"go1.25.3": "go1.25",
		"devel":    "devel",
	} {
		if got := MinorVersion(in); got != want {
			t.Errorf("MinorVersion(%q) = %q, want %q", in, got, want)
		}
	}
}
