package gate

import (
	"os"
	"testing"
)

// TestParseGoldenModern locks the parser against the go1.24-era output
// shape: columns on every position, costs on inline decisions, -m=2 flow
// traces indented under their summary line.
func TestParseGoldenModern(t *testing.T) {
	data, err := os.ReadFile("testdata/diag_go124.txt")
	if err != nil {
		t.Fatal(err)
	}
	diags := ParseDiagnostics(string(data))

	byKind := make(map[Kind]int)
	for _, d := range diags {
		byKind[d.Kind]++
	}
	want := map[Kind]int{
		KindCanInline:    1,
		KindCannotInline: 1,
		KindInlineCall:   1,
		KindLeakParam:    1,
		KindNoEscape:     2, // "code does not escape" + "leaking param: q to result"
		KindBoundsCheck:  2,
		KindEscape:       4, // make, moved-to-heap, const string, func literal
		KindDetail:       3, // two flow-trace lines + "parameter idx leaks to"
		KindUnknown:      1,
	}
	for k, n := range want {
		if byKind[k] != n {
			t.Errorf("kind %d: got %d diagnostics, want %d", k, byKind[k], n)
		}
	}
	if got := len(diags); got != 16 {
		t.Errorf("parsed %d positional diagnostics, want 16 (# headers skipped)", got)
	}

	find := func(kind Kind, subject string) *Diag {
		for i := range diags {
			if diags[i].Kind == kind && diags[i].Subject == subject {
				return &diags[i]
			}
		}
		t.Fatalf("no diagnostic of kind %d with subject %q", kind, subject)
		return nil
	}

	can := find(KindCanInline, "dotSmall")
	if can.Cost != 26 {
		t.Errorf("can-inline cost = %d, want 26", can.Cost)
	}
	if can.File != "internal/matrix/kernels.go" || can.Line != 34 || can.Col != 6 {
		t.Errorf("can-inline position = %s:%d:%d", can.File, can.Line, can.Col)
	}

	cannot := find(KindCannotInline, "DotUnroll4")
	if cannot.Cost != 145 {
		t.Errorf("cannot-inline parsed cost = %d, want 145", cannot.Cost)
	}
	if cannot.Detail == "" {
		t.Error("cannot-inline lost its bailout reason")
	}

	esc := find(KindEscape, "make([]float64, idx.ds.Dim)")
	if esc.Moved {
		t.Error("a make escape is not a moved-to-heap local")
	}
	moved := find(KindEscape, "bestScore")
	if !moved.Moved {
		t.Error("moved-to-heap lost its Moved flag")
	}
	spill := find(KindEscape, `"idist: Insert dimension %d, want %d"`)
	if !spill.ConstString() {
		t.Error("a quoted panic/error message should classify as a benign const-string spill")
	}
	if lit := find(KindEscape, "func literal"); lit.ConstString() {
		t.Error("a func literal is not a const-string spill")
	}

	// "leaking param: q to result ~r0" flows to a result, not the heap.
	toResult := find(KindNoEscape, "q")
	if toResult.Line != 430 {
		t.Errorf("to-result leak position line = %d, want 430", toResult.Line)
	}

	for _, d := range diags {
		if d.Kind == KindBoundsCheck && d.File == "internal/matrix/kernels.go" && !d.IsSlice {
			t.Error("IsSliceInBounds lost its IsSlice flag")
		}
	}
}

// TestParseGoldenOld locks the parser against the older column-less,
// cost-less output shape: the gate must still classify every line (with
// Col=0 and Cost=-1) rather than degrade them all to unknowns.
func TestParseGoldenOld(t *testing.T) {
	data, err := os.ReadFile("testdata/diag_old.txt")
	if err != nil {
		t.Fatal(err)
	}
	diags := ParseDiagnostics(string(data))
	if len(diags) != 5 {
		t.Fatalf("parsed %d diagnostics, want 5", len(diags))
	}
	for _, d := range diags {
		if d.Kind == KindUnknown {
			t.Errorf("old-format line degraded to unknown: %q", d.Raw)
		}
		if d.Col != 0 {
			t.Errorf("column-less line parsed col %d: %q", d.Col, d.Raw)
		}
	}
	if diags[0].Kind != KindCanInline || diags[0].Subject != "DotUnroll4" || diags[0].Cost != -1 {
		t.Errorf("cost-less can-inline parsed as %+v", diags[0])
	}
	if diags[4].Kind != KindCannotInline || diags[4].Cost != -1 {
		t.Errorf("cost-less cannot-inline parsed as %+v", diags[4])
	}
}

func TestSplitPos(t *testing.T) {
	cases := []struct {
		line string
		file string
		ln   int
		col  int
		msg  string
		ok   bool
	}{
		{"a/b.go:12:34: hello", "a/b.go", 12, 34, "hello", true},
		{"a/b.go:12: hello", "a/b.go", 12, 0, "hello", true},
		{"# mmdr/internal/matrix", "", 0, 0, "", false},
		{"go: downloading something", "", 0, 0, "", false},
	}
	for _, c := range cases {
		file, ln, col, msg, ok := splitPos(c.line)
		if ok != c.ok || file != c.file || ln != c.ln || col != c.col || ok && msg != c.msg {
			t.Errorf("splitPos(%q) = %q %d %d %q %v, want %q %d %d %q %v",
				c.line, file, ln, col, msg, ok, c.file, c.ln, c.col, c.msg, c.ok)
		}
	}
}
