package gate

import (
	_ "embed"
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// Manifest is the committed compiler contract: which packages the gate
// rebuilds with diagnostics on, and the per-function obligations. The
// manifest is data, not policy — the rules it can express are fixed here,
// and every relaxation (an escape allowance, a nonzero bounds budget)
// carries a human-readable reason in the JSON so a `git blame` of the
// manifest reads as a decision log.
type Manifest struct {
	// Go pins the toolchain minor ("go1.24") the budgets were measured
	// against. A different running minor demotes budget violations to
	// warnings — counts legitimately drift across prove/escape-analysis
	// changes — while the structural rules (no unexpected escapes) keep
	// enforcing.
	Go string `json:"go"`
	// Packages lists every package the gate compiles and checks,
	// module-relative ("internal/matrix").
	Packages []PackageContract `json:"packages"`
}

// PackageContract scopes contracts to one package directory.
type PackageContract struct {
	Path string `json:"path"`
	// Functions carry explicit obligations beyond the hot-path default.
	Functions []FuncContract `json:"functions,omitempty"`
}

// FuncContract is the committed contract for one function. Every
// //mmdr:hotpath function gets the default contract (no heap escapes
// beyond panic-message spills) even without an entry; an entry adds
// bounds/inline obligations or relaxes the escape rule with justified
// allowances.
type FuncContract struct {
	// Name in compiler style: F, T.M, (*T).M.
	Name string `json:"name"`

	// MustInline requires the compiler to report "can inline Name".
	MustInline bool `json:"must_inline,omitempty"`
	// MaxInlineCost pins a ceiling on the reported inlining cost (for
	// must-inline leaves: headroom before the 80 budget; for heavier
	// kernels: a tripwire against the body getting drastically hairier).
	// 0 means unconstrained.
	MaxInlineCost int `json:"max_inline_cost,omitempty"`

	// MaxBounds / MaxLoopBounds pin the total and inside-a-loop
	// bounds-check counts. nil = unconstrained, 0 = bounds-check-free.
	MaxBounds     *int `json:"max_bounds,omitempty"`
	MaxLoopBounds *int `json:"max_loop_bounds,omitempty"`

	// AllowEscapes permits specific escape diagnostics, matched by
	// substring against the compiler's subject ("make([]core.Result").
	AllowEscapes []EscapeAllowance `json:"allow_escapes,omitempty"`
	// SkipEscapes disables the escape rule entirely (build-time helpers
	// annotated hotpath for alloc-budget reasons only). Requires Reason.
	SkipEscapes bool `json:"skip_escapes,omitempty"`

	// Reason documents why any pinned budget or relaxation is what it is.
	Reason string `json:"reason,omitempty"`
}

// EscapeAllowance is one permitted escape with its justification.
type EscapeAllowance struct {
	// Pattern is matched as a substring of the escape subject.
	Pattern string `json:"pattern"`
	Reason  string `json:"reason"`
}

//go:embed contracts/contracts.json
var embeddedManifest []byte

// LoadManifest reads a manifest from path, or the embedded committed one
// when path is "".
func LoadManifest(path string) (*Manifest, error) {
	data := embeddedManifest
	if path != "" {
		b, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		data = b
	}
	var m Manifest
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("gate manifest: %w", err)
	}
	if err := m.validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

func (m *Manifest) validate() error {
	if m.Go == "" {
		return fmt.Errorf("gate manifest: missing pinned go version")
	}
	seen := make(map[string]bool)
	for _, p := range m.Packages {
		if p.Path == "" || strings.HasPrefix(p.Path, "/") {
			return fmt.Errorf("gate manifest: package path %q must be module-relative", p.Path)
		}
		if seen[p.Path] {
			return fmt.Errorf("gate manifest: duplicate package %q", p.Path)
		}
		seen[p.Path] = true
		fns := make(map[string]bool)
		for _, f := range p.Functions {
			if f.Name == "" {
				return fmt.Errorf("gate manifest: %s: contract with no function name", p.Path)
			}
			if fns[f.Name] {
				return fmt.Errorf("gate manifest: %s: duplicate contract for %s", p.Path, f.Name)
			}
			fns[f.Name] = true
			if f.SkipEscapes && f.Reason == "" {
				return fmt.Errorf("gate manifest: %s.%s: skip_escapes needs a reason", p.Path, f.Name)
			}
			if (f.MaxBounds != nil && *f.MaxBounds > 0 || f.MaxLoopBounds != nil && *f.MaxLoopBounds > 0) && f.Reason == "" {
				return fmt.Errorf("gate manifest: %s.%s: a nonzero bounds budget needs a reason", p.Path, f.Name)
			}
			for _, a := range f.AllowEscapes {
				if a.Pattern == "" || a.Reason == "" {
					return fmt.Errorf("gate manifest: %s.%s: escape allowance needs pattern and reason", p.Path, f.Name)
				}
			}
		}
	}
	return nil
}

// PackageDirs returns the module-relative directories the gate compiles.
func (m *Manifest) PackageDirs() []string {
	dirs := make([]string, len(m.Packages))
	for i, p := range m.Packages {
		dirs[i] = p.Path
	}
	return dirs
}

// Contract returns the explicit contract for pkgDir.name, or nil.
func (m *Manifest) Contract(pkgDir, name string) *FuncContract {
	for i := range m.Packages {
		if m.Packages[i].Path != pkgDir {
			continue
		}
		for j := range m.Packages[i].Functions {
			if m.Packages[i].Functions[j].Name == name {
				return &m.Packages[i].Functions[j]
			}
		}
	}
	return nil
}
