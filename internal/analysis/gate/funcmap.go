package gate

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path"
	"path/filepath"
	"sort"
	"strings"

	"mmdr/internal/analysis/framework"
)

// FuncSpan is the position extent of one function declaration, with the
// line intervals of every loop body inside it (for classifying whether a
// bounds check sits inside a loop).
type FuncSpan struct {
	Pkg  string // package directory, module-relative, slash-separated
	Name string // compiler-style: F, T.M, (*T).M
	File string // module-relative, slash-separated
	Doc  string // first line of the doc comment ("" when none)

	StartLine, EndLine int
	Hotpath            bool

	loops []lineRange
}

type lineRange struct{ start, end int }

// InLoop reports whether a line falls inside any loop body of the function.
func (f *FuncSpan) InLoop(line int) bool {
	for _, r := range f.loops {
		if line >= r.start && line <= r.end {
			return true
		}
	}
	return false
}

// FuncMap maps compiler diagnostic positions to enclosing functions.
type FuncMap struct {
	// byFile: module-relative file path -> spans sorted by start line.
	byFile map[string][]*FuncSpan
	// Spans is every function span, in file order.
	Spans []*FuncSpan
}

// LoadFuncs parses the non-test Go files of the given package directories
// (module-relative, e.g. "internal/matrix") rooted at root and builds the
// position map. Only syntax is needed — no type checking — so this stays
// fast and dependency-free.
func LoadFuncs(root string, pkgDirs []string) (*FuncMap, error) {
	fm := &FuncMap{byFile: make(map[string][]*FuncSpan)}
	fset := token.NewFileSet()
	for _, dir := range pkgDirs {
		entries, err := os.ReadDir(filepath.Join(root, filepath.FromSlash(dir)))
		if err != nil {
			return nil, err
		}
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			rel := path.Join(dir, name)
			file, err := parser.ParseFile(fset, filepath.Join(root, filepath.FromSlash(rel)), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			fm.addFile(fset, file, dir, rel)
		}
	}
	for _, spans := range fm.byFile {
		sort.Slice(spans, func(i, j int) bool { return spans[i].StartLine < spans[j].StartLine })
	}
	return fm, nil
}

func (fm *FuncMap) addFile(fset *token.FileSet, file *ast.File, pkgDir, rel string) {
	for _, decl := range file.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		span := &FuncSpan{
			Pkg:       pkgDir,
			Name:      compilerName(fn),
			File:      rel,
			StartLine: fset.Position(fn.Pos()).Line,
			EndLine:   fset.Position(fn.End()).Line,
			Hotpath:   framework.IsHotPath(fn),
		}
		if fn.Doc != nil && len(fn.Doc.List) > 0 {
			span.Doc = fn.Doc.List[0].Text
		}
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch s := n.(type) {
			case *ast.ForStmt:
				body = s.Body
			case *ast.RangeStmt:
				body = s.Body
			default:
				return true
			}
			span.loops = append(span.loops, lineRange{
				start: fset.Position(body.Lbrace).Line,
				end:   fset.Position(body.Rbrace).Line,
			})
			return true
		})
		fm.byFile[rel] = append(fm.byFile[rel], span)
		fm.Spans = append(fm.Spans, span)
	}
}

// compilerName renders a FuncDecl name the way the compiler's -m output
// does: plain functions as F, methods as T.M or (*T).M.
func compilerName(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return fn.Name.Name
	}
	t := fn.Recv.List[0].Type
	star := false
	if p, ok := t.(*ast.StarExpr); ok {
		star = true
		t = p.X
	}
	// Strip generic type parameters if present.
	if ix, ok := t.(*ast.IndexExpr); ok {
		t = ix.X
	}
	base := "?"
	if id, ok := t.(*ast.Ident); ok {
		base = id.Name
	}
	if star {
		return "(*" + base + ")." + fn.Name.Name
	}
	return base + "." + fn.Name.Name
}

// Enclosing returns the innermost function span containing file:line
// (nil when the position maps to no function — e.g. a package-level var).
func (fm *FuncMap) Enclosing(file string, line int) *FuncSpan {
	var best *FuncSpan
	for _, s := range fm.byFile[file] {
		if line < s.StartLine || line > s.EndLine {
			continue
		}
		if best == nil || s.EndLine-s.StartLine < best.EndLine-best.StartLine {
			best = s
		}
	}
	return best
}

// Lookup finds the span of a named function in a package ("" pkg matches
// any). Names use the compiler style produced by compilerName.
func (fm *FuncMap) Lookup(pkgDir, name string) *FuncSpan {
	for _, s := range fm.Spans {
		if s.Name == name && (pkgDir == "" || s.Pkg == pkgDir) {
			return s
		}
	}
	return nil
}
