package gate

import (
	"fmt"
	"sort"
	"strings"
)

// Options configures one gate run.
type Options struct {
	// Dir is any directory inside the module (module root is discovered
	// by walking up to go.mod). "" = current directory.
	Dir string
	// ManifestPath overrides the embedded committed manifest.
	ManifestPath string
	// Strict promotes manifest-coverage gaps (hot-path packages the
	// manifest does not gate) from warnings to violations.
	Strict bool
}

// Run executes the gate: compile with diagnostics, parse, map, enforce.
func Run(opts Options) (*Result, error) {
	dir := opts.Dir
	if dir == "" {
		dir = "."
	}
	tc, err := FindToolchain(dir)
	if err != nil {
		return nil, err
	}
	manifest, err := LoadManifest(opts.ManifestPath)
	if err != nil {
		return nil, err
	}
	version, err := tc.GoVersion()
	if err != nil {
		return nil, err
	}
	res := &Result{GoVersion: version, Drifted: MinorVersion(version) != manifest.Go}

	out, err := tc.BuildDiagnostics(manifest.PackageDirs())
	if err != nil {
		return nil, err
	}
	diags := ParseDiagnostics(out)

	fm, err := LoadFuncs(tc.Root, manifest.PackageDirs())
	if err != nil {
		return nil, err
	}

	evaluate(res, manifest, fm, diags, opts.Strict)

	// Coverage: every package with a //mmdr:hotpath directive should be
	// under the gate. A gap is a warning (violation in strict mode) so
	// new hot paths cannot silently sidestep the contract.
	hotDirs, err := tc.HotpathPackages()
	if err != nil {
		return nil, err
	}
	gated := make(map[string]bool)
	for _, d := range manifest.PackageDirs() {
		gated[d] = true
	}
	for _, d := range hotDirs {
		if strings.Contains(d, "analysis") {
			// The analyzer suite's own docs and testdata mention the
			// directive; they are not hot paths.
			continue
		}
		if !gated[d] {
			f := Finding{Msg: fmt.Sprintf("package %s has //mmdr:hotpath functions but is not in the gate manifest", d)}
			if opts.Strict {
				res.Violations = append(res.Violations, f)
			} else {
				res.Warnings = append(res.Warnings, f)
			}
		}
	}
	sortFindings(res.Violations)
	sortFindings(res.Warnings)
	return res, nil
}

// evaluate applies the manifest to the parsed diagnostics. When the
// toolchain minor differs from the manifest's pin, contract violations
// demote to warnings (the counts were measured under a different
// compiler); unknown diagnostic lines are always warnings.
func evaluate(res *Result, m *Manifest, fm *FuncMap, diags []Diag, strict bool) {
	type funcDiags struct {
		span    *FuncSpan
		escapes []Diag
		leaks   []Diag
		bounds  []Diag
		inline  *Diag // the can/cannot-inline decision for this function
	}
	byFunc := make(map[*FuncSpan]*funcDiags)
	get := func(s *FuncSpan) *funcDiags {
		fd := byFunc[s]
		if fd == nil {
			fd = &funcDiags{span: s}
			byFunc[s] = fd
		}
		return fd
	}

	unknown := 0
	seen := make(map[string]bool) // dedup -m=2 verbose+summary double reports
	for i := range diags {
		d := &diags[i]
		span := fm.Enclosing(d.File, d.Line)
		switch d.Kind {
		case KindUnknown:
			unknown++
			if unknown <= 20 {
				res.Warnings = append(res.Warnings, Finding{
					File: d.File, Line: d.Line, Col: d.Col,
					Msg: fmt.Sprintf("unrecognized compiler diagnostic: %q", d.Detail),
				})
			}
		case KindEscape:
			if span == nil {
				break
			}
			key := fmt.Sprintf("e|%s|%d|%d|%s", d.File, d.Line, d.Col, d.Subject)
			if seen[key] {
				break
			}
			seen[key] = true
			get(span).escapes = append(get(span).escapes, *d)
		case KindLeakParam:
			if span == nil {
				break
			}
			key := fmt.Sprintf("l|%s|%d|%d|%s", d.File, d.Line, d.Col, d.Subject)
			if seen[key] {
				break
			}
			seen[key] = true
			get(span).leaks = append(get(span).leaks, *d)
		case KindBoundsCheck:
			if span == nil {
				break
			}
			get(span).bounds = append(get(span).bounds, *d)
		case KindCanInline, KindCannotInline:
			// The decision is positioned at the declaration; match by
			// name too so nested closures (F.func1) don't overwrite it.
			if span != nil && span.Name == d.Subject {
				get(span).inline = d
			}
		}
	}
	if unknown > 20 {
		res.Warnings = append(res.Warnings, Finding{
			Msg: fmt.Sprintf("%d more unrecognized compiler diagnostics suppressed", unknown-20),
		})
	}

	// A violation demoted under toolchain drift becomes a warning.
	drift := res.Drifted
	violate := func(f Finding) {
		if drift {
			f.Msg += fmt.Sprintf(" [demoted: toolchain %s differs from manifest pin %s]", MinorVersion(res.GoVersion), m.Go)
			res.Warnings = append(res.Warnings, f)
		} else {
			res.Violations = append(res.Violations, f)
		}
	}

	// Walk every function that is hot-path or explicitly contracted.
	for _, span := range fm.Spans {
		contract := m.Contract(span.Pkg, span.Name)
		if !span.Hotpath && contract == nil {
			continue
		}
		fd := byFunc[span]
		if fd == nil {
			fd = &funcDiags{span: span}
		}
		report := FuncReport{
			Pkg: span.Pkg, Name: span.Name, File: span.File, Line: span.StartLine,
			Hotpath: span.Hotpath, InlineCost: -1,
		}

		// Escape rule: default-on for hot-path functions.
		skipEscapes := contract != nil && contract.SkipEscapes
		for _, d := range fd.escapes {
			if d.ConstString() {
				report.BenignSpills++
				continue
			}
			report.Escapes = append(report.Escapes, d.Subject)
			if skipEscapes || !span.Hotpath && contract == nil {
				continue
			}
			if contract != nil && allowed(contract.AllowEscapes, d.Subject) {
				continue
			}
			what := "escapes to heap"
			if d.Moved {
				what = "moved to heap"
			}
			violate(Finding{
				File: d.File, Line: d.Line, Col: d.Col, Func: span.Name,
				Msg: fmt.Sprintf("hot-path heap allocation: %s %s (allow it in the manifest with a reason, or fix the kernel)", d.Subject, what),
			})
		}
		for _, d := range fd.leaks {
			report.LeakParams = append(report.LeakParams, d.Subject)
		}

		// Bounds budgets.
		for _, d := range fd.bounds {
			report.BoundsTotal++
			if span.InLoop(d.Line) {
				report.BoundsInLoop++
			}
		}
		if contract != nil && contract.MaxBounds != nil && report.BoundsTotal > *contract.MaxBounds {
			violate(Finding{
				File: span.File, Line: span.Line(), Func: span.Name,
				Msg: fmt.Sprintf("bounds checks regressed: %d found, contract pins %d (run `go build -gcflags='%s/%s=%s' ./%s` to see them)",
					report.BoundsTotal, *contract.MaxBounds, "mmdr", span.Pkg, diagFlags, span.Pkg),
			})
		}
		if contract != nil && contract.MaxLoopBounds != nil && report.BoundsInLoop > *contract.MaxLoopBounds {
			violate(Finding{
				File: span.File, Line: span.Line(), Func: span.Name,
				Msg: fmt.Sprintf("in-loop bounds checks regressed: %d found inside loops, contract pins %d", report.BoundsInLoop, *contract.MaxLoopBounds),
			})
		}

		// Inlining.
		if fd.inline != nil {
			report.InlineCost = fd.inline.Cost
			report.InlineReason = fd.inline.Detail
			if fd.inline.Kind == KindCanInline {
				report.InlineStatus = "can"
			} else {
				report.InlineStatus = "cannot"
			}
		}
		if contract != nil && contract.MustInline {
			switch report.InlineStatus {
			case "can":
				// Satisfied.
			case "cannot":
				violate(Finding{
					File: span.File, Line: span.Line(), Func: span.Name,
					Msg: fmt.Sprintf("must-inline kernel is no longer inlinable: %s", report.InlineReason),
				})
			default:
				violate(Finding{
					File: span.File, Line: span.Line(), Func: span.Name,
					Msg: "must-inline kernel: compiler reported no inlining decision",
				})
			}
		}
		if contract != nil && contract.MaxInlineCost > 0 && report.InlineCost > contract.MaxInlineCost {
			violate(Finding{
				File: span.File, Line: span.Line(), Func: span.Name,
				Msg: fmt.Sprintf("inlining cost regressed: %d, contract pins <= %d", report.InlineCost, contract.MaxInlineCost),
			})
		}

		// Budget slack is a warning in strict mode: a kernel that now
		// beats its pinned budget should get the tighter pin committed.
		if strict && !drift && contract != nil {
			if contract.MaxBounds != nil && report.BoundsTotal < *contract.MaxBounds {
				res.Warnings = append(res.Warnings, Finding{
					File: span.File, Line: span.Line(), Func: span.Name,
					Msg: fmt.Sprintf("bounds budget is loose: %d found, contract allows %d — tighten the manifest", report.BoundsTotal, *contract.MaxBounds),
				})
			}
		}

		res.Funcs = append(res.Funcs, report)
	}

	// Manifest rot: contracts naming functions that no longer exist.
	for _, p := range m.Packages {
		for _, f := range p.Functions {
			if fm.Lookup(p.Path, f.Name) == nil {
				violate(Finding{
					Msg: fmt.Sprintf("manifest contract for %s.%s matches no function — stale entry?", p.Path, f.Name),
				})
			}
		}
	}
}

// Line returns the declaration line (helper so findings can anchor at the
// function when the violation has no better position).
func (f *FuncSpan) Line() int { return f.StartLine }

func allowed(allowances []EscapeAllowance, subject string) bool {
	for _, a := range allowances {
		if strings.Contains(subject, a.Pattern) {
			return true
		}
	}
	return false
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Msg < b.Msg
	})
}
