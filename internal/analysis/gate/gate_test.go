package gate

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// badkernelManifest builds a manifest (pinned to the running toolchain so
// nothing demotes to a drift warning) that the testdata/badkernel package
// must violate three ways: a heap escape, a nonzero bounds count against a
// zero budget, and a must-inline function the inliner refuses.
func badkernelManifest(t *testing.T) string {
	t.Helper()
	zero := 0
	m := Manifest{
		Go: MinorVersion(runtime.Version()),
		Packages: []PackageContract{{
			Path: "internal/analysis/gate/testdata/badkernel",
			Functions: []FuncContract{
				{Name: "Checked", MaxBounds: &zero, MaxLoopBounds: &zero},
				{Name: "NotInlinable", MustInline: true},
			},
		}},
	}
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestBadKernelFailsGate is the end-to-end negative test: a kernel that
// escapes, keeps bounds checks, and cannot inline must fail the gate. This
// compiles real code with the real toolchain — the one thing fixtures
// cannot prove.
func TestBadKernelFailsGate(t *testing.T) {
	res, err := Run(Options{Dir: ".", ManifestPath: badkernelManifest(t), Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Drifted {
		t.Fatalf("manifest pinned to runtime.Version() but drifted (%s)", res.GoVersion)
	}
	wants := []string{
		"hot-path heap allocation: make([]float64, n)",
		"bounds checks regressed",
		"must-inline kernel is no longer inlinable",
	}
	for _, w := range wants {
		if !hasFinding(res.Violations, w) {
			t.Errorf("missing expected violation %q\ngot:\n%s", w, findingDump(res.Violations))
		}
	}
	// All three violations sit in the fixture, attributed to their function.
	for _, f := range res.Violations {
		if f.File != "" && !strings.Contains(f.File, "badkernel") {
			t.Errorf("violation attributed outside the fixture: %s", f)
		}
	}
}

// TestRepoContractStrictClean runs the real gate over the real manifest:
// the committed contracts must hold on the committed code with the pinned
// toolchain. This is the lockdown the whole subsystem exists for.
func TestRepoContractStrictClean(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles six packages with diagnostics on; skipped in -short")
	}
	res, err := Run(Options{Dir: ".", Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Drifted {
		t.Skipf("toolchain %s drifted from the manifest pin; budgets demoted", res.GoVersion)
	}
	if len(res.Violations) != 0 {
		t.Errorf("committed contracts violated:\n%s", findingDump(res.Violations))
	}
	if len(res.Warnings) != 0 {
		t.Errorf("gate warnings on committed code:\n%s", findingDump(res.Warnings))
	}
	// The seven kernels the contracts were written around must be present.
	for _, name := range []string{"DotUnroll4", "SqDist", "SqDistEarlyAbandon", "ADCSum", "ADCSumBound", "SqDistRowToSel", "MatVecRowMajor"} {
		found := false
		for _, f := range res.Funcs {
			if f.Pkg == "internal/matrix" && f.Name == name {
				found = true
				if len(f.Escapes) != 0 {
					t.Errorf("%s escapes: %v", name, f.Escapes)
				}
			}
		}
		if !found {
			t.Errorf("kernel %s missing from the gate report", name)
		}
	}
}

// TestUnknownDiagnosticsWarnNotFail: future-toolchain output the parser
// does not recognize must surface as warnings, never violations.
func TestUnknownDiagnosticsWarnNotFail(t *testing.T) {
	res := &Result{GoVersion: "go1.99.0"}
	m := &Manifest{Go: "go1.99"}
	fm := &FuncMap{byFile: map[string][]*FuncSpan{}}
	diags := ParseDiagnostics("internal/matrix/kernels.go:10:2: a diagnostic from the future\n")
	evaluate(res, m, fm, diags, false)
	if len(res.Violations) != 0 {
		t.Errorf("unknown diagnostic produced violations: %s", findingDump(res.Violations))
	}
	if len(res.Warnings) != 1 || !strings.Contains(res.Warnings[0].Msg, "unrecognized compiler diagnostic") {
		t.Errorf("unknown diagnostic warnings = %s", findingDump(res.Warnings))
	}
}

// TestDriftDemotesBudgets: when the running toolchain differs from the
// manifest pin, budget violations demote to warnings so a Go upgrade can
// never hard-fail CI before the budgets are re-measured.
func TestDriftDemotesBudgets(t *testing.T) {
	res, err := Run(Options{Dir: ".", ManifestPath: driftedBadManifest(t)})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Drifted {
		t.Fatal("manifest pinned to go1.1 did not register as drifted")
	}
	if hasFinding(res.Violations, "bounds checks regressed") {
		t.Errorf("drifted budget violation not demoted:\n%s", findingDump(res.Violations))
	}
	if !hasFinding(res.Warnings, "bounds checks regressed") {
		t.Errorf("demoted budget violation missing from warnings:\n%s", findingDump(res.Warnings))
	}
	// The structural escape rule keeps enforcing under drift — but demoted
	// findings carry the drift explanation.
	for _, w := range res.Warnings {
		if strings.Contains(w.Msg, "regressed") && !strings.Contains(w.Msg, "demoted") {
			t.Errorf("demoted finding lost its explanation: %s", w)
		}
	}
}

func driftedBadManifest(t *testing.T) string {
	t.Helper()
	zero := 0
	m := Manifest{
		Go: "go1.1",
		Packages: []PackageContract{{
			Path: "internal/analysis/gate/testdata/badkernel",
			Functions: []FuncContract{
				{Name: "Checked", MaxBounds: &zero, MaxLoopBounds: &zero},
			},
		}},
	}
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(t.TempDir(), "drift.json")
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func hasFinding(fs []Finding, substr string) bool {
	for _, f := range fs {
		if strings.Contains(f.Msg, substr) {
			return true
		}
	}
	return false
}

func findingDump(fs []Finding) string {
	var b strings.Builder
	for _, f := range fs {
		fmt.Fprintf(&b, "  %s\n", f.String())
	}
	if b.Len() == 0 {
		return "  (none)\n"
	}
	return b.String()
}
