// Package randuse exercises seededrand: global math/rand functions are
// flagged wherever they appear; explicitly seeded generators are fine.
package randuse

import "math/rand"

// GlobalDraw hits the shared, unseeded source.
func GlobalDraw() int {
	return rand.Intn(10) // want `global math/rand source`
}

// GlobalFloat and friends are equally forbidden.
func GlobalFloat() float64 {
	return rand.Float64() // want `global math/rand source`
}

// GlobalShuffle randomizes in place off the global source.
func GlobalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `global math/rand source`
}

// SeededDraw threads an explicit generator — the repo's required shape.
func SeededDraw(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

// SeededZipf builds a derived distribution from a seeded generator.
func SeededZipf(rng *rand.Rand) *rand.Zipf {
	return rand.NewZipf(rng, 1.5, 1, 99)
}

// MethodCalls on a threaded *rand.Rand are always fine.
func MethodCalls(rng *rand.Rand, xs []float64) {
	rng.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}

// Suppressed documents why the global source is tolerable here.
func Suppressed() int {
	//mmdr:ignore seededrand demo helper, output is never asserted on
	return rand.Intn(10)
}
