package seededrand_test

import (
	"testing"

	"mmdr/internal/analysis/analysistest"
	"mmdr/internal/analysis/seededrand"
)

func TestSeededRand(t *testing.T) {
	analysistest.Run(t, seededrand.Analyzer, "randuse")
}
