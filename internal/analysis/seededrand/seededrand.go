// Package seededrand forbids the global math/rand source. Every stochastic
// component in this repo (k-means seeding, restarts, data generation)
// threads an explicitly seeded *rand.Rand through its options so whole
// pipelines replay bit-identically; a single call to a package-level
// math/rand function reintroduces cross-run nondeterminism (and, before Go
// 1.20, a shared lock on the hot path).
//
// Allowed: constructing generators (rand.New, rand.NewSource, rand.NewZipf,
// and the math/rand/v2 equivalents) and any method call on a *rand.Rand
// value. Flagged: every other package-level function of math/rand and
// math/rand/v2 — Intn, Float64, Perm, Shuffle, Seed, and friends.
package seededrand

import (
	"go/ast"
	"go/types"

	"mmdr/internal/analysis/framework"
)

// Analyzer is the seededrand check.
var Analyzer = &framework.Analyzer{
	Name: "seededrand",
	Doc:  "forbids global math/rand functions; randomness must flow through a seeded *rand.Rand",
	Run:  run,
}

// allowed lists the package-level functions that construct explicit
// generators rather than touching the global source.
var allowed = map[string]map[string]bool{
	"math/rand":    {"New": true, "NewSource": true, "NewZipf": true},
	"math/rand/v2": {"New": true, "NewPCG": true, "NewChaCha8": true, "NewZipf": true},
}

func run(pass *framework.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.ObjectOf(sel.Sel).(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			allow, randPkg := allowed[fn.Pkg().Path()]
			if !randPkg {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true // method on *rand.Rand / rand.Source — fine
			}
			if allow[fn.Name()] {
				return true
			}
			pass.Reportf(sel.Pos(), "%s.%s uses the global math/rand source; thread a seeded *rand.Rand instead", fn.Pkg().Name(), fn.Name())
			return true
		})
	}
	return nil
}
