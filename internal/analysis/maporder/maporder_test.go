package maporder_test

import (
	"testing"

	"mmdr/internal/analysis/analysistest"
	"mmdr/internal/analysis/maporder"
)

func TestMapOrder(t *testing.T) {
	analysistest.Run(t, maporder.Analyzer, "core", "other")
}
