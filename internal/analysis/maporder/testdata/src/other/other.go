// Package other exercises maporder's relaxed tier: outside the numeric
// packages only demonstrably order-dependent bodies are flagged.
package other

import "sort"

// Render builds output in map order — flagged: appends feed a result slice.
func Render(m map[string]int) []string {
	lines := make([]string, 0, len(m))
	for k := range m { // want `feeds a result slice`
		lines = append(lines, k)
	}
	return lines
}

// Mean accumulates floats in map order — flagged.
func Mean(m map[int]float64) float64 {
	var sum float64
	n := 0
	for _, v := range m { // want `feeds float accumulation`
		sum = sum + v
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Count is order-independent (integer counting): allowed in the relaxed
// tier.
func Count(m map[string]bool) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// Invert writes only to another map — order-independent, allowed.
func Invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// SortedRender is the sanctioned collect-then-sort pattern, allowed.
func SortedRender(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
