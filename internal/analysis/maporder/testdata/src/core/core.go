// Package core exercises maporder's strict tier: its synthetic import path
// ends in "core", one of the numeric packages where every map range is
// suspect.
package core

import "sort"

// SumValues accumulates floats in map order — the canonical violation.
func SumValues(m map[string]float64) float64 {
	var total float64
	for _, v := range m { // want `range over map`
		total += v
	}
	return total
}

// SortedSum is the sanctioned pattern: collect keys, sort, then iterate.
func SortedSum(m map[string]float64) float64 {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var total float64
	for _, k := range keys {
		total += m[k]
	}
	return total
}

// CollectIDs appends keys but never sorts them, so the result order is
// random — strict tier flags it.
func CollectIDs(m map[int]bool) []int {
	ids := make([]int, 0, len(m))
	for id := range m { // want `range over map`
		ids = append(ids, id)
	}
	return ids
}

// CountMembers only counts — order-independent — but the strict tier still
// flags it: bodies in numeric packages tend to grow accumulation later.
func CountMembers(m map[int]bool) int {
	n := 0
	for range m { // want `range over map`
		n++
	}
	return n
}

// Suppressed carries a justified //mmdr:ignore and stays silent.
func Suppressed(m map[string]float64) float64 {
	var total float64
	//mmdr:ignore maporder result is compared against a sorted oracle in tests
	for _, v := range m {
		total += v
	}
	return total
}

// Unjustified has a reason-less directive: the suppression itself is an
// error and the underlying finding still fires.
func Unjustified(m map[string]float64) float64 {
	var total float64
	//mmdr:ignore maporder
	// want:-1 `missing a reason`
	for _, v := range m { // want `range over map`
		total += v
	}
	return total
}

// UnknownAnalyzer names a check that does not exist.
func UnknownAnalyzer(m map[string]int) int {
	//mmdr:ignore nosuchcheck the name is wrong
	// want:-1 `unknown analyzer`
	n := 0
	for range m { // want `range over map`
		n++
	}
	return n
}
