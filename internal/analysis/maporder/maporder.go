// Package maporder flags `range` over maps that can break the repo's
// bit-identical reproducibility promise: Go randomizes map iteration order,
// so any float accumulation or result-slice construction driven by it
// produces run-dependent results.
//
// Two tiers:
//
//   - In the numeric packages (core, ellipkmeans, kmeans, reduction, stats,
//     matrix, idist, index) every map range is flagged — these packages
//     feed model state and query answers, where even order-independent
//     looking loops tend to grow order-dependent bodies later.
//   - Everywhere else a map range is flagged only when its body is
//     demonstrably order-dependent: it accumulates into a float, complex or
//     string, or it appends to a slice.
//
// The sanctioned pattern is exempt in both tiers: collect the keys into a
// slice and sort it before iterating —
//
//	keys := make([]K, 0, len(m))
//	for k := range m { keys = append(keys, k) }
//	sort.Strings(keys) // or sort.Slice / slices.Sort in the same function
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"

	"mmdr/internal/analysis/framework"
)

// Analyzer is the maporder check.
var Analyzer = &framework.Analyzer{
	Name: "maporder",
	Doc:  "flags range over maps whose iteration order can leak into float accumulation or result slices",
	Run:  run,
}

// strictPackages are the numeric packages (matched by the last import-path
// element) where any map iteration is suspect.
var strictPackages = map[string]bool{
	"core":        true,
	"ellipkmeans": true,
	"kmeans":      true,
	"reduction":   true,
	"stats":       true,
	"matrix":      true,
	"idist":       true,
	"index":       true,
}

func run(pass *framework.Pass) error {
	strict := strictPackages[lastPathElement(pass.Pkg.Path())]
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			fn, ok := fnBody(n)
			if !ok {
				return true
			}
			checkFunc(pass, fn, strict)
			return true
		})
	}
	return nil
}

// fnBody extracts the body of a function declaration or literal.
func fnBody(n ast.Node) (*ast.BlockStmt, bool) {
	switch f := n.(type) {
	case *ast.FuncDecl:
		if f.Body != nil {
			return f.Body, true
		}
	case *ast.FuncLit:
		return f.Body, true
	}
	return nil, false
}

// checkFunc inspects one function body for map ranges. Nested function
// literals are handled by their own fnBody visit, but map ranges inside
// them are also visible here; that is fine — the sanctioned-pattern sort
// lookup only needs *a* containing body, and duplicate positions collapse
// because the inner visit reports the same diagnostic text at the same
// position (the framework de-duplicates nothing, so we skip nested lits).
func checkFunc(pass *framework.Pass, body *ast.BlockStmt, strict bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit && n.Pos() != body.Pos() {
			return false // reported by the literal's own visit
		}
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		if isSortedKeyCollection(pass, rng, body) {
			return true
		}
		kind, dependent := orderDependentBody(pass, rng)
		if strict && !dependent {
			pass.Reportf(rng.Pos(), "range over map in a numeric package: iteration order is random; collect and sort the keys first")
			return true
		}
		if dependent {
			pass.Reportf(rng.Pos(), "range over map feeds %s: iteration order is random, results are not reproducible; collect and sort the keys first", kind)
		}
		return true
	})
}

func lastPathElement(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}

// orderDependentBody reports whether the loop body visibly depends on
// iteration order: accumulation into float/complex/string values, or
// appends building a result slice.
func orderDependentBody(pass *framework.Pass, rng *ast.RangeStmt) (string, bool) {
	kind, dependent := "", false
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if dependent {
			return false
		}
		switch s := n.(type) {
		case *ast.AssignStmt:
			switch s.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				if len(s.Lhs) == 1 && isOrderSensitiveScalar(pass.TypeOf(s.Lhs[0])) {
					kind, dependent = "float accumulation", true
				}
			case token.ASSIGN:
				// x = x + e (and friends) is the spelled-out accumulation.
				if len(s.Lhs) == 1 && len(s.Rhs) == 1 && isSelfAccumulation(s.Lhs[0], s.Rhs[0]) &&
					isOrderSensitiveScalar(pass.TypeOf(s.Lhs[0])) {
					kind, dependent = "float accumulation", true
				}
			}
		case *ast.CallExpr:
			if isBuiltinAppend(pass, s) {
				kind, dependent = "a result slice", true
			}
		}
		return !dependent
	})
	return kind, dependent
}

// isOrderSensitiveScalar reports whether accumulating values of type t in
// different orders can change the result bits: floats and complex values
// (rounding) and strings (concatenation order).
func isOrderSensitiveScalar(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Info()&(types.IsFloat|types.IsComplex|types.IsString) != 0
}

// isSelfAccumulation reports whether rhs is a binary expression with lhs as
// one of its immediate operands (x = x + e / x = e * x ...).
func isSelfAccumulation(lhs, rhs ast.Expr) bool {
	id, ok := lhs.(*ast.Ident)
	if !ok {
		return false
	}
	bin, ok := rhs.(*ast.BinaryExpr)
	if !ok {
		return false
	}
	for _, op := range []ast.Expr{bin.X, bin.Y} {
		if opID, ok := op.(*ast.Ident); ok && opID.Name == id.Name {
			return true
		}
	}
	return false
}

func isBuiltinAppend(pass *framework.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.ObjectOf(id).(*types.Builtin)
	return ok && b.Name() == "append"
}

// isSortedKeyCollection recognizes the sanctioned pattern: the loop body is
// exactly `s = append(s, k)` for the range key k, and the enclosing
// function later passes s to a sort function.
func isSortedKeyCollection(pass *framework.Pass, rng *ast.RangeStmt, enclosing *ast.BlockStmt) bool {
	key, ok := rng.Key.(*ast.Ident)
	if !ok || rng.Value != nil {
		return false
	}
	if len(rng.Body.List) != 1 {
		return false
	}
	asg, ok := rng.Body.List[0].(*ast.AssignStmt)
	if !ok || asg.Tok != token.ASSIGN || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
		return false
	}
	dst, ok := asg.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := asg.Rhs[0].(*ast.CallExpr)
	if !ok || !isBuiltinAppend(pass, call) || len(call.Args) != 2 {
		return false
	}
	src, ok := call.Args[0].(*ast.Ident)
	if !ok || pass.ObjectOf(src) != pass.ObjectOf(dst) {
		return false
	}
	arg, ok := call.Args[1].(*ast.Ident)
	if !ok || pass.ObjectOf(arg) != pass.ObjectOf(key) {
		return false
	}
	return sortedAfter(pass, enclosing, rng, pass.ObjectOf(dst))
}

// sortedAfter reports whether, after the range statement, the enclosing
// body calls a sort/slices function with the collected slice among its
// arguments.
func sortedAfter(pass *framework.Pass, enclosing *ast.BlockStmt, rng *ast.RangeStmt, slice types.Object) bool {
	found := false
	ast.Inspect(enclosing, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.ObjectOf(sel.Sel).(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, a := range call.Args {
			if id, ok := a.(*ast.Ident); ok && pass.ObjectOf(id) == slice {
				found = true
			}
		}
		return !found
	})
	return found
}
