package flow

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"

	"mmdr/internal/analysis/cfg"
)

// buildFunc parses src as a function body and returns its CFG.
func buildFunc(t *testing.T, body string) *cfg.Graph {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, src)
	}
	return cfg.New(f.Decls[0].(*ast.FuncDecl).Body)
}

// genKillCalls builds a transfer function for a one-fact problem: calling
// gen() adds fact 0, calling kill() removes it.
func genKillCalls(t *testing.T) Transfer {
	t.Helper()
	return func(n ast.Node, in Set) Set {
		ast.Inspect(n, func(x ast.Node) bool {
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := call.Fun.(*ast.Ident); ok {
				switch id.Name {
				case "gen":
					in.Add(0)
				case "kill":
					in.Remove(0)
				}
			}
			return true
		})
		return in
	}
}

func TestSetOps(t *testing.T) {
	s := NewSet(130) // force multiple words
	for _, i := range []int{0, 63, 64, 129} {
		s.Add(i)
		if !s.Has(i) {
			t.Fatalf("Add(%d) not visible", i)
		}
	}
	if s.Count() != 4 {
		t.Fatalf("Count = %d, want 4", s.Count())
	}
	o := NewSet(130)
	o.Add(63)
	o.Add(100)
	u := s.Clone()
	u.Union(o)
	if !u.Has(100) || !u.Has(0) {
		t.Fatal("Union lost facts")
	}
	s.Intersect(o)
	if s.Count() != 1 || !s.Has(63) {
		t.Fatalf("Intersect wrong: count=%d", s.Count())
	}
	s.Remove(63)
	if !s.Empty() {
		t.Fatal("Remove/Empty wrong")
	}
}

func TestStraightLineGenKill(t *testing.T) {
	g := buildFunc(t, "gen()\nkill()")
	res := Forward(g, 1, May, NewSet(1), genKillCalls(t))
	if !res.Out(g.Entry).Empty() {
		t.Fatal("kill after gen should leave the fact dead at block exit")
	}
	if !res.In(g.Exit).Empty() {
		t.Fatal("fact must not reach exit")
	}
}

// TestMayJoin: a fact generated on one arm of an if holds at the join
// under May but not under Must.
func TestMayVsMustJoin(t *testing.T) {
	body := `if c {
	gen()
}
done()`
	g := buildFunc(t, body)
	tr := genKillCalls(t)

	may := Forward(g, 1, May, NewSet(1), tr)
	must := Forward(g, 1, Must, NewSet(1), tr)

	if !may.In(g.Exit).Has(0) {
		t.Fatal("May: fact generated on one path must reach exit")
	}
	if must.In(g.Exit).Has(0) {
		t.Fatal("Must: fact generated on only one path must NOT hold at exit")
	}
}

// TestMustBothArms: generated on both arms, the fact survives a Must join.
func TestMustBothArms(t *testing.T) {
	body := `if c {
	gen()
} else {
	gen()
}`
	g := buildFunc(t, body)
	must := Forward(g, 1, Must, NewSet(1), genKillCalls(t))
	if !must.In(g.Exit).Has(0) {
		t.Fatal("Must: fact generated on every path should hold at exit")
	}
}

// TestLoopFixpoint: a fact generated inside a loop body must propagate
// around the back edge and out of the loop under May — requiring at least
// two sweeps to converge.
func TestLoopFixpoint(t *testing.T) {
	body := `for i := 0; i < n; i++ {
	if c {
		gen()
	}
}
done()`
	g := buildFunc(t, body)
	res := Forward(g, 1, May, NewSet(1), genKillCalls(t))
	if !res.In(g.Exit).Has(0) {
		t.Fatal("fact generated in loop body must flow around the back edge to exit")
	}
}

// TestLoopMust: under Must, a fact generated only inside a conditionally
// executed loop body does not hold after the loop (the zero-iteration path
// skips it).
func TestLoopMust(t *testing.T) {
	body := `for i := 0; i < n; i++ {
	gen()
}
done()`
	g := buildFunc(t, body)
	res := Forward(g, 1, Must, NewSet(1), genKillCalls(t))
	if res.In(g.Exit).Has(0) {
		t.Fatal("Must: zero-iteration path skips the loop body; fact cannot hold at exit")
	}
}

// TestRangeLoopFixpoint mirrors TestLoopFixpoint over a range loop.
func TestRangeLoopFixpoint(t *testing.T) {
	body := `for _, x := range xs {
	_ = x
	gen()
}
done()`
	g := buildFunc(t, body)
	res := Forward(g, 1, May, NewSet(1), genKillCalls(t))
	if !res.In(g.Exit).Has(0) {
		t.Fatal("fact from range body must reach exit under May")
	}
}

// TestKillInLoopConverges: gen before a loop that kills — the fact must
// not hold after the loop under Must (killed on the iterating path) but
// holds under May (zero-iteration path).
func TestKillInLoopConverges(t *testing.T) {
	body := `gen()
for i := 0; i < n; i++ {
	kill()
}
done()`
	g := buildFunc(t, body)
	may := Forward(g, 1, May, NewSet(1), genKillCalls(t))
	must := Forward(g, 1, Must, NewSet(1), genKillCalls(t))
	if !may.In(g.Exit).Has(0) {
		t.Fatal("May: zero-iteration path keeps the fact alive")
	}
	if must.In(g.Exit).Has(0) {
		t.Fatal("Must: iterating path kills the fact")
	}
}

// TestPanicPathExcluded: a fact live only on a panicking path never
// reaches Exit.
func TestPanicPathExcluded(t *testing.T) {
	body := `if c {
	gen()
	panic("boom")
}
done()`
	g := buildFunc(t, body)
	res := Forward(g, 1, May, NewSet(1), genKillCalls(t))
	if res.In(g.Exit).Has(0) {
		t.Fatal("fact generated on the panicking path must not reach exit")
	}
	if !res.In(g.Panic).Has(0) {
		t.Fatal("fact must reach the panic block")
	}
}

// TestDeadCodeExcluded: facts generated after return (dead code) must not
// pollute the solution.
func TestDeadCodeExcluded(t *testing.T) {
	body := `return
gen()`
	g := buildFunc(t, body)
	res := Forward(g, 1, May, NewSet(1), genKillCalls(t))
	if res.In(g.Exit).Has(0) {
		t.Fatal("dead-code gen leaked into the live solution")
	}
	for _, b := range g.Blocks {
		if b.Kind == "unreachable" && res.Reachable(b) {
			t.Fatal("unreachable block marked reachable")
		}
	}
}

// TestWalkNode: the per-node replay localizes facts between statements of
// one block.
func TestWalkNode(t *testing.T) {
	g := buildFunc(t, "gen()\nmid()\nkill()\nafter()")
	res := Forward(g, 1, May, NewSet(1), genKillCalls(t))

	type obs struct {
		name string
		has  bool
	}
	var seen []obs
	res.WalkNode(g.Entry, func(n ast.Node, before Set) {
		if es, ok := n.(*ast.ExprStmt); ok {
			call := es.X.(*ast.CallExpr)
			seen = append(seen, obs{call.Fun.(*ast.Ident).Name, before.Has(0)})
		}
	})
	want := []obs{{"gen", false}, {"mid", true}, {"kill", true}, {"after", false}}
	if len(seen) != len(want) {
		t.Fatalf("saw %d nodes, want %d: %+v", len(seen), len(want), seen)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Errorf("node %d: got %+v, want %+v", i, seen[i], want[i])
		}
	}
}

// TestSwitchJoin: facts generated in some switch cases only — May at the
// join, not Must.
func TestSwitchJoin(t *testing.T) {
	body := `switch x {
case 1:
	gen()
case 2:
	gen()
default:
}
done()`
	g := buildFunc(t, body)
	may := Forward(g, 1, May, NewSet(1), genKillCalls(t))
	must := Forward(g, 1, Must, NewSet(1), genKillCalls(t))
	if !may.In(g.Exit).Has(0) {
		t.Fatal("May: case-generated fact should reach exit")
	}
	if must.In(g.Exit).Has(0) {
		t.Fatal("Must: default path skips gen")
	}
}

// TestMultiFact exercises independent facts through one analysis.
func TestMultiFact(t *testing.T) {
	// fact 0: gen/kill; fact 1: generated by mid() in this transfer.
	tr := func(n ast.Node, in Set) Set {
		ast.Inspect(n, func(x ast.Node) bool {
			if call, ok := x.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok {
					switch id.Name {
					case "gen":
						in.Add(0)
					case "kill":
						in.Remove(0)
					case "mid":
						in.Add(1)
					}
				}
			}
			return true
		})
		return in
	}
	g := buildFunc(t, "gen()\nmid()\nkill()")
	res := Forward(g, 2, May, NewSet(2), tr)
	out := res.In(g.Exit)
	if out.Has(0) || !out.Has(1) {
		t.Fatalf("facts at exit wrong: 0=%v 1=%v", out.Has(0), out.Has(1))
	}
}
