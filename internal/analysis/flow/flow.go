// Package flow is a forward dataflow engine over internal/analysis/cfg
// graphs: bit-vector fact sets, per-node gen/kill style transfer
// functions, and worklist iteration to a fixpoint in reverse postorder.
//
// Facts are small integers (0..NFacts-1) assigned by the client — one per
// tracked variable, lock, or obligation. The engine supports both join
// disciplines:
//
//   - May (union): a fact holds at a point if it holds on SOME path there.
//     Used for "this scratch may still be checked out", "this mutex may be
//     held".
//   - Must (intersection): a fact holds only if it holds on EVERY path.
//     Used for "an unlock is guaranteed to be deferred".
//
// Transfer functions are monotone by construction (pure gen/kill over a
// finite lattice), so the iteration terminates; Solve nevertheless bounds
// the number of sweeps and fails loudly if a non-monotone client transfer
// diverges, rather than hanging the linter.
//
// Blocks unreachable from Entry (dead code after return, unused labels)
// are excluded from the solution: facts generated in dead code must not
// leak into the live solution through join points.
package flow

import (
	"fmt"
	"go/ast"
	"math/bits"

	"mmdr/internal/analysis/cfg"
)

// Set is a bit vector of dataflow facts. The zero value of a given width
// is the empty set; sets of different widths must not be mixed.
type Set struct {
	words []uint64
}

// NewSet returns an empty set able to hold facts 0..n-1.
func NewSet(n int) Set {
	return Set{words: make([]uint64, (n+63)/64)}
}

// full returns the set holding every fact 0..n-1 (the must-analysis "top"
// element).
func full(n int) Set {
	s := NewSet(n)
	for i := 0; i < n; i++ {
		s.Add(i)
	}
	return s
}

// Has reports whether fact i is in the set.
func (s Set) Has(i int) bool {
	w := i / 64
	return w < len(s.words) && s.words[w]&(1<<(i%64)) != 0
}

// Add inserts fact i.
func (s Set) Add(i int) { s.words[i/64] |= 1 << (i % 64) }

// Remove deletes fact i.
func (s Set) Remove(i int) {
	w := i / 64
	if w < len(s.words) {
		s.words[w] &^= 1 << (i % 64)
	}
}

// Clone returns an independent copy.
func (s Set) Clone() Set {
	c := Set{words: make([]uint64, len(s.words))}
	copy(c.words, s.words)
	return c
}

// Union adds every fact of o to s in place.
func (s Set) Union(o Set) {
	for i := range o.words {
		s.words[i] |= o.words[i]
	}
}

// Intersect keeps only facts present in both s and o, in place.
func (s Set) Intersect(o Set) {
	for i := range s.words {
		if i < len(o.words) {
			s.words[i] &= o.words[i]
		} else {
			s.words[i] = 0
		}
	}
}

// Equal reports set equality.
func (s Set) Equal(o Set) bool {
	for i := range s.words {
		if s.words[i] != o.words[i] {
			return false
		}
	}
	return true
}

// Empty reports whether no fact is present.
func (s Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Count returns the number of facts present.
func (s Set) Count() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Join selects the meet operator of an analysis.
type Join int

const (
	// May joins with set union: facts that hold on some path.
	May Join = iota
	// Must joins with set intersection: facts that hold on every path.
	Must
)

// Transfer rewrites the fact set across one CFG node. Implementations
// receive a private copy of the incoming set and may mutate and return it
// (the usual gen/kill shape: in - kill ∪ gen). It must be monotone in its
// input for the iteration to converge.
type Transfer func(n ast.Node, in Set) Set

// Result is the fixpoint solution: fact sets at the entry and exit of
// every reachable block.
type Result struct {
	graph  *cfg.Graph
	nfacts int
	tr     Transfer
	in     map[*cfg.Block]Set
	out    map[*cfg.Block]Set
}

// In returns the facts holding at the start of b. Blocks unreachable from
// Entry report the empty set (May) — they never execute.
func (r *Result) In(b *cfg.Block) Set {
	if s, ok := r.in[b]; ok {
		return s.Clone()
	}
	return NewSet(r.nfacts)
}

// Out returns the facts holding at the end of b.
func (r *Result) Out(b *cfg.Block) Set {
	if s, ok := r.out[b]; ok {
		return s.Clone()
	}
	return NewSet(r.nfacts)
}

// Reachable reports whether b is reachable from the graph's entry.
func (r *Result) Reachable(b *cfg.Block) bool {
	_, ok := r.in[b]
	return ok
}

// WalkNode replays the transfer function over the nodes of b from its
// fixpoint In set, invoking visit with the fact set holding immediately
// BEFORE each node. This is how clients localize a block-level result to
// the exact statement they want to diagnose.
func (r *Result) WalkNode(b *cfg.Block, visit func(n ast.Node, before Set)) {
	s := r.In(b)
	for _, n := range b.Nodes {
		visit(n, s.Clone())
		s = r.tr(n, s)
	}
}

// maxSweeps bounds fixpoint iteration: gen/kill over NFacts bits converges
// in at most O(blocks·facts) sweeps; anything past this limit means a
// non-monotone transfer function.
const maxSweeps = 10000

// Forward solves the forward dataflow problem over g: Init seeds the entry
// block, tr transfers facts across each node, join merges predecessor out
// sets. It panics (with a diagnostic message) if the iteration fails to
// converge — which a monotone transfer cannot cause.
func Forward(g *cfg.Graph, nfacts int, join Join, init Set, tr Transfer) *Result {
	order := postorder(g)
	// Reverse postorder: forward analyses converge in few sweeps when
	// blocks are visited before their successors.
	rpo := make([]*cfg.Block, len(order))
	for i, b := range order {
		rpo[len(order)-1-i] = b
	}

	res := &Result{
		graph:  g,
		nfacts: nfacts,
		tr:     tr,
		in:     make(map[*cfg.Block]Set, len(rpo)),
		out:    make(map[*cfg.Block]Set, len(rpo)),
	}
	reach := make(map[*cfg.Block]bool, len(rpo))
	for _, b := range rpo {
		reach[b] = true
		// Must-analysis starts every block at top so the first real
		// predecessor value wins the intersection; may-analysis at bottom.
		if join == Must {
			res.out[b] = full(nfacts)
		} else {
			res.out[b] = NewSet(nfacts)
		}
	}

	transferBlock := func(b *cfg.Block, in Set) Set {
		s := in
		for _, n := range b.Nodes {
			s = tr(n, s)
		}
		return s
	}

	for sweep := 0; ; sweep++ {
		if sweep > maxSweeps {
			panic(fmt.Sprintf("flow: no fixpoint after %d sweeps — non-monotone transfer function", maxSweeps))
		}
		changed := false
		for _, b := range rpo {
			var in Set
			if b == g.Entry {
				in = init.Clone()
			} else {
				first := true
				for _, p := range b.Preds {
					if !reach[p] {
						continue // dead predecessors contribute nothing
					}
					if first {
						in = res.out[p].Clone()
						first = false
					} else if join == Must {
						in.Intersect(res.out[p])
					} else {
						in.Union(res.out[p])
					}
				}
				if first {
					// Reachable from entry but all preds pruned cannot
					// happen (reachability follows edges); defensive.
					in = NewSet(nfacts)
				}
			}
			res.in[b] = in.Clone()
			out := transferBlock(b, in)
			if !out.Equal(res.out[b]) {
				res.out[b] = out
				changed = true
			}
		}
		if !changed {
			return res
		}
	}
}

// postorder returns the blocks reachable from Entry in DFS postorder,
// following Succs in creation order (deterministic).
func postorder(g *cfg.Graph) []*cfg.Block {
	var order []*cfg.Block
	seen := map[*cfg.Block]bool{}
	var dfs func(*cfg.Block)
	dfs = func(b *cfg.Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			dfs(s)
		}
		order = append(order, b)
	}
	dfs(g.Entry)
	return order
}
