// Package hotalloc enforces the hot-path allocation budget. Functions
// annotated with a //mmdr:hotpath doc-comment directive (the extended
// iDistance query kernels, the flat-slice matrix kernels, the Subspace
// projections) are checked for constructs that allocate or are likely to:
//
//   - any call into package fmt (formatting always allocates)
//   - append to a slice declared in the function without capacity
//     (`var s []T`, `s := []T{}`, `s := make([]T, 0)`)
//   - implicit interface conversions at call boundaries (boxing)
//   - map and slice composite literals
//   - string concatenation
//   - function literals (closures generally escape), except literals passed
//     directly to pool.Run / pool.Chunks — the sanctioned fan-out primitive
//     whose one closure per batch is part of the audited budget — and
//     literals invoked immediately
//   - go statements (goroutine + closure allocation; batching belongs in
//     pool.Run / pool.Chunks)
//
// The alloc_test budgets in internal/idist pin the same paths dynamically;
// this analyzer catches the regression at compile time, before a benchmark
// has to flake. Arguments to the builtin panic are exempt: a panicking hot
// path is already off the measured path.
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"mmdr/internal/analysis/framework"
)

// Analyzer is the hotalloc check.
var Analyzer = &framework.Analyzer{
	Name: "hotalloc",
	Doc:  "flags allocation-inducing constructs inside //mmdr:hotpath functions",
	Run:  run,
}

// poolPath is the worker-pool package whose Run/Chunks closures are part of
// the audited per-batch budget.
const poolPath = "mmdr/internal/pool"

func run(pass *framework.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !framework.IsHotPath(fn) {
				continue
			}
			checkHotFunc(pass, fn)
		}
	}
	return nil
}

func checkHotFunc(pass *framework.Pass, fn *ast.FuncDecl) {
	exemptLits := poolClosureLiterals(pass, fn.Body)
	coldAppends := unpreallocatedSlices(pass, fn.Body)

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, x, coldAppends)
		case *ast.CompositeLit:
			t := pass.TypeOf(x)
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Map:
				pass.Reportf(x.Pos(), "map literal allocates in hot path")
			case *types.Slice:
				pass.Reportf(x.Pos(), "slice literal allocates in hot path")
			}
		case *ast.BinaryExpr:
			if x.Op == token.ADD && isString(pass.TypeOf(x)) {
				pass.Reportf(x.Pos(), "string concatenation allocates in hot path")
			}
		case *ast.AssignStmt:
			if x.Tok == token.ADD_ASSIGN && len(x.Lhs) == 1 && isString(pass.TypeOf(x.Lhs[0])) {
				pass.Reportf(x.Pos(), "string concatenation allocates in hot path")
			}
		case *ast.FuncLit:
			if !exemptLits[x] && !immediatelyInvoked(fn.Body, x) {
				pass.Reportf(x.Pos(), "closure may escape and allocate in hot path; bind it once outside (see queryScratch's visit callbacks)")
			}
		case *ast.GoStmt:
			pass.Reportf(x.Pos(), "go statement allocates in hot path; fan out through pool.Run/pool.Chunks at the batch boundary")
		}
		return true
	})
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// checkCall flags fmt calls, appends to unpreallocated locals, and implicit
// interface conversions of call arguments.
func checkCall(pass *framework.Pass, call *ast.CallExpr, coldAppends map[types.Object]bool) {
	// Builtins: append gets the preallocation check, panic and friends are
	// exempt from boxing (a panicking hot path is off the measured path).
	if id, ok := unparenFun(call).(*ast.Ident); ok {
		if b, ok := pass.ObjectOf(id).(*types.Builtin); ok {
			if b.Name() == "append" {
				checkAppend(pass, call, coldAppends)
			}
			return
		}
	}
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || tv.IsType() {
		// Conversion T(x): flag only conversions *to* an interface.
		if ok && types.IsInterface(tv.Type) && len(call.Args) == 1 &&
			pass.TypeOf(call.Args[0]) != nil && !types.IsInterface(pass.TypeOf(call.Args[0])) {
			pass.Reportf(call.Pos(), "conversion to interface boxes its operand in hot path")
		}
		return
	}

	if fn := calleeFunc(pass, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		pass.Reportf(call.Pos(), "fmt.%s allocates in hot path", fn.Name())
		return
	}

	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	checkBoxing(pass, call, sig)
}

// checkBoxing reports call arguments implicitly converted to interface
// parameters — each such conversion can heap-allocate the operand.
func checkBoxing(pass *framework.Pass, call *ast.CallExpr, sig *types.Signature) {
	if call.Ellipsis != token.NoPos {
		return // forwarding a slice, no per-element boxing
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at := pass.TypeOf(arg)
		if at == nil || types.IsInterface(at) {
			continue
		}
		if b, ok := at.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		pass.Reportf(arg.Pos(), "argument boxes %s into interface %s in hot path", at, pt)
	}
}

func calleeFunc(pass *framework.Pass, call *ast.CallExpr) *types.Func {
	switch f := unparenFun(call).(type) {
	case *ast.Ident:
		fn, _ := pass.ObjectOf(f).(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.ObjectOf(f.Sel).(*types.Func)
		return fn
	}
	return nil
}

func unparenFun(call *ast.CallExpr) ast.Expr {
	e := call.Fun
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// checkAppend flags appends whose destination is a local slice declared
// without capacity — those grow geometrically, allocating on the hot path.
// Appends to parameters, struct fields and presized locals are the caller's
// (audited) business.
func checkAppend(pass *framework.Pass, call *ast.CallExpr, coldAppends map[types.Object]bool) {
	if len(call.Args) == 0 {
		return
	}
	id, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return
	}
	if coldAppends[pass.ObjectOf(id)] {
		pass.Reportf(call.Pos(), "append to %s, declared without capacity, reallocates in hot path; presize it or reuse scratch", id.Name)
	}
}

// unpreallocatedSlices collects local slice variables declared with no
// backing capacity: `var s []T`, `s := []T{}`, `s := make([]T, 0)`.
func unpreallocatedSlices(pass *framework.Pass, body *ast.BlockStmt) map[types.Object]bool {
	out := make(map[types.Object]bool)
	mark := func(id *ast.Ident) {
		if obj := pass.TypesInfo.Defs[id]; obj != nil {
			if _, ok := obj.Type().Underlying().(*types.Slice); ok {
				out[obj] = true
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.ValueSpec:
			if len(x.Values) == 0 {
				for _, name := range x.Names {
					mark(name)
				}
			}
		case *ast.AssignStmt:
			if x.Tok != token.DEFINE || len(x.Lhs) != len(x.Rhs) {
				return true
			}
			for i, lhs := range x.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				if emptyBackedExpr(pass, x.Rhs[i]) {
					mark(id)
				}
			}
		}
		return true
	})
	return out
}

// emptyBackedExpr reports whether e creates a slice with zero capacity:
// an empty slice literal or make([]T, 0) without a capacity argument.
func emptyBackedExpr(pass *framework.Pass, e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.CompositeLit:
		t := pass.TypeOf(x)
		if t == nil {
			return false
		}
		_, isSlice := t.Underlying().(*types.Slice)
		return isSlice && len(x.Elts) == 0
	case *ast.CallExpr:
		id, ok := x.Fun.(*ast.Ident)
		if !ok {
			return false
		}
		if b, ok := pass.ObjectOf(id).(*types.Builtin); !ok || b.Name() != "make" {
			return false
		}
		if len(x.Args) != 2 {
			return false // 3-arg make carries an explicit capacity
		}
		if _, isSlice := pass.TypeOf(x).Underlying().(*types.Slice); !isSlice {
			return false
		}
		tv, ok := pass.TypesInfo.Types[x.Args[1]]
		return ok && tv.Value != nil && tv.Value.String() == "0"
	}
	return false
}

// poolClosureLiterals returns the function literals passed directly to
// pool.Run / pool.Chunks calls — the audited one-closure-per-batch cost.
func poolClosureLiterals(pass *framework.Pass, body *ast.BlockStmt) map[*ast.FuncLit]bool {
	out := make(map[*ast.FuncLit]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != poolPath {
			return true
		}
		if fn.Name() != "Run" && fn.Name() != "Chunks" {
			return true
		}
		for _, a := range call.Args {
			if lit, ok := a.(*ast.FuncLit); ok {
				out[lit] = true
			}
		}
		return true
	})
	return out
}

// immediatelyInvoked reports whether lit appears as the callee of a call
// expression, i.e. func(){...}() — executed inline, commonly stack-kept.
func immediatelyInvoked(body *ast.BlockStmt, lit *ast.FuncLit) bool {
	invoked := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if ok && call.Fun == lit {
			invoked = true
		}
		return !invoked
	})
	return invoked
}
