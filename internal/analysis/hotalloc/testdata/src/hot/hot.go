// Package hot exercises hotalloc: allocation-inducing constructs are
// flagged only inside functions annotated //mmdr:hotpath.
package hot

import (
	"fmt"

	"mmdr/internal/pool"
)

func sink(v any) { _ = v }

// Sum is a clean hot-path kernel: single accumulator, no allocation.
//
//mmdr:hotpath
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Format allocates through fmt.
//
//mmdr:hotpath
func Format(x float64) string {
	return fmt.Sprintf("%g", x) // want `fmt.Sprintf allocates`
}

// ColdFormat is not annotated: fmt is fine off the hot path.
func ColdFormat(x float64) string {
	return fmt.Sprintf("%g", x)
}

// GrowingAppend grows an unpreallocated local geometrically.
//
//mmdr:hotpath
func GrowingAppend(xs []float64) []float64 {
	var out []float64
	for _, x := range xs {
		out = append(out, x) // want `append to out`
	}
	return out
}

// PresizedAppend appends into reserved capacity — allowed.
//
//mmdr:hotpath
func PresizedAppend(xs []float64) []float64 {
	out := make([]float64, 0, len(xs))
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

// Box implicitly converts its argument to an interface parameter.
//
//mmdr:hotpath
func Box(x float64) {
	sink(x) // want `boxes float64 into interface`
}

// Literals allocate backing arrays.
//
//mmdr:hotpath
func Literals() []int {
	return []int{1, 2, 3} // want `slice literal allocates`
}

// MapLiteral allocates a map header and buckets.
//
//mmdr:hotpath
func MapLiteral() map[int]bool {
	return map[int]bool{} // want `map literal allocates`
}

// Concat builds a fresh string.
//
//mmdr:hotpath
func Concat(a, b string) string {
	return a + b // want `string concatenation allocates`
}

// Closure binds per call instead of once at setup.
//
//mmdr:hotpath
func Closure(xs []float64) float64 {
	f := func() float64 { return xs[0] } // want `closure may escape`
	return f()
}

// FanOut's closure rides the sanctioned pool primitive — exempt.
//
//mmdr:hotpath
func FanOut(xs, out []float64) {
	pool.Run(2, len(xs), func(i int) {
		out[i] = xs[i] * 2
	})
}

// Spawn starts a raw goroutine.
//
//mmdr:hotpath
func Spawn(done chan struct{}) {
	go func() { close(done) }() // want `go statement allocates`
}

// Suppressed documents a tolerated allocation on a cold error branch.
//
//mmdr:hotpath
func Suppressed(n int) error {
	if n < 0 {
		//mmdr:ignore hotalloc error construction is off the measured path
		return fmt.Errorf("hot: negative n %d", n)
	}
	return nil
}

// Panics is allowed: panic arguments are exempt from boxing checks.
//
//mmdr:hotpath
func Panics(n int) int {
	if n < 0 {
		panic("hot: negative n")
	}
	return n * 2
}
