package hotalloc_test

import (
	"testing"

	"mmdr/internal/analysis/analysistest"
	"mmdr/internal/analysis/hotalloc"
)

func TestHotAlloc(t *testing.T) {
	analysistest.Run(t, hotalloc.Analyzer, "hot")
}
