// Package analysis registers the mmdrlint analyzer suite: the checks that
// turn the repo's determinism, hot-path and persistence promises (see
// DESIGN.md, "Enforced invariants") into compile-time errors. The first
// four are syntactic/type-based; the second four are dataflow analyzers
// built on the internal/analysis/cfg + internal/analysis/flow layers.
package analysis

import (
	"mmdr/internal/analysis/floatcmp"
	"mmdr/internal/analysis/framework"
	"mmdr/internal/analysis/hotalloc"
	"mmdr/internal/analysis/lockbal"
	"mmdr/internal/analysis/maporder"
	"mmdr/internal/analysis/persistdrift"
	"mmdr/internal/analysis/poolreduce"
	"mmdr/internal/analysis/scratchleak"
	"mmdr/internal/analysis/seededrand"
)

// All returns the full analyzer suite in stable order.
func All() []*framework.Analyzer {
	return []*framework.Analyzer{
		floatcmp.Analyzer,
		hotalloc.Analyzer,
		lockbal.Analyzer,
		maporder.Analyzer,
		persistdrift.Analyzer,
		poolreduce.Analyzer,
		scratchleak.Analyzer,
		seededrand.Analyzer,
	}
}

// Names returns the analyzer names, for //mmdr:ignore validation in runs
// that execute only a subset of the suite.
func Names() []string {
	all := All()
	names := make([]string, len(all))
	for i, a := range all {
		names[i] = a.Name
	}
	return names
}

// Select returns the analyzers whose names appear in want, preserving
// suite order, plus the names that matched nothing (in want order) so the
// caller can reject typos. An empty want selects the full suite.
func Select(want []string) ([]*framework.Analyzer, []string) {
	if len(want) == 0 {
		return All(), nil
	}
	wanted := make(map[string]bool, len(want))
	for _, n := range want {
		wanted[n] = true
	}
	var sel []*framework.Analyzer
	for _, a := range All() {
		if wanted[a.Name] {
			sel = append(sel, a)
			delete(wanted, a.Name)
		}
	}
	var unknown []string
	for _, n := range want {
		if wanted[n] {
			unknown = append(unknown, n)
		}
	}
	return sel, unknown
}
