// Package analysis registers the mmdrlint analyzer suite: the four checks
// that turn the repo's determinism and hot-path promises (see DESIGN.md,
// "Enforced invariants") into compile-time errors.
package analysis

import (
	"mmdr/internal/analysis/framework"
	"mmdr/internal/analysis/hotalloc"
	"mmdr/internal/analysis/maporder"
	"mmdr/internal/analysis/poolreduce"
	"mmdr/internal/analysis/seededrand"
)

// All returns the full analyzer suite in stable order.
func All() []*framework.Analyzer {
	return []*framework.Analyzer{
		hotalloc.Analyzer,
		maporder.Analyzer,
		poolreduce.Analyzer,
		seededrand.Analyzer,
	}
}

// Names returns the analyzer names, for //mmdr:ignore validation in runs
// that execute only a subset of the suite.
func Names() []string {
	all := All()
	names := make([]string, len(all))
	for i, a := range all {
		names[i] = a.Name
	}
	return names
}
