package framework

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parse(t *testing.T, src string) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, []*ast.File{f}
}

func TestCollectIgnores(t *testing.T) {
	fset, files := parse(t, `package p

//mmdr:ignore hotalloc cold error path
var a int

//mmdr:ignore maporder
var b int

//mmdr:ignorenope not the directive
var c int
`)
	igs := collectIgnores(fset, files)
	if len(igs) != 2 {
		t.Fatalf("got %d directives, want 2: %+v", len(igs), igs)
	}
	if !igs[0].Covers("hotalloc") || igs[0].Reason != "cold error path" {
		t.Errorf("first directive parsed as %+v", igs[0])
	}
	if !igs[1].Covers("maporder") || igs[1].Reason != "" {
		t.Errorf("second directive parsed as %+v", igs[1])
	}
}

// TestCollectIgnoresMultiAnalyzer: one directive can silence several
// analyzers at once with a comma-separated list.
func TestCollectIgnoresMultiAnalyzer(t *testing.T) {
	fset, files := parse(t, `package p

//mmdr:ignore hotalloc,floatcmp sanctioned sentinel comparison in a pinned-budget path
var a int
`)
	igs := collectIgnores(fset, files)
	if len(igs) != 1 {
		t.Fatalf("got %d directives, want 1: %+v", len(igs), igs)
	}
	ig := igs[0]
	if len(ig.Analyzers) != 2 || !ig.Covers("hotalloc") || !ig.Covers("floatcmp") {
		t.Errorf("analyzer list parsed as %+v", ig.Analyzers)
	}
	if ig.Covers("maporder") {
		t.Error("Covers must be exact, not prefix/contains")
	}
	if ig.Reason != "sanctioned sentinel comparison in a pinned-budget path" {
		t.Errorf("reason parsed as %q", ig.Reason)
	}
}

func TestIsHotPath(t *testing.T) {
	_, files := parse(t, `package p

// Fast is quick.
//
//mmdr:hotpath audited by alloc_test
func Fast() {}

// Slow is not annotated.
func Slow() {}

//mmdr:hotpathnope
func Typo() {}
`)
	got := map[string]bool{}
	for _, d := range files[0].Decls {
		if fn, ok := d.(*ast.FuncDecl); ok {
			got[fn.Name.Name] = IsHotPath(fn)
		}
	}
	want := map[string]bool{"Fast": true, "Slow": false, "Typo": false}
	for name, hot := range want {
		if got[name] != hot {
			t.Errorf("IsHotPath(%s) = %v, want %v", name, got[name], hot)
		}
	}
}

// TestSuppressionAndValidation drives a fake analyzer through the runner:
// a justified directive silences the finding, a reason-less one does not
// and is reported itself, an unknown name is reported.
func TestSuppressionAndValidation(t *testing.T) {
	src := `package p

//mmdr:ignore fake covered by integration tests
var a int

//mmdr:ignore fake
var b int

//mmdr:ignore nosuch some reason
var c int

var d int
`
	fset, files := parse(t, src)
	fake := &Analyzer{
		Name: "fake",
		Doc:  "flags every var declaration",
		Run: func(p *Pass) error {
			for _, f := range p.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					if vs, ok := n.(*ast.ValueSpec); ok {
						p.Reportf(vs.Pos(), "var declared")
					}
					return true
				})
			}
			return nil
		},
	}
	r := &Runner{Analyzers: []*Analyzer{fake}}
	diags, err := r.Run(fset, files, nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	var got []string
	for _, d := range diags {
		got = append(got, d.String())
	}
	joined := strings.Join(got, "\n")

	if strings.Contains(joined, "x.go:4") {
		t.Errorf("justified suppression did not silence the finding:\n%s", joined)
	}
	for _, want := range []string{
		"x.go:6:1: mmdrignore: //mmdr:ignore fake is missing a reason",
		"x.go:7:5: fake: var declared", // unjustified directives do not suppress
		`x.go:9:1: mmdrignore: //mmdr:ignore names unknown analyzer "nosuch"`,
		"x.go:10:5: fake: var declared",
		"x.go:12:5: fake: var declared",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing diagnostic %q in:\n%s", want, joined)
		}
	}
	if len(diags) != 5 {
		t.Errorf("got %d diagnostics, want 5:\n%s", len(diags), joined)
	}
}

// TestIsHotPathReceivers: the directive attaches to the declaration, so
// methods with pointer and value receivers — and directives buried inside
// a doc group that opens with prose — all register.
func TestIsHotPathReceivers(t *testing.T) {
	_, files := parse(t, `package p

type T struct{}

// PtrRecv does things fast.
//
// More prose between the summary and the directive.
//
//mmdr:hotpath innermost kernel
func (t *T) PtrRecv() {}

//mmdr:hotpath
func (t T) ValRecv() {}

// ColdMethod has prose but no directive.
func (t *T) ColdMethod() {}
`)
	got := map[string]bool{}
	for _, d := range files[0].Decls {
		if fn, ok := d.(*ast.FuncDecl); ok {
			got[fn.Name.Name] = IsHotPath(fn)
		}
	}
	want := map[string]bool{"PtrRecv": true, "ValRecv": true, "ColdMethod": false}
	for name, hot := range want {
		if got[name] != hot {
			t.Errorf("IsHotPath(%s) = %v, want %v", name, got[name], hot)
		}
	}
}

// fakeStmtAnalyzer flags every call to a function named "flagme",
// reporting at the call position — used to exercise suppression matching
// against statements.
func fakeStmtAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "fake",
		Doc:  "flags calls to flagme",
		Run: func(p *Pass) error {
			for _, f := range p.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "flagme" {
						p.Reportf(call.Pos(), "flagged call")
					}
					return true
				})
			}
			return nil
		},
	}
}

// TestSuppressionOnContinuationLine: a directive trailing ANY line of a
// multi-line statement suppresses a finding reported at the statement's
// first line — the span match, not just same-line/line-above.
func TestSuppressionOnContinuationLine(t *testing.T) {
	src := `package p

func g() {
	flagme(
		1,
		2, //mmdr:ignore fake argument list audited by hand
	)
}

func h() {
	flagme(
		1,
		2,
	)
}
`
	fset, files := parse(t, src)
	r := &Runner{Analyzers: []*Analyzer{fakeStmtAnalyzer()}}
	diags, err := r.Run(fset, files, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want exactly the unsuppressed one in h:\n%v", len(diags), diags)
	}
	if diags[0].Pos.Line != 11 {
		t.Errorf("surviving diagnostic at line %d, want 11 (h's call)", diags[0].Pos.Line)
	}
}

// TestSuppressionSpanDoesNotBleed: a directive inside an if BODY must not
// silence a finding on the if condition — compound statements match only
// their header span.
func TestSuppressionSpanDoesNotBleed(t *testing.T) {
	src := `package p

func g() {
	if flagme(
		1,
	) {
		_ = 1 //mmdr:ignore fake directive deep in the body
	}
}
`
	fset, files := parse(t, src)
	r := &Runner{Analyzers: []*Analyzer{fakeStmtAnalyzer()}}
	diags, err := r.Run(fset, files, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("directive inside the if body must not suppress the condition finding: %v", diags)
	}
}

// TestSuppressionMultiAnalyzerDirective: a two-analyzer directive
// suppresses findings from both named analyzers at one position, and an
// unknown name inside the list is still reported.
func TestSuppressionMultiAnalyzerDirective(t *testing.T) {
	src := `package p

func g() {
	flagme(1) //mmdr:ignore fake,other covered by the equivalence lockdown
}

//mmdr:ignore fake,nosuch some reason
func h() {
	flagme(1)
}
`
	other := &Analyzer{
		Name: "other",
		Doc:  "also flags flagme calls",
		Run: func(p *Pass) error {
			for _, f := range p.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "flagme" {
						p.Reportf(call.Pos(), "other finding")
					}
					return true
				})
			}
			return nil
		},
	}
	fset, files := parse(t, src)
	r := &Runner{Analyzers: []*Analyzer{fakeStmtAnalyzer(), other}}
	diags, err := r.Run(fset, files, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, d := range diags {
		got = append(got, d.String())
	}
	joined := strings.Join(got, "\n")
	if strings.Contains(joined, "x.go:4") {
		t.Errorf("two-analyzer directive failed to silence both findings:\n%s", joined)
	}
	if !strings.Contains(joined, `unknown analyzer "nosuch"`) {
		t.Errorf("unknown analyzer inside a list must be reported:\n%s", joined)
	}
	// h's findings survive: the directive names an unknown analyzer, but
	// "fake" is still a valid, justified suppression... except it sits on
	// the function declaration, which is not the flagged statement's span.
	if !strings.Contains(joined, "x.go:9") {
		t.Errorf("findings in h should survive (directive not on the statement):\n%s", joined)
	}
}
