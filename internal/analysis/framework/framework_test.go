package framework

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parse(t *testing.T, src string) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, []*ast.File{f}
}

func TestCollectIgnores(t *testing.T) {
	fset, files := parse(t, `package p

//mmdr:ignore hotalloc cold error path
var a int

//mmdr:ignore maporder
var b int

//mmdr:ignorenope not the directive
var c int
`)
	igs := collectIgnores(fset, files)
	if len(igs) != 2 {
		t.Fatalf("got %d directives, want 2: %+v", len(igs), igs)
	}
	if igs[0].Analyzer != "hotalloc" || igs[0].Reason != "cold error path" {
		t.Errorf("first directive parsed as %+v", igs[0])
	}
	if igs[1].Analyzer != "maporder" || igs[1].Reason != "" {
		t.Errorf("second directive parsed as %+v", igs[1])
	}
}

func TestIsHotPath(t *testing.T) {
	_, files := parse(t, `package p

// Fast is quick.
//
//mmdr:hotpath audited by alloc_test
func Fast() {}

// Slow is not annotated.
func Slow() {}

//mmdr:hotpathnope
func Typo() {}
`)
	got := map[string]bool{}
	for _, d := range files[0].Decls {
		if fn, ok := d.(*ast.FuncDecl); ok {
			got[fn.Name.Name] = IsHotPath(fn)
		}
	}
	want := map[string]bool{"Fast": true, "Slow": false, "Typo": false}
	for name, hot := range want {
		if got[name] != hot {
			t.Errorf("IsHotPath(%s) = %v, want %v", name, got[name], hot)
		}
	}
}

// TestSuppressionAndValidation drives a fake analyzer through the runner:
// a justified directive silences the finding, a reason-less one does not
// and is reported itself, an unknown name is reported.
func TestSuppressionAndValidation(t *testing.T) {
	src := `package p

//mmdr:ignore fake covered by integration tests
var a int

//mmdr:ignore fake
var b int

//mmdr:ignore nosuch some reason
var c int

var d int
`
	fset, files := parse(t, src)
	fake := &Analyzer{
		Name: "fake",
		Doc:  "flags every var declaration",
		Run: func(p *Pass) error {
			for _, f := range p.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					if vs, ok := n.(*ast.ValueSpec); ok {
						p.Reportf(vs.Pos(), "var declared")
					}
					return true
				})
			}
			return nil
		},
	}
	r := &Runner{Analyzers: []*Analyzer{fake}}
	diags, err := r.Run(fset, files, nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	var got []string
	for _, d := range diags {
		got = append(got, d.String())
	}
	joined := strings.Join(got, "\n")

	if strings.Contains(joined, "x.go:4") {
		t.Errorf("justified suppression did not silence the finding:\n%s", joined)
	}
	for _, want := range []string{
		"x.go:6:1: mmdrignore: //mmdr:ignore fake is missing a reason",
		"x.go:7:5: fake: var declared", // unjustified directives do not suppress
		`x.go:9:1: mmdrignore: //mmdr:ignore names unknown analyzer "nosuch"`,
		"x.go:10:5: fake: var declared",
		"x.go:12:5: fake: var declared",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing diagnostic %q in:\n%s", want, joined)
		}
	}
	if len(diags) != 5 {
		t.Errorf("got %d diagnostics, want 5:\n%s", len(diags), joined)
	}
}
