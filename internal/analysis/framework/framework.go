// Package framework is a minimal, stdlib-only mirror of the
// golang.org/x/tools/go/analysis API surface the mmdrlint analyzers need.
// The container this repo builds in has no module proxy access, so the
// x/tools dependency is replaced by this package plus internal/analysis/load
// (package loading) and cmd/mmdrlint's vet-protocol shim. The shapes are
// kept deliberately close to go/analysis — Analyzer{Name, Doc, Run},
// Pass{Fset, Files, Pkg, TypesInfo, Report} — so a future swap to the real
// framework is mechanical.
//
// On top of the x/tools shapes, the framework implements the repo's
// suppression directive:
//
//	//mmdr:ignore <analyzer>[,<analyzer>...] <reason>
//
// placed on the flagged line, the line directly above it, or — when the
// flagged statement spans multiple lines — trailing any line of the
// statement (a suppression on a continuation line of a wrapped call is as
// deliberate as one on its first line). A directive without a reason does
// not suppress anything and is itself reported, so every silenced finding
// carries a justification in the source.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check. Run inspects a single package via
// the Pass and reports findings through pass.Reportf.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //mmdr:ignore directives. It must be a valid identifier.
	Name string
	// Doc is the one-paragraph description printed by mmdrlint help.
	Doc string
	// Run executes the check over one package.
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one package, mirroring
// x/tools' analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	runner *Runner
}

// Diagnostic is one finding: its position, the analyzer that produced it,
// and the message.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Reportf records a finding at pos unless a justified //mmdr:ignore
// directive for this analyzer covers the position's line (same line or the
// line immediately above).
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.runner.suppressed(p.Analyzer.Name, position) {
		return
	}
	p.runner.diags = append(p.runner.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of expression e (nil when untyped/unknown),
// mirroring types.Info.TypeOf via the pass.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.TypesInfo.TypeOf(e) }

// ObjectOf resolves an identifier to its object (definition or use).
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if obj := p.TypesInfo.ObjectOf(id); obj != nil {
		return obj
	}
	return nil
}

// Runner executes a set of analyzers over one package and owns the
// suppression-directive machinery shared by all of them.
type Runner struct {
	Analyzers []*Analyzer
	// Known lists analyzer names that are valid in //mmdr:ignore directives
	// beyond the ones in this run — single-analyzer test runs pass the full
	// registry here so a directive for a sibling analyzer is not misreported
	// as unknown.
	Known []string

	ignores []IgnoreDirective
	spans   []stmtSpan
	diags   []Diagnostic
}

// stmtSpan is the line range of one statement (or field/spec) — for
// compound statements only the header, up to the opening brace, so a
// directive inside an if body never silences a finding on the condition.
type stmtSpan struct {
	filename   string
	start, end int
}

// collectSpans records the line span of every statement, struct field and
// value spec so suppression directives can match any line of a multi-line
// statement, not just its first.
func collectSpans(fset *token.FileSet, files []*ast.File) []stmtSpan {
	var out []stmtSpan
	add := func(n ast.Node, endPos token.Pos) {
		start := fset.Position(n.Pos())
		end := fset.Position(endPos)
		out = append(out, stmtSpan{start.Filename, start.Line, end.Line})
	}
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.BlockStmt, *ast.LabeledStmt:
				// Wrappers: their contents carry the spans.
			case *ast.IfStmt:
				add(x, x.Body.Lbrace)
			case *ast.ForStmt:
				add(x, x.Body.Lbrace)
			case *ast.RangeStmt:
				add(x, x.Body.Lbrace)
			case *ast.SwitchStmt:
				add(x, x.Body.Lbrace)
			case *ast.TypeSwitchStmt:
				add(x, x.Body.Lbrace)
			case *ast.SelectStmt:
				add(x, x.Body.Lbrace)
			case *ast.CaseClause:
				add(x, x.Colon)
			case *ast.CommClause:
				add(x, x.Colon)
			case ast.Stmt:
				add(x, x.End())
			case *ast.Field:
				add(x, x.End())
			case *ast.ValueSpec:
				add(x, x.End())
			}
			return true
		})
	}
	return out
}

// Run analyzes the package described by (fset, files, pkg, info) with every
// analyzer, validates the //mmdr:ignore directives, and returns the
// surviving diagnostics sorted by position.
func (r *Runner) Run(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]Diagnostic, error) {
	r.ignores = collectIgnores(fset, files)
	r.spans = collectSpans(fset, files)
	r.diags = nil

	for _, a := range r.Analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			runner:    r,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}

	r.validateIgnores()

	sort.Slice(r.diags, func(i, j int) bool {
		a, b := r.diags[i], r.diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return r.diags, nil
}

// suppressed reports whether a justified directive for the named analyzer
// covers the diagnostic position: same line, the line directly above, or
// any line of the enclosing statement's span (plus the line above the
// span) when the statement wraps across lines. Unjustified directives (no
// reason) never suppress — they are themselves diagnosed by
// validateIgnores.
func (r *Runner) suppressed(analyzer string, pos token.Position) bool {
	// Innermost statement span containing the diagnostic: the narrowest
	// span wins, so a directive inside a nested statement never bleeds
	// outward.
	var sp *stmtSpan
	for i := range r.spans {
		s := &r.spans[i]
		if s.filename != pos.Filename || pos.Line < s.start || pos.Line > s.end {
			continue
		}
		if sp == nil || s.end-s.start < sp.end-sp.start {
			sp = s
		}
	}
	for i := range r.ignores {
		ig := &r.ignores[i]
		if ig.Reason == "" || !ig.Covers(analyzer) {
			continue
		}
		if ig.Pos.Filename != pos.Filename {
			continue
		}
		if ig.Pos.Line == pos.Line || ig.Pos.Line == pos.Line-1 {
			ig.used = true
			return true
		}
		if sp != nil && ig.Pos.Line >= sp.start-1 && ig.Pos.Line <= sp.end {
			ig.used = true
			return true
		}
	}
	return false
}

// validateIgnores enforces the directive contract: the named analyzer must
// exist in this run's set, and a non-empty reason is mandatory.
func (r *Runner) validateIgnores() {
	known := make(map[string]bool, len(r.Analyzers)+len(r.Known))
	for _, a := range r.Analyzers {
		known[a.Name] = true
	}
	for _, n := range r.Known {
		known[n] = true
	}
	for _, ig := range r.ignores {
		if len(ig.Analyzers) == 0 {
			r.diags = append(r.diags, Diagnostic{
				Pos:      ig.Pos,
				Analyzer: "mmdrignore",
				Message:  "//mmdr:ignore needs an analyzer name and a reason",
			})
			continue
		}
		bad := false
		for _, name := range ig.Analyzers {
			if !known[name] {
				bad = true
				r.diags = append(r.diags, Diagnostic{
					Pos:      ig.Pos,
					Analyzer: "mmdrignore",
					Message:  fmt.Sprintf("//mmdr:ignore names unknown analyzer %q", name),
				})
			}
		}
		if !bad && ig.Reason == "" {
			r.diags = append(r.diags, Diagnostic{
				Pos:      ig.Pos,
				Analyzer: "mmdrignore",
				Message:  fmt.Sprintf("//mmdr:ignore %s is missing a reason — unjustified suppressions are errors", strings.Join(ig.Analyzers, ",")),
			})
		}
	}
}
