package framework

import (
	"go/ast"
	"go/token"
	"strings"
)

// The repo's source directives, written like standard Go tool directives
// (no space after //):
//
//	//mmdr:hotpath [note]             — marks a function whose body must
//	                                    respect the hot-path allocation budget
//	//mmdr:ignore <analyzers> <reason> — silences one finding, with the
//	                                    justification kept in the source;
//	                                    <analyzers> is one name or a
//	                                    comma-separated list (no spaces)
//	//mmdr:persist [save=F] [load=F] [rebuild=M]
//	                                  — marks a gob-persisted struct whose
//	                                    fields persistdrift audits
const (
	ignorePrefix  = "//mmdr:ignore"
	hotpathPrefix = "//mmdr:hotpath"
	persistPrefix = "//mmdr:persist"
)

// IgnoreDirective is one parsed //mmdr:ignore comment.
type IgnoreDirective struct {
	Pos       token.Position
	Analyzers []string // comma-separated names after the directive (empty when absent)
	Reason    string   // rest of the comment ("" when absent)

	used bool
}

// Covers reports whether the directive names the given analyzer.
func (ig *IgnoreDirective) Covers(analyzer string) bool {
	for _, a := range ig.Analyzers {
		if a == analyzer {
			return true
		}
	}
	return false
}

// collectIgnores parses every //mmdr:ignore directive in the files,
// regardless of where the comments attach in the AST.
func collectIgnores(fset *token.FileSet, files []*ast.File) []IgnoreDirective {
	var out []IgnoreDirective
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := directiveRest(c.Text, ignorePrefix)
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				ig := IgnoreDirective{Pos: fset.Position(c.Pos())}
				if len(fields) > 0 {
					for _, name := range strings.Split(fields[0], ",") {
						if name != "" {
							ig.Analyzers = append(ig.Analyzers, name)
						}
					}
				}
				if len(fields) > 1 {
					ig.Reason = strings.Join(fields[1:], " ")
				}
				out = append(out, ig)
			}
		}
	}
	return out
}

// directiveRest strips prefix from a comment, requiring a word boundary:
// "//mmdr:ignorexyz" is not the ignore directive. The remainder (possibly
// empty) is returned with ok=true on a match.
func directiveRest(text, prefix string) (string, bool) {
	if !strings.HasPrefix(text, prefix) {
		return "", false
	}
	rest := strings.TrimPrefix(text, prefix)
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return "", false
	}
	return rest, true
}

// IsHotPath reports whether fn carries a //mmdr:hotpath directive anywhere
// in its doc comment — including doc groups that open with prose, and
// methods with pointer or value receivers (the directive attaches to the
// declaration, not the receiver).
func IsHotPath(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if _, ok := directiveRest(c.Text, hotpathPrefix); ok {
			return true
		}
	}
	return false
}

// PersistDirective is one parsed //mmdr:persist comment: the contract a
// gob-persisted struct declares for the persistdrift analyzer.
type PersistDirective struct {
	Pos token.Pos
	// Save names a function/method in the package through which every
	// field must flow when encoding ("" = fields encode directly via gob).
	Save string
	// Load names the function/method that must restore every field when
	// decoding ("" = gob decodes exported fields directly).
	Load string
	// Rebuild names the method that re-derives unexported (gob-skipped)
	// fields after decode, e.g. EnsureKernels.
	Rebuild string
	// Unknown collects unrecognized key=value options, reported by the
	// analyzer so typos cannot silently disable a check.
	Unknown []string
}

// PersistDirectiveOf parses the //mmdr:persist directive out of a doc
// comment group (nil when the group carries none).
func PersistDirectiveOf(doc *ast.CommentGroup) *PersistDirective {
	if doc == nil {
		return nil
	}
	for _, c := range doc.List {
		rest, ok := directiveRest(c.Text, persistPrefix)
		if !ok {
			continue
		}
		d := &PersistDirective{Pos: c.Pos()}
		for _, f := range strings.Fields(rest) {
			key, val, found := strings.Cut(f, "=")
			if !found {
				d.Unknown = append(d.Unknown, f)
				continue
			}
			switch key {
			case "save":
				d.Save = val
			case "load":
				d.Load = val
			case "rebuild":
				d.Rebuild = val
			default:
				d.Unknown = append(d.Unknown, f)
			}
		}
		return d
	}
	return nil
}
