package framework

import (
	"go/ast"
	"go/token"
	"strings"
)

// The repo's two source directives, written like standard Go tool
// directives (no space after //):
//
//	//mmdr:hotpath [note]            — marks a function whose body must
//	                                   respect the hot-path allocation budget
//	//mmdr:ignore <analyzer> <reason> — silences one finding, with the
//	                                   justification kept in the source
const (
	ignorePrefix  = "//mmdr:ignore"
	hotpathPrefix = "//mmdr:hotpath"
)

// IgnoreDirective is one parsed //mmdr:ignore comment.
type IgnoreDirective struct {
	Pos      token.Position
	Analyzer string // first word after the directive ("" when absent)
	Reason   string // rest of the comment ("" when absent)

	used bool
}

// collectIgnores parses every //mmdr:ignore directive in the files,
// regardless of where the comments attach in the AST.
func collectIgnores(fset *token.FileSet, files []*ast.File) []IgnoreDirective {
	var out []IgnoreDirective
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, ignorePrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //mmdr:ignorexyz — not this directive
				}
				fields := strings.Fields(rest)
				ig := IgnoreDirective{Pos: fset.Position(c.Pos())}
				if len(fields) > 0 {
					ig.Analyzer = fields[0]
				}
				if len(fields) > 1 {
					ig.Reason = strings.Join(fields[1:], " ")
				}
				out = append(out, ig)
			}
		}
	}
	return out
}

// IsHotPath reports whether fn carries a //mmdr:hotpath directive in its
// doc comment.
func IsHotPath(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if c.Text == hotpathPrefix || strings.HasPrefix(c.Text, hotpathPrefix+" ") {
			return true
		}
	}
	return false
}
