// Package locks exercises lockbal: path-sensitive Lock/Unlock balance,
// unlock-without-lock, self-deadlock, and fan-out / channel ops under a
// held mutex.
package locks

import (
	"sync"

	"mmdr/internal/pool"
)

type store struct {
	mu   sync.RWMutex
	data []float64
	ch   chan int
}

// DeferIdiom is the repository's standard shape — fine.
func (s *store) DeferIdiom() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.data)
}

// DirectBalance unlocks on the single path — fine.
func (s *store) DirectBalance() {
	s.mu.Lock()
	s.data = append(s.data, 0)
	s.mu.Unlock()
}

// BalancedBranches unlocks on both paths — fine.
func (s *store) BalancedBranches(cond bool) int {
	s.mu.RLock()
	if cond {
		s.mu.RUnlock()
		return 0
	}
	n := len(s.data)
	s.mu.RUnlock()
	return n
}

// EarlyReturnLeak leaks the write lock when cond is true.
func (s *store) EarlyReturnLeak(cond bool) int {
	s.mu.Lock() // want `s\.mu\.Lock\(\) is not released by Unlock or defer on every return path`
	if cond {
		return 0
	}
	n := len(s.data)
	s.mu.Unlock()
	return n
}

// ReadLeak never releases the read lock.
func (s *store) ReadLeak() int {
	s.mu.RLock() // want `s\.mu\.RLock\(\) is not released by RUnlock or defer on every return path`
	return len(s.data)
}

// UnpairedUnlock unlocks a mutex that is not locked on any path.
func (s *store) UnpairedUnlock() {
	s.mu.Unlock() // want `s\.mu\.Unlock\(\) but s\.mu is not write-locked on any path to here`
}

// DoubleLock re-locks while already holding the lock. Two findings: the
// deadlock at the second Lock, and — since the single deferred Unlock can
// release only one acquisition — a leak reported at the first.
func (s *store) DoubleLock() {
	s.mu.Lock() // want `s\.mu\.Lock\(\) is not released by Unlock or defer on every return path`
	defer s.mu.Unlock()
	s.mu.Lock() // want `s\.mu\.Lock\(\) while s\.mu may already be held`
}

// ReadUnderWrite acquires the read lock while write-locked.
func (s *store) ReadUnderWrite() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mu.RLock() // want `s\.mu\.RLock\(\) while s\.mu may be write-locked`
	defer s.mu.RUnlock()
}

// ConditionalDeferPair locks and defers inside one branch — balanced on
// every path, no finding.
func (s *store) ConditionalDeferPair(cond bool) int {
	if cond {
		s.mu.RLock()
		defer s.mu.RUnlock()
		return len(s.data)
	}
	return 0
}

// TwoLocksIndependent tracks each mutex separately.
type twoLock struct {
	a, b sync.Mutex
}

func (t *twoLock) TwoLocksIndependent() {
	t.a.Lock()
	defer t.a.Unlock()
	t.b.Lock() // want `t\.b\.Lock\(\) is not released by Unlock or defer on every return path`
}

// FanOutUnderLock runs the worker pool while write-locked — workers
// contend with (or deadlock against) the caller's lock.
func (s *store) FanOutUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	pool.Run(4, len(s.data), func(i int) { // want `pool\.Run fan-out while s\.mu is held`
		s.data[i] = 0
	})
}

// FanOutAfterDeferredUnlock: the defer keeps the lock held until return,
// so the fan-out still runs under it.
func (s *store) FanOutAfterDeferredUnlock() {
	s.mu.RLock()
	defer s.mu.RUnlock()
	pool.Chunks(4, len(s.data), func(chunk, lo, hi int) { // want `pool\.Chunks fan-out while s\.mu is held`
		_ = s.data[lo:hi]
	})
}

// FanOutAfterUnlock releases first — fine.
func (s *store) FanOutAfterUnlock() {
	s.mu.Lock()
	n := len(s.data)
	s.mu.Unlock()
	pool.Run(4, n, func(i int) {})
}

// SendUnderLock blocks on a channel send while holding the lock.
func (s *store) SendUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ch <- 1 // want `blocking channel send while s\.mu is held`
}

// ReceiveUnderLock blocks on a receive while holding the lock.
func (s *store) ReceiveUnderLock() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return <-s.ch // want `blocking channel receive while s\.mu is held`
}

// RangeChanUnderLock blocks per iteration.
func (s *store) RangeChanUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for v := range s.ch { // want `blocking range over a channel while s\.mu is held`
		_ = v
	}
}

// SelectWithDefaultUnderLock never blocks — fine.
func (s *store) SelectWithDefaultUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case v := <-s.ch:
		_ = v
	default:
	}
}

// SelectNoDefaultUnderLock blocks until a case fires.
func (s *store) SelectNoDefaultUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case v := <-s.ch: // want `blocking channel receive while s\.mu is held`
		_ = v
	}
}

// ChanOpsUnlocked: channel traffic without a lock held is not lockbal's
// business.
func (s *store) ChanOpsUnlocked() int {
	s.ch <- 1
	return <-s.ch
}

// ClosureBalanced: each function literal is analyzed on its own.
func (s *store) ClosureBalanced() func() {
	return func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		s.data = nil
	}
}

// ClosureLeak leaks inside the literal.
func (s *store) ClosureLeak() func() {
	return func() {
		s.mu.Lock() // want `s\.mu\.Lock\(\) is not released by Unlock or defer on every return path`
		s.data = nil
	}
}

// DeferredLitUnlock releases through a deferred function literal — fine.
func (s *store) DeferredLitUnlock() {
	s.mu.Lock()
	defer func() {
		s.data = nil
		s.mu.Unlock()
	}()
	s.data = append(s.data, 1)
}

// LoopBalance locks and unlocks per iteration — fine, including the back
// edge.
func (s *store) LoopBalance(n int) {
	for i := 0; i < n; i++ {
		s.mu.Lock()
		s.data = append(s.data, float64(i))
		s.mu.Unlock()
	}
}

// Handoff intentionally transfers lock ownership to the caller; the
// deviation is visible and justified.
func (s *store) Handoff() {
	//mmdr:ignore lockbal lock ownership transfers to the caller, released in Release
	s.mu.Lock()
	s.data = nil
}

// Release is Handoff's counterpart.
func (s *store) Release() {
	//mmdr:ignore lockbal releases the lock acquired by Handoff
	s.mu.Unlock()
}

// EmbeddedMutex: promoted Lock/Unlock methods key on the embedding
// expression.
type embedded struct {
	sync.Mutex
	n int
}

func (e *embedded) Leak() {
	e.Lock() // want `e\.Lock\(\) is not released by Unlock or defer on every return path`
	e.n++
}

func (e *embedded) Balanced() {
	e.Lock()
	defer e.Unlock()
	e.n++
}
