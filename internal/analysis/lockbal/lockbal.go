// Package lockbal checks mutex discipline path-sensitively, using the
// cfg+flow layers. For every sync.Mutex / sync.RWMutex manipulated in a
// function it verifies, over all control-flow paths:
//
//   - Balance: every Lock (RLock) is matched by an Unlock (RUnlock) —
//     either executed directly on the path or registered with defer — on
//     every path to a return. The repository idiom is Lock-then-defer in
//     the statement pair that opens ConcurrentIndex and obs.Collector
//     methods; this analyzer is what keeps a later early-return from
//     silently leaking the lock.
//   - No unlock of a mutex that cannot be locked at that point on any
//     path (an unpaired Unlock panics at run time).
//   - No re-Lock while the same mutex may already be held (self-deadlock;
//     RLock while the write lock may be held is flagged too).
//   - No pool.Run / pool.Chunks fan-out and no blocking channel operation
//     while any lock is held: the workers (or the peer goroutine) may need
//     the same structure, and parallel sections must never serialize on a
//     caller's lock. Deferred unlocks keep the lock held until return, so
//     a fan-out after `defer mu.Unlock()` is still a finding.
//
// Lock identity is the printed receiver expression (`c.mu`, `idx.statsMu`)
// — syntactic, per function, which matches how mutexes are actually used:
// a lock reached through two different expressions in one function would
// be a finding in any review. Methods promoted from an embedded mutex
// (`c.Lock()`) key on the embedding expression.
//
// Facts per lock (forward may-analysis): heldW/heldR — an exclusive/read
// hold taken on this path and not yet directly released (defer does NOT
// clear it: the lock stays held until return); obW/obR — the release
// obligation, cleared by a direct unlock or a registered defer. A path
// reaching Exit with the obligation still set is a leak; using held at
// each node keeps the fan-out check honest after a deferred unlock.
package lockbal

import (
	"go/ast"
	"go/token"
	"go/types"

	"mmdr/internal/analysis/cfg"
	"mmdr/internal/analysis/flow"
	"mmdr/internal/analysis/framework"
)

// Analyzer is the lockbal check.
var Analyzer = &framework.Analyzer{
	Name: "lockbal",
	Doc:  "checks Lock/Unlock balance on all paths and forbids fan-out or blocking channel ops under a held mutex",
	Run:  run,
}

// poolPath is the repository's fan-out package; Run and Chunks block until
// every worker finishes.
const poolPath = "mmdr/internal/pool"

func run(pass *framework.Pass) error {
	for _, file := range pass.Files {
		// A function literal invoked directly by a defer statement runs in
		// the enclosing function's lock context at return time; its mutex
		// ops are already modeled there by deferredOps. Analyzing such a
		// literal standalone would misreport its Unlock as unpaired.
		deferred := map[*ast.FuncLit]bool{}
		ast.Inspect(file, func(n ast.Node) bool {
			if d, ok := n.(*ast.DeferStmt); ok {
				if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
					deferred[lit] = true
				}
			}
			return true
		})
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkFunc(pass, fn.Body)
				}
			case *ast.FuncLit:
				if !deferred[fn] {
					checkFunc(pass, fn.Body)
				}
				// checkFunc never descends into nested literals itself;
				// keep walking so they are analyzed as their own functions.
			}
			return true
		})
	}
	return nil
}

// fact offsets within one lock's 4-fact group.
const (
	heldW = iota
	heldR
	obW
	obR
	factsPerLock
)

// mutexOp classifies one call as a mutex operation.
type mutexOp struct {
	key  string // printed receiver expression: "c.mu", "idx.statsMu"
	name string // Lock, Unlock, RLock, RUnlock
	pos  token.Pos
}

type checker struct {
	pass    *framework.Pass
	keys    map[string]int // lock key -> fact group index
	order   []string
	lockPos map[int]token.Pos // first Lock/RLock position per fact index
	// nonBlocking marks comm statements of selects that have a default
	// clause: those receives/sends never block.
	nonBlocking map[ast.Node]bool
}

func checkFunc(pass *framework.Pass, body *ast.BlockStmt) {
	c := &checker{
		pass:        pass,
		keys:        map[string]int{},
		lockPos:     map[int]token.Pos{},
		nonBlocking: map[ast.Node]bool{},
	}
	walkShallow(body, func(n ast.Node) {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return
		}
		hasDefault := false
		for _, cl := range sel.Body.List {
			if cl.(*ast.CommClause).Comm == nil {
				hasDefault = true
			}
		}
		if hasDefault {
			for _, cl := range sel.Body.List {
				if comm := cl.(*ast.CommClause).Comm; comm != nil {
					c.nonBlocking[comm] = true
				}
			}
		}
	})

	// Prepass: find every mutex receiver so fact indices are stable before
	// the dataflow runs. Nested function literals are separate functions.
	walkShallow(body, func(n ast.Node) {
		if call, ok := n.(*ast.CallExpr); ok {
			if op := c.mutexOp(call); op != nil {
				if _, seen := c.keys[op.key]; !seen {
					c.keys[op.key] = len(c.order) * factsPerLock
					c.order = append(c.order, op.key)
				}
			}
		}
	})
	if len(c.order) == 0 {
		return
	}

	nfacts := len(c.order) * factsPerLock
	g := cfg.New(body)
	may := flow.Forward(g, nfacts, flow.May, flow.NewSet(nfacts), c.transfer)

	// Leak check: a path reaches Exit with a release obligation pending.
	exitIn := may.In(g.Exit)
	for _, key := range c.order {
		base := c.keys[key]
		if exitIn.Has(base + obW) {
			c.pass.Reportf(c.lockPos[base+obW], "%s.Lock() is not released by Unlock or defer on every return path", key)
		}
		if exitIn.Has(base + obR) {
			c.pass.Reportf(c.lockPos[base+obR], "%s.RLock() is not released by RUnlock or defer on every return path", key)
		}
	}

	// Node-level checks against the facts holding immediately before each
	// statement.
	for _, b := range g.Blocks {
		if !may.Reachable(b) {
			continue
		}
		may.WalkNode(b, func(n ast.Node, before flow.Set) {
			c.checkNode(n, before)
		})
	}
}

// transfer is the dataflow transfer function: lock operations gen/kill the
// held and obligation facts; a defer clears only the obligation.
func (c *checker) transfer(n ast.Node, in flow.Set) flow.Set {
	if d, ok := n.(*ast.DeferStmt); ok {
		c.deferredOps(d, func(op *mutexOp) {
			base := c.keys[op.key]
			switch op.name {
			case "Unlock":
				in.Remove(base + obW)
			case "RUnlock":
				in.Remove(base + obR)
			}
		})
		return in
	}
	c.directCalls(n, func(call *ast.CallExpr) {
		op := c.mutexOp(call)
		if op == nil {
			return
		}
		base := c.keys[op.key]
		switch op.name {
		case "Lock":
			in.Add(base + heldW)
			in.Add(base + obW)
			if _, ok := c.lockPos[base+obW]; !ok {
				c.lockPos[base+obW] = op.pos
			}
		case "Unlock":
			in.Remove(base + heldW)
			in.Remove(base + obW)
		case "RLock":
			in.Add(base + heldR)
			in.Add(base + obR)
			if _, ok := c.lockPos[base+obR]; !ok {
				c.lockPos[base+obR] = op.pos
			}
		case "RUnlock":
			in.Remove(base + heldR)
			in.Remove(base + obR)
		}
	})
	return in
}

// checkNode reports the node-level findings given the facts before n.
func (c *checker) checkNode(n ast.Node, before flow.Set) {
	if _, ok := n.(*ast.DeferStmt); ok {
		return // deferred calls run at return, not here
	}
	c.directCalls(n, func(call *ast.CallExpr) {
		if op := c.mutexOp(call); op != nil {
			base := c.keys[op.key]
			switch op.name {
			case "Unlock":
				if !before.Has(base + heldW) {
					c.pass.Reportf(op.pos, "%s.Unlock() but %s is not write-locked on any path to here", op.key, op.key)
				}
			case "RUnlock":
				if !before.Has(base + heldR) {
					c.pass.Reportf(op.pos, "%s.RUnlock() but %s is not read-locked on any path to here", op.key, op.key)
				}
			case "Lock":
				if before.Has(base+heldW) || before.Has(base+heldR) {
					c.pass.Reportf(op.pos, "%s.Lock() while %s may already be held — self-deadlock", op.key, op.key)
				}
			case "RLock":
				if before.Has(base + heldW) {
					c.pass.Reportf(op.pos, "%s.RLock() while %s may be write-locked — self-deadlock", op.key, op.key)
				}
			}
			return
		}
		if name, ok := c.poolFanOut(call); ok {
			if key := c.anyHeld(before); key != "" {
				c.pass.Reportf(call.Pos(), "pool.%s fan-out while %s is held: workers serialize on (or deadlock against) the caller's lock", name, key)
			}
		}
	})
	c.blockingChanOps(n, func(pos token.Pos, what string) {
		if key := c.anyHeld(before); key != "" {
			c.pass.Reportf(pos, "blocking %s while %s is held", what, key)
		}
	})
}

// anyHeld returns the key of some lock held in the set, or "".
func (c *checker) anyHeld(s flow.Set) string {
	for _, key := range c.order {
		base := c.keys[key]
		if s.Has(base+heldW) || s.Has(base+heldR) {
			return key
		}
	}
	return ""
}

// mutexOp classifies call as a sync mutex method call on a trackable
// receiver expression, or nil.
func (c *checker) mutexOp(call *ast.CallExpr) *mutexOp {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	name := sel.Sel.Name
	switch name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return nil
	}
	fn, ok := c.pass.ObjectOf(sel.Sel).(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil
	}
	return &mutexOp{key: types.ExprString(sel.X), name: name, pos: call.Pos()}
}

// deferredOps invokes f for each mutex op a defer statement registers:
// either the deferred call itself, or — for `defer func() { ... }()` —
// every mutex call inside the literal body (all of them run at return).
func (c *checker) deferredOps(d *ast.DeferStmt, f func(*mutexOp)) {
	if op := c.mutexOp(d.Call); op != nil {
		f(op)
		return
	}
	lit, ok := d.Call.Fun.(*ast.FuncLit)
	if !ok {
		return
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if op := c.mutexOp(call); op != nil {
				f(op)
			}
		}
		return true
	})
}

// poolFanOut reports whether call invokes pool.Run or pool.Chunks.
func (c *checker) poolFanOut(call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := c.pass.ObjectOf(sel.Sel).(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != poolPath {
		return "", false
	}
	switch fn.Name() {
	case "Run", "Chunks":
		return fn.Name(), true
	}
	return "", false
}

// blockingChanOps finds channel sends, receives and channel ranges that
// execute as part of node n. The CFG hands each select comm statement to
// its own case block, so n is the comm itself there; comms of selects
// with a default clause are non-blocking and skipped via c.nonBlocking.
func (c *checker) blockingChanOps(n ast.Node, f func(token.Pos, string)) {
	if c.nonBlocking[n] {
		return
	}
	switch s := n.(type) {
	case *ast.DeferStmt, *ast.GoStmt:
		_ = s
		return // runs later / elsewhere
	case *ast.RangeStmt:
		// The CFG places the RangeStmt node at the loop head; its operand
		// was evaluated earlier. A range over a channel blocks per
		// iteration.
		if t := c.pass.TypeOf(s.X); t != nil {
			if _, ok := t.Underlying().(*types.Chan); ok {
				f(s.For, "range over a channel")
			}
		}
		return
	}
	walkShallow(n, func(m ast.Node) {
		switch x := m.(type) {
		case *ast.SendStmt:
			f(x.Arrow, "channel send")
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				f(x.OpPos, "channel receive")
			}
		}
	})
}

// walkShallow walks the AST under n without descending into nested
// function literals, go statements or select statements: literals run
// when called, go bodies run elsewhere, and select comm clauses get their
// own CFG nodes with non-blocking semantics handled separately.
func walkShallow(n ast.Node, f func(ast.Node)) {
	ast.Inspect(n, func(m ast.Node) bool {
		switch m.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		}
		if m != nil {
			f(m)
		}
		return true
	})
}

// directCalls invokes f for every call expression executed as part of n
// itself — skipping nested function literals (run later) and go
// statements (run elsewhere). A RangeStmt node is the CFG's loop head:
// its operand was evaluated in an earlier node and its body statements
// have their own blocks, so nothing under it executes "here".
func (c *checker) directCalls(n ast.Node, f func(*ast.CallExpr)) {
	if _, ok := n.(*ast.RangeStmt); ok {
		return
	}
	walkShallow(n, func(m ast.Node) {
		if call, ok := m.(*ast.CallExpr); ok {
			f(call)
		}
	})
}
