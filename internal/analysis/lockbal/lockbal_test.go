package lockbal_test

import (
	"testing"

	"mmdr/internal/analysis/analysistest"
	"mmdr/internal/analysis/lockbal"
)

func TestLockBal(t *testing.T) {
	analysistest.Run(t, lockbal.Analyzer, "locks")
}
