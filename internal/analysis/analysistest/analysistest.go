// Package analysistest runs one mmdrlint analyzer over testdata packages
// and checks its diagnostics against `// want` expectations, mirroring
// golang.org/x/tools/go/analysis/analysistest with the stdlib-only loader.
//
// Layout: <analyzer pkg>/testdata/src/<name>/*.go, loaded under the import
// path <name>. Expectations are trailing comments on the offending line:
//
//	for k := range m { // want `range over map`
//
// Each backquoted payload is a regexp that must match a diagnostic on that
// line; every diagnostic must be matched by an expectation and vice versa.
// Testdata may import real module packages (e.g. mmdr/internal/pool) — the
// loader resolves them from the repository's build.
package analysistest

import (
	"fmt"
	"go/ast"
	"path/filepath"
	"regexp"
	"strconv"
	"testing"

	"mmdr/internal/analysis"
	"mmdr/internal/analysis/framework"
	"mmdr/internal/analysis/load"
)

var (
	payloadRE = regexp.MustCompile("`([^`]*)`")
	wantRE    = regexp.MustCompile(`want(?::([+-]?\d+))?\s`)
)

// Run checks analyzer against each named testdata package.
func Run(t *testing.T, analyzer *framework.Analyzer, pkgs ...string) {
	t.Helper()
	root, err := load.ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	loader, err := load.New(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range pkgs {
		dir := filepath.Join("testdata", "src", name)
		pkg, err := loader.LoadDir(dir, name)
		if err != nil {
			t.Fatalf("loading %s: %v", dir, err)
		}
		runner := &framework.Runner{
			Analyzers: []*framework.Analyzer{analyzer},
			Known:     analysis.Names(),
		}
		diags, err := runner.Run(pkg.Fset, pkg.Files, pkg.Types, pkg.Info)
		if err != nil {
			t.Fatalf("%s over %s: %v", analyzer.Name, name, err)
		}
		check(t, pkg, diags)
	}
}

// expectation is one `// want` payload: the line it covers and the regexp a
// diagnostic there must match.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	met  bool
}

func check(t *testing.T, pkg *load.Package, diags []framework.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				wants = append(wants, parseWants(t, pkg, c)...)
			}
		}
	}

	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.met || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.met = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// parseWants extracts the expectations from one comment. A plain `// want`
// covers the comment's own line; `// want:-1` covers the line above it and
// `// want:+2` the second line below — used when the flagged line is
// itself a directive comment, which cannot carry a second comment (gofmt
// pins directives to the bottom of a doc group, so the want comment sits
// above the directive it describes).
func parseWants(t *testing.T, pkg *load.Package, c *ast.Comment) []*expectation {
	t.Helper()
	loc := wantRE.FindStringSubmatchIndex(c.Text)
	if loc == nil {
		return nil
	}
	pos := pkg.Fset.Position(c.Pos())
	line := pos.Line
	if loc[2] >= 0 {
		delta, err := strconv.Atoi(c.Text[loc[2]:loc[3]])
		if err != nil {
			t.Fatalf("%s:%d: bad want line offset: %v", pos.Filename, pos.Line, err)
		}
		line += delta
	}
	var out []*expectation
	for _, m := range payloadRE.FindAllStringSubmatch(c.Text[loc[0]:], -1) {
		re, err := regexp.Compile(m[1])
		if err != nil {
			t.Fatalf("%s: bad want pattern %q: %v", fmt.Sprintf("%s:%d", pos.Filename, pos.Line), m[1], err)
		}
		out = append(out, &expectation{file: pos.Filename, line: line, re: re})
	}
	return out
}
