package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// buildFunc parses src as the body of a function and returns its graph.
func buildFunc(t *testing.T, body string) *Graph {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, src)
	}
	fn := f.Decls[0].(*ast.FuncDecl)
	return New(fn.Body)
}

// reachable returns the set of blocks reachable from Entry.
func reachable(g *Graph) map[*Block]bool {
	seen := map[*Block]bool{}
	var walk func(*Block)
	walk = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			walk(s)
		}
	}
	walk(g.Entry)
	return seen
}

// hasEdge reports a direct edge between the first blocks of the named
// kinds.
func hasEdge(g *Graph, fromKind, toKind string) bool {
	for _, b := range g.Blocks {
		if b.Kind != fromKind {
			continue
		}
		for _, s := range b.Succs {
			if s.Kind == toKind {
				return true
			}
		}
	}
	return false
}

func kinds(g *Graph) map[string]int {
	m := map[string]int{}
	for _, b := range g.Blocks {
		m[b.Kind]++
	}
	return m
}

func TestStraightLine(t *testing.T) {
	g := buildFunc(t, "x := 1\n_ = x")
	if len(g.Entry.Nodes) != 2 {
		t.Fatalf("entry has %d nodes, want 2\n%s", len(g.Entry.Nodes), g)
	}
	if len(g.Entry.Succs) != 1 || g.Entry.Succs[0] != g.Exit {
		t.Fatalf("entry should flow straight to exit\n%s", g)
	}
	if !reachable(g)[g.Exit] {
		t.Fatal("exit unreachable")
	}
}

func TestIfElse(t *testing.T) {
	g := buildFunc(t, `if x := 1; x > 0 {
	_ = x
} else {
	_ = -x
}
_ = 2`)
	k := kinds(g)
	if k["if.then"] != 1 || k["if.else"] != 1 || k["if.done"] != 1 {
		t.Fatalf("if blocks missing: %v\n%s", k, g)
	}
	// Entry evaluates init+cond and branches to both arms.
	if len(g.Entry.Succs) != 2 {
		t.Fatalf("if head has %d succs, want 2\n%s", len(g.Entry.Succs), g)
	}
	if !hasEdge(g, "if.then", "if.done") || !hasEdge(g, "if.else", "if.done") {
		t.Fatalf("arms do not converge\n%s", g)
	}
}

func TestIfWithoutElse(t *testing.T) {
	g := buildFunc(t, "if c {\n_ = 1\n}")
	// Head must edge both into then and around it.
	if len(g.Entry.Succs) != 2 {
		t.Fatalf("if head has %d succs, want 2 (then + skip)\n%s", len(g.Entry.Succs), g)
	}
}

func TestIfReturnInThen(t *testing.T) {
	g := buildFunc(t, "if c {\nreturn\n}\n_ = 1")
	// The then branch ends at Exit; the done block still runs _ = 1.
	if !hasEdge(g, "if.then", "exit") {
		t.Fatalf("return in then should edge to exit\n%s", g)
	}
	done := findKind(g, "if.done")
	if len(done.Nodes) != 1 {
		t.Fatalf("if.done should carry the trailing statement\n%s", g)
	}
}

func findKind(g *Graph, kind string) *Block {
	for _, b := range g.Blocks {
		if b.Kind == kind {
			return b
		}
	}
	return nil
}

func TestForLoop(t *testing.T) {
	g := buildFunc(t, `for i := 0; i < 10; i++ {
	_ = i
}
_ = 1`)
	k := kinds(g)
	if k["for.head"] != 1 || k["for.body"] != 1 || k["for.post"] != 1 || k["for.done"] != 1 {
		t.Fatalf("for blocks missing: %v\n%s", k, g)
	}
	if !hasEdge(g, "for.head", "for.body") || !hasEdge(g, "for.head", "for.done") {
		t.Fatalf("head must branch body/done\n%s", g)
	}
	if !hasEdge(g, "for.body", "for.post") || !hasEdge(g, "for.post", "for.head") {
		t.Fatalf("back edge through post missing\n%s", g)
	}
}

func TestForeverLoopUnreachableAfter(t *testing.T) {
	g := buildFunc(t, "for {\n_ = 1\n}\n_ = 2")
	// No condition: head has exactly one successor (the body); for.done
	// and everything after are unreachable.
	head := findKind(g, "for.head")
	if len(head.Succs) != 1 {
		t.Fatalf("conditionless for head has %d succs, want 1\n%s", len(head.Succs), g)
	}
	if reachable(g)[findKind(g, "for.done")] {
		t.Fatalf("for.done should be unreachable after for{}\n%s", g)
	}
}

func TestBreakContinue(t *testing.T) {
	g := buildFunc(t, `for i := 0; i < 10; i++ {
	if i == 3 {
		continue
	}
	if i == 7 {
		break
	}
}`)
	// continue jumps to for.post, break to for.done.
	if !hasEdge(g, "if.then", "for.post") {
		t.Fatalf("continue should edge to for.post\n%s", g)
	}
	if !hasEdge(g, "if.then", "for.done") {
		t.Fatalf("break should edge to for.done\n%s", g)
	}
}

func TestLabeledBreakContinue(t *testing.T) {
	g := buildFunc(t, `outer:
for i := 0; i < 3; i++ {
	for j := 0; j < 3; j++ {
		if j == 1 {
			continue outer
		}
		break outer
	}
}`)
	// The labeled continue must reach the OUTER post, the labeled break
	// the OUTER done — i.e. from inside the inner body.
	inner := findKind(g, "if.then")
	foundPost, foundDone := false, false
	for _, s := range inner.Succs {
		if s.Kind == "for.post" {
			foundPost = true
		}
	}
	for _, b := range g.Blocks {
		if b.Kind != "for.body" && b.Kind != "unreachable" && b.Kind != "if.done" {
			continue
		}
		for _, s := range b.Succs {
			if s.Kind == "for.done" {
				foundDone = true
			}
		}
	}
	if !foundPost || !foundDone {
		t.Fatalf("labeled break/continue edges missing (post=%v done=%v)\n%s", foundPost, foundDone, g)
	}
}

func TestRange(t *testing.T) {
	g := buildFunc(t, `for _, x := range xs {
	_ = x
}
_ = 1`)
	k := kinds(g)
	if k["range.head"] != 1 || k["range.body"] != 1 || k["range.done"] != 1 {
		t.Fatalf("range blocks missing: %v\n%s", k, g)
	}
	if !hasEdge(g, "range.head", "range.body") || !hasEdge(g, "range.head", "range.done") {
		t.Fatalf("range head must branch body/done\n%s", g)
	}
	if !hasEdge(g, "range.body", "range.head") {
		t.Fatalf("range back edge missing\n%s", g)
	}
	// The ranged operand is evaluated before the head.
	if len(g.Entry.Nodes) != 1 {
		t.Fatalf("range operand should be an entry node\n%s", g)
	}
}

func TestSwitch(t *testing.T) {
	g := buildFunc(t, `switch x {
case 1:
	_ = 1
case 2:
	_ = 2
	fallthrough
case 3:
	_ = 3
default:
	_ = 4
}
_ = 5`)
	k := kinds(g)
	if k["switch.case"] != 3 || k["switch.default"] != 1 {
		t.Fatalf("switch clause blocks missing: %v\n%s", k, g)
	}
	// Head branches to all four clauses; with a default there is no direct
	// head→done edge.
	if len(g.Entry.Succs) != 4 {
		t.Fatalf("switch head has %d succs, want 4\n%s", len(g.Entry.Succs), g)
	}
	// fallthrough: case-2 block edges into case-3 block.
	caseBlocks := []*Block{}
	for _, b := range g.Blocks {
		if b.Kind == "switch.case" {
			caseBlocks = append(caseBlocks, b)
		}
	}
	fell := false
	for _, s := range caseBlocks[1].Succs {
		if s == caseBlocks[2] {
			fell = true
		}
	}
	if !fell {
		t.Fatalf("fallthrough edge case2→case3 missing\n%s", g)
	}
}

func TestSwitchNoDefault(t *testing.T) {
	g := buildFunc(t, "switch x {\ncase 1:\n_ = 1\n}\n_ = 2")
	// Without default the head must edge directly to done.
	done := findKind(g, "switch.done")
	viaHead := false
	for _, p := range done.Preds {
		if p == g.Entry {
			viaHead = true
		}
	}
	if !viaHead {
		t.Fatalf("defaultless switch needs head→done edge\n%s", g)
	}
}

func TestTypeSwitch(t *testing.T) {
	g := buildFunc(t, `switch v := x.(type) {
case int:
	_ = v
default:
	_ = v
}`)
	k := kinds(g)
	if k["typeswitch.case"] != 1 || k["typeswitch.default"] != 1 {
		t.Fatalf("type switch blocks missing: %v\n%s", k, g)
	}
}

func TestSelect(t *testing.T) {
	g := buildFunc(t, `select {
case <-ch:
	_ = 1
case ch2 <- 0:
	_ = 2
default:
	_ = 3
}
_ = 4`)
	k := kinds(g)
	if k["select.case"] != 2 || k["select.default"] != 1 {
		t.Fatalf("select blocks missing: %v\n%s", k, g)
	}
	// Control leaves the head only through a clause: 3 succs, no direct
	// edge to select.done.
	if len(g.Entry.Succs) != 3 {
		t.Fatalf("select head has %d succs, want 3\n%s", len(g.Entry.Succs), g)
	}
	for _, s := range g.Entry.Succs {
		if s.Kind == "select.done" {
			t.Fatalf("blocking select must not edge head→done\n%s", g)
		}
	}
}

func TestReturnAndDeadCode(t *testing.T) {
	g := buildFunc(t, "return\n_ = 1")
	if len(g.Entry.Succs) != 1 || g.Entry.Succs[0] != g.Exit {
		t.Fatalf("return must edge to exit\n%s", g)
	}
	// The dead statement lives in an unreachable block.
	r := reachable(g)
	for _, b := range g.Blocks {
		if b.Kind == "unreachable" && r[b] {
			t.Fatalf("unreachable block is reachable\n%s", g)
		}
	}
}

func TestPanicEdge(t *testing.T) {
	g := buildFunc(t, `if bad {
	panic("boom")
}
_ = 1`)
	then := findKind(g, "if.then")
	if len(then.Succs) != 1 || then.Succs[0] != g.Panic {
		t.Fatalf("panic must edge to the panic block only\n%s", g)
	}
	if reachable(g)[g.Exit] != true {
		t.Fatal("normal path must still reach exit")
	}
	// Panic completion stays out of Exit's preds from that branch.
	for _, p := range g.Exit.Preds {
		if p == then {
			t.Fatalf("panicking block must not reach exit\n%s", g)
		}
	}
}

func TestDeferRecorded(t *testing.T) {
	g := buildFunc(t, `defer f()
if c {
	defer g()
}
return`)
	if len(g.Defers) != 2 {
		t.Fatalf("got %d defers, want 2\n%s", len(g.Defers), g)
	}
	// First defer registers in entry, second inside the then block.
	if len(g.Entry.Nodes) < 1 {
		t.Fatalf("entry missing defer node\n%s", g)
	}
	if _, ok := g.Entry.Nodes[0].(*ast.DeferStmt); !ok {
		t.Fatalf("entry node 0 is %T, want DeferStmt\n%s", g.Entry.Nodes[0], g)
	}
	then := findKind(g, "if.then")
	if len(then.Nodes) != 1 {
		t.Fatalf("then block should hold the conditional defer\n%s", g)
	}
	if _, ok := then.Nodes[0].(*ast.DeferStmt); !ok {
		t.Fatalf("then node is %T, want DeferStmt\n%s", then.Nodes[0], g)
	}
}

func TestGoto(t *testing.T) {
	g := buildFunc(t, `i := 0
loop:
	i++
	if i < 10 {
		goto loop
	}
_ = i`)
	lbl := findKind(g, "label.loop")
	if lbl == nil {
		t.Fatalf("label block missing\n%s", g)
	}
	// goto creates a back edge from the then block to the label.
	if !hasEdge(g, "if.then", "label.loop") {
		t.Fatalf("goto edge missing\n%s", g)
	}
	if !reachable(g)[g.Exit] {
		t.Fatal("exit unreachable")
	}
}

func TestNilBody(t *testing.T) {
	g := New(nil)
	if len(g.Entry.Succs) != 1 || g.Entry.Succs[0] != g.Exit {
		t.Fatalf("nil body should be entry→exit\n%s", g)
	}
}

// TestDeterministicConstruction pins block creation order: two builds of
// the same body must produce identical String() renderings (the analyzers'
// diagnostics depend on stable iteration order).
func TestDeterministicConstruction(t *testing.T) {
	body := `for i := 0; i < 3; i++ {
	switch i {
	case 0:
		continue
	default:
		if i > 1 {
			return
		}
	}
}`
	a := buildFunc(t, body).String()
	b := buildFunc(t, body).String()
	if a != b {
		t.Fatalf("nondeterministic construction:\n%s\nvs\n%s", a, b)
	}
}
