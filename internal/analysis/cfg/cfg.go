// Package cfg builds intraprocedural control-flow graphs over go/ast
// function bodies, stdlib-only, for the dataflow analyzers in
// internal/analysis (scratchleak, lockbal). The shape follows
// golang.org/x/tools/go/cfg: a Graph of basic Blocks whose Nodes are the
// statements and control expressions executed in order, connected by Succs
// edges for every construct that branches — if/else, for (init/cond/post,
// break/continue, labels), range, switch (tag, fallthrough, default),
// type switch, select, goto, return, and panic.
//
// Three blocks are distinguished:
//
//   - Entry: where execution starts (the first statements of the body).
//   - Exit: the join of every normal completion — each return statement
//     and a fall-off-the-end both edge here.
//   - Panic: the join of every explicit panic(...) call. Keeping panicking
//     completion separate from Exit is what lets scratchleak demand a
//     sync.Pool Put on every NON-panicking path without also demanding one
//     on paths that die.
//
// Defer is modeled at registration: a DeferStmt appears as a node in the
// block that executes it, and is additionally recorded in Graph.Defers.
// The builder does not replay deferred calls before Exit — whether a defer
// runs depends on whether its registration was reached, which is exactly
// the per-path fact a dataflow client tracks. Clients that care (both
// scratchleak and lockbal do) treat the registration node itself as the
// point where the deferred call's effect is guaranteed for every later
// exit.
//
// The builder is purely syntactic (no go/types): the one semantic judgment
// it makes — that a call statement `panic(x)` terminates the block — keys
// on the identifier name, which Go code in this repository never shadows.
package cfg

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Block is one basic block: a maximal straight-line sequence of nodes with
// edges only at the end.
type Block struct {
	// Index is the block's position in Graph.Blocks (creation order;
	// Entry is 0).
	Index int
	// Kind labels what construct created the block ("entry", "exit",
	// "panic", "if.then", "for.head", "range.body", "switch.case", ...),
	// for tests and -debug dumps.
	Kind string
	// Nodes holds the statements and control expressions of the block in
	// execution order. Control expressions (an if condition, a range
	// operand, a switch tag) appear as bare ast.Expr nodes in the block
	// that evaluates them.
	Nodes []ast.Node
	// Succs and Preds are the control-flow edges, in creation order
	// (deterministic across runs).
	Succs []*Block
	Preds []*Block
}

// Graph is the CFG of one function body.
type Graph struct {
	Entry *Block
	Exit  *Block
	Panic *Block
	// Blocks lists every block in creation order, Entry first. Blocks
	// unreachable from Entry (code after return, unused labels) remain in
	// the list with no predecessors.
	Blocks []*Block
	// Defers lists the defer statements of the body in source order; each
	// also appears as a node of its registering block.
	Defers []*ast.DeferStmt
}

// New builds the CFG of a function body. body may be nil (a declared
// function without a body), in which case the graph is Entry→Exit.
func New(body *ast.BlockStmt) *Graph {
	g := &Graph{}
	b := &builder{g: g, labels: map[string]*labelInfo{}}
	g.Entry = b.newBlock("entry")
	g.Exit = b.newBlock("exit")
	g.Panic = b.newBlock("panic")
	b.cur = g.Entry
	if body != nil {
		b.stmtList(body.List)
	}
	b.jump(g.Exit) // fall off the end
	return g
}

// String renders the graph block-per-line for debugging and tests.
func (g *Graph) String() string {
	var sb strings.Builder
	for _, b := range g.Blocks {
		succ := make([]string, len(b.Succs))
		for i, s := range b.Succs {
			succ[i] = fmt.Sprint(s.Index)
		}
		fmt.Fprintf(&sb, "%d %s [%d nodes] -> %s\n",
			b.Index, b.Kind, len(b.Nodes), strings.Join(succ, ","))
	}
	return sb.String()
}

// labelInfo tracks one label: the block its statement starts (created on
// demand for forward gotos) and, once the labeled statement is a loop,
// switch or select, the break/continue targets it exposes.
type labelInfo struct {
	target       *Block // start of the labeled statement
	breakBlock   *Block
	contineBlock *Block
}

// builder carries the under-construction graph.
type builder struct {
	g   *Graph
	cur *Block // current block; nil only transiently

	// breaks / continues are target stacks for unlabeled break/continue.
	breaks    []*Block
	continues []*Block
	labels    map[string]*labelInfo

	// pendingLabel is set while building a LabeledStmt so the loop/switch
	// it labels can register its break/continue targets under the label.
	pendingLabel *labelInfo
}

func (b *builder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.g.Blocks), Kind: kind}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// jump ends the current block with an edge to target and leaves the
// builder in a fresh unreachable block (statements after a terminating
// jump are dead code but still get blocks).
func (b *builder) jump(target *Block) {
	b.edge(b.cur, target)
	b.cur = b.newBlock("unreachable")
}

func (b *builder) add(n ast.Node) {
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		b.ifStmt(s)

	case *ast.ForStmt:
		b.forStmt(s)

	case *ast.RangeStmt:
		b.rangeStmt(s)

	case *ast.SwitchStmt:
		b.switchStmt(s)

	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(s)

	case *ast.SelectStmt:
		b.selectStmt(s)

	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.g.Exit)

	case *ast.BranchStmt:
		b.branchStmt(s)

	case *ast.LabeledStmt:
		b.labeledStmt(s)

	case *ast.DeferStmt:
		b.add(s)
		b.g.Defers = append(b.g.Defers, s)

	case *ast.ExprStmt:
		b.add(s)
		if call, ok := s.X.(*ast.CallExpr); ok && isPanicCall(call) {
			b.jump(b.g.Panic)
		}

	case nil:
		// nothing

	default:
		// Assignments, declarations, sends, go statements, inc/dec,
		// empty statements: straight-line nodes.
		b.add(s)
	}
}

// isPanicCall reports whether call invokes the builtin panic.
func isPanicCall(call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

func (b *builder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.add(s.Init)
	}
	b.add(s.Cond)
	head := b.cur

	then := b.newBlock("if.then")
	b.edge(head, then)
	b.cur = then
	b.stmtList(s.Body.List)
	thenEnd := b.cur

	after := b.newBlock("if.done")
	if s.Else != nil {
		els := b.newBlock("if.else")
		b.edge(head, els)
		b.cur = els
		b.stmt(s.Else)
		b.edge(b.cur, after)
	} else {
		b.edge(head, after)
	}
	b.edge(thenEnd, after)
	b.cur = after
}

// pushLoop registers brk/cont as the targets of unlabeled break/continue
// (and of the pending label, when the loop is labeled) and returns the
// matching pop.
func (b *builder) pushLoop(brk, cont *Block) func() {
	b.breaks = append(b.breaks, brk)
	b.continues = append(b.continues, cont)
	if lbl := b.pendingLabel; lbl != nil {
		lbl.breakBlock, lbl.contineBlock = brk, cont
		b.pendingLabel = nil
	}
	return func() {
		b.breaks = b.breaks[:len(b.breaks)-1]
		if cont != nil {
			b.continues = b.continues[:len(b.continues)-1]
		}
	}
}

// pushSwitch registers brk for unlabeled break inside switch/select bodies
// (continue passes through to the enclosing loop).
func (b *builder) pushSwitch(brk *Block) func() {
	b.breaks = append(b.breaks, brk)
	if lbl := b.pendingLabel; lbl != nil {
		lbl.breakBlock = brk
		b.pendingLabel = nil
	}
	return func() { b.breaks = b.breaks[:len(b.breaks)-1] }
}

func (b *builder) forStmt(s *ast.ForStmt) {
	if s.Init != nil {
		b.add(s.Init)
	}
	head := b.newBlock("for.head")
	b.edge(b.cur, head)
	b.cur = head
	if s.Cond != nil {
		b.add(s.Cond)
	}

	body := b.newBlock("for.body")
	after := b.newBlock("for.done")
	b.edge(head, body)
	if s.Cond != nil {
		b.edge(head, after) // condition false
	}

	post := head
	if s.Post != nil {
		post = b.newBlock("for.post")
		b.edge(post, head)
	}
	pop := b.pushLoop(after, post)
	b.cur = body
	b.stmtList(s.Body.List)
	if s.Post != nil {
		b.edge(b.cur, post)
		post.Nodes = append(post.Nodes, s.Post)
	} else {
		b.edge(b.cur, head) // back edge
	}
	pop()
	b.cur = after
}

func (b *builder) rangeStmt(s *ast.RangeStmt) {
	b.add(s.X) // the ranged operand, evaluated once
	head := b.newBlock("range.head")
	b.edge(b.cur, head)
	// The per-iteration key/value assignment happens at the head.
	head.Nodes = append(head.Nodes, s)

	body := b.newBlock("range.body")
	after := b.newBlock("range.done")
	b.edge(head, body)
	b.edge(head, after) // range exhausted

	pop := b.pushLoop(after, head)
	b.cur = body
	b.stmtList(s.Body.List)
	b.edge(b.cur, head) // back edge
	pop()
	b.cur = after
}

func (b *builder) switchStmt(s *ast.SwitchStmt) {
	if s.Init != nil {
		b.add(s.Init)
	}
	if s.Tag != nil {
		b.add(s.Tag)
	}
	head := b.cur
	after := b.newBlock("switch.done")
	pop := b.pushSwitch(after)

	b.caseClauses(s.Body.List, head, after, "switch")
	pop()
	b.cur = after
}

func (b *builder) typeSwitchStmt(s *ast.TypeSwitchStmt) {
	if s.Init != nil {
		b.add(s.Init)
	}
	b.add(s.Assign)
	head := b.cur
	after := b.newBlock("typeswitch.done")
	pop := b.pushSwitch(after)

	b.caseClauses(s.Body.List, head, after, "typeswitch")
	pop()
	b.cur = after
}

// caseClauses wires the case bodies of a (type) switch: every clause is a
// successor of head, each body flows to after, and fallthrough chains a
// body into the next clause's body. Without a default clause head also
// edges directly to after (no case matched).
func (b *builder) caseClauses(clauses []ast.Stmt, head, after *Block, kind string) {
	bodies := make([]*Block, len(clauses))
	hasDefault := false
	for i, cl := range clauses {
		cc := cl.(*ast.CaseClause)
		bodies[i] = b.newBlock(kind + ".case")
		if cc.List == nil {
			hasDefault = true
			bodies[i].Kind = kind + ".default"
		}
		for _, e := range cc.List {
			bodies[i].Nodes = append(bodies[i].Nodes, e)
		}
		b.edge(head, bodies[i])
	}
	if !hasDefault {
		b.edge(head, after)
	}
	for i, cl := range clauses {
		cc := cl.(*ast.CaseClause)
		b.cur = bodies[i]
		last := len(cc.Body) - 1
		fellThrough := false
		for j, st := range cc.Body {
			if br, ok := st.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH && j == last {
				if i+1 < len(bodies) {
					b.edge(b.cur, bodies[i+1])
					fellThrough = true
				}
				continue
			}
			b.stmt(st)
		}
		if !fellThrough {
			b.edge(b.cur, after)
		}
	}
}

func (b *builder) selectStmt(s *ast.SelectStmt) {
	head := b.cur
	after := b.newBlock("select.done")
	pop := b.pushSwitch(after)

	hasDefault := false
	for _, cl := range s.Body.List {
		cc := cl.(*ast.CommClause)
		body := b.newBlock("select.case")
		if cc.Comm == nil {
			hasDefault = true
			body.Kind = "select.default"
		} else {
			body.Nodes = append(body.Nodes, cc.Comm)
		}
		b.edge(head, body)
		b.cur = body
		b.stmtList(cc.Body)
		b.edge(b.cur, after)
	}
	// A select with no cases blocks forever; one without default blocks
	// until a case fires — either way control leaves head only through a
	// clause, so no direct head→after edge exists. (An empty select gets
	// none at all: after is unreachable, matching select{} semantics.)
	_ = hasDefault
	pop()
	b.cur = after
}

func (b *builder) branchStmt(s *ast.BranchStmt) {
	b.add(s)
	switch s.Tok {
	case token.BREAK:
		if s.Label != nil {
			if li := b.labels[s.Label.Name]; li != nil && li.breakBlock != nil {
				b.jump(li.breakBlock)
				return
			}
		} else if n := len(b.breaks); n > 0 {
			b.jump(b.breaks[n-1])
			return
		}
	case token.CONTINUE:
		if s.Label != nil {
			if li := b.labels[s.Label.Name]; li != nil && li.contineBlock != nil {
				b.jump(li.contineBlock)
				return
			}
		} else if n := len(b.continues); n > 0 {
			b.jump(b.continues[n-1])
			return
		}
	case token.GOTO:
		if s.Label != nil {
			b.jump(b.labelTarget(s.Label.Name))
			return
		}
	case token.FALLTHROUGH:
		// Handled by caseClauses; one appearing elsewhere is invalid Go.
	}
	// Malformed branch (no target): sever the block conservatively.
	b.cur = b.newBlock("unreachable")
}

// labelTarget returns (creating on demand, for forward gotos) the block
// that starts the named labeled statement.
func (b *builder) labelTarget(name string) *Block {
	li := b.labels[name]
	if li == nil {
		li = &labelInfo{}
		b.labels[name] = li
	}
	if li.target == nil {
		li.target = b.newBlock("label." + name)
	}
	return li.target
}

func (b *builder) labeledStmt(s *ast.LabeledStmt) {
	target := b.labelTarget(s.Label.Name)
	b.edge(b.cur, target)
	b.cur = target
	b.pendingLabel = b.labels[s.Label.Name]
	b.stmt(s.Stmt)
	b.pendingLabel = nil
}
