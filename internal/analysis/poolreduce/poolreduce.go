// Package poolreduce flags order-dependent float reductions inside
// concurrent closures: `+=`-style accumulation into a variable captured
// from the enclosing scope, inside a function literal handed to pool.Run,
// pool.Chunks, or a go statement.
//
// The worker pool's determinism contract (internal/pool) requires callbacks
// to write only to their own index slot or chunk-local accumulator, with the
// caller reducing in index/chunk order afterwards — that is what makes
// models bit-identical at every worker count. A captured-scalar reduction
// accumulates in goroutine-scheduling order instead (and races unless
// locked), so even a mutex-guarded one silently breaks reproducibility.
// Indexed writes (acc[i] += v, out[chunk].sum += v) are the sanctioned
// pattern and stay exempt.
package poolreduce

import (
	"go/ast"
	"go/token"
	"go/types"

	"mmdr/internal/analysis/framework"
)

// Analyzer is the poolreduce check.
var Analyzer = &framework.Analyzer{
	Name: "poolreduce",
	Doc:  "flags += / -= on captured floats inside pool.Run/pool.Chunks/go closures (order-dependent reduction)",
	Run:  run,
}

// poolPath is the package whose Run/Chunks closures are checked.
const poolPath = "mmdr/internal/pool"

func run(pass *framework.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				if isPoolFanout(pass, x) {
					for _, a := range x.Args {
						if lit, ok := a.(*ast.FuncLit); ok {
							checkClosure(pass, lit, "pool closure")
						}
					}
				}
			case *ast.GoStmt:
				if lit, ok := x.Call.Fun.(*ast.FuncLit); ok {
					checkClosure(pass, lit, "go closure")
				}
			}
			return true
		})
	}
	return nil
}

func isPoolFanout(pass *framework.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.ObjectOf(sel.Sel).(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != poolPath {
		return false
	}
	return fn.Name() == "Run" || fn.Name() == "Chunks"
}

// checkClosure flags compound float assignments whose target is captured
// from outside lit and not addressed through an index (the slot pattern).
func checkClosure(pass *framework.Pass, lit *ast.FuncLit, what string) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch asg.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		default:
			return true
		}
		lhs := asg.Lhs[0]
		if !isFloat(pass.TypeOf(lhs)) {
			return true
		}
		root, indexed := rootIdent(lhs)
		if root == nil || indexed {
			return true // slot-addressed writes are the sanctioned pattern
		}
		obj := pass.ObjectOf(root)
		if obj == nil || obj.Pos() == token.NoPos {
			return true
		}
		if obj.Pos() >= lit.Pos() && obj.Pos() < lit.End() {
			return true // declared inside the closure — goroutine-local
		}
		pass.Reportf(asg.Pos(), "%s accumulates into captured %q in scheduling order; write to an index slot and reduce serially in chunk order", what, root.Name)
		return true
	})
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}

// rootIdent unwraps selectors and parens to the base identifier of an
// assignable expression, reporting whether any step goes through an index
// expression.
func rootIdent(e ast.Expr) (root *ast.Ident, indexed bool) {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x, indexed
		case *ast.SelectorExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			indexed = true
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil, indexed
		}
	}
}
