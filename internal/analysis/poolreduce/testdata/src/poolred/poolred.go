// Package poolred exercises poolreduce: captured-scalar float reductions
// inside pool.Run / pool.Chunks / go closures are flagged; slot writes and
// chunk-local accumulators are the sanctioned shapes.
package poolred

import (
	"sync"

	"mmdr/internal/pool"
)

// BadReduce accumulates into a captured scalar: scheduling-order rounding,
// not reproducible — even under a mutex.
func BadReduce(xs []float64) float64 {
	var total float64
	var mu sync.Mutex
	pool.Run(4, len(xs), func(i int) {
		mu.Lock()
		total += xs[i] // want `accumulates into captured "total"`
		mu.Unlock()
	})
	return total
}

// GoodChunks keeps a chunk-local accumulator and reduces serially in chunk
// order afterwards — the determinism contract's shape.
func GoodChunks(xs []float64, workers int) float64 {
	partial := make([]float64, pool.NumChunks(workers, len(xs)))
	pool.Chunks(workers, len(xs), func(c, lo, hi int) {
		var sum float64
		for i := lo; i < hi; i++ {
			sum += xs[i]
		}
		partial[c] = sum
	})
	var total float64
	for _, p := range partial {
		total += p
	}
	return total
}

// SlotWrites go through an index — each goroutine owns its slot.
func SlotWrites(xs []float64) []float64 {
	out := make([]float64, len(xs))
	pool.Run(4, len(xs), func(i int) {
		out[i] += xs[i]
	})
	return out
}

// GoClosure is the same defect via a bare go statement.
func GoClosure(xs []float64) float64 {
	var total float64
	done := make(chan struct{})
	go func() {
		for _, x := range xs {
			total -= x // want `accumulates into captured "total"`
		}
		close(done)
	}()
	<-done
	return total
}

// StructField reductions on captured structs are order-dependent too.
type acc struct{ sum float64 }

func StructField(xs []float64) float64 {
	var a acc
	pool.Run(2, len(xs), func(i int) {
		a.sum += xs[i] // want `accumulates into captured "a"`
	})
	return a.sum
}

// Suppressed documents why the reduction is tolerated.
func Suppressed(xs []float64) float64 {
	var total float64
	pool.Run(1, len(xs), func(i int) {
		//mmdr:ignore poolreduce workers pinned to 1, callbacks run inline in order
		total += xs[i]
	})
	return total
}
