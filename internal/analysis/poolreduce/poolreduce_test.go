package poolreduce_test

import (
	"testing"

	"mmdr/internal/analysis/analysistest"
	"mmdr/internal/analysis/poolreduce"
)

func TestPoolReduce(t *testing.T) {
	analysistest.Run(t, poolreduce.Analyzer, "poolred")
}
