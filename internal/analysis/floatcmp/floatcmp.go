// Package floatcmp forbids equality comparison of floating-point values
// in production code. The repo's correctness story is built on BIT-EXACT
// equality being proven in exactly one place — the equivalence-lockdown
// tests (internal/idist/equiv_test.go and the fuzz targets), which compare
// kernelized query paths against the frozen reference and the sequential
// oracle. A stray `==` on floats anywhere else is one of two bugs waiting
// to happen: either the author meant a tolerance (and the comparison will
// flicker with any reassociation), or they are quietly duplicating the
// lockdown's job where nothing pins the two sides to the same rounding.
//
// Flagged:
//
//   - x == y, x != y where either operand is a float (or complex) type
//   - switch statements whose tag is a float expression (each case is an
//     equality test)
//
// Sanctioned without a directive:
//
//   - comparisons where one side is a compile-time constant equal to
//     exactly zero: `if v == 0` gates a division or detects an unset
//     sentinel, and zero is exactly representable — the comparison means
//     what it says
//   - comparisons where both sides are compile-time constants (the
//     compiler folds them; nothing can drift at run time)
//
// Everything else carries a justified //mmdr:ignore floatcmp directive,
// which is the point: every bitwise float comparison outside the lockdown
// is visible, greppable, and argued for in the source. Test files never
// reach this analyzer (the loader and driver exclude them), so the
// lockdown tests themselves need no annotations.
package floatcmp

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"mmdr/internal/analysis/framework"
)

// Analyzer is the floatcmp check.
var Analyzer = &framework.Analyzer{
	Name: "floatcmp",
	Doc:  "flags ==/!= and switch on floating-point operands outside the equivalence lockdown",
	Run:  run,
}

func run(pass *framework.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.BinaryExpr:
				if x.Op != token.EQL && x.Op != token.NEQ {
					return true
				}
				if !isFloat(pass.TypeOf(x.X)) && !isFloat(pass.TypeOf(x.Y)) {
					return true
				}
				if bothConstant(pass, x) || zeroGuard(pass, x) {
					return true
				}
				pass.Reportf(x.OpPos, "%s on float operands is bit-exact; use an explicit tolerance, or justify with //mmdr:ignore floatcmp (bitwise equality is proven only in the equivalence lockdown)", x.Op)
			case *ast.SwitchStmt:
				if x.Tag != nil && isFloat(pass.TypeOf(x.Tag)) {
					pass.Reportf(x.Switch, "switch on a float tag performs bit-exact equality per case; restructure as explicit comparisons with tolerances")
				}
			}
			return true
		})
	}
	return nil
}

// isFloat reports whether t's underlying type is floating-point or
// complex (complex equality compares two floats).
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}

// bothConstant reports whether both operands fold at compile time.
func bothConstant(pass *framework.Pass, x *ast.BinaryExpr) bool {
	return constValue(pass, x.X) != nil && constValue(pass, x.Y) != nil
}

// zeroGuard reports whether one side is a constant exactly equal to zero
// — the sanctioned division-guard / unset-sentinel comparison.
func zeroGuard(pass *framework.Pass, x *ast.BinaryExpr) bool {
	return isExactZero(constValue(pass, x.X)) || isExactZero(constValue(pass, x.Y))
}

func constValue(pass *framework.Pass, e ast.Expr) constant.Value {
	if tv, ok := pass.TypesInfo.Types[e]; ok {
		return tv.Value
	}
	return nil
}

func isExactZero(v constant.Value) bool {
	if v == nil {
		return false
	}
	switch v.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(v) == 0
	case constant.Complex:
		return constant.Sign(constant.Real(v)) == 0 && constant.Sign(constant.Imag(v)) == 0
	}
	return false
}
