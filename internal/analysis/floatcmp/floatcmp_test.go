package floatcmp_test

import (
	"testing"

	"mmdr/internal/analysis/analysistest"
	"mmdr/internal/analysis/floatcmp"
)

func TestFloatCmp(t *testing.T) {
	analysistest.Run(t, floatcmp.Analyzer, "floats")
}
