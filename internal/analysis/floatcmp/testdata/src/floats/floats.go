// Package floats exercises floatcmp: float equality is flagged except for
// exact-zero guards and constant folding.
package floats

import "math"

// Near is the tolerance-based comparison the analyzer steers people to.
func Near(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}

// VarEquality compares two runtime floats bitwise.
func VarEquality(a, b float64) bool {
	return a == b // want `== on float operands is bit-exact`
}

// VarInequality is the same bug through !=.
func VarInequality(a, b float64) bool {
	return a != b // want `!= on float operands is bit-exact`
}

// Float32Equality: smaller floats drift just as well.
func Float32Equality(a, b float32) bool {
	return a == b // want `== on float operands is bit-exact`
}

// ComplexEquality compares two float pairs at once.
func ComplexEquality(a, b complex128) bool {
	return a == b // want `== on float operands is bit-exact`
}

// NonzeroConstant: comparing against 1.0 is as fragile as any other value.
func NonzeroConstant(x float64) bool {
	return x == 1.0 // want `== on float operands is bit-exact`
}

// IntegerCheck is the classic is-it-integral test; exact in spirit but
// still a bitwise comparison — suppressed with a justification.
func IntegerCheck(x float64) bool {
	//mmdr:ignore floatcmp integral-valued check is exact for values within 2^53
	return x == math.Trunc(x)
}

// ZeroGuard gates a division on an exact-zero check — sanctioned.
func ZeroGuard(x float64) float64 {
	if x == 0 {
		return 0
	}
	return 1 / x
}

// ZeroGuardFlipped puts the constant on the left — still sanctioned.
func ZeroGuardFlipped(x float64) bool {
	return 0.0 != x
}

// NamedZero: a named constant that folds to exactly zero is sanctioned too.
const zero = 0.0

func NamedZero(x float64) bool {
	return x == zero
}

// ConstFold compares two compile-time constants — the compiler decides,
// nothing drifts at run time.
func ConstFold() bool {
	return 0.1+0.2 == 0.3
}

// IntComparison is not a float comparison at all.
func IntComparison(a, b int) bool {
	return a == b
}

// OrderingIsFine: <, <=, >, >= tolerate rounding by their nature.
func OrderingIsFine(a, b float64) bool {
	return a < b || a >= b*2
}

// SwitchOnFloat performs a bitwise equality per case.
func SwitchOnFloat(x float64) int {
	switch x { // want `switch on a float tag`
	case 1.0:
		return 1
	case 2.0:
		return 2
	}
	return 0
}

// SwitchOnInt is fine.
func SwitchOnInt(x int) int {
	switch x {
	case 1:
		return 1
	}
	return 0
}

// SwitchTrueWithFloatCases: a tagless switch whose cases are comparisons
// is flagged (or not) per case expression, not at the switch.
func SwitchTrueWithFloatCases(x float64) int {
	switch {
	case x == 0: // zero guard, sanctioned
		return 0
	case x == 3.5: // want `== on float operands is bit-exact`
		return 1
	}
	return 2
}
