// Package experiments regenerates every table and figure of the paper's
// §6 evaluation. Each Fig* function runs one experiment and returns a Table
// whose rows mirror the series the paper plots; the Run registry dispatches
// by name for the mmdrbench CLI and the root-level benchmarks.
//
// Dataset sizes are parameterised by Scale because the original evaluation
// machine (333 MHz Ultra-10) and this environment differ; the paper's
// qualitative shapes — method orderings, crossovers, growth trends — are
// the reproduction target (see EXPERIMENTS.md).
package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"mmdr/internal/core"
	"mmdr/internal/datagen"
	"mmdr/internal/dataset"
	"mmdr/internal/hybridtree"
	"mmdr/internal/idist"
	"mmdr/internal/index"
	"mmdr/internal/iostat"
	"mmdr/internal/metrics"
	"mmdr/internal/obs"
	"mmdr/internal/query"
	"mmdr/internal/reduction"
)

// Scale selects experiment sizes.
type Scale string

// Supported scales. Small keeps unit tests and benchmarks fast; Medium is
// the CLI default; Paper approaches the paper's dataset sizes (slow on a
// single core).
const (
	Small  Scale = "small"
	Medium Scale = "medium"
	Paper  Scale = "paper"
)

// Config parameterises an experiment run.
type Config struct {
	Scale      Scale
	Seed       int64
	K          int // KNN size; paper uses 10
	NumQueries int // paper uses 100

	// Parallelism bounds the worker goroutines of every reduction the
	// experiment runs (mmdrbench -parallel). <= 1 is serial; results are
	// identical at every setting, only wall clock changes.
	Parallelism int

	// Tracer, when non-nil, receives phase spans from every reduction and
	// index build the experiment performs (mmdrbench -trace).
	Tracer obs.Tracer
	// Counter, when non-nil, additionally accumulates every logical cost the
	// experiment incurs — on top of the per-scheme counters the figures
	// report (mmdrbench -metrics-json / expvar).
	Counter iostat.Sink
	// Metrics, when non-nil, receives per-operation latency histograms from
	// every extended-iDistance index the experiment queries (mmdrbench
	// -metrics-json / the /metrics route).
	Metrics *metrics.Registry
}

func (c Config) withDefaults() Config {
	if c.Scale == "" {
		c.Scale = Medium
	}
	if c.K <= 0 {
		c.K = 10
	}
	if c.NumQueries <= 0 {
		switch c.Scale {
		case Small:
			c.NumQueries = 15
		case Medium:
			c.NumQueries = 50
		default:
			c.NumQueries = 100
		}
	}
	return c
}

// sizes returns (N, dim) of the main synthetic dataset per scale.
func (c Config) sizes() (n, dim int) {
	switch c.Scale {
	case Small:
		return 2000, 32
	case Medium:
		return 12000, 64
	default:
		return 100000, 64
	}
}

// histSizes returns (N, dim) of the simulated color-histogram dataset.
func (c Config) histSizes() (n, dim int) {
	switch c.Scale {
	case Small:
		return 2000, 32
	case Medium:
		return 12000, 64
	default:
		return 70000, 64
	}
}

// Table is one experiment's output: header plus formatted rows.
type Table struct {
	Name   string
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row of formatted cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	fmt.Fprintf(w, "## %s — %s\n", t.Name, t.Title)
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.Join(parts, "  "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	fmt.Fprintln(w, strings.Join(sep, "  "))
	for _, row := range t.Rows {
		line(row)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

func f2(v float64) string { return fmt.Sprintf("%.3f", v) }
func i64(v int64) string  { return fmt.Sprintf("%d", v) }

// Runner is an experiment entry point.
type Runner func(Config) (*Table, error)

// registry maps experiment names to runners.
var registry = map[string]Runner{
	"fig7a":  Fig7a,
	"fig7b":  Fig7b,
	"fig8a":  Fig8a,
	"fig8b":  Fig8b,
	"fig9a":  Fig9a,
	"fig9b":  Fig9b,
	"fig10a": Fig10a,
	"fig10b": Fig10b,
	"fig11a": Fig11a,
	"fig11b": Fig11b,

	"ablation-lookup":     AblationLookup,
	"ablation-normalized": AblationNormalized,
	"ablation-multilevel": AblationMultiLevel,
}

// Names lists registered experiments in stable order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for k := range registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Run dispatches an experiment by name.
func Run(name string, cfg Config) (*Table, error) {
	r, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %s)", name, strings.Join(Names(), ", "))
	}
	return r(cfg)
}

// ---- shared helpers -------------------------------------------------------

// synthetic builds the normalized Appendix-A workload. Cluster scales
// decay geometrically (factor 0.75) so the collection mixes large sparse
// clusters with small dense ones — the paper's "different size,
// orientation and ellipticity".
func synthetic(n, dim, clusters, sdim int, ratio float64, seed int64) (*dataset.Dataset, error) {
	cfg := datagen.CorrelatedConfig{N: n, Dim: dim, NumClusters: clusters, SDim: sdim,
		VarRatio: ratio, ScaleDecay: 0.75, Seed: seed}
	ds, _, err := cfg.Generate()
	if err != nil {
		return nil, err
	}
	return datagen.Normalize(ds), nil
}

// reducers returns the three methods at a given forced dimensionality
// (0 = each method's native dimensionality selection), wired to the
// config's tracer and counter.
func (c Config) reducers(forced int, dim int) []reduction.Reducer {
	gdrDim := forced
	if gdrDim <= 0 {
		gdrDim = 20
	}
	if gdrDim > dim {
		gdrDim = dim
	}
	return []reduction.Reducer{
		core.New(core.Params{Seed: c.Seed, ForcedDim: forced, Tracer: c.Tracer, Counter: c.Counter, Parallelism: c.Parallelism}),
		&reduction.LDR{Seed: c.Seed, ForcedDim: forced, Tracer: c.Tracer, Parallelism: c.Parallelism},
		&reduction.GDR{TargetDim: gdrDim, Tracer: c.Tracer},
	}
}

// precisionRow evaluates mean precision for each reducer on ds.
func precisionRow(ds *dataset.Dataset, reds []reduction.Reducer, queries *dataset.Dataset, k int) ([]float64, error) {
	out := make([]float64, len(reds))
	for i, r := range reds {
		res, err := r.Reduce(ds)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", r.Name(), err)
		}
		out[i] = query.ReductionPrecision(ds, res, queries, k)
	}
	return out, nil
}

// indexSchemes builds the three indexing schemes of Figures 9 and 10 over
// their respective reductions, sharing per-scheme counters.
type scheme struct {
	name    string
	idx     index.KNNIndex
	counter *iostat.Counter
}

func buildSchemes(c Config, ds *dataset.Dataset, forcedDim int) ([]scheme, error) {
	mmdrRed, err := core.New(core.Params{Seed: c.Seed, ForcedDim: forcedDim, Tracer: c.Tracer, Counter: c.Counter, Parallelism: c.Parallelism}).Reduce(ds)
	if err != nil {
		return nil, err
	}
	ldrRed, err := (&reduction.LDR{Seed: c.Seed, ForcedDim: forcedDim, Tracer: c.Tracer, Parallelism: c.Parallelism}).Reduce(ds)
	if err != nil {
		return nil, err
	}
	// Per-scheme counters feed the figures; the config's counter, when set,
	// sees the union of all schemes' work.
	var cm, cl, cg, cs iostat.Counter
	iMMDR, err := idist.Build(ds, mmdrRed, idist.Options{Counter: iostat.Tee(&cm, c.Counter), Tracer: c.Tracer, Metrics: c.Metrics})
	if err != nil {
		return nil, err
	}
	iLDR, err := idist.Build(ds, ldrRed, idist.Options{Counter: iostat.Tee(&cl, c.Counter), Tracer: c.Tracer, Metrics: c.Metrics})
	if err != nil {
		return nil, err
	}
	gLDR, err := hybridtree.BuildGlobal(ds, ldrRed, hybridtree.Options{Counter: iostat.Tee(&cg, c.Counter)})
	if err != nil {
		return nil, err
	}
	seq := index.NewSeqScan(ds, ldrRed, iostat.Tee(&cs, c.Counter))
	// Construction cost is not part of the per-query metrics.
	cm.Reset()
	cl.Reset()
	cg.Reset()
	cs.Reset()
	return []scheme{
		{"iMMDR", iMMDR, &cm},
		{"iLDR", iLDR, &cl},
		{"gLDR", gLDR, &cg},
		{"seq-scan", seq, &cs},
	}, nil
}

// runQueries executes the workload on a scheme and returns (avg page IO,
// avg distance ops, avg microseconds) per query.
func runQueries(s scheme, queries *dataset.Dataset, k int) (avgIO, avgDist float64, avgMicros float64) {
	s.counter.Reset()
	start := time.Now()
	for i := 0; i < queries.N; i++ {
		s.idx.KNN(queries.Point(i), k)
	}
	elapsed := time.Since(start)
	n := float64(queries.N)
	return float64(s.counter.IO()) / n, float64(s.counter.DistanceOps) / n,
		float64(elapsed.Microseconds()) / n
}

// WriteCSV renders the table as CSV (header row + data rows) for plotting.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
