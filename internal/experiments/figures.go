package experiments

import (
	"time"

	"mmdr/internal/core"
	"mmdr/internal/datagen"
	"mmdr/internal/dataset"
	"mmdr/internal/iostat"
)

// Fig7a — query precision vs. ellipticity (paper Figure 7a): the synthetic
// dataset's variance ratio sweeps the cluster ellipticity; MMDR should
// dominate LDR and GDR, and LDR should decay faster as ellipticity falls.
func Fig7a(cfg Config) (*Table, error) {
	c := cfg.withDefaults()
	n, dim := c.sizes()
	t := &Table{
		Name:   "fig7a",
		Title:  "query precision vs ellipticity (10NN)",
		Header: []string{"ellipticity", "MMDR", "LDR", "GDR"},
	}
	for _, ratio := range []float64{2, 4, 8, 16, 32, 64} {
		ds, err := synthetic(n, dim, 10, 4, ratio, c.Seed)
		if err != nil {
			return nil, err
		}
		queries := datagen.SampleQueries(ds, c.NumQueries, 0, c.Seed+1)
		precs, err := precisionRow(ds, c.reducers(0, dim), queries, c.K)
		if err != nil {
			return nil, err
		}
		t.AddRow(f2(ratio-1), f2(precs[0]), f2(precs[1]), f2(precs[2]))
	}
	return t, nil
}

// Fig7b — query precision vs. number of correlated clusters (Figure 7b):
// all methods match at one cluster; MMDR stays flat as clusters multiply
// while LDR and GDR fall.
func Fig7b(cfg Config) (*Table, error) {
	c := cfg.withDefaults()
	n, dim := c.sizes()
	t := &Table{
		Name:   "fig7b",
		Title:  "query precision vs number of correlated clusters (10NN)",
		Header: []string{"clusters", "MMDR", "LDR", "GDR"},
	}
	for _, clusters := range []int{1, 2, 4, 6, 8, 10} {
		ds, err := synthetic(n, dim, clusters, 4, 32, c.Seed+int64(clusters))
		if err != nil {
			return nil, err
		}
		queries := datagen.SampleQueries(ds, c.NumQueries, 0, c.Seed+2)
		precs, err := precisionRow(ds, c.reducers(0, dim), queries, c.K)
		if err != nil {
			return nil, err
		}
		t.AddRow(i64(int64(clusters)), f2(precs[0]), f2(precs[1]), f2(precs[2]))
	}
	return t, nil
}

// dimSweep returns the retained-dimensionality sweep for Figures 8-10,
// clamped to the dataset dimensionality.
func dimSweep(dim int) []int {
	base := []int{5, 10, 15, 20, 25, 30}
	out := base[:0]
	for _, d := range base {
		if d <= dim {
			out = append(out, d)
		}
	}
	if len(out) == 0 {
		out = append(out, dim)
	}
	return out
}

// Fig8a — precision vs. retained dimensionality on the synthetic dataset
// (Figure 8a).
func Fig8a(cfg Config) (*Table, error) {
	c := cfg.withDefaults()
	n, dim := c.sizes()
	ds, err := synthetic(n, dim, 10, 10, 32, c.Seed)
	if err != nil {
		return nil, err
	}
	return precisionVsDim(c, "fig8a", "precision vs retained dims (synthetic)", ds)
}

// Fig8b — precision vs. retained dimensionality on the simulated color
// histograms (Figure 8b): all methods degrade relative to the synthetic
// data; MMDR stays on top.
func Fig8b(cfg Config) (*Table, error) {
	c := cfg.withDefaults()
	n, dim := c.histSizes()
	ds := datagen.ColorHistogram(n, dim, 12, 0.15, c.Seed)
	datagen.Normalize(ds)
	return precisionVsDim(c, "fig8b", "precision vs retained dims (color histogram)", ds)
}

func precisionVsDim(c Config, name, title string, ds *dataset.Dataset) (*Table, error) {
	t := &Table{
		Name:   name,
		Title:  title,
		Header: []string{"dims", "MMDR", "LDR", "GDR"},
	}
	queries := datagen.SampleQueries(ds, c.NumQueries, 0, c.Seed+3)
	for _, dr := range dimSweep(ds.Dim) {
		precs, err := precisionRow(ds, c.reducers(dr, ds.Dim), queries, c.K)
		if err != nil {
			return nil, err
		}
		t.AddRow(i64(int64(dr)), f2(precs[0]), f2(precs[1]), f2(precs[2]))
	}
	return t, nil
}

// Fig9a — average page I/O per 10NN query vs. retained dimensionality on
// the synthetic dataset (Figure 9a): iMMDR < iLDR < gLDR, with gLDR
// crossing the sequential scan around d_r = 20.
func Fig9a(cfg Config) (*Table, error) {
	c := cfg.withDefaults()
	n, dim := c.sizes()
	ds, err := synthetic(n, dim, 8, 12, 32, c.Seed)
	if err != nil {
		return nil, err
	}
	return costVsDim(c, "fig9a", "page IO per query vs dims (synthetic)", ds, metricIO)
}

// Fig9b — page I/O on the simulated color histograms (Figure 9b).
func Fig9b(cfg Config) (*Table, error) {
	c := cfg.withDefaults()
	n, dim := c.histSizes()
	ds := datagen.ColorHistogram(n, dim, 12, 0.15, c.Seed)
	datagen.Normalize(ds)
	return costVsDim(c, "fig9b", "page IO per query vs dims (color histogram)", ds, metricIO)
}

// Fig10a — CPU cost per 10NN query vs. retained dimensionality on the
// synthetic dataset (Figure 10a), reported as both wall microseconds and
// distance computations. gLDR's multi-dimensional node processing makes it
// an order of magnitude slower by d_r = 30.
func Fig10a(cfg Config) (*Table, error) {
	c := cfg.withDefaults()
	n, dim := c.sizes()
	ds, err := synthetic(n, dim, 8, 12, 32, c.Seed)
	if err != nil {
		return nil, err
	}
	return costVsDim(c, "fig10a", "CPU microseconds per query vs dims (synthetic)", ds, metricCPU)
}

// Fig10b — CPU cost on the simulated color histograms (Figure 10b).
func Fig10b(cfg Config) (*Table, error) {
	c := cfg.withDefaults()
	n, dim := c.histSizes()
	ds := datagen.ColorHistogram(n, dim, 12, 0.15, c.Seed)
	datagen.Normalize(ds)
	return costVsDim(c, "fig10b", "CPU microseconds per query vs dims (color histogram)", ds, metricCPU)
}

type metric int

const (
	metricIO metric = iota
	metricCPU
)

func costVsDim(c Config, name, title string, ds *dataset.Dataset, m metric) (*Table, error) {
	header := []string{"dims", "iMMDR", "iLDR", "gLDR", "seq-scan"}
	t := &Table{Name: name, Title: title, Header: header}
	queries := datagen.SampleQueries(ds, c.NumQueries, 0, c.Seed+4)
	for _, dr := range dimSweep(ds.Dim) {
		schemes, err := buildSchemes(c, ds, dr)
		if err != nil {
			return nil, err
		}
		row := []string{i64(int64(dr))}
		for _, s := range schemes {
			io, _, micros := runQueries(s, queries, c.K)
			switch m {
			case metricIO:
				row = append(row, f2(io))
			default:
				row = append(row, f2(micros))
			}
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Fig11a — MMDR total response time vs. data size (Figure 11a): plain vs
// scalable MMDR, fixed dimensionality. TRT grows linearly with N and the
// scalable variant's disk traffic stays a single sequential scan even past
// the buffer size.
func Fig11a(cfg Config) (*Table, error) {
	c := cfg.withDefaults()
	var sizes []int
	var dim int
	switch c.Scale {
	case Small:
		sizes, dim = []int{1000, 2000, 4000}, 16
	case Medium:
		sizes, dim = []int{5000, 10000, 20000, 40000}, 32
	default:
		sizes, dim = []int{50000, 100000, 250000, 500000, 1000000}, 100
	}
	t := &Table{
		Name:   "fig11a",
		Title:  "MMDR total response time vs data size",
		Header: []string{"N", "plain_ms", "scalable_ms", "scalable_scan_pages"},
	}
	for _, n := range sizes {
		ds, err := synthetic(n, dim, 5, 3, 20, c.Seed)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		if _, err := core.New(core.Params{Seed: c.Seed, Tracer: c.Tracer, Counter: c.Counter}).Reduce(ds); err != nil {
			return nil, err
		}
		plain := time.Since(start)

		var ctr iostat.Counter
		start = time.Now()
		if _, err := (&core.Scalable{Params: core.Params{Seed: c.Seed, Tracer: c.Tracer, Counter: iostat.Tee(&ctr, c.Counter)}}).Reduce(ds); err != nil {
			return nil, err
		}
		scal := time.Since(start)
		t.AddRow(i64(int64(n)), i64(plain.Milliseconds()), i64(scal.Milliseconds()), i64(ctr.PageReads))
	}
	return t, nil
}

// Fig11b — MMDR total response time vs. dimensionality (Figure 11b): TRT
// grows roughly quadratically with d.
func Fig11b(cfg Config) (*Table, error) {
	c := cfg.withDefaults()
	var dims []int
	var n int
	switch c.Scale {
	case Small:
		dims, n = []int{8, 16, 32}, 2000
	case Medium:
		dims, n = []int{16, 32, 64, 96}, 10000
	default:
		dims, n = []int{50, 100, 150, 200}, 1000000
	}
	t := &Table{
		Name:   "fig11b",
		Title:  "MMDR total response time vs dimensionality",
		Header: []string{"dims", "scalable_ms"},
	}
	for _, dim := range dims {
		ds, err := synthetic(n, dim, 5, 3, 20, c.Seed)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		if _, err := (&core.Scalable{Params: core.Params{Seed: c.Seed, Tracer: c.Tracer, Counter: c.Counter}}).Reduce(ds); err != nil {
			return nil, err
		}
		t.AddRow(i64(int64(dim)), i64(time.Since(start).Milliseconds()))
	}
	return t, nil
}
