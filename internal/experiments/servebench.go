package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mmdr"
	"mmdr/internal/serve"
)

// ServeReport is the machine-readable output of the serving benchmark
// (BENCH_serve.json): end-to-end latency and throughput of the sharded,
// coalescing query server over HTTP, across a shard-count x client-concurrency
// sweep, plus the correctness gate that makes the numbers trustworthy —
// every served answer checked bitwise against direct BatchKNN on an
// identical model.
type ServeReport struct {
	Env   EnvInfo `json:"env"`
	Scale string  `json:"scale"`
	N     int     `json:"n"`
	Dim   int     `json:"dim"`
	K     int     `json:"k"`

	// Server shape under test (queue depth, coalescing tile, linger).
	QueueDepth int   `json:"queue_depth"`
	MaxBatch   int   `json:"max_batch"`
	FlushUS    int64 `json:"flush_delay_us"`

	// Correctness gate: CorrectnessQueries answers fetched over HTTP, each
	// compared bitwise (IDs and Float64bits of distances) against direct
	// BatchKNN and BatchRange on an identical model. The sweep below is
	// meaningless unless this is true.
	CorrectnessOK      bool `json:"correctness_ok"`
	CorrectnessQueries int  `json:"correctness_queries"`

	// Sweep holds one row per (shards, concurrency) level.
	Sweep []ServePoint `json:"sweep"`
}

// ServePoint is one load level of the sweep.
type ServePoint struct {
	Shards      int     `json:"shards"`
	Concurrency int     `json:"concurrency"`
	Requests    int     `json:"requests"`
	Rejected    int     `json:"rejected"`
	QPS         float64 `json:"qps"`
	MeanUS      float64 `json:"mean_us"`
	P50US       float64 `json:"p50_us"`
	P99US       float64 `json:"p99_us"`
}

// LoadResult aggregates one load run against a serving endpoint.
type LoadResult struct {
	Requests int     `json:"requests"`
	Rejected int     `json:"rejected"`
	QPS      float64 `json:"qps"`
	MeanUS   float64 `json:"mean_us"`
	P50US    float64 `json:"p50_us"`
	P99US    float64 `json:"p99_us"`
}

// HTTPLoad drives total /knn requests at the given client concurrency
// against base (e.g. "http://127.0.0.1:8080") and aggregates the
// client-observed latency distribution. 429 responses count as rejected
// (the admission control working), not as latency samples. Queries are
// issued round-robin from the provided workload.
func HTTPLoad(client *http.Client, base string, queries [][]float64, k, concurrency, total int) (LoadResult, error) {
	if concurrency < 1 {
		concurrency = 1
	}
	bodies := make([][]byte, len(queries))
	for i, q := range queries {
		b, err := json.Marshal(serve.KNNRequest{Q: q, K: k})
		if err != nil {
			return LoadResult{}, err
		}
		bodies[i] = b
	}
	var (
		next      atomic.Int64
		rejected  atomic.Int64
		wg        sync.WaitGroup
		mu        sync.Mutex
		firstErr  error
		latencies = make([][]float64, concurrency)
	)
	start := time.Now()
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lat := make([]float64, 0, total/concurrency+1)
			for {
				i := int(next.Add(1)) - 1
				if i >= total {
					break
				}
				t0 := time.Now()
				resp, err := client.Post(base+"/knn", "application/json",
					bytes.NewReader(bodies[i%len(bodies)]))
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				io.Copy(io.Discard, resp.Body) //nolint:errcheck — drain for keep-alive
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					lat = append(lat, float64(time.Since(t0).Nanoseconds())/1e3)
				case http.StatusTooManyRequests:
					rejected.Add(1)
				default:
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("load: /knn status %d", resp.StatusCode)
					}
					mu.Unlock()
					return
				}
			}
			latencies[w] = lat
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return LoadResult{}, firstErr
	}
	var all []float64
	for _, l := range latencies {
		all = append(all, l...)
	}
	res := LoadResult{
		Requests: total,
		Rejected: int(rejected.Load()),
	}
	if len(all) > 0 {
		sort.Float64s(all)
		var sum float64
		for _, v := range all {
			sum += v
		}
		res.MeanUS = sum / float64(len(all))
		res.P50US = percentile(all, 50)
		res.P99US = percentile(all, 99)
		res.QPS = float64(len(all)) / elapsed.Seconds()
	}
	return res, nil
}

// percentile reads the p-th percentile from a sorted sample.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p / 100 * float64(len(sorted)-1))
	return sorted[idx]
}

// serveBenchQueries samples a query workload from the dataset the model
// was reduced from (every query is a perturbed database point, the
// standard workload of the other benchmarks).
func serveBenchQueries(ds interface{ Point(int) []float64 }, n, count int) [][]float64 {
	queries := make([][]float64, count)
	for i := range queries {
		queries[i] = append([]float64(nil), ds.Point((i*37)%n)...)
	}
	return queries
}

// newLoadClient builds an HTTP client that can keep one connection per
// concurrent worker alive (the default Transport caps idle connections per
// host at 2, which would turn a concurrency sweep into a connection churn
// benchmark).
func newLoadClient(maxConns int) *http.Client {
	return &http.Client{Transport: &http.Transport{
		MaxIdleConns:        maxConns,
		MaxIdleConnsPerHost: maxConns,
	}}
}

// ServeBench builds a model at the configured scale, serves it through the
// sharded coalescing server over real HTTP on a loopback socket, verifies
// served answers bitwise against the direct engine, then sweeps shard
// count x client concurrency recording client-observed p50/p99 latency and
// QPS.
func ServeBench(c Config) (*ServeReport, error) {
	c = c.withDefaults()
	n, dim := c.sizes()
	ds, err := synthetic(n, dim, 5, 3, 25, c.Seed)
	if err != nil {
		return nil, err
	}
	model, err := mmdr.ReduceDataset(ds, mmdr.WithSeed(c.Seed))
	if err != nil {
		return nil, err
	}
	queries := serveBenchQueries(ds, ds.N, c.NumQueries)

	rep := &ServeReport{
		Env:        CollectEnv(),
		Scale:      string(c.Scale),
		N:          n,
		Dim:        dim,
		K:          c.K,
		QueueDepth: serve.DefaultQueueDepth,
		MaxBatch:   serve.DefaultMaxBatch,
		FlushUS:    serve.DefaultFlushDelay.Microseconds(),
	}

	// Reference answers for the correctness gate, computed before any
	// server owns the model.
	refIdx, err := model.NewIndex(mmdr.WithParallelism(c.Parallelism))
	if err != nil {
		return nil, err
	}
	var flat []float64
	for _, q := range queries {
		flat = append(flat, q...)
	}
	wantKNN, err := refIdx.BatchKNN(flat, c.K)
	if err != nil {
		return nil, err
	}

	shardLevels := []int{1, 2, 4}
	concLevels := []int{1, 4, 16, 64}
	reqs := 4 * c.NumQueries
	if reqs < 400 {
		reqs = 400
	}

	for _, shards := range shardLevels {
		m, err := cloneModelBytes(model)
		if err != nil {
			return nil, err
		}
		srv, err := serve.New(m, serve.Options{Shards: shards, Workers: 1})
		if err != nil {
			return nil, err
		}
		addr, err := srv.Start("127.0.0.1:0")
		if err != nil {
			srv.Close() //nolint:errcheck — already failing
			return nil, err
		}
		base := "http://" + addr.String()
		client := newLoadClient(concLevels[len(concLevels)-1] + 4)

		// Correctness gate, once per shard count: the answer must not
		// depend on which replica served it.
		if err := serveCorrectness(client, base, queries, c.K, wantKNN); err != nil {
			srv.Close() //nolint:errcheck — already failing
			return nil, fmt.Errorf("shards=%d: %w", shards, err)
		}
		rep.CorrectnessQueries += len(queries)

		for _, conc := range concLevels {
			res, err := HTTPLoad(client, base, queries, c.K, conc, reqs)
			if err != nil {
				srv.Close() //nolint:errcheck — already failing
				return nil, err
			}
			rep.Sweep = append(rep.Sweep, ServePoint{
				Shards:      shards,
				Concurrency: conc,
				Requests:    res.Requests,
				Rejected:    res.Rejected,
				QPS:         res.QPS,
				MeanUS:      res.MeanUS,
				P50US:       res.P50US,
				P99US:       res.P99US,
			})
		}
		client.Transport.(*http.Transport).CloseIdleConnections()
		if err := srv.Close(); err != nil {
			return nil, err
		}
	}
	rep.CorrectnessOK = true
	return rep, nil
}

// cloneModelBytes deep-copies a model through its serialized form, the
// same isolation the server uses for its own replicas.
func cloneModelBytes(m *mmdr.Model) (*mmdr.Model, error) {
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		return nil, err
	}
	return mmdr.Load(&buf)
}

// serveCorrectness fetches every query's answer over HTTP and compares it
// bitwise against the direct BatchKNN reference.
func serveCorrectness(client *http.Client, base string, queries [][]float64, k int, want [][]mmdr.Neighbor) error {
	for i, q := range queries {
		body, err := json.Marshal(serve.KNNRequest{Q: q, K: k})
		if err != nil {
			return err
		}
		resp, err := client.Post(base+"/knn", "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		var out serve.NeighborsResponse
		err = json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		if err != nil {
			return fmt.Errorf("correctness query %d: %w", i, err)
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("correctness query %d: status %d", i, resp.StatusCode)
		}
		if len(out.Neighbors) != len(want[i]) {
			return fmt.Errorf("correctness query %d: %d answers, want %d", i, len(out.Neighbors), len(want[i]))
		}
		for j, nb := range out.Neighbors {
			if nb.ID != want[i][j].ID || math.Float64bits(nb.Dist) != math.Float64bits(want[i][j].Dist) {
				return fmt.Errorf("correctness query %d answer %d: served {%d %v}, direct {%d %v} — serving path must be bitwise identical",
					i, j, nb.ID, nb.Dist, want[i][j].ID, want[i][j].Dist)
			}
		}
	}
	return nil
}

// WriteJSON writes the report as indented JSON.
func (r *ServeReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Table renders the report in the experiment-table shape for the CLI.
func (r *ServeReport) Table() *Table {
	t := &Table{
		Name:   "serve",
		Title:  fmt.Sprintf("serving latency/throughput over HTTP (n=%d, d=%d, k=%d, correctness_ok=%v)", r.N, r.Dim, r.K, r.CorrectnessOK),
		Header: []string{"shards", "clients", "qps", "p50 µs", "p99 µs", "rejected"},
	}
	for _, p := range r.Sweep {
		t.AddRow(fmt.Sprintf("%d", p.Shards), fmt.Sprintf("%d", p.Concurrency),
			f2(p.QPS), f2(p.P50US), f2(p.P99US), fmt.Sprintf("%d", p.Rejected))
	}
	return t
}

// runServeBench adapts ServeBench to the registry's Runner shape.
func runServeBench(c Config) (*Table, error) {
	rep, err := ServeBench(c)
	if err != nil {
		return nil, err
	}
	return rep.Table(), nil
}

func init() { registry["serve"] = runServeBench }
