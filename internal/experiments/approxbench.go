package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"mmdr/internal/core"
	"mmdr/internal/idist"
	"mmdr/internal/index"
	"mmdr/internal/quant"
)

// ApproxPoint is one cell of the recall/QPS frontier: a code size (bytes
// per vector, the quantizer's block count after per-partition clamping)
// crossed with a candidate budget, measured through the fused quantized
// batch path at workers=1 so the numbers isolate kernel cost from goroutine
// scaling.
type ApproxPoint struct {
	Blocks     int     `json:"blocks"`           // configured sub-blocks (bytes/vector before clamping)
	CodeBytes  int     `json:"code_bytes"`       // actual worst-case bytes per coded vector
	Budget     int     `json:"budget"`           // candidates kept for exact re-rank
	Recall     float64 `json:"recall"`           // mean recall@k vs the exact reduced-space answer
	NsPerQuery float64 `json:"ns_per_query"`     // fused quantized batch, workers=1
	QPS        float64 `json:"qps"`              //
	Speedup    float64 `json:"speedup_vs_exact"` // vs the exact fused batch path
}

// ApproxReport is the machine-readable output of the quantized-scan
// benchmark (BENCH_approx.json): the recall-vs-QPS frontier of the
// PQ/ADC path against the exact fused batch and the sequential scan, in
// ann-benchmarks style — every point on the frontier answers the same
// workload, trading recall for throughput through two knobs (code size and
// candidate budget).
type ApproxReport struct {
	Env        EnvInfo `json:"env"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	Scale      string  `json:"scale"`
	N          int     `json:"n"`
	Dim        int     `json:"dim"`
	Queries    int     `json:"queries"`
	K          int     `json:"k"`

	// ReducedBytesPerVector is the float64 storage of the reduced
	// representation (8 bytes x member-weighted average retained
	// dimensionality); code bytes divide into it for the compression ratio.
	ReducedBytesPerVector float64 `json:"reduced_bytes_per_vector"`

	ExactBatchNsPerQuery float64 `json:"exact_batch_ns_per_query"`
	ExactBatchQPS        float64 `json:"exact_batch_qps"`
	ExactSoloNsPerQuery  float64 `json:"exact_solo_ns_per_query"`
	SeqScanNsPerQuery    float64 `json:"seqscan_ns_per_query"`
	SeqScanQPS           float64 `json:"seqscan_qps"`

	// FullBudgetBitIdentical gates the frontier: with budget >= N the
	// quantized path must reproduce the exact answers bit for bit on every
	// probe (the degenerate point of the budget knob).
	FullBudgetBitIdentical bool `json:"full_budget_bit_identical"`

	Frontier []ApproxPoint `json:"frontier"`

	// GateFixes are the before/after micro-benchmarks of the quantized-path
	// kernel rewrites forced by the mmdrgate compiler-contract gate (see
	// gatefix.go).
	GateFixes []GateFixMeasurement `json:"gate_fixes,omitempty"`
}

// approxBlockSweep and approxBudgetFactors define the frontier grid: code
// sizes in bytes per vector (before per-partition clamping) and candidate
// budgets as multiples of k. The budget factors bracket the quota schedule's
// useful range at paper scale: f=4 is the high-throughput low-recall end,
// f=13 lands past recall@10 ~0.95 while staying >=2x the exact batch path.
var (
	approxBlockSweep    = []int{2, 4, 8}
	approxBudgetFactors = []int{4, 8, 13}
)

// ApproxBench builds one MMDR model + extended iDistance index at the
// configured scale and sweeps the quantized scan path over code sizes and
// candidate budgets, measuring mean recall@k against the exact reduced-space
// answer and throughput through the fused batch kernels.
func ApproxBench(c Config) (*ApproxReport, error) {
	c = c.withDefaults()
	n, dim := c.sizes()
	ds, err := synthetic(n, dim, 5, 3, 25, c.Seed)
	if err != nil {
		return nil, err
	}
	red, err := core.New(core.Params{Seed: c.Seed, Tracer: c.Tracer, Counter: c.Counter, Parallelism: c.Parallelism}).Reduce(ds)
	if err != nil {
		return nil, err
	}
	idx, err := idist.Build(ds, red, idist.Options{})
	if err != nil {
		return nil, err
	}
	scan := index.NewSeqScan(ds, red, nil)

	queries := make([][]float64, c.NumQueries)
	for i := range queries {
		queries[i] = ds.Point((i * 37) % ds.N)
	}

	rep := &ApproxReport{
		Env:        CollectEnv(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Scale:      string(c.Scale),
		N:          n,
		Dim:        dim,
		Queries:    c.NumQueries,
		K:          c.K,
	}
	rep.ReducedBytesPerVector = 8 * red.Summarize().AvgDim

	// Exact ground truth in the reduced space: the quantized path re-ranks
	// with the same kernels the exact search uses, so this is the recall
	// oracle every frontier point is scored against.
	truth := make([][]index.Neighbor, len(queries))
	for i, q := range queries {
		truth[i] = idx.KNN(q, c.K)
	}

	rounds := 1
	if c.NumQueries < 500 {
		rounds = 500/c.NumQueries + 1
	}

	// Baselines: exact fused batch (the path the frontier must beat), exact
	// solo, and the sequential scan.
	idx.BatchKNN(queries, c.K, 1)
	rep.ExactBatchNsPerQuery = timeBatch(rounds, len(queries), func() { idx.BatchKNN(queries, c.K, 1) })
	rep.ExactSoloNsPerQuery, _ = measureQueries(queries, rounds, func(q []float64) { idx.KNN(q, c.K) })
	seqRounds := 1
	if c.Scale == Small {
		seqRounds = rounds
	}
	rep.SeqScanNsPerQuery, _ = measureQueries(queries, seqRounds, func(q []float64) { scan.KNN(q, c.K) })
	if rep.ExactBatchNsPerQuery > 0 {
		rep.ExactBatchQPS = 1e9 / rep.ExactBatchNsPerQuery
	}
	if rep.SeqScanNsPerQuery > 0 {
		rep.SeqScanQPS = 1e9 / rep.SeqScanNsPerQuery
	}

	rep.FullBudgetBitIdentical = true
	for _, blocks := range approxBlockSweep {
		set, err := quant.TrainSet(ds, red, quant.Config{Blocks: blocks, Bits: 6, Seed: c.Seed, Parallelism: c.Parallelism})
		if err != nil {
			return nil, fmt.Errorf("experiments: training %d-block quantizer: %w", blocks, err)
		}
		if err := idx.SetQuantizer(set); err != nil {
			return nil, err
		}

		// Degenerate-budget gate, on a probe sample (full-budget scans cost a
		// full pass per query).
		probes := len(queries)
		if probes > 10 {
			probes = 10
		}
		for qi, q := range queries[:probes] {
			got, err := idx.KNNQuantized(q, c.K, n)
			if err != nil {
				return nil, err
			}
			if !neighborsEqual(got, truth[qi]) {
				rep.FullBudgetBitIdentical = false
			}
		}

		for _, f := range approxBudgetFactors {
			budget := f * c.K
			batch, err := idx.BatchKNNQuantized(queries, c.K, budget, 1)
			if err != nil {
				return nil, err
			}
			pt := ApproxPoint{Blocks: blocks, CodeBytes: set.CodeBytesPerVector(), Budget: budget}
			sum := 0.0
			for qi := range queries {
				sum += recallOf(batch[qi], truth[qi])
			}
			pt.Recall = sum / float64(len(queries))
			pt.NsPerQuery = timeBatch(rounds, len(queries), func() { idx.BatchKNNQuantized(queries, c.K, budget, 1) })
			if pt.NsPerQuery > 0 {
				pt.QPS = 1e9 / pt.NsPerQuery
				pt.Speedup = rep.ExactBatchNsPerQuery / pt.NsPerQuery
			}
			rep.Frontier = append(rep.Frontier, pt)
		}
	}
	if !rep.FullBudgetBitIdentical {
		return rep, fmt.Errorf("experiments: full-budget quantized search diverged from the exact path")
	}
	rep.GateFixes = GateFixADCMeasurements()
	return rep, nil
}

// timeBatch times rounds invocations of fn (each answering nq queries) and
// returns ns per query.
func timeBatch(rounds, nq int, fn func()) float64 {
	t0 := time.Now()
	for r := 0; r < rounds; r++ {
		fn()
	}
	return float64(time.Since(t0).Nanoseconds()) / float64(rounds*nq)
}

// recallOf returns |got ∩ want| / |want| by ID.
func recallOf(got, want []index.Neighbor) float64 {
	if len(want) == 0 {
		return 1
	}
	hit := 0
	for _, w := range want {
		for _, g := range got {
			if g.ID == w.ID {
				hit++
				break
			}
		}
	}
	return float64(hit) / float64(len(want))
}

// WriteJSON writes the report as indented JSON.
func (r *ApproxReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Table renders the report in the experiment-table shape for the CLI.
func (r *ApproxReport) Table() *Table {
	t := &Table{
		Name:   "approx",
		Title:  fmt.Sprintf("quantized scan frontier (n=%d, d=%d, k=%d; exact batch %.0f QPS, seqscan %.0f QPS)", r.N, r.Dim, r.K, r.ExactBatchQPS, r.SeqScanQPS),
		Header: []string{"code bytes", "budget", "recall@k", "ns/query", "QPS", "vs exact"},
	}
	for _, p := range r.Frontier {
		t.AddRow(fmt.Sprintf("%d", p.CodeBytes), fmt.Sprintf("%d", p.Budget),
			f2(p.Recall), f2(p.NsPerQuery), f2(p.QPS), f2(p.Speedup)+"x")
	}
	ident := "false"
	if r.FullBudgetBitIdentical {
		ident = "true"
	}
	t.AddRow("full-budget bit-identical", ident, "", "", "", "")
	return t
}

// runApproxBench adapts ApproxBench to the registry's Runner shape.
func runApproxBench(c Config) (*Table, error) {
	rep, err := ApproxBench(c)
	if err != nil {
		return nil, err
	}
	return rep.Table(), nil
}

func init() { registry["approx"] = runApproxBench }
