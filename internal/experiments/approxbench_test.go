package experiments

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestApproxBenchSmall(t *testing.T) {
	rep, err := ApproxBench(Config{Scale: Small, Seed: 5, NumQueries: 20})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.FullBudgetBitIdentical {
		t.Fatal("full-budget quantized search diverged from the exact path")
	}
	wantCells := len(approxBlockSweep) * len(approxBudgetFactors)
	if len(rep.Frontier) != wantCells {
		t.Fatalf("%d frontier cells, want %d", len(rep.Frontier), wantCells)
	}
	if rep.ExactBatchNsPerQuery <= 0 || rep.SeqScanNsPerQuery <= 0 {
		t.Fatalf("baselines not measured: %+v", rep)
	}
	for _, p := range rep.Frontier {
		if p.Recall < 0 || p.Recall > 1 {
			t.Fatalf("recall %v out of range at blocks=%d budget=%d", p.Recall, p.Blocks, p.Budget)
		}
		if p.NsPerQuery <= 0 || p.QPS <= 0 {
			t.Fatalf("cell not timed: %+v", p)
		}
		if p.CodeBytes <= 0 || p.CodeBytes > p.Blocks {
			t.Fatalf("code bytes %d outside (0,%d] at blocks=%d", p.CodeBytes, p.Blocks, p.Blocks)
		}
	}
	// Budget is the recall knob: within one code size the frontier's recall
	// must be non-decreasing in the budget.
	for i := 1; i < len(rep.Frontier); i++ {
		a, b := rep.Frontier[i-1], rep.Frontier[i]
		if a.Blocks == b.Blocks && b.Recall < a.Recall {
			t.Fatalf("recall dropped from %.3f to %.3f as budget grew %d -> %d (blocks=%d)",
				a.Recall, b.Recall, a.Budget, b.Budget, a.Blocks)
		}
	}

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back ApproxReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report JSON does not round-trip: %v", err)
	}
	if back.N != rep.N || len(back.Frontier) != len(rep.Frontier) {
		t.Error("round-trip lost fields")
	}

	tbl := rep.Table()
	if tbl.Name != "approx" || len(tbl.Rows) != wantCells+1 {
		t.Errorf("Table rendering wrong shape: %d rows", len(tbl.Rows))
	}
}

func TestApproxRunnerRegistered(t *testing.T) {
	found := false
	for _, n := range Names() {
		if n == "approx" {
			found = true
		}
	}
	if !found {
		t.Fatal("approx runner not registered")
	}
}
