package experiments

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestServeBenchSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("serving benchmark sweep in -short mode")
	}
	rep, err := ServeBench(Config{Scale: Small, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.CorrectnessOK {
		t.Fatal("correctness gate did not pass")
	}
	if rep.CorrectnessQueries == 0 {
		t.Fatal("correctness gate checked zero queries")
	}
	if len(rep.Sweep) != 12 {
		t.Fatalf("sweep has %d points, want 12 (3 shard levels x 4 concurrency levels)", len(rep.Sweep))
	}
	for _, p := range rep.Sweep {
		if p.QPS <= 0 || p.P50US <= 0 || p.P99US < p.P50US {
			t.Errorf("implausible sweep point %+v", p)
		}
		if p.Rejected+p.Requests < p.Requests { // overflow guard, and shape sanity
			t.Errorf("negative rejections in %+v", p)
		}
	}
	// The report must round-trip as JSON (the BENCH_serve.json emitter).
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back ServeReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.N != rep.N || len(back.Sweep) != len(rep.Sweep) {
		t.Errorf("JSON round trip changed the report: %+v", back)
	}
}
