package experiments

import (
	"math"
	"math/rand"
	"time"

	"mmdr/internal/matrix"
)

// Gate-fix micro-benchmarks: before/after numbers for the kernel rewrites
// the mmdrgate compiler-contract gate forced (see DESIGN.md §11). Each
// "pre" function below is the frozen pre-gate loop shape, kept in-tree so
// the comparison is honest — same process, same inputs, same measurement
// loop as the live kernel it was replaced by. The rewrites are
// bit-identical by construction (single accumulator, strict left-to-right
// order), so only time is compared here; the equivalence and fuzz suites
// pin the values.

// preGateSqDist is the pre-gate SqDist: 4-way unrolled at every length.
// Below EarlyAbandonMinLen the two slice re-checks per chunk dominate; the
// live kernel dispatches to a check-free plain loop instead.
func preGateSqDist(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("experiments: preGateSqDist length mismatch")
	}
	var s float64
	i := 0
	for ; i+4 <= len(x); i += 4 {
		x4 := x[i : i+4 : i+4]
		y4 := y[i : i+4 : i+4]
		d0 := x4[0] - y4[0]
		s += d0 * d0
		d1 := x4[1] - y4[1]
		s += d1 * d1
		d2 := x4[2] - y4[2]
		s += d2 * d2
		d3 := x4[3] - y4[3]
		s += d3 * d3
	}
	for ; i < len(x); i++ {
		d := x[i] - y[i]
		s += d * d
	}
	return s
}

// preGateDot is the pre-gate DotUnroll4 (unrolled at every length).
func preGateDot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("experiments: preGateDot length mismatch")
	}
	var s float64
	i := 0
	for ; i+4 <= len(x); i += 4 {
		x4 := x[i : i+4 : i+4]
		y4 := y[i : i+4 : i+4]
		s += x4[0] * y4[0]
		s += x4[1] * y4[1]
		s += x4[2] * y4[2]
		s += x4[3] * y4[3]
	}
	for ; i < len(x); i++ {
		s += x[i] * y[i]
	}
	return s
}

// preGateADCSumBound is the pre-gate ADCSumBound: the four-block path
// indexes the table at k-scaled offsets the prove pass cannot bound, so
// every load carries a bounds check. The live kernel adds a k=256 fast
// path over a constant 1024-wide slab with provably in-bounds byte
// indexing.
func preGateADCSumBound(table []float64, k int, code []byte, bound float64) float64 {
	if len(code) == 4 {
		s := table[int(code[0])]
		s += table[k+int(code[1])]
		s += table[2*k+int(code[2])]
		s += table[3*k+int(code[3])]
		return s
	}
	if len(code) <= 4 {
		return matrix.ADCSum(table, k, code)
	}
	var s float64
	off := 0
	for _, c := range code {
		s += table[off+int(c)]
		if s > bound {
			return s
		}
		off += k
	}
	return s
}

// GateFixMeasurement is one before/after row of the gate-driven kernel
// fixes, folded into the benchmark reports as "gate_fixes".
type GateFixMeasurement struct {
	// Kernel is the live kernel name ("SqDist", "ADCSumBound", ...).
	Kernel string `json:"kernel"`
	// Shape describes the measured operand shape ("d=8", "k=256 m=4").
	Shape       string  `json:"shape"`
	PreNsPerOp  float64 `json:"pre_ns_per_op"`
	PostNsPerOp float64 `json:"post_ns_per_op"`
	Speedup     float64 `json:"speedup"`
}

// gateFixSink keeps the measurement loops observable so the compiler
// cannot delete them.
var gateFixSink float64

// gateFixPairs is the measured working set: enough pairs to defeat
// store-to-load forwarding on one hot pair, few enough to stay in L1.
const gateFixPairs = 64

// Measurement loops are monomorphic — each kernel gets its own direct-call
// loop — because that is how the scan code invokes these kernels; an
// indirect call through a func value would hide the inlined small-dim
// dispatch the fix is about. Each loop runs a fixed iteration count over
// the working set and the minimum of a few repetitions is reported (the
// best noise filter for single-digit-ns kernels on a shared machine).
const gateFixRounds, gateFixReps = 40_000, 7

// bestOfPair runs the pre and post measurement closures (each of which
// must execute `calls` kernel calls) in alternation for gateFixReps
// repetitions and returns each side's minimum ns per call. Interleaving
// matters on a shared machine: a frequency dip or noisy neighbor hits both
// shapes instead of biasing whichever phase it lands in.
func bestOfPair(calls int, preLoop, postLoop func()) (pre, post float64) {
	pre, post = math.Inf(1), math.Inf(1)
	for r := 0; r < gateFixReps; r++ {
		t0 := time.Now()
		preLoop()
		if ns := float64(time.Since(t0).Nanoseconds()) / float64(calls); ns < pre {
			pre = ns
		}
		t0 = time.Now()
		postLoop()
		if ns := float64(time.Since(t0).Nanoseconds()) / float64(calls); ns < post {
			post = ns
		}
	}
	return pre, post
}

// preGateRowToSel is the pre-gate SqDistRowToSel small-dimension path: one
// SqDist call — length guard, dispatch branch, unrolled body — per
// (query, row) pair. The live kernel hoists the guard out of the selection
// loop and calls the check-free plain-loop kernel directly.
func preGateRowToSel(v, qs []float64, d int, sel []int32, out []float64) {
	for i, j := range sel {
		q := qs[int(j)*d : int(j)*d+d : int(j)*d+d]
		out[i] = preGateSqDist(q, v)
	}
}

// GateFixExactMeasurements measures the exact-path kernel fix where the
// small-dimension rewrite is amortized the way the scan actually runs it:
// SqDistRowToSel at d=8 (the representative reduced dimensionality of the
// subspace scans — clusters at paper scale retain 6-10 dims), streaming
// rows against a full query tile. Pre pays guard + dispatch + the unrolled
// form's per-chunk slice checks on every pair; post pays one hoisted guard
// per row and runs the check-free plain loop per pair.
func GateFixExactMeasurements() []GateFixMeasurement {
	rng := rand.New(rand.NewSource(7))
	const d = 8
	const tile = 8 // queries per tile (matches the fused batch path's tile)
	qs := make([]float64, tile*d)
	for i := range qs {
		qs[i] = rng.Float64()
	}
	sel := make([]int32, tile)
	for i := range sel {
		sel[i] = int32(i)
	}
	rows := make([][]float64, gateFixPairs)
	for i := range rows {
		rows[i] = make([]float64, d)
		for j := 0; j < d; j++ {
			rows[i][j] = rng.Float64()
		}
	}
	bounds := make([]float64, tile)
	for i := range bounds {
		bounds[i] = math.Inf(1)
	}
	out := make([]float64, tile)
	calls := gateFixRounds * len(rows) * tile

	pre, post := bestOfPair(calls, func() {
		for it := 0; it < gateFixRounds; it++ {
			for _, v := range rows {
				preGateRowToSel(v, qs, d, sel, out)
				gateFixSink += out[0]
			}
		}
	}, func() {
		for it := 0; it < gateFixRounds; it++ {
			for _, v := range rows {
				matrix.SqDistRowToSel(v, qs, d, sel, bounds, out)
				gateFixSink += out[0]
			}
		}
	})
	return []GateFixMeasurement{{
		Kernel: "SqDistRowToSel", Shape: "d=8 tile=8",
		PreNsPerOp: pre, PostNsPerOp: post, Speedup: pre / post,
	}}
}

// GateFixADCMeasurements measures the quantized-path kernel fix: the
// ADCSumBound k=256/m=4 fast path (the paper-scale PQ default — 4 code
// bytes per vector against 256-centroid codebooks).
func GateFixADCMeasurements() []GateFixMeasurement {
	rng := rand.New(rand.NewSource(7))
	const k, m = 256, 4
	table := make([]float64, k*m)
	for i := range table {
		table[i] = rng.Float64()
	}
	codes := make([][]byte, gateFixPairs)
	for i := range codes {
		c := make([]byte, m)
		rng.Read(c)
		codes[i] = c
	}
	calls := gateFixRounds * len(codes)
	pre, post := bestOfPair(calls, func() {
		for it := 0; it < gateFixRounds; it++ {
			for _, c := range codes {
				gateFixSink += preGateADCSumBound(table, k, c, 1e18)
			}
		}
	}, func() {
		for it := 0; it < gateFixRounds; it++ {
			for _, c := range codes {
				gateFixSink += matrix.ADCSumBound(table, k, c, 1e18)
			}
		}
	})
	return []GateFixMeasurement{{
		Kernel: "ADCSumBound", Shape: "k=256 m=4",
		PreNsPerOp: pre, PostNsPerOp: post, Speedup: pre / post,
	}}
}
