package experiments

import (
	"runtime"
	"runtime/debug"
)

// EnvInfo stamps the environment a benchmark ran in. Every BENCH_*.json
// emitter embeds one, so numbers archived from different machines or
// toolchains stay comparable (or visibly incomparable).
type EnvInfo struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	// GitCommit is the VCS revision baked into the binary by the Go
	// toolchain ("" when built outside a repository, e.g. go test in a
	// module cache). A "-dirty" suffix marks uncommitted changes.
	GitCommit string `json:"git_commit,omitempty"`
}

// CollectEnv snapshots the running environment.
func CollectEnv() EnvInfo {
	e := EnvInfo{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		var rev string
		dirty := false
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				dirty = s.Value == "true"
			}
		}
		if rev != "" {
			if len(rev) > 12 {
				rev = rev[:12]
			}
			if dirty {
				rev += "-dirty"
			}
			e.GitCommit = rev
		}
	}
	return e
}
