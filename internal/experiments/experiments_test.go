package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// cell parses table cell (r, c) as float.
func cell(t *testing.T, tb *Table, r, c int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(tb.Rows[r][c], 64)
	if err != nil {
		t.Fatalf("%s cell (%d,%d) = %q: %v", tb.Name, r, c, tb.Rows[r][c], err)
	}
	return v
}

func TestNamesAndDispatch(t *testing.T) {
	names := Names()
	if len(names) < 13 {
		t.Fatalf("registry has %d entries", len(names))
	}
	if _, err := Run("not-an-experiment", Config{}); err == nil {
		t.Fatal("expected unknown-experiment error")
	}
}

func TestTablePrinting(t *testing.T) {
	tb := &Table{Name: "x", Title: "y", Header: []string{"a", "long-header"}}
	tb.AddRow("1", "2")
	var buf bytes.Buffer
	tb.Fprint(&buf)
	out := buf.String()
	if !strings.Contains(out, "## x — y") || !strings.Contains(out, "long-header") {
		t.Fatalf("rendered table:\n%s", out)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Scale != Medium || c.K != 10 || c.NumQueries != 50 {
		t.Fatalf("defaults %+v", c)
	}
	s := Config{Scale: Small}.withDefaults()
	if s.NumQueries != 15 {
		t.Fatalf("small defaults %+v", s)
	}
	p := Config{Scale: Paper}.withDefaults()
	if p.NumQueries != 100 {
		t.Fatalf("paper defaults %+v", p)
	}
}

// The headline of Figure 7a: at high ellipticity MMDR beats LDR, and
// precision grows with ellipticity.
func TestFig7aShape(t *testing.T) {
	tb, err := Fig7a(Config{Scale: Small, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) < 4 {
		t.Fatalf("%d rows", len(tb.Rows))
	}
	last := len(tb.Rows) - 1
	mmdrHigh, ldrHigh := cell(t, tb, last, 1), cell(t, tb, last, 2)
	if mmdrHigh <= ldrHigh {
		t.Fatalf("at max ellipticity MMDR %v should beat LDR %v", mmdrHigh, ldrHigh)
	}
	mmdrLow := cell(t, tb, 0, 1)
	if mmdrHigh <= mmdrLow {
		t.Fatalf("MMDR precision should grow with ellipticity: %v -> %v", mmdrLow, mmdrHigh)
	}
}

// Figure 7b: MMDR stays effective as the cluster count grows; LDR decays.
func TestFig7bShape(t *testing.T) {
	tb, err := Fig7b(Config{Scale: Small, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	last := len(tb.Rows) - 1
	mmdrMany, ldrMany := cell(t, tb, last, 1), cell(t, tb, last, 2)
	if mmdrMany <= ldrMany {
		t.Fatalf("at 10 clusters MMDR %v should beat LDR %v", mmdrMany, ldrMany)
	}
	ldrOne := cell(t, tb, 0, 2)
	if ldrMany >= ldrOne {
		t.Fatalf("LDR should decay with cluster count: %v -> %v", ldrOne, ldrMany)
	}
}

// Figure 8a: precision rises with retained dims for every method.
func TestFig8aShape(t *testing.T) {
	tb, err := Fig8a(Config{Scale: Small, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for col := 1; col <= 3; col++ {
		lo := cell(t, tb, 0, col)
		hi := cell(t, tb, len(tb.Rows)-1, col)
		if hi < lo-0.05 {
			t.Fatalf("col %d precision fell with dims: %v -> %v", col, lo, hi)
		}
	}
}

// Figure 9a: every indexed scheme beats the sequential scan at the top of
// the dimensionality sweep, and iMMDR stays at or below iLDR.
func TestFig9aShape(t *testing.T) {
	tb, err := Fig9a(Config{Scale: Small, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	last := len(tb.Rows) - 1
	iMMDR, iLDR, seq := cell(t, tb, last, 1), cell(t, tb, last, 2), cell(t, tb, last, 4)
	if iMMDR > seq || iLDR > seq {
		t.Fatalf("indexes should beat seq scan at high dims: iMMDR=%v iLDR=%v seq=%v", iMMDR, iLDR, seq)
	}
	// At small scale iMMDR's finer partitioning costs a few extra leaf
	// touches; at medium scale the two are tied (EXPERIMENTS.md). Guard
	// only against gross regressions here.
	if iMMDR > iLDR*2.5 {
		t.Fatalf("iMMDR IO %v should not exceed iLDR %v substantially", iMMDR, iLDR)
	}
}

// Figure 11a: scalable MMDR reads each point exactly once regardless of N.
func TestFig11aSingleScan(t *testing.T) {
	tb, err := Fig11a(Config{Scale: Small, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) < 2 {
		t.Fatal("too few rows")
	}
	// Page counts double when N doubles (dim fixed): a single scan.
	p0 := cell(t, tb, 0, 3)
	p1 := cell(t, tb, 1, 3)
	if p1 < 1.8*p0 || p1 > 2.2*p0 {
		t.Fatalf("scan pages not linear in N: %v -> %v", p0, p1)
	}
}

func TestFig11bRuns(t *testing.T) {
	tb, err := Fig11b(Config{Scale: Small, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) < 3 {
		t.Fatalf("%d rows", len(tb.Rows))
	}
}

func TestFig8bAnd9bAnd10Run(t *testing.T) {
	for _, name := range []string{"fig8b", "fig9b", "fig10a", "fig10b"} {
		tb, err := Run(name, Config{Scale: Small, Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(tb.Rows) == 0 {
			t.Fatalf("%s: empty table", name)
		}
	}
}

// The §4.2 lookup-table optimization must reduce distance computations.
func TestAblationLookupShape(t *testing.T) {
	tb, err := AblationLookup(Config{Scale: Small, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	plain := cell(t, tb, 0, 1)
	opt := cell(t, tb, 1, 1)
	if opt >= plain {
		t.Fatalf("lookup table did not reduce distance ops: %v >= %v", opt, plain)
	}
}

// The multi-level recursion must beat flat clustering on data whose
// clusters need more than the initial subspace dimensionality.
func TestAblationMultiLevelShape(t *testing.T) {
	tb, err := AblationMultiLevel(Config{Scale: Small, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	multi := cell(t, tb, 0, 1)
	flat := cell(t, tb, 1, 1)
	if multi <= flat {
		t.Fatalf("multi-level %v should beat flat %v", multi, flat)
	}
}

func TestAblationNormalizedRuns(t *testing.T) {
	tb, err := AblationNormalized(Config{Scale: Small, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("%d rows", len(tb.Rows))
	}
}

// The dynamic-insertion extension: precision must not collapse as the
// index grows 50% beyond its fitted model.
func TestExtInsertionShape(t *testing.T) {
	tb, err := ExtInsertion(Config{Scale: Small, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("%d rows", len(tb.Rows))
	}
	base := cell(t, tb, 0, 1)
	grown := cell(t, tb, len(tb.Rows)-1, 1)
	if grown < base-0.15 {
		t.Fatalf("precision collapsed after insertion: %v -> %v", base, grown)
	}
	if perInsert := cell(t, tb, 1, 3); perInsert <= 0 {
		t.Fatalf("per-insert cost %v", perInsert)
	}
}

// The approximate-KNN extension: precision is monotone non-decreasing in
// the round budget and reaches the exact answer.
func TestExtApproxShape(t *testing.T) {
	tb, err := ExtApprox(Config{Scale: Small, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	exact := cell(t, tb, len(tb.Rows)-1, 1)
	for r := 0; r < len(tb.Rows)-1; r++ {
		if p := cell(t, tb, r, 1); p > exact+1e-9 {
			t.Fatalf("bounded search beat exact: %v > %v", p, exact)
		}
	}
}

func TestTableWriteCSV(t *testing.T) {
	tb := &Table{Name: "x", Title: "y", Header: []string{"a", "b"}}
	tb.AddRow("1", "2")
	tb.AddRow("3", "4")
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,2\n3,4\n"
	if buf.String() != want {
		t.Fatalf("CSV = %q, want %q", buf.String(), want)
	}
}

// The reduction-benefit extension: raw full-dimensional iDistance is
// lossless but costs more I/O than the reduced index.
func TestExtRawShape(t *testing.T) {
	tb, err := ExtRaw(Config{Scale: Small, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("%d rows", len(tb.Rows))
	}
	rawPrec := cell(t, tb, 1, 1)
	if rawPrec < 0.999 {
		t.Fatalf("raw iDistance precision %v, want 1 (lossless)", rawPrec)
	}
	mmdrIO, rawIO := cell(t, tb, 0, 2), cell(t, tb, 1, 2)
	if mmdrIO >= rawIO {
		t.Fatalf("reduced index IO %v should beat raw %v", mmdrIO, rawIO)
	}
}
