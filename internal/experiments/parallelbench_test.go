package experiments

import (
	"bytes"
	"encoding/json"
	"testing"
)

// BENCH_parallel.json schema lockdown: the report must carry the full
// worker-sweep curve (one point per sweep worker count, with throughput and
// speedup populated) alongside the headline serial/batch comparison, and
// the JSON encoding must expose it under "worker_sweep" so downstream
// readers of the artifact can rely on the key.
func TestParallelReportCarriesWorkerSweep(t *testing.T) {
	rep, err := ParallelBench(Config{Scale: Small, Seed: 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Sweep) != len(sweepWorkers) {
		t.Fatalf("sweep has %d points, want %d", len(rep.Sweep), len(sweepWorkers))
	}
	for i, pt := range rep.Sweep {
		if pt.Workers != sweepWorkers[i] {
			t.Fatalf("sweep point %d at workers=%d, want %d", i, pt.Workers, sweepWorkers[i])
		}
		if pt.BatchQPS <= 0 || pt.QuerySpeedup <= 0 {
			t.Fatalf("sweep point %d not populated: %+v", i, pt)
		}
	}
	if !rep.ModelsIdentical {
		t.Fatal("parallel model diverged from serial")
	}

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	sweep, ok := decoded["worker_sweep"].([]any)
	if !ok {
		t.Fatalf("worker_sweep missing from JSON: keys %v", keysOf(decoded))
	}
	if len(sweep) != len(sweepWorkers) {
		t.Fatalf("JSON sweep has %d points, want %d", len(sweep), len(sweepWorkers))
	}
	first, ok := sweep[0].(map[string]any)
	if !ok {
		t.Fatalf("sweep point shape: %T", sweep[0])
	}
	for _, key := range []string{"workers", "batch_queries_per_sec", "query_speedup"} {
		if _, ok := first[key]; !ok {
			t.Fatalf("sweep point missing %q: keys %v", key, keysOf(first))
		}
	}

	// The sweep rows render in the CLI table too.
	rows := rep.Table().Rows
	if want := 3 + len(sweepWorkers); len(rows) != want {
		t.Fatalf("table has %d rows, want %d", len(rows), want)
	}
}

// BENCH_query.json schema lockdown for the fused batch columns.
func TestQueryReportCarriesBatchColumns(t *testing.T) {
	rep, err := QueryBench(Config{Scale: Small, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.BatchTile < 2 {
		t.Fatalf("batch tile %d, want >= 2", rep.BatchTile)
	}
	if rep.BatchKNNNsPerQuery <= 0 || rep.BatchKNNQPS <= 0 || rep.BatchKNNSpeedup <= 0 {
		t.Fatalf("batch columns not populated: ns=%v qps=%v speedup=%v",
			rep.BatchKNNNsPerQuery, rep.BatchKNNQPS, rep.BatchKNNSpeedup)
	}
	if !rep.OracleBitIdentical {
		t.Fatal("batch path diverged from oracle")
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"batch_tile", "batch_knn_ns_per_query", "batch_knn_qps", "batch_knn_speedup"} {
		if _, ok := decoded[key]; !ok {
			t.Fatalf("report JSON missing %q", key)
		}
	}
}

func keysOf(m map[string]any) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
