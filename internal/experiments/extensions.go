package experiments

import (
	"fmt"
	"time"

	"mmdr/internal/core"
	"mmdr/internal/datagen"
	"mmdr/internal/idist"
	"mmdr/internal/iostat"
	"mmdr/internal/query"
	"mmdr/internal/reduction"
)

func init() {
	registry["ext-insertion"] = ExtInsertion
	registry["ext-approx"] = ExtApprox
	registry["ext-raw"] = ExtRaw
}

// ExtInsertion runs the experiment the paper omits for lack of space (§5:
// "due to page limit, we omit the algorithm for dynamic insertion and its
// experiments"): reduce a base dataset, then stream in additional points
// through the extended iDistance's dynamic Insert and track precision
// drift and insertion throughput as the index grows beyond its fitted
// model.
func ExtInsertion(cfg Config) (*Table, error) {
	c := cfg.withDefaults()
	n, dim := c.sizes()
	// Generate base + growth from the same distribution; the model is
	// fitted on the base only.
	total, err := synthetic(n+n/2, dim, 6, 3, 25, c.Seed)
	if err != nil {
		return nil, err
	}
	base := total.Slice(0, n).Clone()
	red, err := core.New(core.Params{Seed: c.Seed, Tracer: c.Tracer, Counter: c.Counter}).Reduce(base)
	if err != nil {
		return nil, err
	}
	idx, err := idist.Build(base, red, idist.Options{})
	if err != nil {
		return nil, err
	}

	t := &Table{
		Name:   "ext-insertion",
		Title:  "dynamic insertion: precision drift and throughput as the index grows",
		Header: []string{"inserted_pct", "precision", "outlier_pct", "us_per_insert"},
	}
	queries := datagen.SampleQueries(base, c.NumQueries, 0, c.Seed+7)
	record := func(pct float64, perInsert float64) {
		var sum float64
		for i := 0; i < queries.N; i++ {
			q := queries.Point(i)
			sum += query.Precision(idx.KNN(q, c.K), query.ExactKNN(base, q, c.K))
		}
		outPct := 100 * float64(len(red.Outliers)) / float64(base.N)
		t.AddRow(fmt.Sprintf("%.0f", pct), f2(sum/float64(queries.N)),
			f2(outPct), f2(perInsert))
	}
	record(0, 0)

	batch := n / 10
	next := n
	for _, pct := range []float64{10, 30, 50} {
		target := n + int(pct/100*float64(n))
		start := time.Now()
		inserted := 0
		for ; next < target && next < total.N; next++ {
			if _, err := idx.Insert(total.Point(next)); err != nil {
				return nil, err
			}
			inserted++
		}
		perInsert := 0.0
		if inserted > 0 {
			perInsert = float64(time.Since(start).Microseconds()) / float64(inserted)
		}
		record(pct, perInsert)
		_ = batch
	}
	return t, nil
}

// ExtApprox measures the approximate-KNN extension: stopping the iterative
// radius enlargement after a bounded number of rounds trades precision for
// query cost (the iDistance papers note this online-answering property;
// the base paper's search runs rounds to completion).
func ExtApprox(cfg Config) (*Table, error) {
	c := cfg.withDefaults()
	n, dim := c.sizes()
	ds, err := synthetic(n, dim, 6, 3, 25, c.Seed)
	if err != nil {
		return nil, err
	}
	red, err := core.New(core.Params{Seed: c.Seed, Tracer: c.Tracer, Counter: c.Counter}).Reduce(ds)
	if err != nil {
		return nil, err
	}
	idx, err := idist.Build(ds, red, idist.Options{})
	if err != nil {
		return nil, err
	}
	queries := datagen.SampleQueries(ds, c.NumQueries, 0, c.Seed+8)

	t := &Table{
		Name:   "ext-approx",
		Title:  "approximate KNN: precision vs bounded search rounds",
		Header: []string{"max_rounds", "precision", "us_per_query"},
	}
	for _, rounds := range []int{1, 2, 4, 8, 0} {
		var sum float64
		start := time.Now()
		for i := 0; i < queries.N; i++ {
			q := queries.Point(i)
			approx := idx.KNNApprox(q, c.K, rounds)
			sum += query.Precision(approx, query.ExactKNN(ds, q, c.K))
		}
		micros := float64(time.Since(start).Microseconds()) / float64(queries.N)
		label := fmt.Sprintf("%d", rounds)
		if rounds == 0 {
			label = "exact"
		}
		t.AddRow(label, f2(sum/float64(queries.N)), f2(micros))
	}
	return t, nil
}

// ExtRaw compares the extended iDistance over an MMDR reduction against the
// *original* full-dimensional iDistance (k-means reference points, no
// reduction) — isolating the benefit of dimensionality reduction from the
// benefit of the indexing scheme. The raw index is lossless (precision 1);
// the reduced index trades a little precision for much cheaper queries.
func ExtRaw(cfg Config) (*Table, error) {
	c := cfg.withDefaults()
	n, dim := c.sizes()
	ds, err := synthetic(n, dim, 6, 3, 25, c.Seed)
	if err != nil {
		return nil, err
	}
	queries := datagen.SampleQueries(ds, c.NumQueries, 0, c.Seed+9)

	t := &Table{
		Name:   "ext-raw",
		Title:  "reduction benefit: iDistance over MMDR vs full-dimensional iDistance",
		Header: []string{"variant", "precision", "io_per_query", "us_per_query"},
	}
	run := func(name string, red *reduction.Result) error {
		var ctr iostat.Counter
		idx, err := idist.Build(ds, red, idist.Options{Counter: iostat.Tee(&ctr, c.Counter), Tracer: c.Tracer})
		if err != nil {
			return err
		}
		ctr.Reset()
		var sum float64
		start := time.Now()
		for i := 0; i < queries.N; i++ {
			q := queries.Point(i)
			sum += query.Precision(idx.KNN(q, c.K), query.ExactKNN(ds, q, c.K))
		}
		elapsed := time.Since(start)
		t.AddRow(name,
			f2(sum/float64(queries.N)),
			f2(float64(ctr.IO())/float64(queries.N)),
			f2(float64(elapsed.Microseconds())/float64(queries.N)))
		return nil
	}

	mmdrRed, err := core.New(core.Params{Seed: c.Seed, Tracer: c.Tracer, Counter: c.Counter}).Reduce(ds)
	if err != nil {
		return nil, err
	}
	rawRed, err := (&reduction.Identity{Clusters: 16, Seed: c.Seed}).Reduce(ds)
	if err != nil {
		return nil, err
	}
	if err := run("iMMDR", mmdrRed); err != nil {
		return nil, err
	}
	if err := run("iDist-raw", rawRed); err != nil {
		return nil, err
	}
	return t, nil
}
