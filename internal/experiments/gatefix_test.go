package experiments

import (
	"math"
	"math/rand"
	"testing"

	"mmdr/internal/matrix"
)

// The frozen pre-gate shapes must stay bit-identical to the live kernels —
// that equality is what makes the before/after timing a pure loop-shape
// comparison.
func TestPreGateShapesBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, d := range []int{1, 3, 4, 7, 8, 15, 16, 17, 33, 64} {
		x := make([]float64, d)
		y := make([]float64, d)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		if a, b := preGateSqDist(x, y), matrix.SqDist(x, y); a != b {
			t.Errorf("d=%d: preGateSqDist=%v SqDist=%v", d, a, b)
		}
		if a, b := preGateDot(x, y), matrix.DotUnroll4(x, y); a != b {
			t.Errorf("d=%d: preGateDot=%v DotUnroll4=%v", d, a, b)
		}
	}
	for _, d := range []int{1, 4, 8, 9, 12, 15} {
		const tile = 8
		qs := make([]float64, tile*d)
		for i := range qs {
			qs[i] = rng.NormFloat64()
		}
		v := make([]float64, d)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		sel := []int32{0, 2, 3, 7}
		bounds := []float64{math.Inf(1), math.Inf(1), math.Inf(1), math.Inf(1)}
		pre := make([]float64, len(sel))
		post := make([]float64, len(sel))
		preGateRowToSel(v, qs, d, sel, pre)
		matrix.SqDistRowToSel(v, qs, d, sel, bounds, post)
		for i := range sel {
			if pre[i] != post[i] {
				t.Errorf("d=%d sel[%d]: preGateRowToSel=%v SqDistRowToSel=%v", d, i, pre[i], post[i])
			}
		}
	}
	for _, m := range []int{1, 2, 4, 6, 9} {
		for _, k := range []int{16, 256} {
			table := make([]float64, k*m)
			for i := range table {
				table[i] = rng.Float64()
			}
			code := make([]byte, m)
			rng.Read(code)
			for i := range code {
				code[i] = byte(int(code[i]) % k)
			}
			for _, bound := range []float64{0.1, math.Inf(1)} {
				a := preGateADCSumBound(table, k, code, bound)
				b := matrix.ADCSumBound(table, k, code, bound)
				if a != b {
					t.Errorf("k=%d m=%d bound=%v: pre=%v post=%v", k, m, bound, a, b)
				}
			}
		}
	}
}

// The ADC fast path must fall back to the generic shape (and its panic
// behavior) on a malformed short table rather than read out of bounds.
func TestADCFastPathShortTableFallsBack(t *testing.T) {
	table := make([]float64, 512) // k=256 claims 1024 entries; this table lies
	code := []byte{0, 1, 2, 3}
	defer func() {
		if recover() == nil {
			t.Fatal("short table with k=256 did not panic")
		}
	}()
	matrix.ADCSumBound(table, 256, code, math.Inf(1))
}

func TestGateFixMeasurementsPopulated(t *testing.T) {
	if testing.Short() {
		t.Skip("timing loops; skipped in -short")
	}
	exact := GateFixExactMeasurements()
	adc := GateFixADCMeasurements()
	all := append(append([]GateFixMeasurement{}, exact...), adc...)
	if len(all) != 2 {
		t.Fatalf("got %d measurements, want 2", len(all))
	}
	for _, m := range all {
		if m.PreNsPerOp <= 0 || m.PostNsPerOp <= 0 || m.Speedup <= 0 {
			t.Errorf("%s (%s): unpopulated measurement %+v", m.Kernel, m.Shape, m)
		}
	}
}
