package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"mmdr/internal/core"
	"mmdr/internal/idist"
	"mmdr/internal/metrics"
)

// ObsReport is the machine-readable output of the observability benchmark
// (BENCH_obs.json): the measured cost of carrying the runtime metrics layer
// on the KNN hot path, plus the per-operation latency distributions the
// instrumented run produced. Both columns run in the same process on the
// same index — "off" with no registry attached, "on" with one recording
// every query.
type ObsReport struct {
	Env     EnvInfo `json:"env"`
	Scale   string  `json:"scale"`
	N       int     `json:"n"`
	Dim     int     `json:"dim"`
	Queries int     `json:"queries"`
	K       int     `json:"k"`

	// Overhead of the instrumented path. OverheadPct is the relative
	// slowdown of ns/query with metrics attached; the tentpole budget is 2%.
	OffNsPerQuery     float64 `json:"off_ns_per_query"`
	OnNsPerQuery      float64 `json:"on_ns_per_query"`
	OverheadPct       float64 `json:"overhead_pct"`
	OffAllocsPerQuery float64 `json:"off_allocs_per_query"`
	OnAllocsPerQuery  float64 `json:"on_allocs_per_query"`

	// BuildMS is the instrumented model+index build time; the build:<phase>
	// ops inside Metrics break it down.
	BuildMS float64 `json:"build_ms"`

	// Metrics is the full registry snapshot of the instrumented run:
	// per-operation count/mean/p50/p90/p99/max plus histogram buckets.
	Metrics metrics.Snapshot `json:"metrics"`

	// SlowCaptured counts tail-latency captures during the instrumented run
	// (adaptive p99-based threshold, so usually small but nonzero on real
	// distributions).
	SlowCaptured int64 `json:"slow_captured"`
}

// ObsBench measures what observability costs: build one MMDR model and
// extended iDistance index, run the KNN workload uninstrumented, attach a
// registry, run it again, and report the delta plus the recorded latency
// distributions.
func ObsBench(c Config) (*ObsReport, error) {
	c = c.withDefaults()
	n, dim := c.sizes()
	ds, err := synthetic(n, dim, 5, 3, 25, c.Seed)
	if err != nil {
		return nil, err
	}

	reg := metrics.NewRegistry()
	tracer := metrics.NewPhaseTracer(reg)
	buildStart := time.Now()
	red, err := core.New(core.Params{Seed: c.Seed, Tracer: tracer, Counter: c.Counter, Parallelism: c.Parallelism}).Reduce(ds)
	if err != nil {
		return nil, err
	}
	idx, err := idist.Build(ds, red, idist.Options{Tracer: tracer})
	if err != nil {
		return nil, err
	}
	buildMS := float64(time.Since(buildStart).Microseconds()) / 1000

	queries := make([][]float64, c.NumQueries)
	for i := range queries {
		queries[i] = ds.Point((i * 37) % ds.N)
	}
	rounds := 1
	if c.NumQueries < 2000 {
		rounds = 2000/c.NumQueries + 1
	}

	rep := &ObsReport{
		Env:     CollectEnv(),
		Scale:   string(c.Scale),
		N:       n,
		Dim:     dim,
		Queries: c.NumQueries,
		K:       c.K,
		BuildMS: buildMS,
	}

	// Warm both the scratch pool and the page cache, then measure the
	// uninstrumented path.
	for _, q := range queries {
		idx.KNN(q, c.K)
	}
	rep.OffNsPerQuery, rep.OffAllocsPerQuery =
		measureQueries(queries, rounds, func(q []float64) { idx.KNN(q, c.K) })

	// Attach and measure the instrumented path on the same index.
	idx.SetMetrics(reg)
	rep.OnNsPerQuery, rep.OnAllocsPerQuery =
		measureQueries(queries, rounds, func(q []float64) { idx.KNN(q, c.K) })
	idx.SetMetrics(nil)

	if rep.OffNsPerQuery > 0 {
		rep.OverheadPct = (rep.OnNsPerQuery - rep.OffNsPerQuery) / rep.OffNsPerQuery * 100
	}
	rep.Metrics = reg.Snapshot()
	rep.SlowCaptured = reg.Slow().Total()
	return rep, nil
}

// WriteJSON writes the report as indented JSON.
func (r *ObsReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Table renders the report in the experiment-table shape for the CLI.
func (r *ObsReport) Table() *Table {
	t := &Table{
		Name:   "obs",
		Title:  fmt.Sprintf("runtime metrics overhead (n=%d, d=%d, k=%d)", r.N, r.Dim, r.K),
		Header: []string{"metric", "off", "on", "delta"},
	}
	t.AddRow("KNN ns/query", f2(r.OffNsPerQuery), f2(r.OnNsPerQuery), f2(r.OverheadPct)+"%")
	t.AddRow("KNN allocs/query", f2(r.OffAllocsPerQuery), f2(r.OnAllocsPerQuery), "")
	for _, o := range r.Metrics.Ops {
		if o.Name != "knn" {
			continue
		}
		t.AddRow("knn p50 µs", "", f2(o.P50US), "")
		t.AddRow("knn p99 µs", "", f2(o.P99US), "")
		t.AddRow("knn max µs", "", f2(o.MaxUS), "")
	}
	t.AddRow("slow captured", "", i64(r.SlowCaptured), "")
	return t
}

// runObsBench adapts ObsBench to the registry's Runner shape.
func runObsBench(c Config) (*Table, error) {
	rep, err := ObsBench(c)
	if err != nil {
		return nil, err
	}
	return rep.Table(), nil
}

func init() { registry["obs"] = runObsBench }
