package experiments

import (
	"time"

	"mmdr/internal/core"
	"mmdr/internal/datagen"
	"mmdr/internal/ellipkmeans"
	"mmdr/internal/iostat"
	"mmdr/internal/query"
)

// AblationLookup quantifies the §4.2 optimizations (k-closest-centroid
// lookup table + Activity freezing) inside elliptical k-means: distance
// computations and wall time with the optimization off vs on, at equal
// clustering quality inputs.
func AblationLookup(cfg Config) (*Table, error) {
	c := cfg.withDefaults()
	n, dim := c.sizes()
	ds, err := synthetic(n, dim, 5, 2, 20, c.Seed)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Name:   "ablation-lookup",
		Title:  "elliptical k-means distance ops: lookup table + activity on/off",
		Header: []string{"variant", "distance_ops", "ms"},
	}
	run := func(name string, lookup bool) error {
		var ctr iostat.Counter
		opts := ellipkmeans.Options{K: 10, Seed: c.Seed, Normalized: true,
			Counter: iostat.Tee(&ctr, c.Counter), Tracer: c.Tracer}
		if lookup {
			opts.UseLookupTable = true
			opts.LookupK = 3
			opts.ActivityThreshold = 10
		}
		start := time.Now()
		if _, err := ellipkmeans.Run(ds, opts); err != nil {
			return err
		}
		t.AddRow(name, i64(ctr.DistanceOps), i64(time.Since(start).Milliseconds()))
		return nil
	}
	if err := run("plain", false); err != nil {
		return nil, err
	}
	if err := run("lookup+activity", true); err != nil {
		return nil, err
	}
	return t, nil
}

// AblationNormalized probes Definition 3.2's claim directly: with the raw
// Mahalanobis quadratic form, a large-covariance cluster keeps absorbing
// points and overwhelms a small dense cluster sitting nearby; the
// normalized distance's volume penalty prevents it. The table reports how
// well elliptical k-means (K = 2) recovers a planted big/small cluster
// pair under each distance.
func AblationNormalized(cfg Config) (*Table, error) {
	c := cfg.withDefaults()
	// A large elongated cluster plus a small dense cluster inside its
	// Mahalanobis reach.
	big := datagen.ClusterSpec{
		Size: 3000, SDim: 2, SRDim: 0, VarianceR: 40, VarianceE: 2,
		Center: make([]float64, 8), Rotate: false,
	}
	smallCenter := make([]float64, 8)
	smallCenter[0] = 8 // well inside the big cluster's Mahalanobis reach
	smallCenter[2] = 2.5
	small := datagen.ClusterSpec{
		Size: 600, SDim: 2, SRDim: 2, VarianceR: 2, VarianceE: 0.2,
		Center: smallCenter, Rotate: false,
	}
	ds, labels, err := datagen.Correlated(8, []datagen.ClusterSpec{big, small}, c.Seed)
	if err != nil {
		return nil, err
	}

	t := &Table{
		Name:   "ablation-normalized",
		Title:  "elliptical k-means recovery of a big/small cluster pair: normalized vs raw Mahalanobis",
		Header: []string{"variant", "agreement", "small_cluster_size"},
	}
	for _, normalized := range []bool{true, false} {
		res, err := ellipkmeans.Run(ds, ellipkmeans.Options{
			K: 2, Seed: c.Seed, Normalized: normalized, Restarts: 3,
			Counter: c.Counter, Tracer: c.Tracer,
		})
		if err != nil {
			return nil, err
		}
		// Agreement up to label permutation.
		match, swap := 0, 0
		for i, l := range labels {
			if res.Assign[i] == l {
				match++
			} else {
				swap++
			}
		}
		if swap > match {
			match = swap
		}
		minSize := res.Sizes[0]
		if len(res.Sizes) > 1 && res.Sizes[1] < minSize {
			minSize = res.Sizes[1]
		}
		name := "raw"
		if normalized {
			name = "normalized"
		}
		t.AddRow(name, f2(float64(match)/float64(ds.N)), i64(int64(minSize)))
	}
	return t, nil
}

// AblationMultiLevel contrasts the multi-level GE recursion (s_dim doubling)
// against a flat single-level clustering at the initial s_dim: the
// recursion's ability to raise subspace dimensionality where needed is what
// keeps MPE bounded on higher-dimensional cluster structure.
func AblationMultiLevel(cfg Config) (*Table, error) {
	c := cfg.withDefaults()
	n, dim := c.sizes()
	// Clusters with 6 remained dims: a 2-d first level is insufficient.
	ds, err := synthetic(n, dim, 4, 6, 20, c.Seed)
	if err != nil {
		return nil, err
	}
	queries := datagen.SampleQueries(ds, c.NumQueries, 0.005, c.Seed+6)
	t := &Table{
		Name:   "ablation-multilevel",
		Title:  "MMDR precision: multi-level recursion vs flat clustering",
		Header: []string{"variant", "precision", "avg_dim", "outliers"},
	}
	for _, multi := range []bool{true, false} {
		params := core.Params{Seed: c.Seed, SDim: 2, Tracer: c.Tracer, Counter: c.Counter}
		if !multi {
			// Disabling the recursion: accept every semi-ellipsoid at the
			// first level by making the MPE gate vacuous.
			params.MaxMPE = 1e9
		}
		red, err := core.New(params).Reduce(ds)
		if err != nil {
			return nil, err
		}
		p := query.ReductionPrecision(ds, red, queries, c.K)
		st := red.Summarize()
		name := "flat"
		if multi {
			name = "multi-level"
		}
		t.AddRow(name, f2(p), f2(st.AvgDim), i64(int64(st.NumOutliers)))
	}
	return t, nil
}
