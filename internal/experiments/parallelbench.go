package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"reflect"
	"runtime"
	"time"

	"mmdr/internal/core"
	"mmdr/internal/idist"
	"mmdr/internal/pool"
)

// ParallelReport is the machine-readable output of the parallelism
// benchmark (BENCH_parallel.json): serial vs multi-worker build time,
// sequential-loop vs fused-batch query throughput on the same model, and a
// worker sweep of the batch engine. Build speedups scale with available
// cores — on a single-core machine they hover near 1 — while the batch
// speedup comes mostly from the fused kernels (one partition scan serving a
// whole query tile), which pay off even at one core. The report records
// GOMAXPROCS so readers can tell the two effects apart.
type ParallelReport struct {
	Env        EnvInfo `json:"env"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	Workers    int     `json:"workers"`
	Scale      string  `json:"scale"`
	N          int     `json:"n"`
	Dim        int     `json:"dim"`

	SerialBuildMS   float64 `json:"serial_build_ms"`
	ParallelBuildMS float64 `json:"parallel_build_ms"`
	BuildSpeedup    float64 `json:"build_speedup"`
	// ModelsIdentical records the determinism contract: the multi-worker
	// model must match the serial one bit for bit.
	ModelsIdentical bool `json:"models_identical"`

	Queries        int     `json:"queries"`
	K              int     `json:"k"`
	SeqQueriesPerS float64 `json:"sequential_queries_per_sec"`
	BatchQPS       float64 `json:"batch_queries_per_sec"`
	QuerySpeedup   float64 `json:"query_speedup"`

	// Sweep is the worker-sweep curve: the same batch workload at each
	// worker count, so the report separates the fused-kernel win (visible at
	// workers=1) from goroutine scaling (the curve's slope).
	Sweep []SweepPoint `json:"worker_sweep"`
}

// SweepPoint is one worker count of the batch-throughput sweep.
type SweepPoint struct {
	Workers      int     `json:"workers"`
	BatchQPS     float64 `json:"batch_queries_per_sec"`
	QuerySpeedup float64 `json:"query_speedup"` // vs the sequential loop
}

// sweepWorkers is the worker schedule of the batch sweep.
var sweepWorkers = []int{1, 2, 4, 8}

// ParallelBench measures the worker-pool layer end to end: one serial MMDR
// build, one at the requested parallelism (0 = all cores), an equality
// check between the two models, then the same KNN workload as a sequential
// loop and as one BatchKNN call over the extended iDistance index.
func ParallelBench(c Config, workers int) (*ParallelReport, error) {
	c = c.withDefaults()
	workers = pool.Workers(workers)
	n, dim := c.sizes()
	ds, err := synthetic(n, dim, 5, 3, 25, c.Seed)
	if err != nil {
		return nil, err
	}
	queries := make([][]float64, c.NumQueries)
	for i := range queries {
		queries[i] = ds.Point((i * 37) % ds.N)
	}

	params := core.Params{Seed: c.Seed, Tracer: c.Tracer, Counter: c.Counter}

	params.Parallelism = 1
	t0 := time.Now()
	serialRed, err := core.New(params).Reduce(ds)
	if err != nil {
		return nil, err
	}
	serialMS := float64(time.Since(t0).Microseconds()) / 1000

	params.Parallelism = workers
	t0 = time.Now()
	parallelRed, err := core.New(params).Reduce(ds)
	if err != nil {
		return nil, err
	}
	parallelMS := float64(time.Since(t0).Microseconds()) / 1000

	idx, err := idist.Build(ds, parallelRed, idist.Options{})
	if err != nil {
		return nil, err
	}

	// One untimed pass warms caches; several timed rounds smooth out
	// scheduling noise on small workloads.
	for _, q := range queries {
		idx.KNN(q, c.K)
	}
	rounds := 1
	if c.NumQueries < 500 {
		rounds = 500/c.NumQueries + 1
	}
	t0 = time.Now()
	for r := 0; r < rounds; r++ {
		for _, q := range queries {
			idx.KNN(q, c.K)
		}
	}
	seqSecs := time.Since(t0).Seconds()

	t0 = time.Now()
	for r := 0; r < rounds; r++ {
		idx.BatchKNN(queries, c.K, workers)
	}
	batchSecs := time.Since(t0).Seconds()
	totalQueries := float64(c.NumQueries * rounds)

	sweep := make([]SweepPoint, 0, len(sweepWorkers))
	for _, w := range sweepWorkers {
		idx.BatchKNN(queries, c.K, w) // warm this worker count
		t0 = time.Now()
		for r := 0; r < rounds; r++ {
			idx.BatchKNN(queries, c.K, w)
		}
		secs := time.Since(t0).Seconds()
		pt := SweepPoint{Workers: w}
		if secs > 0 {
			pt.BatchQPS = totalQueries / secs
		}
		if secs > 0 && seqSecs > 0 {
			pt.QuerySpeedup = seqSecs / secs
		}
		sweep = append(sweep, pt)
	}

	rep := &ParallelReport{
		Env:             CollectEnv(),
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
		Workers:         workers,
		Scale:           string(c.Scale),
		N:               n,
		Dim:             dim,
		SerialBuildMS:   serialMS,
		ParallelBuildMS: parallelMS,
		ModelsIdentical: reflect.DeepEqual(serialRed, parallelRed),
		Queries:         c.NumQueries,
		K:               c.K,
		Sweep:           sweep,
	}
	if parallelMS > 0 {
		rep.BuildSpeedup = serialMS / parallelMS
	}
	if seqSecs > 0 {
		rep.SeqQueriesPerS = totalQueries / seqSecs
	}
	if batchSecs > 0 {
		rep.BatchQPS = totalQueries / batchSecs
	}
	if batchSecs > 0 && seqSecs > 0 {
		rep.QuerySpeedup = seqSecs / batchSecs
	}
	if !rep.ModelsIdentical {
		return rep, fmt.Errorf("experiments: parallel model diverged from serial build")
	}
	return rep, nil
}

// WriteJSON writes the report as indented JSON.
func (r *ParallelReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Table renders the report in the experiment-table shape for the CLI.
func (r *ParallelReport) Table() *Table {
	t := &Table{
		Name:   "parallel",
		Title:  fmt.Sprintf("parallel build + batch queries (workers=%d, GOMAXPROCS=%d)", r.Workers, r.GOMAXPROCS),
		Header: []string{"metric", "serial", "parallel", "speedup"},
	}
	t.AddRow("build ms", f2(r.SerialBuildMS), f2(r.ParallelBuildMS), f2(r.BuildSpeedup))
	t.AddRow("queries/s", f2(r.SeqQueriesPerS), f2(r.BatchQPS), f2(r.QuerySpeedup))
	for _, p := range r.Sweep {
		t.AddRow(fmt.Sprintf("batch q/s @%dw", p.Workers), f2(r.SeqQueriesPerS), f2(p.BatchQPS), f2(p.QuerySpeedup))
	}
	ident := "false"
	if r.ModelsIdentical {
		ident = "true"
	}
	t.AddRow("models identical", ident, ident, "")
	return t
}

// runParallelBench adapts ParallelBench to the registry's Runner shape,
// using all cores.
func runParallelBench(c Config) (*Table, error) {
	rep, err := ParallelBench(c, c.Parallelism)
	if err != nil {
		return nil, err
	}
	return rep.Table(), nil
}

func init() { registry["parallel"] = runParallelBench }
