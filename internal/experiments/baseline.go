package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Baseline regression checker (`mmdrbench -check-baseline`): runs a fresh
// bench-smoke (at the configured scale, normally small) and diffs it
// against the committed BENCH_query.json / BENCH_approx.json. The committed
// reports are paper-scale and machine-specific, so raw nanoseconds are NOT
// compared; the checker holds the fields that are portable across scales
// and machines, each with a stated tolerance:
//
//   - correctness gates (oracle_bit_identical, full_budget_bit_identical):
//     no tolerance — a fresh run must pass them outright;
//   - steady-state allocations per query: committed + allocSlack — the
//     scratch pools make these near-zero at every scale, so growth is a
//     pooling regression, not noise;
//   - speedup ratios: a fresh speedup may be noisy, but it must stay above
//     collapseFraction of the committed ratio (and an absolute floor) —
//     this catches the kernel path silently degrading to the reference
//     path, not single-digit-percent drift;
//   - report shape: the approx frontier must cover the committed
//     (code bytes, budget) grid and both reports must carry non-empty
//     gate_fixes sections.
//
// A regression makes the process exit non-zero; CI runs the check as a
// non-blocking report step (continue-on-error), so the signal is a red
// annotation, not a broken build, until a human confirms it on quiet
// hardware.

const (
	// baselineAllocSlack is the absolute allocs-per-query headroom over the
	// committed report before the checker calls it a pooling regression.
	baselineAllocSlack = 2.0
	// baselineCollapseFraction: a fresh speedup below this fraction of the
	// committed speedup is a collapse, not noise.
	baselineCollapseFraction = 0.25
	// baselineSpeedupFloor is the absolute floor under every checked
	// speedup ratio: whatever the committed number was, the kernel path
	// must not measure slower than 0.8x its reference on a fresh run.
	baselineSpeedupFloor = 0.8
)

// CheckBaseline runs fresh query/approx benchmarks and diffs them against
// the committed reports in dir, writing one line per check to w. It
// returns the number of regressions (0 means the baseline holds).
func CheckBaseline(c Config, dir string, w io.Writer) (int, error) {
	var committedQ QueryReport
	if err := readBenchJSON(filepath.Join(dir, "BENCH_query.json"), &committedQ); err != nil {
		return 0, err
	}
	var committedA ApproxReport
	if err := readBenchJSON(filepath.Join(dir, "BENCH_approx.json"), &committedA); err != nil {
		return 0, err
	}

	bad, total := 0, 0
	check := func(ok bool, format string, args ...any) {
		total++
		status := "ok        "
		if !ok {
			status = "REGRESSION"
			bad++
		}
		fmt.Fprintf(w, "%s %s\n", status, fmt.Sprintf(format, args...))
	}

	freshQ, err := QueryBench(c)
	if freshQ == nil && err != nil {
		return 0, fmt.Errorf("fresh query bench: %w", err)
	}
	check(err == nil && freshQ.OracleBitIdentical,
		"query: oracle bit-identical (no tolerance)")
	check(freshQ.KernelKNNAllocsPerQuery <= committedQ.KernelKNNAllocsPerQuery+baselineAllocSlack,
		"query: kernel KNN allocs/query %.2f <= committed %.2f + %.0f",
		freshQ.KernelKNNAllocsPerQuery, committedQ.KernelKNNAllocsPerQuery, baselineAllocSlack)
	check(freshQ.BatchKNNAllocsPerQry <= committedQ.BatchKNNAllocsPerQry+baselineAllocSlack,
		"query: batch KNN allocs/query %.2f <= committed %.2f + %.0f",
		freshQ.BatchKNNAllocsPerQry, committedQ.BatchKNNAllocsPerQry, baselineAllocSlack)
	knnFloor := speedupFloor(committedQ.KNNSpeedup)
	check(freshQ.KNNSpeedup >= knnFloor,
		"query: KNN speedup %.2fx >= floor %.2fx (max(%.1f, %.0f%% of committed %.2fx))",
		freshQ.KNNSpeedup, knnFloor, baselineSpeedupFloor, 100*baselineCollapseFraction, committedQ.KNNSpeedup)
	rangeFloor := speedupFloor(committedQ.RangeSpeedup)
	check(freshQ.RangeSpeedup >= rangeFloor,
		"query: Range speedup %.2fx >= floor %.2fx",
		freshQ.RangeSpeedup, rangeFloor)
	check(len(freshQ.GateFixes) > 0,
		"query: gate_fixes section present (%d rows)", len(freshQ.GateFixes))

	freshA, err := ApproxBench(c)
	if freshA == nil && err != nil {
		return 0, fmt.Errorf("fresh approx bench: %w", err)
	}
	check(err == nil && freshA.FullBudgetBitIdentical,
		"approx: full-budget quantized path bit-identical (no tolerance)")
	grid := make(map[[2]int]bool, len(freshA.Frontier))
	for _, p := range freshA.Frontier {
		grid[[2]int{p.Blocks, p.Budget}] = true
	}
	missing := 0
	for _, p := range committedA.Frontier {
		if !grid[[2]int{p.Blocks, p.Budget}] {
			missing++
		}
	}
	check(missing == 0,
		"approx: frontier covers the committed (blocks, budget) grid (%d committed points, %d missing)",
		len(committedA.Frontier), missing)
	check(len(freshA.GateFixes) > 0,
		"approx: gate_fixes section present (%d rows)", len(freshA.GateFixes))

	fmt.Fprintf(w, "%d check(s), %d regression(s)\n", total, bad)
	return bad, nil
}

func speedupFloor(committed float64) float64 {
	f := baselineCollapseFraction * committed
	if f < baselineSpeedupFloor {
		f = baselineSpeedupFloor
	}
	return f
}

func readBenchJSON(path string, v any) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("committed baseline: %w", err)
	}
	if err := json.Unmarshal(b, v); err != nil {
		return fmt.Errorf("committed baseline %s: %w", path, err)
	}
	return nil
}
