package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"runtime"
	"time"

	"mmdr/internal/core"
	"mmdr/internal/idist"
	"mmdr/internal/index"
)

// QueryReport is the machine-readable output of the query-kernel benchmark
// (BENCH_query.json). Both columns are measured in the same process on the
// same index: "baseline" is the frozen pre-kernel query path
// (ReferenceKNN/ReferenceRange — fresh per-query buffers, sqrt per
// candidate), "kernel" is the live path (transposed-basis projection,
// squared-distance pruning with early abandoning, pooled scratch). The
// baseline is kept in-tree precisely so this comparison stays honest: same
// machine, same data, same tree.
type QueryReport struct {
	Env        EnvInfo `json:"env"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	Scale      string  `json:"scale"`
	N          int     `json:"n"`
	Dim        int     `json:"dim"`
	Queries    int     `json:"queries"`
	K          int     `json:"k"`
	Radius     float64 `json:"range_radius"`

	BaselineKNNNsPerQuery     float64 `json:"baseline_knn_ns_per_query"`
	KernelKNNNsPerQuery       float64 `json:"kernel_knn_ns_per_query"`
	KNNSpeedup                float64 `json:"knn_speedup"`
	BaselineKNNQPS            float64 `json:"baseline_knn_qps"`
	KernelKNNQPS              float64 `json:"kernel_knn_qps"`
	BaselineKNNAllocsPerQuery float64 `json:"baseline_knn_allocs_per_query"`
	KernelKNNAllocsPerQuery   float64 `json:"kernel_knn_allocs_per_query"`

	BaselineRangeNsPerQuery     float64 `json:"baseline_range_ns_per_query"`
	KernelRangeNsPerQuery       float64 `json:"kernel_range_ns_per_query"`
	RangeSpeedup                float64 `json:"range_speedup"`
	BaselineRangeAllocsPerQuery float64 `json:"baseline_range_allocs_per_query"`
	KernelRangeAllocsPerQuery   float64 `json:"kernel_range_allocs_per_query"`

	// Fused multi-query batch path (BatchKNN at workers=1, so the speedup is
	// pure kernel fusion — one partition scan serving a tile of BatchTile
	// queries — with no goroutine parallelism mixed in).
	BatchTile            int     `json:"batch_tile"`
	BatchKNNNsPerQuery   float64 `json:"batch_knn_ns_per_query"`
	BatchKNNQPS          float64 `json:"batch_knn_qps"`
	BatchKNNSpeedup      float64 `json:"batch_knn_speedup"` // vs the kernel single-query path
	BatchKNNAllocsPerQry float64 `json:"batch_knn_allocs_per_query"`

	// OracleBitIdentical records the correctness gate: kernel KNN and Range
	// answers equal the sequential-scan oracle bit for bit on every probe.
	OracleBitIdentical bool `json:"oracle_bit_identical"`

	// GateFixes are the before/after micro-benchmarks of the exact-path
	// kernel rewrites forced by the mmdrgate compiler-contract gate
	// (frozen pre-gate loop shapes vs the live kernels; see gatefix.go).
	GateFixes []GateFixMeasurement `json:"gate_fixes,omitempty"`
}

// measureQueries times fn over the query set and reports (ns/query,
// allocs/query) from wall clock and runtime malloc counters.
func measureQueries(queries [][]float64, rounds int, fn func(q []float64)) (nsPerQ, allocsPerQ float64) {
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	t0 := time.Now()
	for r := 0; r < rounds; r++ {
		for _, q := range queries {
			fn(q)
		}
	}
	elapsed := time.Since(t0)
	runtime.ReadMemStats(&ms1)
	total := float64(len(queries) * rounds)
	return float64(elapsed.Nanoseconds()) / total, float64(ms1.Mallocs-ms0.Mallocs) / total
}

// QueryBench builds one MMDR model + extended iDistance index at the
// configured scale and races the kernelized query path against the frozen
// pre-kernel baseline, gating the numbers on bitwise agreement with the
// sequential-scan oracle.
func QueryBench(c Config) (*QueryReport, error) {
	c = c.withDefaults()
	n, dim := c.sizes()
	ds, err := synthetic(n, dim, 5, 3, 25, c.Seed)
	if err != nil {
		return nil, err
	}
	red, err := core.New(core.Params{Seed: c.Seed, Tracer: c.Tracer, Counter: c.Counter, Parallelism: c.Parallelism}).Reduce(ds)
	if err != nil {
		return nil, err
	}
	idx, err := idist.Build(ds, red, idist.Options{})
	if err != nil {
		return nil, err
	}
	scan := index.NewSeqScan(ds, red, nil)

	queries := make([][]float64, c.NumQueries)
	for i := range queries {
		queries[i] = ds.Point((i * 37) % ds.N)
	}
	const radius = 0.4 // normalized data: small, non-empty neighborhoods

	// Correctness gate before any timing: the kernel path must match the
	// sequential-scan oracle bitwise on a sample of the workload.
	rep := &QueryReport{
		Env:        CollectEnv(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Scale:      string(c.Scale),
		N:          n,
		Dim:        dim,
		Queries:    c.NumQueries,
		K:          c.K,
		Radius:     radius,
	}
	rep.OracleBitIdentical = true
	probes := len(queries)
	if probes > 25 {
		probes = 25
	}
	for _, q := range queries[:probes] {
		if !neighborsEqual(idx.KNN(q, c.K), scan.KNN(q, c.K)) ||
			!neighborsEqual(idx.Range(q, radius), scan.Range(q, radius)) {
			rep.OracleBitIdentical = false
		}
	}
	// The fused batch path is held to the same gate: batch answers must
	// equal the solo kernel path bitwise on the probe sample.
	for qi, res := range idx.BatchKNN(queries[:probes], c.K, 1) {
		if !neighborsEqual(res, idx.KNN(queries[qi], c.K)) {
			rep.OracleBitIdentical = false
		}
	}

	// Warm both paths, then time them over identical rounds.
	for _, q := range queries {
		idx.KNN(q, c.K)
		idx.ReferenceKNN(q, c.K)
	}
	rounds := 1
	if c.NumQueries < 500 {
		rounds = 500/c.NumQueries + 1
	}
	rep.BaselineKNNNsPerQuery, rep.BaselineKNNAllocsPerQuery =
		measureQueries(queries, rounds, func(q []float64) { idx.ReferenceKNN(q, c.K) })
	rep.KernelKNNNsPerQuery, rep.KernelKNNAllocsPerQuery =
		measureQueries(queries, rounds, func(q []float64) { idx.KNN(q, c.K) })
	rep.BaselineRangeNsPerQuery, rep.BaselineRangeAllocsPerQuery =
		measureQueries(queries, rounds, func(q []float64) { idx.ReferenceRange(q, radius) })
	rep.KernelRangeNsPerQuery, rep.KernelRangeAllocsPerQuery =
		measureQueries(queries, rounds, func(q []float64) { idx.Range(q, radius) })

	// Fused batch at workers=1: same total queries per round, one BatchKNN
	// call each, so the comparison against the kernel single-query numbers
	// isolates the tile-fusion win from goroutine scaling.
	rep.BatchTile = idist.BatchTile()
	idx.BatchKNN(queries, c.K, 1) // warm the batch scratch pool
	{
		var ms0, ms1 runtime.MemStats
		runtime.ReadMemStats(&ms0)
		t0 := time.Now()
		for r := 0; r < rounds; r++ {
			idx.BatchKNN(queries, c.K, 1)
		}
		elapsed := time.Since(t0)
		runtime.ReadMemStats(&ms1)
		total := float64(len(queries) * rounds)
		rep.BatchKNNNsPerQuery = float64(elapsed.Nanoseconds()) / total
		rep.BatchKNNAllocsPerQry = float64(ms1.Mallocs-ms0.Mallocs) / total
	}

	if rep.KernelKNNNsPerQuery > 0 {
		rep.KNNSpeedup = rep.BaselineKNNNsPerQuery / rep.KernelKNNNsPerQuery
		rep.KernelKNNQPS = 1e9 / rep.KernelKNNNsPerQuery
	}
	if rep.BaselineKNNNsPerQuery > 0 {
		rep.BaselineKNNQPS = 1e9 / rep.BaselineKNNNsPerQuery
	}
	if rep.KernelRangeNsPerQuery > 0 {
		rep.RangeSpeedup = rep.BaselineRangeNsPerQuery / rep.KernelRangeNsPerQuery
	}
	if rep.BatchKNNNsPerQuery > 0 {
		rep.BatchKNNQPS = 1e9 / rep.BatchKNNNsPerQuery
		rep.BatchKNNSpeedup = rep.KernelKNNNsPerQuery / rep.BatchKNNNsPerQuery
	}
	if !rep.OracleBitIdentical {
		return rep, fmt.Errorf("experiments: kernel query path diverged from sequential-scan oracle")
	}
	rep.GateFixes = GateFixExactMeasurements()
	return rep, nil
}

func neighborsEqual(a, b []index.Neighbor) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		// Bit-level distance comparison: this IS the parity probe, so spell
		// the bitwise intent explicitly instead of a raw float !=.
		if a[i].ID != b[i].ID || math.Float64bits(a[i].Dist) != math.Float64bits(b[i].Dist) {
			return false
		}
	}
	return true
}

// WriteJSON writes the report as indented JSON.
func (r *QueryReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Table renders the report in the experiment-table shape for the CLI.
func (r *QueryReport) Table() *Table {
	t := &Table{
		Name:   "query",
		Title:  fmt.Sprintf("query kernels vs pre-kernel baseline (n=%d, d=%d, k=%d)", r.N, r.Dim, r.K),
		Header: []string{"metric", "baseline", "kernel", "improvement"},
	}
	t.AddRow("KNN ns/query", f2(r.BaselineKNNNsPerQuery), f2(r.KernelKNNNsPerQuery), f2(r.KNNSpeedup)+"x")
	t.AddRow("KNN allocs/query", f2(r.BaselineKNNAllocsPerQuery), f2(r.KernelKNNAllocsPerQuery), "")
	t.AddRow("Range ns/query", f2(r.BaselineRangeNsPerQuery), f2(r.KernelRangeNsPerQuery), f2(r.RangeSpeedup)+"x")
	t.AddRow("Range allocs/query", f2(r.BaselineRangeAllocsPerQuery), f2(r.KernelRangeAllocsPerQuery), "")
	t.AddRow(fmt.Sprintf("Batch KNN ns/query (tile=%d)", r.BatchTile),
		f2(r.KernelKNNNsPerQuery), f2(r.BatchKNNNsPerQuery), f2(r.BatchKNNSpeedup)+"x")
	t.AddRow("Batch KNN allocs/query", f2(r.KernelKNNAllocsPerQuery), f2(r.BatchKNNAllocsPerQry), "")
	ident := "false"
	if r.OracleBitIdentical {
		ident = "true"
	}
	t.AddRow("oracle bit-identical", ident, ident, "")
	return t
}

// runQueryBench adapts QueryBench to the registry's Runner shape.
func runQueryBench(c Config) (*Table, error) {
	rep, err := QueryBench(c)
	if err != nil {
		return nil, err
	}
	return rep.Table(), nil
}

func init() { registry["query"] = runQueryBench }
