package experiments

import (
	"bytes"
	"encoding/json"
	"runtime"
	"strings"
	"testing"
)

func TestCollectEnv(t *testing.T) {
	e := CollectEnv()
	if e.GoVersion == "" || e.GOOS == "" || e.GOARCH == "" {
		t.Fatalf("env not populated: %+v", e)
	}
	if e.GOMAXPROCS != runtime.GOMAXPROCS(0) || e.NumCPU != runtime.NumCPU() {
		t.Errorf("cpu fields wrong: %+v", e)
	}
}

func TestObsBenchSmall(t *testing.T) {
	rep, err := ObsBench(Config{Scale: Small, Seed: 5, NumQueries: 30})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OffNsPerQuery <= 0 || rep.OnNsPerQuery <= 0 {
		t.Fatalf("timings not measured: %+v", rep)
	}
	if rep.OnAllocsPerQuery > rep.OffAllocsPerQuery+0.5 {
		t.Errorf("instrumentation allocates: off=%.2f on=%.2f allocs/query",
			rep.OffAllocsPerQuery, rep.OnAllocsPerQuery)
	}
	if rep.Env.GoVersion == "" {
		t.Error("report missing env stamp")
	}
	var knn bool
	for _, o := range rep.Metrics.Ops {
		if o.Name == "knn" && o.Count > 0 && o.P99US >= o.P50US {
			knn = true
		}
	}
	if !knn {
		t.Errorf("snapshot missing knn distribution: %+v", rep.Metrics.Ops)
	}
	var sawPhase bool
	for _, o := range rep.Metrics.Ops {
		if strings.HasPrefix(o.Name, "build:") {
			sawPhase = true
		}
	}
	if !sawPhase {
		t.Error("snapshot missing build:<phase> ops")
	}

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back ObsReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report JSON does not round-trip: %v", err)
	}
	if back.N != rep.N || len(back.Metrics.Ops) != len(rep.Metrics.Ops) {
		t.Error("round-trip lost fields")
	}

	tbl := rep.Table()
	if tbl.Name != "obs" || len(tbl.Rows) == 0 {
		t.Error("Table rendering empty")
	}
}

func TestObsRunnerRegistered(t *testing.T) {
	found := false
	for _, n := range Names() {
		if n == "obs" {
			found = true
		}
	}
	if !found {
		t.Fatal("obs runner not registered")
	}
}
