package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"time"
)

// SpanAttr is one named value attached to a span.
type SpanAttr struct {
	Key   string
	Value float64
}

// Span is one recorded phase: its duration, attributes and nested children.
type Span struct {
	Phase    Phase
	Start    time.Time
	Dur      time.Duration
	Attrs    []SpanAttr
	Children []*Span
}

// Find returns the first descendant (depth-first, including s itself) with
// the given phase, or nil.
func (s *Span) Find(p Phase) *Span {
	if s == nil {
		return nil
	}
	if s.Phase == p {
		return s
	}
	for _, c := range s.Children {
		if hit := c.Find(p); hit != nil {
			return hit
		}
	}
	return nil
}

// AttrValue returns the named attribute's value (ok=false when absent).
func (s *Span) AttrValue(key string) (float64, bool) {
	for _, a := range s.Attrs {
		if a.Key == key {
			return a.Value, true
		}
	}
	return 0, false
}

// Collector is a Tracer that records the span tree with wall-clock
// durations. It is safe for concurrent use, though spans emitted from
// different goroutines interleave on one stack — give each concurrent unit
// of work its own Collector when the tree structure matters.
type Collector struct {
	mu    sync.Mutex
	roots []*Span
	stack []*Span
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// Begin implements Tracer.
func (c *Collector) Begin(p Phase) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := &Span{Phase: p, Start: time.Now()}
	if n := len(c.stack); n > 0 {
		parent := c.stack[n-1]
		parent.Children = append(parent.Children, s)
	} else {
		c.roots = append(c.roots, s)
	}
	c.stack = append(c.stack, s)
}

// Attr implements Tracer.
func (c *Collector) Attr(key string, value float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n := len(c.stack); n > 0 {
		top := c.stack[n-1]
		top.Attrs = append(top.Attrs, SpanAttr{Key: key, Value: value})
	}
}

// End implements Tracer.
func (c *Collector) End() {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := len(c.stack)
	if n == 0 {
		return
	}
	top := c.stack[n-1]
	top.Dur = time.Since(top.Start)
	c.stack = c.stack[:n-1]
}

// Spans returns the completed top-level spans. Spans still open keep a zero
// duration.
func (c *Collector) Spans() []*Span {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*Span(nil), c.roots...)
}

// Reset discards all recorded spans.
func (c *Collector) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.roots, c.stack = nil, nil
}

// attrString renders attributes as "k=v" pairs; integers print without a
// decimal point.
func attrString(attrs []SpanAttr) string {
	if len(attrs) == 0 {
		return ""
	}
	parts := make([]string, len(attrs))
	for i, a := range attrs {
		//mmdr:ignore floatcmp formatting-only integrality probe; exact round-trip through int64 is the intended test and affects rendering, not numerics
		if a.Value == float64(int64(a.Value)) {
			parts[i] = a.Key + "=" + strconv.FormatInt(int64(a.Value), 10)
		} else {
			parts[i] = a.Key + "=" + strconv.FormatFloat(a.Value, 'g', 4, 64)
		}
	}
	return strings.Join(parts, " ")
}

// WriteTree renders the recorded spans as an indented phase tree:
//
//	reduce                                 182ms
//	├─ generate-ellipsoid                  102ms  sdim=2 points=12000
//	│  ├─ cluster                           88ms  k=10
//	...
func (c *Collector) WriteTree(w io.Writer) error {
	for _, root := range c.Spans() {
		if err := writeSpan(w, root, "", ""); err != nil {
			return err
		}
	}
	return nil
}

func writeSpan(w io.Writer, s *Span, prefix, childPrefix string) error {
	label := prefix + string(s.Phase)
	line := fmt.Sprintf("%-44s %9s", label, s.Dur.Round(time.Microsecond))
	if as := attrString(s.Attrs); as != "" {
		line += "  " + as
	}
	if _, err := fmt.Fprintln(w, strings.TrimRight(line, " ")); err != nil {
		return err
	}
	for i, child := range s.Children {
		connector, next := "├─ ", "│  "
		if i == len(s.Children)-1 {
			connector, next = "└─ ", "   "
		}
		if err := writeSpan(w, child, childPrefix+connector, childPrefix+next); err != nil {
			return err
		}
	}
	return nil
}

// jsonSpan is the export shape of a span.
type jsonSpan struct {
	Phase    Phase              `json:"phase"`
	Start    time.Time          `json:"start"`
	Micros   int64              `json:"micros"`
	Attrs    map[string]float64 `json:"attrs,omitempty"`
	Children []jsonSpan         `json:"children,omitempty"`
}

func toJSONSpan(s *Span) jsonSpan {
	out := jsonSpan{Phase: s.Phase, Start: s.Start, Micros: s.Dur.Microseconds()}
	if len(s.Attrs) > 0 {
		out.Attrs = make(map[string]float64, len(s.Attrs))
		for _, a := range s.Attrs {
			out.Attrs[a.Key] = a.Value
		}
	}
	for _, c := range s.Children {
		out.Children = append(out.Children, toJSONSpan(c))
	}
	return out
}

// MarshalJSON exports the span tree as nested objects with microsecond
// durations, for snapshot files and dashboards.
func (c *Collector) MarshalJSON() ([]byte, error) {
	roots := c.Spans()
	out := make([]jsonSpan, len(roots))
	for i, r := range roots {
		out[i] = toJSONSpan(r)
	}
	return json.Marshal(out)
}
