package obs_test

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"mmdr/internal/metrics"
	"mmdr/internal/obs"
	"mmdr/internal/verify"
)

// get fetches url and returns the status and body.
func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

// TestDebugServerDedicatedMux verifies the debug server serves pprof,
// expvar and extra routes from its own mux — and that none of them leak
// onto the process-global default mux.
func TestDebugServerDedicatedMux(t *testing.T) {
	checkLeaks := verify.Leak(t)
	defer func() {
		http.DefaultClient.CloseIdleConnections()
		checkLeaks()
	}()
	reg := metrics.NewRegistry()
	reg.Op("knn").Record(42 * time.Microsecond)
	obs.Publish("debug_test_var", func() any { return map[string]int{"x": 7} })

	srv, err := obs.StartDebugServer("127.0.0.1:0",
		obs.Route{Path: "/metrics", Handler: metrics.Handler(reg)})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr().String()

	status, body := get(t, base+"/debug/vars")
	if status != http.StatusOK {
		t.Fatalf("/debug/vars status %d", status)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	if _, ok := vars["debug_test_var"]; !ok {
		t.Error("/debug/vars missing published var")
	}

	status, body = get(t, base+"/debug/pprof/")
	if status != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ status %d, body missing profile index", status)
	}
	status, _ = get(t, base+"/debug/pprof/cmdline")
	if status != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline status %d", status)
	}

	status, body = get(t, base+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("/metrics status %d", status)
	}
	if !strings.Contains(body, `mmdr_op_latency_seconds_count{op="knn"} 1`) {
		t.Errorf("/metrics missing op histogram:\n%s", body)
	}

	// The global default mux must not have been touched: a second server
	// with no extra routes must 404 on /metrics.
	srv2, err := obs.StartDebugServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	status, _ = get(t, "http://"+srv2.Addr().String()+"/metrics")
	if status != http.StatusNotFound {
		t.Errorf("bare debug server serves /metrics (status %d); routes leaked across muxes", status)
	}
}

// TestDebugServerClose verifies Close releases the listener — the port
// stops accepting, a nil receiver is tolerated — and reaps the accept
// goroutine: the leak check fails if Close leaves the Serve goroutine (or
// any handler) behind.
func TestDebugServerClose(t *testing.T) {
	checkLeaks := verify.Leak(t)
	defer func() {
		http.DefaultClient.CloseIdleConnections()
		checkLeaks()
	}()
	srv, err := obs.StartDebugServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr().String()
	if _, body := get(t, "http://"+addr+"/debug/vars"); body == "" {
		t.Fatal("server not serving before Close")
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	client := http.Client{Timeout: 500 * time.Millisecond}
	if _, err := client.Get("http://" + addr + "/debug/vars"); err == nil {
		t.Error("server still serving after Close")
	}
	var nilSrv *obs.DebugServer
	if err := nilSrv.Close(); err != nil {
		t.Errorf("nil Close: %v", err)
	}
}
