package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// Route is an extra handler mounted on the debug server. It exists so
// higher layers can attach their own endpoints (the metrics package mounts
// its Prometheus exposition at /metrics) without obs importing them —
// dependencies point at obs, never out of it.
type Route struct {
	Path    string
	Handler http.Handler
}

// DebugServer is a running debug HTTP server bound to its own mux — the
// process-global http.DefaultServeMux is never touched, so tests and
// embedding applications keep their mux clean and multiple servers can
// coexist in one process.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
	wg  sync.WaitGroup // reaps the Serve goroutine: Close returns only after it exited
}

// StartDebugServer serves the Go debug endpoints — /debug/pprof/* (CPU,
// heap, goroutine profiles) and /debug/vars (expvar, including counters
// published via Publish) — plus any extra routes, on addr (e.g.
// "localhost:6060"). Pass ":0" for an ephemeral port and read it back from
// Addr. The caller owns the returned server and should Close it when done;
// both CLIs expose the server behind a -pprof flag so production-sized runs
// can be profiled in flight.
func StartDebugServer(addr string, extra ...Route) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	// Explicit pprof routes: the blank net/http/pprof import only registers
	// on the default mux, which this server deliberately does not use.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	for _, r := range extra {
		mux.Handle(r.Path, r.Handler)
	}
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	s := &DebugServer{ln: ln, srv: srv}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		srv.Serve(ln) //nolint:errcheck — best-effort debug endpoint, returns on Close
	}()
	return s, nil
}

// Addr returns the bound address, useful when StartDebugServer was given an
// ephemeral port request.
func (s *DebugServer) Addr() net.Addr { return s.ln.Addr() }

// Close stops the server, releases the listener, and waits for the accept
// goroutine to exit — after Close returns, the server has left no
// goroutines behind (the contract internal/verify.Leak holds the tests
// to). Safe to call on a nil receiver so CLI shutdown paths need no
// started-or-not branching.
func (s *DebugServer) Close() error {
	if s == nil {
		return nil
	}
	err := s.srv.Close()
	s.wg.Wait()
	return err
}

// Publish registers f under name in the process's expvar registry, shown at
// /debug/vars. Unlike expvar.Publish it tolerates re-registration (the
// first registration wins), so CLI entry points can be re-run in tests.
func Publish(name string, f func() any) {
	if expvar.Get(name) == nil {
		expvar.Publish(name, expvar.Func(f))
	}
}
