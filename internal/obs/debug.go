package obs

import (
	"expvar"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on the default mux
)

// StartDebugServer serves the Go debug endpoints — /debug/pprof/* (CPU,
// heap, goroutine profiles) and /debug/vars (expvar, including counters
// published via Publish) — on addr (e.g. "localhost:6060"). It returns the
// bound address, useful when addr requests an ephemeral port (":0"). The
// server runs until the process exits; both CLIs expose it behind a -pprof
// flag so production-sized runs can be profiled in flight.
func StartDebugServer(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go http.Serve(ln, nil) //nolint:errcheck — best-effort debug endpoint
	return ln.Addr(), nil
}

// Publish registers f under name in the process's expvar registry, shown at
// /debug/vars. Unlike expvar.Publish it tolerates re-registration (the
// first registration wins), so CLI entry points can be re-run in tests.
func Publish(name string, f func() any) {
	if expvar.Get(name) == nil {
		expvar.Publish(name, expvar.Func(f))
	}
}
