package obs

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestCollectorTree(t *testing.T) {
	c := NewCollector()
	Begin(c, PhaseReduce)
	Begin(c, PhaseGenerate)
	Attr(c, "sdim", 2)
	Attr(c, "points", 100)
	Begin(c, PhaseCluster)
	End(c)
	End(c)
	Begin(c, PhaseDimOpt)
	Attr(c, "evicted", 3.5)
	End(c)
	End(c)

	roots := c.Spans()
	if len(roots) != 1 {
		t.Fatalf("got %d roots, want 1", len(roots))
	}
	root := roots[0]
	if root.Phase != PhaseReduce {
		t.Fatalf("root phase = %q", root.Phase)
	}
	if len(root.Children) != 2 {
		t.Fatalf("root has %d children, want 2", len(root.Children))
	}
	ge := root.Find(PhaseGenerate)
	if ge == nil {
		t.Fatal("generate-ellipsoid span not found")
	}
	if v, ok := ge.AttrValue("sdim"); !ok || v != 2 {
		t.Fatalf("sdim attr = %v, %v", v, ok)
	}
	if ge.Find(PhaseCluster) == nil {
		t.Fatal("cluster span not nested under generate-ellipsoid")
	}
	if root.Dur <= 0 {
		t.Fatal("completed root span has zero duration")
	}
}

func TestCollectorUnbalancedEndIgnored(t *testing.T) {
	c := NewCollector()
	End(c) // must not panic
	Attr(c, "orphan", 1)
	Begin(c, PhaseReduce)
	End(c)
	if n := len(c.Spans()); n != 1 {
		t.Fatalf("got %d roots, want 1", n)
	}
}

// TestNilTracerZeroAllocs is the disabled-path contract: emitting through a
// nil tracer must not allocate — tracing off means the obs layer costs a nil
// check and nothing more.
func TestNilTracerZeroAllocs(t *testing.T) {
	var tr Tracer // nil: tracing disabled
	allocs := testing.AllocsPerRun(1000, func() {
		Begin(tr, PhaseCluster)
		Attr(tr, "reassigned", 17)
		Attr(tr, "hit_rate", 0.93)
		End(tr)
	})
	if allocs != 0 {
		t.Fatalf("nil tracer path allocates %.1f allocs/op, want 0", allocs)
	}
}

func BenchmarkNilTracer(b *testing.B) {
	var tr Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Begin(tr, PhaseCluster)
		Attr(tr, "reassigned", float64(i))
		End(tr)
	}
}

func TestMulti(t *testing.T) {
	if Multi(nil, nil) != nil {
		t.Fatal("Multi of nils should be nil")
	}
	c := NewCollector()
	if Multi(nil, c) != Tracer(c) {
		t.Fatal("Multi with one live tracer should return it unchanged")
	}
	c2 := NewCollector()
	m := Multi(c, c2)
	Begin(m, PhaseReduce)
	Attr(m, "n", 1)
	End(m)
	if len(c.Spans()) != 1 || len(c2.Spans()) != 1 {
		t.Fatal("multi did not fan out to both collectors")
	}
}

func TestOnPhase(t *testing.T) {
	var got []Phase
	tr := OnPhase(func(p Phase, d time.Duration) {
		if d < 0 {
			t.Errorf("negative duration for %s", p)
		}
		got = append(got, p)
	})
	Begin(tr, PhaseReduce)
	Begin(tr, PhaseCluster)
	End(tr)
	End(tr)
	End(tr) // unbalanced: ignored
	if len(got) != 2 || got[0] != PhaseCluster || got[1] != PhaseReduce {
		t.Fatalf("phases = %v, want [cluster reduce]", got)
	}
}

func TestWriteTreeAndJSON(t *testing.T) {
	c := NewCollector()
	Begin(c, PhaseReduce)
	Begin(c, PhaseCluster)
	Attr(c, "k", 10)
	End(c)
	End(c)

	var sb strings.Builder
	if err := c.WriteTree(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "reduce") || !strings.Contains(out, "├─ cluster") && !strings.Contains(out, "└─ cluster") {
		t.Fatalf("tree rendering missing spans:\n%s", out)
	}
	if !strings.Contains(out, "k=10") {
		t.Fatalf("tree rendering missing attrs:\n%s", out)
	}

	data, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	var spans []struct {
		Phase    string             `json:"phase"`
		Attrs    map[string]float64 `json:"attrs"`
		Children []json.RawMessage  `json:"children"`
	}
	if err := json.Unmarshal(data, &spans); err != nil {
		t.Fatalf("unmarshal: %v\n%s", err, data)
	}
	if len(spans) != 1 || spans[0].Phase != "reduce" || len(spans[0].Children) != 1 {
		t.Fatalf("unexpected JSON shape: %s", data)
	}
}

func TestCollectorReset(t *testing.T) {
	c := NewCollector()
	Begin(c, PhaseReduce)
	End(c)
	c.Reset()
	if len(c.Spans()) != 0 {
		t.Fatal("reset did not clear spans")
	}
}

func TestStartDebugServer(t *testing.T) {
	Publish("obs_test_var", func() any { return 42 })
	Publish("obs_test_var", func() any { return 43 }) // re-publish tolerated
	srv, err := StartDebugServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	addr := srv.Addr()
	resp, err := http.Get("http://" + addr.String() + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/vars status %d", resp.StatusCode)
	}
	resp2, err := http.Get("http://" + addr.String() + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/ status %d", resp2.StatusCode)
	}
}
