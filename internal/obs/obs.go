// Package obs is the observability layer shared by the whole pipeline:
// phase/span tracing for the reduction and indexing stages, progress
// callbacks, and the pprof/expvar debug endpoint the CLIs expose.
//
// The design goal is a zero-overhead disabled path: every producer holds a
// Tracer that is usually nil, and emits through the package-level Begin /
// Attr / End helpers, which compile down to a nil check and nothing else.
// The interface deliberately avoids variadic attribute lists — a variadic
// call materializes a slice whose escape the compiler cannot always prove
// away, which would charge allocations to code that has tracing off.
package obs

import "time"

// Phase names one stage of the pipeline. Producers use the constants below
// so consumers (progress callbacks, trace filters) can match on them; ad-hoc
// sub-phases may use free-form values.
type Phase string

// Pipeline phases emitted by the reduction and indexing stages.
const (
	// PhaseReduce wraps one whole dimensionality-reduction run.
	PhaseReduce Phase = "reduce"
	// PhaseGenerate is one Generate-Ellipsoid recursion level; its "sdim"
	// and "points" attributes identify the level.
	PhaseGenerate Phase = "generate-ellipsoid"
	// PhaseCluster is one elliptical k-means invocation.
	PhaseCluster Phase = "cluster"
	// PhaseRestart is one k-means initialization inside PhaseCluster.
	PhaseRestart Phase = "restart"
	// PhaseIteration is one outer (covariance re-estimation) pass of
	// elliptical k-means, carrying convergence telemetry.
	PhaseIteration Phase = "iteration"
	// PhaseMerge is the ellipsoid-coalescing step between GE and DO.
	PhaseMerge Phase = "merge"
	// PhaseDimOpt is the Dimensionality Optimization phase.
	PhaseDimOpt Phase = "dim-opt"
	// PhaseOutliers is the β-threshold outlier separation inside DO.
	PhaseOutliers Phase = "outlier-separation"
	// PhaseStream is one ε·N stream pass of Scalable MMDR.
	PhaseStream Phase = "stream"
	// PhaseLDR and PhaseGDR wrap the baseline reducers.
	PhaseLDR Phase = "ldr"
	PhaseGDR Phase = "gdr"
	// PhaseBuildIndex wraps extended-iDistance construction.
	PhaseBuildIndex Phase = "build-index"
	// PhaseExperiment wraps one mmdrbench experiment.
	PhaseExperiment Phase = "experiment"
)

// Tracer receives span events. Spans nest by call order: Begin opens a child
// of the innermost open span, Attr attaches a named value to it, End closes
// it. Implementations are not required to be goroutine-safe unless
// documented; the pipeline emits from a single goroutine per run.
//
// A nil Tracer is the disabled state — producers must emit through the
// package-level helpers, which absorb nil without any work.
type Tracer interface {
	Begin(p Phase)
	Attr(key string, value float64)
	End()
}

// Begin opens a span on t; no-op when t is nil.
func Begin(t Tracer, p Phase) {
	if t != nil {
		t.Begin(p)
	}
}

// Attr attaches a numeric attribute to t's innermost open span; no-op when
// t is nil. Counts and rates are all representable as float64 (counts up to
// 2^53 exactly), which keeps the interface to a single method.
func Attr(t Tracer, key string, value float64) {
	if t != nil {
		t.Attr(key, value)
	}
}

// End closes t's innermost open span; no-op when t is nil.
func End(t Tracer) {
	if t != nil {
		t.End()
	}
}

// multi fans events out to several tracers.
type multi struct {
	ts []Tracer
}

func (m *multi) Begin(p Phase) {
	for _, t := range m.ts {
		t.Begin(p)
	}
}

func (m *multi) Attr(key string, value float64) {
	for _, t := range m.ts {
		t.Attr(key, value)
	}
}

func (m *multi) End() {
	for _, t := range m.ts {
		t.End()
	}
}

// Multi combines tracers; nils are dropped. It returns nil when nothing
// remains (preserving the disabled fast path) and the tracer itself when
// only one remains.
func Multi(ts ...Tracer) Tracer {
	var live []Tracer
	for _, t := range ts {
		if t != nil {
			live = append(live, t)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return &multi{ts: live}
}

// phaseFunc adapts a completion callback to the Tracer interface for the
// public WithProgress option: it tracks only start times and reports each
// span's phase and elapsed time as it closes.
type phaseFunc struct {
	fn    func(p Phase, elapsed time.Duration)
	stack []phaseStart
}

type phaseStart struct {
	p  Phase
	at time.Time
}

func (f *phaseFunc) Begin(p Phase) {
	f.stack = append(f.stack, phaseStart{p: p, at: time.Now()})
}

func (f *phaseFunc) Attr(string, float64) {}

func (f *phaseFunc) End() {
	n := len(f.stack)
	if n == 0 {
		return
	}
	top := f.stack[n-1]
	f.stack = f.stack[:n-1]
	f.fn(top.p, time.Since(top.at))
}

// OnPhase returns a Tracer that invokes fn each time a span completes, with
// the span's phase and elapsed wall-clock time. fn must not be nil.
func OnPhase(fn func(p Phase, elapsed time.Duration)) Tracer {
	return &phaseFunc{fn: fn}
}
