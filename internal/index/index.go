// Package index defines the common KNN-index contract shared by the
// extended iDistance, the Global/Hybrid-tree scheme and the sequential-scan
// baseline, plus the bounded top-k accumulator they all use.
package index

import (
	"math"
	"slices"
)

// Neighbor is one KNN result: the dataset row ID and its distance to the
// query (in whatever representation the index searches).
type Neighbor struct {
	ID   int
	Dist float64
}

// KNNIndex is implemented by every index in the repository.
type KNNIndex interface {
	// KNN returns the k nearest neighbors of q in ascending distance order.
	KNN(q []float64, k int) []Neighbor
	// Name identifies the scheme in experiment tables.
	Name() string
}

// TopK accumulates the k smallest-distance neighbors seen so far using a
// bounded max-heap. The zero value is unusable; create with NewTopK.
type TopK struct {
	k    int
	heap nbrHeap
}

// NewTopK returns an accumulator for the k nearest neighbors.
func NewTopK(k int) *TopK {
	return &TopK{k: k, heap: make(nbrHeap, 0, k+1)}
}

// Reset empties the accumulator and retargets it to k neighbors, keeping the
// backing array so a pooled TopK can be reused across queries without
// allocating.
func (t *TopK) Reset(k int) {
	t.k = k
	t.heap = t.heap[:0]
}

// Add offers a candidate; it is kept only if it beats the current k-th
// distance. The sift operations are inlined (not container/heap) so no
// interface boxing allocates on the query hot path; they replicate
// container/heap's up/down exactly, so tie handling is unchanged.
func (t *TopK) Add(id int, dist float64) {
	if t.k <= 0 {
		return
	}
	if len(t.heap) < t.k {
		t.heap = append(t.heap, Neighbor{ID: id, Dist: dist})
		t.up(len(t.heap) - 1)
		return
	}
	if dist < t.heap[0].Dist {
		t.heap[0] = Neighbor{ID: id, Dist: dist}
		t.down(0)
	}
}

// up sifts element j toward the root of the max-heap.
func (t *TopK) up(j int) {
	h := t.heap
	for j > 0 {
		i := (j - 1) / 2 // parent
		if !(h[j].Dist > h[i].Dist) {
			break
		}
		h[i], h[j] = h[j], h[i]
		j = i
	}
}

// down sifts element i toward the leaves of the max-heap.
func (t *TopK) down(i int) {
	h := t.heap
	n := len(h)
	for {
		j1 := 2*i + 1
		if j1 >= n {
			break
		}
		j := j1 // left child
		if j2 := j1 + 1; j2 < n && h[j2].Dist > h[j1].Dist {
			j = j2 // right child is the larger
		}
		if !(h[j].Dist > h[i].Dist) {
			break
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
}

// Kth returns the current k-th smallest distance, or +Inf while fewer than
// k candidates have been seen. It is the search-termination radius of the
// iDistance algorithm.
func (t *TopK) Kth() float64 {
	if len(t.heap) < t.k {
		return math.Inf(1)
	}
	return t.heap[0].Dist
}

// Len returns how many neighbors are currently held.
func (t *TopK) Len() int { return len(t.heap) }

// Items returns a view of the accumulated neighbors in internal heap order,
// without allocating or copying. The view is invalidated by the next Add or
// Reset; callers that need distance order use Sorted. Heap order is a
// deterministic function of the Add sequence, so two accumulators fed the
// same candidates in the same order expose identical views.
func (t *TopK) Items() []Neighbor { return t.heap }

// Sorted returns the accumulated neighbors in ascending distance order. The
// returned slice is the only allocation a reused TopK makes per query.
func (t *TopK) Sorted() []Neighbor {
	out := make([]Neighbor, len(t.heap))
	copy(out, t.heap)
	SortNeighbors(out)
	return out
}

// SortNeighbors orders ns ascending by (Dist, ID) in place without
// allocating. Every index implementation sorts results through this one
// helper so tie-breaking is identical across schemes.
func SortNeighbors(ns []Neighbor) {
	slices.SortFunc(ns, func(a, b Neighbor) int {
		switch {
		case a.Dist < b.Dist:
			return -1
		case a.Dist > b.Dist:
			return 1
		case a.ID < b.ID:
			return -1
		case a.ID > b.ID:
			return 1
		}
		return 0
	})
}

// nbrHeap is a max-heap on Dist, maintained by TopK.up/TopK.down.
type nbrHeap []Neighbor
