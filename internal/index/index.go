// Package index defines the common KNN-index contract shared by the
// extended iDistance, the Global/Hybrid-tree scheme and the sequential-scan
// baseline, plus the bounded top-k accumulator they all use.
package index

import (
	"container/heap"
	"math"
	"sort"
)

// Neighbor is one KNN result: the dataset row ID and its distance to the
// query (in whatever representation the index searches).
type Neighbor struct {
	ID   int
	Dist float64
}

// KNNIndex is implemented by every index in the repository.
type KNNIndex interface {
	// KNN returns the k nearest neighbors of q in ascending distance order.
	KNN(q []float64, k int) []Neighbor
	// Name identifies the scheme in experiment tables.
	Name() string
}

// TopK accumulates the k smallest-distance neighbors seen so far using a
// bounded max-heap. The zero value is unusable; create with NewTopK.
type TopK struct {
	k    int
	heap nbrHeap
}

// NewTopK returns an accumulator for the k nearest neighbors.
func NewTopK(k int) *TopK {
	return &TopK{k: k, heap: make(nbrHeap, 0, k+1)}
}

// Add offers a candidate; it is kept only if it beats the current k-th
// distance.
func (t *TopK) Add(id int, dist float64) {
	if t.k <= 0 {
		return
	}
	if len(t.heap) < t.k {
		heap.Push(&t.heap, Neighbor{ID: id, Dist: dist})
		return
	}
	if dist < t.heap[0].Dist {
		t.heap[0] = Neighbor{ID: id, Dist: dist}
		heap.Fix(&t.heap, 0)
	}
}

// Kth returns the current k-th smallest distance, or +Inf while fewer than
// k candidates have been seen. It is the search-termination radius of the
// iDistance algorithm.
func (t *TopK) Kth() float64 {
	if len(t.heap) < t.k {
		return math.Inf(1)
	}
	return t.heap[0].Dist
}

// Len returns how many neighbors are currently held.
func (t *TopK) Len() int { return len(t.heap) }

// Sorted returns the accumulated neighbors in ascending distance order.
func (t *TopK) Sorted() []Neighbor {
	out := make([]Neighbor, len(t.heap))
	copy(out, t.heap)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// nbrHeap is a max-heap on Dist.
type nbrHeap []Neighbor

func (h nbrHeap) Len() int            { return len(h) }
func (h nbrHeap) Less(i, j int) bool  { return h[i].Dist > h[j].Dist }
func (h nbrHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nbrHeap) Push(x interface{}) { *h = append(*h, x.(Neighbor)) }
func (h *nbrHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
