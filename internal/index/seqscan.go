package index

import (
	"math"

	"mmdr/internal/dataset"
	"mmdr/internal/iostat"
	"mmdr/internal/matrix"
	"mmdr/internal/reduction"
)

// SeqScan is the sequential-scan baseline of Figure 9: a linear pass over
// the reduced representation (every subspace's coordinates plus the
// full-dimensional outliers), charging one page read per page of data
// touched.
type SeqScan struct {
	ds      *dataset.Dataset
	red     *reduction.Result
	counter iostat.Sink
}

// NewSeqScan builds the baseline over a reduced dataset. counter may be
// nil.
func NewSeqScan(ds *dataset.Dataset, red *reduction.Result, counter iostat.Sink) *SeqScan {
	return &SeqScan{ds: ds, red: red, counter: counter}
}

// Name implements KNNIndex.
func (s *SeqScan) Name() string { return "seq-scan" }

// KNN implements KNNIndex. Distances are computed in the reduced
// representation: per-subspace projected distance for members, exact
// distance for outliers — the same approximation every scheme over the
// same reduction sees, so precision is identical and only cost differs.
//
// The scan accumulates SQUARED distances and applies one sqrt per returned
// neighbor — the exact procedure of the kernelized iDistance path, so a
// tree-based answer over the same reduction matches this oracle bitwise,
// not merely within rounding.
func (s *SeqScan) KNN(q []float64, k int) []Neighbor {
	top := NewTopK(k)
	for _, sub := range s.red.Subspaces {
		qp := sub.Project(q)
		for mi, id := range sub.Members {
			c := sub.MemberCoords(mi)
			dSq := matrix.SqDist(qp, c)
			if s.counter != nil {
				s.counter.CountDistanceOps(1)
			}
			top.Add(id, dSq)
		}
		if s.counter != nil {
			s.counter.CountPageReads(iostat.PagesForPoints(len(sub.Members), sub.Dr))
		}
	}
	for _, id := range s.red.Outliers {
		dSq := matrix.SqDist(q, s.ds.Point(id))
		if s.counter != nil {
			s.counter.CountDistanceOps(1)
		}
		top.Add(id, dSq)
	}
	if s.counter != nil {
		s.counter.CountPageReads(iostat.PagesForPoints(len(s.red.Outliers), s.ds.Dim))
	}
	out := top.Sorted()
	for i := range out {
		out[i].Dist = math.Sqrt(out[i].Dist)
	}
	return out
}

// Range returns every point within distance r of q in the reduced
// representation, sorted ascending by (distance, id) — the same distance
// model and ordering as the extended iDistance Range, making this the
// ground truth a tree-based answer must match exactly.
func (s *SeqScan) Range(q []float64, r float64) []Neighbor {
	r2 := r * r
	var out []Neighbor
	for _, sub := range s.red.Subspaces {
		qp := sub.Project(q)
		for mi, id := range sub.Members {
			dSq := matrix.SqDist(qp, sub.MemberCoords(mi))
			if s.counter != nil {
				s.counter.CountDistanceOps(1)
			}
			if dSq <= r2 {
				out = append(out, Neighbor{ID: id, Dist: dSq})
			}
		}
		if s.counter != nil {
			s.counter.CountPageReads(iostat.PagesForPoints(len(sub.Members), sub.Dr))
		}
	}
	for _, id := range s.red.Outliers {
		dSq := matrix.SqDist(q, s.ds.Point(id))
		if s.counter != nil {
			s.counter.CountDistanceOps(1)
		}
		if dSq <= r2 {
			out = append(out, Neighbor{ID: id, Dist: dSq})
		}
	}
	if s.counter != nil {
		s.counter.CountPageReads(iostat.PagesForPoints(len(s.red.Outliers), s.ds.Dim))
	}
	// Same materialization procedure as the iDistance range path: sort by
	// (d², id), then one sqrt per result.
	SortNeighbors(out)
	for i := range out {
		out[i].Dist = math.Sqrt(out[i].Dist)
	}
	return out
}
