package index

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"mmdr/internal/datagen"
	"mmdr/internal/iostat"
	"mmdr/internal/reduction"
)

func TestTopKBasics(t *testing.T) {
	top := NewTopK(3)
	if top.Kth() != math.Inf(1) {
		t.Fatal("Kth of empty should be +Inf")
	}
	for i, d := range []float64{5, 1, 4, 2, 3} {
		top.Add(i, d)
	}
	if top.Len() != 3 {
		t.Fatalf("Len = %d", top.Len())
	}
	if top.Kth() != 3 {
		t.Fatalf("Kth = %v, want 3", top.Kth())
	}
	got := top.Sorted()
	wantDists := []float64{1, 2, 3}
	for i, n := range got {
		if n.Dist != wantDists[i] {
			t.Fatalf("Sorted = %v", got)
		}
	}
}

func TestTopKZero(t *testing.T) {
	top := NewTopK(0)
	top.Add(1, 1)
	if top.Len() != 0 {
		t.Fatal("k=0 must keep nothing")
	}
}

func TestTopKTieBreaksByID(t *testing.T) {
	top := NewTopK(2)
	top.Add(9, 1)
	top.Add(3, 1)
	got := top.Sorted()
	if got[0].ID != 3 || got[1].ID != 9 {
		t.Fatalf("tie order %v", got)
	}
}

// Property: TopK(k) over any stream equals sorting the stream and taking
// the first k.
func TestTopKMatchesSortProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(200)
		k := 1 + r.Intn(20)
		dists := make([]float64, n)
		top := NewTopK(k)
		for i := range dists {
			dists[i] = math.Floor(r.Float64()*100) / 10 // ties likely
			top.Add(i, dists[i])
		}
		sorted := append([]float64(nil), dists...)
		sort.Float64s(sorted)
		want := k
		if n < k {
			want = n
		}
		got := top.Sorted()
		if len(got) != want {
			return false
		}
		for i := range got {
			if got[i].Dist != sorted[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestSeqScanOverReduction(t *testing.T) {
	cfg := datagen.CorrelatedConfig{N: 500, Dim: 12, NumClusters: 2, SDim: 2, VarRatio: 20, Seed: 82}
	ds, _, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	datagen.Normalize(ds)
	red, err := (&reduction.LDR{MaxClusters: 4, MaxDim: 6, MaxReconDist: 0.2, Seed: 1}).Reduce(ds)
	if err != nil {
		t.Fatal(err)
	}
	var ctr iostat.Counter
	scan := NewSeqScan(ds, red, &ctr)
	if scan.Name() != "seq-scan" {
		t.Fatal("name")
	}
	q := ds.Point(0)
	res := scan.KNN(q, 10)
	if len(res) != 10 {
		t.Fatalf("got %d results", len(res))
	}
	for i := 1; i < len(res); i++ {
		if res[i].Dist < res[i-1].Dist {
			t.Fatal("results not sorted")
		}
	}
	if ctr.PageReads == 0 || ctr.DistanceOps == 0 {
		t.Fatalf("seq scan counted no cost: %+v", ctr)
	}
	// Scanning again costs the same pages (stateless).
	first := ctr.PageReads
	scan.KNN(q, 10)
	if ctr.PageReads != 2*first {
		t.Fatalf("second scan pages %d != %d", ctr.PageReads-first, first)
	}
}

func TestTopKStreamsBeyondCapacity(t *testing.T) {
	// Exercises the heap replace path (and keeps the heap interface
	// honest) by streaming many more candidates than k.
	top := NewTopK(4)
	for i := 1000; i > 0; i-- {
		top.Add(i, float64(i))
	}
	got := top.Sorted()
	for i, n := range got {
		if n.Dist != float64(i+1) {
			t.Fatalf("rank %d dist %v", i, n.Dist)
		}
	}
}
