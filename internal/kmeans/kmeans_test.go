package kmeans

import (
	"math"
	"math/rand"
	"testing"

	"mmdr/internal/dataset"
)

// twoBlobs builds two well-separated Gaussian blobs in 2-d.
func twoBlobs(n int, seed int64) (*dataset.Dataset, []int) {
	rng := rand.New(rand.NewSource(seed))
	ds := dataset.New(n, 2)
	truth := make([]int, n)
	for i := 0; i < n; i++ {
		cx, cy := 0.0, 0.0
		if i%2 == 1 {
			cx, cy = 100, 100
			truth[i] = 1
		}
		ds.Point(i)[0] = cx + rng.NormFloat64()
		ds.Point(i)[1] = cy + rng.NormFloat64()
	}
	return ds, truth
}

func TestRunSeparatesBlobs(t *testing.T) {
	ds, truth := twoBlobs(200, 31)
	res, err := Run(ds, Options{K: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 2 {
		t.Fatalf("K = %d", res.K)
	}
	// Every pair in the same true blob must share a cluster.
	for i := 1; i < ds.N; i++ {
		same := truth[i] == truth[0]
		got := res.Assign[i] == res.Assign[0]
		if same != got {
			t.Fatalf("point %d misclustered", i)
		}
	}
	// Centroids near (0,0) and (100,100).
	var near0, near100 bool
	for _, c := range res.Centroids {
		if math.Hypot(c[0], c[1]) < 5 {
			near0 = true
		}
		if math.Hypot(c[0]-100, c[1]-100) < 5 {
			near100 = true
		}
	}
	if !near0 || !near100 {
		t.Fatalf("centroids %v not near blob centers", res.Centroids)
	}
}

func TestRunValidation(t *testing.T) {
	ds := dataset.New(3, 2)
	if _, err := Run(ds, Options{K: 0}); err == nil {
		t.Fatal("expected error for K=0")
	}
	empty := dataset.New(0, 2)
	if _, err := Run(empty, Options{K: 2}); err == nil {
		t.Fatal("expected error for empty dataset")
	}
}

func TestRunKExceedsN(t *testing.T) {
	ds := dataset.New(3, 1)
	ds.Data = []float64{0, 5, 10}
	res, err := Run(ds, Options{K: 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 3 {
		t.Fatalf("K clamped to %d, want 3", res.K)
	}
}

func TestRunDeterministicGivenSeed(t *testing.T) {
	ds, _ := twoBlobs(100, 5)
	a, err := Run(ds, Options{K: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(ds, Options{K: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("same seed should reproduce assignment")
		}
	}
}

func TestInertiaDecreasesWithK(t *testing.T) {
	ds, _ := twoBlobs(300, 8)
	var prev float64 = math.Inf(1)
	for _, k := range []int{1, 2, 4} {
		res, err := Run(ds, Options{K: k, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		if res.Inertia > prev*1.001 {
			t.Fatalf("inertia did not decrease at k=%d: %v > %v", k, res.Inertia, prev)
		}
		prev = res.Inertia
	}
}

func TestMembers(t *testing.T) {
	ds, _ := twoBlobs(40, 9)
	res, err := Run(ds, Options{K: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for c := 0; c < res.K; c++ {
		m := res.Members(c)
		if len(m) != res.Sizes[c] {
			t.Fatalf("Members(%d) len %d != size %d", c, len(m), res.Sizes[c])
		}
		for _, idx := range m {
			if res.Assign[idx] != c {
				t.Fatal("Members returned wrong point")
			}
		}
		total += len(m)
	}
	if total != ds.N {
		t.Fatalf("members total %d != N %d", total, ds.N)
	}
}

func TestSeedPlusPlusDistinctWhenPossible(t *testing.T) {
	ds := dataset.New(4, 1)
	ds.Data = []float64{0, 1, 2, 3}
	rng := rand.New(rand.NewSource(10))
	cents := SeedPlusPlus(ds, 4, rng)
	seen := map[float64]bool{}
	for _, c := range cents {
		seen[c[0]] = true
	}
	if len(seen) != 4 {
		t.Fatalf("seeding picked duplicates: %v", cents)
	}
}

func TestAllIdenticalPoints(t *testing.T) {
	ds := dataset.New(10, 2)
	for i := 0; i < ds.N; i++ {
		ds.Point(i)[0], ds.Point(i)[1] = 3, 4
	}
	res, err := Run(ds, Options{K: 3, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if res.Inertia > 1e-12 {
		t.Fatalf("identical points inertia %v", res.Inertia)
	}
}

func BenchmarkKMeans(b *testing.B) {
	ds, _ := twoBlobs(2000, 12)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(ds, Options{K: 8, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
