// Package kmeans implements standard Euclidean k-means with k-means++
// seeding. It serves two roles in the reproduction: the clustering engine of
// the LDR baseline (Chakrabarti–Mehrotra use spatial clusters found with
// Euclidean distance) and the initializer for elliptical k-means.
package kmeans

import (
	"fmt"
	"math"
	"math/rand"

	"mmdr/internal/dataset"
	"mmdr/internal/pool"
)

// Result holds a k-means clustering.
type Result struct {
	K          int
	Centroids  [][]float64
	Assign     []int // Assign[i] = cluster of point i
	Sizes      []int
	Iterations int
	Inertia    float64 // sum of squared distances to assigned centroids
}

// Options configures Run.
type Options struct {
	K        int
	MaxIters int   // default 50
	Seed     int64 // seeding randomness

	// Parallelism bounds the workers used for the per-point assignment pass
	// and the k-means++ distance updates. Values <= 1 run serial. Results
	// are identical at every setting: per-point work is index-partitioned
	// and all floating-point reductions (inertia, centroid sums, seeding
	// totals) happen serially in point order.
	Parallelism int
}

// Run clusters ds into opts.K clusters using Lloyd's algorithm with
// k-means++ seeding. Empty clusters are reseeded to the farthest point.
func Run(ds *dataset.Dataset, opts Options) (*Result, error) {
	k := opts.K
	if k <= 0 {
		return nil, fmt.Errorf("kmeans: K must be positive, got %d", k)
	}
	if ds.N == 0 {
		return nil, fmt.Errorf("kmeans: empty dataset")
	}
	if k > ds.N {
		k = ds.N
	}
	maxIters := opts.MaxIters
	if maxIters <= 0 {
		maxIters = 50
	}
	workers := opts.Parallelism
	if workers < 1 {
		workers = 1
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	cents := seedPlusPlus(ds, k, rng, workers)

	assign := make([]int, ds.N)
	for i := range assign {
		assign[i] = -1
	}
	sizes := make([]int, k)
	var iters int
	var inertia float64

	// Scratch for the parallel assignment pass: each point's nearest
	// centroid and distance land in their own slot, then the counters and
	// the inertia sum reduce serially in point order — the identical
	// floating-point sequence of the serial loop.
	nearest := make([]int, ds.N)
	nearestD := make([]float64, ds.N)

	for iters = 1; iters <= maxIters; iters++ {
		changed := 0
		inertia = 0
		for i := range sizes {
			sizes[i] = 0
		}
		pool.Chunks(workers, ds.N, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				nearest[i], nearestD[i] = nearestCentroid(ds.Point(i), cents)
			}
		})
		for i := 0; i < ds.N; i++ {
			best := nearest[i]
			if best != assign[i] {
				changed++
				assign[i] = best
			}
			sizes[best]++
			inertia += nearestD[i]
		}
		// Recompute centroids.
		for c := range cents {
			for j := range cents[c] {
				cents[c][j] = 0
			}
		}
		for i := 0; i < ds.N; i++ {
			c := assign[i]
			p := ds.Point(i)
			for j, v := range p {
				cents[c][j] += v
			}
		}
		for c := range cents {
			if sizes[c] == 0 {
				// Reseed the empty cluster at the point farthest from its
				// centroid assignment.
				far, farD := 0, -1.0
				for i := 0; i < ds.N; i++ {
					d := sqDist(ds.Point(i), cents[assign[i]])
					if d > farD {
						far, farD = i, d
					}
				}
				copy(cents[c], ds.Point(far))
				continue
			}
			inv := 1 / float64(sizes[c])
			for j := range cents[c] {
				cents[c][j] *= inv
			}
		}
		if changed == 0 {
			break
		}
	}
	return &Result{K: k, Centroids: cents, Assign: assign, Sizes: sizes, Iterations: iters, Inertia: inertia}, nil
}

// SeedPlusPlus selects k initial centroids with the k-means++ strategy:
// the first uniformly, each next with probability proportional to the
// squared distance to the nearest chosen centroid.
func SeedPlusPlus(ds *dataset.Dataset, k int, rng *rand.Rand) [][]float64 {
	return seedPlusPlus(ds, k, rng, 1)
}

// seedPlusPlus is SeedPlusPlus with the per-point distance refreshes spread
// over workers. The rng-driven selection walk and the probability total stay
// serial in point order, so the chosen centroids are identical at any
// worker count.
func seedPlusPlus(ds *dataset.Dataset, k int, rng *rand.Rand, workers int) [][]float64 {
	cents := make([][]float64, 0, k)
	first := ds.Point(rng.Intn(ds.N))
	c0 := make([]float64, ds.Dim)
	copy(c0, first)
	cents = append(cents, c0)

	d2 := make([]float64, ds.N)
	pool.Chunks(workers, ds.N, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			d2[i] = sqDist(ds.Point(i), c0)
		}
	})
	for len(cents) < k {
		var total float64
		for _, d := range d2 {
			total += d
		}
		var idx int
		if total <= 0 {
			idx = rng.Intn(ds.N)
		} else {
			r := rng.Float64() * total
			for idx = 0; idx < ds.N-1; idx++ {
				r -= d2[idx]
				if r <= 0 {
					break
				}
			}
		}
		c := make([]float64, ds.Dim)
		copy(c, ds.Point(idx))
		cents = append(cents, c)
		pool.Chunks(workers, ds.N, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				if d := sqDist(ds.Point(i), c); d < d2[i] {
					d2[i] = d
				}
			}
		})
	}
	return cents
}

func nearestCentroid(p []float64, cents [][]float64) (int, float64) {
	best, bestD := 0, math.Inf(1)
	for c, cent := range cents {
		if d := sqDist(p, cent); d < bestD {
			best, bestD = c, d
		}
	}
	return best, bestD
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i, v := range a {
		d := v - b[i]
		s += d * d
	}
	return s
}

// Members returns the indices of points assigned to cluster c.
func (r *Result) Members(c int) []int {
	out := make([]int, 0, r.Sizes[c])
	for i, a := range r.Assign {
		if a == c {
			out = append(out, i)
		}
	}
	return out
}
