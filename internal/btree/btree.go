// Package btree implements the disk-page-oriented B⁺-tree underlying the
// extended iDistance index. Keys are float64 (the one-dimensional iDistance
// keys); values are record IDs. Node fan-out is derived from a configurable
// page size, and every node visit is charged to an iostat.Counter so the
// experiments can report logical page I/O the way the paper does.
//
// Duplicate keys are allowed. Leaves are chained for range scans.
package btree

import (
	"fmt"
	"sort"

	"mmdr/internal/iostat"
)

// entryBytes approximates the on-page footprint of one key/pointer pair:
// an 8-byte float64 key plus an 8-byte pointer or record ID.
const entryBytes = 16

// Tree is a B⁺-tree over float64 keys. Create with New.
type Tree struct {
	order   int // max children of an internal node (= max keys of a leaf)
	root    *node
	size    int
	height  int
	counter iostat.Sink
}

type node struct {
	leaf     bool
	keys     []float64
	children []*node  // internal nodes: len(keys)+1 children
	rids     []uint32 // leaves: parallel to keys
	next     *node    // leaf chain
}

// New creates a tree whose node capacity matches pageSize bytes
// (pageSize <= 0 selects iostat.PageSize). counter may be nil.
func New(pageSize int, counter iostat.Sink) *Tree {
	return NewWithEntrySize(pageSize, entryBytes, counter)
}

// NewWithEntrySize creates a tree whose leaf entries occupy bytesPerEntry
// bytes each — used by iDistance, whose leaves store the reduced vectors
// alongside the key, so leaf fan-out (and therefore page I/O) depends on
// the retained dimensionality.
func NewWithEntrySize(pageSize, bytesPerEntry int, counter iostat.Sink) *Tree {
	if pageSize <= 0 {
		pageSize = iostat.PageSize
	}
	if bytesPerEntry <= 0 {
		bytesPerEntry = entryBytes
	}
	order := pageSize / bytesPerEntry
	if order < 4 {
		order = 4
	}
	return &Tree{
		order:   order,
		root:    &node{leaf: true},
		height:  1,
		counter: counter,
	}
}

// Order returns the node fan-out (for tests and diagnostics).
func (t *Tree) Order() int { return t.order }

// Len returns the number of stored entries.
func (t *Tree) Len() int { return t.size }

// Height returns the tree height in levels (1 = root-only).
func (t *Tree) Height() int { return t.height }

// touchLeaf charges a leaf-page access. Internal levels of a B⁺-tree are
// tiny (1-d keys) and assumed pinned in the buffer pool — the standard cost
// model, and the property §5 of the paper leans on — so only leaf accesses
// count as page I/O; internal visits are recorded as node accesses.
func (t *Tree) touchLeaf(read bool) {
	if t.counter == nil {
		return
	}
	t.counter.CountNodeAccesses(1)
	if read {
		t.counter.CountPageReads(1)
	} else {
		t.counter.CountPageWrites(1)
	}
}

func (t *Tree) touchInternal() {
	if t.counter != nil {
		t.counter.CountNodeAccesses(1)
	}
}

func (t *Tree) compare() {
	if t.counter != nil {
		t.counter.CountKeyCompares(1)
	}
}

// Insert adds (key, rid). Duplicates are kept.
func (t *Tree) Insert(key float64, rid uint32) {
	promoted, right := t.insert(t.root, key, rid)
	if promoted != nil {
		newRoot := &node{
			keys:     []float64{*promoted},
			children: []*node{t.root, right},
		}
		t.root = newRoot
		t.height++
	}
	t.size++
}

// insert descends recursively; on split it returns the promoted key and the
// new right sibling.
func (t *Tree) insert(n *node, key float64, rid uint32) (*float64, *node) {
	if n.leaf {
		t.touchLeaf(true)
		idx := t.searchKeys(n.keys, key)
		n.keys = append(n.keys, 0)
		copy(n.keys[idx+1:], n.keys[idx:])
		n.keys[idx] = key
		n.rids = append(n.rids, 0)
		copy(n.rids[idx+1:], n.rids[idx:])
		n.rids[idx] = rid
		t.touchLeaf(false)
		if len(n.keys) > t.order {
			return t.splitLeaf(n)
		}
		return nil, nil
	}
	t.touchInternal()
	childIdx := t.searchKeys(n.keys, key)
	promoted, right := t.insert(n.children[childIdx], key, rid)
	if promoted == nil {
		return nil, nil
	}
	// The separator and new right sibling belong exactly at the descent
	// position; re-searching by key would misplace them among duplicates.
	n.keys = append(n.keys, 0)
	copy(n.keys[childIdx+1:], n.keys[childIdx:])
	n.keys[childIdx] = *promoted
	n.children = append(n.children, nil)
	copy(n.children[childIdx+2:], n.children[childIdx+1:])
	n.children[childIdx+1] = right
	t.touchInternal()
	if len(n.children) > t.order {
		return t.splitInternal(n)
	}
	return nil, nil
}

// searchKeys returns the insertion position of key in keys (upper bound,
// so duplicates chain to the right) while charging key comparisons.
func (t *Tree) searchKeys(keys []float64, key float64) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		t.compare()
		mid := (lo + hi) / 2
		if keys[mid] <= key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func (t *Tree) splitLeaf(n *node) (*float64, *node) {
	mid := len(n.keys) / 2
	right := &node{
		leaf: true,
		keys: append([]float64(nil), n.keys[mid:]...),
		rids: append([]uint32(nil), n.rids[mid:]...),
		next: n.next,
	}
	n.keys = n.keys[:mid:mid]
	n.rids = n.rids[:mid:mid]
	n.next = right
	t.touchLeaf(false)
	t.touchLeaf(false)
	sep := right.keys[0]
	return &sep, right
}

func (t *Tree) splitInternal(n *node) (*float64, *node) {
	midKey := len(n.keys) / 2
	sep := n.keys[midKey]
	right := &node{
		keys:     append([]float64(nil), n.keys[midKey+1:]...),
		children: append([]*node(nil), n.children[midKey+1:]...),
	}
	n.keys = n.keys[:midKey:midKey]
	n.children = n.children[: midKey+1 : midKey+1]
	t.touchInternal()
	t.touchInternal()
	return &sep, right
}

// searchKeysLower returns the first index whose key is >= key (lower
// bound). Range scans descend with it so duplicate keys that straddle a
// node split are not skipped.
func (t *Tree) searchKeysLower(keys []float64, key float64) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		t.compare()
		mid := (lo + hi) / 2
		if keys[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// findLeaf descends to the leftmost leaf that may contain key.
func (t *Tree) findLeaf(key float64) *node {
	n := t.root
	for !n.leaf {
		t.touchInternal()
		n = n.children[t.searchKeysLower(n.keys, key)]
	}
	t.touchLeaf(true)
	return n
}

// RangeAsc visits all entries with lo <= key <= hi in ascending key order.
// The visit function returns false to stop early. It returns the number of
// leaf pages read during the scan (query-explain telemetry; the same pages
// are also charged to the tree's counter).
func (t *Tree) RangeAsc(lo, hi float64, visit func(key float64, rid uint32) bool) (leaves int) {
	return t.RangeBetween(lo, hi, false, false, visit)
}

// RangeBetween visits entries between lo and hi in ascending key order,
// with each bound independently exclusive: excludeLo skips keys equal to
// lo, excludeHi skips keys equal to hi. Half-open scans are what the
// iDistance annulus re-scan needs — a growing search radius re-enters the
// key space exactly at the previous scan's edge, and an exclusive bound
// guarantees keys sitting precisely on that edge are neither skipped nor
// visited twice (the former ±1e-15 epsilon nudging could do either when a
// key landed inside the epsilon). The visit function returns false to stop
// early; the return value counts leaf pages read.
func (t *Tree) RangeBetween(lo, hi float64, excludeLo, excludeHi bool, visit func(key float64, rid uint32) bool) (leaves int) {
	//mmdr:ignore floatcmp half-open bound semantics are deliberately bitwise: keys equal to the previous scan's edge are excluded by exact equality, replacing the ±1e-15 epsilon hack
	if t.size == 0 || lo > hi || (lo == hi && (excludeLo || excludeHi)) {
		return 0
	}
	n := t.findLeaf(lo)
	leaves = 1
	// Position at the first in-range key inside the leaf: first >= lo, or
	// first > lo when the low bound is exclusive. Duplicate runs of lo may
	// straddle leaves, so the exclusive skip continues across the chain via
	// the key check in the scan loop.
	idx := sort.SearchFloat64s(n.keys, lo)
	for n != nil {
		for ; idx < len(n.keys); idx++ {
			t.compare()
			k := n.keys[idx]
			//mmdr:ignore floatcmp exclusive-bound key match is bitwise by contract — stored keys re-enter RangeBetween unmodified, so exact equality is the correct edge test
			if excludeLo && k == lo {
				continue
			}
			//mmdr:ignore floatcmp same bitwise exclusive-bound contract for the high edge
			if k > hi || (excludeHi && k == hi) {
				return leaves
			}
			if !visit(k, n.rids[idx]) {
				return leaves
			}
		}
		n = n.next
		if n != nil {
			leaves++
			t.touchLeaf(true)
		}
		idx = 0
	}
	return leaves
}

// RangeRuns is RangeBetween for block-oriented consumers: instead of one
// callback per entry, the visitor receives each leaf's maximal contiguous
// in-range run as parallel key/rid sub-slices (ascending, never empty). The
// entries visited, the leaf count returned, and the costs charged to the
// counter are all identical to RangeBetween over the same bounds — the
// per-entry key comparisons RangeBetween performs are charged in bulk per
// leaf — so the two scan shapes are interchangeable for accounting. The
// visitor must not retain or mutate the slices; returning false stops the
// scan.
//
//mmdr:hotpath run-granular annulus scan feeding the SoA block fast path
func (t *Tree) RangeRuns(lo, hi float64, excludeLo, excludeHi bool, visit func(keys []float64, rids []uint32) bool) (leaves int) {
	//mmdr:ignore floatcmp same bitwise half-open bound contract as RangeBetween
	if t.size == 0 || lo > hi || (lo == hi && (excludeLo || excludeHi)) {
		return 0
	}
	n := t.findLeaf(lo)
	leaves = 1
	pos := sort.SearchFloat64s(n.keys, lo)
	for n != nil {
		// The run starts past any keys equal to an exclusive low bound.
		// Duplicates of lo can straddle leaves, so the skip applies per leaf.
		start := pos
		if excludeLo {
			start = pos + upperBound(n.keys[pos:], lo)
		}
		// First out-of-range entry at or after start: RangeBetween's scan
		// terminator (first key > hi, or >= hi under an exclusive high bound).
		var end int
		if excludeHi {
			end = start + lowerBound(n.keys[start:], hi)
		} else {
			end = start + upperBound(n.keys[start:], hi)
		}
		// RangeBetween charges one key comparison for every entry it
		// inspects: everything from the scan position through the terminator,
		// terminator included when it sits inside this leaf.
		inspected := end - pos
		if end < len(n.keys) {
			inspected++
		}
		if t.counter != nil && inspected > 0 {
			t.counter.CountKeyCompares(int64(inspected))
		}
		if end > start && !visit(n.keys[start:end], n.rids[start:end]) {
			return leaves
		}
		if end < len(n.keys) {
			return leaves // terminator found inside this leaf
		}
		n = n.next
		if n != nil {
			leaves++
			t.touchLeaf(true)
		}
		pos = 0
	}
	return leaves
}

// lowerBound returns the first index with keys[i] >= key. Unlike
// searchKeysLower it charges nothing: callers on the run-granular path
// account comparisons at RangeBetween parity themselves.
func lowerBound(keys []float64, key float64) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if keys[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// upperBound returns the first index with keys[i] > key (uncharged, see
// lowerBound).
func upperBound(keys []float64, key float64) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if keys[mid] <= key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// WalkLeaves visits every leaf in chain order, handing the visitor the
// leaf's ordinal and its parallel key/rid slices. The walk is physical, not
// a query, so nothing is charged to the cost counter — it exists for
// building derived structures (the SoA scan layout) from the authoritative
// leaf order. The visitor must not retain or mutate the slices; returning
// false stops the walk.
func (t *Tree) WalkLeaves(visit func(ordinal int, keys []float64, rids []uint32) bool) {
	n := t.root
	for !n.leaf {
		n = n.children[0]
	}
	for ord := 0; n != nil; n = n.next {
		if !visit(ord, n.keys, n.rids) {
			return
		}
		ord++
	}
}

// Count returns the number of entries in [lo, hi].
func (t *Tree) Count(lo, hi float64) int {
	c := 0
	t.RangeAsc(lo, hi, func(float64, uint32) bool { c++; return true })
	return c
}

// Min returns the smallest key (ok=false when empty).
func (t *Tree) Min() (key float64, ok bool) {
	if t.size == 0 {
		return 0, false
	}
	n := t.root
	for !n.leaf {
		t.touchInternal()
		n = n.children[0]
	}
	t.touchLeaf(true)
	return n.keys[0], true
}

// Max returns the largest key (ok=false when empty).
func (t *Tree) Max() (key float64, ok bool) {
	if t.size == 0 {
		return 0, false
	}
	n := t.root
	for !n.leaf {
		t.touchInternal()
		n = n.children[len(n.children)-1]
	}
	t.touchLeaf(true)
	return n.keys[len(n.keys)-1], true
}

// LeafPages returns the number of leaf nodes, i.e. the data-page footprint.
func (t *Tree) LeafPages() int {
	n := t.root
	for !n.leaf {
		n = n.children[0]
	}
	count := 0
	for ; n != nil; n = n.next {
		count++
	}
	return count
}

// checkInvariants validates ordering and structure; used by tests.
func (t *Tree) checkInvariants() error {
	var prev *float64
	count := 0
	var walk func(n *node, depth int) error
	leafDepth := -1
	walk = func(n *node, depth int) error {
		if n.leaf {
			if leafDepth == -1 {
				leafDepth = depth
			} else if leafDepth != depth {
				return fmt.Errorf("btree: leaves at depths %d and %d", leafDepth, depth)
			}
			for i, k := range n.keys {
				if prev != nil && k < *prev {
					return fmt.Errorf("btree: key order violated: %v after %v", k, *prev)
				}
				kk := k
				prev = &kk
				count++
				_ = i
			}
			return nil
		}
		if len(n.children) != len(n.keys)+1 {
			return fmt.Errorf("btree: internal node with %d keys, %d children", len(n.keys), len(n.children))
		}
		for _, c := range n.children {
			if err := walk(c, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root, 1); err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("btree: size %d but %d entries reachable", t.size, count)
	}
	return nil
}

// Delete removes one entry matching (key, rid), searching the duplicate run
// of key left to right. Removal is lazy: the entry leaves its leaf but no
// rebalancing occurs (under-full leaves are tolerated, the common choice in
// production B-trees given random workloads). It reports whether an entry
// was removed.
func (t *Tree) Delete(key float64, rid uint32) bool {
	if t.size == 0 {
		return false
	}
	n := t.findLeaf(key)
	idx := sort.SearchFloat64s(n.keys, key)
	for n != nil {
		for ; idx < len(n.keys); idx++ {
			t.compare()
			if n.keys[idx] > key {
				return false
			}
			if n.rids[idx] == rid {
				n.keys = append(n.keys[:idx], n.keys[idx+1:]...)
				n.rids = append(n.rids[:idx], n.rids[idx+1:]...)
				t.touchLeaf(false)
				t.size--
				return true
			}
		}
		n = n.next
		if n != nil {
			t.touchLeaf(true)
		}
		idx = 0
	}
	return false
}
