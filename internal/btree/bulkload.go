package btree

import "sort"

// Entry is one (key, rid) pair for bulk loading.
type Entry struct {
	Key float64
	RID uint32
}

// BulkLoad builds the tree bottom-up from entries, replacing any existing
// contents. Entries are sorted in place if not already ordered. Bottom-up
// construction packs leaves to the fill factor (0 < fill <= 1, default
// 0.9), producing a shallower, denser tree than repeated insertion — the
// standard way real systems build an index over an existing dataset, and
// what iDistance construction uses.
func (t *Tree) BulkLoad(entries []Entry, fill float64) {
	if fill <= 0 || fill > 1 {
		fill = 0.9
	}
	if !sort.SliceIsSorted(entries, func(a, b int) bool { return entries[a].Key < entries[b].Key }) {
		sort.Slice(entries, func(a, b int) bool { return entries[a].Key < entries[b].Key })
	}
	t.root = &node{leaf: true}
	t.height = 1
	t.size = len(entries)
	if len(entries) == 0 {
		return
	}

	perLeaf := int(float64(t.order) * fill)
	if perLeaf < 1 {
		perLeaf = 1
	}

	// Build the leaf level.
	var leaves []*node
	for lo := 0; lo < len(entries); lo += perLeaf {
		hi := lo + perLeaf
		if hi > len(entries) {
			hi = len(entries)
		}
		leaf := &node{
			leaf: true,
			keys: make([]float64, 0, hi-lo),
			rids: make([]uint32, 0, hi-lo),
		}
		for _, e := range entries[lo:hi] {
			leaf.keys = append(leaf.keys, e.Key)
			leaf.rids = append(leaf.rids, e.RID)
		}
		if len(leaves) > 0 {
			leaves[len(leaves)-1].next = leaf
		}
		leaves = append(leaves, leaf)
		t.touchLeaf(false)
	}

	// Build internal levels until a single root remains.
	level := leaves
	perNode := int(float64(t.order) * fill)
	if perNode < 2 {
		perNode = 2
	}
	for len(level) > 1 {
		var parents []*node
		for lo := 0; lo < len(level); lo += perNode {
			hi := lo + perNode
			if hi > len(level) {
				hi = len(level)
			}
			// Guard: a parent needs at least 2 children; fold a lone
			// remainder child into the previous parent.
			if hi-lo == 1 && len(parents) > 0 {
				p := parents[len(parents)-1]
				p.keys = append(p.keys, firstKey(level[lo]))
				p.children = append(p.children, level[lo])
				continue
			}
			parent := &node{}
			parent.children = append(parent.children, level[lo])
			for _, child := range level[lo+1 : hi] {
				parent.keys = append(parent.keys, firstKey(child))
				parent.children = append(parent.children, child)
			}
			parents = append(parents, parent)
		}
		level = parents
		t.height++
	}
	t.root = level[0]
}

// firstKey returns the smallest key reachable from n.
func firstKey(n *node) float64 {
	for !n.leaf {
		n = n.children[0]
	}
	return n.keys[0]
}
