package btree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"mmdr/internal/iostat"
)

func TestEmptyTree(t *testing.T) {
	tr := New(0, nil)
	if tr.Len() != 0 || tr.Height() != 1 {
		t.Fatalf("empty tree len=%d height=%d", tr.Len(), tr.Height())
	}
	if _, ok := tr.Min(); ok {
		t.Fatal("Min on empty should report !ok")
	}
	if _, ok := tr.Max(); ok {
		t.Fatal("Max on empty should report !ok")
	}
	visited := false
	tr.RangeAsc(0, 100, func(float64, uint32) bool { visited = true; return true })
	if visited {
		t.Fatal("RangeAsc on empty visited something")
	}
}

func TestInsertAndRange(t *testing.T) {
	tr := New(64, nil) // tiny pages force splits
	keys := []float64{5, 1, 9, 3, 7, 2, 8, 4, 6, 0}
	for i, k := range keys {
		tr.Insert(k, uint32(i))
	}
	if tr.Len() != 10 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	var got []float64
	tr.RangeAsc(2.5, 7.5, func(k float64, _ uint32) bool {
		got = append(got, k)
		return true
	})
	want := []float64{3, 4, 5, 6, 7}
	if len(got) != len(want) {
		t.Fatalf("range = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("range = %v, want %v", got, want)
		}
	}
}

func TestRangeEarlyStop(t *testing.T) {
	tr := New(64, nil)
	for i := 0; i < 100; i++ {
		tr.Insert(float64(i), uint32(i))
	}
	count := 0
	tr.RangeAsc(0, 99, func(float64, uint32) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestDuplicateKeys(t *testing.T) {
	tr := New(64, nil)
	// Insert many duplicates so they straddle node splits.
	for i := 0; i < 50; i++ {
		tr.Insert(7, uint32(i))
	}
	for i := 0; i < 20; i++ {
		tr.Insert(3, uint32(100+i))
		tr.Insert(11, uint32(200+i))
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	if c := tr.Count(7, 7); c != 50 {
		t.Fatalf("Count(7,7) = %d, want 50", c)
	}
	if c := tr.Count(3, 11); c != 90 {
		t.Fatalf("Count(3,11) = %d, want 90", c)
	}
	rids := map[uint32]bool{}
	tr.RangeAsc(7, 7, func(_ float64, rid uint32) bool {
		rids[rid] = true
		return true
	})
	if len(rids) != 50 {
		t.Fatalf("duplicate rids lost: %d of 50", len(rids))
	}
}

func TestMinMaxHeightGrowth(t *testing.T) {
	tr := New(64, nil)
	for i := 0; i < 1000; i++ {
		tr.Insert(float64(i%97)*1.5, uint32(i))
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.Height() < 2 {
		t.Fatalf("height %d; tiny pages should force growth", tr.Height())
	}
	min, ok := tr.Min()
	if !ok || min != 0 {
		t.Fatalf("Min = %v %v", min, ok)
	}
	max, ok := tr.Max()
	if !ok || max != 96*1.5 {
		t.Fatalf("Max = %v %v", max, ok)
	}
	if tr.LeafPages() < 2 {
		t.Fatalf("LeafPages = %d", tr.LeafPages())
	}
}

func TestIOCounting(t *testing.T) {
	var ctr iostat.Counter
	tr := New(256, &ctr)
	for i := 0; i < 500; i++ {
		tr.Insert(float64(i), uint32(i))
	}
	if ctr.PageReads == 0 || ctr.PageWrites == 0 || ctr.KeyCompares == 0 {
		t.Fatalf("insert did not count IO: %+v", ctr)
	}
	before := ctr.PageReads
	tr.RangeAsc(100, 110, func(float64, uint32) bool { return true })
	if ctr.PageReads <= before {
		t.Fatal("range scan did not count page reads")
	}
	// A narrow range must read far fewer pages than a full scan.
	ctr.Reset()
	tr.RangeAsc(100, 101, func(float64, uint32) bool { return true })
	narrow := ctr.PageReads
	ctr.Reset()
	tr.RangeAsc(0, 499, func(float64, uint32) bool { return true })
	full := ctr.PageReads
	if narrow >= full {
		t.Fatalf("narrow scan %d pages >= full scan %d", narrow, full)
	}
}

// Property-based test: against a sorted-slice model, random inserts then a
// random range query must agree exactly (as multisets, in order).
func TestRangeMatchesModelProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := New(64, nil)
		n := 1 + r.Intn(300)
		model := make([]float64, 0, n)
		for i := 0; i < n; i++ {
			k := float64(r.Intn(50)) // duplicates likely
			tr.Insert(k, uint32(i))
			model = append(model, k)
		}
		if err := tr.checkInvariants(); err != nil {
			return false
		}
		sort.Float64s(model)
		lo := float64(r.Intn(60) - 5)
		hi := lo + float64(r.Intn(30))
		var want []float64
		for _, k := range model {
			if k >= lo && k <= hi {
				want = append(want, k)
			}
		}
		var got []float64
		tr.RangeAsc(lo, hi, func(k float64, _ uint32) bool {
			got = append(got, k)
			return true
		})
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestOrderFromPageSize(t *testing.T) {
	if o := New(8192, nil).Order(); o != 512 {
		t.Fatalf("8K page order = %d, want 512", o)
	}
	if o := New(1, nil).Order(); o != 4 {
		t.Fatalf("minimum order = %d, want 4", o)
	}
}

func BenchmarkInsert(b *testing.B) {
	rng := rand.New(rand.NewSource(72))
	tr := New(0, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(rng.Float64()*1e6, uint32(i))
	}
}

func BenchmarkRangeScan(b *testing.B) {
	rng := rand.New(rand.NewSource(73))
	tr := New(0, nil)
	for i := 0; i < 100000; i++ {
		tr.Insert(rng.Float64()*1e6, uint32(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := rng.Float64() * 9e5
		tr.RangeAsc(lo, lo+1e4, func(float64, uint32) bool { return true })
	}
}

func TestDelete(t *testing.T) {
	tr := New(64, nil)
	for i := 0; i < 200; i++ {
		tr.Insert(float64(i%50), uint32(i))
	}
	if tr.Delete(999, 0) {
		t.Fatal("deleting absent key should report false")
	}
	if !tr.Delete(7, 7) {
		t.Fatal("delete of present entry failed")
	}
	if tr.Len() != 199 {
		t.Fatalf("Len = %d", tr.Len())
	}
	// The other duplicates of key 7 survive.
	want := map[uint32]bool{57: true, 107: true, 157: true}
	tr.RangeAsc(7, 7, func(_ float64, rid uint32) bool {
		if rid == 7 {
			t.Fatal("deleted rid still present")
		}
		delete(want, rid)
		return true
	})
	if len(want) != 0 {
		t.Fatalf("missing duplicates after delete: %v", want)
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	// Wrong rid on an existing key: not removed.
	if tr.Delete(7, 7) {
		t.Fatal("rid 7 was already deleted")
	}
	if New(64, nil).Delete(1, 1) {
		t.Fatal("delete on empty tree")
	}
}

func TestDeleteAllThenReinsert(t *testing.T) {
	tr := New(64, nil)
	for i := 0; i < 100; i++ {
		tr.Insert(float64(i), uint32(i))
	}
	for i := 0; i < 100; i++ {
		if !tr.Delete(float64(i), uint32(i)) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after deleting all", tr.Len())
	}
	tr.Insert(5, 5)
	if c := tr.Count(0, 10); c != 1 {
		t.Fatalf("Count = %d after reinsert", c)
	}
}

func TestBulkLoadMatchesInserts(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	entries := make([]Entry, 5000)
	for i := range entries {
		entries[i] = Entry{Key: float64(rng.Intn(1000)), RID: uint32(i)}
	}
	bulk := New(256, nil)
	bulk.BulkLoad(append([]Entry(nil), entries...), 0.9)
	if err := bulk.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	if bulk.Len() != len(entries) {
		t.Fatalf("Len = %d", bulk.Len())
	}
	ins := New(256, nil)
	for _, e := range entries {
		ins.Insert(e.Key, e.RID)
	}
	// Identical multisets over any range.
	for _, r := range [][2]float64{{0, 1000}, {100, 200}, {999, 999}, {-5, -1}} {
		var a, b []float64
		bulk.RangeAsc(r[0], r[1], func(k float64, _ uint32) bool { a = append(a, k); return true })
		ins.RangeAsc(r[0], r[1], func(k float64, _ uint32) bool { b = append(b, k); return true })
		if len(a) != len(b) {
			t.Fatalf("range %v: %d vs %d entries", r, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("range %v: key order differs at %d", r, i)
			}
		}
	}
	// Bulk loading packs denser: fewer or equal leaf pages.
	if bulk.LeafPages() > ins.LeafPages() {
		t.Fatalf("bulk %d leaves > insert-built %d", bulk.LeafPages(), ins.LeafPages())
	}
}

func TestBulkLoadEdgeCases(t *testing.T) {
	tr := New(64, nil)
	tr.BulkLoad(nil, 0)
	if tr.Len() != 0 {
		t.Fatal("empty bulk load")
	}
	tr.BulkLoad([]Entry{{Key: 5, RID: 1}}, 0.5)
	if tr.Len() != 1 {
		t.Fatal("single-entry bulk load")
	}
	if k, ok := tr.Min(); !ok || k != 5 {
		t.Fatal("min after bulk load")
	}
	// Unsorted input gets sorted.
	tr.BulkLoad([]Entry{{Key: 3, RID: 0}, {Key: 1, RID: 1}, {Key: 2, RID: 2}}, 1)
	var got []float64
	tr.RangeAsc(0, 10, func(k float64, _ uint32) bool { got = append(got, k); return true })
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("unsorted bulk load gave %v", got)
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

// Property: bulk-loaded trees behave identically to insert-built trees.
func TestBulkLoadProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(500)
		entries := make([]Entry, n)
		for i := range entries {
			entries[i] = Entry{Key: float64(r.Intn(60)), RID: uint32(i)}
		}
		tr := New(64, nil)
		tr.BulkLoad(entries, 0.5+r.Float64()/2)
		if err := tr.checkInvariants(); err != nil {
			return false
		}
		lo := float64(r.Intn(70) - 5)
		hi := lo + float64(r.Intn(40))
		want := 0
		for _, e := range entries {
			if e.Key >= lo && e.Key <= hi {
				want++
			}
		}
		return tr.Count(lo, hi) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBulkLoadVsInsert(b *testing.B) {
	rng := rand.New(rand.NewSource(76))
	entries := make([]Entry, 100000)
	for i := range entries {
		entries[i] = Entry{Key: rng.Float64() * 1e6, RID: uint32(i)}
	}
	b.Run("bulk", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tr := New(0, nil)
			tr.BulkLoad(append([]Entry(nil), entries...), 0.9)
		}
	})
	b.Run("insert", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tr := New(0, nil)
			for _, e := range entries {
				tr.Insert(e.Key, e.RID)
			}
		}
	})
}
