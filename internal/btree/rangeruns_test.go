package btree

import (
	"math/rand"
	"reflect"
	"testing"

	"mmdr/internal/iostat"
)

// collectRuns flattens a RangeRuns scan into the visited (key, rid) pairs.
func collectRuns(t *Tree, lo, hi float64, exLo, exHi bool) (ks []float64, rs []uint32, leaves int) {
	leaves = t.RangeRuns(lo, hi, exLo, exHi, func(keys []float64, rids []uint32) bool {
		ks = append(ks, keys...)
		rs = append(rs, rids...)
		return true
	})
	return ks, rs, leaves
}

// Property: RangeRuns visits exactly the entries RangeBetween visits, in the
// same order, returns the same leaf count, and charges the counter
// identically — on random trees (with duplicates and deletions) and random
// bound/flag combinations. This is the contract that lets the SoA fast path
// swap one for the other without perturbing results or the paper's logical
// I/O accounting.
func TestRangeRunsMatchesRangeBetween(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 60; trial++ {
		var ctr iostat.Counter
		tr := New(48+rng.Intn(3)*48, &ctr)
		n := 1 + rng.Intn(600)
		keys := make([]float64, n)
		for i := range keys {
			// Coarse grid: duplicates and exact boundary hits are common.
			keys[i] = float64(rng.Intn(40)) / 4
			tr.Insert(keys[i], uint32(i))
		}
		// Lazy deletions can leave under-full (even empty) leaves behind;
		// the run scan must stride across them exactly like the entry scan.
		for d := 0; d < n/4; d++ {
			i := rng.Intn(n)
			tr.Delete(keys[i], uint32(i))
		}
		for probe := 0; probe < 40; probe++ {
			lo := float64(rng.Intn(44)-2) / 4
			hi := lo + float64(rng.Intn(20))/4
			exLo, exHi := rng.Intn(2) == 1, rng.Intn(2) == 1

			ctr.Reset()
			var wantK []float64
			var wantR []uint32
			wantLeaves := tr.RangeBetween(lo, hi, exLo, exHi, func(k float64, rid uint32) bool {
				wantK = append(wantK, k)
				wantR = append(wantR, rid)
				return true
			})
			wantCost := ctr

			ctr.Reset()
			gotK, gotR, gotLeaves := collectRuns(tr, lo, hi, exLo, exHi)
			gotCost := ctr

			if !reflect.DeepEqual(wantK, gotK) || !reflect.DeepEqual(wantR, gotR) {
				t.Fatalf("trial %d probe %d: RangeRuns(%v,%v,%v,%v) visited %d entries, RangeBetween %d",
					trial, probe, lo, hi, exLo, exHi, len(gotR), len(wantR))
			}
			if gotLeaves != wantLeaves {
				t.Fatalf("trial %d probe %d: leaves %d, want %d", trial, probe, gotLeaves, wantLeaves)
			}
			if gotCost != wantCost {
				t.Fatalf("trial %d probe %d: cost %+v, want %+v", trial, probe, gotCost, wantCost)
			}
		}
	}
}

// Runs must be non-empty, per-leaf contiguous, and an early-stopping visitor
// ends the scan after the current run.
func TestRangeRunsShapeAndEarlyStop(t *testing.T) {
	tr := New(64, nil)
	for i := 0; i < 200; i++ {
		tr.Insert(float64(i%37), uint32(i))
	}
	calls := 0
	tr.RangeRuns(3, 30, false, false, func(keys []float64, rids []uint32) bool {
		if len(keys) == 0 || len(keys) != len(rids) {
			t.Fatalf("run shape: %d keys, %d rids", len(keys), len(rids))
		}
		for i := 1; i < len(keys); i++ {
			if keys[i] < keys[i-1] {
				t.Fatalf("run keys out of order: %v", keys)
			}
		}
		calls++
		return calls < 2
	})
	if calls != 2 {
		t.Fatalf("visitor called %d times after early stop, want 2", calls)
	}
}

// WalkLeaves reproduces the exact global leaf order (the concatenation of
// RangeBetween over the full key space), reports ordinals densely from 0,
// and charges nothing.
func TestWalkLeavesMatchesFullScan(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	var ctr iostat.Counter
	tr := New(48, &ctr)
	entries := make([]Entry, 300)
	for i := range entries {
		entries[i] = Entry{Key: float64(rng.Intn(50)), RID: uint32(i)}
	}
	tr.BulkLoad(entries, 0.9)
	ctr.Reset()

	var wantK []float64
	var wantR []uint32
	tr.RangeBetween(0, 50, false, false, func(k float64, rid uint32) bool {
		wantK = append(wantK, k)
		wantR = append(wantR, rid)
		return true
	})
	scanCost := ctr

	ctr.Reset()
	var gotK []float64
	var gotR []uint32
	next := 0
	tr.WalkLeaves(func(ord int, keys []float64, rids []uint32) bool {
		if ord != next {
			t.Fatalf("leaf ordinal %d, want %d", ord, next)
		}
		next++
		gotK = append(gotK, keys...)
		gotR = append(gotR, rids...)
		return true
	})
	if ctr != (iostat.Counter{}) {
		t.Fatalf("WalkLeaves charged the counter: %+v", ctr)
	}
	if scanCost == (iostat.Counter{}) {
		t.Fatal("premise: the charged full scan must have counted something")
	}
	if !reflect.DeepEqual(wantK, gotK) || !reflect.DeepEqual(wantR, gotR) {
		t.Fatalf("WalkLeaves order diverges from full range scan: %d vs %d entries", len(gotR), len(wantR))
	}
	if next != tr.LeafPages() {
		t.Fatalf("walked %d leaves, LeafPages reports %d", next, tr.LeafPages())
	}
}
