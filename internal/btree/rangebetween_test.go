package btree

import (
	"math/rand"
	"sort"
	"testing"
)

// collect runs a RangeBetween scan and returns the visited rids in order.
func collect(t *Tree, lo, hi float64, exLo, exHi bool) []uint32 {
	var out []uint32
	t.RangeBetween(lo, hi, exLo, exHi, func(_ float64, rid uint32) bool {
		out = append(out, rid)
		return true
	})
	return out
}

func TestRangeBetweenBoundFlags(t *testing.T) {
	tr := New(64, nil)
	// Duplicate runs at both boundaries, spanning multiple leaves.
	keys := []float64{1, 2, 2, 2, 3, 4, 5, 5, 5, 5, 6, 7}
	for i, k := range keys {
		tr.Insert(k, uint32(i))
	}
	cases := []struct {
		lo, hi     float64
		exLo, exHi bool
		want       int
	}{
		{2, 5, false, false, 9}, // [2,5]: three 2s + 3 + 4 + four 5s
		{2, 5, true, false, 6},  // (2,5]
		{2, 5, false, true, 5},  // [2,5)
		{2, 5, true, true, 2},   // (2,5): just 3 and 4
		{2, 2, false, false, 3}, // degenerate inclusive point
		{2, 2, true, false, 0},  // degenerate with any exclusion is empty
		{2, 2, false, true, 0},
		{0, 10, false, false, len(keys)},
		{7, 7, false, false, 1},
		{7, 9, true, false, 0}, // lo sits on the max key, excluded
	}
	for _, c := range cases {
		got := collect(tr, c.lo, c.hi, c.exLo, c.exHi)
		if len(got) != c.want {
			t.Fatalf("RangeBetween(%v,%v,exLo=%v,exHi=%v) visited %d entries, want %d",
				c.lo, c.hi, c.exLo, c.exHi, len(got), c.want)
		}
	}
}

// Regression for the iDistance annulus re-scan: a key sitting EXACTLY on a
// previous scan's edge must be seen exactly once when the annulus grows in
// steps that reuse the edge as the next scan's boundary. The former
// epsilon-based re-scan ([edge+1e-15, hi]) could skip such a key (if the
// epsilon jumped past it) or double-count it (if the first scan's hi already
// included it and the epsilon underflowed at large magnitudes, where
// edge+1e-15 == edge).
func TestRangeBetweenAnnulusRescanAtExactEdge(t *testing.T) {
	tr := New(64, nil)
	// Keys exactly at the scan edges, including a large-magnitude key where
	// adding 1e-15 is a no-op in float64.
	big := float64(1 << 40)
	keys := []float64{0.5, 1.0, 1.0, 1.5, 2.0, 2.5, big, big + 0.25}
	for i, k := range keys {
		tr.Insert(k, uint32(i))
	}

	seen := map[uint32]int{}
	scan := func(lo, hi float64, exLo bool) {
		tr.RangeBetween(lo, hi, exLo, false, func(_ float64, rid uint32) bool {
			seen[rid]++
			return true
		})
	}
	// Growing annulus, edges landing exactly on stored keys: [0,1], (1,2],
	// (2, big], (big, big+1].
	scan(0, 1.0, false)
	scan(1.0, 2.0, true)
	scan(2.0, big, true)
	scan(big, big+1, true)

	for i := range keys {
		if n := seen[uint32(i)]; n != 1 {
			t.Fatalf("key %v (rid %d) visited %d times, want exactly 1", keys[i], i, n)
		}
	}

	// The epsilon hack demonstrably breaks at big magnitudes: this is the
	// behaviour the flags replace.
	if big+1e-15 != big {
		t.Fatalf("test premise: 1e-15 must underflow at magnitude %v", float64(big))
	}
}

// Property: RangeBetween with random bounds equals filtering the sorted key
// list with the same predicates.
func TestRangeBetweenMatchesFilterProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	tr := New(48, nil)
	keys := make([]float64, 500)
	for i := range keys {
		// Coarse grid so duplicates and exact boundary hits are common.
		keys[i] = float64(rng.Intn(40)) / 4
		tr.Insert(keys[i], uint32(i))
	}
	sorted := append([]float64(nil), keys...)
	sort.Float64s(sorted)
	for trial := 0; trial < 300; trial++ {
		lo := float64(rng.Intn(44)-2) / 4
		hi := lo + float64(rng.Intn(20))/4
		exLo, exHi := rng.Intn(2) == 1, rng.Intn(2) == 1
		want := 0
		for _, k := range sorted {
			if (k > lo || (!exLo && k == lo)) && (k < hi || (!exHi && k == hi)) {
				want++
			}
		}
		got := collect(tr, lo, hi, exLo, exHi)
		if len(got) != want {
			t.Fatalf("trial %d: RangeBetween(%v,%v,%v,%v) = %d entries, want %d",
				trial, lo, hi, exLo, exHi, len(got), want)
		}
		// Visited keys must be non-decreasing and within bounds.
		prev := lo
		for _, rid := range got {
			k := keys[rid]
			if k < prev {
				t.Fatalf("trial %d: out-of-order key %v after %v", trial, k, prev)
			}
			prev = k
		}
	}
}
