// Package datagen generates the workloads of the paper's evaluation:
//
//   - Correlated synthetic clusters per the paper's Appendix A (Generate
//     Correlated Dataset): each cluster keeps s_dim "remained" dimensions
//     with high variance, fills the rest with low variance, and is rotated
//     by a random orthonormal matrix so its subspace is arbitrarily
//     oriented.
//   - A simulated Corel color-histogram collection standing in for the real
//     64-d histograms of 70,000 images (see DESIGN.md for the substitution
//     argument): sparse, skewed, weakly correlated, outlier-heavy.
//   - Plain uniform noise and query sampling helpers.
//
// All generation is deterministic given a seed.
package datagen

import (
	"fmt"
	"math"
	"math/rand"

	"mmdr/internal/dataset"
	"mmdr/internal/matrix"
)

// ClusterSpec describes one correlated cluster, mirroring the inputs of the
// paper's GCD algorithm (Appendix A, Figure 12).
type ClusterSpec struct {
	Size      int     // EC_size[i]: number of points
	SDim      int     // s_dim[i]: number of remained (high-variance) dims
	SRDim     int     // s_r_dim[i]: first remained dimension index
	VarianceR float64 // variance_r[i]: range width on remained dims
	VarianceE float64 // variance_e[i]: range width on eliminated dims
	LB        float64 // lb[i]: lower bound, positions the cluster
	Rotate    bool    // rotate the cluster to an arbitrary orientation

	// Center, when non-nil, positions the cluster centroid explicitly
	// (overriding the scalar LB, which places clusters along the diagonal
	// and thereby introduces artificial global correlation).
	Center []float64

	// Zipf draws coordinates from a Zipfian distribution over the value
	// range instead of uniform — the alternative gen_float distribution
	// Appendix A mentions. Skewed coordinates concentrate mass near the
	// range's low end.
	Zipf bool
}

// zipfRanks quantizes the Zipfian draw; 1024 ranks over the value range is
// plenty for a synthetic workload.
const zipfRanks = 1024

// Ellipticity returns the cluster's nominal ellipticity e = (b-a)/a where b
// and a are the remained/eliminated half-ranges (paper Definition 3.1).
func (c ClusterSpec) Ellipticity() float64 {
	if c.VarianceE == 0 {
		return math.Inf(1)
	}
	return (c.VarianceR - c.VarianceE) / c.VarianceE
}

// Correlated generates a dataset of totalDim-dimensional points from specs,
// following the paper's GCD algorithm: uniform values in
// [lb, lb+variance] per dimension, remained dims wide, eliminated dims
// narrow, then an optional random rotation per cluster. It returns the
// dataset together with per-point cluster labels (useful in tests).
func Correlated(totalDim int, specs []ClusterSpec, seed int64) (*dataset.Dataset, []int, error) {
	if totalDim <= 0 {
		return nil, nil, fmt.Errorf("datagen: totalDim %d", totalDim)
	}
	total := 0
	for i, s := range specs {
		if s.Size < 0 || s.SDim < 0 || s.SDim > totalDim {
			return nil, nil, fmt.Errorf("datagen: spec %d invalid (size=%d sdim=%d)", i, s.Size, s.SDim)
		}
		if s.SRDim < 0 || s.SRDim+s.SDim > totalDim {
			return nil, nil, fmt.Errorf("datagen: spec %d remained range [%d,%d) exceeds dim %d",
				i, s.SRDim, s.SRDim+s.SDim, totalDim)
		}
		total += s.Size
	}
	rng := rand.New(rand.NewSource(seed))
	ds := dataset.New(total, totalDim)
	labels := make([]int, total)
	row := 0
	for ci, s := range specs {
		var rot *matrix.Mat
		if s.Rotate {
			rot = matrix.RandomOrthonormal(totalDim, rng)
		}
		// Cluster center offset so rotation happens about the cluster's own
		// centroid: generate centered coordinates, rotate, then translate.
		center := make([]float64, totalDim)
		if s.Center != nil {
			copy(center, s.Center)
		} else {
			for k := range center {
				center[k] = s.LB + s.VarianceR/2
			}
		}
		tmp := make([]float64, totalDim)
		var zipf *rand.Zipf
		if s.Zipf {
			zipf = rand.NewZipf(rng, 1.5, 1, zipfRanks-1)
		}
		for p := 0; p < s.Size; p++ {
			for k := 0; k < totalDim; k++ {
				v := s.VarianceE
				if k >= s.SRDim && k < s.SRDim+s.SDim {
					v = s.VarianceR
				}
				// Centered draw in [-v/2, v/2]; translation added after
				// rotation to keep the subspace through the centroid.
				if zipf != nil {
					tmp[k] = (float64(zipf.Uint64())/zipfRanks - 0.5) * v
				} else {
					tmp[k] = (rng.Float64() - 0.5) * v
				}
			}
			dst := ds.Point(row)
			if rot != nil {
				rotated := rot.MulVec(tmp)
				copy(dst, rotated)
			} else {
				copy(dst, tmp)
			}
			for k := range dst {
				dst[k] += center[k]
			}
			labels[row] = ci
			row++
		}
	}
	// Shuffle rows so cluster membership is not positional.
	perm := rng.Perm(total)
	shuffled := dataset.New(total, totalDim)
	shuffledLabels := make([]int, total)
	for to, from := range perm {
		copy(shuffled.Point(to), ds.Point(from))
		shuffledLabels[to] = labels[from]
	}
	return shuffled, shuffledLabels, nil
}

// CorrelatedConfig is a convenience parameterization used by the
// experiments: numClusters equal-size clusters in dim dimensions, each with
// sdim remained dimensions at a random offset, an ellipticity expressed as
// the variance ratio varR/varE, and random rotations.
type CorrelatedConfig struct {
	N           int
	Dim         int
	NumClusters int
	SDim        int
	VarRatio    float64 // variance_r / variance_e (controls ellipticity)
	// ScaleDecay < 1 shrinks each successive cluster by that factor (both
	// variance_r and variance_e, preserving ellipticity), reproducing the
	// paper's "different size ... and distensibilities": small dense
	// clusters coexisting with large sparse ones, which is precisely what
	// defeats Euclidean clustering radii (Figure 5) and global PCA.
	// 0 or 1 keeps all clusters the same scale.
	ScaleDecay float64
	Seed       int64
}

// Generate builds the cluster specs for cfg and returns the dataset.
func (cfg CorrelatedConfig) Generate() (*dataset.Dataset, []int, error) {
	if cfg.NumClusters <= 0 || cfg.N < cfg.NumClusters {
		return nil, nil, fmt.Errorf("datagen: bad config N=%d clusters=%d", cfg.N, cfg.NumClusters)
	}
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x5eed))
	per := cfg.N / cfg.NumClusters
	varE := 1.0
	varR := cfg.VarRatio
	// Random cluster centers spread independently per dimension, so the
	// collection has no artificial global correlation (the paper's GDR
	// baseline fails precisely because the data is only locally
	// correlated). The spread is deliberately comparable to the cluster
	// extent, so elongated clusters from different subspaces overlap and
	// cross — the Figure 5 scenario where Euclidean clustering cannot
	// separate what Mahalanobis clustering can.
	spread := varR * 1.5
	decay := cfg.ScaleDecay
	if decay <= 0 || decay > 1 {
		decay = 1
	}
	scale := 1.0
	specs := make([]ClusterSpec, cfg.NumClusters)
	for i := range specs {
		size := per
		if i == cfg.NumClusters-1 {
			size = cfg.N - per*(cfg.NumClusters-1)
		}
		maxStart := cfg.Dim - cfg.SDim
		start := 0
		if maxStart > 0 {
			start = rng.Intn(maxStart + 1)
		}
		center := make([]float64, cfg.Dim)
		for k := range center {
			center[k] = rng.Float64() * spread
		}
		specs[i] = ClusterSpec{
			Size:      size,
			SDim:      cfg.SDim,
			SRDim:     start,
			VarianceR: varR * scale,
			VarianceE: varE * scale,
			Center:    center,
			Rotate:    true,
		}
		scale *= decay
	}
	return Correlated(cfg.Dim, specs, cfg.Seed)
}

// Uniform returns n points uniform in [0,1]^dim.
func Uniform(n, dim int, seed int64) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	ds := dataset.New(n, dim)
	for i := range ds.Data {
		ds.Data[i] = rng.Float64()
	}
	return ds
}

// ColorHistogram simulates a Corel-style color-histogram collection:
// n images, dim color bins. Each image draws a small set of dominant colors
// (images are skewed toward few colors — paper §6.1), most bins are zero,
// and images loosely cluster around numThemes shared color themes with an
// outlierFrac fraction of unthemed images. Histograms are L1-normalized,
// matching real color histograms.
func ColorHistogram(n, dim, numThemes int, outlierFrac float64, seed int64) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	ds := dataset.New(n, dim)

	// Each theme is a sparse prototype: a handful of dominant bins with
	// exponential weights.
	type theme struct {
		bins    []int
		weights []float64
	}
	themes := make([]theme, numThemes)
	for t := range themes {
		k := 4 + rng.Intn(5) // 4-8 dominant colors per theme
		bins := rng.Perm(dim)[:k]
		ws := make([]float64, k)
		for i := range ws {
			ws[i] = rng.ExpFloat64() + 0.2
		}
		themes[t] = theme{bins: bins, weights: ws}
	}

	for i := 0; i < n; i++ {
		row := ds.Point(i)
		if rng.Float64() < outlierFrac || numThemes == 0 {
			// Outlier image: random sparse histogram unrelated to themes.
			k := 3 + rng.Intn(6)
			for _, b := range rng.Perm(dim)[:k] {
				row[b] = rng.ExpFloat64()
			}
		} else {
			th := themes[rng.Intn(numThemes)]
			// Theme colors with per-image perturbation.
			for j, b := range th.bins {
				row[b] = th.weights[j] * (0.5 + rng.Float64())
			}
			// A couple of incidental colors.
			for _, b := range rng.Perm(dim)[:2] {
				row[b] += 0.15 * rng.ExpFloat64()
			}
		}
		// L1 normalize (histograms sum to 1).
		var sum float64
		for _, v := range row {
			sum += v
		}
		if sum > 0 {
			for j := range row {
				row[j] /= sum
			}
		}
	}
	return ds
}

// SampleQueries draws k query points: points from ds perturbed by small
// Gaussian noise (sigma relative to the per-dimension data spread), the
// standard methodology for KNN evaluation when no separate query log exists.
func SampleQueries(ds *dataset.Dataset, k int, sigma float64, seed int64) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	q := dataset.New(k, ds.Dim)
	for i := 0; i < k; i++ {
		src := ds.Point(rng.Intn(ds.N))
		dst := q.Point(i)
		for j, v := range src {
			dst[j] = v + rng.NormFloat64()*sigma
		}
	}
	return q
}

// Sparsity returns the fraction of exactly-zero attributes, used by tests
// to validate the color-histogram simulator's skew.
func Sparsity(ds *dataset.Dataset) float64 {
	if len(ds.Data) == 0 {
		return 0
	}
	zeros := 0
	for _, v := range ds.Data {
		if v == 0 {
			zeros++
		}
	}
	return float64(zeros) / float64(len(ds.Data))
}

// Normalize rescales every dimension of ds in place to [0,1] (min-max),
// so the paper's absolute thresholds (β = 0.1, MaxMPE = 0.05) apply
// directly. Constant dimensions map to 0. It returns ds for chaining.
func Normalize(ds *dataset.Dataset) *dataset.Dataset {
	if ds.N == 0 {
		return ds
	}
	for j := 0; j < ds.Dim; j++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := 0; i < ds.N; i++ {
			v := ds.Point(i)[j]
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		span := hi - lo
		if span <= 0 {
			for i := 0; i < ds.N; i++ {
				ds.Point(i)[j] = 0
			}
			continue
		}
		inv := 1 / span
		for i := 0; i < ds.N; i++ {
			ds.Point(i)[j] = (ds.Point(i)[j] - lo) * inv
		}
	}
	return ds
}
