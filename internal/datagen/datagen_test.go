package datagen

import (
	"math"
	"testing"

	"mmdr/internal/dataset"
	"mmdr/internal/stats"
)

func TestCorrelatedShapeAndDeterminism(t *testing.T) {
	specs := []ClusterSpec{
		{Size: 50, SDim: 2, SRDim: 0, VarianceR: 10, VarianceE: 1, LB: 0, Rotate: true},
		{Size: 30, SDim: 3, SRDim: 2, VarianceR: 8, VarianceE: 0.5, LB: 5, Rotate: false},
	}
	ds, labels, err := Correlated(6, specs, 42)
	if err != nil {
		t.Fatal(err)
	}
	if ds.N != 80 || ds.Dim != 6 || len(labels) != 80 {
		t.Fatalf("shape %dx%d labels %d", ds.N, ds.Dim, len(labels))
	}
	counts := map[int]int{}
	for _, l := range labels {
		counts[l]++
	}
	if counts[0] != 50 || counts[1] != 30 {
		t.Fatalf("label counts %v", counts)
	}
	ds2, _, err := Correlated(6, specs, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ds.Data {
		if ds.Data[i] != ds2.Data[i] {
			t.Fatal("same seed must reproduce identical data")
		}
	}
	ds3, _, _ := Correlated(6, specs, 43)
	same := true
	for i := range ds.Data {
		if ds.Data[i] != ds3.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestCorrelatedValidation(t *testing.T) {
	if _, _, err := Correlated(0, nil, 1); err == nil {
		t.Fatal("expected error for dim 0")
	}
	if _, _, err := Correlated(4, []ClusterSpec{{Size: 1, SDim: 5}}, 1); err == nil {
		t.Fatal("expected error for sdim > dim")
	}
	if _, _, err := Correlated(4, []ClusterSpec{{Size: 1, SDim: 2, SRDim: 3}}, 1); err == nil {
		t.Fatal("expected error for remained range overflow")
	}
}

// The generated clusters must actually be low-dimensional: PCA on one
// cluster's points should put nearly all variance in the first SDim
// components, even after rotation.
func TestCorrelatedClustersAreLowDimensional(t *testing.T) {
	specs := []ClusterSpec{{Size: 400, SDim: 3, SRDim: 1, VarianceR: 20, VarianceE: 0.4, LB: 0, Rotate: true}}
	dim := 10
	ds, _, err := Correlated(dim, specs, 7)
	if err != nil {
		t.Fatal(err)
	}
	p, err := stats.ComputePCA(ds.Data, dim)
	if err != nil {
		t.Fatal(err)
	}
	var lead, rest float64
	for i, v := range p.Variances {
		if i < 3 {
			lead += v
		} else {
			rest += v
		}
	}
	if lead < 50*rest {
		t.Fatalf("energy not concentrated: lead=%v rest=%v (variances %v)", lead, rest, p.Variances)
	}
}

func TestEllipticity(t *testing.T) {
	c := ClusterSpec{VarianceR: 10, VarianceE: 1}
	if e := c.Ellipticity(); math.Abs(e-9) > 1e-12 {
		t.Fatalf("Ellipticity = %v, want 9", e)
	}
	if !math.IsInf(ClusterSpec{VarianceR: 1}.Ellipticity(), 1) {
		t.Fatal("zero VarianceE should give +Inf ellipticity")
	}
}

func TestCorrelatedConfig(t *testing.T) {
	cfg := CorrelatedConfig{N: 101, Dim: 16, NumClusters: 4, SDim: 3, VarRatio: 12, Seed: 9}
	ds, labels, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if ds.N != 101 || ds.Dim != 16 {
		t.Fatalf("shape %dx%d", ds.N, ds.Dim)
	}
	counts := map[int]int{}
	for _, l := range labels {
		counts[l]++
	}
	if len(counts) != 4 {
		t.Fatalf("cluster count %d", len(counts))
	}
	// Remainder goes to the last cluster: 25+25+25+26.
	if counts[3] != 26 {
		t.Fatalf("last cluster size %d, want 26", counts[3])
	}
	if _, _, err := (CorrelatedConfig{N: 2, NumClusters: 5, Dim: 4, SDim: 1}).Generate(); err == nil {
		t.Fatal("expected error when N < clusters")
	}
}

func TestUniform(t *testing.T) {
	ds := Uniform(100, 5, 3)
	if ds.N != 100 || ds.Dim != 5 {
		t.Fatalf("shape %dx%d", ds.N, ds.Dim)
	}
	for _, v := range ds.Data {
		if v < 0 || v >= 1 {
			t.Fatalf("value %v out of [0,1)", v)
		}
	}
}

func TestColorHistogramProperties(t *testing.T) {
	ds := ColorHistogram(500, 64, 8, 0.1, 17)
	if ds.N != 500 || ds.Dim != 64 {
		t.Fatalf("shape %dx%d", ds.N, ds.Dim)
	}
	// Histograms are normalized and skewed: most attributes zero.
	for i := 0; i < ds.N; i++ {
		var sum float64
		for _, v := range ds.Point(i) {
			if v < 0 {
				t.Fatal("negative histogram bin")
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("histogram %d sums to %v", i, sum)
		}
	}
	if s := Sparsity(ds); s < 0.6 {
		t.Fatalf("sparsity %v, want > 0.6 (paper: many attributes are 0)", s)
	}
}

func TestColorHistogramAllOutliers(t *testing.T) {
	ds := ColorHistogram(50, 32, 0, 0, 5)
	if ds.N != 50 {
		t.Fatal("shape")
	}
}

func TestSampleQueries(t *testing.T) {
	ds := Uniform(50, 4, 1)
	q := SampleQueries(ds, 10, 0.01, 2)
	if q.N != 10 || q.Dim != 4 {
		t.Fatalf("shape %dx%d", q.N, q.Dim)
	}
	// With tiny sigma each query must be near some data point.
	for i := 0; i < q.N; i++ {
		best := math.Inf(1)
		for j := 0; j < ds.N; j++ {
			var d float64
			for k := 0; k < 4; k++ {
				diff := q.Point(i)[k] - ds.Point(j)[k]
				d += diff * diff
			}
			if d < best {
				best = d
			}
		}
		if best > 0.01 {
			t.Fatalf("query %d too far from data: %v", i, best)
		}
	}
}

func TestSparsityEmpty(t *testing.T) {
	ds := Uniform(0, 3, 1)
	if Sparsity(ds) != 0 {
		t.Fatal("empty sparsity should be 0")
	}
}

func TestZipfClusterSkew(t *testing.T) {
	spec := ClusterSpec{Size: 2000, SDim: 2, SRDim: 0, VarianceR: 10, VarianceE: 1, Zipf: true}
	ds, _, err := Correlated(4, []ClusterSpec{spec}, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Zipfian coordinates pile up near the low end of the range: the
	// median of dimension 0 sits well below the range midpoint.
	vals := make([]float64, ds.N)
	for i := 0; i < ds.N; i++ {
		vals[i] = ds.Point(i)[0]
	}
	sortFloats(vals)
	median := vals[ds.N/2]
	lo, hi := vals[0], vals[ds.N-1]
	mid := (lo + hi) / 2
	if median >= mid {
		t.Fatalf("Zipf cluster not skewed: median %v >= midpoint %v", median, mid)
	}

	// The uniform variant is roughly symmetric.
	spec.Zipf = false
	ds2, _, err := Correlated(4, []ClusterSpec{spec}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < ds2.N; i++ {
		vals[i] = ds2.Point(i)[0]
	}
	sortFloats(vals)
	m2 := vals[ds2.N/2]
	lo2, hi2 := vals[0], vals[ds2.N-1]
	if math.Abs(m2-(lo2+hi2)/2) > (hi2-lo2)*0.15 {
		t.Fatalf("uniform cluster unexpectedly skewed: median %v range [%v,%v]", m2, lo2, hi2)
	}
}

func sortFloats(v []float64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

func TestNormalize(t *testing.T) {
	ds := dataset.New(3, 2)
	copy(ds.Data, []float64{-2, 5, 0, 5, 2, 5})
	Normalize(ds)
	// Dimension 0 spans [-2,2] -> [0,1]; dimension 1 is constant -> 0.
	if ds.Point(0)[0] != 0 || ds.Point(1)[0] != 0.5 || ds.Point(2)[0] != 1 {
		t.Fatalf("normalized dim 0: %v %v %v", ds.Point(0)[0], ds.Point(1)[0], ds.Point(2)[0])
	}
	for i := 0; i < 3; i++ {
		if ds.Point(i)[1] != 0 {
			t.Fatalf("constant dim should map to 0, got %v", ds.Point(i)[1])
		}
	}
	// Empty dataset is a no-op.
	Normalize(dataset.New(0, 2))
}
