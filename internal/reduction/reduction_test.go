package reduction

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mmdr/internal/datagen"
	"mmdr/internal/dataset"
	"mmdr/internal/matrix"
	"mmdr/internal/stats"
)

// planeData builds points on a noisy 2-d plane inside dim-dimensional
// space.
func planeData(n, dim int, noise float64, seed int64) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	ds := dataset.New(n, dim)
	for i := 0; i < n; i++ {
		a, b := rng.NormFloat64()*5, rng.NormFloat64()*3
		p := ds.Point(i)
		p[0] = a
		p[1] = b
		for j := 2; j < dim; j++ {
			p[j] = rng.NormFloat64() * noise
		}
	}
	return ds
}

func TestSubspaceProjectResidual(t *testing.T) {
	// Subspace = xy-plane in 4-d, centroid at origin.
	basis := matrix.New(4, 2)
	basis.Set(0, 0, 1)
	basis.Set(1, 1, 1)
	s := &Subspace{Centroid: make([]float64, 4), Basis: basis, Dr: 2}
	p := []float64{3, 4, 2, 1}
	coords := s.Project(p)
	if coords[0] != 3 || coords[1] != 4 {
		t.Fatalf("Project = %v", coords)
	}
	if r := s.Residual(p); math.Abs(r-math.Sqrt(5)) > 1e-12 {
		t.Fatalf("Residual = %v, want sqrt(5)", r)
	}
	dst := make([]float64, 2)
	s.ProjectInto(p, dst)
	if dst[0] != coords[0] || dst[1] != coords[1] {
		t.Fatal("ProjectInto disagrees with Project")
	}
}

func TestMemberCoords(t *testing.T) {
	s := &Subspace{Dr: 2, Coords: []float64{1, 2, 3, 4}}
	if c := s.MemberCoords(1); c[0] != 3 || c[1] != 4 {
		t.Fatalf("MemberCoords = %v", c)
	}
}

func TestGDRReducesPlane(t *testing.T) {
	dim := 8
	ds := planeData(500, dim, 0.01, 51)
	g := &GDR{TargetDim: 2}
	if g.Name() != "GDR" {
		t.Fatal("name")
	}
	res, err := g.Reduce(ds)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(ds.N); err != nil {
		t.Fatal(err)
	}
	if len(res.Subspaces) != 1 || len(res.Outliers) != 0 {
		t.Fatalf("GDR should give exactly one subspace, got %d + %d outliers",
			len(res.Subspaces), len(res.Outliers))
	}
	s := res.Subspaces[0]
	if s.Dr != 2 || len(s.Members) != ds.N {
		t.Fatalf("subspace Dr=%d members=%d", s.Dr, len(s.Members))
	}
	if s.MPE > 0.05 {
		t.Fatalf("plane data should project with tiny MPE, got %v", s.MPE)
	}
	// Reduced-space distances approximate original distances on plane data.
	a, b := ds.Point(0), ds.Point(1)
	da := matrix.Dist(a, b)
	dr := matrix.Dist(s.Project(a), s.Project(b))
	if math.Abs(da-dr) > 0.2 {
		t.Fatalf("distances diverge: %v vs %v", da, dr)
	}
}

func TestGDRValidation(t *testing.T) {
	ds := planeData(10, 4, 0.1, 52)
	if _, err := (&GDR{TargetDim: 0}).Reduce(ds); err == nil {
		t.Fatal("expected error for TargetDim 0")
	}
	if _, err := (&GDR{TargetDim: 5}).Reduce(ds); err == nil {
		t.Fatal("expected error for TargetDim > dim")
	}
	if _, err := (&GDR{TargetDim: 2}).Reduce(dataset.New(0, 4)); err == nil {
		t.Fatal("expected error for empty dataset")
	}
}

func TestLDRSeparatesLocalClusters(t *testing.T) {
	// Two locally correlated clusters in 10-d, far apart: LDR should find
	// both, each with low retained dimensionality.
	cfg := datagen.CorrelatedConfig{N: 800, Dim: 10, NumClusters: 2, SDim: 2, VarRatio: 20, Seed: 53}
	ds, _, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	datagen.Normalize(ds)
	l := &LDR{MaxClusters: 6, MaxDim: 5, MaxReconDist: 0.1, Seed: 1}
	if l.Name() != "LDR" {
		t.Fatal("name")
	}
	res, err := l.Reduce(ds)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(ds.N); err != nil {
		t.Fatal(err)
	}
	if len(res.Subspaces) == 0 {
		t.Fatal("LDR found no subspaces")
	}
	st := res.Summarize()
	if st.TotalPoints != ds.N {
		t.Fatalf("summary covers %d of %d", st.TotalPoints, ds.N)
	}
	// Most points should be captured in low-dim subspaces.
	if st.NumOutliers > ds.N/4 {
		t.Fatalf("too many outliers: %d", st.NumOutliers)
	}
	if st.AvgDim > 6 {
		t.Fatalf("avg dim %v too high for locally 2-d data", st.AvgDim)
	}
}

func TestLDRForcedDim(t *testing.T) {
	cfg := datagen.CorrelatedConfig{N: 400, Dim: 8, NumClusters: 2, SDim: 2, VarRatio: 15, Seed: 54}
	ds, _, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	datagen.Normalize(ds)
	res, err := (&LDR{MaxClusters: 4, ForcedDim: 3, MaxReconDist: 0.5, Seed: 2}).Reduce(ds)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Subspaces {
		if s.Dr != 3 {
			t.Fatalf("ForcedDim violated: Dr=%d", s.Dr)
		}
	}
}

func TestLDREmptyDataset(t *testing.T) {
	if _, err := (&LDR{}).Reduce(dataset.New(0, 3)); err == nil {
		t.Fatal("expected error")
	}
}

func TestLDRUncorrelatedDataMostlyOutliers(t *testing.T) {
	// Uniform noise has no low-dimensional structure: with a tight
	// reconstruction bound and an uncapped outlier budget nearly
	// everything must become an outlier.
	ds := datagen.Uniform(500, 16, 55)
	res, err := (&LDR{MaxClusters: 5, MaxDim: 4, MaxReconDist: 0.05, Xi: 1, Seed: 3}).Reduce(ds)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(ds.N); err != nil {
		t.Fatal(err)
	}
	if len(res.Outliers) < ds.N/2 {
		t.Fatalf("uniform noise should be mostly outliers, got %d of %d", len(res.Outliers), ds.N)
	}

	// The default ξ bounds the outlier set (clusters below MinSize aside).
	capped, err := (&LDR{MaxClusters: 5, MaxDim: 4, MaxReconDist: 0.05, Seed: 3}).Reduce(ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(capped.Outliers) >= len(res.Outliers) {
		t.Fatalf("xi cap had no effect: %d vs %d outliers", len(capped.Outliers), len(res.Outliers))
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	ds := planeData(50, 4, 0.01, 56)
	res, err := (&GDR{TargetDim: 2}).Reduce(ds)
	if err != nil {
		t.Fatal(err)
	}
	// Duplicate a member.
	res.Outliers = append(res.Outliers, res.Subspaces[0].Members[0])
	if err := res.Validate(ds.N); err == nil {
		t.Fatal("Validate missed duplicate assignment")
	}
	// Missing point.
	res.Outliers = nil
	res.Subspaces[0].Members = res.Subspaces[0].Members[:ds.N-1]
	res.Subspaces[0].Coords = res.Subspaces[0].Coords[:(ds.N-1)*2]
	if err := res.Validate(ds.N); err == nil {
		t.Fatal("Validate missed unassigned point")
	}
}

// Property: residual² + ‖projection‖² == ‖p - centroid‖² for subspaces built
// from PCA bases.
func TestSubspacePythagorasProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(57))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dim := 3 + r.Intn(5)
		n := dim*3 + 10
		pts := make([]float64, n*dim)
		for i := range pts {
			pts[i] = r.NormFloat64() * 3
		}
		pca, err := stats.ComputePCA(pts, dim)
		if err != nil {
			return false
		}
		dr := 1 + r.Intn(dim)
		s := &Subspace{Centroid: pca.Mean, Basis: pca.Components.LeadingCols(dr), Dr: dr}
		p := pts[:dim]
		var total float64
		for i := range p {
			d := p[i] - s.Centroid[i]
			total += d * d
		}
		coords := s.Project(p)
		var kept float64
		for _, c := range coords {
			kept += c * c
		}
		return math.Abs(s.ResidualSq(p)+kept-total) < 1e-8*(1+total)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestIdentityReducerIsLossless(t *testing.T) {
	ds := planeData(400, 6, 0.5, 58)
	r := &Identity{Clusters: 4, Seed: 1}
	if r.Name() != "identity" {
		t.Fatal("name")
	}
	res, err := r.Reduce(ds)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(ds.N); err != nil {
		t.Fatal(err)
	}
	if len(res.Outliers) != 0 {
		t.Fatalf("identity reduction has %d outliers", len(res.Outliers))
	}
	// Every subspace keeps full dimensionality and reconstructs exactly.
	for _, s := range res.Subspaces {
		if s.Dr != ds.Dim {
			t.Fatalf("Dr = %d, want %d", s.Dr, ds.Dim)
		}
		for k, m := range s.Members[:min(3, len(s.Members))] {
			rec := s.Reconstruct(s.MemberCoords(k))
			orig := ds.Point(m)
			for j := range orig {
				if math.Abs(rec[j]-orig[j]) > 1e-12 {
					t.Fatalf("identity reconstruction not exact at point %d dim %d", m, j)
				}
			}
			if r := s.Residual(orig); r > 1e-9 {
				t.Fatalf("identity residual %v", r)
			}
		}
	}
	if _, err := (&Identity{}).Reduce(dataset.New(0, 3)); err == nil {
		t.Fatal("expected error for empty dataset")
	}
}

func TestSubspaceReconstructRoundTrip(t *testing.T) {
	ds := planeData(300, 8, 0.001, 59)
	res, err := (&GDR{TargetDim: 2}).Reduce(ds)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Subspaces[0]
	// Members lie near the plane: reconstruction ~= original.
	for k, m := range s.Members[:5] {
		rec := s.Reconstruct(s.MemberCoords(k))
		if d := matrix.Dist(rec, ds.Point(m)); d > 0.05 {
			t.Fatalf("reconstruction error %v for near-planar data", d)
		}
	}
}
