// Package reduction defines the shared vocabulary of all dimensionality
// reducers in the repository — the Subspace and Result types and the Reducer
// interface — and implements the paper's two baselines:
//
//   - GDR (Global Dimensionality Reduction): one global PCA over the whole
//     dataset, reduced to a single target dimensionality.
//   - LDR (Local Dimensionality Reduction, Chakrabarti & Mehrotra VLDB'00):
//     Euclidean spatial clusters, each reduced with its own PCA subject to a
//     reconstruction-distance bound; points that no cluster represents well
//     become outliers.
//
// The MMDR algorithm itself lives in internal/core and produces the same
// Result type, so indexes and evaluation code are reducer-agnostic.
package reduction

import (
	"fmt"
	"math"

	"mmdr/internal/dataset"
	"mmdr/internal/matrix"
)

// Subspace is one locally reduced cluster: an affine subspace of the
// original d-dimensional space spanned by Basis and anchored at Centroid,
// together with the reduced coordinates of its member points.
//
// The persistdrift analyzer audits the gob contract: every unexported
// field is skipped by gob and must be re-derived by EnsureKernels after a
// Load, so the query-kernel caches can never silently arrive nil.
//
//mmdr:persist rebuild=EnsureKernels
type Subspace struct {
	ID       int
	Centroid []float64   // original-space anchor (cluster centroid)
	Basis    *matrix.Mat // d x Dr matrix, orthonormal columns
	Dr       int         // retained dimensionality

	Members []int     // indices into the source dataset
	Coords  []float64 // row-major len(Members) x Dr reduced coordinates

	MaxRadius float64 // max ‖coords‖ over members: the subspace's data-sphere radius
	MPE       float64 // mean ProjDist_r of members at dimensionality Dr

	// Fields retained for dynamic insertion and diagnostics (the paper's
	// third auxiliary array): the cluster's shape in the original space.
	CovInv     *matrix.Mat
	LogDet     float64
	MahaRadius float64

	// Query kernels, derived from Basis/CovInv by EnsureKernels. Unexported
	// so gob skips them; they are rebuilt on load and after build.
	//
	// basisT is the transposed basis stored row-major Dr×d flat: row j is
	// basis column j, contiguous, so projection is Dr contiguous dot
	// products instead of Dr strided column walks over the d×Dr Basis.
	basisT []float64
	// mahaChol is U = Lᵀ (upper triangular, row-major) where CovInv = L·Lᵀ,
	// so the Mahalanobis quadratic form (p-c)ᵀ·CovInv·(p-c) collapses to
	// ‖U·(p-c)‖² — a triangular matvec at half the multiplies of the full
	// d×d quadratic form. nil when CovInv is nil or not numerically SPD
	// (MahaSq then falls back to the quadratic form).
	mahaChol *matrix.Mat
}

// EnsureKernels (re)derives the unexported query kernels from the exported
// fields: the transposed basis from Basis, and the Cholesky factor of
// CovInv when present. It is idempotent, cheap to re-invoke, and must be
// called after constructing or deserializing a Subspace before the
// allocation-free query paths can use the fast projections; the slow
// column-walk fallbacks remain correct (and bit-identical) when it has not
// run. Not safe for concurrent use with readers of the same Subspace.
func (s *Subspace) EnsureKernels() {
	if s.basisT == nil && s.Basis != nil && s.Dr > 0 {
		d := s.Basis.Rows
		bt := make([]float64, s.Dr*d)
		for i := 0; i < d; i++ {
			row := s.Basis.Row(i)
			for j := 0; j < s.Dr; j++ {
				bt[j*d+i] = row[j]
			}
		}
		s.basisT = bt
	}
	if s.mahaChol == nil && s.CovInv != nil {
		if l, err := matrix.Cholesky(s.CovInv); err == nil {
			s.mahaChol = l.T()
		}
	}
}

// KernelBasisT exposes the transposed-basis kernel (nil before
// EnsureKernels). Read-only: tests and persistence checks.
func (s *Subspace) KernelBasisT() []float64 { return s.basisT }

// KernelMahaChol exposes the cached Cholesky transpose of CovInv (nil
// before EnsureKernels or when CovInv is absent/non-SPD). Read-only.
func (s *Subspace) KernelMahaChol() *matrix.Mat { return s.mahaChol }

// Project maps an original-space point into the subspace's reduced
// coordinates: (p - centroid)ᵀ · Basis.
func (s *Subspace) Project(p []float64) []float64 {
	out := make([]float64, s.Dr)
	s.ProjectInto(p, out)
	return out
}

// ProjectInto is Project without allocation; dst must have length Dr.
// With kernels present (EnsureKernels) each output coordinate is one
// contiguous pass over a transposed-basis row; the fallback walks Basis
// columns. Both accumulate in the same serial order, so results are
// bit-identical either way.
//
//mmdr:hotpath
func (s *Subspace) ProjectInto(p []float64, dst []float64) {
	d := len(s.Centroid)
	if s.basisT != nil {
		for j := 0; j < s.Dr; j++ {
			row := s.basisT[j*d : (j+1)*d]
			var acc float64
			i := 0
			for ; i+4 <= d; i += 4 {
				r4 := row[i : i+4 : i+4]
				acc += (p[i] - s.Centroid[i]) * r4[0]
				acc += (p[i+1] - s.Centroid[i+1]) * r4[1]
				acc += (p[i+2] - s.Centroid[i+2]) * r4[2]
				acc += (p[i+3] - s.Centroid[i+3]) * r4[3]
			}
			for ; i < d; i++ {
				acc += (p[i] - s.Centroid[i]) * row[i]
			}
			dst[j] = acc
		}
		return
	}
	for j := 0; j < s.Dr; j++ {
		var acc float64
		for i := 0; i < d; i++ {
			acc += (p[i] - s.Centroid[i]) * s.Basis.At(i, j)
		}
		dst[j] = acc
	}
}

// ProjectDiffInto projects an already-centered difference vector
// diff = p - Centroid into dst (length Dr). It is the query-side fast path:
// the caller computes diff once into reusable scratch and the projection
// becomes one contiguous matrix-vector product over the transposed basis.
// Accumulation order matches ProjectInto, so for the same point the
// coordinates are bit-identical.
//
//mmdr:hotpath
func (s *Subspace) ProjectDiffInto(diff, dst []float64) {
	if s.basisT != nil {
		matrix.MatVecRowMajor(s.basisT, s.Dr, len(diff), diff, dst)
		return
	}
	d := len(diff)
	for j := 0; j < s.Dr; j++ {
		var acc float64
		for i := 0; i < d; i++ {
			acc += diff[i] * s.Basis.At(i, j)
		}
		dst[j] = acc
	}
}

// ProjectResidualInto fuses projection and residual: it fills dst (length
// Dr) with the reduced coordinates of p and returns ProjDist_r² in a single
// pass over the point, computing each centered difference once and
// streaming the row-major Basis. The coordinates are bit-identical to
// ProjectInto and the residual to ResidualSq (same accumulation orders);
// fusing removes the second full pass the separate calls would make.
//
//mmdr:hotpath
func (s *Subspace) ProjectResidualInto(p []float64, dst []float64) float64 {
	d := len(s.Centroid)
	dr := s.Dr
	for j := range dst {
		dst[j] = 0
	}
	var total float64
	for i := 0; i < d; i++ {
		diff := p[i] - s.Centroid[i]
		total += diff * diff
		if diff == 0 {
			continue
		}
		row := s.Basis.Data[i*dr : (i+1)*dr]
		for j, b := range row {
			dst[j] += diff * b
		}
	}
	var retained float64
	for _, c := range dst {
		retained += c * c
	}
	res := total - retained
	if res < 0 {
		return 0
	}
	return res
}

// ResidualSq returns ProjDist_r²: the squared distance from p to the
// subspace (energy in the eliminated dimensions).
//
//mmdr:hotpath
func (s *Subspace) ResidualSq(p []float64) float64 {
	d := len(s.Centroid)
	var total float64
	for i := 0; i < d; i++ {
		diff := p[i] - s.Centroid[i]
		total += diff * diff
	}
	var retained float64
	if s.basisT != nil {
		for j := 0; j < s.Dr; j++ {
			row := s.basisT[j*d : (j+1)*d]
			var acc float64
			for i := 0; i < d; i++ {
				acc += (p[i] - s.Centroid[i]) * row[i]
			}
			retained += acc * acc
		}
	} else {
		for j := 0; j < s.Dr; j++ {
			var acc float64
			for i := 0; i < d; i++ {
				acc += (p[i] - s.Centroid[i]) * s.Basis.At(i, j)
			}
			retained += acc * acc
		}
	}
	res := total - retained
	if res < 0 {
		return 0
	}
	return res
}

// MahaSq computes the Mahalanobis quadratic form (p-Centroid)ᵀ · CovInv ·
// (p-Centroid). diff is caller scratch of length d (allocated when nil).
// With the Cholesky kernel cached the form is a triangular matvec
// ‖U·diff‖² at half the multiplies; the fallback evaluates the full
// quadratic form against CovInv. Returns 0 when CovInv is nil.
//
//mmdr:hotpath (the nil-diff make is the cold convenience fallback; callers on the measured path pass scratch)
func (s *Subspace) MahaSq(p []float64, diff []float64) float64 {
	if s.CovInv == nil {
		return 0
	}
	d := len(s.Centroid)
	if diff == nil {
		diff = make([]float64, d)
	}
	diff = diff[:d]
	for i := 0; i < d; i++ {
		diff[i] = p[i] - s.Centroid[i]
	}
	if u := s.mahaChol; u != nil {
		var total float64
		for j := 0; j < d; j++ {
			acc := matrix.DotUnroll4(u.Row(j)[j:], diff[j:])
			total += acc * acc
		}
		return total
	}
	var total float64
	for i := 0; i < d; i++ {
		di := diff[i]
		if di == 0 {
			continue
		}
		total += di * matrix.DotUnroll4(s.CovInv.Row(i), diff)
	}
	return total
}

// Residual returns ProjDist_r (Euclidean).
func (s *Subspace) Residual(p []float64) float64 { return math.Sqrt(s.ResidualSq(p)) }

// MemberCoords returns a view of member k's reduced coordinates.
//
//mmdr:hotpath
func (s *Subspace) MemberCoords(k int) []float64 {
	return s.Coords[k*s.Dr : (k+1)*s.Dr]
}

// Result is the output of any dimensionality reducer: a set of reduced
// subspaces plus the points left in the original space as outliers. It is
// gob-persisted whole; the directive keeps any future unexported field
// from silently vanishing across a save/load round trip.
//
//mmdr:persist
type Result struct {
	Dim       int // original dimensionality
	Subspaces []*Subspace
	Outliers  []int // indices into the source dataset
}

// Reducer is implemented by GDR, LDR and MMDR.
type Reducer interface {
	// Reduce partitions ds into reduced subspaces and outliers.
	Reduce(ds *dataset.Dataset) (*Result, error)
	// Name identifies the method in experiment tables.
	Name() string
}

// Stats summarizes a Result for reports.
type Stats struct {
	NumSubspaces int
	NumOutliers  int
	AvgDim       float64 // member-weighted average retained dimensionality
	MaxDim       int
	TotalPoints  int
}

// Summarize computes summary statistics of r.
func (r *Result) Summarize() Stats {
	st := Stats{NumSubspaces: len(r.Subspaces), NumOutliers: len(r.Outliers)}
	var weighted float64
	for _, s := range r.Subspaces {
		st.TotalPoints += len(s.Members)
		weighted += float64(s.Dr) * float64(len(s.Members))
		if s.Dr > st.MaxDim {
			st.MaxDim = s.Dr
		}
	}
	if st.TotalPoints > 0 {
		st.AvgDim = weighted / float64(st.TotalPoints)
	}
	st.TotalPoints += st.NumOutliers
	return st
}

// Validate checks structural invariants: every point appears exactly once
// across subspaces and outliers, coordinate blocks have the right shape, and
// bases are orthonormal. It is used by tests and by the CLI's inspect
// command.
func (r *Result) Validate(n int) error {
	seen := make([]bool, n)
	mark := func(idx int) error {
		if idx < 0 || idx >= n {
			return fmt.Errorf("reduction: point index %d out of range [0,%d)", idx, n)
		}
		if seen[idx] {
			return fmt.Errorf("reduction: point %d assigned twice", idx)
		}
		seen[idx] = true
		return nil
	}
	for _, s := range r.Subspaces {
		if s.Dr <= 0 || s.Dr > r.Dim {
			return fmt.Errorf("reduction: subspace %d has Dr=%d with Dim=%d", s.ID, s.Dr, r.Dim)
		}
		if len(s.Coords) != len(s.Members)*s.Dr {
			return fmt.Errorf("reduction: subspace %d coords len %d != %d members x %d",
				s.ID, len(s.Coords), len(s.Members), s.Dr)
		}
		if s.Basis.Rows != r.Dim || s.Basis.Cols != s.Dr {
			return fmt.Errorf("reduction: subspace %d basis %dx%d, want %dx%d",
				s.ID, s.Basis.Rows, s.Basis.Cols, r.Dim, s.Dr)
		}
		if e := matrix.OrthonormalityError(s.Basis); e > 1e-6 {
			return fmt.Errorf("reduction: subspace %d basis not orthonormal (err %g)", s.ID, e)
		}
		for _, m := range s.Members {
			if err := mark(m); err != nil {
				return err
			}
		}
	}
	for _, o := range r.Outliers {
		if err := mark(o); err != nil {
			return err
		}
	}
	for i, ok := range seen {
		if !ok {
			return fmt.Errorf("reduction: point %d unassigned", i)
		}
	}
	return nil
}

// Reconstruct maps reduced coordinates back to the original space:
// centroid + Σ coords[j]·basis_j. It is the decompression direction of the
// subspace mapping; the reconstruction error of a member equals its
// ProjDist_r.
func (s *Subspace) Reconstruct(coords []float64) []float64 {
	d := len(s.Centroid)
	out := make([]float64, d)
	copy(out, s.Centroid)
	for j, c := range coords {
		if c == 0 {
			continue
		}
		for i := 0; i < d; i++ {
			out[i] += c * s.Basis.At(i, j)
		}
	}
	return out
}
