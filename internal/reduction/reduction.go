// Package reduction defines the shared vocabulary of all dimensionality
// reducers in the repository — the Subspace and Result types and the Reducer
// interface — and implements the paper's two baselines:
//
//   - GDR (Global Dimensionality Reduction): one global PCA over the whole
//     dataset, reduced to a single target dimensionality.
//   - LDR (Local Dimensionality Reduction, Chakrabarti & Mehrotra VLDB'00):
//     Euclidean spatial clusters, each reduced with its own PCA subject to a
//     reconstruction-distance bound; points that no cluster represents well
//     become outliers.
//
// The MMDR algorithm itself lives in internal/core and produces the same
// Result type, so indexes and evaluation code are reducer-agnostic.
package reduction

import (
	"fmt"
	"math"

	"mmdr/internal/dataset"
	"mmdr/internal/matrix"
)

// Subspace is one locally reduced cluster: an affine subspace of the
// original d-dimensional space spanned by Basis and anchored at Centroid,
// together with the reduced coordinates of its member points.
type Subspace struct {
	ID       int
	Centroid []float64   // original-space anchor (cluster centroid)
	Basis    *matrix.Mat // d x Dr matrix, orthonormal columns
	Dr       int         // retained dimensionality

	Members []int     // indices into the source dataset
	Coords  []float64 // row-major len(Members) x Dr reduced coordinates

	MaxRadius float64 // max ‖coords‖ over members: the subspace's data-sphere radius
	MPE       float64 // mean ProjDist_r of members at dimensionality Dr

	// Fields retained for dynamic insertion and diagnostics (the paper's
	// third auxiliary array): the cluster's shape in the original space.
	CovInv     *matrix.Mat
	LogDet     float64
	MahaRadius float64
}

// Project maps an original-space point into the subspace's reduced
// coordinates: (p - centroid)ᵀ · Basis.
func (s *Subspace) Project(p []float64) []float64 {
	out := make([]float64, s.Dr)
	s.ProjectInto(p, out)
	return out
}

// ProjectInto is Project without allocation; dst must have length Dr.
func (s *Subspace) ProjectInto(p []float64, dst []float64) {
	d := len(s.Centroid)
	for j := 0; j < s.Dr; j++ {
		var acc float64
		for i := 0; i < d; i++ {
			acc += (p[i] - s.Centroid[i]) * s.Basis.At(i, j)
		}
		dst[j] = acc
	}
}

// ResidualSq returns ProjDist_r²: the squared distance from p to the
// subspace (energy in the eliminated dimensions).
func (s *Subspace) ResidualSq(p []float64) float64 {
	d := len(s.Centroid)
	var total float64
	for i := 0; i < d; i++ {
		diff := p[i] - s.Centroid[i]
		total += diff * diff
	}
	var retained float64
	for j := 0; j < s.Dr; j++ {
		var acc float64
		for i := 0; i < d; i++ {
			acc += (p[i] - s.Centroid[i]) * s.Basis.At(i, j)
		}
		retained += acc * acc
	}
	res := total - retained
	if res < 0 {
		return 0
	}
	return res
}

// Residual returns ProjDist_r (Euclidean).
func (s *Subspace) Residual(p []float64) float64 { return math.Sqrt(s.ResidualSq(p)) }

// MemberCoords returns a view of member k's reduced coordinates.
func (s *Subspace) MemberCoords(k int) []float64 {
	return s.Coords[k*s.Dr : (k+1)*s.Dr]
}

// Result is the output of any dimensionality reducer: a set of reduced
// subspaces plus the points left in the original space as outliers.
type Result struct {
	Dim       int // original dimensionality
	Subspaces []*Subspace
	Outliers  []int // indices into the source dataset
}

// Reducer is implemented by GDR, LDR and MMDR.
type Reducer interface {
	// Reduce partitions ds into reduced subspaces and outliers.
	Reduce(ds *dataset.Dataset) (*Result, error)
	// Name identifies the method in experiment tables.
	Name() string
}

// Stats summarizes a Result for reports.
type Stats struct {
	NumSubspaces int
	NumOutliers  int
	AvgDim       float64 // member-weighted average retained dimensionality
	MaxDim       int
	TotalPoints  int
}

// Summarize computes summary statistics of r.
func (r *Result) Summarize() Stats {
	st := Stats{NumSubspaces: len(r.Subspaces), NumOutliers: len(r.Outliers)}
	var weighted float64
	for _, s := range r.Subspaces {
		st.TotalPoints += len(s.Members)
		weighted += float64(s.Dr) * float64(len(s.Members))
		if s.Dr > st.MaxDim {
			st.MaxDim = s.Dr
		}
	}
	if st.TotalPoints > 0 {
		st.AvgDim = weighted / float64(st.TotalPoints)
	}
	st.TotalPoints += st.NumOutliers
	return st
}

// Validate checks structural invariants: every point appears exactly once
// across subspaces and outliers, coordinate blocks have the right shape, and
// bases are orthonormal. It is used by tests and by the CLI's inspect
// command.
func (r *Result) Validate(n int) error {
	seen := make([]bool, n)
	mark := func(idx int) error {
		if idx < 0 || idx >= n {
			return fmt.Errorf("reduction: point index %d out of range [0,%d)", idx, n)
		}
		if seen[idx] {
			return fmt.Errorf("reduction: point %d assigned twice", idx)
		}
		seen[idx] = true
		return nil
	}
	for _, s := range r.Subspaces {
		if s.Dr <= 0 || s.Dr > r.Dim {
			return fmt.Errorf("reduction: subspace %d has Dr=%d with Dim=%d", s.ID, s.Dr, r.Dim)
		}
		if len(s.Coords) != len(s.Members)*s.Dr {
			return fmt.Errorf("reduction: subspace %d coords len %d != %d members x %d",
				s.ID, len(s.Coords), len(s.Members), s.Dr)
		}
		if s.Basis.Rows != r.Dim || s.Basis.Cols != s.Dr {
			return fmt.Errorf("reduction: subspace %d basis %dx%d, want %dx%d",
				s.ID, s.Basis.Rows, s.Basis.Cols, r.Dim, s.Dr)
		}
		if e := matrix.OrthonormalityError(s.Basis); e > 1e-6 {
			return fmt.Errorf("reduction: subspace %d basis not orthonormal (err %g)", s.ID, e)
		}
		for _, m := range s.Members {
			if err := mark(m); err != nil {
				return err
			}
		}
	}
	for _, o := range r.Outliers {
		if err := mark(o); err != nil {
			return err
		}
	}
	for i, ok := range seen {
		if !ok {
			return fmt.Errorf("reduction: point %d unassigned", i)
		}
	}
	return nil
}

// Reconstruct maps reduced coordinates back to the original space:
// centroid + Σ coords[j]·basis_j. It is the decompression direction of the
// subspace mapping; the reconstruction error of a member equals its
// ProjDist_r.
func (s *Subspace) Reconstruct(coords []float64) []float64 {
	d := len(s.Centroid)
	out := make([]float64, d)
	copy(out, s.Centroid)
	for j, c := range coords {
		if c == 0 {
			continue
		}
		for i := 0; i < d; i++ {
			out[i] += c * s.Basis.At(i, j)
		}
	}
	return out
}
