package reduction

import (
	"fmt"
	"math"
	"sort"

	"mmdr/internal/dataset"
	"mmdr/internal/kmeans"
	"mmdr/internal/matrix"
	"mmdr/internal/obs"
	"mmdr/internal/pool"
	"mmdr/internal/stats"
)

// LDR is the Local Dimensionality Reduction baseline [Chakrabarti &
// Mehrotra, VLDB'00]: Euclidean spatial clusters, each with its own PCA,
// where the retained dimensionality is the smallest that bounds the
// reconstruction distance for most members, and badly represented points
// fall out as outliers. Because the clustering is Euclidean it finds
// spherical neighborhoods and misses crossing or nested elliptical
// correlations — the behaviour the paper's Figure 5 contrasts with MMDR.
type LDR struct {
	MaxClusters  int     // number of spatial clusters; default 10
	MaxDim       int     // cap on retained dimensionality; default 20
	MaxReconDist float64 // reconstruction-distance bound; default 0.1
	FracPoints   float64 // fraction of members the bound must cover; default 0.9
	MinSize      int     // clusters smaller than this dissolve to outliers; default 20
	ForcedDim    int     // >0 forces every cluster to this Dr (dimension sweeps)
	Xi           float64 // cap on reconstruction-based evictions as a fraction of N; default 0.005
	Seed         int64
	Tracer       obs.Tracer // optional span for the whole LDR pass
	// Parallelism bounds the workers used for the k-means passes, the
	// per-cluster PCA/dimensionality work, and subspace assembly. Values
	// <= 1 run the exact serial path; results are identical at every
	// setting (index-partitioned work, serial-order reductions).
	Parallelism int
}

// Name implements Reducer.
func (l *LDR) Name() string { return "LDR" }

func (l *LDR) withDefaults() LDR {
	out := *l
	if out.MaxClusters <= 0 {
		out.MaxClusters = 10
	}
	if out.MaxDim <= 0 {
		out.MaxDim = 20
	}
	if out.MaxReconDist <= 0 {
		out.MaxReconDist = 0.1
	}
	if out.FracPoints <= 0 || out.FracPoints > 1 {
		out.FracPoints = 0.9
	}
	if out.MinSize <= 0 {
		out.MinSize = 20
	}
	if out.Xi <= 0 {
		out.Xi = 0.005
	}
	return out
}

// Reduce implements Reducer.
func (l *LDR) Reduce(ds *dataset.Dataset) (*Result, error) {
	o := l.withDefaults()
	if ds.N == 0 {
		return nil, fmt.Errorf("ldr: empty dataset")
	}
	obs.Begin(l.Tracer, obs.PhaseLDR)
	obs.Attr(l.Tracer, "points", float64(ds.N))
	obs.Attr(l.Tracer, "dim", float64(ds.Dim))
	defer obs.End(l.Tracer)
	km, err := kmeans.Run(ds, kmeans.Options{K: o.MaxClusters, Seed: o.Seed, Parallelism: o.Parallelism})
	if err != nil {
		return nil, err
	}

	res := &Result{Dim: ds.Dim}
	var outliers []int

	// First pass: per-cluster PCA, dimensionality choice, and
	// reconstruction-distance eviction candidates. Small clusters route to
	// the outlier set serially in cluster order; the surviving clusters'
	// PCA and residual scans — the expensive part — fan out, with
	// per-cluster candidate lists concatenated back in cluster order so
	// the eviction sequence matches the serial loop exactly.
	type clusterPlan struct {
		members []int
		pca     *stats.PCA
		dr      int
	}
	type candidate struct {
		cluster  int
		member   int
		residual float64
	}
	var plans []clusterPlan
	for c := 0; c < km.K; c++ {
		members := km.Members(c)
		if len(members) < o.MinSize {
			outliers = append(outliers, members...)
			continue
		}
		plans = append(plans, clusterPlan{members: members})
	}
	planCands := make([][]candidate, len(plans))
	planErrs := make([]error, len(plans))
	pool.Run(o.Parallelism, len(plans), func(ci int) {
		members := plans[ci].members
		pts := gatherPoints(ds, members)
		pca, err := stats.ComputePCA(pts, ds.Dim)
		if err != nil {
			planErrs[ci] = err
			return
		}
		dr := l.chooseDim(pca, pts, ds.Dim, o)
		plans[ci].pca = pca
		plans[ci].dr = dr
		for _, m := range members {
			if r := pca.Residual(ds.Point(m), dr); r > o.MaxReconDist {
				planCands[ci] = append(planCands[ci], candidate{cluster: ci, member: m, residual: r})
			}
		}
	})
	var cands []candidate
	for ci := range plans {
		if planErrs[ci] != nil {
			return nil, planErrs[ci]
		}
		cands = append(cands, planCands[ci]...)
	}

	// The LDR outlier set is bounded (the original bounds it to keep the
	// full-dimensional set small); evict only the worst Xi·N residuals.
	maxEvict := int(o.Xi * float64(ds.N))
	if len(cands) > maxEvict {
		sort.Slice(cands, func(a, b int) bool { return cands[a].residual > cands[b].residual })
		cands = cands[:maxEvict]
	}
	evicted := make(map[int]bool, len(cands))
	for _, c := range cands {
		evicted[c.member] = true
		outliers = append(outliers, c.member)
	}

	// Subspace IDs and the dissolve-to-outliers appends depend on cluster
	// order: assign serially, then fan out the per-subspace assembly.
	type buildTask struct {
		id   int
		plan int
		kept []int
	}
	var tasks []buildTask
	for ci, plan := range plans {
		kept := make([]int, 0, len(plan.members))
		for _, m := range plan.members {
			if !evicted[m] {
				kept = append(kept, m)
			}
		}
		if len(kept) < o.MinSize {
			outliers = append(outliers, kept...)
			continue
		}
		tasks = append(tasks, buildTask{id: len(tasks), plan: ci, kept: kept})
	}
	subs := make([]*Subspace, len(tasks))
	pool.Run(o.Parallelism, len(tasks), func(ti int) {
		t := tasks[ti]
		subs[ti] = buildSubspace(t.id, ds, plans[t.plan].pca, plans[t.plan].dr, t.kept)
	})
	res.Subspaces = append(res.Subspaces, subs...)
	sort.Ints(outliers)
	res.Outliers = outliers
	obs.Attr(l.Tracer, "subspaces", float64(len(res.Subspaces)))
	obs.Attr(l.Tracer, "outliers", float64(len(res.Outliers)))
	return res, nil
}

// chooseDim picks the smallest retained dimensionality such that FracPoints
// of the cluster's points have reconstruction distance within the bound,
// capped at MaxDim (or returns ForcedDim when set).
func (l *LDR) chooseDim(pca *stats.PCA, pts []float64, dim int, o LDR) int {
	if o.ForcedDim > 0 {
		if o.ForcedDim > dim {
			return dim
		}
		return o.ForcedDim
	}
	maxDim := o.MaxDim
	if maxDim > dim {
		maxDim = dim
	}
	n := len(pts) / dim
	need := int(math.Ceil(o.FracPoints * float64(n)))
	for dr := 1; dr <= maxDim; dr++ {
		within := 0
		for i := 0; i < n; i++ {
			if pca.Residual(pts[i*dim:(i+1)*dim], dr) <= o.MaxReconDist {
				within++
			}
		}
		if within >= need {
			return dr
		}
	}
	return maxDim
}

// gatherPoints copies the rows at indices into a flat slice.
func gatherPoints(ds *dataset.Dataset, indices []int) []float64 {
	out := make([]float64, 0, len(indices)*ds.Dim)
	for _, idx := range indices {
		out = append(out, ds.Point(idx)...)
	}
	return out
}

// buildSubspace assembles a Subspace anchored at the PCA mean with the
// leading dr components, filling reduced coordinates, radius and MPE.
func buildSubspace(id int, ds *dataset.Dataset, pca *stats.PCA, dr int, members []int) *Subspace {
	sub := &Subspace{
		ID:       id,
		Centroid: pca.Mean,
		Basis:    pca.Components.LeadingCols(dr),
		Dr:       dr,
		Members:  append([]int(nil), members...),
		Coords:   make([]float64, len(members)*dr),
	}
	sub.EnsureKernels()
	var mpeSum float64
	var maxR2 float64
	for k, m := range members {
		p := ds.Point(m)
		dst := sub.Coords[k*dr : (k+1)*dr]
		res := sub.ProjectResidualInto(p, dst)
		norm2 := matrix.SqNorm(dst)
		if norm2 > maxR2 {
			maxR2 = norm2
		}
		mpeSum += math.Sqrt(res)
	}
	sub.MaxRadius = math.Sqrt(maxR2)
	if len(members) > 0 {
		sub.MPE = mpeSum / float64(len(members))
	}
	return sub
}
