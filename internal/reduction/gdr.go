package reduction

import (
	"fmt"
	"math"

	"mmdr/internal/dataset"
	"mmdr/internal/matrix"
	"mmdr/internal/obs"
	"mmdr/internal/stats"
)

// GDR is the Global Dimensionality Reduction baseline [Chakrabarti &
// Mehrotra, VLDB'00 strategy 1]: a single PCA over the entire dataset,
// keeping the first TargetDim components. It cannot adapt to locally
// correlated data — exactly the weakness the paper's Figures 7 and 8
// exhibit.
type GDR struct {
	// TargetDim is the retained dimensionality (paper sweeps 10..30).
	TargetDim int
	// Tracer receives one span covering the global PCA pass (may be nil).
	Tracer obs.Tracer
}

// Name implements Reducer.
func (g *GDR) Name() string { return "GDR" }

// Reduce implements Reducer.
func (g *GDR) Reduce(ds *dataset.Dataset) (*Result, error) {
	if g.TargetDim <= 0 || g.TargetDim > ds.Dim {
		return nil, fmt.Errorf("gdr: TargetDim %d out of range (1..%d)", g.TargetDim, ds.Dim)
	}
	if ds.N == 0 {
		return nil, fmt.Errorf("gdr: empty dataset")
	}
	obs.Begin(g.Tracer, obs.PhaseGDR)
	obs.Attr(g.Tracer, "points", float64(ds.N))
	obs.Attr(g.Tracer, "dim", float64(ds.Dim))
	obs.Attr(g.Tracer, "target_dim", float64(g.TargetDim))
	defer obs.End(g.Tracer)
	p, err := stats.ComputePCA(ds.Data, ds.Dim)
	if err != nil {
		return nil, err
	}
	dr := g.TargetDim
	sub := &Subspace{
		ID:       0,
		Centroid: p.Mean,
		Basis:    p.Components.LeadingCols(dr),
		Dr:       dr,
		Members:  make([]int, ds.N),
		Coords:   make([]float64, ds.N*dr),
	}
	sub.EnsureKernels()
	var mpeSum float64
	for i := 0; i < ds.N; i++ {
		sub.Members[i] = i
		dst := sub.Coords[i*dr : (i+1)*dr]
		res := sub.ProjectResidualInto(ds.Point(i), dst)
		norm2 := matrix.SqNorm(dst)
		if norm2 > sub.MaxRadius*sub.MaxRadius {
			sub.MaxRadius = math.Sqrt(norm2)
		}
		mpeSum += math.Sqrt(res)
	}
	sub.MPE = mpeSum / float64(ds.N)
	return &Result{Dim: ds.Dim, Subspaces: []*Subspace{sub}}, nil
}
