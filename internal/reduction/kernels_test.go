package reduction

import (
	"math"
	"math/rand"
	"testing"

	"mmdr/internal/matrix"
)

// testSubspace builds a d-dimensional subspace with an orthonormal Dr-column
// basis and a random centroid. withKernels controls whether EnsureKernels
// has run — the pair lets tests compare fast path against fallback.
func testSubspace(d, dr int, seed int64, withKernels bool) *Subspace {
	rng := rand.New(rand.NewSource(seed))
	q := matrix.RandomOrthonormal(d, rng)
	centroid := make([]float64, d)
	for i := range centroid {
		centroid[i] = rng.NormFloat64()
	}
	s := &Subspace{ID: 0, Centroid: centroid, Basis: q.LeadingCols(dr), Dr: dr}
	if withKernels {
		s.EnsureKernels()
	}
	return s
}

func randPoint(rng *rand.Rand, d int) []float64 {
	p := make([]float64, d)
	for i := range p {
		p[i] = rng.NormFloat64()
	}
	return p
}

// The kernelized projection and residual paths must be BITWISE equal to the
// column-walk fallbacks: same serial accumulation order, only the memory
// layout differs. This is the invariant that makes "build once, query with
// kernels" safe — coordinates stored at build time match what queries
// compute.
func TestKernelPathsBitIdenticalToFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, shape := range [][2]int{{4, 1}, {8, 3}, {16, 5}, {33, 7}, {64, 20}} {
		d, dr := shape[0], shape[1]
		fast := testSubspace(d, dr, int64(d*100+dr), true)
		slow := testSubspace(d, dr, int64(d*100+dr), false)
		diff := make([]float64, d)
		pf, ps, pd, pr := make([]float64, dr), make([]float64, dr), make([]float64, dr), make([]float64, dr)
		for trial := 0; trial < 20; trial++ {
			p := randPoint(rng, d)
			fast.ProjectInto(p, pf)
			slow.ProjectInto(p, ps)
			for j := range pf {
				if pf[j] != ps[j] {
					t.Fatalf("d=%d dr=%d coord %d: kernel %v fallback %v", d, dr, j, pf[j], ps[j])
				}
			}
			for i := range diff {
				diff[i] = p[i] - fast.Centroid[i]
			}
			fast.ProjectDiffInto(diff, pd)
			for j := range pd {
				if pd[j] != pf[j] {
					t.Fatalf("d=%d dr=%d ProjectDiffInto coord %d: %v vs %v", d, dr, j, pd[j], pf[j])
				}
			}
			resFused := fast.ProjectResidualInto(p, pr)
			for j := range pr {
				if pr[j] != pf[j] {
					t.Fatalf("d=%d dr=%d fused coord %d: %v vs %v", d, dr, j, pr[j], pf[j])
				}
			}
			if rf, rs := fast.ResidualSq(p), slow.ResidualSq(p); rf != rs || resFused != rf {
				t.Fatalf("d=%d dr=%d residual: kernel %v fallback %v fused %v", d, dr, rf, rs, resFused)
			}
		}
	}
}

func TestEnsureKernelsIdempotentAndCorrect(t *testing.T) {
	s := testSubspace(12, 4, 3, true)
	bt := s.KernelBasisT()
	if len(bt) != s.Dr*12 {
		t.Fatalf("basisT length %d, want %d", len(bt), s.Dr*12)
	}
	for j := 0; j < s.Dr; j++ {
		for i := 0; i < 12; i++ {
			if bt[j*12+i] != s.Basis.At(i, j) {
				t.Fatalf("basisT[%d][%d] = %v, Basis = %v", j, i, bt[j*12+i], s.Basis.At(i, j))
			}
		}
	}
	s.EnsureKernels()
	if &s.KernelBasisT()[0] != &bt[0] {
		t.Fatal("EnsureKernels rebuilt an existing basisT")
	}
}

func TestMahaSqCholeskyMatchesQuadForm(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, d := range []int{2, 5, 9, 16} {
		// Random SPD CovInv: AᵀA + ridge.
		a := matrix.New(d, d)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		spd := matrix.Mul(a.T(), a).AddRidge(0.5)
		with := testSubspace(d, 2, int64(d), false)
		with.CovInv = spd
		with.EnsureKernels()
		if with.KernelMahaChol() == nil {
			t.Fatalf("d=%d: Cholesky cache missing for SPD CovInv", d)
		}
		without := testSubspace(d, 2, int64(d), false)
		without.CovInv = spd
		diff := make([]float64, d)
		for trial := 0; trial < 25; trial++ {
			p := randPoint(rng, d)
			got := with.MahaSq(p, diff)
			want := without.MahaSq(p, nil) // quad-form fallback, allocates its own scratch
			if rel := math.Abs(got-want) / math.Max(1, math.Abs(want)); rel > 1e-9 {
				t.Fatalf("d=%d: chol %v vs quad %v (rel %v)", d, got, want, rel)
			}
		}
	}
	// No CovInv: MahaSq is 0 and no cache appears.
	s := testSubspace(6, 2, 1, true)
	if s.KernelMahaChol() != nil || s.MahaSq(randPoint(rng, 6), nil) != 0 {
		t.Fatal("subspace without CovInv must report 0 Mahalanobis and no cache")
	}
}

func BenchmarkProjectInto(b *testing.B) {
	const d, dr = 64, 16
	rng := rand.New(rand.NewSource(21))
	p := randPoint(rng, d)
	dst := make([]float64, dr)
	b.Run("kernel", func(b *testing.B) {
		s := testSubspace(d, dr, 5, true)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s.ProjectInto(p, dst)
		}
	})
	b.Run("fallback", func(b *testing.B) {
		s := testSubspace(d, dr, 5, false)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s.ProjectInto(p, dst)
		}
	})
	b.Run("diff", func(b *testing.B) {
		s := testSubspace(d, dr, 5, true)
		diff := make([]float64, d)
		for i := range diff {
			diff[i] = p[i] - s.Centroid[i]
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s.ProjectDiffInto(diff, dst)
		}
	})
}

func BenchmarkResidualSq(b *testing.B) {
	const d, dr = 64, 16
	rng := rand.New(rand.NewSource(22))
	p := randPoint(rng, d)
	b.Run("kernel", func(b *testing.B) {
		s := testSubspace(d, dr, 6, true)
		b.ReportAllocs()
		var acc float64
		for i := 0; i < b.N; i++ {
			acc += s.ResidualSq(p)
		}
		_ = acc
	})
	b.Run("fallback", func(b *testing.B) {
		s := testSubspace(d, dr, 6, false)
		b.ReportAllocs()
		var acc float64
		for i := 0; i < b.N; i++ {
			acc += s.ResidualSq(p)
		}
		_ = acc
	})
	b.Run("fused", func(b *testing.B) {
		s := testSubspace(d, dr, 6, true)
		dst := make([]float64, dr)
		b.ReportAllocs()
		var acc float64
		for i := 0; i < b.N; i++ {
			acc += s.ProjectResidualInto(p, dst)
		}
		_ = acc
	})
}
