package reduction

import (
	"fmt"
	"math"

	"mmdr/internal/dataset"
	"mmdr/internal/kmeans"
	"mmdr/internal/matrix"
)

// Identity is the no-reduction "reducer": it partitions the data with
// Euclidean k-means and keeps every dimension (basis = identity), so the
// reduced representation is lossless. Feeding it to the extended iDistance
// yields the *original* iDistance of Yu et al. (VLDB'01) — full-dimensional
// points, k-means reference points — which quantifies what dimensionality
// reduction itself buys on top of the indexing scheme.
type Identity struct {
	Clusters int // reference partitions; default 16
	Seed     int64
}

// Name implements Reducer.
func (r *Identity) Name() string { return "identity" }

// Reduce implements Reducer.
func (r *Identity) Reduce(ds *dataset.Dataset) (*Result, error) {
	if ds.N == 0 {
		return nil, fmt.Errorf("identity: empty dataset")
	}
	k := r.Clusters
	if k <= 0 {
		k = 16
	}
	km, err := kmeans.Run(ds, kmeans.Options{K: k, Seed: r.Seed})
	if err != nil {
		return nil, err
	}
	res := &Result{Dim: ds.Dim}
	id := 0
	for c := 0; c < km.K; c++ {
		members := km.Members(c)
		if len(members) == 0 {
			continue
		}
		sub := &Subspace{
			ID:       id,
			Centroid: append([]float64(nil), km.Centroids[c]...),
			Basis:    matrix.Identity(ds.Dim),
			Dr:       ds.Dim,
			Members:  append([]int(nil), members...),
			Coords:   make([]float64, len(members)*ds.Dim),
		}
		var maxR2 float64
		for mi, m := range members {
			dst := sub.Coords[mi*ds.Dim : (mi+1)*ds.Dim]
			p := ds.Point(m)
			var n2 float64
			for j := range dst {
				dst[j] = p[j] - sub.Centroid[j]
				n2 += dst[j] * dst[j]
			}
			if n2 > maxR2 {
				maxR2 = n2
			}
		}
		sub.MaxRadius = math.Sqrt(maxR2)
		sub.EnsureKernels()
		res.Subspaces = append(res.Subspaces, sub)
		id++
	}
	return res, nil
}
