package dataset

import (
	"bytes"
	"testing"
)

// FuzzReadBinary ensures the binary decoder never panics or over-allocates
// on malformed input — it must either round-trip valid data or return an
// error.
func FuzzReadBinary(f *testing.F) {
	// Seed with a valid file and several corruptions of it.
	d := New(3, 2)
	copy(d.Data, []float64{1, 2, 3, 4, 5, 6})
	var buf bytes.Buffer
	if err := d.WriteBinary(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:4])
	f.Add([]byte{})
	f.Add([]byte{0x52, 0x44, 0x4d, 0x4d, 0xff, 0xff, 0xff, 0x7f, 0x01, 0, 0, 0})
	corrupt := append([]byte(nil), valid...)
	corrupt[5] ^= 0xff // mangle N
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		ds, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		if ds.Dim <= 0 || len(ds.Data) != ds.N*ds.Dim {
			t.Fatalf("decoder produced inconsistent dataset %dx%d len %d", ds.N, ds.Dim, len(ds.Data))
		}
		// Valid decodes must re-encode.
		var out bytes.Buffer
		if err := ds.WriteBinary(&out); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
	})
}

// FuzzReadCSV ensures the CSV reader is total: error or consistent dataset.
func FuzzReadCSV(f *testing.F) {
	f.Add("1,2\n3,4\n")
	f.Add("")
	f.Add("a,b\n")
	f.Add("1\n2\n3\n")
	f.Add("1,2\n3\n")
	f.Fuzz(func(t *testing.T, s string) {
		ds, err := ReadCSV(bytes.NewReader([]byte(s)))
		if err != nil {
			return
		}
		if ds.Dim <= 0 || len(ds.Data) != ds.N*ds.Dim {
			t.Fatalf("inconsistent dataset %dx%d len %d", ds.N, ds.Dim, len(ds.Data))
		}
	})
}
