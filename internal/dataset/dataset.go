// Package dataset provides the in-memory point-set container shared by the
// whole MMDR pipeline, plus binary and CSV persistence so datasets can be
// generated once and reused across experiments.
package dataset

import (
	"bufio"
	"encoding/binary"
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
)

// Dataset is a flat, row-major collection of N points of dimension Dim.
// Row i occupies Data[i*Dim : (i+1)*Dim].
//
//mmdr:persist
type Dataset struct {
	N    int
	Dim  int
	Data []float64
}

// New allocates a zeroed dataset of n points with dimension dim.
func New(n, dim int) *Dataset {
	if n < 0 || dim <= 0 {
		panic(fmt.Sprintf("dataset: invalid shape n=%d dim=%d", n, dim))
	}
	return &Dataset{N: n, Dim: dim, Data: make([]float64, n*dim)}
}

// FromData wraps data (not copied) as a dataset.
func FromData(dim int, data []float64) (*Dataset, error) {
	if dim <= 0 || len(data)%dim != 0 {
		return nil, fmt.Errorf("dataset: data length %d not divisible by dim %d", len(data), dim)
	}
	return &Dataset{N: len(data) / dim, Dim: dim, Data: data}, nil
}

// Point returns a view (not copy) of point i.
func (d *Dataset) Point(i int) []float64 { return d.Data[i*d.Dim : (i+1)*d.Dim] }

// Subset returns a new dataset containing the points at the given indices
// (copied).
func (d *Dataset) Subset(indices []int) *Dataset {
	out := New(len(indices), d.Dim)
	for k, idx := range indices {
		copy(out.Data[k*d.Dim:(k+1)*d.Dim], d.Point(idx))
	}
	return out
}

// Slice returns a view dataset of rows [lo, hi).
func (d *Dataset) Slice(lo, hi int) *Dataset {
	if lo < 0 || hi > d.N || lo > hi {
		panic(fmt.Sprintf("dataset: Slice [%d,%d) of %d", lo, hi, d.N))
	}
	return &Dataset{N: hi - lo, Dim: d.Dim, Data: d.Data[lo*d.Dim : hi*d.Dim]}
}

// Clone returns a deep copy.
func (d *Dataset) Clone() *Dataset {
	out := New(d.N, d.Dim)
	copy(out.Data, d.Data)
	return out
}

// Append adds a point (copied); it must have length Dim.
func (d *Dataset) Append(p []float64) {
	if len(p) != d.Dim {
		panic(fmt.Sprintf("dataset: Append dim %d != %d", len(p), d.Dim))
	}
	d.Data = append(d.Data, p...)
	d.N++
}

const binaryMagic = uint32(0x4d4d4452) // "MMDR"

// WriteBinary serializes the dataset in a compact little-endian format:
// magic, N, Dim (uint32 each) followed by N*Dim float64 values.
func (d *Dataset) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	hdr := []uint32{binaryMagic, uint32(d.N), uint32(d.Dim)}
	for _, h := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	buf := make([]byte, 8)
	for _, v := range d.Data {
		binary.LittleEndian.PutUint64(buf, math.Float64bits(v))
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary deserializes a dataset written by WriteBinary.
func ReadBinary(r io.Reader) (*Dataset, error) {
	br := bufio.NewReader(r)
	var magic, n, dim uint32
	for _, p := range []*uint32{&magic, &n, &dim} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, fmt.Errorf("dataset: reading header: %w", err)
		}
	}
	if magic != binaryMagic {
		return nil, errors.New("dataset: bad magic, not an MMDR dataset file")
	}
	if dim == 0 || n > 1<<31 || dim > 1<<20 {
		return nil, fmt.Errorf("dataset: implausible header n=%d dim=%d", n, dim)
	}
	// Allocate incrementally (bounded chunks) rather than trusting the
	// header's count: a corrupt or hostile header must fail at read time,
	// not by exhausting memory up front.
	total := int(n) * int(dim)
	const chunk = 1 << 16
	data := make([]float64, 0, min(total, chunk))
	buf := make([]byte, 8)
	for i := 0; i < total; i++ {
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("dataset: reading values: %w", err)
		}
		data = append(data, math.Float64frombits(binary.LittleEndian.Uint64(buf)))
	}
	return &Dataset{N: int(n), Dim: int(dim), Data: data}, nil
}

// SaveBinary writes the dataset to path.
func (d *Dataset) SaveBinary(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := d.WriteBinary(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadBinary reads a dataset from path.
func LoadBinary(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBinary(f)
}

// WriteCSV emits the dataset as CSV, one point per row.
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	rec := make([]string, d.Dim)
	for i := 0; i < d.N; i++ {
		row := d.Point(i)
		for j, v := range row {
			rec[j] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a CSV of float rows into a dataset. All rows must have the
// same width.
func ReadCSV(r io.Reader) (*Dataset, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	var data []float64
	dim := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if dim == 0 {
			dim = len(rec)
		} else if len(rec) != dim {
			return nil, fmt.Errorf("dataset: ragged CSV row width %d != %d", len(rec), dim)
		}
		for _, s := range rec {
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: parsing %q: %w", s, err)
			}
			data = append(data, v)
		}
	}
	if dim == 0 {
		return nil, errors.New("dataset: empty CSV")
	}
	return FromData(dim, data)
}
