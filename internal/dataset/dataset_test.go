package dataset

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"
)

func randDataset(n, dim int, rng *rand.Rand) *Dataset {
	d := New(n, dim)
	for i := range d.Data {
		d.Data[i] = rng.NormFloat64() * 100
	}
	return d
}

func TestNewPointSubsetSlice(t *testing.T) {
	d := New(3, 2)
	copy(d.Data, []float64{1, 2, 3, 4, 5, 6})
	if p := d.Point(1); p[0] != 3 || p[1] != 4 {
		t.Fatalf("Point(1) = %v", p)
	}
	s := d.Subset([]int{2, 0})
	if s.N != 2 || s.Point(0)[0] != 5 || s.Point(1)[1] != 2 {
		t.Fatalf("Subset = %v", s.Data)
	}
	sl := d.Slice(1, 3)
	if sl.N != 2 || sl.Point(0)[0] != 3 {
		t.Fatalf("Slice = %v", sl.Data)
	}
	// Slice is a view: mutating it mutates the parent.
	sl.Point(0)[0] = 99
	if d.Point(1)[0] != 99 {
		t.Fatal("Slice must be a view")
	}
	// Subset is a copy.
	s.Point(0)[0] = -1
	if d.Point(2)[0] == -1 {
		t.Fatal("Subset must copy")
	}
}

func TestClone(t *testing.T) {
	d := New(2, 2)
	d.Data[0] = 7
	c := d.Clone()
	c.Data[0] = 8
	if d.Data[0] != 7 {
		t.Fatal("Clone must not share storage")
	}
}

func TestAppend(t *testing.T) {
	d := New(0, 3)
	d.Append([]float64{1, 2, 3})
	d.Append([]float64{4, 5, 6})
	if d.N != 2 || d.Point(1)[2] != 6 {
		t.Fatalf("Append result %v", d.Data)
	}
}

func TestFromDataValidation(t *testing.T) {
	if _, err := FromData(2, []float64{1, 2, 3}); err == nil {
		t.Fatal("expected error for ragged data")
	}
	if _, err := FromData(0, nil); err == nil {
		t.Fatal("expected error for dim 0")
	}
	d, err := FromData(2, []float64{1, 2, 3, 4})
	if err != nil || d.N != 2 {
		t.Fatalf("FromData: %v %v", d, err)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	d := randDataset(50, 7, rng)
	var buf bytes.Buffer
	if err := d.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != d.N || got.Dim != d.Dim {
		t.Fatalf("shape %dx%d, want %dx%d", got.N, got.Dim, d.N, d.Dim)
	}
	for i := range d.Data {
		if got.Data[i] != d.Data[i] {
			t.Fatalf("data mismatch at %d", i)
		}
	}
}

func TestBinaryBadMagic(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte{1, 2, 3, 4, 0, 0, 0, 0, 1, 0, 0, 0})); err == nil {
		t.Fatal("expected bad-magic error")
	}
}

func TestBinaryTruncated(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	d := randDataset(5, 3, rng)
	var buf bytes.Buffer
	if err := d.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-9]
	if _, err := ReadBinary(bytes.NewReader(trunc)); err == nil {
		t.Fatal("expected truncation error")
	}
}

func TestSaveLoadBinaryFile(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	d := randDataset(10, 4, rng)
	path := filepath.Join(t.TempDir(), "ds.bin")
	if err := d.SaveBinary(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBinary(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != 10 || got.Dim != 4 {
		t.Fatalf("loaded shape %dx%d", got.N, got.Dim)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	d := randDataset(20, 3, rng)
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range d.Data {
		if got.Data[i] != d.Data[i] {
			t.Fatalf("CSV round trip mismatch at %d: %v vs %v", i, got.Data[i], d.Data[i])
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Fatal("expected error for empty CSV")
	}
	if _, err := ReadCSV(strings.NewReader("1,2\n3\n")); err == nil {
		t.Fatal("expected error for ragged CSV")
	}
	if _, err := ReadCSV(strings.NewReader("1,abc\n")); err == nil {
		t.Fatal("expected error for non-numeric CSV")
	}
}

// Property: binary round trip is the identity for arbitrary shapes.
func TestBinaryRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := randDataset(r.Intn(40), 1+r.Intn(10), r)
		var buf bytes.Buffer
		if err := d.WriteBinary(&buf); err != nil {
			return false
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		if got.N != d.N || got.Dim != d.Dim {
			return false
		}
		for i := range d.Data {
			if got.Data[i] != d.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}
