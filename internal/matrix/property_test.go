package matrix

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// This file holds the cross-cutting property suite for the linear-algebra
// kernel: every decomposition the MMDR pipeline relies on (Jacobi
// eigensolver, Cholesky, LU inverse) is checked against its defining
// algebraic identity on seeded random SPD matrices, plus the identities
// that tie the decompositions to each other (spectral reconstruction,
// determinant consistency, solve-vs-inverse agreement). All inputs come
// from deterministic seeds, so failures reproduce exactly.

// spdFromSeed builds a well-conditioned random SPD matrix of the given
// size, with an optional spectrum spread to exercise harder conditioning:
// A = B·Bᵀ + ridge with B ~ N(0,1) entries scaled per-column by up to
// 10^spread.
func spdFromSeed(n int, seed int64, spread float64) *Mat {
	rng := rand.New(rand.NewSource(seed))
	b := New(n, n)
	for c := 0; c < n; c++ {
		scale := math.Pow(10, spread*rng.Float64())
		for r := 0; r < n; r++ {
			b.Set(r, c, scale*rng.NormFloat64())
		}
	}
	spd := Mul(b, b.T())
	return spd.AddRidge(1e-3)
}

// TestEigenDefiningProperties checks, for random SPD matrices across sizes
// and spectra, everything the eigensolver promises: A·v_k = λ_k·v_k for
// every pair, an orthonormal basis, non-increasing eigenvalues, and the
// full spectral reconstruction A = V·diag(λ)·Vᵀ.
func TestEigenDefiningProperties(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(14)
		a := spdFromSeed(n, seed+1, 1.5)
		e, err := SymEigen(a)
		if err != nil {
			t.Logf("seed %d: SymEigen: %v", seed, err)
			return false
		}
		if oe := OrthonormalityError(e.Vectors); oe > 1e-8 {
			t.Logf("seed %d: orthonormality error %g", seed, oe)
			return false
		}
		scale := 1 + math.Abs(e.Values[0])
		for k := 0; k < n; k++ {
			if k > 0 && e.Values[k] > e.Values[k-1]+1e-9*scale {
				t.Logf("seed %d: eigenvalues not sorted at %d", seed, k)
				return false
			}
			// ‖A·v − λ·v‖ small relative to the dominant eigenvalue.
			v := e.Vectors.Col(k)
			av := a.MulVec(v)
			var resid2 float64
			for i := range av {
				d := av[i] - e.Values[k]*v[i]
				resid2 += d * d
			}
			if math.Sqrt(resid2) > 1e-7*scale {
				t.Logf("seed %d: residual %g at pair %d", seed, math.Sqrt(resid2), k)
				return false
			}
		}
		// Spectral reconstruction: A = Σ_k λ_k v_k v_kᵀ.
		recon := New(n, n)
		for k := 0; k < n; k++ {
			v := e.Vectors.Col(k)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					recon.Set(i, j, recon.At(i, j)+e.Values[k]*v[i]*v[j])
				}
			}
		}
		if d := MaxAbsDiff(recon, a); d > 1e-7*scale {
			t.Logf("seed %d: reconstruction error %g", seed, d)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(11))}); err != nil {
		t.Fatal(err)
	}
}

// TestCholeskyDefiningProperties checks L·Lᵀ = A, that L is lower
// triangular with positive diagonal, and that CholeskySolveVec agrees with
// multiplying by the LU inverse.
func TestCholeskyDefiningProperties(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		a := spdFromSeed(n, seed+1, 1)
		l, err := Cholesky(a)
		if err != nil {
			t.Logf("seed %d: Cholesky on SPD: %v", seed, err)
			return false
		}
		for i := 0; i < n; i++ {
			if l.At(i, i) <= 0 {
				t.Logf("seed %d: non-positive diagonal at %d", seed, i)
				return false
			}
			for j := i + 1; j < n; j++ {
				if l.At(i, j) != 0 {
					t.Logf("seed %d: upper triangle not zero at (%d,%d)", seed, i, j)
					return false
				}
			}
		}
		scale := 1.0
		for _, v := range a.Data {
			if av := math.Abs(v); av > scale {
				scale = av
			}
		}
		if d := MaxAbsDiff(Mul(l, l.T()), a); d > 1e-9*scale {
			t.Logf("seed %d: L·Lᵀ error %g", seed, d)
			return false
		}
		// Solve and inverse must agree: x = A⁻¹·b.
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x := CholeskySolveVec(l, b)
		inv, err := Inverse(a)
		if err != nil {
			t.Logf("seed %d: Inverse: %v", seed, err)
			return false
		}
		xi := inv.MulVec(b)
		for i := range x {
			if !almostEqual(x[i], xi[i], 1e-6*(1+math.Abs(x[i]))) {
				t.Logf("seed %d: solve/inverse disagree at %d: %g vs %g", seed, i, x[i], xi[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(13))}); err != nil {
		t.Fatal(err)
	}
}

// TestInverseDefiningProperties checks A·A⁻¹ ≈ I and A⁻¹·A ≈ I (both
// sides — a one-sided check can pass on a transposition bug).
func TestInverseDefiningProperties(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		a := spdFromSeed(n, seed+1, 1)
		inv, err := Inverse(a)
		if err != nil {
			t.Logf("seed %d: Inverse: %v", seed, err)
			return false
		}
		eye := Identity(n)
		if d := MaxAbsDiff(Mul(a, inv), eye); d > 1e-6 {
			t.Logf("seed %d: A·A⁻¹ error %g", seed, d)
			return false
		}
		if d := MaxAbsDiff(Mul(inv, a), eye); d > 1e-6 {
			t.Logf("seed %d: A⁻¹·A error %g", seed, d)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(17))}); err != nil {
		t.Fatal(err)
	}
}

// TestDeterminantConsistency ties the three decompositions together on the
// same matrix: det(A) from LU, ∏λ_k from the eigensolver, and det(L)² from
// Cholesky must all agree (compared in log space for stability).
func TestDeterminantConsistency(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		a := spdFromSeed(n, seed+100, 1)

		lu := math.Log(Det(a))

		e, err := SymEigen(a)
		if err != nil {
			t.Fatalf("seed %d: SymEigen: %v", seed, err)
		}
		var eig float64
		for _, v := range e.Values {
			eig += math.Log(v)
		}

		l, err := Cholesky(a)
		if err != nil {
			t.Fatalf("seed %d: Cholesky: %v", seed, err)
		}
		chol := CholeskyLogDet(l)

		tol := 1e-8 * (1 + math.Abs(lu))
		if math.Abs(lu-eig) > tol || math.Abs(lu-chol) > tol {
			t.Fatalf("seed %d n=%d: log-determinants disagree: LU=%g eigen=%g cholesky=%g",
				seed, n, lu, eig, chol)
		}
	}
}
