package matrix

import (
	"fmt"
	"math"
	"sort"
)

// Eigen holds the spectral decomposition of a symmetric matrix:
// A = V diag(Values) Vᵀ, with Values sorted in descending order and the
// eigenvector for Values[k] stored in column k of Vectors.
type Eigen struct {
	Values  []float64
	Vectors *Mat // n x n, column k is the k-th eigenvector (unit norm)
}

// maxJacobiSweeps bounds the cyclic Jacobi iteration. Convergence is
// quadratic once off-diagonal mass is small; 64 sweeps is far beyond what
// covariance matrices of order <= 512 need.
const maxJacobiSweeps = 64

// SymEigen computes the eigendecomposition of the symmetric matrix a using
// the cyclic Jacobi method. a is not modified. It returns an error if a is
// not square.
//
// Jacobi is chosen over QR iteration because it is simple, unconditionally
// stable for symmetric input, and delivers orthonormal eigenvectors to
// machine precision — exactly what PCA on covariance matrices needs.
func SymEigen(a *Mat) (*Eigen, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("matrix: SymEigen requires square matrix, got %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	if n == 0 {
		return &Eigen{Values: nil, Vectors: New(0, 0)}, nil
	}

	// Work on a copy; accumulate rotations in v.
	w := a.Clone()
	v := Identity(n)

	for sweep := 0; sweep < maxJacobiSweeps; sweep++ {
		off := offDiagNorm(w)
		if off == 0 {
			break
		}
		// Threshold strategy from Numerical Recipes: on early sweeps skip
		// tiny rotations.
		thresh := 0.0
		if sweep < 3 {
			thresh = 0.2 * off / float64(n*n)
		}
		rotated := false
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) <= thresh {
					continue
				}
				app := w.At(p, p)
				aqq := w.At(q, q)
				// If the off-diagonal element is negligible relative to the
				// diagonal, zero it outright.
				g := 100 * math.Abs(apq)
				//mmdr:ignore floatcmp canonical Jacobi negligibility test: apq is negligible exactly when adding 100|apq| does not perturb the diagonal in float64
				if sweep > 3 && math.Abs(app)+g == math.Abs(app) && math.Abs(aqq)+g == math.Abs(aqq) {
					w.Set(p, q, 0)
					w.Set(q, p, 0)
					continue
				}
				// Compute the Jacobi rotation that annihilates w[p][q].
				theta := (aqq - app) / (2 * apq)
				var t float64
				if math.Abs(theta) > 1e20 {
					t = 1 / (2 * theta)
				} else {
					t = 1 / (math.Abs(theta) + math.Sqrt(theta*theta+1))
					if theta < 0 {
						t = -t
					}
				}
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				tau := s / (1 + c)
				applyJacobi(w, v, p, q, s, tau, t, apq)
				rotated = true
			}
		}
		if !rotated && thresh == 0 {
			break
		}
	}

	eig := &Eigen{Values: make([]float64, n), Vectors: v}
	for i := 0; i < n; i++ {
		eig.Values[i] = w.At(i, i)
	}
	sortEigenDesc(eig)
	return eig, nil
}

// applyJacobi applies the rotation in the (p,q) plane to w (two-sided) and
// accumulates it into v (one-sided, columns).
func applyJacobi(w, v *Mat, p, q int, s, tau, t, apq float64) {
	n := w.Rows
	w.Set(p, p, w.At(p, p)-t*apq)
	w.Set(q, q, w.At(q, q)+t*apq)
	w.Set(p, q, 0)
	w.Set(q, p, 0)
	rot := func(m *Mat, i1, j1, i2, j2 int) {
		g := m.At(i1, j1)
		h := m.At(i2, j2)
		m.Set(i1, j1, g-s*(h+g*tau))
		m.Set(i2, j2, h+s*(g-h*tau))
	}
	for j := 0; j < p; j++ {
		rot(w, j, p, j, q)
		w.Set(p, j, w.At(j, p))
		w.Set(q, j, w.At(j, q))
	}
	for j := p + 1; j < q; j++ {
		rot(w, p, j, j, q)
		w.Set(j, p, w.At(p, j))
		w.Set(q, j, w.At(j, q))
	}
	for j := q + 1; j < n; j++ {
		rot(w, p, j, q, j)
		w.Set(j, p, w.At(p, j))
		w.Set(j, q, w.At(q, j))
	}
	for j := 0; j < n; j++ {
		rot(v, j, p, j, q)
	}
}

func offDiagNorm(m *Mat) float64 {
	var s float64
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			s += math.Abs(m.At(i, j))
		}
	}
	return s
}

// sortEigenDesc reorders the decomposition so Values is descending and
// Vectors' columns follow.
func sortEigenDesc(e *Eigen) {
	n := len(e.Values)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return e.Values[idx[a]] > e.Values[idx[b]] })

	vals := make([]float64, n)
	vecs := New(n, n)
	for newCol, oldCol := range idx {
		vals[newCol] = e.Values[oldCol]
		for r := 0; r < n; r++ {
			vecs.Set(r, newCol, e.Vectors.At(r, oldCol))
		}
	}
	e.Values = vals
	e.Vectors = vecs
}

// LogDet returns the log-determinant of the symmetric positive definite
// matrix whose eigenvalues are Values, clamping each eigenvalue to at least
// floor to keep the result finite for near-singular matrices.
func (e *Eigen) LogDet(floor float64) float64 {
	var s float64
	for _, v := range e.Values {
		if v < floor {
			v = floor
		}
		s += math.Log(v)
	}
	return s
}
