package matrix

// Asymmetric-distance (ADC) kernels for the product-quantized scan path.
// A PQ code row is m uint8 sub-codes; the query side is a per-query lookup
// table with one K-wide slab per sub-block, table[j*k+c] holding the exact
// squared distance between the query's j-th sub-vector and centroid c of
// block j. The estimated squared distance of a coded row is then m table
// loads and m-1 adds — no multiplies, no stored floats.
//
// Table entries are squared distances and therefore non-negative, which is
// what makes the partial sums of ADCSumBound monotone non-decreasing and
// the early-abandon contract sound. Accumulation is a single accumulator in
// strict block order, so every caller that sums the same table and code
// gets the bit-identical estimate regardless of batching.

// ADCSum returns the ADC estimate Σ_j table[j*k + code[j]] for one coded
// row. k is the per-block slab width (the codebook's centroid count); code
// supplies one sub-code per block.
//
//mmdr:hotpath innermost per-row kernel of every quantized annulus scan
func ADCSum(table []float64, k int, code []byte) float64 {
	var s float64
	off := 0
	for _, c := range code {
		s += table[off+int(c)]
		off += k
	}
	return s
}

// ADCSumBound is ADCSum with early abandoning: the scan may stop as soon as
// the partial sum exceeds bound. Table entries are non-negative, so a
// return value v > bound certifies the full estimate also exceeds bound; a
// return value v <= bound is the exact full estimate, bit-identical to
// ADCSum (abandoning only cuts block iterations short, it never reorders
// the strict left-to-right accumulation). Pass bound = +Inf to disable
// abandoning. Codes of at most four blocks skip the per-block branch
// entirely: at that width an abandoned row saves fewer adds than the
// branches cost, and the full sum is what ADCSum would return anyway.
//
//mmdr:hotpath innermost per-row kernel of every bounded quantized scan
func ADCSumBound(table []float64, k int, code []byte, bound float64) float64 {
	if len(code) == 4 {
		if k == 256 && len(table) >= 1024 {
			// The K=256/m=4 configuration is the paper-scale default, so
			// it gets a dedicated shape: pinning the table to a constant
			// 1024-wide slab makes every lookup provably in bounds (a byte
			// sub-code cannot index past offset+255 ≤ 1023), so the four
			// loads carry no bounds checks at all. Same loads in the same
			// order as the generic four-block path below — bit-identical,
			// and a malformed short table falls through to it so the panic
			// behavior is unchanged too.
			t := table[:1024:1024]
			s := t[int(code[0])]
			s += t[256+int(code[1])]
			s += t[512+int(code[2])]
			s += t[768+int(code[3])]
			return s
		}
		s := table[int(code[0])]
		s += table[k+int(code[1])]
		s += table[2*k+int(code[2])]
		s += table[3*k+int(code[3])]
		return s
	}
	if len(code) <= 4 {
		return ADCSum(table, k, code)
	}
	var s float64
	off := 0
	for _, c := range code {
		s += table[off+int(c)]
		if s > bound {
			return s
		}
		off += k
	}
	return s
}
