package matrix

import (
	"math"
	"math/rand"
	"testing"
)

// naiveDot / naiveSqDist are the rolled serial loops the kernels replace.
// The kernels must match them BITWISE: Go does not reassociate float math,
// and the unrolled bodies keep the same single-accumulator order.
func naiveDot(x, y []float64) float64 {
	var s float64
	for i := range x {
		s += x[i] * y[i]
	}
	return s
}

func naiveSqDist(x, y []float64) float64 {
	var s float64
	for i := range x {
		d := x[i] - y[i]
		s += d * d
	}
	return s
}

func randVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func TestKernelsBitIdenticalToSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 13, 16, 31, 64, 100} {
		for trial := 0; trial < 10; trial++ {
			x, y := randVec(rng, n), randVec(rng, n)
			if got, want := DotUnroll4(x, y), naiveDot(x, y); got != want {
				t.Fatalf("n=%d DotUnroll4 = %v, serial = %v", n, got, want)
			}
			if got, want := SqDist(x, y), naiveSqDist(x, y); got != want {
				t.Fatalf("n=%d SqDist = %v, serial = %v", n, got, want)
			}
			if got, want := SqNorm(x), naiveDot(x, x); got != want {
				t.Fatalf("n=%d SqNorm = %v, serial = %v", n, got, want)
			}
			if got, want := SqDistEarlyAbandon(x, y, math.Inf(1)), naiveSqDist(x, y); got != want {
				t.Fatalf("n=%d SqDistEarlyAbandon(+Inf) = %v, serial = %v", n, got, want)
			}
		}
	}
}

func TestSqDistEarlyAbandonContract(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(80)
		x, y := randVec(rng, n), randVec(rng, n)
		full := SqDist(x, y)
		bound := full * rng.Float64() * 2 // below or above the true distance
		got := SqDistEarlyAbandon(x, y, bound)
		if got <= bound {
			// Within bound: must be the exact full distance, bitwise.
			if got != full {
				t.Fatalf("trial %d: returned %v <= bound %v but full is %v", trial, got, bound, full)
			}
		} else if full <= bound {
			// Abandoned although the full distance is within bound: the
			// monotonicity certificate would be wrong.
			t.Fatalf("trial %d: abandoned with %v but full %v <= bound %v", trial, got, full, bound)
		}
	}
}

func TestMatVecRowMajor(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, dims := range [][2]int{{1, 1}, {3, 7}, {5, 4}, {8, 16}, {2, 33}} {
		rows, cols := dims[0], dims[1]
		a := randVec(rng, rows*cols)
		x := randVec(rng, cols)
		dst := make([]float64, rows)
		MatVecRowMajor(a, rows, cols, x, dst)
		for r := 0; r < rows; r++ {
			if want := naiveDot(a[r*cols:(r+1)*cols], x); dst[r] != want {
				t.Fatalf("%dx%d row %d: got %v want %v", rows, cols, r, dst[r], want)
			}
		}
	}
}

func TestKernelPanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	expectPanic("DotUnroll4", func() { DotUnroll4([]float64{1}, []float64{1, 2}) })
	expectPanic("SqDist", func() { SqDist([]float64{1}, []float64{1, 2}) })
	expectPanic("SqDistEarlyAbandon", func() { SqDistEarlyAbandon([]float64{1}, nil, 0) })
	expectPanic("MatVecRowMajor/mat", func() { MatVecRowMajor([]float64{1, 2, 3}, 2, 2, []float64{1, 2}, []float64{0, 0}) })
	expectPanic("MatVecRowMajor/vec", func() { MatVecRowMajor([]float64{1, 2, 3, 4}, 2, 2, []float64{1}, []float64{0, 0}) })
}

func benchVecs(n int) ([]float64, []float64) {
	rng := rand.New(rand.NewSource(42))
	return randVec(rng, n), randVec(rng, n)
}

func BenchmarkSqDist64(b *testing.B) {
	x, y := benchVecs(64)
	b.ReportAllocs()
	var s float64
	for i := 0; i < b.N; i++ {
		s += SqDist(x, y)
	}
	_ = s
}

func BenchmarkSqDistEarlyAbandon64(b *testing.B) {
	x, y := benchVecs(64)
	bound := SqDist(x, y) / 4 // abandons roughly a quarter of the way in
	b.ReportAllocs()
	var s float64
	for i := 0; i < b.N; i++ {
		s += SqDistEarlyAbandon(x, y, bound)
	}
	_ = s
}

func BenchmarkDotUnroll4_64(b *testing.B) {
	x, y := benchVecs(64)
	b.ReportAllocs()
	var s float64
	for i := 0; i < b.N; i++ {
		s += DotUnroll4(x, y)
	}
	_ = s
}
