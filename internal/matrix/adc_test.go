package matrix

import (
	"math"
	"math/rand"
	"testing"
)

// randTable builds an m-block × k table of non-negative entries plus a code
// selecting one entry per block.
func randTable(rng *rand.Rand, m, k int) ([]float64, []byte) {
	table := make([]float64, m*k)
	for i := range table {
		table[i] = rng.Float64() * 3
	}
	code := make([]byte, m)
	for j := range code {
		code[j] = byte(rng.Intn(k))
	}
	return table, code
}

func TestADCSumMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, m := range []int{1, 2, 4, 8, 16} {
		for _, k := range []int{2, 16, 64, 256} {
			table, code := randTable(rng, m, k)
			var want float64
			for j, c := range code {
				want += table[j*k+int(c)]
			}
			if got := ADCSum(table, k, code); got != want {
				t.Errorf("m=%d k=%d: ADCSum=%v want %v", m, k, got, want)
			}
		}
	}
}

func TestADCSumBoundContract(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 500; trial++ {
		m := 1 + rng.Intn(16)
		k := 1 + rng.Intn(256)
		table, code := randTable(rng, m, k)
		full := ADCSum(table, k, code)
		bound := rng.Float64() * float64(m) * 3
		got := ADCSumBound(table, k, code, bound)
		if got <= bound {
			// An accepted value must be the exact full sum, bit for bit.
			if got != full {
				t.Fatalf("accepted value %v != full sum %v (bound %v)", got, full, bound)
			}
		} else if full <= bound {
			// An abandoned value must certify genuine exceedance.
			t.Fatalf("abandoned with partial %v but full sum %v <= bound %v", got, full, bound)
		}
	}
}

func TestADCSumBoundInfIsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	table, code := randTable(rng, 8, 64)
	if got, want := ADCSumBound(table, 64, code, math.Inf(1)), ADCSum(table, 64, code); got != want {
		t.Fatalf("ADCSumBound(+Inf)=%v want %v", got, want)
	}
}

func TestADCSumEmptyCode(t *testing.T) {
	if got := ADCSum(nil, 4, nil); got != 0 {
		t.Fatalf("empty code: got %v want 0", got)
	}
	if got := ADCSumBound(nil, 4, nil, 0); got != 0 {
		t.Fatalf("empty code bounded: got %v want 0", got)
	}
}

func BenchmarkADCSum(b *testing.B) {
	rng := rand.New(rand.NewSource(17))
	table, code := randTable(rng, 8, 64)
	b.ReportAllocs()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += ADCSum(table, 64, code)
	}
	_ = sink
}
