package matrix

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewAndAccessors(t *testing.T) {
	m := New(2, 3)
	if m.Rows != 2 || m.Cols != 3 || len(m.Data) != 6 {
		t.Fatalf("New(2,3) = %dx%d len %d", m.Rows, m.Cols, len(m.Data))
	}
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Fatalf("At(1,2) = %v, want 7", m.At(1, 2))
	}
	if got := m.Row(1); got[2] != 7 {
		t.Fatalf("Row(1)[2] = %v, want 7", got[2])
	}
}

func TestNewFromDataPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewFromData(2, 2, []float64{1, 2, 3})
}

func TestIdentity(t *testing.T) {
	id := Identity(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if id.At(i, j) != want {
				t.Fatalf("Identity(3)[%d][%d] = %v", i, j, id.At(i, j))
			}
		}
	}
}

func TestTranspose(t *testing.T) {
	m := NewFromData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	mt := m.T()
	if mt.Rows != 3 || mt.Cols != 2 {
		t.Fatalf("T shape %dx%d", mt.Rows, mt.Cols)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != mt.At(j, i) {
				t.Fatalf("T mismatch at %d,%d", i, j)
			}
		}
	}
}

func TestMul(t *testing.T) {
	a := NewFromData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := NewFromData(3, 2, []float64{7, 8, 9, 10, 11, 12})
	c := Mul(a, b)
	want := NewFromData(2, 2, []float64{58, 64, 139, 154})
	if MaxAbsDiff(c, want) > 1e-12 {
		t.Fatalf("Mul = %v, want %v", c, want)
	}
}

func TestMulVecAndVecMul(t *testing.T) {
	a := NewFromData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	mv := a.MulVec([]float64{1, 1, 1})
	if mv[0] != 6 || mv[1] != 15 {
		t.Fatalf("MulVec = %v", mv)
	}
	vm := a.VecMul([]float64{1, 1})
	if vm[0] != 5 || vm[1] != 7 || vm[2] != 9 {
		t.Fatalf("VecMul = %v", vm)
	}
}

func TestAddSubScaleTrace(t *testing.T) {
	a := NewFromData(2, 2, []float64{1, 2, 3, 4})
	b := NewFromData(2, 2, []float64{4, 3, 2, 1})
	if s := Add(a, b); MaxAbsDiff(s, NewFromData(2, 2, []float64{5, 5, 5, 5})) > 0 {
		t.Fatalf("Add = %v", s)
	}
	if d := Sub(a, b); MaxAbsDiff(d, NewFromData(2, 2, []float64{-3, -1, 1, 3})) > 0 {
		t.Fatalf("Sub = %v", d)
	}
	if sc := a.Scale(2); sc.At(1, 1) != 8 {
		t.Fatalf("Scale = %v", sc)
	}
	if tr := a.Trace(); tr != 5 {
		t.Fatalf("Trace = %v", tr)
	}
}

func TestAddRidge(t *testing.T) {
	a := New(3, 3)
	a.AddRidge(0.5)
	if a.At(0, 0) != 0.5 || a.At(2, 2) != 0.5 || a.At(0, 1) != 0 {
		t.Fatalf("AddRidge result %v", a)
	}
}

func TestLeadingColsAndCol(t *testing.T) {
	a := NewFromData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	lc := a.LeadingCols(2)
	if lc.Cols != 2 || lc.At(1, 1) != 5 {
		t.Fatalf("LeadingCols = %v", lc)
	}
	col := a.Col(2)
	if col[0] != 3 || col[1] != 6 {
		t.Fatalf("Col = %v", col)
	}
}

func TestVectorHelpers(t *testing.T) {
	x := []float64{3, 4}
	y := []float64{0, 0}
	if Dot(x, x) != 25 {
		t.Fatal("Dot")
	}
	if Norm2(x) != 5 {
		t.Fatal("Norm2")
	}
	if SqDist(x, y) != 25 || Dist(x, y) != 5 {
		t.Fatal("SqDist/Dist")
	}
	AXPY(2, x, y)
	if y[0] != 6 || y[1] != 8 {
		t.Fatalf("AXPY = %v", y)
	}
}

func TestIsSymmetric(t *testing.T) {
	a := NewFromData(2, 2, []float64{1, 2, 2, 1})
	if !a.IsSymmetric(0) {
		t.Fatal("expected symmetric")
	}
	a.Set(0, 1, 3)
	if a.IsSymmetric(0.5) {
		t.Fatal("expected asymmetric")
	}
	if NewFromData(1, 2, []float64{1, 2}).IsSymmetric(1) {
		t.Fatal("non-square cannot be symmetric")
	}
}

// randSPD builds a random symmetric positive definite matrix B·Bᵀ + εI.
func randSPD(n int, rng *rand.Rand) *Mat {
	b := New(n, n)
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	spd := Mul(b, b.T())
	return spd.AddRidge(0.1)
}

func TestSymEigenKnown(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	a := NewFromData(2, 2, []float64{2, 1, 1, 2})
	e, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(e.Values[0], 3, 1e-10) || !almostEqual(e.Values[1], 1, 1e-10) {
		t.Fatalf("eigenvalues = %v, want [3 1]", e.Values)
	}
}

func TestSymEigenDiagonal(t *testing.T) {
	a := New(3, 3)
	a.Set(0, 0, 5)
	a.Set(1, 1, -2)
	a.Set(2, 2, 9)
	e, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{9, 5, -2}
	for i, w := range want {
		if !almostEqual(e.Values[i], w, 1e-12) {
			t.Fatalf("eigenvalues = %v, want %v", e.Values, want)
		}
	}
}

func TestSymEigenNonSquare(t *testing.T) {
	if _, err := SymEigen(New(2, 3)); err == nil {
		t.Fatal("expected error for non-square input")
	}
}

func TestSymEigenEmpty(t *testing.T) {
	e, err := SymEigen(New(0, 0))
	if err != nil || len(e.Values) != 0 {
		t.Fatalf("empty eigen: %v %v", e, err)
	}
}

// Property: for random SPD matrices, A·v_k = λ_k·v_k, eigenvalues descend,
// and the eigenvector matrix is orthonormal.
func TestSymEigenProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(12)
		a := randSPD(n, r)
		e, err := SymEigen(a)
		if err != nil {
			return false
		}
		if OrthonormalityError(e.Vectors) > 1e-9 {
			return false
		}
		for k := 0; k < n; k++ {
			if k > 0 && e.Values[k] > e.Values[k-1]+1e-9 {
				return false
			}
			v := e.Vectors.Col(k)
			av := a.MulVec(v)
			for i := range av {
				if !almostEqual(av[i], e.Values[k]*v[i], 1e-7*(1+math.Abs(e.Values[k]))) {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 30, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestCholeskyRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(10)
		a := randSPD(n, rng)
		l, err := Cholesky(a)
		if err != nil {
			t.Fatalf("Cholesky failed on SPD: %v", err)
		}
		if MaxAbsDiff(Mul(l, l.T()), a) > 1e-8 {
			t.Fatalf("L·Lᵀ != A (n=%d)", n)
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := NewFromData(2, 2, []float64{1, 2, 2, 1}) // eigenvalues 3, -1
	if _, err := Cholesky(a); err == nil {
		t.Fatal("expected ErrSingular for indefinite matrix")
	}
}

func TestCholeskySolve(t *testing.T) {
	a := NewFromData(2, 2, []float64{4, 2, 2, 3})
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	x := CholeskySolveVec(l, []float64{10, 9})
	// Verify A·x = b.
	b := a.MulVec(x)
	if !almostEqual(b[0], 10, 1e-10) || !almostEqual(b[1], 9, 1e-10) {
		t.Fatalf("solve residual: %v", b)
	}
}

func TestLUDetAndSolve(t *testing.T) {
	a := NewFromData(3, 3, []float64{2, 0, 1, 1, 3, 2, 1, 1, 4})
	f, err := NewLU(a)
	if err != nil {
		t.Fatal(err)
	}
	// det = 2*(12-2) - 0 + 1*(1-3) = 20 - 2 = 18
	if !almostEqual(f.Det(), 18, 1e-9) {
		t.Fatalf("Det = %v, want 18", f.Det())
	}
	x := f.SolveVec([]float64{3, 6, 6})
	ax := a.MulVec(x)
	for i, v := range []float64{3, 6, 6} {
		if !almostEqual(ax[i], v, 1e-9) {
			t.Fatalf("LU solve residual %v", ax)
		}
	}
}

func TestLUSingular(t *testing.T) {
	a := NewFromData(2, 2, []float64{1, 2, 2, 4})
	if _, err := NewLU(a); err == nil {
		t.Fatal("expected ErrSingular")
	}
	if Det(a) != 0 {
		t.Fatal("Det of singular should be 0")
	}
}

// Property: Inverse satisfies A·A⁻¹ ≈ I for random well-conditioned matrices.
func TestInverseProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(8)
		a := randSPD(n, r) // SPD is well-conditioned enough
		inv, err := Inverse(a)
		if err != nil {
			return false
		}
		return MaxAbsDiff(Mul(a, inv), Identity(n)) < 1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestInverseSPD(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randSPD(6, rng)
	inv, logDet, err := InverseSPD(a, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if MaxAbsDiff(Mul(a, inv), Identity(6)) > 1e-7 {
		t.Fatal("InverseSPD: A·A⁻¹ != I")
	}
	// log-det must match LU determinant.
	wantLog := math.Log(Det(a))
	if !almostEqual(logDet, wantLog, 1e-6*(1+math.Abs(wantLog))) {
		t.Fatalf("logDet = %v, want %v", logDet, wantLog)
	}
}

func TestInverseSPDRegularizesSingular(t *testing.T) {
	// Rank-1 covariance: must succeed via ridge.
	a := NewFromData(2, 2, []float64{1, 1, 1, 1})
	inv, _, err := InverseSPD(a, 1e-6)
	if err != nil {
		t.Fatalf("InverseSPD on singular: %v", err)
	}
	if inv == nil {
		t.Fatal("nil inverse")
	}
}

func TestInverseSPDZeroSize(t *testing.T) {
	inv, logDet, err := InverseSPD(New(0, 0), 1e-6)
	if err != nil || inv.Rows != 0 || logDet != 0 {
		t.Fatalf("zero-size InverseSPD: %v %v %v", inv, logDet, err)
	}
}

func TestQRProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := 2 + r.Intn(10)
		n := 1 + r.Intn(m)
		a := New(m, n)
		for i := range a.Data {
			a.Data[i] = r.NormFloat64()
		}
		q, rr := QR(a)
		if OrthonormalityError(q) > 1e-9 {
			return false
		}
		// R upper triangular.
		for i := 1; i < n; i++ {
			for j := 0; j < i; j++ {
				if math.Abs(rr.At(i, j)) > 1e-10 {
					return false
				}
			}
		}
		return MaxAbsDiff(Mul(q, rr), a) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomOrthonormal(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, n := range []int{1, 2, 8, 32} {
		q := RandomOrthonormal(n, rng)
		if q.Rows != n || q.Cols != n {
			t.Fatalf("shape %dx%d", q.Rows, q.Cols)
		}
		if e := OrthonormalityError(q); e > 1e-9 {
			t.Fatalf("n=%d orthonormality error %g", n, e)
		}
		// Rotation preserves norms.
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		if !almostEqual(Norm2(q.MulVec(x)), Norm2(x), 1e-9) {
			t.Fatal("rotation changed vector norm")
		}
	}
}

func TestEigenLogDet(t *testing.T) {
	e := &Eigen{Values: []float64{4, 1, 1e-30}}
	got := e.LogDet(1e-12)
	want := math.Log(4) + math.Log(1) + math.Log(1e-12)
	if !almostEqual(got, want, 1e-12) {
		t.Fatalf("LogDet = %v, want %v", got, want)
	}
}

func TestStringDoesNotPanic(t *testing.T) {
	s := NewFromData(2, 2, []float64{1, 2, 3, 4}).String()
	if s == "" {
		t.Fatal("empty String()")
	}
}

func BenchmarkSymEigen64(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	a := randSPD(64, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SymEigen(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInverseSPD64(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	a := randSPD(64, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := InverseSPD(a, 1e-10); err != nil {
			b.Fatal(err)
		}
	}
}

func TestOrthogonalIterationMatchesJacobi(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 10; trial++ {
		n := 6 + rng.Intn(30)
		k := 1 + rng.Intn(5)
		a := randSPD(n, rng)
		full, err := SymEigen(a)
		if err != nil {
			t.Fatal(err)
		}
		vals, vecs, err := OrthogonalIteration(a, k, 0, 0, int64(trial))
		if err != nil {
			t.Fatal(err)
		}
		if vecs.Rows != n || vecs.Cols != k {
			t.Fatalf("vectors shape %dx%d", vecs.Rows, vecs.Cols)
		}
		if e := OrthonormalityError(vecs); e > 1e-8 {
			t.Fatalf("orthonormality error %g", e)
		}
		for j := 0; j < k; j++ {
			if !almostEqual(vals[j], full.Values[j], 1e-6*(1+math.Abs(full.Values[j]))) {
				t.Fatalf("trial %d eigenvalue %d: %v vs Jacobi %v", trial, j, vals[j], full.Values[j])
			}
			// Eigenvector residual ||A v - λ v||.
			v := vecs.Col(j)
			av := a.MulVec(v)
			var res float64
			for i := range av {
				d := av[i] - vals[j]*v[i]
				res += d * d
			}
			if math.Sqrt(res) > 1e-5*(1+math.Abs(vals[j])) {
				t.Fatalf("trial %d eigenvector %d residual %g", trial, j, math.Sqrt(res))
			}
		}
	}
}

func TestOrthogonalIterationValidation(t *testing.T) {
	if _, _, err := OrthogonalIteration(New(2, 3), 1, 0, 0, 1); err == nil {
		t.Fatal("non-square should error")
	}
	a := Identity(4)
	if _, _, err := OrthogonalIteration(a, 0, 0, 0, 1); err == nil {
		t.Fatal("k=0 should error")
	}
	if _, _, err := OrthogonalIteration(a, 5, 0, 0, 1); err == nil {
		t.Fatal("k>d should error")
	}
	vals, _, err := OrthogonalIteration(a, 4, 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vals {
		if !almostEqual(v, 1, 1e-9) {
			t.Fatalf("identity eigenvalues %v", vals)
		}
	}
}

func BenchmarkOrthogonalIterationTop20Of128(b *testing.B) {
	rng := rand.New(rand.NewSource(78))
	a := randSPD(128, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := OrthogonalIteration(a, 20, 0, 0, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSymEigen128(b *testing.B) {
	rng := rand.New(rand.NewSource(79))
	a := randSPD(128, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SymEigen(a); err != nil {
			b.Fatal(err)
		}
	}
}

// decayedSPD builds an SPD matrix with a sharply decaying spectrum — the
// shape covariance matrices of locally correlated data actually have, and
// where orthogonal iteration converges in a handful of steps.
func decayedSPD(n int, rng *rand.Rand) *Mat {
	q := RandomOrthonormal(n, rng)
	d := New(n, n)
	for i := 0; i < n; i++ {
		d.Set(i, i, math.Pow(0.5, float64(i))+1e-6)
	}
	return Mul(q, Mul(d, q.T()))
}

func TestOrthogonalIterationDecayedSpectrum(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	a := decayedSPD(64, rng)
	full, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	vals, _, err := OrthogonalIteration(a, 8, 0, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 8; j++ {
		if !almostEqual(vals[j], full.Values[j], 1e-8*(1+full.Values[j])) {
			t.Fatalf("eigenvalue %d: %v vs %v", j, vals[j], full.Values[j])
		}
	}
}

func BenchmarkOrthogonalIterationDecayed128(b *testing.B) {
	rng := rand.New(rand.NewSource(81))
	a := decayedSPD(128, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := OrthogonalIteration(a, 20, 0, 0, 1); err != nil {
			b.Fatal(err)
		}
	}
}
