package matrix

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a factorization or inverse encounters a
// (numerically) singular matrix.
var ErrSingular = errors.New("matrix: singular matrix")

// Cholesky computes the lower-triangular factor L with a = L·Lᵀ for a
// symmetric positive definite matrix. It returns ErrSingular if a pivot is
// not strictly positive.
func Cholesky(a *Mat) (*Mat, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("matrix: Cholesky requires square matrix, got %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	l := New(n, n)
	for j := 0; j < n; j++ {
		var d float64 = a.At(j, j)
		for k := 0; k < j; k++ {
			v := l.At(j, k)
			d -= v * v
		}
		if d <= 0 {
			return nil, ErrSingular
		}
		d = math.Sqrt(d)
		l.Set(j, j, d)
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, s/d)
		}
	}
	return l, nil
}

// CholeskyLogDet returns the log-determinant of the SPD matrix with
// Cholesky factor l: 2·Σ log l[i][i].
func CholeskyLogDet(l *Mat) float64 {
	var s float64
	for i := 0; i < l.Rows; i++ {
		s += math.Log(l.At(i, i))
	}
	return 2 * s
}

// CholeskySolveVec solves L·Lᵀ·x = b given the Cholesky factor l.
func CholeskySolveVec(l *Mat, b []float64) []float64 {
	n := l.Rows
	// Forward substitution: L y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		row := l.Row(i)
		for k := 0; k < i; k++ {
			s -= row[k] * y[k]
		}
		y[i] = s / row[i]
	}
	// Back substitution: Lᵀ x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	return x
}

// LU holds an LU factorization with partial pivoting: P·A = L·U packed into
// a single matrix (unit lower triangle implicit).
type LU struct {
	lu    *Mat
	piv   []int
	sign  float64 // +1 or -1, determinant sign from row swaps
	valid bool
}

// NewLU factors a with partial pivoting. It returns ErrSingular if a pivot
// is exactly zero.
func NewLU(a *Mat) (*LU, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("matrix: LU requires square matrix, got %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	f := &LU{lu: a.Clone(), piv: make([]int, n), sign: 1}
	for i := range f.piv {
		f.piv[i] = i
	}
	for col := 0; col < n; col++ {
		// Partial pivot: largest |value| in the column at/below the diagonal.
		p := col
		max := math.Abs(f.lu.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(f.lu.At(r, col)); v > max {
				max, p = v, r
			}
		}
		if max == 0 {
			return nil, ErrSingular
		}
		if p != col {
			rp, rc := f.lu.Row(p), f.lu.Row(col)
			for j := 0; j < n; j++ {
				rp[j], rc[j] = rc[j], rp[j]
			}
			f.piv[p], f.piv[col] = f.piv[col], f.piv[p]
			f.sign = -f.sign
		}
		pivVal := f.lu.At(col, col)
		for r := col + 1; r < n; r++ {
			m := f.lu.At(r, col) / pivVal
			f.lu.Set(r, col, m)
			if m == 0 {
				continue
			}
			rr, rc := f.lu.Row(r), f.lu.Row(col)
			for j := col + 1; j < n; j++ {
				rr[j] -= m * rc[j]
			}
		}
	}
	f.valid = true
	return f, nil
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	d := f.sign
	for i := 0; i < f.lu.Rows; i++ {
		d *= f.lu.At(i, i)
	}
	return d
}

// SolveVec solves A x = b.
func (f *LU) SolveVec(b []float64) []float64 {
	n := f.lu.Rows
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	// Forward substitution with implicit unit diagonal.
	for i := 0; i < n; i++ {
		row := f.lu.Row(i)
		for k := 0; k < i; k++ {
			x[i] -= row[k] * x[k]
		}
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		row := f.lu.Row(i)
		for k := i + 1; k < n; k++ {
			x[i] -= row[k] * x[k]
		}
		x[i] /= row[i]
	}
	return x
}

// Inverse returns a⁻¹ using LU with partial pivoting.
func Inverse(a *Mat) (*Mat, error) {
	f, err := NewLU(a)
	if err != nil {
		return nil, err
	}
	n := a.Rows
	inv := New(n, n)
	e := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		col := f.SolveVec(e)
		for i := 0; i < n; i++ {
			inv.Set(i, j, col[i])
		}
	}
	return inv, nil
}

// Det returns the determinant of a (0 for singular input).
func Det(a *Mat) float64 {
	f, err := NewLU(a)
	if err != nil {
		return 0
	}
	return f.Det()
}

// InverseSPD inverts a symmetric positive definite matrix via Cholesky and
// also returns its log-determinant. If the matrix is not positive definite
// (e.g. a degenerate covariance), a ridge of ridgeScale·trace/n is added to
// the diagonal and the inversion retried, doubling the ridge until it
// succeeds. This mirrors the regularization every practical elliptical
// k-means needs (see DESIGN.md).
func InverseSPD(a *Mat, ridgeScale float64) (inv *Mat, logDet float64, err error) {
	if a.Rows != a.Cols {
		return nil, 0, fmt.Errorf("matrix: InverseSPD requires square matrix, got %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	if n == 0 {
		return New(0, 0), 0, nil
	}
	work := a
	ridge := 0.0
	base := a.Trace() / float64(n)
	if base <= 0 {
		base = 1
	}
	for attempt := 0; attempt < 40; attempt++ {
		l, cerr := Cholesky(work)
		if cerr == nil {
			inv, ierr := invFromCholesky(l)
			if ierr == nil {
				return inv, CholeskyLogDet(l), nil
			}
		}
		if ridge == 0 {
			ridge = ridgeScale * base
			if ridge <= 0 {
				ridge = 1e-12
			}
		} else {
			ridge *= 8
		}
		work = a.Clone().AddRidge(ridge)
	}
	return nil, 0, ErrSingular
}

func invFromCholesky(l *Mat) (*Mat, error) {
	n := l.Rows
	inv := New(n, n)
	e := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		col := CholeskySolveVec(l, e)
		for i := 0; i < n; i++ {
			if math.IsNaN(col[i]) || math.IsInf(col[i], 0) {
				return nil, ErrSingular
			}
			inv.Set(i, j, col[i])
		}
	}
	return inv, nil
}
