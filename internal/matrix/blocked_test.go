package matrix

import (
	"math"
	"math/rand"
	"testing"
)

// SqDistRowToSel must match per-pair SqDistEarlyAbandon exactly: same exact
// squared distances for survivors (bit-identical to SqDist), same exceedance
// certificate for abandoned pairs, same short-vector cutoff — across random
// dimensions, tile sizes, selections, and bounds.
func TestSqDistRowToSelMatchesPerPair(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		d := 1 + rng.Intn(40) // straddles EarlyAbandonMinLen
		nq := 1 + rng.Intn(12)
		v := make([]float64, d)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		qs := make([]float64, nq*d)
		for i := range qs {
			qs[i] = rng.NormFloat64()
		}
		// Random subset of tile rows, in random order.
		sel := make([]int32, 0, nq)
		for j := 0; j < nq; j++ {
			if rng.Intn(3) > 0 {
				sel = append(sel, int32(j))
			}
		}
		rng.Shuffle(len(sel), func(i, j int) { sel[i], sel[j] = sel[j], sel[i] })
		bounds := make([]float64, len(sel))
		for i := range bounds {
			switch rng.Intn(3) {
			case 0:
				bounds[i] = math.Inf(1)
			case 1:
				bounds[i] = rng.Float64() * float64(d) // often abandons
			default:
				bounds[i] = rng.Float64() * 4 * float64(d) // rarely abandons
			}
		}
		out := make([]float64, len(sel))
		SqDistRowToSel(v, qs, d, sel, bounds, out)
		for i, j := range sel {
			q := qs[int(j)*d : (int(j)+1)*d]
			want := SqDistEarlyAbandon(q, v, bounds[i])
			if math.Float64bits(out[i]) != math.Float64bits(want) {
				t.Fatalf("trial %d sel %d (d=%d, bound=%v): got %v, want %v",
					trial, i, d, bounds[i], out[i], want)
			}
			exact := SqDist(q, v)
			if out[i] <= bounds[i] && math.Float64bits(out[i]) != math.Float64bits(exact) {
				t.Fatalf("trial %d sel %d: survivor %v not exact (want %v)", trial, i, out[i], exact)
			}
			if out[i] > bounds[i] && exact <= bounds[i] {
				t.Fatalf("trial %d sel %d: abandoned a pair within bound (exact %v <= %v)",
					trial, i, exact, bounds[i])
			}
		}
	}
}

func TestSqDistRowToSelPanicsOnShortOutputs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on short bounds/out")
		}
	}()
	SqDistRowToSel(make([]float64, 4), make([]float64, 8), 4, []int32{0, 1}, make([]float64, 1), make([]float64, 1))
}

func BenchmarkSqDistRowToSel8x64(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	const d, nq = 64, 8
	v := make([]float64, d)
	qs := make([]float64, nq*d)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	for i := range qs {
		qs[i] = rng.NormFloat64()
	}
	sel := []int32{0, 1, 2, 3, 4, 5, 6, 7}
	bounds := make([]float64, nq)
	out := make([]float64, nq)
	for i := range bounds {
		bounds[i] = math.Inf(1)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SqDistRowToSel(v, qs, d, sel, bounds, out)
	}
}
