// Package matrix provides the dense linear algebra needed by the MMDR
// pipeline: basic matrix arithmetic, a symmetric eigensolver (cyclic Jacobi),
// Cholesky and LU factorizations for inverses and determinants, and a
// Householder QR used to draw random orthonormal rotations.
//
// The package is self-contained (stdlib only) and tuned for the modest
// matrix orders that arise in dimensionality reduction (covariance matrices
// up to a few hundred rows), not for BLAS-scale workloads. All matrices are
// dense, row-major float64.
package matrix

import (
	"fmt"
	"math"
	"strings"
)

// Mat is a dense row-major matrix. The zero value is an empty 0x0 matrix.
type Mat struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// New returns a zeroed r-by-c matrix.
func New(r, c int) *Mat {
	if r < 0 || c < 0 {
		panic("matrix: negative dimension")
	}
	return &Mat{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// NewFromData wraps data (not copied) as an r-by-c matrix.
func NewFromData(r, c int, data []float64) *Mat {
	if len(data) != r*c {
		panic(fmt.Sprintf("matrix: data length %d != %d*%d", len(data), r, c))
	}
	return &Mat{Rows: r, Cols: c, Data: data}
}

// Identity returns the n-by-n identity matrix.
func Identity(n int) *Mat {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// At returns the element at row i, column j.
func (m *Mat) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Mat) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view (not a copy) of row i.
func (m *Mat) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Mat) Clone() *Mat {
	out := New(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// T returns the transpose of m as a new matrix.
func (m *Mat) T() *Mat {
	out := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out.Data[j*m.Rows+i] = v
		}
	}
	return out
}

// Mul returns the matrix product a*b.
func Mul(a, b *Mat) *Mat {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("matrix: Mul dimension mismatch %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MulVec returns the matrix-vector product m*x.
func (m *Mat) MulVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("matrix: MulVec dimension mismatch %dx%d * %d", m.Rows, m.Cols, len(x)))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// VecMul returns the vector-matrix product xᵀ*m as a vector of length m.Cols.
// This is the projection operation P' = P·Φ used throughout the paper.
func (m *Mat) VecMul(x []float64) []float64 {
	if len(x) != m.Rows {
		panic(fmt.Sprintf("matrix: VecMul dimension mismatch %d * %dx%d", len(x), m.Rows, m.Cols))
	}
	out := make([]float64, m.Cols)
	for i, xv := range x {
		if xv == 0 {
			continue
		}
		row := m.Row(i)
		for j, v := range row {
			out[j] += xv * v
		}
	}
	return out
}

// Add returns a+b.
func Add(a, b *Mat) *Mat {
	checkSameShape(a, b, "Add")
	out := New(a.Rows, a.Cols)
	for i := range a.Data {
		out.Data[i] = a.Data[i] + b.Data[i]
	}
	return out
}

// Sub returns a-b.
func Sub(a, b *Mat) *Mat {
	checkSameShape(a, b, "Sub")
	out := New(a.Rows, a.Cols)
	for i := range a.Data {
		out.Data[i] = a.Data[i] - b.Data[i]
	}
	return out
}

// Scale returns s*m as a new matrix.
func (m *Mat) Scale(s float64) *Mat {
	out := New(m.Rows, m.Cols)
	for i, v := range m.Data {
		out.Data[i] = s * v
	}
	return out
}

// AddRidge adds lambda to every diagonal element in place and returns m.
// It is the regularization applied to near-singular covariance matrices
// before inversion.
func (m *Mat) AddRidge(lambda float64) *Mat {
	n := m.Rows
	if m.Cols < n {
		n = m.Cols
	}
	for i := 0; i < n; i++ {
		m.Data[i*m.Cols+i] += lambda
	}
	return m
}

// Trace returns the sum of diagonal elements.
func (m *Mat) Trace() float64 {
	n := m.Rows
	if m.Cols < n {
		n = m.Cols
	}
	var t float64
	for i := 0; i < n; i++ {
		t += m.Data[i*m.Cols+i]
	}
	return t
}

// Cols2 returns a new matrix containing columns [0, k) of m. It is the
// Φ_dr operator: keeping the first k principal components.
func (m *Mat) LeadingCols(k int) *Mat {
	if k < 0 || k > m.Cols {
		panic(fmt.Sprintf("matrix: LeadingCols %d of %d", k, m.Cols))
	}
	out := New(m.Rows, k)
	for i := 0; i < m.Rows; i++ {
		copy(out.Row(i), m.Row(i)[:k])
	}
	return out
}

// Col returns a copy of column j.
func (m *Mat) Col(j int) []float64 {
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = m.Data[i*m.Cols+j]
	}
	return out
}

// MaxAbsDiff returns the largest absolute elementwise difference between a
// and b; useful in tests.
func MaxAbsDiff(a, b *Mat) float64 {
	checkSameShape(a, b, "MaxAbsDiff")
	var max float64
	for i := range a.Data {
		d := math.Abs(a.Data[i] - b.Data[i])
		if d > max {
			max = d
		}
	}
	return max
}

// IsSymmetric reports whether m is square and symmetric within tol.
func (m *Mat) IsSymmetric(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// String renders the matrix for debugging.
func (m *Mat) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%dx%d[", m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		if i > 0 {
			b.WriteString("; ")
		}
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%.4g", m.At(i, j))
		}
	}
	b.WriteByte(']')
	return b.String()
}

func checkSameShape(a, b *Mat, op string) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("matrix: %s shape mismatch %dx%d vs %dx%d", op, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}

// Dot returns the inner product of x and y.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("matrix: Dot length mismatch")
	}
	var s float64
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	return math.Sqrt(Dot(x, x))
}

// Dist returns the Euclidean distance between x and y.
func Dist(x, y []float64) float64 { return math.Sqrt(SqDist(x, y)) }

// AXPY computes y += a*x in place.
func AXPY(a float64, x, y []float64) {
	if len(x) != len(y) {
		panic("matrix: AXPY length mismatch")
	}
	for i, v := range x {
		y[i] += a * v
	}
}
