package matrix

import (
	"math"
	"math/rand"
)

// QR computes a Householder QR factorization of a (m >= n) and returns the
// thin Q (m x n, orthonormal columns) and R (n x n, upper triangular).
func QR(a *Mat) (q, r *Mat) {
	m, n := a.Rows, a.Cols
	if m < n {
		panic("matrix: QR requires Rows >= Cols")
	}
	// Work matrix accumulates R; vs stores Householder vectors.
	work := a.Clone()
	vs := make([][]float64, n)

	for k := 0; k < n; k++ {
		// Build the Householder vector for column k below the diagonal.
		v := make([]float64, m-k)
		for i := k; i < m; i++ {
			v[i-k] = work.At(i, k)
		}
		alpha := Norm2(v)
		if v[0] > 0 {
			alpha = -alpha
		}
		if alpha != 0 {
			v[0] -= alpha
			nv := Norm2(v)
			if nv > 0 {
				for i := range v {
					v[i] /= nv
				}
			}
		}
		vs[k] = v
		// Apply H = I - 2vvᵀ to the trailing submatrix.
		for j := k; j < n; j++ {
			var dot float64
			for i := k; i < m; i++ {
				dot += v[i-k] * work.At(i, j)
			}
			dot *= 2
			for i := k; i < m; i++ {
				work.Set(i, j, work.At(i, j)-dot*v[i-k])
			}
		}
	}

	r = New(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			r.Set(i, j, work.At(i, j))
		}
	}

	// Form thin Q by applying the Householder reflections to the first n
	// columns of the identity, in reverse order.
	q = New(m, n)
	for j := 0; j < n; j++ {
		q.Set(j, j, 1)
	}
	for k := n - 1; k >= 0; k-- {
		v := vs[k]
		for j := 0; j < n; j++ {
			var dot float64
			for i := k; i < m; i++ {
				dot += v[i-k] * q.At(i, j)
			}
			dot *= 2
			for i := k; i < m; i++ {
				q.Set(i, j, q.At(i, j)-dot*v[i-k])
			}
		}
	}
	return q, r
}

// RandomOrthonormal draws an n x n orthonormal matrix Haar-uniformly by
// QR-factoring a Gaussian matrix and fixing the sign of R's diagonal.
// It replaces the MATLAB rotation generation in the paper's Appendix A.
func RandomOrthonormal(n int, rng *rand.Rand) *Mat {
	g := New(n, n)
	for i := range g.Data {
		g.Data[i] = rng.NormFloat64()
	}
	q, r := QR(g)
	// Make the distribution Haar: multiply column j by sign(R[j][j]).
	for j := 0; j < n; j++ {
		if r.At(j, j) < 0 {
			for i := 0; i < n; i++ {
				q.Set(i, j, -q.At(i, j))
			}
		}
	}
	return q
}

// OrthonormalityError returns max |QᵀQ - I| for a matrix with orthonormal
// columns; useful in tests.
func OrthonormalityError(q *Mat) float64 {
	qtq := Mul(q.T(), q)
	n := qtq.Rows
	var max float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if d := math.Abs(qtq.At(i, j) - want); d > max {
				max = d
			}
		}
	}
	return max
}
