package matrix

import (
	"fmt"
	"math"
	"math/rand"
)

// OrthogonalIteration computes the k leading eigenpairs of the symmetric
// positive semi-definite matrix a by subspace (orthogonal/simultaneous)
// iteration: repeatedly multiply an orthonormal d×k block by a and
// re-orthonormalize with QR. Cost is O(d²·k) per iteration; convergence
// rate depends on the gap between eigenvalue k and k+1, so it beats the
// Jacobi solver (O(d³) total) only on matrices with decaying spectra —
// which covariance matrices of locally correlated data have (measured:
// ~7× faster for the top 20 of 128 on a geometric spectrum, but slower
// than Jacobi on near-flat spectra; see the package benchmarks).
//
// Convergence is checked on the eigenvalue estimates (Rayleigh quotients);
// tol is relative (default 1e-10 when <= 0), maxIter defaults to 300.
func OrthogonalIteration(a *Mat, k, maxIter int, tol float64, seed int64) ([]float64, *Mat, error) {
	if a.Rows != a.Cols {
		return nil, nil, fmt.Errorf("matrix: OrthogonalIteration requires square matrix, got %dx%d", a.Rows, a.Cols)
	}
	d := a.Rows
	if k <= 0 || k > d {
		return nil, nil, fmt.Errorf("matrix: OrthogonalIteration k=%d out of range (1..%d)", k, d)
	}
	if maxIter <= 0 {
		maxIter = 300
	}
	if tol <= 0 {
		tol = 1e-10
	}

	rng := rand.New(rand.NewSource(seed))
	q := New(d, k)
	for i := range q.Data {
		q.Data[i] = rng.NormFloat64()
	}
	q, _ = QR(q)

	vals := make([]float64, k)
	prev := make([]float64, k)
	for iter := 0; iter < maxIter; iter++ {
		z := Mul(a, q)
		// Rayleigh quotient estimates before re-orthonormalization:
		// λ_j ≈ q_jᵀ a q_j = q_j · z_j.
		for j := 0; j < k; j++ {
			var s float64
			for i := 0; i < d; i++ {
				s += q.At(i, j) * z.At(i, j)
			}
			vals[j] = s
		}
		q, _ = QR(z)

		if iter > 0 {
			converged := true
			for j := 0; j < k; j++ {
				if math.Abs(vals[j]-prev[j]) > tol*(1+math.Abs(vals[j])) {
					converged = false
					break
				}
			}
			if converged {
				break
			}
		}
		copy(prev, vals)
	}

	// The iteration converges to the invariant subspace but individual
	// columns may mix degenerate directions; a final small k×k eigensolve
	// of the projected matrix (qᵀ a q) cleans the pairs up (Rayleigh–Ritz).
	small := Mul(q.T(), Mul(a, q))
	eig, err := SymEigen(small)
	if err != nil {
		return nil, nil, err
	}
	vectors := Mul(q, eig.Vectors)
	return eig.Values, vectors, nil
}
