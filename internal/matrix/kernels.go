package matrix

// Flat-slice query kernels. These are the inner loops of the query hot path
// (candidate evaluation in the extended iDistance, basis projection, residual
// computation); everything else in the package is build-time code.
//
// Every kernel accumulates with a SINGLE accumulator in strict left-to-right
// index order. The Go compiler never reassociates floating-point arithmetic,
// so the 4-way unrolled bodies produce bit-identical results to the naive
// loops they replace — unrolling buys reduced loop overhead and bounds-check
// elimination only, never a different rounding sequence. This is what lets
// the kernelized query path guarantee answers bitwise equal to the serial
// reference while the same kernels also feed build-time model state
// (projected coordinates, radii) without perturbing it.
//
// Each accumulating kernel dispatches on smallLoopMaxLen: at or below it a
// plain stride-1 loop wins (the loop body is fully bounds-check-free once
// the second operand is pinned to len(x), and at the reduced dimensionalities
// the subspace scans run at the unrolled form's per-chunk slice checks cost
// more than the unrolling saves); above it the 4-way unrolled form wins on
// loop overhead. Both forms share the serial accumulation order, so the
// dispatch never changes a result bit. The wide path's two slice re-checks
// per chunk are pinned by the mmdrgate contract manifest: the prove pass
// cannot learn facts about a step-4 induction variable, so those checks are
// the measured-cheapest shape, not an oversight.

// smallLoopMaxLen is the measured crossover between the plain stride-1
// loop and the 4-way unrolled form: at d=8 the plain loop is ~8% faster
// (and check-free); by d=10 the unrolled form wins. Distinct from
// EarlyAbandonMinLen, which gates the abandon *branches*, not the loop
// shape.
const smallLoopMaxLen = 8

// DotUnroll4 returns the inner product of x and y (serial accumulation
// order; 4-way unrolled above smallLoopMaxLen).
//
//mmdr:hotpath
func DotUnroll4(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("matrix: DotUnroll4 length mismatch")
	}
	if len(x) <= smallLoopMaxLen {
		return dotSmall(x, y)
	}
	var s float64
	i := 0
	for ; i+4 <= len(x); i += 4 {
		x4 := x[i : i+4 : i+4]
		y4 := y[i : i+4 : i+4]
		s += x4[0] * y4[0]
		s += x4[1] * y4[1]
		s += x4[2] * y4[2]
		s += x4[3] * y4[3]
	}
	for ; i < len(x); i++ {
		s += x[i] * y[i]
	}
	return s
}

// dotSmall is the short-vector dot kernel: pinning y to len(x) makes every
// access in the range loop provably in bounds, so the body is check-free.
//
//mmdr:hotpath
func dotSmall(x, y []float64) float64 {
	y = y[:len(x)]
	var s float64
	for i := range x {
		s += x[i] * y[i]
	}
	return s
}

// SqDist returns the squared Euclidean distance between x and y (serial
// accumulation order; 4-way unrolled above smallLoopMaxLen).
//
//mmdr:hotpath
func SqDist(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("matrix: SqDist length mismatch")
	}
	if len(x) <= smallLoopMaxLen {
		return sqDistSmall(x, y)
	}
	var s float64
	i := 0
	for ; i+4 <= len(x); i += 4 {
		x4 := x[i : i+4 : i+4]
		y4 := y[i : i+4 : i+4]
		d0 := x4[0] - y4[0]
		s += d0 * d0
		d1 := x4[1] - y4[1]
		s += d1 * d1
		d2 := x4[2] - y4[2]
		s += d2 * d2
		d3 := x4[3] - y4[3]
		s += d3 * d3
	}
	for ; i < len(x); i++ {
		d := x[i] - y[i]
		s += d * d
	}
	return s
}

// sqDistSmall is the short-vector squared-distance kernel (check-free body,
// see dotSmall).
//
//mmdr:hotpath
func sqDistSmall(x, y []float64) float64 {
	y = y[:len(x)]
	var s float64
	for i := range x {
		d := x[i] - y[i]
		s += d * d
	}
	return s
}

// EarlyAbandonMinLen is the vector length below which SqDistEarlyAbandon
// computes the full distance without bound checks: on short vectors (the
// reduced dimensionalities subspace scans run at) the per-block branch
// costs more than the skipped tail could save, and abandoning can only
// ever change a value the caller rejects anyway. Hot loops that know their
// vector length per scan can branch on this themselves and call SqDist
// directly, saving the dispatch call.
const EarlyAbandonMinLen = 16

// SqDistEarlyAbandon computes the squared Euclidean distance between x and
// y, abandoning the scan as soon as the partial sum exceeds bound. Partial
// sums of squares are monotone non-decreasing, so a return value v > bound
// certifies the full squared distance also exceeds bound; a return value
// v <= bound is the exact full squared distance, bit-identical to SqDist
// (the survivors' accumulation sequence is unchanged — the bound check only
// cuts iterations short, it never reorders them). Pass bound = +Inf to
// disable abandoning. Vectors shorter than earlyAbandonMinLen skip the
// bound checks entirely (same contract: the return value is then always
// the exact squared distance).
//
//mmdr:hotpath
func SqDistEarlyAbandon(x, y []float64, bound float64) float64 {
	if len(x) != len(y) {
		panic("matrix: SqDistEarlyAbandon length mismatch")
	}
	if len(x) < EarlyAbandonMinLen {
		return SqDist(x, y)
	}
	var s float64
	i := 0
	for ; i+4 <= len(x); i += 4 {
		x4 := x[i : i+4 : i+4]
		y4 := y[i : i+4 : i+4]
		d0 := x4[0] - y4[0]
		s += d0 * d0
		d1 := x4[1] - y4[1]
		s += d1 * d1
		d2 := x4[2] - y4[2]
		s += d2 * d2
		d3 := x4[3] - y4[3]
		s += d3 * d3
		if s > bound {
			return s
		}
	}
	for ; i < len(x); i++ {
		d := x[i] - y[i]
		s += d * d
	}
	return s
}

// SqDistRowToSel is the multi-query blocked kernel: it evaluates one stored
// row v against a selected subset of queries held in a row-major tile,
// writing squared distances to out. qs is the flat tile (query j occupies
// qs[j*d:(j+1)*d]); sel lists the participating tile rows; bounds[i] is the
// early-abandon bound for sel[i], and out[i] receives its result. The point
// of the shape is memory traffic: v — the streamed side of an annulus scan —
// is loaded once and reused across the whole selection, so a partition scan
// serving a query tile reads each block row once instead of once per query.
//
// Per pair the arithmetic is exactly SqDistEarlyAbandon(q, v, bound): same
// single-accumulator left-to-right order, same abandon contract (a result
// <= bound is the exact squared distance, bit-identical to SqDist; a result
// > bound only certifies exceedance), same EarlyAbandonMinLen cutoff below
// which bound checks are skipped. Batched answers therefore match a
// per-query scan bit for bit.
//
//mmdr:hotpath inner loop of the fused batch annulus scan
func SqDistRowToSel(v, qs []float64, d int, sel []int32, bounds, out []float64) {
	if len(sel) > len(bounds) || len(sel) > len(out) {
		panic("matrix: SqDistRowToSel selection longer than bounds/out")
	}
	if d <= smallLoopMaxLen {
		// Small reduced dimensionalities take the check-free plain-loop
		// kernel directly, with SqDist's length guard hoisted out of the
		// per-pair loop: one branch per streamed row instead of guard +
		// dispatch per (query, row) pair.
		if len(sel) != 0 && len(v) != d {
			panic("matrix: SqDist length mismatch")
		}
		for i, j := range sel {
			q := qs[int(j)*d : int(j)*d+d : int(j)*d+d]
			out[i] = sqDistSmall(q, v)
		}
		return
	}
	if d < EarlyAbandonMinLen {
		for i, j := range sel {
			q := qs[int(j)*d : int(j)*d+d : int(j)*d+d]
			out[i] = SqDist(q, v)
		}
		return
	}
	for i, j := range sel {
		q := qs[int(j)*d : int(j)*d+d : int(j)*d+d]
		out[i] = SqDistEarlyAbandon(q, v, bounds[i])
	}
}

// MatVecRowMajor computes dst = A·x for a row-major rows×cols matrix stored
// flat in a. Each output element is one contiguous dot product (DotUnroll4),
// so the kernel streams both the matrix and the vector — the access pattern
// the transposed projection basis is laid out for. dst must have length
// rows; a must have length rows*cols.
//
//mmdr:hotpath
func MatVecRowMajor(a []float64, rows, cols int, x, dst []float64) {
	if len(a) != rows*cols {
		panic("matrix: MatVecRowMajor matrix size mismatch")
	}
	if len(x) != cols || len(dst) != rows {
		panic("matrix: MatVecRowMajor vector size mismatch")
	}
	for r := 0; r < rows; r++ {
		dst[r] = DotUnroll4(a[r*cols:(r+1)*cols], x)
	}
}

// SqNorm returns the squared Euclidean norm of x (serial accumulation
// order, 4-way unrolled).
//
//mmdr:hotpath
func SqNorm(x []float64) float64 {
	if len(x) <= smallLoopMaxLen {
		var s float64
		for i := range x {
			s += x[i] * x[i]
		}
		return s
	}
	var s float64
	i := 0
	for ; i+4 <= len(x); i += 4 {
		x4 := x[i : i+4 : i+4]
		s += x4[0] * x4[0]
		s += x4[1] * x4[1]
		s += x4[2] * x4[2]
		s += x4[3] * x4[3]
	}
	for ; i < len(x); i++ {
		s += x[i] * x[i]
	}
	return s
}
