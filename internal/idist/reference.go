package idist

import (
	"math"
	"sort"

	"mmdr/internal/index"
	"mmdr/internal/matrix"
)

// This file freezes the pre-kernel query implementation exactly as it shipped
// before the allocation-free rework: per-query state slices are allocated
// fresh, candidates are compared by plain (square-rooted) distance, and
// annulus re-scans nudge their edges by ±1e-15 instead of using half-open
// bounds. It exists for two reasons:
//
//   - Equivalence lockdown: tests assert the kernelized KNN/Range paths
//     return bitwise-identical results (after the final sqrt) on the same
//     index.
//   - Honest baselines: the query benchmark reports the kernel speedup
//     against this implementation measured on the same machine and data.
//
// Do not "fix" or modernize this code; its value is that it does not change.
// Known ulp-edge divergences from the live path (acceptable, by design):
// re-scan epsilons may skip or repeat keys sitting exactly on a scan edge
// (the bug the live path fixes), and a candidate at exactly distance r may be
// classified differently because the live path compares d² ≤ r² while this
// one compares sqrt(d²) ≤ r.

// ReferenceKNN answers a KNN query with the frozen pre-kernel search.
func (idx *Index) ReferenceKNN(q []float64, k int) []index.Neighbor {
	if k <= 0 {
		return nil
	}
	top := index.NewTopK(k)
	states := make([]queryState, len(idx.parts))
	for pi := range idx.parts {
		p := &idx.parts[pi]
		st := &states[pi]
		if p.sub != nil {
			st.proj = p.sub.Project(q)
			st.dist = matrix.Norm2(st.proj)
		} else {
			st.dist = matrix.Dist(q, p.centroid)
		}
		st.scanLo, st.scanHi = math.Inf(1), math.Inf(-1) // nothing scanned
	}

	r := idx.deltaR
	for {
		allDone := true
		for pi := range idx.parts {
			p := &idx.parts[pi]
			st := &states[pi]
			if st.exhausted {
				continue
			}
			lo := st.dist - r
			if lo < 0 {
				lo = 0
			}
			hi := st.dist + r
			if hi > p.maxRadius {
				hi = p.maxRadius
			}
			if lo > hi {
				if st.dist-r > p.maxRadius {
					allDone = false // may reach later
				}
				continue
			}
			base := float64(pi) * idx.c
			if st.scanLo > st.scanHi {
				idx.refScanRange(q, pi, base+lo, base+hi, st, top)
				st.scanLo, st.scanHi = lo, hi
			} else {
				if lo < st.scanLo {
					idx.refScanRange(q, pi, base+lo, base+st.scanLo-1e-15, st, top)
					st.scanLo = lo
				}
				if hi > st.scanHi {
					idx.refScanRange(q, pi, base+st.scanHi+1e-15, base+hi, st, top)
					st.scanHi = hi
				}
			}
			if st.scanLo <= 0 && st.scanHi >= p.maxRadius {
				st.exhausted = true
			} else {
				allDone = false
			}
		}
		if top.Len() >= k && top.Kth() <= r {
			break
		}
		if allDone {
			break
		}
		r += idx.deltaR
	}
	return top.Sorted()
}

// refScanRange is the pre-kernel candidate evaluation: one matrix.Dist (with
// its sqrt) per visited key.
func (idx *Index) refScanRange(q []float64, pi int, lo, hi float64, st *queryState, top *index.TopK) {
	p := &idx.parts[pi]
	idx.tree.RangeAsc(lo, hi, func(_ float64, rid uint32) bool {
		id := int(rid)
		var d float64
		if p.sub != nil {
			d = matrix.Dist(st.proj, p.sub.MemberCoords(int(idx.slotOf[id])))
		} else {
			d = matrix.Dist(idx.ds.Point(id), q)
		}
		if idx.counter != nil {
			idx.counter.CountDistanceOps(1)
		}
		top.Add(id, d)
		return true
	})
}

// ReferenceRange answers a range query with the frozen pre-kernel scan.
func (idx *Index) ReferenceRange(q []float64, r float64) []index.Neighbor {
	var out []index.Neighbor
	for pi := range idx.parts {
		p := &idx.parts[pi]
		var proj []float64
		var dist float64
		if p.sub != nil {
			proj = p.sub.Project(q)
			dist = matrix.Norm2(proj)
		} else {
			dist = matrix.Dist(q, p.centroid)
		}
		lo := dist - r
		if lo < 0 {
			lo = 0
		}
		hi := dist + r
		if hi > p.maxRadius {
			hi = p.maxRadius
		}
		if lo > hi {
			continue // query sphere cannot reach this partition
		}
		base := float64(pi) * idx.c
		idx.tree.RangeAsc(base+lo, base+hi, func(_ float64, rid uint32) bool {
			id := int(rid)
			var d float64
			if p.sub != nil {
				d = matrix.Dist(proj, p.sub.MemberCoords(int(idx.slotOf[id])))
			} else {
				d = matrix.Dist(idx.ds.Point(id), q)
			}
			if idx.counter != nil {
				idx.counter.CountDistanceOps(1)
			}
			if d <= r {
				out = append(out, index.Neighbor{ID: id, Dist: d})
			}
			return true
		})
	}
	sort.Slice(out, func(a, b int) bool {
		//mmdr:ignore floatcmp frozen reference orders by exact (Dist, ID); ties must break identically to the kernelized path for the bitwise equivalence lockdown
		if out[a].Dist != out[b].Dist {
			return out[a].Dist < out[b].Dist
		}
		return out[a].ID < out[b].ID
	})
	return out
}
