package idist

import (
	"math/rand"
	"testing"

	"mmdr/internal/core"
	"mmdr/internal/datagen"
	"mmdr/internal/dataset"
)

// benchIndex builds a mid-size fixture shared by the kernel benchmarks.
func benchIndex(b *testing.B) (*Index, *dataset.Dataset) {
	b.Helper()
	cfg := datagen.CorrelatedConfig{N: 5000, Dim: 64, NumClusters: 4, SDim: 3, VarRatio: 20, Seed: 100}
	ds, _, err := cfg.Generate()
	if err != nil {
		b.Fatal(err)
	}
	datagen.Normalize(ds)
	red, err := core.New(core.Params{Seed: 100}).Reduce(ds)
	if err != nil {
		b.Fatal(err)
	}
	idx, err := Build(ds, red, Options{})
	if err != nil {
		b.Fatal(err)
	}
	return idx, ds
}

// BenchmarkKNNKernels races the kernelized KNN path against the frozen
// pre-kernel reference on the same index — the per-query view of the
// BENCH_query.json numbers.
func BenchmarkKNNKernels(b *testing.B) {
	idx, ds := benchIndex(b)
	queries := datagen.SampleQueries(ds, 64, 0.02, 101)
	b.Run("kernel", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			idx.KNN(queries.Point(i%queries.N), 10)
		}
	})
	b.Run("reference", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			idx.ReferenceKNN(queries.Point(i%queries.N), 10)
		}
	})
}

// BenchmarkInsert measures dynamic insertion, whose subspace selection now
// runs through the cached Cholesky factor of CovInv and the fused
// projection+residual kernel.
func BenchmarkInsert(b *testing.B) {
	idx, ds := benchIndex(b)
	rng := rand.New(rand.NewSource(7))
	points := make([][]float64, 1024)
	for i := range points {
		base := ds.Point(rng.Intn(ds.N))
		p := make([]float64, ds.Dim)
		for j, v := range base {
			p[j] = v + 0.01*rng.NormFloat64()
		}
		points[i] = p
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := idx.Insert(points[i%len(points)]); err != nil {
			b.Fatal(err)
		}
	}
}
