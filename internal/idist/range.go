package idist

import (
	"sort"

	"mmdr/internal/index"
	"mmdr/internal/matrix"
)

// Range returns every point whose distance to q (in the partition metric:
// reduced coordinates for subspace members, original space for outliers) is
// at most r, sorted ascending by distance. Range queries are the other
// query class iDistance supports natively: the query sphere maps to one key
// annulus per partition, no iteration required.
func (idx *Index) Range(q []float64, r float64) []index.Neighbor {
	var out []index.Neighbor
	for pi := range idx.parts {
		p := &idx.parts[pi]
		var proj []float64
		var dist float64
		if p.sub != nil {
			proj = p.sub.Project(q)
			dist = matrix.Norm2(proj)
		} else {
			dist = matrix.Dist(q, p.centroid)
		}
		lo := dist - r
		if lo < 0 {
			lo = 0
		}
		hi := dist + r
		if hi > p.maxRadius {
			hi = p.maxRadius
		}
		if lo > hi {
			continue // query sphere cannot reach this partition
		}
		base := float64(pi) * idx.c
		idx.tree.RangeAsc(base+lo, base+hi, func(_ float64, rid uint32) bool {
			id := int(rid)
			var d float64
			if p.sub != nil {
				d = matrix.Dist(proj, p.sub.MemberCoords(int(idx.slotOf[id])))
			} else {
				d = matrix.Dist(idx.ds.Point(id), q)
			}
			if idx.counter != nil {
				idx.counter.CountDistanceOps(1)
			}
			if d <= r {
				out = append(out, index.Neighbor{ID: id, Dist: d})
			}
			return true
		})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Dist != out[b].Dist {
			return out[a].Dist < out[b].Dist
		}
		return out[a].ID < out[b].ID
	})
	return out
}

// Delete removes point id from the index. The B⁺-tree entry is deleted;
// the subspace's member slot is left in place (tombstoned) so the reduced
// coordinates of other members keep their offsets. It reports whether the
// point was present.
func (idx *Index) Delete(id int) bool {
	if id < 0 || id >= len(idx.partOf) || idx.partOf[id] < 0 {
		return false
	}
	pi := int(idx.partOf[id])
	p := &idx.parts[pi]
	var key float64
	if p.sub != nil {
		key = float64(pi)*idx.c + matrix.Norm2(p.sub.MemberCoords(int(idx.slotOf[id])))
	} else {
		key = float64(pi)*idx.c + matrix.Dist(idx.ds.Point(id), p.centroid)
	}
	if !idx.tree.Delete(key, uint32(id)) {
		return false
	}
	idx.partOf[id] = -1
	idx.slotOf[id] = -1
	return true
}
