package idist

import (
	"math"
	"time"

	"mmdr/internal/index"
	"mmdr/internal/matrix"
)

// Range returns every point whose distance to q (in the partition metric:
// reduced coordinates for subspace members, original space for outliers) is
// at most r, sorted ascending by distance. Range queries are the other
// query class iDistance supports natively: the query sphere maps to one key
// annulus per partition, no iteration required.
//
//mmdr:hotpath budget pinned by alloc_test: 1 alloc non-empty, 0 empty
func (idx *Index) Range(q []float64, r float64) []index.Neighbor {
	sc := idx.getScratch()
	defer idx.putScratch(sc)
	if idx.ops == nil {
		return idx.rangeInto(sc, q, r)
	}
	start := time.Now()
	out := idx.rangeInto(sc, q, r)
	idx.ops.rng.Record(time.Since(start))
	return out
}

// rangeInto runs the range scan using sc's buffers. Candidates are filtered
// and accumulated in SQUARED distance (d² ≤ r² selects the same ball as
// d ≤ r) with the single sqrt per result taken when materializing the
// returned slice — the only allocation of a non-empty query.
//
//mmdr:hotpath
func (idx *Index) rangeInto(sc *queryScratch, q []float64, r float64) []index.Neighbor {
	sc.q = q
	sc.r2 = r * r
	sc.rangeBuf = sc.rangeBuf[:0]
	for pi := range idx.parts {
		p := &idx.parts[pi]
		st := &sc.states[pi]
		var dist float64
		if p.sub != nil {
			p.sub.ProjectInto(q, st.proj)
			dist = math.Sqrt(matrix.SqNorm(st.proj))
		} else {
			dist = matrix.Dist(q, p.centroid)
		}
		lo := dist - r
		if lo < 0 {
			lo = 0
		}
		hi := dist + r
		if hi > p.maxRadius {
			hi = p.maxRadius
		}
		if lo > hi {
			continue // query sphere cannot reach this partition
		}
		base := float64(pi) * idx.c
		sc.beginScan(pi)
		if idx.layout != nil {
			idx.scanBlockRange(sc, pi, base+lo, base+hi, false, false)
		} else {
			idx.tree.RangeBetween(base+lo, base+hi, false, false, sc.visitRange)
		}
	}
	if len(sc.rangeBuf) == 0 {
		return nil
	}
	// Squared distances sort in the same order as distances; sorting before
	// the sqrt keeps the comparison cheap and the result order identical.
	index.SortNeighbors(sc.rangeBuf)
	out := make([]index.Neighbor, len(sc.rangeBuf))
	copy(out, sc.rangeBuf)
	for i := range out {
		out[i].Dist = math.Sqrt(out[i].Dist)
	}
	return out
}

// Delete removes point id from the index. The B⁺-tree entry is deleted;
// the subspace's member slot is left in place (tombstoned) so the reduced
// coordinates of other members keep their offsets. It reports whether the
// point was present.
func (idx *Index) Delete(id int) bool {
	if idx.ops != nil {
		start := time.Now()
		ok := idx.delete(id)
		idx.ops.del.Record(time.Since(start))
		if ok {
			idx.ops.points.Add(-1)
		}
		return ok
	}
	return idx.delete(id)
}

func (idx *Index) delete(id int) bool {
	if id < 0 || id >= len(idx.partOf) || idx.partOf[id] < 0 {
		return false
	}
	pi := int(idx.partOf[id])
	p := &idx.parts[pi]
	var key float64
	if p.sub != nil {
		key = float64(pi)*idx.c + matrix.Norm2(p.sub.MemberCoords(int(idx.slotOf[id])))
	} else {
		key = float64(pi)*idx.c + matrix.Dist(idx.ds.Point(id), p.centroid)
	}
	if !idx.tree.Delete(key, uint32(id)) {
		return false
	}
	// The SoA layout mirrors the tree's leaf level; a structural change
	// invalidates it (queries fall back to the per-entry tree scan until
	// RebuildLayout).
	idx.layout = nil
	idx.partOf[id] = -1
	idx.slotOf[id] = -1
	return true
}
