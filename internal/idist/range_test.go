package idist

import (
	"math"
	"math/rand"
	"testing"

	"mmdr/internal/index"
)

// bruteRange computes the reduced-metric range answer by filtering a full
// sequential scan.
func bruteRange(scan *index.SeqScan, q []float64, r float64, n int) []index.Neighbor {
	all := scan.KNN(q, n)
	var out []index.Neighbor
	for _, nb := range all {
		if nb.Dist <= r {
			out = append(out, nb)
		}
	}
	return out
}

func TestRangeMatchesScan(t *testing.T) {
	ds, red := testSetup(t, 700, 10, 3, 141)
	idx, err := Build(ds, red, Options{})
	if err != nil {
		t.Fatal(err)
	}
	scan := index.NewSeqScan(ds, red, nil)
	rng := rand.New(rand.NewSource(142))
	for trial := 0; trial < 15; trial++ {
		q := ds.Point(rng.Intn(ds.N))
		r := 0.02 + rng.Float64()*0.2
		got := idx.Range(q, r)
		want := bruteRange(scan, q, r, ds.N)
		if len(got) != len(want) {
			t.Fatalf("trial %d (r=%v): %d results, scan found %d", trial, r, len(got), len(want))
		}
		for i := range want {
			if math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
				t.Fatalf("trial %d rank %d: %v vs %v", trial, i, got[i].Dist, want[i].Dist)
			}
			if got[i].Dist > r {
				t.Fatalf("result outside radius: %v > %v", got[i].Dist, r)
			}
		}
	}
}

func TestRangeZeroRadius(t *testing.T) {
	ds, red := testSetup(t, 300, 8, 2, 143)
	idx, err := Build(ds, red, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Radius 0 at a data point returns at least that point.
	got := idx.Range(ds.Point(5), 0)
	found := false
	for _, nb := range got {
		if nb.ID == 5 {
			found = true
		}
		if nb.Dist != 0 {
			t.Fatalf("radius-0 result with dist %v", nb.Dist)
		}
	}
	if !found {
		t.Fatal("point not in its own radius-0 range")
	}
}

func TestRangeFarQueryEmpty(t *testing.T) {
	ds, red := testSetup(t, 300, 8, 2, 144)
	idx, err := Build(ds, red, Options{})
	if err != nil {
		t.Fatal(err)
	}
	q := make([]float64, ds.Dim)
	for i := range q {
		q[i] = 100
	}
	if got := idx.Range(q, 0.01); len(got) != 0 {
		t.Fatalf("far query returned %d results", len(got))
	}
}

func TestDeleteRemovesFromResults(t *testing.T) {
	ds, red := testSetup(t, 400, 8, 2, 145)
	idx, err := Build(ds, red, Options{})
	if err != nil {
		t.Fatal(err)
	}
	q := ds.Point(7)
	before := idx.KNN(q, 1)
	if before[0].ID != 7 {
		t.Fatalf("setup: 1-NN of point 7 is %d", before[0].ID)
	}
	if !idx.Delete(7) {
		t.Fatal("Delete(7) reported not found")
	}
	after := idx.KNN(q, 1)
	if len(after) == 1 && after[0].ID == 7 {
		t.Fatal("deleted point still returned")
	}
	// Double delete is a no-op.
	if idx.Delete(7) {
		t.Fatal("second Delete(7) should report false")
	}
	// Out-of-range IDs are rejected.
	if idx.Delete(-1) || idx.Delete(ds.N+10) {
		t.Fatal("out-of-range delete should report false")
	}
	if idx.Tree().Len() != ds.N-1 {
		t.Fatalf("tree len %d, want %d", idx.Tree().Len(), ds.N-1)
	}
}

func TestDeleteThenInsert(t *testing.T) {
	ds, red := testSetup(t, 400, 8, 2, 146)
	idx, err := Build(ds, red, Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := make([]float64, ds.Dim)
	copy(p, ds.Point(3))
	if !idx.Delete(3) {
		t.Fatal("delete failed")
	}
	id, err := idx.Insert(p)
	if err != nil {
		t.Fatal(err)
	}
	res := idx.KNN(p, 1)
	if res[0].ID != id || res[0].Dist > 1e-9 {
		t.Fatalf("reinserted point not 1-NN: %+v", res[0])
	}
}
