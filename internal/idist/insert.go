package idist

import (
	"fmt"
	"math"
	"time"

	"mmdr/internal/matrix"
)

// insertBeta is the projection-distance bound a new point must satisfy to
// join a subspace (the reduction's β); points no subspace represents well
// go to the outlier partition. Carried on the index via Options in the
// future if tuning is needed; the paper's Table 1 default is used here.
const insertBeta = 0.1

// Insert adds a new point to the index (extended iDistance dynamic
// insertion, §5). The subspace is chosen with the auxiliary shape array the
// index keeps per cluster: among subspaces whose Mahalanobis distance to
// the point is within the cluster's Mahalanobis radius (with 20% slack) and
// whose projection distance is within β, the closest (normalized by
// radius) wins. If none qualifies the point joins the outlier partition,
// which is created on demand. It returns the point's new row ID.
//
//mmdr:hotpath
func (idx *Index) Insert(p []float64) (int, error) {
	if idx.ops != nil {
		start := time.Now()
		id, err := idx.insert(p)
		idx.ops.ins.Record(time.Since(start))
		if err == nil {
			idx.ops.points.Add(1)
			idx.ops.partitions.Set(int64(len(idx.parts)))
		}
		return id, err
	}
	return idx.insert(p)
}

//mmdr:hotpath
func (idx *Index) insert(p []float64) (int, error) {
	if len(p) != idx.ds.Dim {
		return 0, insertDimError(len(p), idx.ds.Dim)
	}

	if cap(idx.insDiff) < idx.ds.Dim {
		idx.insDiff = make([]float64, idx.ds.Dim)
	}
	diff := idx.insDiff[:idx.ds.Dim]

	bestPart := -1
	bestScore := math.Inf(1)
	for pi := range idx.parts {
		part := &idx.parts[pi]
		s := part.sub
		if s == nil || s.CovInv == nil {
			continue
		}
		// MahaSq evaluates the quadratic form through the cached Cholesky
		// factor of CovInv when the subspace has one (half the multiplies of
		// the full form), falling back to the dense form otherwise.
		maha := s.MahaSq(p, diff)
		if s.MahaRadius > 0 && maha > s.MahaRadius*1.2 {
			continue
		}
		if cap(idx.insProj) < s.Dr {
			idx.insProj = make([]float64, s.Dr)
		}
		if math.Sqrt(s.ProjectResidualInto(p, idx.insProj[:s.Dr])) > insertBeta {
			continue
		}
		score := maha
		if s.MahaRadius > 0 {
			score = maha / s.MahaRadius
		}
		if score < bestScore {
			bestScore, bestPart = score, pi
		}
	}

	// Register the point in the dataset. The tree entry added below makes
	// the SoA layout stale either way, so drop it up front (queries fall
	// back to the per-entry tree scan until RebuildLayout).
	idx.layout = nil
	id := idx.ds.N
	idx.ds.Append(p)
	idx.partOf = append(idx.partOf, -1)
	idx.slotOf = append(idx.slotOf, -1)

	var insDist float64
	if bestPart >= 0 {
		// A key must stay inside its partition's [i·c, (i+1)·c) range.
		s := idx.parts[bestPart].sub
		s.ProjectInto(p, idx.insProj[:s.Dr])
		insDist = math.Sqrt(matrix.SqNorm(idx.insProj[:s.Dr]))
		if insDist >= idx.c {
			bestPart = -1
		}
	}

	if bestPart >= 0 {
		part := &idx.parts[bestPart]
		s := part.sub
		slot := len(s.Members)
		s.Members = append(s.Members, id)
		s.Coords = append(s.Coords, idx.insProj[:s.Dr]...)
		dist := insDist
		if dist > s.MaxRadius {
			s.MaxRadius = dist
			part.maxRadius = dist
		}
		idx.partOf[id] = int32(bestPart)
		idx.slotOf[id] = int32(slot)
		idx.tree.Insert(float64(bestPart)*idx.c+dist, uint32(id))
		return id, nil
	}

	// Outlier partition, created on first demand.
	oi := idx.outlierPartition(p)
	part := &idx.parts[oi]
	dist := matrix.Dist(p, part.centroid)
	if dist > part.maxRadius {
		part.maxRadius = dist
	}
	idx.partOf[id] = int32(oi)
	idx.slotOf[id] = -1
	idx.tree.Insert(float64(oi)*idx.c+dist, uint32(id))
	idx.red.Outliers = append(idx.red.Outliers, id)
	return id, nil
}

// insertDimError builds the rejected-input error off the insert hot path.
// fmt.Errorf boxes its arguments into interfaces, which the escape analyzer
// charges to the enclosing function whether or not the branch is taken;
// keeping the construction in a cold noinline helper keeps insert itself
// heap-allocation-free under the mmdrgate contract.
//
//go:noinline
func insertDimError(got, want int) error {
	return fmt.Errorf("idist: Insert dimension %d, want %d", got, want)
}

// outlierPartition returns the index of the outlier partition, creating one
// anchored at p when the build produced none.
func (idx *Index) outlierPartition(p []float64) int {
	for pi := range idx.parts {
		if idx.parts[pi].sub == nil {
			return pi
		}
	}
	centroid := make([]float64, len(p))
	copy(centroid, p)
	idx.parts = append(idx.parts, partition{centroid: centroid})
	return len(idx.parts) - 1
}
