package idist

import (
	"mmdr/internal/index"
	"mmdr/internal/matrix"
)

// Solo block scans over the SoA layout. The fused batch path (fused.go)
// converts annulus edges to row intervals with binary searches over the
// layout's key array; these helpers bring the same mechanism to the
// single-query paths — KNN, KNNApprox, Range — which previously still
// walked the tree cursor leaf by leaf even when the layout was
// materialized. The per-candidate arithmetic (kernel choice, early-abandon
// bounds, accumulation order) is identical to the tree-visit callbacks, so
// answers are bit-identical; only the traversal changes.
//
// Cost accounting matches the fused kernel path: each binary-search probe
// charges one key comparison (the descent it replaces), each evaluated row
// one DistanceOp, and each leaf the interval spans one page read + node
// access per scan.

// rowBounds converts the key annulus [lo, hi] (edges excluded per the
// flags) into the half-open row interval [a, b) of partition pi's key span.
// The bound flags map exactly to the btree's lowerBound/upperBound entry
// sets: an inclusive low edge is the first key >= lo, an exclusive low edge
// the first key > lo, and symmetrically for the high edge.
//
//mmdr:hotpath
func (idx *Index) rowBounds(keys []float64, lo, hi float64, exLo, exHi bool) (int, int) {
	a := idx.searchKeys(keys, lo, exLo)
	b := a + idx.searchKeys(keys[a:], hi, !exHi)
	return a, b
}

// chargeLeafSpan counts each leaf the row interval [a, b) of partition pi
// touches, once per scan — the physical I/O of one contiguous block pass.
//
//mmdr:hotpath
func (idx *Index) chargeLeafSpan(ps, a, b int) int {
	if a >= b {
		return 0
	}
	lay := idx.layout
	leaves := int(lay.leafOf[ps+b-1]-lay.leafOf[ps+a]) + 1
	if idx.counter != nil {
		idx.counter.CountPageReads(int64(leaves))
		idx.counter.CountNodeAccesses(int64(leaves))
	}
	return leaves
}

// scanBlockKNN evaluates the annulus rows of partition pi against the
// running top-k, streaming vectors from the partition's row-major block.
// Row order is ascending global position — the order the tree cursor visits
// the same keys — and the per-candidate arithmetic matches knnVisit, so the
// heap evolves identically to the tree path. Returns the leaves spanned.
//
//mmdr:hotpath innermost solo KNN scan over the SoA layout
func (idx *Index) scanBlockKNN(sc *queryScratch, pi int, lo, hi float64, exLo, exHi bool) int {
	lay := idx.layout
	ps, pe := lay.partStart[pi], lay.partStart[pi+1]
	a, b := idx.rowBounds(lay.keys[ps:pe], lo, hi, exLo, exHi)
	if a >= b {
		return 0
	}
	d := lay.dims[pi]
	block := lay.vecs[pi]
	rids := lay.rids[ps:pe]
	x := sc.x
	top := sc.top
	row := a * d
	if sc.abandon {
		for p := a; p < b; p++ {
			v := block[row : row+d : row+d]
			row += d
			top.Add(int(rids[p]), matrix.SqDistEarlyAbandon(x, v, top.Kth()))
		}
	} else {
		for p := a; p < b; p++ {
			v := block[row : row+d : row+d]
			row += d
			top.Add(int(rids[p]), matrix.SqDist(x, v))
		}
	}
	if idx.counter != nil {
		idx.counter.CountDistanceOps(int64(b - a))
	}
	sc.cand += b - a
	return idx.chargeLeafSpan(ps, a, b)
}

// scanBlockRange is scanBlockKNN's range counterpart: the squared radius
// bounds the inner loop and filters accepted candidates into the scratch's
// range buffer, matching rangeVisit's arithmetic.
//
//mmdr:hotpath innermost solo range scan over the SoA layout
func (idx *Index) scanBlockRange(sc *queryScratch, pi int, lo, hi float64, exLo, exHi bool) int {
	lay := idx.layout
	ps, pe := lay.partStart[pi], lay.partStart[pi+1]
	a, b := idx.rowBounds(lay.keys[ps:pe], lo, hi, exLo, exHi)
	if a >= b {
		return 0
	}
	d := lay.dims[pi]
	block := lay.vecs[pi]
	rids := lay.rids[ps:pe]
	x := sc.x
	r2 := sc.r2
	row := a * d
	for p := a; p < b; p++ {
		v := block[row : row+d : row+d]
		row += d
		var dSq float64
		if sc.abandon {
			dSq = matrix.SqDistEarlyAbandon(x, v, r2)
		} else {
			dSq = matrix.SqDist(x, v)
		}
		if dSq <= r2 {
			sc.rangeBuf = append(sc.rangeBuf, index.Neighbor{ID: int(rids[p]), Dist: dSq})
		}
	}
	if idx.counter != nil {
		idx.counter.CountDistanceOps(int64(b - a))
	}
	sc.cand += b - a
	return idx.chargeLeafSpan(ps, a, b)
}
