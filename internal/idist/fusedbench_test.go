package idist

import (
	"sync"
	"testing"

	"mmdr/internal/core"
	"mmdr/internal/datagen"
	"mmdr/internal/dataset"
	"mmdr/internal/reduction"
)

// Benchmarks racing the fused batch engine against the per-query path on
// the same index — the single-core value of batching. Paper-dimensionality
// data (d=64) at a size that keeps fixture construction fast; run with
// -bench over internal/idist. BENCH_query.json carries the full paper-scale
// (n=100k) numbers.

var (
	fbOnce    sync.Once
	fbIdx     *Index
	fbDS      *dataset.Dataset
	fbRed     *reduction.Result
	fbQueries [][]float64
	fbErr     error
)

func fusedBenchSetup() error {
	fbOnce.Do(func() {
		cfg := datagen.CorrelatedConfig{N: 20000, Dim: 64, NumClusters: 5, SDim: 3, VarRatio: 25, Seed: 11}
		ds, _, err := cfg.Generate()
		if err != nil {
			fbErr = err
			return
		}
		datagen.Normalize(ds)
		red, err := core.New(core.Params{Seed: 11}).Reduce(ds)
		if err != nil {
			fbErr = err
			return
		}
		idx, err := Build(ds, red, Options{})
		if err != nil {
			fbErr = err
			return
		}
		fbIdx = idx
		fbDS, fbRed = ds, red
		fbQueries = make([][]float64, 64)
		for i := range fbQueries {
			fbQueries[i] = ds.Point((i * 197) % ds.N)
		}
	})
	return fbErr
}

func BenchmarkKNNPerQuery(b *testing.B) {
	if err := fusedBenchSetup(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range fbQueries {
			fbIdx.KNN(q, 10)
		}
	}
}

func BenchmarkBatchKNNFused(b *testing.B) {
	if err := fusedBenchSetup(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fbIdx.BatchKNN(fbQueries, 10, 1)
	}
}
