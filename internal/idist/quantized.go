package idist

import (
	"errors"
	"math"
	"time"

	"mmdr/internal/index"
	"mmdr/internal/matrix"
)

// ErrNoQuantizer is returned by the quantized entry points when no trained
// quantizer is attached (SetQuantizer / Options.Quant).
var ErrNoQuantizer = errors.New("idist: no quantizer attached (SetQuantizer or Options.Quant)")

// Quantized KNN: the same iterative radius-enlargement search as knnInto —
// identical annulus geometry, identical key pruning (keys are exact
// regardless of quantization) — but candidate rows are evaluated by their
// ADC estimate (m table loads per row, see matrix.ADCSum) instead of a
// d-dimensional exact distance, and the candidates accumulate in a flat
// reservoir (see quantReservoir) targeting `budget` entries instead of k.
// When the budget-th estimate falls inside the search sphere or the scan
// quota is spent the loop stops, and the surviving candidates are re-ranked
// with the exact allocation-free kernels over the layout's vector blocks;
// the best k of the re-rank are the answer.
//
// The budget is the recall knob: it sizes the candidate reservoir AND
// bounds the scan itself through the quota below, so the candidate set
// grows monotonically with it, reaching the full scan set — and therefore
// the exact answer — when budget >= n. Everything on the path is
// deterministic: estimates are exact sums over trained tables, row order is
// ascending global position, and the early-abandon bound only ever rejects
// rows the reservoir would reject anyway.

// quantScanFactor bounds the quantized scan: the search stops at the end of
// any radius round that has evaluated at least budget*quantScanFactor rows,
// even before the budget-th estimate falls inside the search sphere. The
// exactness proof the exact path runs to completion forces it over every
// annulus row; in the already-reduced space an ADC estimate costs about as
// much as an exact low-dimensional SqDist, so without the quota the
// quantized path would scan the same rows at the same per-row price and
// could never win. The quota is what makes the budget a genuine
// throughput knob: candidate quality degrades gracefully (the scanned
// prefix always covers the exact sphere of the reached radius) and the
// quota is checked at partition boundaries, so the scanned set is identical
// in the solo and fused paths. With budget >= n the quota can only bind
// once every row is scanned, preserving the bitwise-exact degenerate point.
// The value is tuned at paper scale (n=100k, d=64): budget=128 lands at
// recall@10 ~0.97 at ~2.5x the exact fused batch throughput.
const quantScanFactor = 32

// quantDeltaDiv, quantStepRatio and quantStepCap shape the radius schedule
// of the quantized search: the first round grows the annulus by
// deltaR/quantDeltaDiv, and the step then grows by quantStepRatio each
// round up to quantStepCap*deltaR. At the exact path's step a single round
// already scans most of the annulus rows the full proof would, so a
// round-boundary quota would never bind; the geometric ramp keeps early
// rounds small enough that the quota cuts small-budget scans close to
// budget*quantScanFactor rows while adding only O(log quantDeltaDiv)
// rounds of bookkeeping for large budgets. The schedule is fixed
// (independent of budget and of the data seen), so the scanned set stays
// monotone in the budget and identical between the solo and fused paths.
const (
	quantDeltaDiv  = 16.0
	quantStepRatio = 1.5
	quantStepCap   = 0.5
)

// quantScratch bundles the per-query state of the quantized path: the
// per-partition search states shared with the exact path, one lazily built
// ADC table per partition, and the two accumulators (estimate reservoir
// keyed by global layout position, exact re-rank heap keyed by record ID).
// Pooled on the index so a quantized query allocates only its result slice.
type quantScratch struct {
	idx     *Index
	states  []queryState
	projBuf []float64

	est *quantReservoir // ADC estimates, IDs are global layout positions
	top *index.TopK     // exact re-rank accumulator, IDs are record IDs

	tables []float64 // per-partition ADC tables, carved at tabOff
	tabOff []int     // len nParts+1; equal offsets = partition has no codebook
	built  []bool    // table built for this query yet

	scanned int // rows evaluated so far, against the scan quota

	q []float64 // original-space query (outlier partitions)
}

// getQuantScratch returns a pooled, correctly sized quantized scratch. Pair
// with putQuantScratch.
func (idx *Index) getQuantScratch() *quantScratch {
	qs, _ := idx.quantPool.Get().(*quantScratch)
	if qs == nil {
		qs = &quantScratch{idx: idx, est: new(quantReservoir), top: index.NewTopK(0)}
	}
	qs.ensure()
	return qs
}

// putQuantScratch returns a scratch to the pool, dropping query references.
func (idx *Index) putQuantScratch(qs *quantScratch) {
	qs.q = nil
	idx.quantPool.Put(qs)
}

// ensure sizes the per-partition state, projection views and ADC table
// arena for the index's current partitions and codebooks.
func (qs *quantScratch) ensure() {
	idx := qs.idx
	n := len(idx.parts)
	if cap(qs.states) < n {
		qs.states = make([]queryState, n)
	}
	qs.states = qs.states[:n]
	sumDr := 0
	for pi := range idx.parts {
		if s := idx.parts[pi].sub; s != nil {
			sumDr += s.Dr
		}
	}
	if cap(qs.projBuf) < sumDr {
		qs.projBuf = make([]float64, sumDr)
	}
	off := 0
	for pi := range idx.parts {
		st := &qs.states[pi]
		if s := idx.parts[pi].sub; s != nil {
			st.proj = qs.projBuf[off : off+s.Dr]
			off += s.Dr
		} else {
			st.proj = nil
		}
	}
	if cap(qs.tabOff) < n+1 {
		qs.tabOff = make([]int, n+1)
		qs.built = make([]bool, n)
	}
	qs.tabOff = qs.tabOff[:n+1]
	qs.built = qs.built[:n]
	tab := 0
	set := idx.quant
	for pi := 0; pi < n; pi++ {
		qs.tabOff[pi] = tab
		if set != nil && pi < len(set.Books) && set.Books[pi] != nil {
			tab += set.Books[pi].TableLen()
		}
	}
	qs.tabOff[n] = tab
	if cap(qs.tables) < tab {
		qs.tables = make([]float64, tab)
	}
	qs.tables = qs.tables[:tab]
}

// KNNQuantized answers a KNN query through the quantized scan path: ADC
// estimates select the best ~budget candidates (at most 2*budget-1; budget
// < k is raised to k) from a scan capped at budget*quantScanFactor rows,
// and the candidates are re-ranked exactly. Requires an attached quantizer
// (SetQuantizer / Options.Quant); with the layout dropped by a dynamic
// Insert/Delete the search transparently falls back to the exact path
// (codes live in the layout), so callers never observe missing answers
// mid-update — call RebuildLayout to restore the fast path.
//
//mmdr:hotpath budget pinned by alloc_test: 1 alloc (the returned slice)
func (idx *Index) KNNQuantized(q []float64, k, budget int) ([]index.Neighbor, error) {
	if idx.quant == nil {
		return nil, ErrNoQuantizer
	}
	if k <= 0 {
		return nil, nil
	}
	if idx.layout == nil || idx.layout.codes == nil {
		return idx.KNN(q, k), nil
	}
	if budget < k {
		budget = k
	}
	if idx.ops == nil {
		return idx.knnQuantized(q, k, budget), nil
	}
	start := time.Now()
	out := idx.knnQuantized(q, k, budget)
	idx.ops.quantKNN.Record(time.Since(start))
	return out, nil
}

//mmdr:hotpath
func (idx *Index) knnQuantized(q []float64, k, budget int) []index.Neighbor {
	qs := idx.getQuantScratch()
	defer idx.putQuantScratch(qs)
	return idx.knnQuantizedInto(qs, q, k, budget)
}

// knnQuantizedInto runs the quantized radius-enlargement search using qs's
// buffers. Structure mirrors knnInto; see the file comment for the
// estimate/re-rank split.
//
//mmdr:hotpath
func (idx *Index) knnQuantizedInto(qs *quantScratch, q []float64, k, budget int) []index.Neighbor {
	// Clamp the reservoir's compaction target to the row count: a
	// budget >= n reservoir then never fills, its bound stays +Inf, and
	// every scanned row is kept — the bitwise-exact degenerate point.
	resK := budget
	if nRows := idx.layout.partStart[len(idx.parts)]; resK > nRows {
		resK = nRows
	}
	qs.est.Reset(resK)
	qs.q = q
	qs.scanned = 0
	quota := budget * quantScanFactor
	if quota/quantScanFactor != budget { // overflow: quota can never bind
		quota = int(^uint(0) >> 1)
	}
	states := qs.states
	for pi := range idx.parts {
		p := &idx.parts[pi]
		st := &states[pi]
		if p.sub != nil {
			p.sub.ProjectInto(q, st.proj)
			st.dist = math.Sqrt(matrix.SqNorm(st.proj))
		} else {
			st.dist = matrix.Dist(q, p.centroid)
		}
		st.scanLo, st.scanHi = math.Inf(1), math.Inf(-1)
		st.exhausted = false
		qs.built[pi] = false
	}

	step := idx.deltaR / quantDeltaDiv
	r := step
	for {
		allDone := true
		for pi := range idx.parts {
			// Partition-boundary quota check: the fused path walks partitions
			// in the same ascending order with the same per-partition row
			// counts, so cutting here keeps the scanned sets bitwise equal
			// while bounding the quota overshoot to one partition's annulus
			// increment instead of a whole round's.
			if qs.scanned >= quota {
				break
			}
			p := &idx.parts[pi]
			st := &states[pi]
			if st.exhausted {
				continue
			}
			lo := st.dist - r
			if lo < 0 {
				lo = 0
			}
			hi := st.dist + r
			if hi > p.maxRadius {
				hi = p.maxRadius
			}
			if lo > hi {
				if st.dist-r > p.maxRadius {
					allDone = false
				}
				continue
			}
			base := float64(pi) * idx.c
			if st.scanLo > st.scanHi {
				idx.quantScanRange(qs, pi, base+lo, base+hi, false, false)
				st.scanLo, st.scanHi = lo, hi
			} else {
				if lo < st.scanLo {
					idx.quantScanRange(qs, pi, base+lo, base+st.scanLo, false, true)
					st.scanLo = lo
				}
				if hi > st.scanHi {
					idx.quantScanRange(qs, pi, base+st.scanHi, base+hi, true, false)
					st.scanHi = hi
				}
			}
			if st.scanLo <= 0 && st.scanHi >= p.maxRadius {
				st.exhausted = true
			} else {
				allDone = false
			}
		}
		// Stop when the budget-th ESTIMATE is within the sphere (every row
		// whose estimate could displace a kept candidate has been seen) or
		// when the scan quota is spent — whichever comes first. Larger
		// budgets scan strictly more rows under both rules — the recall
		// knob — and an unbounded budget degenerates to the full scan.
		if qs.est.Len() >= budget && qs.est.Kth() <= r*r {
			break
		}
		if qs.scanned >= quota {
			break
		}
		if allDone {
			break
		}
		if step *= quantStepRatio; step > idx.deltaR*quantStepCap {
			step = idx.deltaR * quantStepCap
		}
		r += step
	}
	return idx.rerank(qs.est.Items(), states, q, k, qs.top)
}

// quantScanRange scans the annulus rows of partition pi, adding each row's
// ADC estimate (keyed by global layout position) to the reservoir. A
// partition without a code block — one the quantizer predates — contributes
// exact squared distances instead, which are their own estimates. Accounting
// matches scanBlockKNN: one DistanceOp per row, pages once per spanned leaf,
// key compares per search probe.
//
//mmdr:hotpath innermost quantized annulus scan
func (idx *Index) quantScanRange(qs *quantScratch, pi int, lo, hi float64, exLo, exHi bool) {
	lay := idx.layout
	ps, pe := lay.partStart[pi], lay.partStart[pi+1]
	a, b := idx.rowBounds(lay.keys[ps:pe], lo, hi, exLo, exHi)
	if a >= b {
		return
	}
	qs.scanned += b - a
	est := qs.est
	st := &qs.states[pi]
	if codes := lay.codes[pi]; codes != nil {
		cb := idx.quant.Books[pi]
		table := qs.tables[qs.tabOff[pi]:qs.tabOff[pi+1]]
		if !qs.built[pi] {
			// Lazy per-partition table: built on the partition's first scan
			// of this query, so partitions the sphere never reaches cost
			// nothing.
			x := qs.q
			if st.proj != nil {
				x = st.proj
			}
			cb.ADCTableInto(x, table)
			qs.built[pi] = true
		}
		m, kc := cb.M, cb.K
		off := a * m
		// The reservoir bound moves only on compaction; refreshing it after
		// an accepted Add keeps the ADC early-abandon as tight as it gets
		// while rejected rows skip the call entirely.
		kth := est.Kth()
		for p := a; p < b; p++ {
			code := codes[off : off+m : off+m]
			off += m
			if s := matrix.ADCSumBound(table, kc, code, kth); s < kth {
				est.Add(ps+p, s)
				kth = est.Kth()
			}
		}
	} else {
		d := lay.dims[pi]
		block := lay.vecs[pi]
		x := qs.q
		if st.proj != nil {
			x = st.proj
		}
		abandon := d >= matrix.EarlyAbandonMinLen
		row := a * d
		for p := a; p < b; p++ {
			v := block[row : row+d : row+d]
			row += d
			if abandon {
				est.Add(ps+p, matrix.SqDistEarlyAbandon(x, v, est.Kth()))
			} else {
				est.Add(ps+p, matrix.SqDist(x, v))
			}
		}
	}
	if idx.counter != nil {
		idx.counter.CountDistanceOps(int64(b - a))
	}
	idx.chargeLeafSpan(ps, a, b)
}

// rerank evaluates the surviving candidates exactly — the same kernels,
// bounds and accumulation as the exact search — and materializes the best k
// as the result (the path's single allocation). cands holds global layout
// positions; states supplies the per-partition query-side vectors (proj for
// subspaces, q itself for outliers).
//
//mmdr:hotpath exact re-rank of the quantized candidate set
func (idx *Index) rerank(cands []index.Neighbor, states []queryState, q []float64, k int, top *index.TopK) []index.Neighbor {
	lay := idx.layout
	top.Reset(k)
	for _, nb := range cands {
		p := nb.ID
		// Candidates are few (the budget); the partition count is tiny, so a
		// linear walk over the span starts beats binary search bookkeeping.
		pi := 0
		for lay.partStart[pi+1] <= p {
			pi++
		}
		d := lay.dims[pi]
		row := p - lay.partStart[pi]
		v := lay.vecs[pi][row*d : (row+1)*d : (row+1)*d]
		x := q
		if st := &states[pi]; st.proj != nil {
			x = st.proj
		}
		var dSq float64
		if d >= matrix.EarlyAbandonMinLen {
			dSq = matrix.SqDistEarlyAbandon(x, v, top.Kth())
		} else {
			dSq = matrix.SqDist(x, v)
		}
		top.Add(int(lay.rids[p]), dSq)
	}
	if idx.counter != nil && len(cands) > 0 {
		idx.counter.CountDistanceOps(int64(len(cands)))
	}
	out := top.Sorted()
	for i := range out {
		out[i].Dist = math.Sqrt(out[i].Dist)
	}
	return out
}
