package idist

import (
	"runtime/debug"
	"testing"
	"time"

	"mmdr/internal/datagen"
	"mmdr/internal/metrics"
)

func TestMetricsCounts(t *testing.T) {
	ds, red := testSetup(t, 900, 12, 3, 17)
	reg := metrics.NewRegistry()
	idx, err := Build(ds, red, Options{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	q := ds.Point(5)

	idx.KNN(q, 10)
	idx.KNN(q, 10)
	idx.KNNApprox(q, 10, 2)
	idx.Range(q, 0.4)
	queries := [][]float64{q, q, q, q, q}
	idx.BatchKNN(queries, 5, 2)
	idx.BatchRange(queries, 0.3, 2)
	if _, err := idx.Insert(append([]float64(nil), q...)); err != nil {
		t.Fatal(err)
	}
	if !idx.Delete(3) {
		t.Fatal("Delete(3) reported not present")
	}

	for _, tc := range []struct {
		op   string
		want int64
	}{
		{opKNN, 2 + 5}, // singles + per-query batch records
		{opKNNApprox, 1},
		{opRange, 1 + 5},
		{opBatchKNN, 1},
		{opBatchRange, 1},
		{opInsert, 1},
		{opDelete, 1},
	} {
		if got := reg.Op(tc.op).Count(); got != tc.want {
			t.Errorf("op %q count = %d, want %d", tc.op, got, tc.want)
		}
	}
	// Build seeded the gauges; insert and delete moved the point count.
	if got := reg.Gauge(gaugePoints).Value(); got != int64(ds.N-1) {
		t.Errorf("points gauge = %d, want %d", got, ds.N-1)
	}
	if got := reg.Gauge(gaugePartitions).Value(); got < 1 {
		t.Errorf("partitions gauge = %d, want >= 1", got)
	}

	idx.SetMetrics(nil)
	idx.KNN(q, 10)
	if got := reg.Op(opKNN).Count(); got != 7 {
		t.Errorf("detached index still recorded: count = %d, want 7", got)
	}
}

// TestSlowQueryCapture pins the tail-capture contract: a query crossing the
// slow threshold lands in the registry's slow log carrying the structured
// KNNTrace explain for the re-run query.
func TestSlowQueryCapture(t *testing.T) {
	ds, red := testSetup(t, 900, 12, 3, 17)
	reg := metrics.NewRegistry()
	idx, err := Build(ds, red, Options{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	// Artificially slow policy: every query is over threshold and the zero
	// gap admits every capture.
	reg.Op(opKNN).SetSlowPolicy(time.Nanosecond, 0)

	q := ds.Point(11)
	idx.KNN(q, 10)
	if got := reg.Slow().Total(); got != 1 {
		t.Fatalf("slow captures = %d, want 1", got)
	}
	sq := reg.Slow().Queries()[0]
	if sq.Op != opKNN || sq.K != 10 {
		t.Errorf("capture op/k = %q/%d, want knn/10", sq.Op, sq.K)
	}
	if sq.LatencyUS <= 0 {
		t.Errorf("capture latency = %v, want > 0", sq.LatencyUS)
	}
	if len(sq.Query) != ds.Dim {
		t.Fatalf("captured query has %d dims, want %d", len(sq.Query), ds.Dim)
	}
	for i := range q {
		if sq.Query[i] != q[i] {
			t.Fatalf("captured query differs from original at dim %d", i)
		}
	}
	tr, ok := sq.Trace.(*QueryTrace)
	if !ok || tr == nil {
		t.Fatalf("capture trace is %T, want *QueryTrace", sq.Trace)
	}
	if tr.K != 10 || tr.Rounds < 1 || tr.Candidates < 1 || len(tr.Partitions) == 0 {
		t.Errorf("trace not populated: %+v", tr)
	}

	// The batch path captures through the same policy.
	idx.BatchKNN([][]float64{ds.Point(12)}, 5, 1)
	if got := reg.Slow().Total(); got != 2 {
		t.Errorf("slow captures after batch = %d, want 2", got)
	}
}

// TestKNNAllocBudgetWithMetrics re-pins the KNN allocation budget with a
// registry attached: the record path must add ZERO allocations on top of
// the result slice.
func TestKNNAllocBudgetWithMetrics(t *testing.T) {
	idx, q := withAllocFixture(t)
	reg := metrics.NewRegistry()
	idx.SetMetrics(reg)
	// Disable tail capture so timing jitter cannot route a run through the
	// (allocating, off-budget) capture path mid-measurement.
	reg.Op(opKNN).SetSlowPolicy(0, 0)
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	idx.KNN(q, 10)
	if n := testing.AllocsPerRun(100, func() { idx.KNN(q, 10) }); n != 1 {
		t.Fatalf("instrumented KNN allocated %.1f objects per query, budget is exactly 1", n)
	}
	if reg.Op(opKNN).Count() == 0 {
		t.Fatal("metrics did not record during the alloc measurement")
	}
}

// BenchmarkKNNMetricsOverhead races the uninstrumented KNN path against the
// same index with a registry attached — the ≤2% overhead claim is the
// delta between the "off" and "on" numbers.
func BenchmarkKNNMetricsOverhead(b *testing.B) {
	idx, ds := benchIndex(b)
	queries := datagen.SampleQueries(ds, 64, 0.02, 101)
	b.Run("off", func(b *testing.B) {
		idx.SetMetrics(nil)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			idx.KNN(queries.Point(i%queries.N), 10)
		}
	})
	b.Run("on", func(b *testing.B) {
		idx.SetMetrics(metrics.NewRegistry())
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			idx.KNN(queries.Point(i%queries.N), 10)
		}
		idx.SetMetrics(nil)
	})
}
