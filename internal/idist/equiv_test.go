package idist

import (
	"math/rand"
	"testing"

	"mmdr/internal/core"
	"mmdr/internal/datagen"
	"mmdr/internal/dataset"
	"mmdr/internal/index"
	"mmdr/internal/iostat"
	"mmdr/internal/reduction"
)

// Equivalence lockdown for the kernelized query paths. Three independent
// checks pin the rework down:
//
//   1. KNN/Range match the frozen pre-kernel implementation
//      (ReferenceKNN/ReferenceRange in reference.go) bitwise after the
//      final sqrt — the kernels changed memory layout and comparison
//      space, not arithmetic.
//   2. KNN/Range match the sequential-scan oracle bitwise — tree pruning
//      never changes an answer.
//   3. Both hold across every reduction family (MMDR, LDR, GDR), since
//      each populates Subspace differently (with/without CovInv, forced
//      dimensionalities, outlier mixes).

// equivModels builds one index + oracle per reduction family over the same
// correlated dataset.
func equivModels(t *testing.T) map[string]struct {
	idx  *Index
	scan *index.SeqScan
	ds   *dataset.Dataset
} {
	t.Helper()
	cfg := datagen.CorrelatedConfig{N: 800, Dim: 12, NumClusters: 3, SDim: 2, VarRatio: 20, Seed: 97}
	ds, _, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	datagen.Normalize(ds)

	reducers := map[string]reduction.Reducer{
		"MMDR": core.New(core.Params{Seed: 97, MaxEC: 5}),
		"LDR":  &reduction.LDR{MaxClusters: 4, Seed: 97},
		"GDR":  &reduction.GDR{TargetDim: 6},
	}
	out := make(map[string]struct {
		idx  *Index
		scan *index.SeqScan
		ds   *dataset.Dataset
	})
	for name, r := range reducers {
		red, err := r.Reduce(ds)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		idx, err := Build(ds, red, Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out[name] = struct {
			idx  *Index
			scan *index.SeqScan
			ds   *dataset.Dataset
		}{idx, index.NewSeqScan(ds, red, nil), ds}
	}
	return out
}

func equivQueries(ds *dataset.Dataset, n int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	qs := make([][]float64, n)
	for i := range qs {
		q := make([]float64, ds.Dim)
		if i%2 == 0 {
			base := ds.Point(rng.Intn(ds.N))
			for j, v := range base {
				q[j] = v + 0.05*rng.NormFloat64()
			}
		} else {
			for j := range q {
				q[j] = rng.Float64()
			}
		}
		qs[i] = q
	}
	return qs
}

func sameNeighbors(t *testing.T, label string, got, want []index.Neighbor) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i].ID != want[i].ID || got[i].Dist != want[i].Dist {
			t.Fatalf("%s rank %d: got (%d, %v), want (%d, %v)",
				label, i, got[i].ID, got[i].Dist, want[i].ID, want[i].Dist)
		}
	}
}

func TestKNNBitIdenticalToReferenceAndOracle(t *testing.T) {
	for name, m := range equivModels(t) {
		qs := equivQueries(m.ds, 40, 1234)
		for qi, q := range qs {
			for _, k := range []int{1, 5, 17} {
				got := m.idx.KNN(q, k)
				ref := m.idx.ReferenceKNN(q, k)
				oracle := m.scan.KNN(q, k)
				sameNeighbors(t, name+"/ref", got, ref)
				sameNeighbors(t, name+"/oracle", got, oracle)
				_ = qi
			}
		}
	}
}

// The kernel path must not only return the same answers — it must do the
// same WORK: squared-space pruning and half-open re-scans may never change
// how many candidates the annulus arithmetic evaluates (only how much each
// evaluation costs).
func TestCandidateCountParity(t *testing.T) {
	ds, red := testSetup(t, 900, 12, 3, 41)
	var ctr iostat.Counter
	idx, err := Build(ds, red, Options{Counter: &ctr})
	if err != nil {
		t.Fatal(err)
	}
	qs := equivQueries(ds, 30, 99)
	ctr.Reset()
	for _, q := range qs {
		idx.KNN(q, 10)
	}
	kernel := ctr.Snapshot().DistanceOps
	ctr.Reset()
	for _, q := range qs {
		idx.ReferenceKNN(q, 10)
	}
	ref := ctr.Snapshot().DistanceOps
	if kernel != ref {
		t.Fatalf("kernel path evaluated %d candidates, reference evaluated %d", kernel, ref)
	}
}

func TestRangeBitIdenticalToReferenceAndOracle(t *testing.T) {
	for name, m := range equivModels(t) {
		qs := equivQueries(m.ds, 40, 4321)
		for _, q := range qs {
			for _, r := range []float64{0, 0.05, 0.3, 1.5} {
				got := m.idx.Range(q, r)
				ref := m.idx.ReferenceRange(q, r)
				oracle := m.scan.Range(q, r)
				sameNeighbors(t, name+"/ref", got, ref)
				sameNeighbors(t, name+"/oracle", got, oracle)
			}
		}
	}
}
