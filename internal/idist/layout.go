package idist

// soaLayout is the structure-of-arrays mirror of the B⁺-tree's leaf level:
// every stored entry, in global ascending leaf order, with the partition
// vectors copied into per-partition row-major blocks ordered by that same
// leaf position. An annulus scan over tree keys then reads one contiguous
// block span instead of pointer-chasing a stored vector per entry — the
// partition-contiguous clustered layout the scan-speed literature argues
// for — and a batched scan can serve a whole query tile from one pass over
// the span.
//
// The layout is a derived cache: the tree stays authoritative, and any
// structural mutation (Insert, Delete) invalidates the layout, dropping
// every query path back to the per-entry tree scan until RebuildLayout (or
// a fresh Build) re-materializes it. Both paths return bitwise-identical
// answers; the layout only changes the memory access pattern.
type soaLayout struct {
	// Global leaf-order arrays, parallel: entry p of the scan order has key
	// keys[p], record rids[p], and lives in leaf leafOf[p].
	keys   []float64
	rids   []uint32
	leafOf []int32

	// partStart[pi] is the first global position of partition pi's entries
	// (len nParts+1, partStart[nParts] == len(keys)). Partition key ranges
	// are disjoint and ascending, so each partition owns one contiguous
	// span of the global order.
	partStart []int

	// Per-partition row-major vector blocks: partition pi's entry at global
	// position p is row p-partStart[pi] of vecs[pi], a dims[pi]-wide copy of
	// its stored vector (reduced coordinates for subspace members, the
	// original-space point for outliers).
	vecs [][]float64
	dims []int

	// rowOf maps a record ID to its row within its partition's block
	// (-1 when the record is not in the tree). Indexed like partOf/slotOf.
	rowOf []int32

	// codes holds, when a quantizer is attached, partition pi's PQ codes as
	// a contiguous row-major block parallel to vecs[pi]: row r's code is
	// codes[pi][r*M : (r+1)*M] for the partition codebook's M sub-blocks.
	// nil without a quantizer; codes[pi] is nil for a partition the
	// quantizer does not cover (one created by Insert after training), which
	// the quantized scans serve with exact distances instead. Codes follow
	// the same derived-cache discipline as the rest of the layout: dropped
	// on Insert/Delete, re-encoded by RebuildLayout.
	codes [][]byte
}

// RebuildLayout re-materializes the SoA scan layout from the current tree.
// Build calls it once, so a freshly built (or persisted-and-reloaded) index
// always has the fast path; after dynamic Inserts or Deletes the layout is
// dropped and queries fall back to the per-entry tree scan until this is
// called again. The rebuild walks every entry once — O(n) time and one
// extra copy of the stored vectors — so serving systems typically batch
// their updates and rebuild once per batch. Not safe concurrently with
// queries (same contract as Insert/Delete; ConcurrentIndex callers hold the
// write lock).
func (idx *Index) RebuildLayout() { idx.rebuildLayout() }

func (idx *Index) rebuildLayout() {
	idx.layout = nil
	nParts := len(idx.parts)
	total := idx.tree.Len()
	lay := &soaLayout{
		keys:      make([]float64, 0, total),
		rids:      make([]uint32, 0, total),
		leafOf:    make([]int32, 0, total),
		partStart: make([]int, nParts+1),
		vecs:      make([][]float64, nParts),
		dims:      make([]int, nParts),
		rowOf:     make([]int32, len(idx.partOf)),
	}
	for i := range lay.rowOf {
		lay.rowOf[i] = -1
	}

	// Pass 1: capture the global leaf order and verify the partition spans
	// are contiguous (keys ascending + disjoint per-partition key ranges
	// guarantee it for trees built here; bail out defensively otherwise —
	// a nil layout just means the slower per-entry scan).
	counts := make([]int, nParts)
	ok := true
	lastPart := -1
	idx.tree.WalkLeaves(func(ord int, keys []float64, rids []uint32) bool {
		for i, rid := range rids {
			pi := int(idx.partOf[rid])
			if pi < 0 || pi < lastPart || pi >= nParts {
				ok = false
				return false
			}
			lastPart = pi
			counts[pi]++
			lay.keys = append(lay.keys, keys[i])
			lay.rids = append(lay.rids, rid)
			lay.leafOf = append(lay.leafOf, int32(ord))
		}
		return true
	})
	if !ok {
		return
	}
	for pi := 0; pi < nParts; pi++ {
		lay.partStart[pi+1] = lay.partStart[pi] + counts[pi]
		if s := idx.parts[pi].sub; s != nil {
			lay.dims[pi] = s.Dr
		} else {
			lay.dims[pi] = idx.ds.Dim
		}
		lay.vecs[pi] = make([]float64, counts[pi]*lay.dims[pi])
	}

	// Pass 2: copy each entry's stored vector into its block row. Copies
	// preserve bitwise values, so distances computed from the block equal
	// distances computed from the original storage bit for bit.
	for p, rid := range lay.rids {
		pi := int(idx.partOf[rid])
		row := p - lay.partStart[pi]
		lay.rowOf[rid] = int32(row)
		d := lay.dims[pi]
		dst := lay.vecs[pi][row*d : (row+1)*d]
		if s := idx.parts[pi].sub; s != nil {
			copy(dst, s.MemberCoords(int(idx.slotOf[rid])))
		} else {
			copy(dst, idx.ds.Point(int(rid)))
		}
	}

	// Pass 3 (quantizer attached): encode every block row into the parallel
	// per-partition code blocks, in the same leaf order. Encoding is a
	// deterministic function of the stored vectors and the codebooks, so a
	// rebuild always reproduces identical codes. A partition the codebook
	// set does not cover (created by Insert after training) keeps a nil code
	// block and is served exactly by the quantized scans.
	if qs := idx.quant; qs != nil {
		lay.codes = make([][]byte, nParts)
		for pi := 0; pi < nParts; pi++ {
			if pi >= len(qs.Books) {
				continue
			}
			cb := qs.Books[pi]
			if cb == nil || cb.Dim != lay.dims[pi] {
				continue
			}
			n := counts[pi]
			d := lay.dims[pi]
			block := lay.vecs[pi]
			codes := make([]byte, n*cb.M)
			for row := 0; row < n; row++ {
				cb.EncodeInto(block[row*d:(row+1)*d], codes[row*cb.M:(row+1)*cb.M])
			}
			lay.codes[pi] = codes
		}
	}
	idx.layout = lay
}

// HasLayout reports whether the SoA fast path is materialized (false after
// Insert/Delete until RebuildLayout).
func (idx *Index) HasLayout() bool { return idx.layout != nil }
