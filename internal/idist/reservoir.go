package idist

import (
	"math"

	"mmdr/internal/index"
)

// quantReservoir accumulates the ADC candidate estimates of one quantized
// query. It replaces a per-row top-k heap with a flat buffer of capacity
// 2k: an admitted estimate is a plain append, and only when the buffer
// fills does a deterministic quickselect compact it back to the k smallest,
// refreshing the admission bound. Estimate accumulation is the quantized
// scan's hottest edge — rows arrive roughly in distance order, so a heap
// absorbs a sift for nearly every early row — and the reservoir turns those
// ~log k sifts into O(1) appends with O(1) amortized compaction.
//
// The bound is intentionally stale between compactions: it only ever
// decreases, so admission is never stricter than a live heap's and no row a
// heap would keep is lost. The buffer holds between k and 2k-1 candidates
// at rest; the re-rank simply evaluates all of them, which can only improve
// recall over re-ranking exactly k. Determinism: appends happen in row scan
// order (identical in the solo and fused paths) and the quickselect pivot
// choice depends only on the buffer contents, so reservoir states — and
// therefore candidate sets and answers — stay bitwise identical across
// paths and worker counts.
//
// With k clamped to the row count (see the call sites), a budget >= n query
// never fills the buffer: the bound stays +Inf, every scanned row is kept,
// and the degenerate bitwise-exact point of the budget knob is preserved.
type quantReservoir struct {
	items []index.Neighbor // admitted candidates, append order preserved
	k     int              // compaction target (the clamped budget)
	bound float64          // admission bound; +Inf until the first compaction
}

// Reset prepares the reservoir for a new query with compaction target k,
// reusing the buffer when it is already large enough.
func (r *quantReservoir) Reset(k int) {
	r.k = k
	if need := 2 * k; cap(r.items) < need {
		r.items = make([]index.Neighbor, 0, need)
	}
	r.items = r.items[:0]
	r.bound = math.Inf(1)
}

// Len is the number of candidates currently held (k..2k-1 once warm).
func (r *quantReservoir) Len() int { return len(r.items) }

// Kth is the admission bound: +Inf until the first compaction, afterwards
// the k-th smallest estimate as of the latest compaction (never tighter
// than the live k-th, so pruning against it is always safe).
func (r *quantReservoir) Kth() float64 { return r.bound }

// Items exposes the held candidates for the exact re-rank. The slice is
// owned by the reservoir and valid until the next Reset.
func (r *quantReservoir) Items() []index.Neighbor { return r.items }

// Add admits the estimate if it beats the bound; on fill-up the buffer is
// compacted back to the k smallest and the bound refreshed.
//
//mmdr:hotpath append-only accumulation on the quantized scan edge
func (r *quantReservoir) Add(id int, d float64) {
	if d >= r.bound {
		return
	}
	r.items = append(r.items, index.Neighbor{ID: id, Dist: d})
	if len(r.items) >= 2*r.k {
		r.compact()
	}
}

// compact keeps the k smallest-estimate candidates and tightens the bound
// to the new k-th. Runs once per k admitted rows at most.
func (r *quantReservoir) compact() {
	selectSmallest(r.items, r.k)
	r.items = r.items[:r.k]
	r.bound = r.items[r.k-1].Dist
}

// selectSmallest partially orders a so that a[:k] are the k smallest by
// Dist and a[k-1] is the k-th smallest (classic nth_element). Hoare
// partitioning with a median-of-three pivot on fixed positions: wholly
// deterministic in the input, which the bitwise solo/fused equivalence of
// the quantized path relies on.
func selectSmallest(a []index.Neighbor, k int) {
	lo, hi := 0, len(a)-1
	for lo < hi {
		// Median of three on lo, mid, hi — order the three in place so
		// a[lo] <= a[mid] <= a[hi], then use the middle as pivot.
		mid := lo + (hi-lo)/2
		if a[mid].Dist < a[lo].Dist {
			a[mid], a[lo] = a[lo], a[mid]
		}
		if a[hi].Dist < a[lo].Dist {
			a[hi], a[lo] = a[lo], a[hi]
		}
		if a[hi].Dist < a[mid].Dist {
			a[hi], a[mid] = a[mid], a[hi]
		}
		pivot := a[mid].Dist
		i, j := lo, hi
		for i <= j {
			for a[i].Dist < pivot {
				i++
			}
			for a[j].Dist > pivot {
				j--
			}
			if i <= j {
				a[i], a[j] = a[j], a[i]
				i++
				j--
			}
		}
		// a[lo..j] <= pivot <= a[i..hi]; recurse into the side holding the
		// k-th smallest (index k-1).
		if k-1 <= j {
			hi = j
		} else if k-1 >= i {
			lo = i
		} else {
			return
		}
	}
}
