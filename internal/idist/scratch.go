package idist

import (
	"mmdr/internal/index"
	"mmdr/internal/matrix"
)

// queryScratch bundles every per-query buffer the search paths need so a
// single query allocates nothing beyond its returned neighbor slice. A
// scratch is owned by one query at a time: single-query calls borrow one
// from the index's sync.Pool, batch queries hold one per worker for a whole
// chunk of queries.
//
// The two btree visit callbacks are bound once, when the scratch is created;
// per-scan parameters travel through scratch fields instead of fresh closure
// captures, which is what keeps the inner tree scans allocation-free.
type queryScratch struct {
	idx      *Index
	states   []queryState     // per-partition search state
	projBuf  []float64        // backing array the states' proj views are carved from
	top      *index.TopK      // KNN accumulator (squared distances)
	rangeBuf []index.Neighbor // Range accumulator (squared distances)

	// Per-scan state read by the visit callbacks.
	q       []float64   // original-space query (outlier partition distances)
	part    *partition  // partition currently being scanned
	st      *queryState // its search state
	pi      int         // partition index (selects the SoA block)
	x       []float64   // query-side vector of the scan: st.proj or q
	r2      float64     // Range predicate, squared
	cand    int         // candidates evaluated by the current scan
	abandon bool        // vectors long enough for early abandoning to pay off

	visitKNN   func(key float64, rid uint32) bool
	visitRange func(key float64, rid uint32) bool
}

// getScratch returns a ready-to-use scratch sized for the index's current
// partition layout. Pair with putScratch.
func (idx *Index) getScratch() *queryScratch {
	sc, _ := idx.scratchPool.Get().(*queryScratch)
	if sc == nil {
		sc = &queryScratch{idx: idx, top: index.NewTopK(0)}
		sc.visitKNN = sc.knnVisit
		sc.visitRange = sc.rangeVisit
	}
	sc.ensure()
	return sc
}

// putScratch returns a scratch to the pool. References into caller data are
// dropped so the pool never pins a query vector.
func (idx *Index) putScratch(sc *queryScratch) {
	sc.q, sc.part, sc.st = nil, nil, nil
	idx.scratchPool.Put(sc)
}

// ensure sizes the per-partition state for the index's current layout
// (Insert can add an outlier partition after Build) and carves each subspace
// partition's projection view out of the shared backing array.
func (sc *queryScratch) ensure() {
	idx := sc.idx
	n := len(idx.parts)
	if cap(sc.states) < n {
		sc.states = make([]queryState, n)
	}
	sc.states = sc.states[:n]
	sumDr := 0
	for pi := range idx.parts {
		if s := idx.parts[pi].sub; s != nil {
			sumDr += s.Dr
		}
	}
	if cap(sc.projBuf) < sumDr {
		sc.projBuf = make([]float64, sumDr)
	}
	off := 0
	for pi := range idx.parts {
		st := &sc.states[pi]
		if s := idx.parts[pi].sub; s != nil {
			st.proj = sc.projBuf[off : off+s.Dr]
			off += s.Dr
		} else {
			st.proj = nil
		}
	}
}

// beginScan primes the per-scan callback state for partition pi. The
// abandon flag is decided once per scan, not per candidate: subspace scans
// compare vectors of the partition's reduced dimensionality, outlier scans
// compare full-dimensional points, and only vectors of at least
// matrix.EarlyAbandonMinLen amortize the early-abandon bound checks.
func (sc *queryScratch) beginScan(pi int) {
	sc.pi = pi
	sc.part = &sc.idx.parts[pi]
	sc.st = &sc.states[pi]
	if sub := sc.part.sub; sub != nil {
		sc.x = sc.st.proj
		sc.abandon = sub.Dr >= matrix.EarlyAbandonMinLen
	} else {
		sc.x = sc.q
		sc.abandon = sc.idx.ds.Dim >= matrix.EarlyAbandonMinLen
	}
}

// knnVisit evaluates one tree entry against the running top-k, in squared
// distance. The current k-th squared distance bounds the inner loop: a
// partial sum already above it proves the candidate cannot enter the heap,
// so the loop abandons early (candidates that survive get their exact,
// bit-identical squared distance — see matrix.SqDistEarlyAbandon).
//
//mmdr:hotpath innermost per-candidate callback of every KNN scan
func (sc *queryScratch) knnVisit(_ float64, rid uint32) bool {
	idx := sc.idx
	id := int(rid)
	var x, y []float64
	if sc.part.sub != nil {
		x, y = sc.st.proj, sc.part.sub.MemberCoords(int(idx.slotOf[id]))
	} else {
		x, y = idx.ds.Point(id), sc.q
	}
	var dSq float64
	if sc.abandon {
		dSq = matrix.SqDistEarlyAbandon(x, y, sc.top.Kth())
	} else {
		dSq = matrix.SqDist(x, y)
	}
	if idx.counter != nil {
		idx.counter.CountDistanceOps(1)
	}
	sc.cand++
	sc.top.Add(id, dSq)
	return true
}

// rangeVisit evaluates one tree entry against the squared query radius. The
// radius itself bounds the inner loop: an abandoned (partial) sum is already
// > r², so the d² ≤ r² filter rejects it either way, and accepted candidates
// carry their exact squared distance.
//
//mmdr:hotpath innermost per-candidate callback of every range scan
func (sc *queryScratch) rangeVisit(_ float64, rid uint32) bool {
	idx := sc.idx
	id := int(rid)
	var x, y []float64
	if sc.part.sub != nil {
		x, y = sc.st.proj, sc.part.sub.MemberCoords(int(idx.slotOf[id]))
	} else {
		x, y = idx.ds.Point(id), sc.q
	}
	var dSq float64
	if sc.abandon {
		dSq = matrix.SqDistEarlyAbandon(x, y, sc.r2)
	} else {
		dSq = matrix.SqDist(x, y)
	}
	if idx.counter != nil {
		idx.counter.CountDistanceOps(1)
	}
	if dSq <= sc.r2 {
		sc.rangeBuf = append(sc.rangeBuf, index.Neighbor{ID: id, Dist: dSq})
	}
	return true
}
