package idist

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mmdr/internal/core"
	"mmdr/internal/datagen"
	"mmdr/internal/dataset"
	"mmdr/internal/index"
	"mmdr/internal/iostat"
	"mmdr/internal/matrix"
	"mmdr/internal/reduction"
)

// testSetup reduces a correlated dataset with MMDR and returns everything
// the index tests need.
func testSetup(t *testing.T, n, dim, clusters int, seed int64) (*dataset.Dataset, *reduction.Result) {
	t.Helper()
	cfg := datagen.CorrelatedConfig{N: n, Dim: dim, NumClusters: clusters, SDim: 2, VarRatio: 20, Seed: seed}
	ds, _, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	datagen.Normalize(ds)
	red, err := core.New(core.Params{Seed: seed, MaxEC: clusters + 2}).Reduce(ds)
	if err != nil {
		t.Fatal(err)
	}
	if err := red.Validate(ds.N); err != nil {
		t.Fatal(err)
	}
	return ds, red
}

func TestBuildValidation(t *testing.T) {
	ds := dataset.New(0, 4)
	if _, err := Build(ds, &reduction.Result{Dim: 4}, Options{}); err == nil {
		t.Fatal("expected error for empty dataset")
	}
	ds2 := dataset.New(3, 4)
	if _, err := Build(ds2, &reduction.Result{Dim: 4}, Options{}); err == nil {
		t.Fatal("expected error for empty reduction")
	}
}

func TestBuildStructure(t *testing.T) {
	ds, red := testSetup(t, 600, 10, 2, 91)
	idx, err := Build(ds, red, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if idx.Name() != "iDistance" {
		t.Fatal("name")
	}
	if idx.Tree().Len() != ds.N {
		t.Fatalf("tree has %d entries, want %d", idx.Tree().Len(), ds.N)
	}
	if idx.C() <= 0 {
		t.Fatal("non-positive stretching constant")
	}
	// Keys of partition i must live in [i*c, (i+1)*c).
	max, ok := idx.Tree().Max()
	if !ok {
		t.Fatal("empty tree")
	}
	nParts := len(red.Subspaces)
	if len(red.Outliers) > 0 {
		nParts++
	}
	if max >= float64(nParts)*idx.C() {
		t.Fatalf("max key %v outside partition range", max)
	}
}

// The central correctness property: iDistance KNN must return exactly the
// same results as a sequential scan over the same reduced representation
// (same approximate metric), for every query.
func TestKNNMatchesSeqScan(t *testing.T) {
	ds, red := testSetup(t, 800, 12, 3, 92)
	idx, err := Build(ds, red, Options{})
	if err != nil {
		t.Fatal(err)
	}
	scan := index.NewSeqScan(ds, red, nil)
	queries := datagen.SampleQueries(ds, 25, 0.02, 93)
	for qi := 0; qi < queries.N; qi++ {
		q := queries.Point(qi)
		got := idx.KNN(q, 10)
		want := scan.KNN(q, 10)
		if len(got) != len(want) {
			t.Fatalf("query %d: %d results, want %d", qi, len(got), len(want))
		}
		for i := range want {
			if math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
				t.Fatalf("query %d rank %d: dist %v vs scan %v", qi, i, got[i].Dist, want[i].Dist)
			}
		}
	}
}

// Lower-bounding property that justifies the paper's pruning: the reduced
// (projected) distance never exceeds the original-space distance.
func TestProjectionLowerBoundsTrueDistance(t *testing.T) {
	ds, red := testSetup(t, 400, 10, 2, 94)
	queries := datagen.SampleQueries(ds, 10, 0.05, 95)
	for qi := 0; qi < queries.N; qi++ {
		q := queries.Point(qi)
		for _, s := range red.Subspaces {
			qp := s.Project(q)
			for mi, id := range s.Members {
				reduced := matrix.Dist(qp, s.MemberCoords(mi))
				actual := matrix.Dist(q, ds.Point(id))
				if reduced > actual+1e-9 {
					t.Fatalf("reduced %v > actual %v for point %d", reduced, actual, id)
				}
			}
		}
	}
}

func TestKNNKLargerThanN(t *testing.T) {
	ds, red := testSetup(t, 300, 8, 2, 96)
	idx, err := Build(ds, red, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res := idx.KNN(ds.Point(0), ds.N+50)
	if len(res) != ds.N {
		t.Fatalf("got %d results, want all %d", len(res), ds.N)
	}
}

func TestKNNCountsIO(t *testing.T) {
	ds, red := testSetup(t, 800, 12, 3, 97)
	var ctr iostat.Counter
	idx, err := Build(ds, red, Options{Counter: &ctr})
	if err != nil {
		t.Fatal(err)
	}
	build := ctr
	if build.PageWrites == 0 {
		t.Fatal("build counted no writes")
	}
	ctr.Reset()
	idx.KNN(ds.Point(1), 10)
	if ctr.PageReads == 0 || ctr.DistanceOps == 0 {
		t.Fatalf("KNN counted no cost: %+v", ctr)
	}
	// Pruning: a 10-NN search must cost materially less than retrieving
	// everything through the same index.
	small := ctr.PageReads
	ctr.Reset()
	idx.KNN(ds.Point(1), ds.N)
	full := ctr.PageReads
	if small*2 > full {
		t.Fatalf("10-NN read %d pages vs %d for full retrieval — no pruning", small, full)
	}
}

func TestKNNQueryFarOutsideAllPartitions(t *testing.T) {
	ds, red := testSetup(t, 300, 8, 2, 98)
	idx, err := Build(ds, red, Options{})
	if err != nil {
		t.Fatal(err)
	}
	q := make([]float64, ds.Dim)
	for i := range q {
		q[i] = 50 // way outside the normalized [0,1] cube
	}
	res := idx.KNN(q, 5)
	if len(res) != 5 {
		t.Fatalf("far query returned %d results", len(res))
	}
	scan := index.NewSeqScan(ds, red, nil)
	want := scan.KNN(q, 5)
	for i := range want {
		if math.Abs(res[i].Dist-want[i].Dist) > 1e-9 {
			t.Fatalf("far query rank %d: %v vs %v", i, res[i].Dist, want[i].Dist)
		}
	}
}

func TestKNNWithForcedLowDim(t *testing.T) {
	cfg := datagen.CorrelatedConfig{N: 500, Dim: 16, NumClusters: 2, SDim: 2, VarRatio: 20, Seed: 99}
	ds, _, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	datagen.Normalize(ds)
	red, err := core.New(core.Params{Seed: 99, ForcedDim: 3}).Reduce(ds)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := Build(ds, red, Options{})
	if err != nil {
		t.Fatal(err)
	}
	scan := index.NewSeqScan(ds, red, nil)
	q := ds.Point(7)
	got := idx.KNN(q, 10)
	want := scan.KNN(q, 10)
	for i := range want {
		if math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
			t.Fatalf("rank %d: %v vs %v", i, got[i].Dist, want[i].Dist)
		}
	}
}

func BenchmarkIDistanceKNN(b *testing.B) {
	cfg := datagen.CorrelatedConfig{N: 5000, Dim: 32, NumClusters: 4, SDim: 3, VarRatio: 20, Seed: 100}
	ds, _, err := cfg.Generate()
	if err != nil {
		b.Fatal(err)
	}
	datagen.Normalize(ds)
	red, err := core.New(core.Params{Seed: 100}).Reduce(ds)
	if err != nil {
		b.Fatal(err)
	}
	idx, err := Build(ds, red, Options{})
	if err != nil {
		b.Fatal(err)
	}
	queries := datagen.SampleQueries(ds, 64, 0.02, 101)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.KNN(queries.Point(i%queries.N), 10)
	}
}

func TestKNNApproxConvergesToExact(t *testing.T) {
	ds, red := testSetup(t, 600, 10, 3, 151)
	idx, err := Build(ds, red, Options{})
	if err != nil {
		t.Fatal(err)
	}
	q := ds.Point(11)
	exact := idx.KNN(q, 10)
	// A generous round budget reproduces the exact answer.
	wide := idx.KNNApprox(q, 10, 1000)
	if len(wide) != len(exact) {
		t.Fatalf("%d vs %d results", len(wide), len(exact))
	}
	for i := range exact {
		if math.Abs(wide[i].Dist-exact[i].Dist) > 1e-12 {
			t.Fatalf("rank %d: %v vs %v", i, wide[i].Dist, exact[i].Dist)
		}
	}
	// A single round never returns better (smaller k-th distance) than
	// exact and may return fewer/farther results.
	one := idx.KNNApprox(q, 10, 1)
	if len(one) > 0 && len(exact) > 0 {
		if one[len(one)-1].Dist < exact[len(exact)-1].Dist-1e-12 && len(one) == len(exact) {
			t.Fatal("bounded search produced a better k-th distance than exact")
		}
	}
}

// Property: across random workload shapes, reducers and query positions,
// iDistance KNN answers are identical to the sequential scan over the same
// reduced representation.
func TestKNNMatchesScanProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(161))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		cfg := datagen.CorrelatedConfig{
			N:           150 + r.Intn(400),
			Dim:         4 + r.Intn(12),
			NumClusters: 1 + r.Intn(4),
			SDim:        1 + r.Intn(3),
			VarRatio:    5 + r.Float64()*30,
			ScaleDecay:  0.7 + r.Float64()*0.3,
			Seed:        seed,
		}
		if cfg.SDim > cfg.Dim {
			cfg.SDim = cfg.Dim
		}
		ds, _, err := cfg.Generate()
		if err != nil {
			return false
		}
		datagen.Normalize(ds)
		red, err := core.New(core.Params{Seed: seed, MaxDim: 6}).Reduce(ds)
		if err != nil {
			return false
		}
		idx, err := Build(ds, red, Options{})
		if err != nil {
			return false
		}
		scan := index.NewSeqScan(ds, red, nil)
		k := 1 + r.Intn(15)
		for trial := 0; trial < 3; trial++ {
			q := make([]float64, ds.Dim)
			base := ds.Point(r.Intn(ds.N))
			for j := range q {
				q[j] = base[j] + r.NormFloat64()*0.05
			}
			got := idx.KNN(q, k)
			want := scan.KNN(q, k)
			if len(got) != len(want) {
				return false
			}
			for i := range want {
				if math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}
