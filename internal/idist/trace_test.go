package idist

import (
	"encoding/json"
	"math"
	"testing"
)

// TestKNNTraceMatchesKNN: tracing must not change the answers.
func TestKNNTraceMatchesKNN(t *testing.T) {
	ds, red := testSetup(t, 700, 12, 3, 210)
	idx, err := Build(ds, red, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for qi := 0; qi < 10; qi++ {
		q := ds.Point(qi * 37)
		want := idx.KNN(q, 8)
		got, tr := idx.KNNTrace(q, 8)
		if tr == nil {
			t.Fatal("nil trace")
		}
		if len(got) != len(want) {
			t.Fatalf("query %d: %d results, want %d", qi, len(got), len(want))
		}
		for i := range want {
			if got[i].ID != want[i].ID || math.Abs(got[i].Dist-want[i].Dist) > 1e-12 {
				t.Fatalf("query %d rank %d: %+v vs %+v", qi, i, got[i], want[i])
			}
		}
	}
}

// TestKNNTraceInvariants checks the structural promises of the explain:
// enough candidates to answer, a partition record per index partition with
// the right dimensionalities, and internally consistent totals.
func TestKNNTraceInvariants(t *testing.T) {
	ds, red := testSetup(t, 700, 12, 3, 211)
	idx, err := Build(ds, red, Options{})
	if err != nil {
		t.Fatal(err)
	}
	nParts := len(red.Subspaces)
	if len(red.Outliers) > 0 {
		nParts++
	}
	const k = 10
	for qi := 0; qi < 10; qi++ {
		q := ds.Point(qi * 41)
		nb, tr := idx.KNNTrace(q, k)
		if len(nb) != k {
			t.Fatalf("query %d: %d neighbors, want %d", qi, len(nb), k)
		}
		if tr.K != k {
			t.Fatalf("trace K = %d, want %d", tr.K, k)
		}
		if tr.Candidates < k {
			t.Fatalf("query %d: %d candidates < k=%d", qi, tr.Candidates, k)
		}
		if tr.Rounds < 1 || tr.FinalRadius <= 0 || tr.LeavesScanned < 1 {
			t.Fatalf("query %d: implausible trace %+v", qi, tr)
		}
		if len(tr.Partitions) != nParts {
			t.Fatalf("query %d: %d partition probes, want %d", qi, len(tr.Partitions), nParts)
		}
		sum := 0
		for pi, pr := range tr.Partitions {
			if pr.ID != pi {
				t.Fatalf("probe %d has ID %d", pi, pr.ID)
			}
			if pi < len(red.Subspaces) {
				if pr.Outlier || pr.Dim != red.Subspaces[pi].Dr {
					t.Fatalf("probe %d: dim %d outlier=%v, want subspace d_r=%d",
						pi, pr.Dim, pr.Outlier, red.Subspaces[pi].Dr)
				}
			} else if !pr.Outlier || pr.Dim != ds.Dim {
				t.Fatalf("outlier probe: %+v", pr)
			}
			if pr.DistToRef < 0 {
				t.Fatalf("probe %d: negative DistToRef", pi)
			}
			// Never-reached partitions must report the finite sentinel, not
			// the internal ±Inf bounds — infinities break JSON export.
			if math.IsInf(pr.ScanLo, 0) || math.IsInf(pr.ScanHi, 0) {
				t.Fatalf("probe %d: infinite scan bounds %v..%v", pi, pr.ScanLo, pr.ScanHi)
			}
			if pr.Candidates > 0 && pr.ScanLo > pr.ScanHi {
				t.Fatalf("probe %d: candidates without a scanned annulus", pi)
			}
			if pr.Exhausted {
				p := &idx.parts[pi]
				if pr.ScanLo > 0 || pr.ScanHi < p.maxRadius {
					t.Fatalf("probe %d marked exhausted but annulus [%v,%v] misses sphere radius %v",
						pi, pr.ScanLo, pr.ScanHi, p.maxRadius)
				}
			}
			sum += pr.Candidates
		}
		if sum != tr.Candidates {
			t.Fatalf("query %d: partition candidates sum %d != total %d", qi, sum, tr.Candidates)
		}
		if _, err := json.Marshal(tr); err != nil {
			t.Fatalf("query %d: trace does not marshal: %v", qi, err)
		}
	}
}

// TestKNNTraceJSON: the explain must export cleanly.
func TestKNNTraceJSON(t *testing.T) {
	ds, red := testSetup(t, 400, 10, 2, 212)
	idx, err := Build(ds, red, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, tr := idx.KNNTrace(ds.Point(3), 5)
	b, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	var back QueryTrace
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Candidates != tr.Candidates || len(back.Partitions) != len(tr.Partitions) {
		t.Fatalf("round trip mismatch: %+v vs %+v", back, tr)
	}
}
