//go:build !race

package idist

// See race_test.go.
const raceEnabled = false
