package idist

import (
	"math"
	"runtime/debug"
	"testing"

	"mmdr/internal/index"
)

// SoA-layout lockdown. The layout is a derived cache of the tree's leaf
// level; these tests pin down that (a) it mirrors the tree exactly, (b) the
// fused batch kernels running over it are bitwise equivalent to the frozen
// reference and the sequential-scan oracle, and (c) dynamic updates drop it
// and RebuildLayout restores it without perturbing a single bit.

// TestLayoutMirrorsTree checks the structural contract: global keys in
// ascending leaf order, contiguous per-partition spans agreeing with
// partOf, rowOf the exact inverse of the row assignment, and block rows
// bitwise equal to the stored vectors they copy.
func TestLayoutMirrorsTree(t *testing.T) {
	for name, m := range equivModels(t) {
		lay := m.idx.layout
		if lay == nil {
			t.Fatalf("%s: Build left no layout", name)
		}
		if len(lay.keys) != m.idx.tree.Len() {
			t.Fatalf("%s: layout has %d entries, tree %d", name, len(lay.keys), m.idx.tree.Len())
		}
		if lay.partStart[len(m.idx.parts)] != len(lay.keys) {
			t.Fatalf("%s: partition spans cover %d entries, want %d",
				name, lay.partStart[len(m.idx.parts)], len(lay.keys))
		}
		for p := 1; p < len(lay.keys); p++ {
			if lay.keys[p] < lay.keys[p-1] {
				t.Fatalf("%s: layout keys out of order at %d", name, p)
			}
			if lay.leafOf[p] < lay.leafOf[p-1] {
				t.Fatalf("%s: leaf ordinals out of order at %d", name, p)
			}
		}
		for p, rid := range lay.rids {
			pi := int(m.idx.partOf[rid])
			if p < lay.partStart[pi] || p >= lay.partStart[pi+1] {
				t.Fatalf("%s: rid %d at position %d outside partition %d's span", name, rid, p, pi)
			}
			row := p - lay.partStart[pi]
			if int(lay.rowOf[rid]) != row {
				t.Fatalf("%s: rowOf[%d]=%d, want %d", name, rid, lay.rowOf[rid], row)
			}
			d := lay.dims[pi]
			got := lay.vecs[pi][row*d : (row+1)*d]
			var want []float64
			if s := m.idx.parts[pi].sub; s != nil {
				want = s.MemberCoords(int(m.idx.slotOf[rid]))
			} else {
				want = m.idx.ds.Point(int(rid))
			}
			for i := range want {
				if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
					t.Fatalf("%s: block row for rid %d differs from stored vector at dim %d", name, rid, i)
				}
			}
		}
	}
}

// TestBatchKNNBitIdenticalToReferenceAndOracle extends the equivalence
// lockdown to the fused batch path: per query, BatchKNN must match the
// frozen pre-kernel reference AND the sequential-scan oracle bitwise,
// across every reduction family, at several worker counts and batch sizes
// (full tiles, ragged tails, sub-tile batches).
func TestBatchKNNBitIdenticalToReferenceAndOracle(t *testing.T) {
	for name, m := range equivModels(t) {
		if m.idx.layout == nil {
			t.Fatalf("%s: no layout, batch would not take the fused path", name)
		}
		qs := equivQueries(m.ds, 21, 5150) // 2 full tiles + a 5-query tail
		for _, k := range []int{1, 5, 17} {
			for _, workers := range []int{1, 3} {
				batch := m.idx.BatchKNN(qs, k, workers)
				for qi, q := range qs {
					ref := m.idx.ReferenceKNN(q, k)
					oracle := m.scan.KNN(q, k)
					sameNeighbors(t, name+"/batch-ref", batch[qi], ref)
					sameNeighbors(t, name+"/batch-oracle", batch[qi], oracle)
				}
			}
		}
		// Sub-tile batches exercise the partial-tile edge.
		for _, nq := range []int{1, 3, batchTile} {
			batch := m.idx.BatchKNN(qs[:nq], 5, 1)
			for qi := 0; qi < nq; qi++ {
				sameNeighbors(t, name+"/subtile", batch[qi], m.scan.KNN(qs[qi], 5))
			}
		}
	}
}

// TestBatchRangeBitIdenticalToReferenceAndOracle is the range counterpart.
func TestBatchRangeBitIdenticalToReferenceAndOracle(t *testing.T) {
	for name, m := range equivModels(t) {
		qs := equivQueries(m.ds, 13, 2718)
		for _, r := range []float64{0, 0.05, 0.3, 1.5} {
			batch := m.idx.BatchRange(qs, r, 2)
			for qi, q := range qs {
				ref := m.idx.ReferenceRange(q, r)
				oracle := m.scan.Range(q, r)
				sameNeighbors(t, name+"/batch-ref", batch[qi], ref)
				sameNeighbors(t, name+"/batch-oracle", batch[qi], oracle)
			}
		}
	}
}

// TestLayoutInvalidationAndRebuild pins the dynamic-update contract: Insert
// and Delete drop the layout (queries fall back to the per-entry tree scan,
// answers unchanged), and RebuildLayout restores the fast path with
// bitwise-identical answers over the updated contents.
func TestLayoutInvalidationAndRebuild(t *testing.T) {
	ds, red := testSetup(t, 800, 12, 3, 31)
	idx, err := Build(ds, red, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !idx.HasLayout() {
		t.Fatal("Build left no layout")
	}
	qs := equivQueries(ds, 12, 777)

	if _, err := idx.Insert(ds.Point(3)); err != nil {
		t.Fatal(err)
	}
	if idx.HasLayout() {
		t.Fatal("Insert did not invalidate the layout")
	}
	// Fallback path: per-query and batch answers over the stale-layout
	// index must agree with each other (both run the tree scan now).
	fallback := make([][]index.Neighbor, len(qs))
	for qi, q := range qs {
		fallback[qi] = idx.KNN(q, 9)
	}
	batch := idx.BatchKNN(qs, 9, 2)
	for qi := range qs {
		sameNeighbors(t, "fallback-batch", batch[qi], fallback[qi])
	}

	idx.RebuildLayout()
	if !idx.HasLayout() {
		t.Fatal("RebuildLayout did not restore the layout")
	}
	// Fast path over the updated index: identical to the fallback answers.
	for qi, q := range qs {
		sameNeighbors(t, "rebuilt-solo", idx.KNN(q, 9), fallback[qi])
	}
	batch = idx.BatchKNN(qs, 9, 1)
	for qi := range qs {
		sameNeighbors(t, "rebuilt-batch", batch[qi], fallback[qi])
	}

	// Delete invalidates too, and the rebuilt layout reflects the removal.
	if !idx.Delete(5) {
		t.Fatal("Delete(5) found nothing")
	}
	if idx.HasLayout() {
		t.Fatal("Delete did not invalidate the layout")
	}
	idx.RebuildLayout()
	for _, q := range qs[:4] {
		for _, nb := range idx.KNN(q, ds.N) {
			if nb.ID == 5 {
				t.Fatal("deleted point still reachable through the rebuilt layout")
			}
		}
	}
}

// TestBatchRangeAllocationBudget pins the fused range path's allocation
// budget the way alloc_test.go pins the others: at workers=1 a batch costs
// the outer result slice, the worker closure's capture record, and one
// exact-size result copy per non-empty query.
func TestBatchRangeAllocationBudget(t *testing.T) {
	idx, q := withAllocFixture(t)
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	queries := make([][]float64, 8)
	for i := range queries {
		queries[i] = q
	}
	const r = 0.4
	for _, res := range idx.BatchRange(queries, r, 1) { // warm pools, grow rangeBufs
		if len(res) == 0 {
			t.Fatal("fixture radius matches nothing; pick a radius with hits")
		}
	}
	budget := float64(2 + len(queries))
	if n := testing.AllocsPerRun(50, func() { idx.BatchRange(queries, r, 1) }); n != budget {
		t.Fatalf("BatchRange(workers=1) allocated %.1f objects per batch, budget is exactly %.0f", n, budget)
	}
}
