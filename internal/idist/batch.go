package idist

import (
	"time"

	"mmdr/internal/index"
	"mmdr/internal/pool"
)

// Batch queries fan a workload of independent searches across a worker
// pool. The search read path touches the B⁺-tree, the partition geometry,
// and the stored reduced coordinates — all immutable after Build — plus the
// attached cost Sink, which is the one piece of shared mutable state. With
// workers > 1 the Sink must therefore be goroutine-safe (AtomicCounter) or
// nil; a plain Counter is only safe at workers <= 1.
//
// Queries are split into contiguous chunks, one worker each. With the SoA
// layout materialized, every worker runs the FUSED path: its chunk is cut
// into tiles of batchTile queries and each partition scan serves a whole
// tile from one pass over the partition's block (see fused.go) — the
// single-core win of batching. After a dynamic Insert/Delete (layout
// dropped) workers fall back to a per-query loop over a shared
// queryScratch. Either way a batch allocates only the result slices.
//
// Results land at the same position as their query, so out[i] is exactly
// what the corresponding single-query call would have returned — bit for
// bit, at every worker count, on both paths.

// BatchKNN answers len(queries) KNN queries using at most workers
// goroutines (workers <= 0 selects runtime.NumCPU()).
//
//mmdr:hotpath budget pinned by alloc_test: 2 + one result slice per query
func (idx *Index) BatchKNN(queries [][]float64, k, workers int) [][]index.Neighbor {
	out := make([][]index.Neighbor, len(queries))
	ops := idx.ops
	fused := idx.layout != nil && k > 0
	start := time.Now()
	pool.Chunks(pool.Workers(workers), len(queries), func(w, lo, hi int) {
		if fused {
			bs := idx.getBatchScratch()
			defer idx.putBatchScratch(bs)
			for t := lo; t < hi; t += batchTile {
				te := t + batchTile
				if te > hi {
					te = hi
				}
				if ops == nil {
					idx.knnTile(bs, queries[t:te], k, out[t:te])
					continue
				}
				// The fused pass interleaves the tile's queries, so per-query
				// latency is attributed as the tile average — counts stay one
				// record per query, in the worker's own shard cell.
				ts := time.Now()
				idx.knnTile(bs, queries[t:te], k, out[t:te])
				per := time.Since(ts) / time.Duration(te-t)
				for i := t; i < te; i++ {
					if ops.knn.RecordShard(w, per) {
						idx.captureSlowKNN(queries[i], k, per)
					}
				}
			}
			return
		}
		sc := idx.getScratch()
		defer idx.putScratch(sc)
		if ops == nil {
			for i := lo; i < hi; i++ {
				out[i] = idx.knnInto(sc, queries[i], k, 0, nil)
			}
			return
		}
		// Each worker records into its own shard cell, so per-query
		// instrumentation adds no cross-worker contention.
		for i := lo; i < hi; i++ {
			qs := time.Now()
			out[i] = idx.knnInto(sc, queries[i], k, 0, nil)
			elapsed := time.Since(qs)
			if ops.knn.RecordShard(w, elapsed) {
				idx.captureSlowKNN(queries[i], k, elapsed)
			}
		}
	})
	if ops != nil {
		ops.batchKNN.Record(time.Since(start))
	}
	return out
}

// BatchKNNTrace is BatchKNN with a per-query structured explain: traces[i]
// records the search rounds and partition scans of queries[i].
//
//mmdr:hotpath
func (idx *Index) BatchKNNTrace(queries [][]float64, k, workers int) ([][]index.Neighbor, []*QueryTrace) {
	out := make([][]index.Neighbor, len(queries))
	traces := make([]*QueryTrace, len(queries))
	pool.Chunks(pool.Workers(workers), len(queries), func(_, lo, hi int) {
		sc := idx.getScratch()
		defer idx.putScratch(sc)
		for i := lo; i < hi; i++ {
			traces[i] = &QueryTrace{K: k}
			out[i] = idx.knnInto(sc, queries[i], k, 0, traces[i])
		}
	})
	return out, traces
}

// BatchRange answers len(queries) range queries of radius r using at most
// workers goroutines (workers <= 0 selects runtime.NumCPU()).
//
//mmdr:hotpath
func (idx *Index) BatchRange(queries [][]float64, r float64, workers int) [][]index.Neighbor {
	out := make([][]index.Neighbor, len(queries))
	ops := idx.ops
	fused := idx.layout != nil
	start := time.Now()
	pool.Chunks(pool.Workers(workers), len(queries), func(w, lo, hi int) {
		if fused {
			bs := idx.getBatchScratch()
			defer idx.putBatchScratch(bs)
			for t := lo; t < hi; t += batchTile {
				te := t + batchTile
				if te > hi {
					te = hi
				}
				if ops == nil {
					idx.rangeTile(bs, queries[t:te], r, out[t:te])
					continue
				}
				ts := time.Now()
				idx.rangeTile(bs, queries[t:te], r, out[t:te])
				per := time.Since(ts) / time.Duration(te-t)
				for i := t; i < te; i++ {
					ops.rng.RecordShard(w, per)
				}
			}
			return
		}
		sc := idx.getScratch()
		defer idx.putScratch(sc)
		if ops == nil {
			for i := lo; i < hi; i++ {
				out[i] = idx.rangeInto(sc, queries[i], r)
			}
			return
		}
		for i := lo; i < hi; i++ {
			qs := time.Now()
			out[i] = idx.rangeInto(sc, queries[i], r)
			ops.rng.RecordShard(w, time.Since(qs))
		}
	})
	if ops != nil {
		ops.batchRange.Record(time.Since(start))
	}
	return out
}
