package idist

import (
	"time"

	"mmdr/internal/metrics"
)

// Operation names under which the index records into an attached
// metrics.Registry. Shared with the root package's exposition and the bench
// JSON emitters, so dashboards see one stable vocabulary.
const (
	opKNN         = "knn"
	opKNNApprox   = "knn_approx"
	opKNNQuant    = "knn_quantized"
	opRange       = "range"
	opInsert      = "insert"
	opDelete      = "delete"
	opBatchKNN    = "batch_knn"
	opBatchRange  = "batch_range"
	opBatchKNNQnt = "batch_knn_quantized"

	gaugePoints     = "index_points"
	gaugePartitions = "index_partitions"
)

// opSet caches the resolved instrument pointers so the hot path never
// touches the registry's name map. A nil *opSet (the default) keeps every
// query on the uninstrumented fast path: one nil check, nothing else.
type opSet struct {
	reg           *metrics.Registry
	knn           *metrics.Op
	approx        *metrics.Op
	quantKNN      *metrics.Op
	rng           *metrics.Op
	ins           *metrics.Op
	del           *metrics.Op
	batchKNN      *metrics.Op
	batchRange    *metrics.Op
	batchQuantKNN *metrics.Op
	points        *metrics.Gauge
	partitions    *metrics.Gauge
}

func newOpSet(reg *metrics.Registry) *opSet {
	return &opSet{
		reg:           reg,
		knn:           reg.Op(opKNN),
		approx:        reg.Op(opKNNApprox),
		quantKNN:      reg.Op(opKNNQuant),
		rng:           reg.Op(opRange),
		ins:           reg.Op(opInsert),
		del:           reg.Op(opDelete),
		batchKNN:      reg.Op(opBatchKNN),
		batchRange:    reg.Op(opBatchRange),
		batchQuantKNN: reg.Op(opBatchKNNQnt),
		points:        reg.Gauge(gaugePoints),
		partitions:    reg.Gauge(gaugePartitions),
	}
}

// SetMetrics attaches a runtime-metrics registry: every subsequent query,
// insert and delete records its latency, and the structural gauges are
// seeded from the current index state. Passing nil detaches (queries return
// to the uninstrumented path). Attachment is not synchronized with running
// queries — attach before serving, like the counter Sink.
func (idx *Index) SetMetrics(reg *metrics.Registry) {
	if reg == nil {
		idx.ops = nil
		return
	}
	ops := newOpSet(reg)
	ops.points.Set(int64(idx.tree.Len()))
	ops.partitions.Set(int64(len(idx.parts)))
	idx.ops = ops
}

// Metrics returns the attached registry (nil when detached).
func (idx *Index) Metrics() *metrics.Registry {
	if idx.ops == nil {
		return nil
	}
	return idx.ops.reg
}

// captureSlowKNN runs off the hot path, claimed at most once per rate-limit
// gap: re-run the query through the tracing path and file the structured
// explain in the slow-query log. The re-run goes through KNNTrace, which
// does not record, so capture cannot recurse.
func (idx *Index) captureSlowKNN(q []float64, k int, d time.Duration) {
	_, tr := idx.KNNTrace(q, k)
	qc := make([]float64, len(q))
	copy(qc, q)
	idx.ops.reg.Slow().Add(metrics.SlowQuery{
		Op:          opKNN,
		At:          time.Now(),
		LatencyUS:   float64(d) / 1e3,
		ThresholdUS: float64(idx.ops.knn.SlowThreshold()) / 1e3,
		K:           k,
		Query:       qc,
		Trace:       tr,
	})
}
