package idist

import (
	"math"
	"math/rand"
	"testing"

	"mmdr/internal/index"
)

func TestInsertIntoSubspace(t *testing.T) {
	ds, red := testSetup(t, 500, 10, 2, 131)
	idx, err := Build(ds, red, Options{})
	if err != nil {
		t.Fatal(err)
	}
	before := idx.Tree().Len()

	// Insert a point that is a small perturbation of an existing member:
	// it must join that member's subspace.
	src := red.Subspaces[0].Members[0]
	p := make([]float64, ds.Dim)
	copy(p, ds.Point(src))
	for j := range p {
		p[j] += 1e-4
	}
	id, err := idx.Insert(p)
	if err != nil {
		t.Fatal(err)
	}
	if id != ds.N-1 {
		t.Fatalf("id = %d, want %d", id, ds.N-1)
	}
	if idx.Tree().Len() != before+1 {
		t.Fatalf("tree len %d, want %d", idx.Tree().Len(), before+1)
	}
	if idx.partOf[id] < 0 || int(idx.partOf[id]) >= len(red.Subspaces) {
		t.Fatalf("inserted point landed in partition %d, want a subspace", idx.partOf[id])
	}
	// Structural invariants still hold after insertion.
	if err := red.Validate(ds.N); err != nil {
		t.Fatal(err)
	}
	// The new point is findable: 1-NN of p should be p itself (dist ~0).
	res := idx.KNN(p, 1)
	if len(res) != 1 || res[0].ID != id || res[0].Dist > 1e-3 {
		t.Fatalf("1-NN after insert = %+v", res)
	}
}

func TestInsertOutlier(t *testing.T) {
	ds, red := testSetup(t, 500, 10, 2, 132)
	idx, err := Build(ds, red, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// A point far from every cluster must become an outlier.
	p := make([]float64, ds.Dim)
	for j := range p {
		p[j] = 40
	}
	id, err := idx.Insert(p)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, o := range red.Outliers {
		if o == id {
			found = true
		}
	}
	if !found {
		t.Fatal("far point not recorded as outlier")
	}
	res := idx.KNN(p, 1)
	if len(res) != 1 || res[0].ID != id || res[0].Dist > 1e-9 {
		t.Fatalf("1-NN of inserted outlier = %+v", res)
	}
}

func TestInsertDimensionMismatch(t *testing.T) {
	ds, red := testSetup(t, 300, 8, 2, 133)
	idx, err := Build(ds, red, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := idx.Insert(make([]float64, 3)); err == nil {
		t.Fatal("expected dimension error")
	}
}

// After a batch of insertions, iDistance must still agree with a fresh
// sequential scan over the (mutated) reduced representation.
func TestInsertBatchConsistency(t *testing.T) {
	ds, red := testSetup(t, 600, 10, 3, 134)
	idx, err := Build(ds, red, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(135))
	for i := 0; i < 60; i++ {
		src := ds.Point(rng.Intn(ds.N))
		p := make([]float64, ds.Dim)
		copy(p, src)
		for j := range p {
			p[j] += rng.NormFloat64() * 0.002
		}
		if _, err := idx.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	scan := index.NewSeqScan(ds, red, nil)
	for trial := 0; trial < 10; trial++ {
		q := ds.Point(rng.Intn(ds.N))
		got := idx.KNN(q, 10)
		want := scan.KNN(q, 10)
		for i := range want {
			if math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
				t.Fatalf("trial %d rank %d: %v vs %v", trial, i, got[i].Dist, want[i].Dist)
			}
		}
	}
}

func TestInsertCreatesOutlierPartition(t *testing.T) {
	// Build from a reduction with no outliers, then insert a far point.
	ds, red := testSetup(t, 400, 8, 2, 136)
	red.Outliers = nil // force: no outlier partition at build time
	// Rebuild member-only reduction: drop any points that were outliers by
	// reassigning — simplest is to validate only the insert path.
	idx, err := Build(ds, red, Options{})
	if err != nil {
		t.Fatal(err)
	}
	partsBefore := len(idx.parts)
	p := make([]float64, ds.Dim)
	for j := range p {
		p[j] = -35
	}
	id, err := idx.Insert(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx.parts) != partsBefore+1 {
		t.Fatalf("outlier partition not created: %d parts", len(idx.parts))
	}
	res := idx.KNN(p, 1)
	if len(res) == 0 || res[0].ID != id {
		t.Fatalf("inserted outlier not found: %+v", res)
	}
}
