package idist

import (
	"math"
	"time"

	"mmdr/internal/index"
	"mmdr/internal/matrix"
	"mmdr/internal/pool"
)

// Fused quantized batch search: the tile machinery of fused.go — lockstep
// radius schedule, elementary-interval decomposition, one pass over each
// partition's storage per tile — applied to the quantized scan path. Each
// code row is loaded once per tile and evaluated against every query active
// in its interval (m table loads per pair), feeding the per-query estimate
// reservoirs; when a query's budget-th estimate falls inside its sphere or
// its scan quota is spent the query finishes, and its surviving candidates
// are re-ranked exactly.
//
// Equivalence with the solo quantized path follows the same argument as the
// exact fused path: per query, rows arrive in ascending global position —
// the solo visit order — with the same lazily built table and the same
// bound-guarded early abandoning, so the estimate reservoirs, the candidate
// sets and the re-ranked answers are bit-identical to a sequential
// KNNQuantized loop at every worker count and tile shape.

// ensureQuant sizes the quantized tile state (estimate reservoirs sized by
// Reset, the ADC table tile, build flags) for the index's current
// partitions and codebooks. Called by the quantized batch path after the
// shared ensure().
func (bs *batchScratch) ensureQuant() {
	idx := bs.idx
	nP := len(idx.parts)
	if cap(bs.qtabOff) < nP+1 {
		bs.qtabOff = make([]int, nP+1)
	}
	bs.qtabOff = bs.qtabOff[:nP+1]
	set := idx.quant
	off := 0
	for pi := 0; pi < nP; pi++ {
		bs.qtabOff[pi] = off
		if set != nil && pi < len(set.Books) && set.Books[pi] != nil {
			off += set.Books[pi].TableLen() * batchTile
		}
	}
	bs.qtabOff[nP] = off
	if cap(bs.qtab) < off {
		bs.qtab = make([]float64, off)
	}
	bs.qtab = bs.qtab[:off]
	need := nP * batchTile
	if cap(bs.qbuilt) < need {
		bs.qbuilt = make([]bool, need)
	}
	bs.qbuilt = bs.qbuilt[:need]
	if bs.qrows == nil {
		bs.qrows = make([]int, batchTile)
	}
}

// BatchKNNQuantized answers len(queries) quantized KNN queries using at
// most workers goroutines (workers <= 0 selects runtime.NumCPU()). Same
// quantizer contract as KNNQuantized, including the transparent exact
// fallback while the layout is dropped; results are bit-identical to a
// sequential KNNQuantized loop at every worker count.
//
//mmdr:hotpath budget pinned by alloc_test: 2 + one result slice per query
func (idx *Index) BatchKNNQuantized(queries [][]float64, k, budget, workers int) ([][]index.Neighbor, error) {
	if idx.quant == nil {
		return nil, ErrNoQuantizer
	}
	if k <= 0 {
		return make([][]index.Neighbor, len(queries)), nil
	}
	if idx.layout == nil || idx.layout.codes == nil {
		return idx.BatchKNN(queries, k, workers), nil
	}
	if budget < k {
		budget = k
	}
	out := make([][]index.Neighbor, len(queries))
	ops := idx.ops
	start := time.Now()
	pool.Chunks(pool.Workers(workers), len(queries), func(w, lo, hi int) {
		bs := idx.getBatchScratch()
		defer idx.putBatchScratch(bs)
		bs.ensureQuant()
		for t := lo; t < hi; t += batchTile {
			te := t + batchTile
			if te > hi {
				te = hi
			}
			if ops == nil {
				idx.quantTile(bs, queries[t:te], k, budget, out[t:te])
				continue
			}
			ts := time.Now()
			idx.quantTile(bs, queries[t:te], k, budget, out[t:te])
			per := time.Since(ts) / time.Duration(te-t)
			for i := t; i < te; i++ {
				ops.quantKNN.RecordShard(w, per)
			}
		}
	})
	if ops != nil {
		ops.batchQuantKNN.Record(time.Since(start))
	}
	return out, nil
}

// quantTile answers one tile of quantized KNN queries with fused partition
// scans. len(queries) <= batchTile, k > 0, layout + codes materialized.
//
//mmdr:hotpath fused quantized tile; allocates only the per-query results
func (idx *Index) quantTile(bs *batchScratch, queries [][]float64, k, budget int, out [][]index.Neighbor) {
	nq := len(queries)
	// Same reservoir clamp as the solo path: budget >= n never fills the
	// buffer, preserving the bitwise-exact degenerate point.
	resK := budget
	if nRows := idx.layout.partStart[len(idx.parts)]; resK > nRows {
		resK = nRows
	}
	for j := 0; j < nq; j++ {
		bs.ests[j].Reset(resK)
		bs.done[j] = false
		bs.qrows[j] = 0
	}
	for i := range bs.qbuilt {
		bs.qbuilt[i] = false
	}
	idx.primeTile(bs, queries)

	quota := budget * quantScanFactor
	if quota/quantScanFactor != budget { // overflow: quota can never bind
		quota = int(^uint(0) >> 1)
	}
	step := idx.deltaR / quantDeltaDiv
	r := step
	for {
		for j := 0; j < nq; j++ {
			bs.allDone[j] = true
		}
		for pi := range idx.parts {
			idx.fusedScanQuant(bs, pi, nq, r, quota)
		}
		// Same round-boundary stop disjunction as the solo path: exactness
		// proof, spent scan quota, or partitions exhausted. The per-round row
		// counts match knnQuantizedInto's exactly (identical annuli), so the
		// quota cuts the scan at the same round — the scanned sets, and hence
		// the answers, stay bitwise solo-identical.
		finished := true
		for j := 0; j < nq; j++ {
			if bs.done[j] {
				continue
			}
			if (bs.ests[j].Len() >= budget && bs.ests[j].Kth() <= r*r) || bs.qrows[j] >= quota || bs.allDone[j] {
				bs.done[j] = true
			} else {
				finished = false
			}
		}
		if finished {
			break
		}
		if step *= quantStepRatio; step > idx.deltaR*quantStepCap {
			step = idx.deltaR * quantStepCap
		}
		r += step
	}

	// Exact re-rank, per query, over its surviving candidates — the same
	// kernels and bound discipline as the solo rerank, with the query-side
	// vectors read from the projection tile (bitwise the solo projections).
	lay := idx.layout
	for j := 0; j < nq; j++ {
		top := bs.tops[j]
		top.Reset(k)
		cands := bs.ests[j].Items()
		for _, nb := range cands {
			p := nb.ID
			pi := 0
			for lay.partStart[pi+1] <= p {
				pi++
			}
			d := lay.dims[pi]
			row := p - lay.partStart[pi]
			v := lay.vecs[pi][row*d : (row+1)*d : (row+1)*d]
			tile := bs.projBuf[bs.projOff[pi]:]
			x := tile[j*d : (j+1)*d : (j+1)*d]
			var dSq float64
			if d >= matrix.EarlyAbandonMinLen {
				dSq = matrix.SqDistEarlyAbandon(x, v, top.Kth())
			} else {
				dSq = matrix.SqDist(x, v)
			}
			top.Add(int(lay.rids[p]), dSq)
		}
		if idx.counter != nil && len(cands) > 0 {
			idx.counter.CountDistanceOps(int64(len(cands)))
		}
		res := top.Sorted()
		for i := range res {
			res[i].Dist = math.Sqrt(res[i].Dist)
		}
		out[j] = res
	}
}

// fusedScanQuant advances every unfinished tile query's annulus in
// partition pi by one radius step — the identical interval bookkeeping of
// fusedScanKNN — and evaluates the union of new row intervals in one pass
// over the partition's code block.
//
//mmdr:hotpath
func (idx *Index) fusedScanQuant(bs *batchScratch, pi, nq int, r float64, quota int) {
	lay := idx.layout
	p := &idx.parts[pi]
	ps, pe := lay.partStart[pi], lay.partStart[pi+1]
	keys := lay.keys[ps:pe]
	base := float64(pi) * idx.c

	nseg := 0
	for j := 0; j < nq; j++ {
		si := pi*batchTile + j
		// The quota check mirrors the solo path's partition-boundary cut:
		// qrows[j] holds the same cumulative count at the same partition
		// walk position, so both paths stop the scan at the same row.
		if bs.done[j] || bs.exhausted[si] || bs.qrows[j] >= quota {
			continue
		}
		dist := bs.dist[si]
		lo := dist - r
		if lo < 0 {
			lo = 0
		}
		hi := dist + r
		if hi > p.maxRadius {
			hi = p.maxRadius
		}
		if lo > hi {
			if dist-r > p.maxRadius {
				bs.allDone[j] = false
			}
			continue
		}
		if bs.scanLo[si] > bs.scanHi[si] {
			a := idx.searchKeys(keys, base+lo, false)
			b := a + idx.searchKeys(keys[a:], base+hi, true)
			nseg = bs.addSeg(nseg, a, b, j)
			bs.qrows[j] += b - a
			bs.rowLo[si], bs.rowHi[si] = a, b
			bs.scanLo[si], bs.scanHi[si] = lo, hi
		} else {
			if lo < bs.scanLo[si] {
				a := idx.gallopDown(keys, bs.rowLo[si], base+lo, false)
				nseg = bs.addSeg(nseg, a, bs.rowLo[si], j)
				bs.qrows[j] += bs.rowLo[si] - a
				bs.rowLo[si] = a
				bs.scanLo[si] = lo
			}
			if hi > bs.scanHi[si] {
				b := idx.gallopUp(keys, bs.rowHi[si], base+hi, true)
				nseg = bs.addSeg(nseg, bs.rowHi[si], b, j)
				bs.qrows[j] += b - bs.rowHi[si]
				bs.rowHi[si] = b
				bs.scanHi[si] = hi
			}
		}
		if bs.scanLo[si] <= 0 && bs.scanHi[si] >= p.maxRadius {
			bs.exhausted[si] = true
		} else {
			bs.allDone[j] = false
		}
	}
	if nseg == 0 {
		return
	}
	idx.evalSegmentsQuant(bs, pi, ps, nseg)
}

// evalSegmentsQuant streams the elementary intervals of the collected
// segments over partition pi's code block: each code row is read once and
// its ADC estimate added to every active query's reservoir. Partitions without a
// code block fall back to exact per-query evaluation (the estimates are
// then exact). Accounting matches evalSegments: one DistanceOp per
// query-row pair, each touched leaf charged once per scan.
//
//mmdr:hotpath
func (idx *Index) evalSegmentsQuant(bs *batchScratch, pi, ps, nseg int) {
	lay := idx.layout
	codes := lay.codes[pi]
	d := lay.dims[pi]
	block := lay.vecs[pi]
	tile := bs.projBuf[bs.projOff[pi]:]

	// Lazily build the ADC tables of the queries contributing segments —
	// once per (query, partition) per tile search, like the solo path's
	// first-scan build.
	if codes != nil {
		cb := idx.quant.Books[pi]
		tl := cb.TableLen()
		for s := 0; s < nseg; s++ {
			j := int(bs.segQ[s])
			bi := pi*batchTile + j
			if !bs.qbuilt[bi] {
				cb.ADCTableInto(tile[j*d:(j+1)*d], bs.qtab[bs.qtabOff[pi]+j*tl:bs.qtabOff[pi]+(j+1)*tl])
				bs.qbuilt[bi] = true
			}
		}
	}

	nbp := 0
	for s := 0; s < nseg; s++ {
		nbp = insertBreakpoint(bs.bp, nbp, bs.segA[s])
		nbp = insertBreakpoint(bs.bp, nbp, bs.segB[s])
	}
	distOps := int64(0)
	pages := int64(0)
	lastLeaf := int32(-1)
	for bi := 0; bi+1 < nbp; bi++ {
		e0, e1 := bs.bp[bi], bs.bp[bi+1]
		na := 0
		for s := 0; s < nseg; s++ {
			if bs.segA[s] <= e0 && bs.segB[s] >= e1 {
				bs.act[na] = bs.segQ[s]
				na++
			}
		}
		if na == 0 {
			continue
		}
		if idx.counter != nil {
			l0, l1 := lay.leafOf[ps+e0], lay.leafOf[ps+e1-1]
			if l0 <= lastLeaf {
				l0 = lastLeaf + 1
			}
			if l1 >= l0 {
				pages += int64(l1 - l0 + 1)
				lastLeaf = l1
			}
		}
		act := bs.act[:na]
		if codes != nil {
			// Row-outer: one code row serves every active query — the
			// row-sharing win of the fused pass at code granularity. Bounds
			// are cached per query and refreshed only after an accepted Add
			// (the reservoir bound moves only on compaction, and Add
			// re-checks, so the reservoir evolution is unchanged).
			cb := idx.quant.Books[pi]
			m, kc, tl := cb.M, cb.K, cb.TableLen()
			tab := bs.qtab[bs.qtabOff[pi]:]
			for a := 0; a < na; a++ {
				bs.bounds[a] = bs.ests[int(act[a])].Kth()
			}
			off := e0 * m
			for p := e0; p < e1; p++ {
				code := codes[off : off+m : off+m]
				off += m
				gp := ps + p
				for a := 0; a < na; a++ {
					j := int(act[a])
					if s := matrix.ADCSumBound(tab[j*tl:(j+1)*tl], kc, code, bs.bounds[a]); s < bs.bounds[a] {
						est := bs.ests[j]
						est.Add(gp, s)
						bs.bounds[a] = est.Kth()
					}
				}
			}
		} else {
			// Uncoded partition (created after training): exact estimates,
			// query-outer like evalInterval.
			abandon := d >= matrix.EarlyAbandonMinLen
			for a := 0; a < na; a++ {
				j := int(act[a])
				x := tile[j*d : (j+1)*d : (j+1)*d]
				est := bs.ests[j]
				row := e0 * d
				for p := e0; p < e1; p++ {
					v := block[row : row+d : row+d]
					row += d
					if abandon {
						est.Add(ps+p, matrix.SqDistEarlyAbandon(x, v, est.Kth()))
					} else {
						est.Add(ps+p, matrix.SqDist(x, v))
					}
				}
			}
		}
		distOps += int64(na) * int64(e1-e0)
	}
	if idx.counter != nil {
		idx.counter.CountDistanceOps(distOps)
		idx.counter.CountPageReads(pages)
		idx.counter.CountNodeAccesses(pages)
	}
}
