package idist

import (
	"sync"
	"testing"

	"mmdr/internal/quant"
)

// Benchmarks for the quantized scan path against the exact fused batch on
// the same fixture as fusedbench_test.go. BENCH_approx.json carries the
// paper-scale (n=100k) frontier; these isolate the kernel costs at a size
// that keeps fixture construction fast.

var (
	qbOnce sync.Once
	qbErr  error
)

func quantBenchSetup() error {
	if err := fusedBenchSetup(); err != nil {
		return err
	}
	qbOnce.Do(func() {
		set, err := quant.TrainSet(fbDS, fbRed, quant.Config{Blocks: 4, Bits: 6, Seed: 11})
		if err != nil {
			qbErr = err
			return
		}
		qbErr = fbIdx.SetQuantizer(set)
	})
	return qbErr
}

func BenchmarkKNNQuantized(b *testing.B) {
	if err := quantBenchSetup(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range fbQueries {
			if _, err := fbIdx.KNNQuantized(q, 10, 128); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkBatchKNNQuantized(b *testing.B) {
	if err := quantBenchSetup(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fbIdx.BatchKNNQuantized(fbQueries, 10, 128, 1); err != nil {
			b.Fatal(err)
		}
	}
}
