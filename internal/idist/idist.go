// Package idist implements the paper's §5: the extended iDistance index.
//
// iDistance [Yu, Ooi, Tan, Jagadish — VLDB'01] maps every point to a single
// dimension: y = i·c + dist(P, O_i), where O_i is the reference point of the
// partition holding P and c a stretching constant that range-partitions the
// key space per partition. The single-dimensional keys live in a B⁺-tree.
//
// The extension indexes points from *different axis systems* in one tree:
// each MMDR/LDR subspace is a partition whose reference point is its
// centroid (which projects to the origin of its local coordinate system),
// and the outlier set is one extra partition in the original space. KNN
// search proceeds by iteratively enlarging a query sphere and, per
// partition, scanning only the key annulus that the sphere can reach — the
// three containment cases of Figure 6 — until the k-th candidate distance
// drops below the search radius.
package idist

import (
	"fmt"
	"math"
	"sync"
	"time"

	"mmdr/internal/btree"
	"mmdr/internal/dataset"
	"mmdr/internal/index"
	"mmdr/internal/iostat"
	"mmdr/internal/matrix"
	"mmdr/internal/metrics"
	"mmdr/internal/obs"
	"mmdr/internal/quant"
	"mmdr/internal/reduction"
	"mmdr/internal/stats"
)

// Options configures index construction.
type Options struct {
	// PageSize for the underlying B⁺-tree (0 = iostat.PageSize).
	PageSize int
	// C is the key-space stretching constant; 0 derives it from the
	// largest partition radius.
	C float64
	// DeltaR is the radius-enlargement step of the KNN search; 0 derives
	// it as a fraction of the average partition radius.
	DeltaR float64
	// Counter accumulates page and distance costs (may be nil).
	Counter iostat.Sink
	// Tracer receives a build-index span covering bulk-load (may be nil).
	Tracer obs.Tracer
	// Metrics, when non-nil, receives per-operation latency histograms and
	// structural gauges (see SetMetrics). The record path is allocation-free,
	// so attaching it does not disturb the query alloc budgets.
	Metrics *metrics.Registry
	// Quant, when non-nil, attaches a trained product-quantizer set: the
	// layout rebuild additionally materializes per-partition code blocks and
	// KNNQuantized/BatchKNNQuantized become available. The set must align
	// with the partition order (subspaces first, outlier partition last) —
	// quant.TrainSet over the same reduction produces exactly that.
	Quant *quant.Set
}

// partition is one key-range section of the single-dimensional space:
// either a reduced subspace or the outlier set.
type partition struct {
	sub       *reduction.Subspace // nil for the outlier partition
	centroid  []float64           // original-space reference point (outliers)
	maxRadius float64             // data-sphere radius in the partition's metric
}

// Index is the extended iDistance structure: one B⁺-tree plus the two
// auxiliary arrays of §5 (partition geometry for searching; cluster shape
// for dynamic insertion lives on the Subspace values themselves).
type Index struct {
	ds      *dataset.Dataset
	red     *reduction.Result
	tree    *btree.Tree
	parts   []partition
	c       float64
	deltaR  float64
	counter iostat.Sink

	// Per-rid location: which partition and which member slot, so candidate
	// distances can be computed from stored reduced coordinates.
	partOf []int32
	slotOf []int32

	// layout is the SoA mirror of the tree's leaf level (see layout.go):
	// non-nil when materialized, nil after a structural mutation. Scans
	// dispatch on it — block runs when present, per-entry tree visits
	// otherwise — with bitwise-identical answers either way.
	layout *soaLayout

	// quant is the attached product-quantizer set (nil = exact-only index).
	// The layout rebuild derives per-partition code blocks from it; the
	// quantized query paths require both quant and layout to be present.
	quant *quant.Set

	// quantPool recycles quantScratch values (ADC tables, estimate heaps) so
	// quantized queries allocate only their result slices.
	quantPool sync.Pool

	// scratchPool recycles queryScratch values so KNN/Range allocate only
	// their returned neighbor slices.
	scratchPool sync.Pool

	// batchPool recycles batchScratch values (fused tile state) so batch
	// queries allocate only their result slices.
	batchPool sync.Pool

	// Insert scratch. Insert mutates the tree and is not concurrency-safe,
	// so plain fields (lazily sized) suffice.
	insDiff []float64
	insProj []float64

	// ops holds the attached runtime-metrics instruments; nil = detached,
	// and every operation skips instrumentation on a single nil check.
	ops *opSet
}

// Build constructs the index over a reduction of ds.
func Build(ds *dataset.Dataset, red *reduction.Result, opts Options) (*Index, error) {
	if ds.N == 0 {
		return nil, fmt.Errorf("idist: empty dataset")
	}
	obs.Begin(opts.Tracer, obs.PhaseBuildIndex)
	obs.Attr(opts.Tracer, "points", float64(ds.N))
	defer obs.End(opts.Tracer)
	nParts := len(red.Subspaces)
	hasOutliers := len(red.Outliers) > 0
	if hasOutliers {
		nParts++
	}
	if nParts == 0 {
		return nil, fmt.Errorf("idist: reduction has no partitions")
	}

	idx := &Index{
		ds:      ds,
		red:     red,
		counter: opts.Counter,
		partOf:  make([]int32, ds.N),
		slotOf:  make([]int32, ds.N),
		parts:   make([]partition, 0, nParts),
	}
	for i := range idx.partOf {
		idx.partOf[i] = -1
	}

	// Partition geometry. Subspace partitions measure distance in their
	// reduced coordinates (centroid projects to the origin); the outlier
	// partition measures in the original space from the outlier centroid.
	var weightedDim, members float64
	for _, s := range red.Subspaces {
		// Builders populate the kernel caches already; reductions arriving
		// from older snapshots or hand-built tests may not have them yet.
		s.EnsureKernels()
		idx.parts = append(idx.parts, partition{sub: s, maxRadius: s.MaxRadius})
		weightedDim += float64(s.Dr) * float64(len(s.Members))
		members += float64(len(s.Members))
	}
	var outCentroid []float64
	if hasOutliers {
		outPts := ds.Subset(red.Outliers)
		mean, err := stats.Mean(outPts.Data, ds.Dim)
		if err != nil {
			return nil, err
		}
		outCentroid = mean
		var r float64
		for i := 0; i < outPts.N; i++ {
			if d := matrix.Dist(outPts.Point(i), mean); d > r {
				r = d
			}
		}
		idx.parts = append(idx.parts, partition{centroid: mean, maxRadius: r})
		weightedDim += float64(ds.Dim) * float64(len(red.Outliers))
		members += float64(len(red.Outliers))
	}

	// Stretching constant: beyond every partition's radius so ranges never
	// collide.
	c := opts.C
	if c <= 0 {
		var maxR float64
		for _, p := range idx.parts {
			if p.maxRadius > maxR {
				maxR = p.maxRadius
			}
		}
		c = maxR*1.05 + 1e-9
	}
	idx.c = c

	dr := opts.DeltaR
	if dr <= 0 {
		var sum float64
		for _, p := range idx.parts {
			sum += p.maxRadius
		}
		dr = sum / float64(len(idx.parts)) / 4
		if dr <= 0 {
			dr = c / 4
		}
	}
	idx.deltaR = dr

	// Leaf entries hold the key plus the reduced vector: size the tree's
	// fan-out by the member-weighted average dimensionality so page I/O
	// scales with d_r the way Figure 9 expects.
	avgDim := 1.0
	if members > 0 {
		avgDim = weightedDim / members
	}
	entry := 8 * (int(math.Ceil(avgDim)) + 2)
	idx.tree = btree.NewWithEntrySize(opts.PageSize, entry, opts.Counter)

	// Map all points to keys y = i*c + dist(P, O_i) and bulk-load the tree
	// bottom-up (construction over an existing dataset; dynamic Insert
	// serves later additions).
	entries := make([]btree.Entry, 0, ds.N)
	for pi, s := range red.Subspaces {
		for mi, id := range s.Members {
			key := float64(pi)*c + matrix.Norm2(s.MemberCoords(mi))
			entries = append(entries, btree.Entry{Key: key, RID: uint32(id)})
			idx.partOf[id] = int32(pi)
			idx.slotOf[id] = int32(mi)
		}
	}
	if hasOutliers {
		pi := len(red.Subspaces)
		for _, id := range red.Outliers {
			key := float64(pi)*c + matrix.Dist(ds.Point(id), outCentroid)
			entries = append(entries, btree.Entry{Key: key, RID: uint32(id)})
			idx.partOf[id] = int32(pi)
			idx.slotOf[id] = -1
		}
	}
	idx.tree.BulkLoad(entries, 0.9)
	if opts.Quant != nil {
		if err := idx.validateQuant(opts.Quant); err != nil {
			return nil, err
		}
		idx.quant = opts.Quant
	}
	idx.rebuildLayout()
	obs.Attr(opts.Tracer, "partitions", float64(len(idx.parts)))
	obs.Attr(opts.Tracer, "tree_height", float64(idx.tree.Height()))
	obs.Attr(opts.Tracer, "leaf_pages", float64(idx.tree.LeafPages()))
	if opts.Metrics != nil {
		idx.SetMetrics(opts.Metrics)
	}
	return idx, nil
}

// Name implements index.KNNIndex.
func (idx *Index) Name() string { return "iDistance" }

// validateQuant checks that a codebook set aligns with the index's current
// partitions: one book per partition, in partition order, each matching its
// partition's dimensionality.
func (idx *Index) validateQuant(set *quant.Set) error {
	if err := set.Validate(); err != nil {
		return err
	}
	if len(set.Books) != len(idx.parts) {
		return fmt.Errorf("idist: quantizer has %d codebooks for %d partitions", len(set.Books), len(idx.parts))
	}
	for pi, cb := range set.Books {
		want := idx.ds.Dim
		if s := idx.parts[pi].sub; s != nil {
			want = s.Dr
		}
		if cb.Dim != want {
			return fmt.Errorf("idist: codebook %d has dim %d, partition needs %d", pi, cb.Dim, want)
		}
	}
	return nil
}

// SetQuantizer attaches (or, with nil, detaches) a trained product-quantizer
// set and rebuilds the SoA layout so the per-partition code blocks are
// materialized. Same concurrency contract as RebuildLayout: not safe
// alongside queries (ConcurrentIndex callers hold the write lock).
func (idx *Index) SetQuantizer(set *quant.Set) error {
	if set == nil {
		idx.quant = nil
		idx.rebuildLayout()
		return nil
	}
	if err := idx.validateQuant(set); err != nil {
		return err
	}
	idx.quant = set
	idx.rebuildLayout()
	return nil
}

// Quantizer returns the attached codebook set (nil when the index is
// exact-only).
func (idx *Index) Quantizer() *quant.Set { return idx.quant }

// HasQuantizer reports whether the quantized query paths are available:
// a codebook set is attached and the layout (with its code blocks) is
// materialized.
func (idx *Index) HasQuantizer() bool {
	return idx.quant != nil && idx.layout != nil && idx.layout.codes != nil
}

// Tree exposes the underlying B⁺-tree (diagnostics, tests).
func (idx *Index) Tree() *btree.Tree { return idx.tree }

// C returns the stretching constant.
func (idx *Index) C() float64 { return idx.c }

// queryState tracks, per partition, the query's projection, its distance to
// the reference point, and the key annulus already scanned.
type queryState struct {
	proj      []float64 // reduced coords (subspaces) or nil (outliers)
	dist      float64   // dist(q_i, O_i) in the partition metric
	scanLo    float64   // already-scanned annulus [scanLo, scanHi]
	scanHi    float64
	exhausted bool
}

// KNN implements index.KNNIndex: the iterative radius-enlargement search,
// run to completion (exact over the reduced representation).
//
//mmdr:hotpath budget pinned by alloc_test: 1 alloc (the returned slice)
func (idx *Index) KNN(q []float64, k int) []index.Neighbor {
	if idx.ops == nil {
		return idx.knn(q, k, 0, nil)
	}
	start := time.Now()
	out := idx.knn(q, k, 0, nil)
	elapsed := time.Since(start)
	if idx.ops.knn.Record(elapsed) {
		idx.captureSlowKNN(q, k, elapsed)
	}
	return out
}

// KNNApprox bounds the radius enlargement to maxRounds iterations
// (0 = unbounded, i.e. exact). Early termination returns the best
// candidates found so far — the online-answering mode of iDistance, useful
// when a slightly lower precision is an acceptable trade for latency.
//
//mmdr:hotpath
func (idx *Index) KNNApprox(q []float64, k, maxRounds int) []index.Neighbor {
	if idx.ops == nil {
		return idx.knn(q, k, maxRounds, nil)
	}
	start := time.Now()
	out := idx.knn(q, k, maxRounds, nil)
	idx.ops.approx.Record(time.Since(start))
	return out
}

// PartitionProbe explains how the KNN search treated one partition.
type PartitionProbe struct {
	// ID is the partition's index (subspaces first, outlier partition last).
	ID int `json:"id"`
	// Dim is the dimensionality distances were computed in: the subspace's
	// reduced dimensionality, or the original dimensionality for outliers.
	Dim int `json:"dim"`
	// Outlier marks the original-space outlier partition.
	Outlier bool `json:"outlier,omitempty"`
	// DistToRef is dist(q_i, O_i) in the partition's metric.
	DistToRef float64 `json:"dist_to_ref"`
	// ScanLo/ScanHi bound the key annulus actually scanned (relative to the
	// partition's reference point). A partition the sphere never reached
	// reports ScanLo=0, ScanHi=-1 (ScanLo > ScanHi means never scanned; the
	// sentinel is finite so the trace always marshals to JSON).
	ScanLo float64 `json:"scan_lo"`
	ScanHi float64 `json:"scan_hi"`
	// Candidates counts points of this partition whose distance was computed.
	Candidates int `json:"candidates"`
	// Exhausted reports whether the whole partition sphere was covered.
	Exhausted bool `json:"exhausted"`
}

// QueryTrace is the structured explain of one KNN search: how many
// radius-enlargement rounds ran, how far the sphere grew, and what each
// partition contributed.
type QueryTrace struct {
	K             int              `json:"k"`
	Rounds        int              `json:"rounds"`
	FinalRadius   float64          `json:"final_radius"`
	Candidates    int              `json:"candidates"`
	LeavesScanned int              `json:"leaves_scanned"`
	Partitions    []PartitionProbe `json:"partitions"`
}

// KNNTrace runs an exact KNN search and additionally returns the structured
// explain of the work performed.
func (idx *Index) KNNTrace(q []float64, k int) ([]index.Neighbor, *QueryTrace) {
	tr := &QueryTrace{K: k}
	nb := idx.knn(q, k, 0, tr)
	return nb, tr
}

//mmdr:hotpath
func (idx *Index) knn(q []float64, k, maxRounds int, tr *QueryTrace) []index.Neighbor {
	if k <= 0 {
		return nil
	}
	sc := idx.getScratch()
	defer idx.putScratch(sc)
	return idx.knnInto(sc, q, k, maxRounds, tr)
}

// knnInto runs the radius-enlargement search using sc's buffers. All
// candidate bookkeeping is done in SQUARED distance — sqrt is monotone, so
// the k-th squared distance selects exactly the same neighbor set — and the
// single sqrt per result happens when materializing the returned slice,
// which is the only allocation of the search.
//
//mmdr:hotpath the trace branches only run under KNNTrace, off the budget
func (idx *Index) knnInto(sc *queryScratch, q []float64, k, maxRounds int, tr *QueryTrace) []index.Neighbor {
	if k <= 0 {
		return nil
	}
	sc.top.Reset(k)
	sc.q = q
	states := sc.states
	for pi := range idx.parts {
		p := &idx.parts[pi]
		st := &states[pi]
		if p.sub != nil {
			p.sub.ProjectInto(q, st.proj)
			st.dist = math.Sqrt(matrix.SqNorm(st.proj))
		} else {
			st.dist = matrix.Dist(q, p.centroid)
		}
		st.scanLo, st.scanHi = math.Inf(1), math.Inf(-1) // nothing scanned
		st.exhausted = false
	}
	if tr != nil {
		tr.Partitions = make([]PartitionProbe, len(idx.parts))
		for pi := range idx.parts {
			p := &idx.parts[pi]
			pr := &tr.Partitions[pi]
			pr.ID = pi
			pr.DistToRef = states[pi].dist
			if p.sub != nil {
				pr.Dim = p.sub.Dr
			} else {
				pr.Dim = idx.ds.Dim
				pr.Outlier = true
			}
		}
	}

	r := idx.deltaR
	rounds := 0
	for round := 1; ; round++ {
		rounds = round
		allDone := true
		for pi := range idx.parts {
			p := &idx.parts[pi]
			st := &states[pi]
			if st.exhausted {
				continue
			}
			// Figure 6 case analysis collapses into one annulus formula:
			// reachable key range = [max(0, dist-r), min(maxRadius, dist+r)].
			lo := st.dist - r
			if lo < 0 {
				lo = 0
			}
			hi := st.dist + r
			if hi > p.maxRadius {
				hi = p.maxRadius
			}
			if lo > hi {
				// Case 3: sphere does not reach this partition yet.
				if st.dist-r > p.maxRadius {
					allDone = false // may reach later
				}
				continue
			}
			// Scan only the not-yet-visited parts of the annulus. A grown
			// annulus re-scans with half-open bounds so keys sitting exactly
			// on a previous edge are visited exactly once.
			base := float64(pi) * idx.c
			if st.scanLo > st.scanHi {
				idx.scanRange(sc, pi, base+lo, base+hi, false, false, tr)
				st.scanLo, st.scanHi = lo, hi
			} else {
				if lo < st.scanLo {
					idx.scanRange(sc, pi, base+lo, base+st.scanLo, false, true, tr)
					st.scanLo = lo
				}
				if hi > st.scanHi {
					idx.scanRange(sc, pi, base+st.scanHi, base+hi, true, false, tr)
					st.scanHi = hi
				}
			}
			if st.scanLo <= 0 && st.scanHi >= p.maxRadius {
				st.exhausted = true
			} else {
				allDone = false
			}
		}
		// Stop when the k-th distance is within the sphere (every closer
		// point has been seen) or nothing remains to scan. Kth is squared,
		// so the sphere radius is compared squared too.
		if sc.top.Len() >= k && sc.top.Kth() <= r*r {
			break
		}
		if allDone {
			break
		}
		if maxRounds > 0 && round >= maxRounds {
			break
		}
		r += idx.deltaR
	}
	if tr != nil {
		tr.Rounds = rounds
		tr.FinalRadius = r
		for pi := range idx.parts {
			st := &states[pi]
			pr := &tr.Partitions[pi]
			if st.scanLo > st.scanHi {
				pr.ScanLo, pr.ScanHi = 0, -1 // never reached
			} else {
				pr.ScanLo, pr.ScanHi = st.scanLo, st.scanHi
			}
			pr.Exhausted = st.exhausted
		}
	}
	out := sc.top.Sorted()
	for i := range out {
		out[i].Dist = math.Sqrt(out[i].Dist)
	}
	return out
}

// scanRange visits tree keys in the [lo, hi] annulus slice of partition pi
// (edges excluded per the flags when re-scanning a grown annulus), feeding
// each candidate through the scratch's pre-bound visit callback: squared
// projected distance for subspace members, squared original-space distance
// for outliers.
//
//mmdr:hotpath
func (idx *Index) scanRange(sc *queryScratch, pi int, lo, hi float64, exLo, exHi bool, tr *QueryTrace) {
	sc.beginScan(pi)
	sc.cand = 0
	var leaves int
	if idx.layout != nil {
		// SoA fast path: two binary searches over the partition's key span
		// convert the annulus edges to a contiguous row interval, and the
		// candidate vectors stream straight from the row-major block — no
		// tree descent at all. Key compares charge the search probes, pages
		// charge each spanned leaf once (see scanBlockKNN).
		leaves = idx.scanBlockKNN(sc, pi, lo, hi, exLo, exHi)
	} else {
		leaves = idx.tree.RangeBetween(lo, hi, exLo, exHi, sc.visitKNN)
	}
	if tr != nil {
		tr.Candidates += sc.cand
		tr.LeavesScanned += leaves
		tr.Partitions[pi].Candidates += sc.cand
	}
}

// Stats describes the index structure for monitoring and diagnostics.
type Stats struct {
	Points     int // indexed entries
	Partitions int // subspace partitions + outlier partition
	TreeHeight int
	LeafPages  int
	C          float64 // stretching constant
	DeltaR     float64 // search-radius step
}

// Stats returns the index's structural statistics.
func (idx *Index) Stats() Stats {
	return Stats{
		Points:     idx.tree.Len(),
		Partitions: len(idx.parts),
		TreeHeight: idx.tree.Height(),
		LeafPages:  idx.tree.LeafPages(),
		C:          idx.c,
		DeltaR:     idx.deltaR,
	}
}
