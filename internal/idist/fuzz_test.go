package idist

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"mmdr/internal/core"
	"mmdr/internal/datagen"
	"mmdr/internal/dataset"
	"mmdr/internal/index"
	"mmdr/internal/matrix"
	"mmdr/internal/reduction"
)

// Fuzz targets pitting the extended iDistance search against the
// sequential scan over the same reduced representation. The scan is the
// trivially correct oracle (it looks at every point); any query where the
// tree search prunes a true answer or admits a wrong one is a bug in the
// annulus arithmetic of Figure 6. The fixture is built once and shared —
// both structures are immutable under queries with a nil counter.

var (
	fuzzOnce sync.Once
	fuzzDS   *dataset.Dataset
	fuzzRed  *reduction.Result
	fuzzIdx  *Index
	fuzzScan *index.SeqScan
	fuzzErr  error
)

func fuzzSetup() error {
	fuzzOnce.Do(func() {
		cfg := datagen.CorrelatedConfig{N: 700, Dim: 10, NumClusters: 3, SDim: 2, VarRatio: 20, Seed: 541}
		ds, _, err := cfg.Generate()
		if err != nil {
			fuzzErr = err
			return
		}
		datagen.Normalize(ds)
		red, err := core.New(core.Params{Seed: 541, MaxEC: 5}).Reduce(ds)
		if err != nil {
			fuzzErr = err
			return
		}
		idx, err := Build(ds, red, Options{})
		if err != nil {
			fuzzErr = err
			return
		}
		fuzzDS, fuzzRed, fuzzIdx = ds, red, idx
		fuzzScan = index.NewSeqScan(ds, red, nil)
	})
	return fuzzErr
}

// fuzzQuery derives a query point from the fuzzed seed: half the draws
// perturb a real data point (queries near the distribution, where pruning
// is busiest), half are uniform in the normalized cube (far-field and
// empty-annulus cases).
func fuzzQuery(seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	q := make([]float64, fuzzDS.Dim)
	if seed%2 == 0 {
		base := fuzzDS.Point(rng.Intn(fuzzDS.N))
		for i, v := range base {
			q[i] = v + 0.05*rng.NormFloat64()
		}
	} else {
		for i := range q {
			q[i] = rng.Float64()
		}
	}
	return q
}

// reducedDist computes the oracle distance of point id from q in the
// reduced representation: projected distance for subspace members, exact
// distance for outliers.
func reducedDist(q []float64, id int) float64 {
	for _, s := range fuzzRed.Subspaces {
		for mi, m := range s.Members {
			if m == id {
				return matrix.Dist(s.Project(q), s.MemberCoords(mi))
			}
		}
	}
	return matrix.Dist(q, fuzzDS.Point(id))
}

func FuzzKNNvsSeqScan(f *testing.F) {
	if err := fuzzSetup(); err != nil {
		f.Fatal(err)
	}
	f.Add(int64(1), uint8(10))
	f.Add(int64(2), uint8(1))
	f.Add(int64(-9999), uint8(255))
	f.Add(int64(777), uint8(0))
	// Kernel-rework corpus: exercise TopK boundary churn (k near the
	// fixture's partition sizes), far-field queries at several k, and the
	// seeds the equivalence lockdown tests sweep.
	f.Add(int64(97), uint8(17))
	f.Add(int64(1234), uint8(5))
	f.Add(int64(4321), uint8(49))
	f.Add(int64(-1), uint8(128))
	f.Add(int64(541), uint8(33))
	f.Fuzz(func(t *testing.T, seed int64, kraw uint8) {
		k := int(kraw)%50 + 1
		q := fuzzQuery(seed)
		got := fuzzIdx.KNN(q, k)
		want := fuzzScan.KNN(q, k)
		if len(got) != len(want) {
			t.Fatalf("k=%d: %d results, scan found %d", k, len(got), len(want))
		}
		for i := range want {
			// Per-rank distances must agree BITWISE: both sides accumulate
			// squared distances with the same kernels and take the same
			// final sqrt. IDs may swap only between exact ties, so verify
			// each returned ID's oracle distance instead of the ID sequence.
			if got[i].Dist != want[i].Dist {
				t.Fatalf("k=%d rank %d: dist %v, scan %v", k, i, got[i].Dist, want[i].Dist)
			}
			if d := reducedDist(q, got[i].ID); d != got[i].Dist {
				t.Fatalf("k=%d rank %d: reported dist %v but point %d is at %v",
					k, i, got[i].Dist, got[i].ID, d)
			}
		}
	})
}

// FuzzBatchKNNvsKNN pits the fused multi-query batch path against the
// per-query search it must reproduce: random batch sizes (sub-tile, exact
// tiles, ragged tails), random k, random worker counts, queries derived by
// striding the seed. Every result set must match the corresponding solo
// KNN call bitwise — the fused kernel interleaves the tile's heap updates
// with the partition scans, and this target guards the claim that the
// interleaving never changes a query's own candidate order or arithmetic.
func FuzzBatchKNNvsKNN(f *testing.F) {
	if err := fuzzSetup(); err != nil {
		f.Fatal(err)
	}
	f.Add(int64(1), uint8(10), uint8(1), uint8(1))
	f.Add(int64(2), uint8(5), uint8(8), uint8(1)) // exactly one tile
	f.Add(int64(3), uint8(5), uint8(9), uint8(2)) // tile + 1 tail
	f.Add(int64(-4), uint8(17), uint8(21), uint8(3))
	f.Add(int64(97), uint8(1), uint8(16), uint8(4)) // two exact tiles
	f.Add(int64(541), uint8(33), uint8(7), uint8(1))
	f.Add(int64(777), uint8(0), uint8(3), uint8(2)) // k clamps to 1
	f.Fuzz(func(t *testing.T, seed int64, kraw, nqraw, wraw uint8) {
		k := int(kraw)%50 + 1
		nq := int(nqraw)%(3*batchTile) + 1
		workers := int(wraw)%4 + 1
		qs := make([][]float64, nq)
		for i := range qs {
			qs[i] = fuzzQuery(seed + int64(i)*7919)
		}
		batch := fuzzIdx.BatchKNN(qs, k, workers)
		for qi, q := range qs {
			want := fuzzIdx.KNN(q, k)
			if len(batch[qi]) != len(want) {
				t.Fatalf("nq=%d k=%d w=%d query %d: batch %d results, solo %d",
					nq, k, workers, qi, len(batch[qi]), len(want))
			}
			for i := range want {
				if batch[qi][i].ID != want[i].ID || batch[qi][i].Dist != want[i].Dist {
					t.Fatalf("nq=%d k=%d w=%d query %d rank %d: batch (%d, %v), solo (%d, %v)",
						nq, k, workers, qi, i, batch[qi][i].ID, batch[qi][i].Dist, want[i].ID, want[i].Dist)
				}
			}
		}
	})
}

func FuzzRangeVsSeqScan(f *testing.F) {
	if err := fuzzSetup(); err != nil {
		f.Fatal(err)
	}
	f.Add(int64(1), 0.1)
	f.Add(int64(4), 0.0)
	f.Add(int64(-5), 2.5)
	f.Add(int64(600), 0.01)
	// Kernel-rework corpus: radii at annulus-boundary scales, a radius
	// large enough to cover every partition, and subnormal/huge extremes
	// that stress the squared-radius (r²) predicate.
	f.Add(int64(97), 0.4)
	f.Add(int64(1234), 3.9999)
	f.Add(int64(-7), 5e-324)
	f.Add(int64(8), 1e154)
	f.Fuzz(func(t *testing.T, seed int64, radius float64) {
		if math.IsNaN(radius) || math.IsInf(radius, 0) {
			t.Skip("non-finite radius")
		}
		r := math.Abs(radius)
		if r > 4 {
			r = math.Mod(r, 4)
		}
		q := fuzzQuery(seed)
		got := fuzzIdx.Range(q, r)
		want := fuzzScan.Range(q, r)
		if len(got) != len(want) {
			t.Fatalf("r=%v: %d results, scan found %d", r, len(got), len(want))
		}
		// Both sides accumulate squared distances with the same kernels,
		// sort ascending by (d², id) and take the same final sqrt: the
		// answer lists must match element for element, bitwise.
		for i := range want {
			if got[i].ID != want[i].ID || got[i].Dist != want[i].Dist {
				t.Fatalf("r=%v rank %d: got (%d, %v), scan (%d, %v)",
					r, i, got[i].ID, got[i].Dist, want[i].ID, want[i].Dist)
			}
		}
	})
}
