package idist

import (
	"runtime/debug"
	"testing"

	"mmdr/internal/index"
	"mmdr/internal/quant"
)

// Lockdowns for the quantized scan path. The contract under test:
//
//   1. Budget is the recall knob: recall@k against the seqscan oracle is
//      monotone non-decreasing in the candidate budget, and budget >= n
//      degenerates to the exact answer bitwise.
//   2. BatchKNNQuantized is bitwise identical to solo KNNQuantized at any
//      worker count and batch shape.
//   3. The path allocates only what it returns (solo: 1, batch: 2+nq).
//   4. With the layout dropped by a dynamic update the quantized entry
//      points transparently produce exact answers, and RebuildLayout
//      restores the coded path.
//
// The same file carries the KNNApprox recall lockdown (satellite): recall
// monotone non-decreasing in maxRounds, exact when unbounded.

// quantFixture builds an index with a trained quantizer attached.
func quantFixture(t *testing.T, n int, seed int64) (*Index, *index.SeqScan) {
	t.Helper()
	ds, red := testSetup(t, n, 16, 3, seed)
	set, err := quant.TrainSet(ds, red, quant.Config{Blocks: 4, Bits: 5, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := Build(ds, red, Options{Quant: set})
	if err != nil {
		t.Fatal(err)
	}
	if !idx.HasQuantizer() {
		t.Fatal("quantizer attached at Build but HasQuantizer is false")
	}
	return idx, index.NewSeqScan(ds, red, nil)
}

func recallAt(got, want []index.Neighbor) float64 {
	if len(want) == 0 {
		return 1
	}
	ids := make(map[int]bool, len(want))
	for _, nb := range want {
		ids[nb.ID] = true
	}
	hit := 0
	for _, nb := range got {
		if ids[nb.ID] {
			hit++
		}
	}
	return float64(hit) / float64(len(want))
}

func TestKNNQuantizedRecallMonotoneInBudget(t *testing.T) {
	const n, k = 900, 10
	idx, scan := quantFixture(t, n, 71)
	qs := equivQueries(idx.ds, 30, 171)

	budgets := []int{k, 4 * k, 16 * k, n}
	for _, q := range qs {
		oracle := scan.KNN(q, k)
		prev := -1.0
		for _, b := range budgets {
			got, err := idx.KNNQuantized(q, k, b)
			if err != nil {
				t.Fatal(err)
			}
			r := recallAt(got, oracle)
			if r < prev {
				t.Fatalf("recall dropped from %.3f to %.3f when budget grew to %d", prev, r, b)
			}
			prev = r
		}
		// budget >= n keeps every scanned row, so the re-rank sees the full
		// candidate set and the answer is the exact one, bitwise.
		got, err := idx.KNNQuantized(q, k, n)
		if err != nil {
			t.Fatal(err)
		}
		sameNeighbors(t, "budget>=n", got, oracle)
	}
}

func TestKNNQuantizedAggregateRecall(t *testing.T) {
	const n, k = 900, 10
	idx, scan := quantFixture(t, n, 73)
	qs := equivQueries(idx.ds, 40, 273)

	// A modest budget over this easy clustered fixture should land a high
	// aggregate recall — quantization error is bounded by the re-rank, so
	// the only loss is candidates the ADC estimate misranks out of budget.
	sum := 0.0
	for _, q := range qs {
		got, err := idx.KNNQuantized(q, k, 8*k)
		if err != nil {
			t.Fatal(err)
		}
		sum += recallAt(got, scan.KNN(q, k))
	}
	if avg := sum / float64(len(qs)); avg < 0.9 {
		t.Fatalf("aggregate recall@%d = %.3f at budget %d, want >= 0.9", k, avg, 8*k)
	}
}

func TestKNNQuantizedErrorsWithoutQuantizer(t *testing.T) {
	ds, red := testSetup(t, 300, 12, 3, 5)
	idx, err := Build(ds, red, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := idx.KNNQuantized(ds.Point(0), 5, 50); err == nil {
		t.Fatal("KNNQuantized without a quantizer should error")
	}
	if _, err := idx.BatchKNNQuantized([][]float64{ds.Point(0)}, 5, 50, 1); err == nil {
		t.Fatal("BatchKNNQuantized without a quantizer should error")
	}
}

func TestSetQuantizerValidatesAndDetaches(t *testing.T) {
	ds, red := testSetup(t, 300, 16, 3, 7)
	idx, err := Build(ds, red, Options{})
	if err != nil {
		t.Fatal(err)
	}
	set, err := quant.TrainSet(ds, red, quant.Config{Blocks: 4, Bits: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.SetQuantizer(set); err != nil {
		t.Fatal(err)
	}
	if !idx.HasQuantizer() {
		t.Fatal("SetQuantizer attached but HasQuantizer is false")
	}
	if _, err := idx.KNNQuantized(ds.Point(0), 5, 50); err != nil {
		t.Fatal(err)
	}
	if err := idx.SetQuantizer(nil); err != nil {
		t.Fatal(err)
	}
	if idx.HasQuantizer() {
		t.Fatal("detached quantizer still reported")
	}

	// A set whose book count disagrees with the partition layout is refused.
	bad := &quant.Set{Blocks: set.Blocks, Bits: set.Bits, Books: set.Books[:1]}
	if err := idx.SetQuantizer(bad); err == nil {
		t.Fatal("mismatched book count accepted")
	}
}

func TestBatchKNNQuantizedMatchesSoloAcrossWorkers(t *testing.T) {
	const n, k, budget = 900, 10, 80
	idx, _ := quantFixture(t, n, 79)
	qs := equivQueries(idx.ds, 37, 379) // odd count: exercises a ragged final tile

	want := make([][]index.Neighbor, len(qs))
	for i, q := range qs {
		out, err := idx.KNNQuantized(q, k, budget)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = out
	}
	for _, workers := range []int{1, 2, 8} {
		got, err := idx.BatchKNNQuantized(qs, k, budget, workers)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), len(want))
		}
		for i := range want {
			sameNeighbors(t, "batch/solo", got[i], want[i])
		}
	}
}

func TestQuantizedFallsBackExactAfterUpdate(t *testing.T) {
	const n, k = 900, 10
	idx, _ := quantFixture(t, n, 83)
	q := idx.ds.Point(3)

	// Drop the layout the way a dynamic workload would.
	pt := make([]float64, idx.ds.Dim)
	copy(pt, q)
	id, err := idx.Insert(pt)
	if err != nil {
		t.Fatal(err)
	}
	if idx.layout != nil {
		t.Fatal("Insert should drop the derived layout")
	}
	got, err := idx.KNNQuantized(q, k, 5*k)
	if err != nil {
		t.Fatal(err)
	}
	sameNeighbors(t, "fallback", got, idx.KNN(q, k))

	batch, err := idx.BatchKNNQuantized([][]float64{q}, k, 5*k, 2)
	if err != nil {
		t.Fatal(err)
	}
	sameNeighbors(t, "batch fallback", batch[0], got)

	// Rebuilding restores the coded path, including codes for the new row.
	if !idx.Delete(id) {
		t.Fatal("Delete of the freshly inserted row failed")
	}
	idx.RebuildLayout()
	if !idx.HasQuantizer() {
		t.Fatal("rebuilt layout should carry code blocks again")
	}
	if _, err := idx.KNNQuantized(q, k, n); err != nil {
		t.Fatal(err)
	}
}

func TestRebuildLayoutEncodesInsertedRows(t *testing.T) {
	const n, k = 600, 5
	idx, _ := quantFixture(t, n, 89)
	// Insert a clone of an existing subspace member so it lands in a coded
	// partition, then rebuild: the new row must be findable via the coded
	// path at full budget (exact semantics).
	src := idx.ds.Point(10)
	pt := make([]float64, len(src))
	copy(pt, src)
	id, err := idx.Insert(pt)
	if err != nil {
		t.Fatal(err)
	}
	idx.RebuildLayout()
	got, err := idx.KNNQuantized(pt, k, idx.ds.N)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, nb := range got {
		if nb.ID == id {
			found = true
		}
	}
	if !found {
		t.Fatalf("inserted row %d missing from full-budget quantized result %v", id, got)
	}
}

func TestKNNQuantizedAllocatesOnlyResult(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; exact budgets only hold without -race")
	}
	idx, _ := quantFixture(t, 900, 17)
	q := idx.ds.Point(5)
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	if _, err := idx.KNNQuantized(q, 10, 100); err != nil {
		t.Fatal(err)
	}
	n := testing.AllocsPerRun(100, func() { idx.KNNQuantized(q, 10, 100) })
	if n != 1 {
		t.Fatalf("KNNQuantized allocated %.1f objects per query, budget is exactly 1 (the result slice)", n)
	}
}

func TestBatchKNNQuantizedWorkerAllocationBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; exact budgets only hold without -race")
	}
	idx, _ := quantFixture(t, 900, 17)
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	queries := make([][]float64, 8)
	for i := range queries {
		queries[i] = idx.ds.Point(5)
	}
	if _, err := idx.BatchKNNQuantized(queries, 10, 100, 1); err != nil {
		t.Fatal(err)
	}
	budget := float64(2 + len(queries)) // outer slice + worker closure + one result per query
	n := testing.AllocsPerRun(50, func() { idx.BatchKNNQuantized(queries, 10, 100, 1) })
	if n != budget {
		t.Fatalf("BatchKNNQuantized(workers=1) allocated %.1f objects per batch, budget is exactly %.0f", n, budget)
	}
}

// KNNApprox recall lockdown (the online-answering mode): recall against the
// seqscan oracle is monotone non-decreasing in maxRounds, and maxRounds=0
// (unbounded) is the exact search.
func TestKNNApproxRecallMonotoneInRounds(t *testing.T) {
	const k = 10
	ds, red := testSetup(t, 900, 12, 3, 31)
	idx, err := Build(ds, red, Options{})
	if err != nil {
		t.Fatal(err)
	}
	scan := index.NewSeqScan(ds, red, nil)
	qs := equivQueries(ds, 30, 131)
	for _, q := range qs {
		oracle := scan.KNN(q, k)
		prev := -1.0
		for _, rounds := range []int{1, 2, 4, 8, 16} {
			r := recallAt(idx.KNNApprox(q, k, rounds), oracle)
			if r < prev {
				t.Fatalf("KNNApprox recall dropped from %.3f to %.3f at maxRounds=%d", prev, r, rounds)
			}
			prev = r
		}
		sameNeighbors(t, "maxRounds=0", idx.KNNApprox(q, k, 0), oracle)
	}
}
