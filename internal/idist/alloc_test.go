package idist

import (
	"runtime/debug"
	"testing"
)

// Allocation budget lockdown. The scratch rework's contract is that a query
// allocates ONLY what it returns:
//
//   - KNN: exactly 1 allocation — the sorted neighbor slice.
//   - Range: exactly 1 allocation when the result is non-empty (the exact-
//     size result copy), 0 when it is empty (nil result).
//   - BatchKNN at workers=1: 2 allocations per batch (the outer result
//     slice and the worker closure's capture record) plus one per query,
//     the scratch being checked out once for the whole batch.
//
// GC is disabled during measurement so sync.Pool cannot drop the warm
// scratch between runs; anything above the budget is a regression in the
// scratch plumbing (a fresh closure, a resized buffer, a stray boxing).

func withAllocFixture(t *testing.T) (*Index, []float64) {
	t.Helper()
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; exact budgets only hold without -race")
	}
	ds, red := testSetup(t, 900, 12, 3, 17)
	idx, err := Build(ds, red, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return idx, ds.Point(5)
}

func TestKNNAllocatesOnlyResult(t *testing.T) {
	idx, q := withAllocFixture(t)
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	idx.KNN(q, 10) // warm the scratch pool and the TopK backing array
	if n := testing.AllocsPerRun(100, func() { idx.KNN(q, 10) }); n != 1 {
		t.Fatalf("KNN allocated %.1f objects per query, budget is exactly 1 (the result slice)", n)
	}
}

func TestRangeAllocatesOnlyResult(t *testing.T) {
	idx, q := withAllocFixture(t)
	defer debug.SetGCPercent(debug.SetGCPercent(-1))

	const r = 0.4
	if len(idx.Range(q, r)) == 0 {
		t.Fatal("fixture radius matches nothing; pick a radius with hits")
	}
	if n := testing.AllocsPerRun(100, func() { idx.Range(q, r) }); n != 1 {
		t.Fatalf("non-empty Range allocated %.1f objects per query, budget is exactly 1 (the result copy)", n)
	}

	// A far-off query with a tiny radius returns nil and must not allocate.
	far := make([]float64, len(q))
	for i := range far {
		far[i] = 50
	}
	if got := idx.Range(far, 1e-6); got != nil {
		t.Fatalf("expected empty result, got %d neighbors", len(got))
	}
	if n := testing.AllocsPerRun(100, func() { idx.Range(far, 1e-6) }); n != 0 {
		t.Fatalf("empty Range allocated %.1f objects per query, budget is 0", n)
	}
}

func TestBatchKNNWorkerAllocationBudget(t *testing.T) {
	idx, q := withAllocFixture(t)
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	queries := make([][]float64, 8)
	for i := range queries {
		queries[i] = q
	}
	idx.BatchKNN(queries, 10, 1)
	budget := float64(2 + len(queries)) // outer slice + worker closure + one result per query
	if n := testing.AllocsPerRun(50, func() { idx.BatchKNN(queries, 10, 1) }); n != budget {
		t.Fatalf("BatchKNN(workers=1) allocated %.1f objects per batch, budget is exactly %.0f", n, budget)
	}
}
