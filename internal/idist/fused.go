package idist

import (
	"math"

	"mmdr/internal/index"
	"mmdr/internal/matrix"
)

// Fused batch search: one partition scan serves a whole tile of queries.
//
// The per-query search (knnInto) walks the tree once per annulus segment per
// partition per round — for a batch, every query repeats that walk and
// re-streams the same vector blocks through the cache. With the SoA layout
// materialized the tree walk is replaceable by two binary searches over the
// layout's key array (the half-open annulus bounds convert exactly to
// row-interval endpoints), which makes the scans of different queries
// composable: the tile's row intervals are decomposed into elementary
// intervals, and each block row in an interval is evaluated against every
// query active there via the multi-query kernel (matrix.SqDistRowToSel) —
// each row is read once per tile instead of once per query.
//
// Equivalence: every query keeps its own radius schedule state, annulus
// edges, early-abandon bounds, and stop condition, all computed by the same
// expressions in the same order as the per-query path; rows reach a query in
// ascending global position, which is exactly the per-query visit order
// (lo-extension keys precede hi-extension keys). Identical candidate
// sequences with identical bounds drive identical heap evolution, so fused
// answers are bit-identical to a sequential query loop — locked down by the
// equivalence tests and the FuzzBatchKNNvsKNN target.
//
// Cost accounting: DistanceOps are exact (one per query-candidate pair, as
// in the per-query path). Page reads count each leaf the fused scan touches
// once per partition scan — the physical I/O of the shared pass, which is
// the point of fusing — rather than once per query, so page totals are
// intentionally lower than a sequential loop's. Key compares charge the
// binary-search probes actually performed.

// batchTile is the number of queries a fused partition scan serves at once.
// The tile bounds the working set of per-query state (heaps, projections,
// annulus intervals) while giving each streamed block row batchTile chances
// of reuse from registers/L1; 8 keeps the whole tile state comfortably
// cache-resident at paper-scale dimensionalities.
const batchTile = 8

// BatchTile reports the fused batch engine's query-tile width, for
// benchmark reports and capacity planning.
func BatchTile() int { return batchTile }

// batchScratch bundles every buffer a fused tile search needs, pooled on
// the index so steady-state batch queries allocate only their result
// slices. All per-query-per-partition state is indexed [pi*batchTile + j].
type batchScratch struct {
	idx  *Index
	tops []*index.TopK // per-query KNN accumulators (squared distances)

	done    []bool // query finished (KNN stop condition met)
	allDone []bool // per-round accumulator, mirrors knnInto's allDone

	dist      []float64 // dist(q_j, O_pi) in the partition metric
	scanLo    []float64 // already-scanned annulus per query per partition
	scanHi    []float64
	exhausted []bool

	// Cached row images of the scanned annulus: rowLo = lowerBound(keys,
	// base+scanLo), rowHi = upperBound(keys, base+scanHi). Extensions gallop
	// outward from these instead of re-searching the whole span.
	rowLo []int
	rowHi []int

	// projBuf holds, per partition, a flat batchTile×dims[pi] row-major
	// tile of query-side vectors (subspace projections, or the original
	// queries for the outlier partition), at offset projOff[pi]. This is
	// the qs argument of matrix.SqDistRowToSel.
	projBuf []float64
	projOff []int

	// Per-partition-scan segment scratch: each active query contributes up
	// to two row intervals (lo- and hi-extension), [segA, segB) owned by
	// query segQ.
	segA []int
	segB []int
	segQ []int32
	bp   []int // elementary-interval breakpoints (sorted, deduped)

	act    []int32   // tile rows active in the current elementary interval
	bounds []float64 // their early-abandon bounds
	out    []float64 // kernel results

	rangeBufs [][]index.Neighbor // per-query Range accumulators (squared)

	// Quantized-path state (sized by ensureQuant, see fusedquant.go):
	// per-query ADC estimate reservoirs plus a per-partition tile of
	// per-query lookup tables, built lazily per (query, partition) per
	// tile search.
	ests    []*quantReservoir
	qtab    []float64
	qtabOff []int  // len nParts+1; partition pi's table tile at qtabOff[pi]
	qbuilt  []bool // [pi*batchTile + j]: query j's table for pi is built
	qrows   []int  // per-query rows evaluated, against the scan quota
}

// getBatchScratch returns a pooled, correctly sized batch scratch. Pair
// with putBatchScratch.
func (idx *Index) getBatchScratch() *batchScratch {
	bs, _ := idx.batchPool.Get().(*batchScratch)
	if bs == nil {
		bs = &batchScratch{idx: idx}
		bs.tops = make([]*index.TopK, batchTile)
		for j := range bs.tops {
			bs.tops[j] = index.NewTopK(0)
		}
		bs.done = make([]bool, batchTile)
		bs.allDone = make([]bool, batchTile)
		bs.segA = make([]int, 2*batchTile)
		bs.segB = make([]int, 2*batchTile)
		bs.segQ = make([]int32, 2*batchTile)
		bs.bp = make([]int, 4*batchTile)
		bs.act = make([]int32, batchTile)
		bs.bounds = make([]float64, batchTile)
		bs.out = make([]float64, batchTile)
		bs.rangeBufs = make([][]index.Neighbor, batchTile)
		bs.ests = make([]*quantReservoir, batchTile)
		for j := range bs.ests {
			bs.ests[j] = new(quantReservoir)
		}
	}
	bs.ensure()
	return bs
}

// putBatchScratch returns a scratch to the pool.
func (idx *Index) putBatchScratch(bs *batchScratch) {
	idx.batchPool.Put(bs)
}

// ensure sizes the per-partition state and the projection tile for the
// index's current layout.
func (bs *batchScratch) ensure() {
	idx := bs.idx
	lay := idx.layout
	nP := len(idx.parts)
	need := nP * batchTile
	if cap(bs.dist) < need {
		bs.dist = make([]float64, need)
		bs.scanLo = make([]float64, need)
		bs.scanHi = make([]float64, need)
		bs.exhausted = make([]bool, need)
		bs.rowLo = make([]int, need)
		bs.rowHi = make([]int, need)
	}
	bs.dist = bs.dist[:need]
	bs.scanLo = bs.scanLo[:need]
	bs.scanHi = bs.scanHi[:need]
	bs.exhausted = bs.exhausted[:need]
	bs.rowLo = bs.rowLo[:need]
	bs.rowHi = bs.rowHi[:need]
	if cap(bs.projOff) < nP {
		bs.projOff = make([]int, nP)
	}
	bs.projOff = bs.projOff[:nP]
	off := 0
	for pi := 0; pi < nP; pi++ {
		bs.projOff[pi] = off
		off += lay.dims[pi] * batchTile
	}
	if cap(bs.projBuf) < off {
		bs.projBuf = make([]float64, off)
	}
	bs.projBuf = bs.projBuf[:off]
}

// primeTile projects the tile's queries into every partition's metric and
// resets the per-query annulus state — the fused counterpart of knnInto's
// per-partition setup loop, computed by the same expressions.
func (idx *Index) primeTile(bs *batchScratch, queries [][]float64) {
	lay := idx.layout
	nq := len(queries)
	for pi := range idx.parts {
		p := &idx.parts[pi]
		d := lay.dims[pi]
		tile := bs.projBuf[bs.projOff[pi]:]
		for j := 0; j < nq; j++ {
			qp := tile[j*d : (j+1)*d]
			si := pi*batchTile + j
			if p.sub != nil {
				p.sub.ProjectInto(queries[j], qp)
				bs.dist[si] = math.Sqrt(matrix.SqNorm(qp))
			} else {
				copy(qp, queries[j])
				bs.dist[si] = matrix.Dist(queries[j], p.centroid)
			}
			bs.scanLo[si] = math.Inf(1)
			bs.scanHi[si] = math.Inf(-1)
			bs.exhausted[si] = false
		}
	}
}

// knnTile answers one tile of KNN queries with fused partition scans,
// writing out[j] for queries[j]. len(queries) <= batchTile, k > 0, layout
// materialized.
//
//mmdr:hotpath fused tile search; allocates only the per-query result slices
func (idx *Index) knnTile(bs *batchScratch, queries [][]float64, k int, out [][]index.Neighbor) {
	nq := len(queries)
	for j := 0; j < nq; j++ {
		bs.tops[j].Reset(k)
		bs.done[j] = false
	}
	idx.primeTile(bs, queries)

	// Lockstep radius enlargement: all tile queries share the radius
	// schedule r = round·deltaR — the same schedule each would run alone —
	// with per-query annulus state, stop checks, and completion.
	r := idx.deltaR
	for {
		for j := 0; j < nq; j++ {
			bs.allDone[j] = true
		}
		for pi := range idx.parts {
			idx.fusedScanKNN(bs, pi, nq, r)
		}
		finished := true
		for j := 0; j < nq; j++ {
			if bs.done[j] {
				continue
			}
			if (bs.tops[j].Len() >= k && bs.tops[j].Kth() <= r*r) || bs.allDone[j] {
				bs.done[j] = true
			} else {
				finished = false
			}
		}
		if finished {
			break
		}
		r += idx.deltaR
	}
	for j := 0; j < nq; j++ {
		res := bs.tops[j].Sorted()
		for i := range res {
			res[i].Dist = math.Sqrt(res[i].Dist)
		}
		out[j] = res
	}
}

// fusedScanKNN advances every unfinished tile query's annulus in partition
// pi by one radius step and evaluates the union of their new row intervals
// in a single pass over the partition's block.
//
//mmdr:hotpath
func (idx *Index) fusedScanKNN(bs *batchScratch, pi, nq int, r float64) {
	lay := idx.layout
	p := &idx.parts[pi]
	ps, pe := lay.partStart[pi], lay.partStart[pi+1]
	keys := lay.keys[ps:pe]
	base := float64(pi) * idx.c

	// Collect the round's new row intervals, exactly knnInto's annulus
	// bookkeeping with the half-open key scans converted to row endpoints:
	// inclusive lo ↦ lowerBound, exclusive lo ↦ upperBound, inclusive hi ↦
	// upperBound, exclusive hi ↦ lowerBound — the same entry sets
	// RangeBetween's bound flags select.
	nseg := 0
	for j := 0; j < nq; j++ {
		si := pi*batchTile + j
		if bs.done[j] || bs.exhausted[si] {
			continue
		}
		dist := bs.dist[si]
		lo := dist - r
		if lo < 0 {
			lo = 0
		}
		hi := dist + r
		if hi > p.maxRadius {
			hi = p.maxRadius
		}
		if lo > hi {
			if dist-r > p.maxRadius {
				bs.allDone[j] = false // may reach this partition later
			}
			continue
		}
		if bs.scanLo[si] > bs.scanHi[si] {
			a := idx.searchKeys(keys, base+lo, false)
			b := a + idx.searchKeys(keys[a:], base+hi, true)
			nseg = bs.addSeg(nseg, a, b, j)
			bs.rowLo[si], bs.rowHi[si] = a, b
			bs.scanLo[si], bs.scanHi[si] = lo, hi
		} else {
			// Grown annulus: the new edges lie just outside the cached row
			// boundaries (the annulus grows by deltaR per round), so gallop
			// outward from them — same results as a full binary search
			// (rowLo/rowHi are exactly the old edges' bound positions), with
			// probes that stay in the neighborhood the last round touched.
			if lo < bs.scanLo[si] {
				a := idx.gallopDown(keys, bs.rowLo[si], base+lo, false)
				nseg = bs.addSeg(nseg, a, bs.rowLo[si], j)
				bs.rowLo[si] = a
				bs.scanLo[si] = lo
			}
			if hi > bs.scanHi[si] {
				b := idx.gallopUp(keys, bs.rowHi[si], base+hi, true)
				nseg = bs.addSeg(nseg, bs.rowHi[si], b, j)
				bs.rowHi[si] = b
				bs.scanHi[si] = hi
			}
		}
		if bs.scanLo[si] <= 0 && bs.scanHi[si] >= p.maxRadius {
			bs.exhausted[si] = true
		} else {
			bs.allDone[j] = false
		}
	}
	if nseg == 0 {
		return
	}
	idx.evalSegments(bs, pi, ps, nseg, true, 0)
}

// keyBefore reports whether a stored key lies strictly before an annulus
// edge: key < bound for a lower-bound edge (upper=false), key <= bound for
// an upper-bound edge (upper=true) — the btree lowerBound/upperBound
// predicates, expressed as orderings so the half-open edge semantics stay
// bitwise without an equality comparison.
//
//mmdr:hotpath
func keyBefore(k, bound float64, upper bool) bool {
	if upper {
		return k <= bound
	}
	return k < bound
}

// searchKeys locates an annulus edge in a partition's key span: the first
// position with key >= bound (upper=false, an inclusive low / exclusive
// high edge) or key > bound (upper=true, an exclusive low / inclusive high
// edge). Each probe is charged as one key comparison, mirroring the
// per-level binary searches of the tree descent it replaces.
//
//mmdr:hotpath
func (idx *Index) searchKeys(keys []float64, bound float64, upper bool) int {
	lo, hi := 0, len(keys)
	probes := 0
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		probes++
		if keyBefore(keys[mid], bound, upper) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if idx.counter != nil && probes > 0 {
		idx.counter.CountKeyCompares(int64(probes))
	}
	return lo
}

// gallopDown returns searchKeys(keys[:from], bound, upper) — the annulus
// edge is known to lie at or before from — probing exponentially backward
// from from, then binary-searching the bracketed window. Radius growth is
// one deltaR per round, so the edge is near from and the probes stay
// cache-local. Each probe charges one key comparison like searchKeys.
//
//mmdr:hotpath
func (idx *Index) gallopDown(keys []float64, from int, bound float64, upper bool) int {
	lo, hi := 0, from
	probes := 0
	for step := 1; ; step <<= 1 {
		p := from - step
		if p < 0 {
			break
		}
		probes++
		if keyBefore(keys[p], bound, upper) {
			lo = p + 1
			break
		}
		hi = p
	}
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		probes++
		if keyBefore(keys[mid], bound, upper) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if idx.counter != nil && probes > 0 {
		idx.counter.CountKeyCompares(int64(probes))
	}
	return lo
}

// gallopUp is gallopDown's mirror: searchKeys over keys[from:] (offset back
// to the full span), probing exponentially forward from from.
//
//mmdr:hotpath
func (idx *Index) gallopUp(keys []float64, from int, bound float64, upper bool) int {
	lo, hi := from, len(keys)
	probes := 0
	for step := 1; ; step <<= 1 {
		p := from + step - 1
		if p >= len(keys) {
			break
		}
		probes++
		if keyBefore(keys[p], bound, upper) {
			lo = p + 1
		} else {
			hi = p
			break
		}
	}
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		probes++
		if keyBefore(keys[mid], bound, upper) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if idx.counter != nil && probes > 0 {
		idx.counter.CountKeyCompares(int64(probes))
	}
	return lo
}

// addSeg records row interval [a, b) for tile query j (empty intervals are
// dropped).
//
//mmdr:hotpath
func (bs *batchScratch) addSeg(nseg, a, b, j int) int {
	if a >= b {
		return nseg
	}
	bs.segA[nseg] = a
	bs.segB[nseg] = b
	bs.segQ[nseg] = int32(j)
	return nseg + 1
}

// evalSegments decomposes the collected row intervals into elementary
// intervals and streams each one's block rows through the multi-query
// kernel. knnMode selects the accumulator: top-k heaps bounded by each
// query's current k-th distance, or the fixed squared radius r2 filtering
// into rangeBufs. Every evaluated row is charged one DistanceOp per active
// query, and every leaf touched is charged once (physical I/O of the shared
// pass).
//
//mmdr:hotpath
func (idx *Index) evalSegments(bs *batchScratch, pi, ps, nseg int, knnMode bool, r2 float64) {
	lay := idx.layout
	// Breakpoints: the segment endpoints, insertion-sorted and deduped
	// (≤ 4·batchTile values, so the quadratic sort is a handful of swaps).
	nbp := 0
	for s := 0; s < nseg; s++ {
		nbp = insertBreakpoint(bs.bp, nbp, bs.segA[s])
		nbp = insertBreakpoint(bs.bp, nbp, bs.segB[s])
	}
	d := lay.dims[pi]
	block := lay.vecs[pi]
	tile := bs.projBuf[bs.projOff[pi]:]
	distOps := int64(0)
	pages := int64(0)
	lastLeaf := int32(-1)
	for bi := 0; bi+1 < nbp; bi++ {
		e0, e1 := bs.bp[bi], bs.bp[bi+1]
		// Active tile rows: segments are elementary-interval aligned, so
		// covering e0 means covering [e0, e1). Segment order is (query,
		// lo-before-hi), deterministic.
		na := 0
		for s := 0; s < nseg; s++ {
			if bs.segA[s] <= e0 && bs.segB[s] >= e1 {
				bs.act[na] = bs.segQ[s]
				na++
			}
		}
		if na == 0 {
			continue
		}
		if idx.counter != nil {
			l0, l1 := lay.leafOf[ps+e0], lay.leafOf[ps+e1-1]
			if l0 <= lastLeaf {
				l0 = lastLeaf + 1
			}
			if l1 >= l0 {
				pages += int64(l1 - l0 + 1)
				lastLeaf = l1
			}
		}
		act := bs.act[:na]
		if na == 1 || d < matrix.EarlyAbandonMinLen {
			// Query-outer evaluation: each active query runs the solo-style
			// tight loop over the interval's contiguous rows (identical
			// arithmetic to knnRunVisit/rangeRunVisit). Elementary intervals
			// are annulus-intersection sized, so for na > 1 the second and
			// later queries re-read the rows from cache — the row-sharing win
			// without any per-row selection plumbing, which for narrow rows
			// costs more than the d-length kernel itself.
			for a := 0; a < na; a++ {
				idx.evalInterval(bs, tile, block, lay.rids[ps+e0:ps+e1], d, e0, int(act[a]), knnMode, r2)
			}
		} else if knnMode {
			// Wide rows (outlier partitions at paper dimensionality): stream
			// each row once through the row-major multi-query kernel with
			// per-row bound refresh.
			bounds := bs.bounds[:na]
			out := bs.out[:na]
			for p := e0; p < e1; p++ {
				row := p * d
				v := block[row : row+d : row+d]
				for a := 0; a < na; a++ {
					bounds[a] = bs.tops[act[a]].Kth()
				}
				matrix.SqDistRowToSel(v, tile, d, act, bounds, out)
				rid := int(lay.rids[ps+p])
				for a := 0; a < na; a++ {
					bs.tops[act[a]].Add(rid, out[a])
				}
			}
		} else {
			bounds := bs.bounds[:na]
			out := bs.out[:na]
			for a := 0; a < na; a++ {
				bounds[a] = r2
			}
			for p := e0; p < e1; p++ {
				row := p * d
				v := block[row : row+d : row+d]
				matrix.SqDistRowToSel(v, tile, d, act, bounds, out)
				rid := int(lay.rids[ps+p])
				for a := 0; a < na; a++ {
					if out[a] <= r2 {
						j := act[a]
						bs.rangeBufs[j] = append(bs.rangeBufs[j], index.Neighbor{ID: rid, Dist: out[a]})
					}
				}
			}
		}
		distOps += int64(na) * int64(e1-e0)
	}
	if idx.counter != nil {
		idx.counter.CountDistanceOps(distOps)
		idx.counter.CountPageReads(pages)
		idx.counter.CountNodeAccesses(pages)
	}
}

// evalInterval runs one query's tight loop over an elementary interval's
// contiguous block rows — the same kernel, bound refresh and accumulation as
// the solo visit loops, so results are bit-identical to per-query execution.
// rids is the interval's record-id slice; e0 is the interval's first row
// inside the partition block, j the tile row of the query.
//
//mmdr:hotpath
func (idx *Index) evalInterval(bs *batchScratch, tile, block []float64, rids []uint32, d, e0, j int, knnMode bool, r2 float64) {
	q := tile[j*d : (j+1)*d : (j+1)*d]
	row := e0 * d
	abandon := d >= matrix.EarlyAbandonMinLen
	if knnMode {
		top := bs.tops[j]
		if abandon {
			for _, rid := range rids {
				v := block[row : row+d : row+d]
				row += d
				top.Add(int(rid), matrix.SqDistEarlyAbandon(q, v, top.Kth()))
			}
		} else {
			for _, rid := range rids {
				v := block[row : row+d : row+d]
				row += d
				top.Add(int(rid), matrix.SqDist(q, v))
			}
		}
		return
	}
	buf := bs.rangeBufs[j]
	if abandon {
		for _, rid := range rids {
			v := block[row : row+d : row+d]
			row += d
			if d2 := matrix.SqDistEarlyAbandon(q, v, r2); d2 <= r2 {
				buf = append(buf, index.Neighbor{ID: int(rid), Dist: d2})
			}
		}
	} else {
		for _, rid := range rids {
			v := block[row : row+d : row+d]
			row += d
			if d2 := matrix.SqDist(q, v); d2 <= r2 {
				buf = append(buf, index.Neighbor{ID: int(rid), Dist: d2})
			}
		}
	}
	bs.rangeBufs[j] = buf
}

// insertBreakpoint inserts v into the sorted prefix bp[:n], dropping
// duplicates, and returns the new length.
//
//mmdr:hotpath
func insertBreakpoint(bp []int, n, v int) int {
	i := n
	for i > 0 && bp[i-1] > v {
		bp[i] = bp[i-1]
		i--
	}
	if i > 0 && bp[i-1] == v {
		copy(bp[i:], bp[i+1:n+1])
		return n
	}
	bp[i] = v
	return n + 1
}

// rangeTile answers one tile of range queries with fused partition scans —
// one annulus per partition per query, no rounds.
//
//mmdr:hotpath fused tile range; allocates only the per-query result slices
func (idx *Index) rangeTile(bs *batchScratch, queries [][]float64, r float64, out [][]index.Neighbor) {
	lay := idx.layout
	nq := len(queries)
	idx.primeTile(bs, queries)
	for j := 0; j < nq; j++ {
		bs.rangeBufs[j] = bs.rangeBufs[j][:0]
	}
	r2 := r * r
	for pi := range idx.parts {
		p := &idx.parts[pi]
		ps, pe := lay.partStart[pi], lay.partStart[pi+1]
		keys := lay.keys[ps:pe]
		base := float64(pi) * idx.c
		nseg := 0
		for j := 0; j < nq; j++ {
			si := pi*batchTile + j
			dist := bs.dist[si]
			lo := dist - r
			if lo < 0 {
				lo = 0
			}
			hi := dist + r
			if hi > p.maxRadius {
				hi = p.maxRadius
			}
			if lo > hi {
				continue
			}
			a := idx.searchKeys(keys, base+lo, false)
			b := idx.searchKeys(keys, base+hi, true)
			nseg = bs.addSeg(nseg, a, b, j)
		}
		if nseg == 0 {
			continue
		}
		idx.evalSegments(bs, pi, ps, nseg, false, r2)
	}
	for j := 0; j < nq; j++ {
		buf := bs.rangeBufs[j]
		if len(buf) == 0 {
			out[j] = nil
			continue
		}
		// Same materialization as rangeInto: sort by (squared distance, ID)
		// — a strict total order, so any accumulation order yields the same
		// sorted result — then one allocation and a sqrt per neighbor.
		index.SortNeighbors(buf)
		res := make([]index.Neighbor, len(buf))
		copy(res, buf)
		for i := range res {
			res[i].Dist = math.Sqrt(res[i].Dist)
		}
		out[j] = res
	}
}
