//go:build race

package idist

// The race detector's instrumentation allocates on its own (shadow state,
// intercepted sync.Pool fast paths), so the exact allocation budgets in
// alloc_test.go only hold in uninstrumented builds — the same reason the
// standard library skips its AllocsPerRun tests under -race.
const raceEnabled = true
