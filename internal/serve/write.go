package serve

import (
	"bytes"
	"fmt"
	"io"
	"time"

	"mmdr"
	"mmdr/internal/pool"
)

// runSequencer is the single write path: every mutation (Insert, Delete,
// model swap) is broadcast to all shards from this one goroutine, so each
// replica applies the identical write sequence in the identical order —
// the invariant that keeps replicas answering identically. Broadcast sends
// block (shard workers always drain), so a write admitted into writeQ is
// never half-applied.
func (s *Server) runSequencer() {
	defer s.wg.Done()
	for {
		select {
		case req := <-s.writeQ:
			s.broadcast(req)
		case <-s.stop:
			// Close drained in-flight requests before signaling stop, so
			// the queue empties in one pass.
			for {
				select {
				case req := <-s.writeQ:
					s.broadcast(req)
				default:
					return
				}
			}
		}
	}
}

// broadcast fans one mutation out to every shard, collects the acks, and
// answers the caller with the agreed result. Replica divergence (Insert
// ids or Delete outcomes disagreeing across shards) is a serving-layer
// invariant violation, reported as an error rather than papered over.
func (s *Server) broadcast(req *request) {
	n := len(s.shards)
	ack := make(chan response, n)
	for i, sh := range s.shards {
		sub := &request{kind: req.kind, q: req.q, id: req.id, done: ack}
		if req.kind == opSwap {
			sub.newIdx = req.replica[i]
		}
		sh.queue <- sub // blocking: broadcasts are all-or-nothing
	}
	resps := make([]response, n)
	for i := 0; i < n; i++ {
		resps[i] = <-ack
	}
	first := resps[0]
	for _, r := range resps[1:] {
		if r.err != nil && first.err == nil {
			first = r
		}
	}
	if first.err == nil {
		for _, r := range resps[1:] {
			if r.id != resps[0].id || r.found != resps[0].found {
				inc(s.met.errs)
				req.done <- response{err: fmt.Errorf("serve: replicas diverged on op %d — serving state is suspect", req.kind)}
				return
			}
		}
	}
	if first.err == nil {
		switch req.kind {
		case opInsert:
			s.points.Add(1)
		case opDelete:
			if first.found {
				s.points.Add(-1)
			}
		case opSwap:
			s.dim.Store(int64(req.newDim))
			s.points.Store(int64(req.newN))
			s.gen.Add(1)
		}
		if s.met.pointsG != nil {
			s.met.pointsG.Set(s.points.Load())
			s.met.genG.Set(s.gen.Load())
		}
	}
	req.done <- first
}

// buildReplicas materializes one index replica per shard from model.
// Shard 0 is backed by the model itself; the rest get gob-deep-copied
// models so per-replica Inserts never share backing arrays. Replica
// builds fan out across shards (each build itself runs at the configured
// intra-shard worker bound, keeping peak CPU roughly constant).
func (s *Server) buildReplicas(model *mmdr.Model) ([]*mmdr.Index, error) {
	n := s.opts.Shards
	models := make([]*mmdr.Model, n)
	models[0] = model
	if n > 1 {
		var buf bytes.Buffer
		if err := model.Save(&buf); err != nil {
			return nil, fmt.Errorf("serve: snapshotting model for replicas: %w", err)
		}
		raw := buf.Bytes()
		for i := 1; i < n; i++ {
			m, err := mmdr.Load(bytes.NewReader(raw))
			if err != nil {
				return nil, fmt.Errorf("serve: replica %d model copy: %w", i, err)
			}
			models[i] = m
		}
	}
	replicas := make([]*mmdr.Index, n)
	errs := make([]error, n)
	pool.Run(n, n, func(i int) {
		idx, err := models[i].NewIndex(mmdr.WithParallelism(s.opts.Workers))
		if err != nil {
			errs[i] = err
			return
		}
		if s.opts.Metrics != nil {
			idx.SetRuntimeMetrics(s.opts.Metrics)
		}
		replicas[i] = idx
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("serve: building replica %d: %w", i, err)
		}
	}
	return replicas, nil
}

// Reload hot-swaps the serving model: the new replica set is built
// entirely off to the side (queries keep flowing against the old
// snapshot), then installed through the write sequencer like any other
// mutation. Each shard swaps between requests, so every request — and
// every coalesced batch — executes against exactly one snapshot. Writes
// sequenced before the swap apply to the outgoing replicas and are
// superseded wholesale; the new model is the new truth.
//
// The server owns the model afterwards.
func (s *Server) Reload(model *mmdr.Model) error {
	start := time.Now()
	if !s.begin() {
		return ErrClosed
	}
	defer s.end()
	replicas, err := s.buildReplicas(model)
	if err != nil {
		return err
	}
	req := &request{
		kind:    opSwap,
		replica: replicas,
		newDim:  model.Dim(),
		newN:    model.N(),
		done:    make(chan response, 1),
	}
	// Blocking send: a reload that already built its replicas must land
	// (the sequencer always drains; admission backpressure is for cheap
	// requests, not for work already done).
	s.writeQ <- req
	resp := <-req.done
	record(s.met.reload, start)
	return resp.err
}

// ReloadFrom reads a model (mmdr.Save format) from r and hot-swaps it in.
func (s *Server) ReloadFrom(r io.Reader) error {
	model, err := mmdr.Load(r)
	if err != nil {
		return err
	}
	return s.Reload(model)
}
