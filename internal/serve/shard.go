package serve

import (
	"fmt"
	"sync/atomic"
	"time"

	"mmdr"
)

// shard is one index replica plus its request queue. After the worker
// goroutine starts, idx and the coalescing buffers are touched by that
// goroutine only — per-shard goroutine affinity is the package's whole
// synchronization story for reads.
type shard struct {
	id    int
	queue chan *request
	idx   *mmdr.Index

	// credits counts reads admitted to this shard and not yet answered —
	// queued or parked in the coalescing buffer. Admission caps it at
	// QueueDepth; the worker releases a credit with each answer.
	credits atomic.Int64

	// Coalescing state, owned by the worker. pending holds compatible
	// buffered requests (same kind and parameter); qbuf is the reused flat
	// row-major query buffer handed to the fused batch engine.
	pending []*request
	qbuf    []float64
}

// compatible reports whether req can join the shard's current pending
// batch: same operation, same parameter, same vector length (one
// mismatched-dimension request must error alone, not poison the batch).
func (sh *shard) compatible(req *request) bool {
	if len(sh.pending) == 0 {
		return true
	}
	head := sh.pending[0]
	if req.kind != head.kind || len(req.q) != len(head.q) {
		return false
	}
	switch req.kind {
	case opKNN:
		return req.k == head.k
	case opRange:
		//mmdr:ignore floatcmp batch compatibility groups by the exact radius the client sent; any tolerance would merge queries with different answers into one fused scan
		return req.r == head.r
	default:
		return false
	}
}

// gather builds the flat row-major query block of the pending batch into
// dst, reusing its capacity.
//
//mmdr:hotpath per-flush copy into the fused engine's input layout
func gather(dst []float64, pending []*request) []float64 {
	dst = dst[:0]
	for _, r := range pending {
		dst = append(dst, r.q...)
	}
	return dst
}

// runShard is the worker loop: drain the queue greedily into the pending
// batch, flush on tile-full, linger-timeout, or an incompatible request;
// execute writes and swaps in arrival order relative to the reads around
// them. On stop it drains the queue (everything admitted gets an answer),
// flushes, and exits.
func (s *Server) runShard(sh *shard) {
	defer s.wg.Done()
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	armed := false
	// disarm stops the linger timer, draining a concurrent fire so the
	// next arm never sees a stale tick (pre-1.23 timer semantics).
	disarm := func() {
		if !armed {
			return
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		armed = false
	}
	doFlush := func() {
		disarm()
		s.flushShard(sh)
	}
	// After Close signals the drain, stop lingering: flush after every
	// dispatch so requests already parked in pending get their answers
	// while Close waits on them.
	draining := false
	dispatch := func(req *request) {
		switch req.kind {
		case opKNN, opRange:
			if !sh.compatible(req) {
				doFlush()
			}
			sh.pending = append(sh.pending, req)
			if draining || len(sh.pending) >= s.opts.MaxBatch {
				if !draining {
					inc(s.met.flushFull)
				}
				doFlush()
			} else if len(sh.pending) == 1 {
				timer.Reset(s.opts.FlushDelay)
				armed = true
			}
		default:
			// Writes and swaps serialize with the reads around them:
			// everything admitted before them must see pre-write state.
			doFlush()
			s.applyWrite(sh, req)
		}
	}
	drainedCh := s.drained
	for {
		select {
		case req := <-sh.queue:
			dispatch(req)
			// Greedy drain: fill the tile from whatever is already
			// queued before going back to a blocking wait.
		drain:
			for len(sh.pending) > 0 {
				select {
				case req := <-sh.queue:
					dispatch(req)
				default:
					break drain
				}
			}
		case <-drainedCh:
			draining = true
			drainedCh = nil // fires once; a nil channel never selects
			doFlush()
		case <-timer.C:
			armed = false
			if len(sh.pending) > 0 {
				inc(s.met.flushTimer)
			}
			s.flushShard(sh)
		case <-s.stop:
			// No new admissions can occur (Close drained in-flight
			// requests first), so the queue empties in one pass.
			for {
				select {
				case req := <-sh.queue:
					dispatch(req)
				default:
					doFlush()
					return
				}
			}
		}
	}
}

// flushShard executes the pending batch against the shard's replica and
// distributes the answers. No-op on an empty batch.
func (s *Server) flushShard(sh *shard) {
	n := len(sh.pending)
	if n == 0 {
		return
	}
	head := sh.pending[0]
	sh.qbuf = gather(sh.qbuf, sh.pending)
	var results [][]mmdr.Neighbor
	var err error
	switch head.kind {
	case opKNN:
		results, err = sh.idx.BatchKNN(sh.qbuf, head.k)
	case opRange:
		results, err = sh.idx.BatchRange(sh.qbuf, head.r)
	}
	if s.met.batches != nil {
		s.met.batches.Add(1)
		s.met.batchedQueries.Add(int64(n))
	}
	for i, req := range sh.pending {
		if err != nil {
			req.done <- response{err: err}
		} else {
			req.done <- response{neighbors: results[i]}
		}
		sh.credits.Add(-1)
		sh.pending[i] = nil
	}
	sh.pending = sh.pending[:0]
}

// applyWrite executes one sequenced mutation (or swap) on this shard's
// replica and acks the sequencer.
func (s *Server) applyWrite(sh *shard, req *request) {
	switch req.kind {
	case opInsert:
		id, err := sh.idx.Insert(req.q)
		req.done <- response{id: id, err: err}
	case opDelete:
		found, err := sh.idx.Delete(req.id)
		req.done <- response{found: found, err: err}
	case opSwap:
		sh.idx = req.newIdx
		req.done <- response{}
	default:
		req.done <- response{err: fmt.Errorf("serve: shard %d: unknown op %d", sh.id, req.kind)}
	}
}
