package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"mmdr/internal/metrics"
	"mmdr/internal/verify"
)

// newHTTPClient returns a client whose idle connections are reaped on
// cleanup so the leak checker sees a quiet process afterwards.
func newHTTPClient(t *testing.T) *http.Client {
	tr := &http.Transport{}
	t.Cleanup(tr.CloseIdleConnections)
	return &http.Client{Transport: tr}
}

// postJSON round-trips one API call and decodes the response into out,
// returning the status code.
func postJSON(t *testing.T, c *http.Client, url string, in, out any) int {
	t.Helper()
	body, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s response: %v", url, err)
		}
	} else {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck — draining for reuse
	}
	return resp.StatusCode
}

func TestHTTPServedAnswersBitwiseIdentical(t *testing.T) {
	checkLeaks := verify.Leak(t)
	model, queries := testModel(t, 1000, 24, 61)
	ref := cloneModel(t, model)
	const k = 5
	want := directAnswers(t, ref, queries, k)

	reg := metrics.NewRegistry()
	srv, err := New(model, Options{Shards: 2, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + addr.String()
	client := newHTTPClient(t)

	for i, q := range queries {
		var out NeighborsResponse
		if code := postJSON(t, client, base+"/knn", KNNRequest{Q: q, K: k}, &out); code != http.StatusOK {
			t.Fatalf("query %d: status %d", i, code)
		}
		if len(out.Neighbors) != len(want[i]) {
			t.Fatalf("query %d: %d neighbors, want %d", i, len(out.Neighbors), len(want[i]))
		}
		for j, nb := range out.Neighbors {
			if nb.ID != want[i][j].ID || math.Float64bits(nb.Dist) != math.Float64bits(want[i][j].Dist) {
				t.Fatalf("query %d answer %d: {%d %v} over HTTP, want {%d %v} — JSON must round-trip distances bit-exact",
					i, j, nb.ID, nb.Dist, want[i][j].ID, want[i][j].Dist)
			}
		}
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	checkLeaks()
}

func TestHTTPEndpoints(t *testing.T) {
	model, queries := testModel(t, 600, 16, 71)
	reg := metrics.NewRegistry()
	srv, err := New(model, Options{Shards: 2, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + addr.String()
	client := newHTTPClient(t)

	// Range.
	var nbs NeighborsResponse
	if code := postJSON(t, client, base+"/range", RangeRequest{Q: queries[0], R: 0.5}, &nbs); code != http.StatusOK {
		t.Errorf("/range status %d", code)
	}

	// Insert then delete round trip.
	var ins InsertResponse
	if code := postJSON(t, client, base+"/insert", InsertRequest{P: queries[1]}, &ins); code != http.StatusOK {
		t.Fatalf("/insert status %d", code)
	}
	var del DeleteResponse
	if code := postJSON(t, client, base+"/delete", DeleteRequest{ID: ins.ID}, &del); code != http.StatusOK || !del.Found {
		t.Errorf("/delete status %d found %v", code, del.Found)
	}

	// Health and status.
	for _, path := range []string{"/healthz", "/statusz"} {
		resp, err := client.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck — draining for reuse
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s status %d", path, resp.StatusCode)
		}
	}
	var st Status
	resp, err := client.Get(base + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Shards != 2 || st.Points != 600 {
		t.Errorf("statusz %+v", st)
	}

	// Metrics exposition includes the serving instruments.
	resp, err = client.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	prom, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Contains(prom, []byte("serve:")) {
		t.Errorf("/metrics status %d, body lacks serve instruments:\n%s", resp.StatusCode, prom)
	}

	// Error mapping: wrong method, malformed body, validation failure.
	resp, err = client.Get(base + "/knn")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck — draining for reuse
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /knn status %d, want 405", resp.StatusCode)
	}
	resp, err = client.Post(base+"/knn", "application/json", bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck — draining for reuse
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body status %d, want 400", resp.StatusCode)
	}
	var errResp ErrorResponse
	if code := postJSON(t, client, base+"/knn", KNNRequest{Q: queries[0][:3], K: 3}, &errResp); code != http.StatusBadRequest {
		t.Errorf("dimension mismatch status %d, want 400", code)
	}

	// Start twice is an error.
	if _, err := srv.Start("127.0.0.1:0"); err == nil {
		t.Error("second Start succeeded")
	}
}

func TestHTTPReload(t *testing.T) {
	model, queries := testModel(t, 500, 16, 81)
	next, _ := testModel(t, 650, 16, 82)
	path := filepath.Join(t.TempDir(), "next.mmdr")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := next.Save(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	srv, err := New(model, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + addr.String()
	client := newHTTPClient(t)

	var ok OKResponse
	if code := postJSON(t, client, base+"/reload", ReloadRequest{Path: path}, &ok); code != http.StatusOK {
		t.Fatalf("/reload status %d", code)
	}
	if !ok.OK || ok.Generation != 1 {
		t.Errorf("reload response %+v", ok)
	}
	if st := srv.Stats(); st.Points != 650 {
		t.Errorf("post-reload points %d, want 650", st.Points)
	}
	// Queries still work against the swapped-in model.
	var nbs NeighborsResponse
	if code := postJSON(t, client, base+"/knn", KNNRequest{Q: queries[0], K: 3}, &nbs); code != http.StatusOK {
		t.Errorf("post-reload /knn status %d", code)
	}
	// Reloading a missing file is a 400, not a crash.
	var errResp ErrorResponse
	if code := postJSON(t, client, base+"/reload", ReloadRequest{Path: path + ".missing"}, &errResp); code != http.StatusBadRequest {
		t.Errorf("missing reload file status %d, want 400", code)
	}
}

func TestWriteErrorMapping(t *testing.T) {
	cases := []struct {
		err  error
		code int
	}{
		{ErrOverloaded, http.StatusTooManyRequests},
		{ErrClosed, http.StatusServiceUnavailable},
		{fmt.Errorf("wrapped: %w", ErrOverloaded), http.StatusTooManyRequests},
		{fmt.Errorf("serve: vector dimension 3, model wants 16"), http.StatusBadRequest},
	}
	for _, tc := range cases {
		rec := &recorderWriter{header: make(http.Header)}
		writeError(rec, tc.err)
		if rec.code != tc.code {
			t.Errorf("writeError(%v) = %d, want %d", tc.err, rec.code, tc.code)
		}
	}
}

// recorderWriter is a minimal ResponseWriter for exercising writeError
// without a live server.
type recorderWriter struct {
	header http.Header
	code   int
	body   bytes.Buffer
}

func (r *recorderWriter) Header() http.Header         { return r.header }
func (r *recorderWriter) WriteHeader(code int)        { r.code = code }
func (r *recorderWriter) Write(p []byte) (int, error) { return r.body.Write(p) }
