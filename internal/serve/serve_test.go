package serve

import (
	"bytes"
	"math"
	"sync"
	"testing"
	"time"

	"mmdr"
	"mmdr/internal/datagen"
	"mmdr/internal/metrics"
)

// testModel builds a small reduced model plus a query workload.
func testModel(t testing.TB, n, dim int, seed int64) (*mmdr.Model, [][]float64) {
	t.Helper()
	cfg := datagen.CorrelatedConfig{N: n, Dim: dim, NumClusters: 3, SDim: 3,
		VarRatio: 50, ScaleDecay: 0.75, Seed: seed}
	ds, _, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	ds = datagen.Normalize(ds)
	model, err := mmdr.ReduceDataset(ds, mmdr.WithSeed(seed))
	if err != nil {
		t.Fatal(err)
	}
	qs := datagen.SampleQueries(ds, 32, 0.05, seed+1)
	queries := make([][]float64, qs.N)
	for i := range queries {
		queries[i] = append([]float64(nil), qs.Point(i)...)
	}
	return model, queries
}

// directAnswers computes reference answers on an index built from an
// identical model copy.
func directAnswers(t testing.TB, model *mmdr.Model, queries [][]float64, k int) [][]mmdr.Neighbor {
	t.Helper()
	idx, err := model.NewIndex()
	if err != nil {
		t.Fatal(err)
	}
	flat := flatten(queries)
	out, err := idx.BatchKNN(flat, k)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func flatten(queries [][]float64) []float64 {
	var flat []float64
	for _, q := range queries {
		flat = append(flat, q...)
	}
	return flat
}

// cloneModel round-trips a model through its serialized form so tests can
// hold a pristine copy while the server owns the original.
func cloneModel(t testing.TB, m *mmdr.Model) *mmdr.Model {
	t.Helper()
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	c, err := mmdr.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// sameNeighbors asserts bitwise identity (IDs and Float64bits of the
// distances) between two answer lists.
func sameNeighbors(t testing.TB, what string, got, want []mmdr.Neighbor) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d answers, want %d", what, len(got), len(want))
	}
	for i := range got {
		if got[i].ID != want[i].ID || math.Float64bits(got[i].Dist) != math.Float64bits(want[i].Dist) {
			t.Fatalf("%s: answer %d = {%d %v}, want {%d %v}", what, i,
				got[i].ID, got[i].Dist, want[i].ID, want[i].Dist)
		}
	}
}

func TestServedAnswersBitwiseIdentical(t *testing.T) {
	model, queries := testModel(t, 1200, 24, 7)
	ref := cloneModel(t, model)
	const k = 5
	want := directAnswers(t, ref, queries, k)

	for _, shards := range []int{1, 3} {
		srv, err := New(model, Options{Shards: shards, MaxBatch: 4, FlushDelay: 100 * time.Microsecond})
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		got := make([][]mmdr.Neighbor, len(queries))
		errs := make([]error, len(queries))
		for i := range queries {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				got[i], errs[i] = srv.KNN(queries[i], k)
			}(i)
		}
		wg.Wait()
		for i := range queries {
			if errs[i] != nil {
				t.Fatalf("shards=%d query %d: %v", shards, i, errs[i])
			}
			sameNeighbors(t, "knn", got[i], want[i])
		}
		if err := srv.Close(); err != nil {
			t.Fatal(err)
		}
		// Next round serves from a fresh copy: the server owned this one.
		model = cloneModel(t, ref)
	}
}

func TestServedRangeMatchesDirect(t *testing.T) {
	model, queries := testModel(t, 800, 16, 3)
	ref := cloneModel(t, model)
	const r = 0.25
	idx, err := ref.NewIndex()
	if err != nil {
		t.Fatal(err)
	}
	want, err := idx.BatchRange(flatten(queries), r)
	if err != nil {
		t.Fatal(err)
	}

	srv, err := New(model, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	var wg sync.WaitGroup
	got := make([][]mmdr.Neighbor, len(queries))
	for i := range queries {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			nbs, err := srv.Range(queries[i], r)
			if err != nil {
				t.Errorf("range %d: %v", i, err)
				return
			}
			got[i] = nbs
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	for i := range queries {
		sameNeighbors(t, "range", got[i], want[i])
	}
}

func TestWritesKeepReplicasConsistent(t *testing.T) {
	model, queries := testModel(t, 600, 16, 11)
	srv, err := New(model, Options{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Insert a few new points; ids must be assigned consistently.
	base := srv.Stats().Points
	var ids []int
	for i := 0; i < 5; i++ {
		p := append([]float64(nil), queries[i]...)
		id, err := srv.Insert(p)
		if err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		ids = append(ids, id)
	}
	if got := srv.Stats().Points; got != base+5 {
		t.Errorf("points gauge %d, want %d", got, base+5)
	}
	// Every replica must now answer identically — the inserted points are
	// their own nearest neighbors on whichever shard the query lands.
	for _, id := range ids {
		found, err := srv.Delete(id)
		if err != nil || !found {
			t.Fatalf("delete %d: found=%v err=%v", id, found, err)
		}
	}
	if found, err := srv.Delete(ids[0]); err != nil || found {
		t.Fatalf("double delete: found=%v err=%v", found, err)
	}
	if got := srv.Stats().Points; got != base {
		t.Errorf("points gauge %d after deletes, want %d", got, base)
	}
}

func TestReloadSwapsModel(t *testing.T) {
	model, queries := testModel(t, 600, 16, 21)
	next, _ := testModel(t, 700, 16, 22)
	nextRef := cloneModel(t, next)

	reg := metrics.NewRegistry()
	srv, err := New(model, Options{Shards: 2, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	if gen := srv.Stats().Generation; gen != 0 {
		t.Fatalf("fresh generation %d", gen)
	}
	if err := srv.Reload(next); err != nil {
		t.Fatal(err)
	}
	st := srv.Stats()
	if st.Generation != 1 || st.Points != 700 {
		t.Fatalf("post-reload stats %+v", st)
	}
	// Served answers now come from the new model.
	const k = 3
	want := directAnswers(t, nextRef, queries[:4], k)
	for i, q := range queries[:4] {
		got, err := srv.KNN(q, k)
		if err != nil {
			t.Fatal(err)
		}
		sameNeighbors(t, "post-reload knn", got, want[i])
	}
}

func TestOverloadRejects(t *testing.T) {
	model, queries := testModel(t, 400, 16, 31)
	// One shard, two admission credits, giant linger: exactly two requests
	// win credits and park in the coalescing buffer (the linger never
	// fires, the tile never fills), so every other request must reject
	// immediately. Admission counts parked requests — credits are held
	// until the answer is sent, not just while queued — so the worker
	// cannot launder the bounded queue into unbounded pending state.
	srv, err := New(model, Options{
		Shards: 1, QueueDepth: 2, MaxBatch: 64, FlushDelay: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const clients = 64
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		go func(i int) {
			_, err := srv.KNN(queries[i%len(queries)], 3)
			errs <- err
		}(i)
	}
	// The two credit winners block until a flush; all 62 losers reject.
	for i := 0; i < clients-2; i++ {
		switch err := <-errs; err {
		case ErrOverloaded:
		case nil:
			t.Fatal("request served while both credits were parked")
		default:
			t.Fatalf("unexpected error: %v", err)
		}
	}
	// Close's drain signal flushes the parked pair; both must be answered,
	// not abandoned (the other half of the admission contract).
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Errorf("parked request failed: %v", err)
		}
	}
}

func TestClosedServerRefuses(t *testing.T) {
	model, queries := testModel(t, 400, 16, 41)
	srv, err := New(model, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.KNN(queries[0], 3); err != ErrClosed {
		t.Errorf("KNN after Close: %v, want ErrClosed", err)
	}
	if _, err := srv.Insert(queries[0]); err != ErrClosed {
		t.Errorf("Insert after Close: %v, want ErrClosed", err)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

func TestValidationErrors(t *testing.T) {
	model, queries := testModel(t, 400, 16, 51)
	srv, err := New(model, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if _, err := srv.KNN([]float64{1, 2, 3}, 3); err == nil {
		t.Error("dimension mismatch accepted")
	}
	if _, err := srv.KNN(queries[0], 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := srv.Range(queries[0], -1); err == nil {
		t.Error("negative radius accepted")
	}
}
