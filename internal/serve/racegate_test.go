package serve

// The race gate: adversarial schedules driven through the serving
// subsystem under `go test -race` (make racegate). Each scenario runs
// inside verify.RunScenarios, which brackets it with a goroutine-leak
// baseline and a stall watchdog — so a scenario fails loudly on a data
// race (race detector), a leaked worker/coalescer/listener (verify.Leak),
// or a request that never gets an answer (verify.Watchdog), instead of
// hanging the suite or passing silently.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync"
	"testing"
	"time"

	"mmdr/internal/verify"
)

// raceGateDeadline bounds every tracked operation. Generous because the
// race detector slows execution ~10x; a healthy server answers in
// microseconds, so tripping this still means a real stall.
const raceGateDeadline = 30 * time.Second

func TestRaceGate(t *testing.T) {
	iters, clients := 120, 12
	if testing.Short() {
		iters, clients = 25, 6
	}
	verify.RunScenarios(t, raceGateDeadline, []verify.Scenario{
		{Name: "mixed_load", Run: func(t *testing.T, w *verify.Watchdog) {
			scenarioMixedLoad(t, w, iters, clients)
		}},
		{Name: "reload_storm", Run: func(t *testing.T, w *verify.Watchdog) {
			scenarioReloadStorm(t, w, iters, clients)
		}},
		{Name: "overload_then_drain", Run: func(t *testing.T, w *verify.Watchdog) {
			scenarioOverloadThenDrain(t, w, clients*8)
		}},
		{Name: "slow_client_writes", Run: scenarioSlowClient},
		{Name: "racing_close", Run: func(t *testing.T, w *verify.Watchdog) {
			scenarioRacingClose(t, w, clients)
		}},
	})
}

// readErr filters the errors a load scenario tolerates: overload is the
// admission contract working, closed is a racing shutdown doing its job.
func tolerable(err error) bool {
	return err == nil || err == ErrOverloaded || err == ErrClosed
}

// scenarioMixedLoad hammers one server with interleaved KNN, Range,
// Insert, and Delete from many clients. Every request must complete (the
// watchdog tracks each round trip) and the replicas must stay in
// lockstep (divergence comes back as a request error).
func scenarioMixedLoad(t *testing.T, w *verify.Watchdog, iters, clients int) {
	model, queries := testModel(t, 500, 16, 101)
	srv, err := New(model, Options{Shards: 3, MaxBatch: 4, FlushDelay: 50 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			var myIDs []int
			for i := 0; i < iters; i++ {
				q := queries[(c*iters+i)%len(queries)]
				switch i % 4 {
				case 0:
					w.Wrap("knn", func() {
						if _, err := srv.KNN(q, 3); !tolerable(err) {
							t.Errorf("knn: %v", err)
						}
					})
				case 1:
					w.Wrap("range", func() {
						if _, err := srv.Range(q, 0.3); !tolerable(err) {
							t.Errorf("range: %v", err)
						}
					})
				case 2:
					w.Wrap("insert", func() {
						id, err := srv.Insert(q)
						if !tolerable(err) {
							t.Errorf("insert: %v", err)
						} else if err == nil {
							myIDs = append(myIDs, id)
						}
					})
				case 3:
					if len(myIDs) == 0 {
						continue
					}
					id := myIDs[len(myIDs)-1]
					myIDs = myIDs[:len(myIDs)-1]
					w.Wrap("delete", func() {
						if _, err := srv.Delete(id); !tolerable(err) {
							t.Errorf("delete: %v", err)
						}
					})
				}
			}
		}(c)
	}
	wg.Wait()
	w.Wrap("close", func() {
		if err := srv.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	})
}

// scenarioReloadStorm swaps the model repeatedly while readers stream
// queries. Snapshot consistency means every answer comes from exactly one
// model generation — never a crash, never a mixed batch (a query vector
// valid for both models must always get a coherent answer).
func scenarioReloadStorm(t *testing.T, w *verify.Watchdog, iters, clients int) {
	model, queries := testModel(t, 500, 16, 111)
	alt, _ := testModel(t, 650, 16, 112)
	srv, err := New(model, Options{Shards: 2, MaxBatch: 4, FlushDelay: 50 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stopReads := make(chan struct{})
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stopReads:
					return
				default:
				}
				q := queries[(c+i)%len(queries)]
				w.Wrap("storm-knn", func() {
					nbs, err := srv.KNN(q, 3)
					if !tolerable(err) {
						t.Errorf("knn during reload: %v", err)
					}
					if err == nil && len(nbs) == 0 {
						t.Error("knn during reload returned no neighbors")
					}
				})
			}
		}(c)
	}
	reloads := iters / 10
	if reloads < 4 {
		reloads = 4
	}
	for r := 0; r < reloads; r++ {
		// Reload hands model ownership to the server, so each swap installs
		// a fresh copy.
		next := cloneModel(t, alt)
		if r%2 == 1 {
			next = cloneModel(t, model)
		}
		w.Wrap("reload", func() {
			if err := srv.Reload(next); err != nil {
				t.Errorf("reload %d: %v", r, err)
			}
		})
	}
	close(stopReads)
	wg.Wait()
	if gen := srv.Stats().Generation; gen != int64(reloads) {
		t.Errorf("generation %d after %d reloads", gen, reloads)
	}
	w.Wrap("close", func() {
		if err := srv.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	})
}

// scenarioOverloadThenDrain saturates a tiny admission window, then
// closes the server while winners are still parked in the coalescing
// buffer. The contract: every admitted request is answered, every
// rejected request fails fast, nobody hangs — the exact schedule that
// deadlocked an earlier version of Close (drain signal after
// inflight.Wait instead of before).
func scenarioOverloadThenDrain(t *testing.T, w *verify.Watchdog, clients int) {
	model, queries := testModel(t, 400, 16, 121)
	srv, err := New(model, Options{
		Shards: 1, QueueDepth: 2, MaxBatch: 64, FlushDelay: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var served, rejected int64
	var mu sync.Mutex
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			w.Wrap("overload-knn", func() {
				_, err := srv.KNN(queries[c%len(queries)], 3)
				mu.Lock()
				defer mu.Unlock()
				switch err {
				case nil:
					served++
				case ErrOverloaded, ErrClosed:
					rejected++
				default:
					t.Errorf("unexpected error: %v", err)
				}
			})
		}(c)
	}
	// Close while the two credit winners are parked behind the hour-long
	// linger: the drain signal must flush them out.
	w.Wrap("close-under-load", func() {
		if err := srv.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if served+rejected != int64(clients) {
		t.Errorf("%d served + %d rejected != %d clients", served, rejected, clients)
	}
}

// scenarioSlowClient dribbles a request over a raw TCP connection while
// regular clients query over HTTP, then closes the server. The read
// timeouts must shed the dribbler; Close must not wait on it forever.
func scenarioSlowClient(t *testing.T, w *verify.Watchdog) {
	model, queries := testModel(t, 400, 16, 131)
	srv, err := New(model, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + addr.String()
	tr := &http.Transport{}
	defer tr.CloseIdleConnections()
	client := &http.Client{Transport: tr}

	// The dribbler: a request header that never finishes.
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	dribbleDone := make(chan struct{})
	go func() {
		defer close(dribbleDone)
		defer conn.Close()
		for _, chunk := range []string{"POST /knn HT", "TP/1.1\r\nHost: x\r\nCont"} {
			if _, err := conn.Write([]byte(chunk)); err != nil {
				return
			}
			time.Sleep(20 * time.Millisecond)
		}
		// Hold the half-written request open; the server's header timeout
		// or Close must cut it loose without our cooperation.
		time.Sleep(200 * time.Millisecond)
	}()

	// Healthy traffic flows beside the dribbler.
	body, _ := json.Marshal(KNNRequest{Q: queries[0], K: 3})
	for i := 0; i < 10; i++ {
		w.Wrap("http-knn", func() {
			resp, err := client.Post(base+"/knn", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Errorf("healthy client: %v", err)
				return
			}
			defer resp.Body.Close()
			var out NeighborsResponse
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil || len(out.Neighbors) != 3 {
				t.Errorf("healthy client: decode err %v, %d neighbors", err, len(out.Neighbors))
			}
		})
	}
	w.Wrap("close-with-dribbler", func() {
		if err := srv.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	<-dribbleDone
}

// scenarioRacingClose fires Close from several goroutines in the middle
// of a query storm. Every Close returns (after the same single shutdown),
// every client gets an answer or a clean refusal.
func scenarioRacingClose(t *testing.T, w *verify.Watchdog, clients int) {
	model, queries := testModel(t, 400, 16, 141)
	srv, err := New(model, Options{Shards: 2, MaxBatch: 4, FlushDelay: 50 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				q := queries[(c+i)%len(queries)]
				w.Wrap("racing-knn", func() {
					if _, err := srv.KNN(q, 3); !tolerable(err) {
						t.Errorf("knn: %v", err)
					}
				})
			}
		}(c)
	}
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			w.Wrap(fmt.Sprintf("close-%d", c), func() {
				if err := srv.Close(); err != nil {
					t.Errorf("racing close %d: %v", c, err)
				}
			})
		}(c)
	}
	wg.Wait()
	// After every racer returned, the server must refuse new work.
	if _, err := srv.KNN(queries[0], 3); err != ErrClosed {
		t.Errorf("KNN after racing closes: %v, want ErrClosed", err)
	}
}
