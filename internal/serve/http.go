package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"time"

	"mmdr"
	"mmdr/internal/metrics"
)

// HTTP wire types. Distances survive the round trip bit-exact:
// encoding/json renders float64 with the shortest representation that
// re-parses to the identical bits, which is what lets the serving
// correctness gate assert bitwise identity against direct BatchKNN.
type (
	// KNNRequest is the POST /knn body.
	KNNRequest struct {
		Q []float64 `json:"q"`
		K int       `json:"k"`
	}
	// RangeRequest is the POST /range body.
	RangeRequest struct {
		Q []float64 `json:"q"`
		R float64   `json:"r"`
	}
	// InsertRequest is the POST /insert body.
	InsertRequest struct {
		P []float64 `json:"p"`
	}
	// DeleteRequest is the POST /delete body.
	DeleteRequest struct {
		ID int `json:"id"`
	}
	// ReloadRequest is the POST /reload body; Path names a model file
	// (mmdr.Save format) readable by the server process.
	ReloadRequest struct {
		Path string `json:"path"`
	}

	// NeighborJSON is one answer entry.
	NeighborJSON struct {
		ID   int     `json:"id"`
		Dist float64 `json:"dist"`
	}
	// NeighborsResponse answers /knn and /range.
	NeighborsResponse struct {
		Neighbors []NeighborJSON `json:"neighbors"`
	}
	// InsertResponse answers /insert.
	InsertResponse struct {
		ID int `json:"id"`
	}
	// DeleteResponse answers /delete.
	DeleteResponse struct {
		Found bool `json:"found"`
	}
	// OKResponse answers /reload and /healthz.
	OKResponse struct {
		OK         bool  `json:"ok"`
		Generation int64 `json:"generation,omitempty"`
	}
	// ErrorResponse is every non-2xx body.
	ErrorResponse struct {
		Error string `json:"error"`
	}
)

// toJSON converts index answers to the wire shape.
func toJSON(nbs []mmdr.Neighbor) []NeighborJSON {
	out := make([]NeighborJSON, len(nbs))
	for i, n := range nbs {
		out[i] = NeighborJSON{ID: n.ID, Dist: n.Dist}
	}
	return out
}

// maxBodyBytes bounds request bodies; a query vector of 4096 float64s is
// well under this, and it caps what a slow or malicious client can hold
// open.
const maxBodyBytes = 1 << 20

// httpServer pairs the net/http server with its listener.
type httpServer struct {
	srv *http.Server
	ln  net.Listener
}

// Handler returns the server's HTTP API:
//
//	POST /knn     {"q":[...],"k":10}    -> {"neighbors":[{"id":..,"dist":..},...]}
//	POST /range   {"q":[...],"r":0.5}   -> {"neighbors":[...]}
//	POST /insert  {"p":[...]}           -> {"id":123}
//	POST /delete  {"id":123}            -> {"found":true}
//	POST /reload  {"path":"m.mmdr"}     -> {"ok":true,"generation":2}
//	GET  /healthz                        -> {"ok":true}
//	GET  /statusz                        -> serve.Status JSON
//	GET  /metrics                        -> Prometheus text (with a registry)
//	GET  /debug/pprof/*                  -> pprof profiles
//
// Overload answers 429, shutdown 503, malformed input 400.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/knn", func(w http.ResponseWriter, r *http.Request) {
		var req KNNRequest
		if !decodeBody(w, r, &req) {
			return
		}
		nbs, err := s.KNN(req.Q, req.K)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, NeighborsResponse{Neighbors: toJSON(nbs)})
	})
	mux.HandleFunc("/range", func(w http.ResponseWriter, r *http.Request) {
		var req RangeRequest
		if !decodeBody(w, r, &req) {
			return
		}
		nbs, err := s.Range(req.Q, req.R)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, NeighborsResponse{Neighbors: toJSON(nbs)})
	})
	mux.HandleFunc("/insert", func(w http.ResponseWriter, r *http.Request) {
		var req InsertRequest
		if !decodeBody(w, r, &req) {
			return
		}
		id, err := s.Insert(req.P)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, InsertResponse{ID: id})
	})
	mux.HandleFunc("/delete", func(w http.ResponseWriter, r *http.Request) {
		var req DeleteRequest
		if !decodeBody(w, r, &req) {
			return
		}
		found, err := s.Delete(req.ID)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, DeleteResponse{Found: found})
	})
	mux.HandleFunc("/reload", func(w http.ResponseWriter, r *http.Request) {
		var req ReloadRequest
		if !decodeBody(w, r, &req) {
			return
		}
		f, err := os.Open(req.Path)
		if err != nil {
			writeError(w, err)
			return
		}
		defer f.Close()
		if err := s.ReloadFrom(f); err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, OKResponse{OK: true, Generation: s.gen.Load()})
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, OKResponse{OK: true})
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	if s.opts.Metrics != nil {
		mux.Handle("/metrics", metrics.Handler(s.opts.Metrics))
	}
	// pprof on the serving mux (explicit routes — the default mux is never
	// touched, same discipline as obs.StartDebugServer).
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Start listens on addr (use "127.0.0.1:0" for an ephemeral port) and
// serves the HTTP API until Close. Read timeouts bound what a slow client
// can hold open: a connection that dribbles its request slower than the
// deadline is closed, not accumulated.
func (s *Server) Start(addr string) (net.Addr, error) {
	s.httpMu.Lock()
	defer s.httpMu.Unlock()
	if s.hsrv != nil {
		return nil, errors.New("serve: Start called twice")
	}
	// Holding httpMu orders this check against closeHTTP: either Close's
	// shutdown sees the server registered below, or we see closing here.
	s.mu.RLock()
	closing := s.closing
	s.mu.RUnlock()
	if closing {
		return nil, ErrClosed
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       60 * time.Second,
	}
	s.hsrv = &httpServer{srv: srv, ln: ln}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		srv.Serve(ln) //nolint:errcheck — Serve returns on Shutdown/Close
	}()
	return ln.Addr(), nil
}

// Addr returns the bound listen address, or nil before Start.
func (s *Server) Addr() net.Addr {
	s.httpMu.Lock()
	defer s.httpMu.Unlock()
	if s.hsrv == nil {
		return nil
	}
	return s.hsrv.ln.Addr()
}

// closeHTTP quiesces the HTTP layer: stop accepting, let in-flight
// handlers finish (workers are still live so they can), then force-close
// stragglers (slow clients past their timeout).
func (s *Server) closeHTTP() {
	s.httpMu.Lock()
	h := s.hsrv
	s.httpMu.Unlock()
	if h == nil {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := h.srv.Shutdown(ctx); err != nil {
		h.srv.Close() //nolint:errcheck — force-close after drain timeout
	}
}

// decodeBody parses a bounded JSON body; on failure it answers 400 and
// reports false.
func decodeBody(w http.ResponseWriter, r *http.Request, dst any) bool {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, ErrorResponse{Error: "POST required"})
		return false
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err := dec.Decode(dst); err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: fmt.Sprintf("bad request body: %v", err)})
		return false
	}
	return true
}

// writeError maps serving errors to status codes: overload 429, shutdown
// 503, everything else (validation, missing files) 400.
func writeError(w http.ResponseWriter, err error) {
	code := http.StatusBadRequest
	switch {
	case errors.Is(err, ErrOverloaded):
		code = http.StatusTooManyRequests
	case errors.Is(err, ErrClosed):
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, ErrorResponse{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v) //nolint:errcheck — client gone is client's problem
}
