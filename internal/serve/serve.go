// Package serve is the query-serving subsystem: a sharded, coalescing
// front end that turns the mmdr library into a service. The concurrency
// design is ownership-based rather than lock-based:
//
//   - The index is replicated across N shards. Each shard's replica is
//     owned by exactly one worker goroutine (per-shard goroutine affinity)
//     — after startup no index is ever touched by two goroutines, so
//     queries run without read locks and with warm per-shard caches.
//   - Read requests are dispatched round-robin and coalesced inside the
//     shard worker into micro-batches that flush into the fused
//     BatchKNN/BatchRange engine when a tile fills or a linger deadline
//     (~200µs) passes — under load the batch kernels amortize partition
//     scans across requests, under light load latency stays bounded.
//   - Writes (Insert/Delete) and model swaps go through a single
//     sequencer goroutine that broadcasts each mutation to every shard in
//     one global order, keeping the replicas in lockstep. Replicas answer
//     identically because they start from gob-identical models and apply
//     the identical write sequence.
//   - Admission control is a bounded queue per shard plus a bounded write
//     queue; when every queue is full the request is rejected immediately
//     (HTTP 429) instead of growing unbounded in-flight state.
//   - Hot reload builds the new replica set off to the side, then swaps it
//     through the sequencer like any other write: each in-flight request
//     runs entirely against one snapshot, never a mix.
//
// Close drains in reverse admission order: new requests are refused, the
// HTTP layer quiesces, in-flight requests finish against live workers, and
// only then do the workers and sequencer exit. internal/verify's leak and
// watchdog helpers hold this package to that contract under `-race`
// (`make racegate`).
package serve

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"mmdr"
	"mmdr/internal/metrics"
)

// Defaults for Options zero values.
const (
	DefaultQueueDepth = 256
	DefaultMaxBatch   = 8 // matches the fused engine's batch tile
	DefaultFlushDelay = 200 * time.Microsecond
)

// Sentinel errors the HTTP layer maps to status codes.
var (
	// ErrOverloaded means every admission queue was full (HTTP 429).
	ErrOverloaded = errors.New("serve: overloaded, request rejected")
	// ErrClosed means the server is shutting down (HTTP 503).
	ErrClosed = errors.New("serve: server closed")
)

// Options configures a Server.
type Options struct {
	// Shards is the number of index replicas, each owned by one worker
	// goroutine. 0 selects 1. More shards buy read throughput at the cost
	// of replica memory and write fan-out.
	Shards int
	// QueueDepth bounds each shard's request queue and the write queue;
	// full queues reject (ErrOverloaded). 0 selects DefaultQueueDepth.
	QueueDepth int
	// MaxBatch is the coalescing tile: a shard flushes its pending batch
	// to the fused engine when this many compatible requests are buffered.
	// 0 selects DefaultMaxBatch.
	MaxBatch int
	// FlushDelay is the micro-batch linger: a partial batch flushes this
	// long after its first request arrived. 0 selects DefaultFlushDelay.
	FlushDelay time.Duration
	// Workers bounds the intra-shard parallelism of one flushed batch
	// (the BatchKNN worker count). 0 selects 1 — the shard itself is the
	// unit of parallelism.
	Workers int
	// Metrics, when non-nil, receives per-endpoint latency histograms,
	// admission counters, and the replicas' per-operation instruments.
	Metrics *metrics.Registry
}

func (o Options) withDefaults() Options {
	if o.Shards <= 0 {
		o.Shards = 1
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = DefaultQueueDepth
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = DefaultMaxBatch
	}
	if o.FlushDelay <= 0 {
		o.FlushDelay = DefaultFlushDelay
	}
	if o.Workers <= 0 {
		o.Workers = 1
	}
	return o
}

// opKind discriminates queued requests.
type opKind uint8

const (
	opKNN opKind = iota
	opRange
	opInsert
	opDelete
	opSwap
)

// request is one queued operation. done is buffered (capacity 1) so a
// worker can always respond without blocking, even if the waiter is gone.
type request struct {
	kind opKind
	q    []float64 // knn/range query vector, insert point
	k    int       // knn
	r    float64   // range radius
	id   int       // delete target

	// swap payload: one fresh replica per shard, assigned by the sequencer.
	newIdx  *mmdr.Index
	newDim  int
	newN    int
	replica []*mmdr.Index

	done chan response
}

type response struct {
	neighbors []mmdr.Neighbor
	id        int
	found     bool
	err       error
}

// Server is a running sharded query server. Create with New, stop with
// Close. All exported methods are safe for concurrent use.
type Server struct {
	opts Options

	// Admission gate: closing flips under mu; begin/end bracket every
	// in-flight request so Close can drain before stopping workers.
	mu       sync.RWMutex
	closing  bool
	inflight sync.WaitGroup
	closed   chan struct{} // closed when shutdown completes

	shards []*shard
	next   atomic.Uint64 // round-robin read dispatch cursor
	writeQ chan *request

	drained chan struct{} // tells workers to stop lingering and flush eagerly
	stop    chan struct{} // tells workers + sequencer to drain and exit
	wg      sync.WaitGroup

	// Live model identity, maintained by the sequencer/swap path so no
	// reader ever touches a Model concurrently with writers.
	dim    atomic.Int64
	points atomic.Int64
	gen    atomic.Int64

	met serveMetrics

	httpMu sync.Mutex
	hsrv   *httpServer // non-nil once Start ran
}

// serveMetrics caches the per-endpoint instruments (nil-safe: a Server
// without a registry records nothing).
type serveMetrics struct {
	knn, rng, ins, del, reload *metrics.Op
	rejected, errs             *metrics.Counter
	batches, batchedQueries    *metrics.Counter
	flushFull, flushTimer      *metrics.Counter
	shardsG, genG, pointsG     *metrics.Gauge
}

func newServeMetrics(reg *metrics.Registry) serveMetrics {
	if reg == nil {
		return serveMetrics{}
	}
	return serveMetrics{
		knn:            reg.Op("serve:knn"),
		rng:            reg.Op("serve:range"),
		ins:            reg.Op("serve:insert"),
		del:            reg.Op("serve:delete"),
		reload:         reg.Op("serve:reload"),
		rejected:       reg.Counter("serve:rejected"),
		errs:           reg.Counter("serve:errors"),
		batches:        reg.Counter("serve:batches"),
		batchedQueries: reg.Counter("serve:batched_queries"),
		flushFull:      reg.Counter("serve:flush_full"),
		flushTimer:     reg.Counter("serve:flush_timer"),
		shardsG:        reg.Gauge("serve:shards"),
		genG:           reg.Gauge("serve:generation"),
		pointsG:        reg.Gauge("serve:points"),
	}
}

// New builds a server over model: one index replica per shard (the model
// itself backs shard 0; further shards get gob-deep-copies so writes stay
// isolated per replica), then starts the shard workers and the write
// sequencer. The server owns the model afterwards — do not query or
// mutate it directly.
func New(model *mmdr.Model, opts Options) (*Server, error) {
	opts = opts.withDefaults()
	s := &Server{
		opts:    opts,
		closed:  make(chan struct{}),
		writeQ:  make(chan *request, opts.QueueDepth),
		drained: make(chan struct{}),
		stop:    make(chan struct{}),
		met:     newServeMetrics(opts.Metrics),
	}
	replicas, err := s.buildReplicas(model)
	if err != nil {
		return nil, err
	}
	s.shards = make([]*shard, opts.Shards)
	for i := range s.shards {
		s.shards[i] = &shard{
			id:    i,
			queue: make(chan *request, opts.QueueDepth),
			idx:   replicas[i],
		}
	}
	s.dim.Store(int64(model.Dim()))
	s.points.Store(int64(model.N()))
	s.met.setGauges(len(s.shards), 0, int64(model.N()))
	for _, sh := range s.shards {
		s.wg.Add(1)
		go s.runShard(sh)
	}
	s.wg.Add(1)
	go s.runSequencer()
	return s, nil
}

func (m *serveMetrics) setGauges(shards int, gen, points int64) {
	if m.shardsG == nil {
		return
	}
	m.shardsG.Set(int64(shards))
	m.genG.Set(gen)
	m.pointsG.Set(points)
}

// record accounts one endpoint latency (nil-safe).
func record(op *metrics.Op, start time.Time) {
	if op != nil {
		op.Record(time.Since(start))
	}
}

func inc(c *metrics.Counter) {
	if c != nil {
		c.Add(1)
	}
}

// begin admits one request; false means the server is closing.
func (s *Server) begin() bool {
	s.mu.RLock()
	if s.closing {
		s.mu.RUnlock()
		return false
	}
	s.inflight.Add(1)
	s.mu.RUnlock()
	return true
}

func (s *Server) end() { s.inflight.Done() }

// nextShard advances the round-robin read dispatch cursor.
//
//mmdr:hotpath one atomic add per read request
func (s *Server) nextShard(n int) int {
	return int(s.next.Add(1)-1) % n
}

// submitRead dispatches a read to a shard queue, trying every shard once
// starting from the round-robin cursor, and waits for the response.
//
// Admission is bounded by per-shard credits, not channel occupancy: a
// credit is held from enqueue until the answer is sent, so requests the
// worker has already moved into its coalescing buffer still count against
// QueueDepth. Without this the worker would launder the bounded queue
// into unbounded pending state and overload could never reject.
func (s *Server) submitRead(req *request) (response, error) {
	if !s.begin() {
		return response{}, ErrClosed
	}
	defer s.end()
	n := len(s.shards)
	start := s.nextShard(n)
	depth := int64(s.opts.QueueDepth)
	for i := 0; i < n; i++ {
		sh := s.shards[(start+i)%n]
		if sh.credits.Add(1) > depth {
			sh.credits.Add(-1)
			continue
		}
		select {
		case sh.queue <- req:
			return <-req.done, nil
		default:
			// Queue slots are also taken by sequencer broadcasts, which
			// hold no credit; give this one back and try the next shard.
			sh.credits.Add(-1)
		}
	}
	inc(s.met.rejected)
	return response{}, ErrOverloaded
}

// submitWrite hands a mutation to the sequencer and waits.
func (s *Server) submitWrite(req *request) (response, error) {
	if !s.begin() {
		return response{}, ErrClosed
	}
	defer s.end()
	select {
	case s.writeQ <- req:
		return <-req.done, nil
	default:
		inc(s.met.rejected)
		return response{}, ErrOverloaded
	}
}

// checkDim validates a vector against the live model dimensionality.
func (s *Server) checkDim(v []float64) error {
	if d := int(s.dim.Load()); len(v) != d {
		return fmt.Errorf("serve: vector dimension %d, model wants %d", len(v), d)
	}
	return nil
}

// KNN answers the k nearest neighbors of q through the serving path:
// admission, shard dispatch, coalescing, fused batch execution. Answers
// are exactly what the underlying Index.BatchKNN returns.
func (s *Server) KNN(q []float64, k int) ([]mmdr.Neighbor, error) {
	start := time.Now()
	if err := s.checkDim(q); err != nil {
		return nil, err
	}
	if k <= 0 {
		return nil, fmt.Errorf("serve: k must be positive, got %d", k)
	}
	req := &request{kind: opKNN, q: q, k: k, done: make(chan response, 1)}
	resp, err := s.submitRead(req)
	if err != nil {
		return nil, err
	}
	record(s.met.knn, start)
	if resp.err != nil {
		inc(s.met.errs)
		return nil, resp.err
	}
	return resp.neighbors, nil
}

// Range answers every point within r of q through the serving path.
func (s *Server) Range(q []float64, r float64) ([]mmdr.Neighbor, error) {
	start := time.Now()
	if err := s.checkDim(q); err != nil {
		return nil, err
	}
	if r < 0 {
		return nil, fmt.Errorf("serve: radius must be non-negative, got %g", r)
	}
	req := &request{kind: opRange, q: q, r: r, done: make(chan response, 1)}
	resp, err := s.submitRead(req)
	if err != nil {
		return nil, err
	}
	record(s.met.rng, start)
	if resp.err != nil {
		inc(s.met.errs)
		return nil, resp.err
	}
	return resp.neighbors, nil
}

// Insert adds a point to every replica (one global write order) and
// returns its row id.
func (s *Server) Insert(p []float64) (int, error) {
	start := time.Now()
	if err := s.checkDim(p); err != nil {
		return 0, err
	}
	req := &request{kind: opInsert, q: p, done: make(chan response, 1)}
	resp, err := s.submitWrite(req)
	if err != nil {
		return 0, err
	}
	record(s.met.ins, start)
	if resp.err != nil {
		inc(s.met.errs)
		return 0, resp.err
	}
	return resp.id, nil
}

// Delete removes point id from every replica; found reports whether the
// point was indexed.
func (s *Server) Delete(id int) (bool, error) {
	start := time.Now()
	req := &request{kind: opDelete, id: id, done: make(chan response, 1)}
	resp, err := s.submitWrite(req)
	if err != nil {
		return false, err
	}
	record(s.met.del, start)
	if resp.err != nil {
		inc(s.met.errs)
		return false, resp.err
	}
	return resp.found, nil
}

// Status is a point-in-time view of the server for /statusz.
type Status struct {
	Shards     int   `json:"shards"`
	QueueDepth int   `json:"queue_depth"`
	MaxBatch   int   `json:"max_batch"`
	FlushUS    int64 `json:"flush_delay_us"`
	Workers    int   `json:"workers"`
	Dim        int   `json:"dim"`
	Points     int64 `json:"points"`
	Generation int64 `json:"generation"`
	Closing    bool  `json:"closing"`
}

// Stats snapshots the server's configuration and live model identity.
func (s *Server) Stats() Status {
	s.mu.RLock()
	closing := s.closing
	s.mu.RUnlock()
	return Status{
		Shards:     len(s.shards),
		QueueDepth: s.opts.QueueDepth,
		MaxBatch:   s.opts.MaxBatch,
		FlushUS:    s.opts.FlushDelay.Microseconds(),
		Workers:    s.opts.Workers,
		Dim:        int(s.dim.Load()),
		Points:     s.points.Load(),
		Generation: s.gen.Load(),
		Closing:    closing,
	}
}

// Close shuts the server down in drain order: refuse new requests, quiesce
// the HTTP layer, tell workers to flush their lingering partial batches,
// wait for every in-flight request to finish against live workers, then
// stop the workers and sequencer and wait for them to exit. The drain
// signal before inflight.Wait matters: requests parked in a coalescing
// buffer are answered only by a flush, and with a long FlushDelay that
// flush would otherwise come after the wait that needs it — a deadlock.
// Safe to call concurrently and repeatedly; every call returns only after
// shutdown completed.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		<-s.closed
		return nil
	}
	s.closing = true
	s.mu.Unlock()

	s.closeHTTP()
	close(s.drained)
	s.inflight.Wait()
	close(s.stop)
	s.wg.Wait()
	close(s.closed)
	return nil
}
