// Package quant implements per-partition product quantization for the
// approximate query mode: each index partition (reduced subspace or the
// original-space outlier set) gets its own codebook that splits the
// partition's vector space into m contiguous sub-blocks and k-means-quantizes
// each block to K = 2^bits centroids. A stored vector compresses to m uint8
// sub-codes — 8·d/m times smaller than its float64 coordinates — and a query
// evaluates a coded row asymmetrically (ADC): one lookup table of exact
// query-to-centroid squared distances per block, then m table loads per row
// (see matrix.ADCSum).
//
// Training reuses the repository's k-means machinery and inherits its
// determinism guarantee: per-point work is index-partitioned and every
// floating-point reduction is serial, so codebooks are bit-identical at any
// Parallelism setting. Sub-sampling, block splitting and seed derivation are
// all deterministic functions of the configuration, never of scheduling.
package quant

import (
	"fmt"
	"math"

	"mmdr/internal/dataset"
	"mmdr/internal/kmeans"
	"mmdr/internal/matrix"
	"mmdr/internal/reduction"
)

// Defaults for Config fields left zero.
const (
	DefaultBlocks    = 8     // sub-blocks per partition (clamped to the dimension)
	DefaultBits      = 6     // log2 centroids per block → K=64
	DefaultMaxIters  = 25    // Lloyd iterations per block
	DefaultSampleCap = 20000 // training rows per partition before stride sampling
)

// Config parameterizes codebook training.
type Config struct {
	// Blocks is m, the sub-blocks per partition. Partitions of dimension
	// d < m use d blocks (one dimension each); 0 means DefaultBlocks. The
	// code for one vector occupies min(Blocks, d) bytes.
	Blocks int
	// Bits is log2 of the centroids per block, 1..8 (codes are uint8);
	// 0 means DefaultBits. Fewer centroids than 2^Bits are used when a
	// partition has fewer training rows.
	Bits int
	// Seed drives k-means++ seeding. Per-partition and per-block seeds are
	// derived from it deterministically.
	Seed int64
	// Parallelism bounds the workers inside each k-means run (the block
	// loop itself is serial). Any setting yields bit-identical codebooks.
	Parallelism int
	// MaxIters bounds Lloyd iterations per block; 0 means DefaultMaxIters.
	MaxIters int
	// SampleCap bounds the training rows per partition; larger partitions
	// are stride-sampled deterministically. 0 means DefaultSampleCap,
	// negative disables sampling.
	SampleCap int
}

func (c Config) withDefaults() Config {
	if c.Blocks <= 0 {
		c.Blocks = DefaultBlocks
	}
	if c.Bits <= 0 {
		c.Bits = DefaultBits
	}
	if c.MaxIters <= 0 {
		c.MaxIters = DefaultMaxIters
	}
	if c.SampleCap == 0 {
		c.SampleCap = DefaultSampleCap
	}
	return c
}

// Codebook is the product quantizer of one partition. Block j covers the
// contiguous dimension range [Split[j], Split[j+1]) and owns K centroids of
// that width, stored row-major in its slab of Centroids. The unexported slab
// offsets are skipped by gob and re-derived by EnsureKernels after a Load,
// so a persisted codebook can never silently arrive with stale geometry.
//
//mmdr:persist rebuild=EnsureKernels
type Codebook struct {
	Dim   int   // partition dimensionality
	M     int   // sub-blocks; one code byte per block
	K     int   // centroids per block (≤ 256)
	Split []int // len M+1, ascending, Split[0]=0, Split[M]=Dim

	// Centroids concatenates one slab per block: block j's slab holds K
	// row-major centroids of width Split[j+1]-Split[j].
	Centroids []float64

	off []int // derived slab offsets into Centroids, len M+1
}

// EnsureKernels (re)derives the unexported slab offsets from the exported
// geometry. Idempotent; called by Train and after gob decoding.
func (cb *Codebook) EnsureKernels() {
	if cb.off != nil || cb.M <= 0 {
		return
	}
	off := make([]int, cb.M+1)
	for j := 0; j < cb.M; j++ {
		off[j+1] = off[j] + cb.K*(cb.Split[j+1]-cb.Split[j])
	}
	cb.off = off
}

// Validate checks the codebook's structural invariants.
func (cb *Codebook) Validate() error {
	if cb.Dim <= 0 || cb.M <= 0 || cb.M > cb.Dim {
		return fmt.Errorf("quant: codebook blocks m=%d invalid for dim %d", cb.M, cb.Dim)
	}
	if cb.K <= 0 || cb.K > 256 {
		return fmt.Errorf("quant: codebook K=%d outside uint8 range", cb.K)
	}
	if len(cb.Split) != cb.M+1 || cb.Split[0] != 0 || cb.Split[cb.M] != cb.Dim {
		return fmt.Errorf("quant: codebook split of len %d does not cover dim %d", len(cb.Split), cb.Dim)
	}
	total := 0
	for j := 0; j < cb.M; j++ {
		w := cb.Split[j+1] - cb.Split[j]
		if w <= 0 {
			return fmt.Errorf("quant: codebook block %d has width %d", j, w)
		}
		total += cb.K * w
	}
	if len(cb.Centroids) != total {
		return fmt.Errorf("quant: codebook centroid storage %d != expected %d", len(cb.Centroids), total)
	}
	return nil
}

// CodeBytes returns the bytes one coded vector occupies (one per block).
func (cb *Codebook) CodeBytes() int { return cb.M }

// TableLen returns the float64 length of one ADC lookup table (M·K).
func (cb *Codebook) TableLen() int { return cb.M * cb.K }

// blockSlab returns block j's centroid slab and width.
func (cb *Codebook) blockSlab(j int) ([]float64, int) {
	w := cb.Split[j+1] - cb.Split[j]
	return cb.Centroids[cb.off[j]:cb.off[j+1]], w
}

// EncodeInto quantizes v (length Dim) into code (length M): per block, the
// index of the nearest centroid in squared Euclidean distance, lowest index
// winning ties (strict < comparison) so encoding is deterministic.
//
//mmdr:hotpath per-row encoding loop of every layout rebuild
func (cb *Codebook) EncodeInto(v []float64, code []byte) {
	for j := 0; j < cb.M; j++ {
		slab, w := cb.blockSlab(j)
		sub := v[cb.Split[j]:cb.Split[j+1]]
		best, bestD := 0, math.Inf(1)
		for c := 0; c < cb.K; c++ {
			d := matrix.SqDist(sub, slab[c*w:(c+1)*w])
			if d < bestD {
				best, bestD = c, d
			}
		}
		code[j] = byte(best)
	}
}

// ADCTableInto fills a per-query lookup table (length TableLen) with exact
// squared distances: table[j*K+c] = ‖q_block_j − centroid_c‖². The ADC
// estimate of a coded row is then matrix.ADCSum(table, K, code).
//
//mmdr:hotpath built once per (query, partition) on the quantized path
func (cb *Codebook) ADCTableInto(q []float64, table []float64) {
	k := cb.K
	for j := 0; j < cb.M; j++ {
		slab, w := cb.blockSlab(j)
		sub := q[cb.Split[j]:cb.Split[j+1]]
		row := table[j*k : (j+1)*k : (j+1)*k]
		for c := 0; c < k; c++ {
			row[c] = matrix.SqDist(sub, slab[c*w:(c+1)*w])
		}
	}
}

// splitDims partitions dim into m near-equal contiguous blocks (the first
// dim%m blocks one wider), the deterministic split EncodeInto and
// ADCTableInto assume.
func splitDims(dim, m int) []int {
	split := make([]int, m+1)
	base, rem := dim/m, dim%m
	for j := 0; j < m; j++ {
		w := base
		if j < rem {
			w++
		}
		split[j+1] = split[j] + w
	}
	return split
}

// Train fits a codebook over n = len(data)/dim row-major rows. Rows beyond
// the sample cap are stride-sampled (every ceil(n/cap)-th row), so the
// training set is a deterministic function of the data order.
func Train(data []float64, dim int, cfg Config) (*Codebook, error) {
	cfg = cfg.withDefaults()
	if dim <= 0 || len(data)%dim != 0 {
		return nil, fmt.Errorf("quant: data length %d not divisible by dim %d", len(data), dim)
	}
	n := len(data) / dim
	if n == 0 {
		return nil, fmt.Errorf("quant: no training rows")
	}
	if cfg.Bits > 8 {
		return nil, fmt.Errorf("quant: bits=%d exceeds uint8 codes", cfg.Bits)
	}
	m := cfg.Blocks
	if m > dim {
		m = dim
	}

	// Deterministic stride sampling: step = ceil(n/cap) keeps ≤ cap rows.
	step := 1
	if cfg.SampleCap > 0 && n > cfg.SampleCap {
		step = (n + cfg.SampleCap - 1) / cfg.SampleCap
	}
	nTrain := (n + step - 1) / step

	k := 1 << cfg.Bits
	if k > nTrain {
		k = nTrain
	}

	cb := &Codebook{Dim: dim, M: m, K: k, Split: splitDims(dim, m)}
	total := 0
	for j := 0; j < m; j++ {
		total += k * (cb.Split[j+1] - cb.Split[j])
	}
	cb.Centroids = make([]float64, 0, total)

	// Serial block loop; parallelism lives inside each k-means run, whose
	// reductions are serial in point order — bit-identical at any worker
	// count.
	sub := make([]float64, nTrain*cb.Split[1]) // widest block is the first
	for j := 0; j < m; j++ {
		lo, hi := cb.Split[j], cb.Split[j+1]
		w := hi - lo
		flat := sub[:nTrain*w]
		for r := 0; r < nTrain; r++ {
			copy(flat[r*w:(r+1)*w], data[(r*step)*dim+lo:(r*step)*dim+hi])
		}
		ds, err := dataset.FromData(w, flat)
		if err != nil {
			return nil, err
		}
		res, err := kmeans.Run(ds, kmeans.Options{
			K:           k,
			MaxIters:    cfg.MaxIters,
			Seed:        cfg.Seed + int64(j+1)*7919,
			Parallelism: cfg.Parallelism,
		})
		if err != nil {
			return nil, fmt.Errorf("quant: block %d: %w", j, err)
		}
		if res.K != k {
			return nil, fmt.Errorf("quant: block %d trained %d centroids, want %d", j, res.K, k)
		}
		for _, c := range res.Centroids {
			cb.Centroids = append(cb.Centroids, c...)
		}
	}
	cb.EnsureKernels()
	return cb, nil
}

// Set bundles one codebook per index partition, in the extended-iDistance
// partition order: reduction subspaces first (by subspace order), then the
// outlier partition when the reduction has outliers. Persisted whole by gob;
// the directive keeps future unexported fields from vanishing across a
// save/load round trip.
//
//mmdr:persist
type Set struct {
	Blocks int // configured m (before per-partition clamping)
	Bits   int // configured log2 K
	Books  []*Codebook
}

// EnsureKernels re-derives every codebook's unexported geometry (after gob
// decoding). Idempotent.
func (s *Set) EnsureKernels() {
	for _, cb := range s.Books {
		cb.EnsureKernels()
	}
}

// Validate checks every codebook.
func (s *Set) Validate() error {
	if len(s.Books) == 0 {
		return fmt.Errorf("quant: empty codebook set")
	}
	for i, cb := range s.Books {
		if cb == nil {
			return fmt.Errorf("quant: codebook %d is nil", i)
		}
		if err := cb.Validate(); err != nil {
			return fmt.Errorf("quant: codebook %d: %w", i, err)
		}
	}
	return nil
}

// CodeBytesPerVector returns the worst-case bytes per coded vector across
// partitions (partitions narrower than Blocks code fewer bytes).
func (s *Set) CodeBytesPerVector() int {
	max := 0
	for _, cb := range s.Books {
		if cb.M > max {
			max = cb.M
		}
	}
	return max
}

// TrainSet trains one codebook per partition of red over ds: subspace
// partitions train on their stored reduced coordinates, the outlier
// partition (when present) on the outliers' original-space points. The
// result aligns with idist's partition order.
func TrainSet(ds *dataset.Dataset, red *reduction.Result, cfg Config) (*Set, error) {
	cfg = cfg.withDefaults()
	set := &Set{Blocks: cfg.Blocks, Bits: cfg.Bits}
	for pi, sub := range red.Subspaces {
		pcfg := cfg
		pcfg.Seed = cfg.Seed + int64(pi+1)*1_000_003
		cb, err := Train(sub.Coords, sub.Dr, pcfg)
		if err != nil {
			return nil, fmt.Errorf("quant: subspace %d: %w", pi, err)
		}
		set.Books = append(set.Books, cb)
	}
	if len(red.Outliers) > 0 {
		flat := make([]float64, len(red.Outliers)*ds.Dim)
		for i, id := range red.Outliers {
			copy(flat[i*ds.Dim:(i+1)*ds.Dim], ds.Point(id))
		}
		pcfg := cfg
		pcfg.Seed = cfg.Seed + int64(len(red.Subspaces)+1)*1_000_003
		cb, err := Train(flat, ds.Dim, pcfg)
		if err != nil {
			return nil, fmt.Errorf("quant: outlier partition: %w", err)
		}
		set.Books = append(set.Books, cb)
	}
	if len(set.Books) == 0 {
		return nil, fmt.Errorf("quant: reduction has no partitions")
	}
	return set, nil
}
