package quant

import (
	"bytes"
	"encoding/gob"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"mmdr/internal/core"
	"mmdr/internal/datagen"
	"mmdr/internal/matrix"
)

// trainData builds n rows of clustered dim-dimensional data so k-means has
// real structure to find.
func trainData(n, dim int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	data := make([]float64, n*dim)
	for r := 0; r < n; r++ {
		center := float64(r % 4)
		for c := 0; c < dim; c++ {
			data[r*dim+c] = center + 0.1*rng.NormFloat64()
		}
	}
	return data
}

func TestSplitDimsCoverage(t *testing.T) {
	for dim := 1; dim <= 20; dim++ {
		for m := 1; m <= dim; m++ {
			split := splitDims(dim, m)
			if len(split) != m+1 || split[0] != 0 || split[m] != dim {
				t.Fatalf("dim=%d m=%d: bad split %v", dim, m, split)
			}
			for j := 0; j < m; j++ {
				w := split[j+1] - split[j]
				if w < dim/m || w > dim/m+1 {
					t.Fatalf("dim=%d m=%d: block %d width %d", dim, m, j, w)
				}
			}
		}
	}
}

func TestTrainDeterministicAcrossParallelism(t *testing.T) {
	data := trainData(600, 12, 3)
	var want *Codebook
	for _, p := range []int{1, 2, 8} {
		cb, err := Train(data, 12, Config{Blocks: 4, Bits: 5, Seed: 42, Parallelism: p})
		if err != nil {
			t.Fatalf("parallelism %d: %v", p, err)
		}
		if err := cb.Validate(); err != nil {
			t.Fatalf("parallelism %d: %v", p, err)
		}
		if want == nil {
			want = cb
			continue
		}
		if !reflect.DeepEqual(cb.Centroids, want.Centroids) {
			t.Fatalf("parallelism %d: centroids differ from serial training", p)
		}
		if !reflect.DeepEqual(cb.Split, want.Split) || cb.K != want.K {
			t.Fatalf("parallelism %d: geometry differs", p)
		}
	}
}

func TestTrainClampsBlocksAndK(t *testing.T) {
	// dim 3 < Blocks 8 → one block per dimension; 10 rows < 2^6 → K clamps.
	data := trainData(10, 3, 5)
	cb, err := Train(data, 3, Config{Blocks: 8, Bits: 6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if cb.M != 3 {
		t.Fatalf("M=%d want 3", cb.M)
	}
	if cb.K != 10 {
		t.Fatalf("K=%d want 10", cb.K)
	}
	if err := cb.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTrainSampleCapDeterministic(t *testing.T) {
	data := trainData(2000, 8, 7)
	a, err := Train(data, 8, Config{Blocks: 4, Bits: 4, Seed: 9, SampleCap: 300})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(data, 8, Config{Blocks: 4, Bits: 4, Seed: 9, SampleCap: 300, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Centroids, b.Centroids) {
		t.Fatal("sampled training not deterministic across parallelism")
	}
}

func TestEncodeNearestAndDeterministic(t *testing.T) {
	data := trainData(400, 10, 11)
	cb, err := Train(data, 10, Config{Blocks: 5, Bits: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	code := make([]byte, cb.M)
	code2 := make([]byte, cb.M)
	for r := 0; r < 50; r++ {
		v := data[r*10 : (r+1)*10]
		cb.EncodeInto(v, code)
		cb.EncodeInto(v, code2)
		if !bytes.Equal(code, code2) {
			t.Fatal("encoding not deterministic")
		}
		// Each sub-code must actually be the nearest centroid of its block.
		for j := 0; j < cb.M; j++ {
			slab, w := cb.blockSlab(j)
			sub := v[cb.Split[j]:cb.Split[j+1]]
			got := matrix.SqDist(sub, slab[int(code[j])*w:(int(code[j])+1)*w])
			for c := 0; c < cb.K; c++ {
				if d := matrix.SqDist(sub, slab[c*w:(c+1)*w]); d < got {
					t.Fatalf("row %d block %d: centroid %d at %v beats code %d at %v",
						r, j, c, d, code[j], got)
				}
			}
		}
	}
}

func TestADCTableMatchesDirectDistances(t *testing.T) {
	data := trainData(300, 9, 13)
	cb, err := Train(data, 9, Config{Blocks: 3, Bits: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	q := make([]float64, 9)
	for i := range q {
		q[i] = rng.NormFloat64()
	}
	table := make([]float64, cb.TableLen())
	cb.ADCTableInto(q, table)
	for j := 0; j < cb.M; j++ {
		slab, w := cb.blockSlab(j)
		sub := q[cb.Split[j]:cb.Split[j+1]]
		for c := 0; c < cb.K; c++ {
			want := matrix.SqDist(sub, slab[c*w:(c+1)*w])
			if got := table[j*cb.K+c]; got != want {
				t.Fatalf("table[%d,%d]=%v want %v", j, c, got, want)
			}
			if table[j*cb.K+c] < 0 {
				t.Fatalf("negative table entry at (%d,%d)", j, c)
			}
		}
	}
	// The ADC estimate of a coded row is the block-wise sum, bit for bit.
	code := make([]byte, cb.M)
	v := data[42*9 : 43*9]
	cb.EncodeInto(v, code)
	var want float64
	for j, c := range code {
		want += table[j*cb.K+int(c)]
	}
	if got := matrix.ADCSum(table, cb.K, code); got != want {
		t.Fatalf("ADCSum=%v want %v", got, want)
	}
}

func TestTrainSetOverReduction(t *testing.T) {
	cfg := datagen.CorrelatedConfig{N: 900, Dim: 12, NumClusters: 3, SDim: 2, VarRatio: 20, Seed: 23}
	ds, _, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	datagen.Normalize(ds)
	red, err := core.New(core.Params{Seed: 23, MaxEC: 5}).Reduce(ds)
	if err != nil {
		t.Fatal(err)
	}
	set, err := TrainSet(ds, red, Config{Blocks: 4, Bits: 5, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	if err := set.Validate(); err != nil {
		t.Fatal(err)
	}
	wantParts := len(red.Subspaces)
	if len(red.Outliers) > 0 {
		wantParts++
	}
	if len(set.Books) != wantParts {
		t.Fatalf("books=%d want %d", len(set.Books), wantParts)
	}
	for pi, s := range red.Subspaces {
		if set.Books[pi].Dim != s.Dr {
			t.Fatalf("book %d dim=%d want Dr=%d", pi, set.Books[pi].Dim, s.Dr)
		}
	}
	if len(red.Outliers) > 0 {
		if got := set.Books[len(set.Books)-1].Dim; got != ds.Dim {
			t.Fatalf("outlier book dim=%d want %d", got, ds.Dim)
		}
	}
	// Deterministic across parallelism end to end.
	set2, err := TrainSet(ds, red, Config{Blocks: 4, Bits: 5, Seed: 23, Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := range set.Books {
		if !reflect.DeepEqual(set.Books[i].Centroids, set2.Books[i].Centroids) {
			t.Fatalf("book %d differs across parallelism", i)
		}
	}
}

func TestSetGobRoundTrip(t *testing.T) {
	data := trainData(500, 10, 29)
	cb, err := Train(data, 10, Config{Blocks: 5, Bits: 4, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	set := &Set{Blocks: 5, Bits: 4, Books: []*Codebook{cb}}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(set); err != nil {
		t.Fatal(err)
	}
	var back Set
	if err := gob.NewDecoder(&buf).Decode(&back); err != nil {
		t.Fatal(err)
	}
	// The derived slab offsets are unexported: gone after decode, restored
	// by EnsureKernels.
	if back.Books[0].off != nil {
		t.Fatal("unexported offsets unexpectedly survived gob")
	}
	back.EnsureKernels()
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Books[0].off, cb.off) {
		t.Fatalf("rebuilt offsets %v != original %v", back.Books[0].off, cb.off)
	}
	// Round-tripped codebook encodes and tabulates bit-identically.
	code, codeBack := make([]byte, cb.M), make([]byte, cb.M)
	table, tableBack := make([]float64, cb.TableLen()), make([]float64, cb.TableLen())
	for r := 0; r < 20; r++ {
		v := data[r*10 : (r+1)*10]
		cb.EncodeInto(v, code)
		back.Books[0].EncodeInto(v, codeBack)
		if !bytes.Equal(code, codeBack) {
			t.Fatalf("row %d: codes differ after round trip", r)
		}
		cb.ADCTableInto(v, table)
		back.Books[0].ADCTableInto(v, tableBack)
		if !reflect.DeepEqual(table, tableBack) {
			t.Fatalf("row %d: tables differ after round trip", r)
		}
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil, 4, Config{}); err == nil {
		t.Fatal("want error for empty data")
	}
	if _, err := Train(make([]float64, 10), 4, Config{}); err == nil {
		t.Fatal("want error for ragged data")
	}
	if _, err := Train(make([]float64, 16), 4, Config{Bits: 9}); err == nil {
		t.Fatal("want error for bits > 8")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	data := trainData(200, 8, 31)
	cb, err := Train(data, 8, Config{Blocks: 4, Bits: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	bad := *cb
	bad.Centroids = bad.Centroids[:len(bad.Centroids)-1]
	if err := bad.Validate(); err == nil {
		t.Fatal("want error for truncated centroids")
	}
	bad2 := *cb
	bad2.K = 300
	if err := bad2.Validate(); err == nil {
		t.Fatal("want error for K > 256")
	}
}

// Quantization error should be meaningfully smaller than the data's own
// spread — a sanity check that training actually fits the distribution.
func TestQuantizationReducesError(t *testing.T) {
	data := trainData(800, 8, 37)
	cb, err := Train(data, 8, Config{Blocks: 4, Bits: 6, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	code := make([]byte, cb.M)
	var errSum, varSum float64
	mean := make([]float64, 8)
	for r := 0; r < 800; r++ {
		for c := 0; c < 8; c++ {
			mean[c] += data[r*8+c]
		}
	}
	for c := range mean {
		mean[c] /= 800
	}
	for r := 0; r < 800; r++ {
		v := data[r*8 : (r+1)*8]
		cb.EncodeInto(v, code)
		for j := 0; j < cb.M; j++ {
			slab, w := cb.blockSlab(j)
			errSum += matrix.SqDist(v[cb.Split[j]:cb.Split[j+1]], slab[int(code[j])*w:(int(code[j])+1)*w])
		}
		varSum += matrix.SqDist(v, mean)
	}
	if math.IsNaN(errSum) || errSum > varSum/10 {
		t.Fatalf("quantization error %v vs variance %v: quantizer did not fit", errSum, varSum)
	}
}
