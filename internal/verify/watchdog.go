package verify

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

// Watchdog fails a test when any tracked in-flight operation outlives its
// deadline — the execution-time detector for deadlocks, livelocks, and
// lost responses (a request whose reply channel nobody will ever write).
// Operations register with Enter and must call the returned exit function;
// a monitor goroutine periodically scans for overdue entries and trips at
// most once, attaching the stuck operations and a full goroutine dump so
// the blocked stacks are in the failure output.
//
// The monitor is itself a goroutine the Leak helper would flag, so Stop
// must be called (typically deferred) before the scenario's leak check.
type Watchdog struct {
	t        testing.TB
	deadline time.Duration

	mu       sync.Mutex
	inflight map[uint64]watchEntry
	nextID   uint64

	stop    chan struct{}
	stopped sync.WaitGroup
	tripped bool // guarded by mu; the watchdog reports at most once
}

type watchEntry struct {
	label string
	start time.Time
}

// NewWatchdog starts a watchdog whose tracked operations must finish
// within deadline.
func NewWatchdog(t testing.TB, deadline time.Duration) *Watchdog {
	w := &Watchdog{
		t:        t,
		deadline: deadline,
		inflight: make(map[uint64]watchEntry),
		stop:     make(chan struct{}),
	}
	w.stopped.Add(1)
	go w.monitor()
	return w
}

// Enter registers an in-flight operation and returns its exit function.
// Exit is idempotent.
func (w *Watchdog) Enter(label string) func() {
	w.mu.Lock()
	id := w.nextID
	w.nextID++
	w.inflight[id] = watchEntry{label: label, start: time.Now()}
	w.mu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			w.mu.Lock()
			delete(w.inflight, id)
			w.mu.Unlock()
		})
	}
}

// Wrap runs fn as a tracked operation.
func (w *Watchdog) Wrap(label string, fn func()) {
	exit := w.Enter(label)
	defer exit()
	fn()
}

// Stop halts the monitor goroutine and waits for it to exit. The test
// outcome is whatever the monitor already reported; operations still in
// flight at Stop are the caller's business (a scenario that wants "all
// drained" asserts it by having every Enter's exit run before Stop).
func (w *Watchdog) Stop() {
	w.mu.Lock()
	select {
	case <-w.stop:
	default:
		close(w.stop)
	}
	w.mu.Unlock()
	w.stopped.Wait()
}

// monitor scans for overdue operations every deadline/8 (floored so short
// test deadlines still poll promptly).
func (w *Watchdog) monitor() {
	defer w.stopped.Done()
	tick := w.deadline / 8
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-ticker.C:
			if w.scan() {
				return
			}
		}
	}
}

// scan trips the watchdog if any operation is overdue, reporting every
// overdue label with its age. Returns true once tripped: one report per
// watchdog, then the monitor retires.
func (w *Watchdog) scan() bool {
	now := time.Now()
	w.mu.Lock()
	ids := make([]uint64, 0, len(w.inflight))
	for id := range w.inflight {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var overdue []string
	for _, id := range ids {
		e := w.inflight[id]
		if age := now.Sub(e.start); age > w.deadline {
			overdue = append(overdue, fmt.Sprintf("%s (in flight %v)", e.label, age.Round(time.Millisecond)))
		}
	}
	if len(overdue) == 0 || w.tripped {
		w.mu.Unlock()
		return false
	}
	w.tripped = true
	w.mu.Unlock()
	w.t.Errorf("watchdog: %d operation(s) stalled past %v:\n  %s\nfull dump:\n%s",
		len(overdue), w.deadline, strings.Join(overdue, "\n  "), allStacks())
	return true
}

// Tripped reports whether the watchdog has fired.
func (w *Watchdog) Tripped() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.tripped
}

// Scenario is one adversarial schedule the gate drives.
type Scenario struct {
	Name string
	// Run receives the scenario's watchdog: wrap every request/response
	// round trip in w.Enter/exit (or w.Wrap) so a stall anywhere fails the
	// scenario with stacks instead of hanging the suite.
	Run func(t *testing.T, w *Watchdog)
}

// RunScenarios executes each scenario as a subtest with the gate's
// standard harness wrapped around it: a goroutine-leak baseline taken
// before the scenario and checked after it, and a stall watchdog the
// scenario threads through its operations. This is the entry point
// `make racegate` exercises under the race detector.
func RunScenarios(t *testing.T, deadline time.Duration, scenarios []Scenario) {
	for _, sc := range scenarios {
		t.Run(sc.Name, func(t *testing.T) {
			checkLeaks := Leak(t)
			w := NewWatchdog(t, deadline)
			sc.Run(t, w)
			w.Stop()
			checkLeaks()
		})
	}
}
