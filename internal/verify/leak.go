// Package verify is the repo's concurrency-verification gate: runtime
// helpers that make concurrent subsystems falsifiable under `go test -race`.
// Where mmdrlint and mmdrgate prove source- and compile-time properties,
// verify checks the two failure modes only execution can show:
//
//   - goroutine leaks — Leak snapshots the labeled goroutine population
//     before a scenario and fails the test if the scenario leaves extra
//     goroutines behind after a settle period (a server Close that forgets
//     to reap a worker, coalescer, or watchdog shows up here);
//   - stalls — Watchdog tracks in-flight operations and fails the test
//     with a full stack dump when any operation outlives its deadline
//     (deadlock and livelock detection for request/response systems).
//
// RunScenarios combines both into the scenario runner `make racegate`
// drives: every scenario executes under the race detector with leak and
// stall checking wrapped around it. The package is stdlib-only and has no
// goroutines of its own outside a running Watchdog.
package verify

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"
)

// leakSettle bounds how long a leak check waits for goroutines that are
// already on their way out (closed network connections, worker teardown)
// before declaring them leaked. Exiting goroutines disappear within
// microseconds; multi-second stragglers are bugs.
const leakSettle = 2 * time.Second

// GoroutineSnapshot is a point-in-time census of the process's goroutines
// grouped by label — the "created by" site when one exists, else the
// topmost function (main and bootstrap goroutines).
type GoroutineSnapshot struct {
	Counts map[string]int
	Total  int
}

// Goroutines captures the current snapshot.
func Goroutines() GoroutineSnapshot {
	return parseStacks(allStacks())
}

// allStacks returns the full goroutine dump, growing the buffer until the
// dump fits.
func allStacks() []byte {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			return buf[:n]
		}
		buf = make([]byte, 2*len(buf))
	}
}

// parseStacks groups a runtime.Stack(all=true) dump by goroutine label.
func parseStacks(dump []byte) GoroutineSnapshot {
	s := GoroutineSnapshot{Counts: make(map[string]int)}
	for _, block := range strings.Split(string(dump), "\n\n") {
		lines := strings.Split(strings.TrimSpace(block), "\n")
		if len(lines) == 0 || !strings.HasPrefix(lines[0], "goroutine ") {
			continue
		}
		s.Counts[goroutineLabel(lines)]++
		s.Total++
	}
	return s
}

// goroutineLabel derives the grouping label of one goroutine block: the
// creating function when the runtime recorded one, else the top frame.
func goroutineLabel(lines []string) string {
	for _, ln := range lines {
		if rest, ok := strings.CutPrefix(ln, "created by "); ok {
			// "created by net/http.(*Server).Serve in goroutine 5"
			if i := strings.Index(rest, " in goroutine"); i >= 0 {
				rest = rest[:i]
			}
			return strings.TrimSpace(rest)
		}
	}
	if len(lines) >= 2 {
		// lines[1] is the top function ("main.main()"); strip the call parens.
		top := strings.TrimSpace(lines[1])
		if i := strings.Index(top, "("); i > 0 {
			top = top[:i]
		}
		return top
	}
	return "unknown"
}

// leakDiff lists labels whose population grew versus the baseline, in
// sorted label order.
func leakDiff(base, cur GoroutineSnapshot) []string {
	labels := make([]string, 0, len(cur.Counts))
	for label := range cur.Counts {
		labels = append(labels, label)
	}
	sort.Strings(labels)
	var out []string
	for _, label := range labels {
		if n := cur.Counts[label]; n > base.Counts[label] {
			out = append(out, fmt.Sprintf("%s: %d -> %d", label, base.Counts[label], n))
		}
	}
	return out
}

// Leak snapshots the goroutine population now and returns a check function
// to call when the scenario's resources should all be released (typically
// deferred, after the server under test has been Closed). The check polls
// until every label's population is back at (or below) its baseline, and
// fails t with the per-label diff and a full stack dump if any goroutines
// remain after the settle deadline.
func Leak(t testing.TB) func() {
	t.Helper()
	base := Goroutines()
	return func() {
		t.Helper()
		deadline := time.Now().Add(leakSettle)
		var cur GoroutineSnapshot
		for {
			cur = Goroutines()
			if len(leakDiff(base, cur)) == 0 {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Errorf("goroutine leak: %d before, %d after settle; grown labels:\n  %s\nfull dump:\n%s",
			base.Total, cur.Total, strings.Join(leakDiff(base, cur), "\n  "), allStacks())
	}
}
