package verify

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// recordTB captures failures instead of failing the real test, so the
// helpers' failure paths are themselves testable.
type recordTB struct {
	testing.TB
	mu   sync.Mutex
	msgs []string
}

func (r *recordTB) Helper() {}

func (r *recordTB) Errorf(format string, args ...any) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.msgs = append(r.msgs, fmt.Sprintf(format, args...))
}

func (r *recordTB) failures() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.msgs...)
}

func TestGoroutineSnapshotSeesSpawn(t *testing.T) {
	base := Goroutines()
	if base.Total <= 0 {
		t.Fatalf("snapshot total %d", base.Total)
	}
	block := make(chan struct{})
	started := make(chan struct{})
	go func() { close(started); <-block }()
	<-started
	cur := Goroutines()
	diff := leakDiff(base, cur)
	if len(diff) == 0 {
		t.Fatalf("spawned goroutine not visible in diff (before %d, after %d)", base.Total, cur.Total)
	}
	// The label is the creation site in this package.
	if !strings.Contains(strings.Join(diff, "\n"), "verify") {
		t.Errorf("diff labels missing creation site: %v", diff)
	}
	close(block)
}

func TestLeakCleanPass(t *testing.T) {
	rt := &recordTB{TB: t}
	check := Leak(rt)
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
	check()
	if msgs := rt.failures(); len(msgs) != 0 {
		t.Fatalf("clean scenario reported a leak: %v", msgs)
	}
}

func TestLeakDetectsStuckGoroutine(t *testing.T) {
	rt := &recordTB{TB: t}
	check := Leak(rt)
	block := make(chan struct{})
	started := make(chan struct{})
	go func() { close(started); <-block }()
	<-started
	start := time.Now()
	check()
	if elapsed := time.Since(start); elapsed < leakSettle {
		t.Errorf("leak check returned after %v, before the %v settle deadline", elapsed, leakSettle)
	}
	msgs := rt.failures()
	if len(msgs) == 0 {
		t.Fatal("stuck goroutine not reported")
	}
	if !strings.Contains(msgs[0], "goroutine leak") {
		t.Errorf("unexpected failure message: %s", msgs[0])
	}
	close(block)
}

func TestWatchdogQuietOnFastOps(t *testing.T) {
	rt := &recordTB{TB: t}
	w := NewWatchdog(rt, 50*time.Millisecond)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w.Wrap(fmt.Sprintf("op-%d", i), func() { time.Sleep(time.Millisecond) })
		}(i)
	}
	wg.Wait()
	// Let at least one monitor tick observe the drained state.
	time.Sleep(20 * time.Millisecond)
	w.Stop()
	if w.Tripped() {
		t.Fatalf("watchdog tripped on fast ops: %v", rt.failures())
	}
}

func TestWatchdogTripsOnStall(t *testing.T) {
	rt := &recordTB{TB: t}
	w := NewWatchdog(rt, 20*time.Millisecond)
	exit := w.Enter("stalled-op")
	deadline := time.Now().Add(2 * time.Second)
	for !w.Tripped() && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	exit()
	w.Stop()
	if !w.Tripped() {
		t.Fatal("watchdog never tripped on a stalled operation")
	}
	msgs := rt.failures()
	if len(msgs) != 1 {
		t.Fatalf("want exactly one trip report, got %d: %v", len(msgs), msgs)
	}
	if !strings.Contains(msgs[0], "stalled-op") {
		t.Errorf("trip report missing the stalled label: %s", msgs[0])
	}
}

func TestWatchdogExitIdempotentAndStopTwice(t *testing.T) {
	w := NewWatchdog(t, time.Second)
	exit := w.Enter("op")
	exit()
	exit()
	w.Stop()
	w.Stop()
}

func TestRunScenariosHarness(t *testing.T) {
	ran := false
	RunScenarios(t, time.Second, []Scenario{{
		Name: "noop",
		Run: func(t *testing.T, w *Watchdog) {
			w.Wrap("noop", func() {})
			ran = true
		},
	}})
	if !ran {
		t.Fatal("scenario did not run")
	}
}
