// Package query provides the evaluation machinery of §6: exact KNN ground
// truth in the original space, the paper's precision measure
// |R_dr ∩ R_d| / |R_d|, and batch evaluation over query workloads.
package query

import (
	"math"

	"mmdr/internal/dataset"
	"mmdr/internal/index"
	"mmdr/internal/reduction"
)

// ExactKNN returns the exact k nearest neighbors of q in ds under L2 —
// R_d, the reference answer set.
func ExactKNN(ds *dataset.Dataset, q []float64, k int) []index.Neighbor {
	top := index.NewTopK(k)
	for i := 0; i < ds.N; i++ {
		p := ds.Point(i)
		var s float64
		for j, v := range q {
			d := v - p[j]
			s += d * d
		}
		top.Add(i, math.Sqrt(s))
	}
	return top.Sorted()
}

// Precision computes |R_dr ∩ R_d| / |R_d| (paper §6). Result sets are
// compared by point ID.
func Precision(approx, exact []index.Neighbor) float64 {
	if len(exact) == 0 {
		return 0
	}
	in := make(map[int]bool, len(exact))
	for _, n := range exact {
		in[n.ID] = true
	}
	hit := 0
	for _, n := range approx {
		if in[n.ID] {
			hit++
		}
	}
	return float64(hit) / float64(len(exact))
}

// MeanPrecision evaluates an index against exact search over the original
// data for every query (rows of queries), returning the mean precision of
// k-NN answers — the methodology of Figures 7 and 8 (100 queries, 10NN).
func MeanPrecision(ds *dataset.Dataset, idx index.KNNIndex, queries *dataset.Dataset, k int) float64 {
	if queries.N == 0 {
		return 0
	}
	var sum float64
	for i := 0; i < queries.N; i++ {
		q := queries.Point(i)
		sum += Precision(idx.KNN(q, k), ExactKNN(ds, q, k))
	}
	return sum / float64(queries.N)
}

// ReductionPrecision evaluates the representation itself, independent of
// any index, by sequential scan over the reduced data. All indexes over
// the same reduction return identical answer sets, so this is the number
// Figures 7 and 8 plot.
func ReductionPrecision(ds *dataset.Dataset, red *reduction.Result, queries *dataset.Dataset, k int) float64 {
	return MeanPrecision(ds, index.NewSeqScan(ds, red, nil), queries, k)
}
