package query

import (
	"math"
	"testing"

	"mmdr/internal/core"
	"mmdr/internal/datagen"
	"mmdr/internal/dataset"
	"mmdr/internal/index"
	"mmdr/internal/reduction"
)

func TestExactKNNOrderedAndCorrect(t *testing.T) {
	ds := dataset.New(5, 1)
	copy(ds.Data, []float64{0, 10, 3, 7, 1})
	res := ExactKNN(ds, []float64{2}, 3)
	if len(res) != 3 {
		t.Fatalf("%d results", len(res))
	}
	// Nearest to 2: 3 (dist 1), 1 (dist 1), 0 (dist 2).
	wantIDs := map[int]bool{2: true, 4: true, 0: true}
	for _, n := range res {
		if !wantIDs[n.ID] {
			t.Fatalf("unexpected neighbor %v", n)
		}
	}
	for i := 1; i < len(res); i++ {
		if res[i].Dist < res[i-1].Dist {
			t.Fatal("not sorted")
		}
	}
}

func TestPrecision(t *testing.T) {
	exact := []index.Neighbor{{ID: 1}, {ID: 2}, {ID: 3}, {ID: 4}}
	approx := []index.Neighbor{{ID: 2}, {ID: 4}, {ID: 9}, {ID: 10}}
	if p := Precision(approx, exact); p != 0.5 {
		t.Fatalf("Precision = %v, want 0.5", p)
	}
	if p := Precision(nil, exact); p != 0 {
		t.Fatalf("empty approx precision = %v", p)
	}
	if p := Precision(approx, nil); p != 0 {
		t.Fatalf("empty exact precision = %v", p)
	}
	if p := Precision(exact, exact); p != 1 {
		t.Fatalf("self precision = %v", p)
	}
}

// Full-rank reduction must give precision 1: the reduced representation is
// lossless, so R_dr == R_d.
func TestFullRankReductionPerfectPrecision(t *testing.T) {
	ds := datagen.Uniform(300, 6, 121)
	red, err := (&reduction.GDR{TargetDim: 6}).Reduce(ds)
	if err != nil {
		t.Fatal(err)
	}
	queries := datagen.SampleQueries(ds, 10, 0.01, 122)
	p := ReductionPrecision(ds, red, queries, 10)
	if math.Abs(p-1) > 1e-12 {
		t.Fatalf("full-rank precision = %v, want 1", p)
	}
}

// Precision must be within [0,1] and improve (weakly) with retained
// dimensionality on correlated data.
func TestPrecisionIncreasesWithDim(t *testing.T) {
	cfg := datagen.CorrelatedConfig{N: 600, Dim: 16, NumClusters: 2, SDim: 3, VarRatio: 20, Seed: 123}
	ds, _, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	datagen.Normalize(ds)
	queries := datagen.SampleQueries(ds, 20, 0.01, 124)
	var prev float64 = -1
	for _, dim := range []int{1, 4, 16} {
		red, err := (&reduction.GDR{TargetDim: dim}).Reduce(ds)
		if err != nil {
			t.Fatal(err)
		}
		p := ReductionPrecision(ds, red, queries, 10)
		if p < 0 || p > 1 {
			t.Fatalf("precision %v out of range", p)
		}
		if p < prev-0.1 {
			t.Fatalf("precision dropped substantially with more dims: %v -> %v", prev, p)
		}
		prev = p
	}
	if prev < 0.999 {
		t.Fatalf("full-dim precision = %v, want ~1", prev)
	}
}

// MMDR on strongly correlated clusters must beat GDR at equal retained
// dimensionality — the headline claim of Figure 7/8.
func TestMMDRBeatsGDROnLocallyCorrelatedData(t *testing.T) {
	cfg := datagen.CorrelatedConfig{N: 1000, Dim: 20, NumClusters: 4, SDim: 2, VarRatio: 25, Seed: 125}
	ds, _, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	datagen.Normalize(ds)
	queries := datagen.SampleQueries(ds, 30, 0.01, 126)

	mres, err := core.New(core.Params{Seed: 5, ForcedDim: 3}).Reduce(ds)
	if err != nil {
		t.Fatal(err)
	}
	gres, err := (&reduction.GDR{TargetDim: 3}).Reduce(ds)
	if err != nil {
		t.Fatal(err)
	}
	mp := ReductionPrecision(ds, mres, queries, 10)
	gp := ReductionPrecision(ds, gres, queries, 10)
	if mp <= gp {
		t.Fatalf("MMDR precision %v should beat GDR %v on locally correlated data", mp, gp)
	}
	if mp < 0.5 {
		t.Fatalf("MMDR precision %v unexpectedly low", mp)
	}
}

func TestMeanPrecisionEmptyQueries(t *testing.T) {
	ds := datagen.Uniform(10, 3, 127)
	red, err := (&reduction.GDR{TargetDim: 2}).Reduce(ds)
	if err != nil {
		t.Fatal(err)
	}
	if p := ReductionPrecision(ds, red, dataset.New(0, 3), 5); p != 0 {
		t.Fatalf("empty queries precision = %v", p)
	}
}
