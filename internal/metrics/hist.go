package metrics

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// Log-linear bucketing. The bucket of a nanosecond latency v is found with
// two bit operations: the octave (position of the most significant bit) is
// the log part, and the next subBits bits below the MSB select one of
// subCount linear sub-buckets inside the octave. Values below subCount get
// one bucket each (exact). The scheme is HdrHistogram's layout reduced to
// its fixed-precision core:
//
//   - relative quantile error ≤ 2^-subBits = 6.25% (each bucket's width is
//     at most 1/subCount of its lower bound),
//   - bucketOf is branch-light integer math — no floating point, no loops,
//     no table — so the record path stays allocation-free and O(1),
//   - the whole int64 range maps to numBuckets buckets, so no clamping or
//     overflow bucket is needed.
//
// Quantile extraction walks the cumulative counts and reports the matched
// bucket's upper bound (clamped to the observed maximum), so reported
// quantiles are conservative: p99 is never under-reported, and never
// over-reported by more than the bucket width.
const (
	subBits  = 4
	subCount = 1 << subBits

	// Octaves above the linear region: MSB positions subBits..62 for
	// positive int64 values, subCount buckets each.
	numBuckets = subCount + (63-subBits)*subCount
)

// bucketOf maps a non-negative nanosecond value to its bucket index.
//
//mmdr:hotpath called once per metric record
func bucketOf(ns int64) int {
	u := uint64(ns)
	if u < subCount {
		return int(u)
	}
	exp := bits.Len64(u) - 1 // MSB position, ≥ subBits
	shift := uint(exp - subBits)
	sub := int(u>>shift) - subCount // linear sub-bucket in [0, subCount)
	return subCount + (exp-subBits)*subCount + sub
}

// bucketUpper returns the largest value mapping to bucket b — the "le"
// boundary used for quantile extraction and Prometheus exposition.
func bucketUpper(b int) int64 {
	if b < subCount {
		return int64(b)
	}
	idx := b - subCount
	expOff := idx >> subBits
	sub := idx & (subCount - 1)
	shift := uint(expOff)
	return int64(subCount+sub+1)<<shift - 1
}

// hist is the concurrent histogram: one atomic counter per bucket plus
// atomic total/extrema. Buckets are shared (not sharded) — concurrent
// recorders with differing latencies touch different cache lines, and the
// per-shard count/sum in Op absorb the contention-sensitive aggregates.
type hist struct {
	total   atomic.Int64
	max     atomic.Int64
	min     atomic.Int64 // math.MaxInt64 until the first observation
	buckets [numBuckets]atomic.Int64
}

func (h *hist) init() { h.min.Store(math.MaxInt64) }

// observe records one nanosecond value and returns the new total count.
//
//mmdr:hotpath one bucket add, two bounded CAS races, one total add
func (h *hist) observe(ns int64) int64 {
	h.buckets[bucketOf(ns)].Add(1)
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			break
		}
	}
	for {
		cur := h.min.Load()
		if ns >= cur || h.min.CompareAndSwap(cur, ns) {
			break
		}
	}
	return h.total.Add(1)
}

// quantile returns the q-quantile (0 < q ≤ 1) in nanoseconds: the upper
// bound of the bucket holding the rank-⌈q·total⌉ observation, clamped to
// the observed maximum. Zero when nothing was recorded.
func (h *hist) quantile(q float64) int64 {
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := range h.buckets {
		c := h.buckets[i].Load()
		if c == 0 {
			continue
		}
		cum += c
		if cum >= rank {
			ub := bucketUpper(i)
			if mx := h.max.Load(); ub > mx {
				return mx
			}
			return ub
		}
	}
	// Rank beyond the cumulative sum (writers raced the walk): the max is
	// the best conservative answer.
	return h.max.Load()
}

// snapshotBuckets copies the non-zero buckets as (upper bound ns, count)
// pairs in ascending order, for exposition and merging.
func (h *hist) snapshotBuckets() []BucketCount {
	var out []BucketCount
	for i := range h.buckets {
		if c := h.buckets[i].Load(); c > 0 {
			out = append(out, BucketCount{UpperNS: bucketUpper(i), Count: c})
		}
	}
	return out
}

// BucketCount is one non-empty histogram bucket in a snapshot: Count
// observations with values ≤ UpperNS nanoseconds (and above the previous
// bucket's bound).
type BucketCount struct {
	UpperNS int64 `json:"upper_ns"`
	Count   int64 `json:"count"`
}
