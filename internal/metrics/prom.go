package metrics

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"strconv"
)

// Prometheus text exposition (version 0.0.4). Latencies are exported in
// seconds per Prometheus convention:
//
//	mmdr_op_latency_seconds_bucket{op="knn",le="0.000012"} 90
//	mmdr_op_latency_seconds_bucket{op="knn",le="+Inf"}     100
//	mmdr_op_latency_seconds_sum{op="knn"}                  0.0013
//	mmdr_op_latency_seconds_count{op="knn"}                100
//	mmdr_op_latency_quantile_seconds{op="knn",quantile="0.99"} 0.00003
//	mmdr_counter_total{name="slow_captures"} 2
//	mmdr_gauge{name="index_points"} 100000
//	mmdr_cost_total{kind="page_reads"} 123456
//
// Only non-empty buckets are written (cumulative counts stay correct), so
// the payload scales with the latency spread, not the 960-bucket layout.

// WritePrometheus writes the registry's instruments in Prometheus text
// format.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)

	opNames, ops := r.opNames()
	wroteHist := false
	for _, name := range opNames {
		o := ops[name]
		var count, sum int64
		for i := range o.shards {
			count += o.shards[i].count.Load()
			sum += o.shards[i].sum.Load()
		}
		if count == 0 {
			continue
		}
		if !wroteHist {
			fmt.Fprint(bw, "# HELP mmdr_op_latency_seconds Per-operation latency distribution.\n")
			fmt.Fprint(bw, "# TYPE mmdr_op_latency_seconds histogram\n")
			wroteHist = true
		}
		var cum int64
		for _, b := range o.hist.snapshotBuckets() {
			cum += b.Count
			fmt.Fprintf(bw, "mmdr_op_latency_seconds_bucket{op=%q,le=%q} %d\n",
				name, secs(b.UpperNS), cum)
		}
		fmt.Fprintf(bw, "mmdr_op_latency_seconds_bucket{op=%q,le=\"+Inf\"} %d\n", name, cum)
		fmt.Fprintf(bw, "mmdr_op_latency_seconds_sum{op=%q} %s\n", name, secs(sum))
		fmt.Fprintf(bw, "mmdr_op_latency_seconds_count{op=%q} %d\n", name, count)
	}
	wroteQ := false
	for _, name := range opNames {
		o := ops[name]
		if o.Count() == 0 {
			continue
		}
		if !wroteQ {
			fmt.Fprint(bw, "# HELP mmdr_op_latency_quantile_seconds Exact-bucket latency quantiles.\n")
			fmt.Fprint(bw, "# TYPE mmdr_op_latency_quantile_seconds gauge\n")
			wroteQ = true
		}
		for _, q := range [...]struct {
			label string
			v     float64
		}{{"0.5", 0.50}, {"0.9", 0.90}, {"0.99", 0.99}} {
			fmt.Fprintf(bw, "mmdr_op_latency_quantile_seconds{op=%q,quantile=%q} %s\n",
				name, q.label, secs(o.hist.quantile(q.v)))
		}
		fmt.Fprintf(bw, "mmdr_op_latency_quantile_seconds{op=%q,quantile=\"max\"} %s\n",
			name, secs(o.hist.max.Load()))
	}

	ctrNames, ctrs := r.counterNames()
	if len(ctrNames) > 0 {
		fmt.Fprint(bw, "# TYPE mmdr_counter_total counter\n")
		for _, name := range ctrNames {
			fmt.Fprintf(bw, "mmdr_counter_total{name=%q} %d\n", name, ctrs[name].Value())
		}
	}
	gNames, gs := r.gaugeNames()
	if len(gNames) > 0 {
		fmt.Fprint(bw, "# TYPE mmdr_gauge gauge\n")
		for _, name := range gNames {
			fmt.Fprintf(bw, "mmdr_gauge{name=%q} %d\n", name, gs[name].Value())
		}
	}

	fmt.Fprint(bw, "# TYPE mmdr_slow_queries_captured_total counter\n")
	fmt.Fprintf(bw, "mmdr_slow_queries_captured_total %d\n", r.slow.Total())

	if costs, ok := r.costSnapshot(); ok {
		fmt.Fprint(bw, "# HELP mmdr_cost_total Logical cost model totals (simulated I/O, distance ops).\n")
		fmt.Fprint(bw, "# TYPE mmdr_cost_total counter\n")
		costs.Each(func(kind string, v int64) {
			fmt.Fprintf(bw, "mmdr_cost_total{kind=%q} %d\n", kind, v)
		})
	}
	return bw.Flush()
}

// secs renders nanoseconds as a seconds literal with full precision.
func secs(ns int64) string {
	return strconv.FormatFloat(float64(ns)/1e9, 'g', -1, 64)
}

// Handler serves the registry as a Prometheus scrape target — mount it at
// /metrics on the obs debug server.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		// Best-effort: the scraper sees a truncated body on write error.
		_ = r.WritePrometheus(w)
	})
}
