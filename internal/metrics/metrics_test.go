package metrics

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"mmdr/internal/iostat"
	"mmdr/internal/obs"
)

func TestOpRecordAndSnapshot(t *testing.T) {
	r := NewRegistry()
	op := r.Op("knn")
	for i := 1; i <= 100; i++ {
		op.Record(time.Duration(i) * time.Microsecond)
	}
	if got := op.Count(); got != 100 {
		t.Fatalf("Count = %d, want 100", got)
	}
	s := r.Snapshot()
	if len(s.Ops) != 1 || s.Ops[0].Name != "knn" {
		t.Fatalf("snapshot ops = %+v, want one op named knn", s.Ops)
	}
	o := s.Ops[0]
	if o.Count != 100 {
		t.Errorf("snapshot count = %d", o.Count)
	}
	// sum 1..100 µs = 5050 µs = 5.05 ms
	if o.TotalMS < 5.0 || o.TotalMS > 5.1 {
		t.Errorf("TotalMS = %v, want ~5.05", o.TotalMS)
	}
	if o.MeanUS < 50 || o.MeanUS > 51 {
		t.Errorf("MeanUS = %v, want ~50.5", o.MeanUS)
	}
	if o.MaxUS != 100 {
		t.Errorf("MaxUS = %v, want 100", o.MaxUS)
	}
	if o.MinUS <= 0 || o.MinUS > 1.1 {
		t.Errorf("MinUS = %v, want ~1", o.MinUS)
	}
	if o.P50US < 50 || o.P50US > 50*(1+1.0/subCount) {
		t.Errorf("P50US = %v, want within bucket width of 50", o.P50US)
	}
	if o.P99US < 99 || o.P99US > 100 {
		t.Errorf("P99US = %v, want in [99,100]", o.P99US)
	}
	if len(o.Buckets) == 0 {
		t.Error("snapshot has no buckets")
	}
}

// TestRecordShardMerge verifies shard placement does not change totals:
// workers recording through distinct shards merge exactly on snapshot.
func TestRecordShardMerge(t *testing.T) {
	r := NewRegistry()
	op := r.Op("batch")
	const workers, perWorker = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				op.RecordShard(w, time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	if got := op.Count(); got != workers*perWorker {
		t.Fatalf("Count = %d, want %d", got, workers*perWorker)
	}
	s := r.Snapshot()
	if s.Ops[0].Count != workers*perWorker {
		t.Fatalf("snapshot count = %d, want %d", s.Ops[0].Count, workers*perWorker)
	}
}

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("queries")
	c.Add(3)
	c.AddShard(5, 4)
	if got := c.Value(); got != 7 {
		t.Errorf("counter = %d, want 7", got)
	}
	g := r.Gauge("points")
	g.Set(100)
	g.Add(-25)
	if got := g.Value(); got != 75 {
		t.Errorf("gauge = %d, want 75", got)
	}
	// Get-or-create returns the same instrument.
	if r.Counter("queries") != c || r.Gauge("points") != g || r.Op("x") != r.Op("x") {
		t.Error("registry did not return identical instruments for identical names")
	}
}

// TestAdaptiveSlowThreshold feeds a tight distribution until the adaptive
// refresh arms the threshold, then checks an outlier is flagged and the rate
// limit admits only one capture per gap.
func TestAdaptiveSlowThreshold(t *testing.T) {
	r := NewRegistry()
	op := r.Op("knn")
	// refreshEvery*2 samples at ~100µs arms the threshold at p99*slowFactor.
	for i := 0; i < refreshEvery*2; i++ {
		if op.Record(100 * time.Microsecond) {
			t.Fatalf("uniform sample %d flagged slow", i)
		}
	}
	th := op.SlowThreshold()
	if th <= 0 {
		t.Fatal("adaptive threshold never armed")
	}
	if th < 100*time.Microsecond || th > 100*time.Microsecond*slowFactor*2 {
		t.Errorf("threshold = %v, want around %v", th, 100*time.Microsecond*slowFactor)
	}
	if !op.Record(time.Second) {
		t.Error("10000x outlier not flagged slow")
	}
	// Within the default 100ms gap a second outlier must lose the rate limit.
	if op.Record(time.Second) {
		t.Error("second outlier within rate-limit gap was accepted")
	}
}

func TestSetSlowPolicyManual(t *testing.T) {
	op := NewRegistry().Op("knn")
	op.SetSlowPolicy(time.Nanosecond, 0)
	if !op.Record(time.Microsecond) {
		t.Error("manual 1ns threshold with no gap did not flag a 1µs sample")
	}
	if !op.Record(time.Microsecond) {
		t.Error("zero gap should admit every capture")
	}
	// Manual policy must survive the adaptive refresh boundary.
	for i := 0; i < refreshEvery*2; i++ {
		op.Record(time.Microsecond)
	}
	if got := op.SlowThreshold(); got != time.Nanosecond {
		t.Errorf("manual threshold overwritten by adaptive refresh: %v", got)
	}
	op.SetSlowPolicy(0, 0)
	if op.Record(time.Hour) {
		t.Error("threshold 0 must disable capture")
	}
}

func TestSlowLogRing(t *testing.T) {
	l := NewSlowLog(4)
	for i := 0; i < 6; i++ {
		l.Add(SlowQuery{Op: "knn", LatencyUS: float64(i)})
	}
	if l.Len() != 4 {
		t.Errorf("Len = %d, want 4 (bounded)", l.Len())
	}
	if l.Total() != 6 {
		t.Errorf("Total = %d, want 6", l.Total())
	}
	qs := l.Queries()
	// Newest first: 5,4,3,2.
	for i, want := range []float64{5, 4, 3, 2} {
		if qs[i].LatencyUS != want {
			t.Errorf("Queries()[%d].LatencyUS = %v, want %v", i, qs[i].LatencyUS, want)
		}
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Op("knn").Record(42 * time.Microsecond)
	r.Counter("queries").Add(1)
	r.Gauge("points").Set(9)
	data, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Ops) != 1 || back.Ops[0].Count != 1 ||
		len(back.Counters) != 1 || back.Counters[0].Value != 1 ||
		len(back.Gauges) != 1 || back.Gauges[0].Value != 9 {
		t.Errorf("round-trip mismatch: %s", data)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	op := r.Op("knn")
	for i := 1; i <= 200; i++ {
		op.Record(time.Duration(i) * time.Microsecond)
	}
	r.Counter("queries").Add(200)
	r.Gauge("points").Set(1000)
	r.SetCostSource(func() iostat.Counter {
		return iostat.Counter{PageReads: 7, DistanceOps: 11}
	})
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE mmdr_op_latency_seconds histogram",
		`mmdr_op_latency_seconds_bucket{op="knn",le="+Inf"} 200`,
		`mmdr_op_latency_seconds_count{op="knn"} 200`,
		`mmdr_op_latency_quantile_seconds{op="knn",quantile="0.5"}`,
		`mmdr_op_latency_quantile_seconds{op="knn",quantile="0.99"}`,
		`mmdr_counter_total{name="queries"} 200`,
		`mmdr_gauge{name="points"} 1000`,
		`mmdr_cost_total{kind="page_reads"} 7`,
		`mmdr_cost_total{kind="distance_ops"} 11`,
		"mmdr_slow_queries_captured_total 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q\n---\n%s", want, out)
		}
	}
	// Cumulative bucket counts must be non-decreasing per op.
	var prev int64 = -1
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, `mmdr_op_latency_seconds_bucket{op="knn"`) {
			continue
		}
		var n int64
		if _, err := fmtSscan(line[strings.LastIndex(line, " ")+1:], &n); err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		if n < prev {
			t.Errorf("bucket counts not cumulative: %d after %d", n, prev)
		}
		prev = n
	}
}

// fmtSscan isolates the single fmt use so the hot-path lint stays clean on
// the production files.
func fmtSscan(s string, v *int64) (int, error) {
	var n int64
	i := 0
	for ; i < len(s) && s[i] >= '0' && s[i] <= '9'; i++ {
		n = n*10 + int64(s[i]-'0')
	}
	if i == 0 {
		return 0, errNoDigits
	}
	*v = n
	return 1, nil
}

var errNoDigits = errParse("no digits")

type errParse string

func (e errParse) Error() string { return string(e) }

func TestPhaseTracer(t *testing.T) {
	r := NewRegistry()
	tr := NewPhaseTracer(r)
	tr.Begin(obs.Phase("pca"))
	tr.Attr("dim", 64)
	tr.Begin(obs.Phase("split"))
	tr.End() // split
	tr.End() // pca
	tr.End() // unmatched End must be a no-op
	s := r.Snapshot()
	var names []string
	for _, o := range s.Ops {
		names = append(names, o.Name)
	}
	if len(names) != 2 || names[0] != "build:pca" || names[1] != "build:split" {
		t.Fatalf("phase ops = %v, want [build:pca build:split]", names)
	}
	for _, o := range s.Ops {
		if o.Count != 1 {
			t.Errorf("%s count = %d, want 1", o.Name, o.Count)
		}
	}
}
