package metrics

import (
	"time"

	"mmdr/internal/obs"
)

// phaseTracer adapts the obs span stream into per-phase latency ops: every
// completed span records its wall-clock duration under "build:<phase>".
// Like every Tracer it is single-goroutine by contract, so the op cache and
// stack need no locking; the Ops it records into are concurrency-safe, so
// several phase tracers may feed one registry.
type phaseTracer struct {
	reg   *Registry
	ops   map[obs.Phase]*Op
	stack []phaseStart
}

type phaseStart struct {
	op *Op
	at time.Time
}

// NewPhaseTracer returns an obs.Tracer that records each completed pipeline
// phase into reg as operation "build:<phase>" — the bridge that puts the
// build pipeline's existing obs.Phase labels on the same quantile footing
// as the query operations.
func NewPhaseTracer(reg *Registry) obs.Tracer {
	return &phaseTracer{reg: reg, ops: make(map[obs.Phase]*Op)}
}

// Begin implements obs.Tracer.
func (t *phaseTracer) Begin(p obs.Phase) {
	op, ok := t.ops[p]
	if !ok {
		op = t.reg.Op("build:" + string(p))
		t.ops[p] = op
	}
	t.stack = append(t.stack, phaseStart{op: op, at: time.Now()})
}

// Attr implements obs.Tracer; numeric span attributes have no latency
// meaning here and are dropped.
func (t *phaseTracer) Attr(string, float64) {}

// End implements obs.Tracer.
func (t *phaseTracer) End() {
	n := len(t.stack)
	if n == 0 {
		return
	}
	top := t.stack[n-1]
	t.stack = t.stack[:n-1]
	top.op.Record(time.Since(top.at))
}
