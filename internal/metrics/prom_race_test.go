package metrics_test

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"mmdr/internal/metrics"
)

// TestPrometheusExpositionUnderConcurrentWrites scrapes the /metrics
// handler repeatedly while writers hammer every instrument type. Run
// under -race (make racegate / make race), this pins down that the
// exposition path takes a consistent snapshot instead of reading
// histogram buckets mid-update: no data race, no torn text, and every
// scrape parses as exposition lines.
func TestPrometheusExpositionUnderConcurrentWrites(t *testing.T) {
	reg := metrics.NewRegistry()
	srv := httptest.NewServer(metrics.Handler(reg))
	defer srv.Close()

	const writers = 8
	iters := 400
	if testing.Short() {
		iters = 100
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			op := reg.Op("scrape_race_op")
			ctr := reg.Counter("scrape_race_counter")
			g := reg.Gauge("scrape_race_gauge")
			for i := 0; i < iters; i++ {
				op.Record(time.Duration(w*iters+i+1) * time.Microsecond)
				ctr.Add(1)
				g.Set(int64(i))
				// A registry lookup racing the scrape's name iteration is
				// part of the contract too.
				reg.Op("scrape_race_op")
			}
		}(w)
	}
	scrapes := 0
	go func() { wg.Wait(); close(stop) }()
	client := srv.Client()
	for {
		select {
		case <-stop:
			if scrapes == 0 {
				t.Fatal("writers finished before a single scrape ran")
			}
			// One final scrape sees the settled totals.
			body := scrape(t, client, srv.URL)
			want := "mmdr_op_latency_seconds_count{op=\"scrape_race_op\"}"
			if !strings.Contains(body, want) {
				t.Fatalf("final scrape missing %q:\n%s", want, body)
			}
			return
		default:
			body := scrape(t, client, srv.URL)
			if !strings.Contains(body, "mmdr_") {
				t.Fatalf("scrape %d returned no mmdr metrics:\n%s", scrapes, body)
			}
			scrapes++
		}
	}
}

func scrape(t *testing.T, client *http.Client, url string) string {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scrape status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}
