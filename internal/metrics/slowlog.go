package metrics

import (
	"sync"
	"sync/atomic"
	"time"
)

// DefaultSlowLogSize bounds the slow-query ring: old captures are evicted
// oldest-first. Sized for a live "why was that slow" console, not an
// archive — persistent capture belongs to whatever scrapes the snapshot.
const DefaultSlowLogSize = 64

// SlowQuery is one captured tail-latency query: what ran, how slow it was
// against what threshold, and the structured explain re-recorded for it.
// Trace is typically an *idist.QueryTrace; it is stored as an interface so
// this package needs no knowledge of the index's explain shape (capture
// happens off the hot path, so the boxing is free to care about).
type SlowQuery struct {
	Op          string    `json:"op"`
	At          time.Time `json:"at"`
	LatencyUS   float64   `json:"latency_us"`
	ThresholdUS float64   `json:"threshold_us"`
	K           int       `json:"k,omitempty"`
	Query       []float64 `json:"query,omitempty"`
	Trace       any       `json:"trace,omitempty"`
}

// SlowLog is a bounded, concurrency-safe ring of captured slow queries.
type SlowLog struct {
	mu    sync.Mutex
	buf   []SlowQuery
	next  int // ring write position
	n     int // live entries, ≤ cap(buf)
	total atomic.Int64
}

// NewSlowLog returns a log keeping the most recent size captures
// (size ≤ 0 selects DefaultSlowLogSize).
func NewSlowLog(size int) *SlowLog {
	if size <= 0 {
		size = DefaultSlowLogSize
	}
	return &SlowLog{buf: make([]SlowQuery, size)}
}

// Add records one capture, evicting the oldest when full.
func (l *SlowLog) Add(sq SlowQuery) {
	l.total.Add(1)
	l.mu.Lock()
	defer l.mu.Unlock()
	l.buf[l.next] = sq
	l.next = (l.next + 1) % len(l.buf)
	if l.n < len(l.buf) {
		l.n++
	}
}

// Queries returns the captured queries, newest first.
func (l *SlowLog) Queries() []SlowQuery {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]SlowQuery, l.n)
	for i := 0; i < l.n; i++ {
		// newest is the entry just before next, going backwards
		out[i] = l.buf[(l.next-1-i+len(l.buf))%len(l.buf)]
	}
	return out
}

// Len returns the number of currently retained captures.
func (l *SlowLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}

// Total returns the number of captures ever accepted (including evicted).
func (l *SlowLog) Total() int64 { return l.total.Load() }
