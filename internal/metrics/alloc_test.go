package metrics

import (
	"testing"
	"time"
)

// TestRecordZeroAllocs pins the record path at zero heap allocations — the
// contract that lets every query in idist carry instrumentation without
// touching the index's own alloc budgets.
func TestRecordZeroAllocs(t *testing.T) {
	r := NewRegistry()
	op := r.Op("knn")
	ctr := r.Counter("queries")
	g := r.Gauge("points")
	d := 37 * time.Microsecond

	if n := testing.AllocsPerRun(1000, func() { op.Record(d) }); n != 0 {
		t.Errorf("Op.Record allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { op.RecordShard(3, d) }); n != 0 {
		t.Errorf("Op.RecordShard allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { ctr.AddShard(1, 1) }); n != 0 {
		t.Errorf("Counter.AddShard allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Set(5) }); n != 0 {
		t.Errorf("Gauge.Set allocates %v/op, want 0", n)
	}
}

// TestRecordZeroAllocsWhenSlowArmed re-pins the budget with the tail
// threshold armed: the threshold compare and (losing) capture claim must
// stay allocation-free too.
func TestRecordZeroAllocsWhenSlowArmed(t *testing.T) {
	op := NewRegistry().Op("knn")
	op.SetSlowPolicy(time.Nanosecond, time.Hour) // everything "slow", gap blocks captures
	op.Record(time.Microsecond)                  // consume the one allowed capture
	if n := testing.AllocsPerRun(1000, func() { op.Record(time.Microsecond) }); n != 0 {
		t.Errorf("Record with armed threshold allocates %v/op, want 0", n)
	}
}

func BenchmarkRecord(b *testing.B) {
	op := NewRegistry().Op("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		op.Record(time.Duration(i&1023) * time.Microsecond)
	}
}

func BenchmarkRecordShardParallel(b *testing.B) {
	op := NewRegistry().Op("bench")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			op.RecordShard(i, time.Microsecond)
			i++
		}
	})
}
