// Package metrics is the runtime metrics layer: allocation-free-on-record
// latency histograms with per-operation quantiles, sharded atomic counters
// and gauges, a bounded slow-query log with an adaptive tail threshold, and
// two exposition formats (Prometheus text and a JSON snapshot).
//
// Design constraints, in order:
//
//  1. The record path allocates nothing and takes no locks — one atomic add
//     into a (possibly caller-sharded) counter cell, one histogram bucket
//     add, and a couple of bounded CAS races for the extrema. The alloc
//     test pins 0 allocs/record; //mmdr:hotpath annotations put the path
//     under the mmdrlint allocation lint.
//  2. Snapshots are mergeable and consistent enough for monitoring: shards
//     are summed at read time, quantiles come from the shared buckets, and
//     concurrent writers can at worst make a snapshot a few observations
//     stale — never corrupt.
//  3. Everything is stdlib-only and pull-based: the registry owns no
//     goroutines, no timers, no channels. Exposition happens when a scraper
//     or CLI asks.
//
// Operations are registered once (Registry.Op) and the returned *Op is held
// by the caller, so the hot path never touches the registry's map or mutex.
package metrics

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mmdr/internal/iostat"
)

// Sharding bounds. Shard selection is the caller's choice: fan-out paths
// (batch query workers) pass their worker index so each worker owns a cell;
// single-call paths let Record derive a cheap hint from the value's low
// bits. Correctness never depends on the shard choice — shards are summed
// on snapshot — only contention does.
const (
	numShards = 8
	shardMask = numShards - 1
)

// shard is one padded counter cell: count and sum on their own cache line
// so workers recording into different shards never false-share.
type shard struct {
	count atomic.Int64
	sum   atomic.Int64
	_     [112]byte // pad to 128 bytes
}

// Slow-query policy defaults. The threshold adapts to the live distribution:
// every refreshEvery observations the current p99 is re-read from the
// histogram and the threshold set to p99·slowFactor, once minSamples
// observations exist. Captures are rate-limited to one per defaultGap.
const (
	refreshEvery  = 256 // must be a power of two (mask test on the count)
	minSamples    = 128
	slowFactor    = 4
	defaultGapNS  = int64(100 * time.Millisecond)
	defaultSlowNS = 0 // 0 = not armed until the adaptive refresh runs
)

// Op is one named operation's latency account: sharded count/sum, a
// log-linear histogram for quantiles, and the tail-capture policy state.
// Obtain with Registry.Op and keep the pointer; all methods are safe for
// concurrent use.
type Op struct {
	name   string
	shards [numShards]shard
	hist   hist

	// Tail-capture state. slowNs ≤ 0 means "no capture". manual disables
	// the adaptive refresh (tests and operators pin the threshold).
	slowNs      atomic.Int64
	manual      atomic.Bool
	gapNs       atomic.Int64
	lastCapture atomic.Int64 // unix nanos of the last accepted capture
}

func newOp(name string) *Op {
	o := &Op{name: name}
	o.hist.init()
	o.gapNs.Store(defaultGapNS)
	o.slowNs.Store(defaultSlowNS)
	return o
}

// Name returns the operation's registered name.
func (o *Op) Name() string { return o.name }

// Record accounts one latency sample. It reports whether the sample crossed
// the slow threshold AND won the capture rate limit — a true return is the
// caller's cue to capture diagnostic state (e.g. re-run the query with
// tracing into the slow-query log). The shard hint comes from the sample's
// low bits, which spreads concurrent recorders statistically.
//
//mmdr:hotpath budget pinned by TestRecordZeroAllocs: 0 allocs
func (o *Op) Record(d time.Duration) bool {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	return o.recordNs(int(ns), ns)
}

// RecordShard is Record with an explicit shard hint — fan-out paths pass
// their worker index so every worker owns its counter cell.
//
//mmdr:hotpath
func (o *Op) RecordShard(workerShard int, d time.Duration) bool {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	return o.recordNs(workerShard, ns)
}

//mmdr:hotpath shared record path: two shard adds, one histogram observe
func (o *Op) recordNs(shardHint int, ns int64) bool {
	s := &o.shards[shardHint&shardMask]
	s.count.Add(1)
	s.sum.Add(ns)
	n := o.hist.observe(ns)
	if n&(refreshEvery-1) == 0 && !o.manual.Load() {
		o.refreshSlowThreshold(n)
	}
	th := o.slowNs.Load()
	if th <= 0 || ns < th {
		return false
	}
	return o.claimCapture()
}

// refreshSlowThreshold re-derives the tail threshold from the live p99.
// Amortized: called once per refreshEvery observations.
func (o *Op) refreshSlowThreshold(total int64) {
	if total < minSamples {
		return
	}
	p99 := o.hist.quantile(0.99)
	if p99 <= 0 {
		return
	}
	o.slowNs.Store(p99 * slowFactor)
}

// claimCapture enforces the capture rate limit: at most one accepted
// capture per gap, decided by a single CAS so concurrent slow queries elect
// exactly one winner.
func (o *Op) claimCapture() bool {
	now := time.Now().UnixNano()
	last := o.lastCapture.Load()
	if now-last < o.gapNs.Load() {
		return false
	}
	return o.lastCapture.CompareAndSwap(last, now)
}

// SetSlowPolicy pins the tail-capture policy: samples at or above threshold
// are capture candidates, at most one accepted per minGap. It disables the
// adaptive p99-based threshold; threshold ≤ 0 disables capture entirely.
func (o *Op) SetSlowPolicy(threshold, minGap time.Duration) {
	o.manual.Store(true)
	o.slowNs.Store(int64(threshold))
	o.gapNs.Store(int64(minGap))
}

// SlowThreshold returns the current tail threshold (0 = not armed).
func (o *Op) SlowThreshold() time.Duration { return time.Duration(o.slowNs.Load()) }

// Count returns the total number of recorded samples across shards.
func (o *Op) Count() int64 {
	var n int64
	for i := range o.shards {
		n += o.shards[i].count.Load()
	}
	return n
}

// Quantile returns the q-quantile latency from the histogram.
func (o *Op) Quantile(q float64) time.Duration { return time.Duration(o.hist.quantile(q)) }

// counterShard is one padded add cell of a Counter.
type counterShard struct {
	v atomic.Int64
	_ [120]byte
}

// Counter is a monotonically increasing sharded counter. Like Op, fan-out
// paths should use AddShard with their worker index; Add uses shard 0,
// which is fine for serialized or low-rate paths.
type Counter struct {
	name   string
	shards [numShards]counterShard
}

// Add increments the counter.
//
//mmdr:hotpath
func (c *Counter) Add(n int64) { c.shards[0].v.Add(n) }

// AddShard increments the counter from a specific worker shard.
//
//mmdr:hotpath
func (c *Counter) AddShard(workerShard int, n int64) {
	c.shards[workerShard&shardMask].v.Add(n)
}

// Value returns the summed total.
func (c *Counter) Value() int64 {
	var n int64
	for i := range c.shards {
		n += c.shards[i].v.Load()
	}
	return n
}

// Name returns the counter's registered name.
func (c *Counter) Name() string { return c.name }

// Gauge is a point-in-time value (index size, partition count, worker
// count). A single atomic word: gauges are set, not accumulated, so
// sharding buys nothing.
type Gauge struct {
	name string
	v    atomic.Int64
}

// Set stores the gauge value.
//
//mmdr:hotpath
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by delta.
//
//mmdr:hotpath
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Name returns the gauge's registered name.
func (g *Gauge) Name() string { return g.name }

// Registry owns the named instruments of one measured unit (a process, an
// index, an experiment run). Registration takes a mutex; recording through
// the returned pointers does not. The zero value is not ready — use
// NewRegistry.
type Registry struct {
	mu       sync.Mutex
	ops      map[string]*Op
	counters map[string]*Counter
	gauges   map[string]*Gauge
	start    time.Time
	slow     *SlowLog

	// costs, when set, lets the Prometheus exposition include the logical
	// cost model (simulated page I/O, distance ops) alongside latencies.
	costs func() iostat.Counter
}

// NewRegistry returns an empty registry with a bounded slow-query log.
func NewRegistry() *Registry {
	return &Registry{
		ops:      make(map[string]*Op),
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		start:    time.Now(),
		slow:     NewSlowLog(DefaultSlowLogSize),
	}
}

// Op returns the named operation, registering it on first use. Call once
// and keep the pointer — the hot path must not re-resolve names.
func (r *Registry) Op(name string) *Op {
	r.mu.Lock()
	defer r.mu.Unlock()
	o, ok := r.ops[name]
	if !ok {
		o = newOp(name)
		r.ops[name] = o
	}
	return o
}

// Counter returns the named counter, registering it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{name: name}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, registering it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{name: name}
		r.gauges[name] = g
	}
	return g
}

// Slow returns the registry's slow-query log.
func (r *Registry) Slow() *SlowLog { return r.slow }

// SetCostSource attaches a logical-cost snapshot function (typically
// AtomicCounter.Snapshot) included in the Prometheus exposition.
func (r *Registry) SetCostSource(fn func() iostat.Counter) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.costs = fn
}

// opNames returns the registered op names sorted, holding the lock only for
// the copy. Sorted iteration keeps snapshots and exposition deterministic.
func (r *Registry) opNames() ([]string, map[string]*Op) {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.ops))
	for n := range r.ops {
		names = append(names, n)
	}
	sort.Strings(names)
	ops := make(map[string]*Op, len(names))
	for _, n := range names {
		ops[n] = r.ops[n]
	}
	return names, ops
}

func (r *Registry) counterNames() ([]string, map[string]*Counter) {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters))
	for n := range r.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	cs := make(map[string]*Counter, len(names))
	for _, n := range names {
		cs[n] = r.counters[n]
	}
	return names, cs
}

func (r *Registry) gaugeNames() ([]string, map[string]*Gauge) {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.gauges))
	for n := range r.gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	gs := make(map[string]*Gauge, len(names))
	for _, n := range names {
		gs[n] = r.gauges[n]
	}
	return names, gs
}

func (r *Registry) costSnapshot() (iostat.Counter, bool) {
	r.mu.Lock()
	fn := r.costs
	r.mu.Unlock()
	if fn == nil {
		return iostat.Counter{}, false
	}
	return fn(), true
}
