package metrics

import (
	"math"
	"testing"
)

// TestBucketOfMonotone checks that bucket index is monotone in the value and
// that every value falls at or below its bucket's upper bound.
func TestBucketOfMonotone(t *testing.T) {
	prev := -1
	for _, ns := range []int64{0, 1, 2, 15, 16, 17, 31, 32, 100, 1000, 12345,
		1e6, 1e9, math.MaxInt64 / 2, math.MaxInt64} {
		b := bucketOf(ns)
		if b < 0 || b >= numBuckets {
			t.Fatalf("bucketOf(%d) = %d out of range [0,%d)", ns, b, numBuckets)
		}
		if b < prev {
			t.Fatalf("bucketOf not monotone: bucketOf(%d)=%d < previous %d", ns, b, prev)
		}
		prev = b
		if up := bucketUpper(b); ns > up {
			t.Errorf("value %d above its bucket upper bound %d (bucket %d)", ns, up, b)
		}
	}
}

// TestBucketUpperRelativeError verifies the design bound: the bucket upper
// bound overestimates any value in the bucket by at most 1/2^subBits
// (6.25%) in the log-linear region.
func TestBucketUpperRelativeError(t *testing.T) {
	for _, ns := range []int64{17, 100, 999, 4097, 1e6 + 7, 3e9} {
		up := bucketUpper(bucketOf(ns))
		relErr := float64(up-ns) / float64(ns)
		if relErr < 0 {
			t.Fatalf("upper bound %d below value %d", up, ns)
		}
		if relErr > 1.0/float64(subCount) {
			t.Errorf("relative error %.4f for %d exceeds %.4f", relErr, ns, 1.0/float64(subCount))
		}
	}
}

// TestBucketBoundariesExhaustive walks every value up to a few octaves and
// checks bucketOf/bucketUpper agree: bucketUpper(b) is the largest value
// mapping to b.
func TestBucketBoundariesExhaustive(t *testing.T) {
	for ns := int64(0); ns < 4096; ns++ {
		b := bucketOf(ns)
		up := bucketUpper(b)
		if ns > up {
			t.Fatalf("value %d maps to bucket %d with upper %d", ns, b, up)
		}
		if bucketOf(up) != b {
			t.Fatalf("upper bound %d of bucket %d maps to bucket %d", up, b, bucketOf(up))
		}
		if up < math.MaxInt64 && bucketOf(up+1) == b {
			t.Fatalf("upper bound %d of bucket %d is not maximal", up, b)
		}
	}
}

// TestHistQuantile checks quantiles against an exactly-known distribution.
func TestHistQuantile(t *testing.T) {
	var h hist
	h.init()
	// 100 observations: 1..100 microseconds.
	for i := 1; i <= 100; i++ {
		h.observe(int64(i) * 1000)
	}
	if got := h.quantile(1.0); got != 100_000 {
		t.Errorf("p100 = %d, want exactly max 100000", got)
	}
	// p50 must be ≥ the exact 50th value and within one bucket width of it.
	for _, tc := range []struct {
		q     float64
		exact int64
	}{{0.50, 50_000}, {0.90, 90_000}, {0.99, 99_000}} {
		got := h.quantile(tc.q)
		if got < tc.exact {
			t.Errorf("q%.2f = %d below exact value %d", tc.q, got, tc.exact)
		}
		if relErr := float64(got-tc.exact) / float64(tc.exact); relErr > 1.0/float64(subCount) {
			t.Errorf("q%.2f = %d, relative error %.4f vs exact %d", tc.q, got, relErr, tc.exact)
		}
	}
	if got := h.quantile(0); got <= 0 || got > 1000+1000/int64(subCount) {
		t.Errorf("q0 = %d, want near min 1000", got)
	}
}

// TestHistEmpty checks the zero state is sane.
func TestHistEmpty(t *testing.T) {
	var h hist
	h.init()
	if got := h.quantile(0.99); got != 0 {
		t.Errorf("quantile of empty hist = %d, want 0", got)
	}
	if bs := h.snapshotBuckets(); len(bs) != 0 {
		t.Errorf("snapshotBuckets of empty hist = %v, want empty", bs)
	}
}
