package metrics

import "time"

// OpSnapshot is one operation's merged, point-in-time account: shard sums
// plus exact-bucket quantiles. Durations are microseconds as float64 —
// readable in dashboards at both nanosecond and second magnitudes.
type OpSnapshot struct {
	Name       string  `json:"name"`
	Count      int64   `json:"count"`
	RatePerSec float64 `json:"rate_per_sec"`
	TotalMS    float64 `json:"total_ms"`
	MeanUS     float64 `json:"mean_us"`
	MinUS      float64 `json:"min_us"`
	P50US      float64 `json:"p50_us"`
	P90US      float64 `json:"p90_us"`
	P99US      float64 `json:"p99_us"`
	MaxUS      float64 `json:"max_us"`
	// SlowThresholdUS is the current tail-capture threshold (0 = unarmed).
	SlowThresholdUS float64 `json:"slow_threshold_us,omitempty"`
	// Buckets are the non-empty histogram buckets (ascending upper bounds).
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// CounterSnapshot is one counter's summed value.
type CounterSnapshot struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeSnapshot is one gauge's current value.
type GaugeSnapshot struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// Snapshot is a registry-wide point-in-time view, JSON-marshalable for the
// expvar endpoint and the BENCH_*.json emitters. Instruments appear in
// sorted name order, so two snapshots of the same registry diff cleanly.
type Snapshot struct {
	UptimeMS     float64           `json:"uptime_ms"`
	Ops          []OpSnapshot      `json:"ops,omitempty"`
	Counters     []CounterSnapshot `json:"counters,omitempty"`
	Gauges       []GaugeSnapshot   `json:"gauges,omitempty"`
	SlowCaptured int64             `json:"slow_captured"`
	SlowRetained int               `json:"slow_retained"`
}

const usPerNs = 1e-3

// snapshotOp merges one op's shards and extracts its quantiles.
func snapshotOp(o *Op, uptime time.Duration) OpSnapshot {
	var count, sum int64
	for i := range o.shards {
		count += o.shards[i].count.Load()
		sum += o.shards[i].sum.Load()
	}
	s := OpSnapshot{
		Name:            o.name,
		Count:           count,
		TotalMS:         float64(sum) / 1e6,
		P50US:           float64(o.hist.quantile(0.50)) * usPerNs,
		P90US:           float64(o.hist.quantile(0.90)) * usPerNs,
		P99US:           float64(o.hist.quantile(0.99)) * usPerNs,
		MaxUS:           float64(o.hist.max.Load()) * usPerNs,
		SlowThresholdUS: float64(o.slowNs.Load()) * usPerNs,
		Buckets:         o.hist.snapshotBuckets(),
	}
	if count > 0 {
		s.MeanUS = float64(sum) / float64(count) * usPerNs
		if mn := o.hist.min.Load(); mn <= o.hist.max.Load() {
			s.MinUS = float64(mn) * usPerNs
		}
	}
	if secs := uptime.Seconds(); secs > 0 {
		s.RatePerSec = float64(count) / secs
	}
	return s
}

// Snapshot captures every registered instrument. Safe to call while
// recorders are active; each value is its instrument's total at some
// instant during the call.
func (r *Registry) Snapshot() Snapshot {
	uptime := time.Since(r.start)
	out := Snapshot{
		UptimeMS:     float64(uptime.Microseconds()) / 1000,
		SlowCaptured: r.slow.Total(),
		SlowRetained: r.slow.Len(),
	}
	opNames, ops := r.opNames()
	for _, n := range opNames {
		if o := ops[n]; o.Count() > 0 {
			out.Ops = append(out.Ops, snapshotOp(o, uptime))
		}
	}
	ctrNames, ctrs := r.counterNames()
	for _, n := range ctrNames {
		out.Counters = append(out.Counters, CounterSnapshot{Name: n, Value: ctrs[n].Value()})
	}
	gNames, gs := r.gaugeNames()
	for _, n := range gNames {
		out.Gauges = append(out.Gauges, GaugeSnapshot{Name: n, Value: gs[n].Value()})
	}
	return out
}
