package ellipkmeans

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mmdr/internal/dataset"
	"mmdr/internal/iostat"
	"mmdr/internal/matrix"
)

func TestGaussianMahaDistIdentityCov(t *testing.T) {
	g := &Gaussian{
		Mean:   []float64{0, 0},
		CovInv: matrix.Identity(2),
		LogDet: 0,
	}
	// With identity covariance, MahaDist is squared Euclidean distance.
	if d := g.MahaDist([]float64{3, 4}); math.Abs(d-25) > 1e-12 {
		t.Fatalf("MahaDist = %v, want 25", d)
	}
	if d := g.MahaDist([]float64{0, 0}); d != 0 {
		t.Fatalf("MahaDist(mean) = %v, want 0", d)
	}
}

// The figure-1 scenario: point B lies along the elongated axis and must be
// closer (Mahalanobis) than point A off-axis, even though A is closer in
// Euclidean distance.
func TestMahalanobisPrefersElongationAxis(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	// Cluster elongated along x: sd 10 in x, 0.5 in y.
	n := 2000
	pts := make([]float64, n*2)
	for i := 0; i < n; i++ {
		pts[i*2] = rng.NormFloat64() * 10
		pts[i*2+1] = rng.NormFloat64() * 0.5
	}
	g, err := NewGaussian(pts, 2, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	a := []float64{0, 3}  // off-axis, Euclidean dist 3
	b := []float64{15, 0} // on-axis, Euclidean dist 15
	if matrix.Dist(a, g.Mean) > matrix.Dist(b, g.Mean) {
		t.Fatal("test setup wrong: A should be Euclidean-closer")
	}
	if g.MahaDist(a) <= g.MahaDist(b) {
		t.Fatalf("MahaDist(A)=%v should exceed MahaDist(B)=%v", g.MahaDist(a), g.MahaDist(b))
	}
}

// Normalized Mahalanobis must penalize the large cluster: for a point
// equidistant (Mahalanobis-wise) the smaller-volume cluster wins.
func TestNormalizedPenalizesLargeClusters(t *testing.T) {
	big := &Gaussian{Mean: []float64{0, 0}, CovInv: matrix.Identity(2).Scale(1.0 / 100), LogDet: math.Log(100 * 100)}
	small := &Gaussian{Mean: []float64{10, 0}, CovInv: matrix.Identity(2), LogDet: 0}
	p := []float64{9, 0}
	// Raw Mahalanobis: big cluster is closer (81/100 < 1).
	if big.MahaDist(p) >= small.MahaDist(p) {
		t.Fatal("setup: raw Mahalanobis should prefer big cluster")
	}
	// Normalized: the volume term flips the preference.
	if big.NormMahaDist(p) <= small.NormMahaDist(p) {
		t.Fatalf("normalized should prefer small cluster: big=%v small=%v",
			big.NormMahaDist(p), small.NormMahaDist(p))
	}
}

// Property: MahaDist is non-negative and zero at the mean for random SPD
// covariances.
func TestMahaDistProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dim := 1 + r.Intn(6)
		n := dim*3 + 5
		pts := make([]float64, n*dim)
		for i := range pts {
			pts[i] = r.NormFloat64() * 4
		}
		g, err := NewGaussian(pts, dim, 1e-9)
		if err != nil {
			return false
		}
		if g.MahaDist(g.Mean) > 1e-9 {
			return false
		}
		p := make([]float64, dim)
		for i := range p {
			p[i] = r.NormFloat64() * 10
		}
		return g.MahaDist(p) >= -1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestMahaRadius(t *testing.T) {
	pts := []float64{0, 0, 1, 0, -1, 0, 0, 2, 0, -2}
	g, err := NewGaussian(pts, 2, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	r := g.MahaRadius(pts)
	if r <= 0 {
		t.Fatalf("MahaRadius = %v", r)
	}
	// Radius covers every member.
	for i := 0; i < len(pts); i += 2 {
		if g.MahaDist(pts[i:i+2]) > r+1e-12 {
			t.Fatal("radius does not cover member")
		}
	}
	if (&Gaussian{Mean: nil}).MahaRadius(nil) != 0 {
		t.Fatal("empty radius should be 0")
	}
}

// crossedEllipses builds two elongated clusters crossing at right angles:
// Euclidean k-means splits them wrongly, elliptical k-means should recover
// them.
func crossedEllipses(n int, seed int64) (*dataset.Dataset, []int) {
	rng := rand.New(rand.NewSource(seed))
	ds := dataset.New(n, 2)
	truth := make([]int, n)
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			ds.Point(i)[0] = rng.NormFloat64() * 12
			ds.Point(i)[1] = rng.NormFloat64() * 0.3
			truth[i] = 0
		} else {
			ds.Point(i)[0] = rng.NormFloat64() * 0.3
			ds.Point(i)[1] = rng.NormFloat64()*12 + 4 // offset so clusters differ
			truth[i] = 1
		}
	}
	return ds, truth
}

func clusterAgreement(truth, assign []int) float64 {
	// Two clusters: try both label mappings.
	match, swap := 0, 0
	for i := range truth {
		if truth[i] == assign[i] {
			match++
		} else {
			swap++
		}
	}
	if swap > match {
		match = swap
	}
	return float64(match) / float64(len(truth))
}

func TestRunRecoversCrossedEllipses(t *testing.T) {
	ds, truth := crossedEllipses(600, 43)
	res, err := Run(ds, Options{K: 2, Seed: 1, Normalized: true})
	if err != nil {
		t.Fatal(err)
	}
	if agr := clusterAgreement(truth, res.Assign); agr < 0.9 {
		t.Fatalf("agreement %v < 0.9", agr)
	}
}

func TestRunValidation(t *testing.T) {
	ds := dataset.New(3, 2)
	if _, err := Run(ds, Options{K: 0}); err == nil {
		t.Fatal("expected error for K=0")
	}
	if _, err := Run(dataset.New(0, 2), Options{K: 2}); err == nil {
		t.Fatal("expected error for empty dataset")
	}
}

// The lookup-table/Activity optimization must not change clustering quality
// materially, and must reduce distance computations.
func TestLookupTableOptimization(t *testing.T) {
	ds, truth := crossedEllipses(600, 44)
	var plain, opt iostat.Counter
	resPlain, err := Run(ds, Options{K: 2, Seed: 2, Normalized: true, Counter: &plain})
	if err != nil {
		t.Fatal(err)
	}
	resOpt, err := Run(ds, Options{
		K: 2, Seed: 2, Normalized: true, Counter: &opt,
		UseLookupTable: true, LookupK: 3, ActivityThreshold: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	aPlain := clusterAgreement(truth, resPlain.Assign)
	aOpt := clusterAgreement(truth, resOpt.Assign)
	if aOpt < aPlain-0.05 {
		t.Fatalf("optimized agreement %v much worse than plain %v", aOpt, aPlain)
	}
	if opt.DistanceOps >= plain.DistanceOps {
		t.Fatalf("lookup table did not reduce distance ops: %d >= %d", opt.DistanceOps, plain.DistanceOps)
	}
}

func TestRunKClampedToN(t *testing.T) {
	ds := dataset.New(3, 2)
	for i := 0; i < 3; i++ {
		ds.Point(i)[0] = float64(i * 10)
	}
	res, err := Run(ds, Options{K: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.K > 3 {
		t.Fatalf("K = %d, want <= 3", res.K)
	}
}

func TestMembersPartition(t *testing.T) {
	ds, _ := crossedEllipses(100, 45)
	res, err := Run(ds, Options{K: 2, Seed: 4, Normalized: true})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for c := 0; c < res.K; c++ {
		m := res.Members(c)
		if len(m) != res.Sizes[c] {
			t.Fatalf("Members(%d) len %d != size %d", c, len(m), res.Sizes[c])
		}
		total += len(m)
	}
	if total != ds.N {
		t.Fatalf("members cover %d of %d", total, ds.N)
	}
}

func TestRunDeterministic(t *testing.T) {
	ds, _ := crossedEllipses(200, 46)
	a, err := Run(ds, Options{K: 3, Seed: 5, Normalized: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(ds, Options{K: 3, Seed: 5, Normalized: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("nondeterministic run with fixed seed")
		}
	}
}

func BenchmarkEllipticalKMeans(b *testing.B) {
	ds, _ := crossedEllipses(1000, 47)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(ds, Options{K: 4, Seed: 6, Normalized: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEllipticalKMeansLookup(b *testing.B) {
	ds, _ := crossedEllipses(1000, 47)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(ds, Options{K: 4, Seed: 6, Normalized: true,
			UseLookupTable: true, ActivityThreshold: 10}); err != nil {
			b.Fatal(err)
		}
	}
}

// Forcing K well above the natural cluster count exercises the
// empty-cluster reseed path in fitClusters and updateMeans.
func TestEmptyClusterReseed(t *testing.T) {
	// 30 near-identical points cannot support 8 distinct clusters.
	ds := dataset.New(30, 2)
	rng := rand.New(rand.NewSource(48))
	for i := 0; i < ds.N; i++ {
		ds.Point(i)[0] = 1 + rng.NormFloat64()*1e-6
		ds.Point(i)[1] = 2 + rng.NormFloat64()*1e-6
	}
	res, err := Run(ds, Options{K: 8, Seed: 1, Normalized: true})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range res.Sizes {
		total += s
	}
	if total != ds.N {
		t.Fatalf("sizes cover %d of %d", total, ds.N)
	}
}

func TestGaussianDegenerateData(t *testing.T) {
	// All-identical points: zero covariance must still invert via ridge.
	pts := make([]float64, 20*3)
	for i := range pts {
		pts[i] = 5
	}
	g, err := NewGaussian(pts, 3, 1e-6)
	if err != nil {
		t.Fatalf("degenerate Gaussian: %v", err)
	}
	if d := g.MahaDist([]float64{5, 5, 5}); d > 1e-9 {
		t.Fatalf("MahaDist at mean = %v", d)
	}
}
