package ellipkmeans

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"mmdr/internal/dataset"
	"mmdr/internal/iostat"
	"mmdr/internal/kmeans"
	"mmdr/internal/obs"
	"mmdr/internal/pool"
)

// Options configures the elliptical k-means run.
type Options struct {
	K        int   // number of clusters (MaxEC in the paper)
	MaxOuter int   // outer (covariance re-estimation) iterations; default 15
	MaxInner int   // inner (assignment) iterations per outer pass; default 25
	Seed     int64 // initialization randomness

	// Normalized selects the Normalized Mahalanobis Distance (paper
	// Definition 3.2). The raw quadratic form lets large clusters swallow
	// small ones; normalized is the paper's default.
	Normalized bool

	// UseLookupTable enables the §4.2 optimization: per point, cache the k
	// closest centroid IDs and only re-evaluate those on later iterations.
	UseLookupTable bool
	LookupK        int // IDs kept per point; paper default 3

	// ActivityThreshold freezes a point after this many consecutive
	// iterations without a membership change (paper default 10). Zero
	// disables the optimization.
	ActivityThreshold int

	// RidgeScale regularizes degenerate covariance matrices; default 1e-6.
	RidgeScale float64

	// Restarts runs the whole nested loop from several initializations and
	// keeps the model with the lowest total cost (sum of the configured
	// distance over all points). Elliptical k-means inherits k-means'
	// sensitivity to initialization; restarts are the standard remedy.
	// Default 3.
	Restarts int

	// Parallelism bounds the worker goroutines used for restarts, the
	// per-point assignment pass and per-cluster covariance fitting. Values
	// <= 1 run fully serial (the exact pre-parallel code path). Results are
	// deterministic at every setting: work is split by index and every
	// floating-point reduction happens in the same order as the serial run.
	Parallelism int

	// Counter, when non-nil, accumulates distance-computation counts.
	// Parallel workers count into private tallies that are flushed into the
	// sink after each join, so a plain (non-atomic) Counter stays safe at
	// any Parallelism.
	Counter iostat.Sink

	// Tracer, when non-nil, receives per-restart spans with per-iteration
	// convergence telemetry: reassignments, active-point counts and the
	// §4.2 lookup-table hit rate.
	Tracer obs.Tracer
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.MaxOuter <= 0 {
		out.MaxOuter = 15
	}
	if out.MaxInner <= 0 {
		out.MaxInner = 25
	}
	if out.LookupK <= 0 {
		out.LookupK = 3
	}
	if out.RidgeScale <= 0 {
		out.RidgeScale = 1e-6
	}
	if out.Restarts <= 0 {
		out.Restarts = 3
	}
	return out
}

// Result holds an elliptical k-means clustering.
type Result struct {
	K          int
	Clusters   []*Gaussian
	Assign     []int
	Sizes      []int
	OuterIters int
	InnerIters int // total inner iterations across all outer passes
}

// Members returns the indices of points in cluster c.
func (r *Result) Members(c int) []int {
	out := make([]int, 0, r.Sizes[c])
	for i, a := range r.Assign {
		if a == c {
			out = append(out, i)
		}
	}
	return out
}

// lookupEntry is one row of the §4.2 lookup table.
type lookupEntry struct {
	ids      []int // k closest centroid IDs from the last full evaluation
	activity int   // consecutive iterations without membership change
}

// assignStats accumulates one chunk's share of an assignment pass:
// reassignment and §4.2 evaluation counts, plus a private cost tally that
// is flushed into the shared sink after the chunks join.
type assignStats struct {
	changed                        int
	frozen, lookupEvals, fullEvals int64
	tally                          iostat.Counter
}

// Run performs elliptical k-means on ds.
//
// Structure (paper §2, describing Sung–Poggio): the inner loop is k-means
// under Mahalanobis distance with covariances held fixed; the outer loop
// re-computes each cluster's covariance matrix; both stop when membership
// stabilizes. Options.Restarts initializations are tried and the
// lowest-cost model is returned.
func Run(ds *dataset.Dataset, opts Options) (*Result, error) {
	o := opts.withDefaults()
	if o.K <= 0 {
		return nil, fmt.Errorf("ellipkmeans: K must be positive, got %d", o.K)
	}
	if ds.N == 0 {
		return nil, fmt.Errorf("ellipkmeans: empty dataset")
	}
	obs.Begin(o.Tracer, obs.PhaseCluster)
	obs.Attr(o.Tracer, "k", float64(o.K))
	obs.Attr(o.Tracer, "points", float64(ds.N))
	obs.Attr(o.Tracer, "restarts", float64(o.Restarts))
	defer obs.End(o.Tracer)
	var best *Result
	bestCost := math.Inf(1)
	var firstErr error
	if o.Parallelism > 1 && o.Restarts > 1 {
		// Independent restarts fan out across the pool. Each worker counts
		// into a private tally (flushed in restart order after the join, so
		// plain sinks stay race-free and totals exact) and runs without a
		// tracer — span emission is single-goroutine by contract, so
		// per-restart telemetry is only available at Parallelism <= 1. The
		// best-model selection below walks restarts in ascending order with
		// the same strict comparison as the serial loop, so the chosen model
		// is identical.
		type restartOut struct {
			res  *Result
			cost float64
			err  error
		}
		outs := make([]restartOut, o.Restarts)
		tallies := make([]iostat.Counter, o.Restarts)
		workers := pool.Clamp(o.Parallelism, o.Restarts)
		inner := o.Parallelism / workers
		pool.Run(workers, o.Restarts, func(r int) {
			ro := o
			ro.Seed = o.Seed + int64(r)*7919
			ro.Tracer = nil
			ro.Counter = &tallies[r]
			ro.Parallelism = inner
			res, err := runOnce(ds, ro)
			if err != nil {
				outs[r].err = err
				return
			}
			outs[r] = restartOut{res: res, cost: totalCost(ds, res, o.Normalized)}
		})
		for r := range outs {
			iostat.Flush(o.Counter, tallies[r])
			if outs[r].err != nil {
				if firstErr == nil {
					firstErr = outs[r].err
				}
				continue
			}
			if outs[r].cost < bestCost {
				best, bestCost = outs[r].res, outs[r].cost
			}
		}
	} else {
		for r := 0; r < o.Restarts; r++ {
			ro := o
			ro.Seed = o.Seed + int64(r)*7919
			res, err := runOnce(ds, ro)
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			cost := totalCost(ds, res, o.Normalized)
			if cost < bestCost {
				best, bestCost = res, cost
			}
		}
	}
	if best == nil {
		return nil, firstErr
	}
	obs.Attr(o.Tracer, "best_cost", bestCost)
	obs.Attr(o.Tracer, "outer_iters", float64(best.OuterIters))
	obs.Attr(o.Tracer, "inner_iters", float64(best.InnerIters))
	return best, nil
}

// totalCost sums the configured distance from each point to its assigned
// cluster: the model-selection criterion across restarts.
func totalCost(ds *dataset.Dataset, res *Result, normalized bool) float64 {
	var sum float64
	for i := 0; i < ds.N; i++ {
		g := res.Clusters[res.Assign[i]]
		if normalized {
			sum += g.NormMahaDist(ds.Point(i))
		} else {
			sum += g.MahaDist(ds.Point(i))
		}
	}
	return sum
}

// runOnce executes one full nested-loop clustering from a single
// initialization.
func runOnce(ds *dataset.Dataset, o Options) (*Result, error) {
	k := o.K
	if k > ds.N {
		k = ds.N
	}

	// Initialize membership with Euclidean k-means: cheap and gives
	// non-degenerate covariance estimates.
	init, err := kmeans.Run(ds, kmeans.Options{K: k, Seed: o.Seed, MaxIters: 10})
	if err != nil {
		return nil, err
	}
	assign := make([]int, ds.N)
	copy(assign, init.Assign)
	k = init.K

	res := &Result{K: k, Assign: assign, Sizes: make([]int, k)}
	rng := rand.New(rand.NewSource(o.Seed + 1))

	var table []lookupEntry
	if o.UseLookupTable {
		table = make([]lookupEntry, ds.N)
	}

	workers := o.Parallelism
	if workers < 1 {
		workers = 1
	}
	nchunks := pool.NumChunks(workers, ds.N)
	chunkStats := make([]assignStats, nchunks)

	// assignChunk runs one assignment pass over points [lo, hi), counting
	// into cs and sink. Each point touches only its own assign/table slots,
	// so chunks are independent; with one chunk and sink == o.Counter this
	// is exactly the serial inner loop.
	assignChunk := func(cs *assignStats, sink iostat.Sink, clusters []*Gaussian, lo, hi int) {
		dist := func(g *Gaussian, p []float64) float64 {
			if sink != nil {
				sink.CountDistanceOps(1)
			}
			if o.Normalized {
				return g.NormMahaDist(p)
			}
			return g.MahaDist(p)
		}
		for i := lo; i < hi; i++ {
			if o.UseLookupTable && o.ActivityThreshold > 0 &&
				table[i].activity > o.ActivityThreshold {
				// Inactive point: skip all distance work (§4.2).
				cs.frozen++
				continue
			}
			p := ds.Point(i)
			var best int
			if o.UseLookupTable && table[i].ids != nil {
				cs.lookupEvals++
				best = argminOver(table[i].ids, clusters, p, dist)
			} else {
				cs.fullEvals++
				var ids []int
				best, ids = argminAll(clusters, p, dist, o.LookupK)
				if o.UseLookupTable {
					table[i].ids = ids
				}
			}
			if best != assign[i] {
				assign[i] = best
				cs.changed++
				if o.UseLookupTable {
					// Membership changed: refresh the entry fully next
					// round and reset its activity.
					table[i].ids = nil
					table[i].activity = 0
				}
			} else if o.UseLookupTable {
				table[i].activity++
			}
		}
	}

	obs.Begin(o.Tracer, obs.PhaseRestart)
	obs.Attr(o.Tracer, "seed", float64(o.Seed))
	defer obs.End(o.Tracer)

	for outer := 0; outer < o.MaxOuter; outer++ {
		res.OuterIters = outer + 1
		// Outer step: (re)fit Gaussians to current memberships.
		clusters, err := fitClusters(ds, assign, k, o.RidgeScale, rng, workers)
		if err != nil {
			return nil, err
		}
		res.Clusters = clusters
		// Covariances changed: cached closest-ID lists are stale.
		if o.UseLookupTable {
			for i := range table {
				table[i].ids = nil
			}
		}

		// Per-pass convergence telemetry (§4.2 effectiveness): how points
		// were evaluated this outer pass — frozen (no distance work), via
		// the cached lookup IDs, or with a full evaluation.
		outerChanged := 0
		innerPasses := 0
		var frozen, lookupEvals, fullEvals int64
		for inner := 0; inner < o.MaxInner; inner++ {
			res.InnerIters++
			innerPasses++
			changed := 0
			if nchunks == 1 {
				chunkStats[0] = assignStats{}
				assignChunk(&chunkStats[0], o.Counter, clusters, 0, ds.N)
			} else {
				for c := range chunkStats {
					chunkStats[c] = assignStats{}
				}
				pool.Chunks(workers, ds.N, func(c, lo, hi int) {
					assignChunk(&chunkStats[c], &chunkStats[c].tally, clusters, lo, hi)
				})
				for c := range chunkStats {
					iostat.Flush(o.Counter, chunkStats[c].tally)
				}
			}
			for c := range chunkStats {
				changed += chunkStats[c].changed
				frozen += chunkStats[c].frozen
				lookupEvals += chunkStats[c].lookupEvals
				fullEvals += chunkStats[c].fullEvals
			}
			outerChanged += changed
			// Update centroids (means only) after each inner iteration.
			updateMeans(ds, assign, clusters, rng, workers)
			if changed == 0 {
				break
			}
		}
		if o.Tracer != nil {
			obs.Begin(o.Tracer, obs.PhaseIteration)
			obs.Attr(o.Tracer, "outer", float64(outer+1))
			obs.Attr(o.Tracer, "inner_passes", float64(innerPasses))
			obs.Attr(o.Tracer, "reassigned", float64(outerChanged))
			obs.Attr(o.Tracer, "frozen_points", float64(frozen))
			if evaluated := lookupEvals + fullEvals; evaluated > 0 {
				obs.Attr(o.Tracer, "active_points", float64(evaluated))
				obs.Attr(o.Tracer, "lookup_hit_rate", float64(lookupEvals)/float64(evaluated))
			}
			obs.End(o.Tracer)
		}
		if outerChanged == 0 && outer > 0 {
			break
		}
	}

	for i := range res.Sizes {
		res.Sizes[i] = 0
	}
	for _, a := range assign {
		res.Sizes[a]++
	}
	// Final refit so the returned Gaussians match the final memberships.
	clusters, err := fitClusters(ds, assign, k, o.RidgeScale, rng, workers)
	if err != nil {
		return nil, err
	}
	res.Clusters = clusters
	return res, nil
}

// argminAll evaluates all clusters and returns the best index plus the
// lookupK closest IDs (sorted by distance).
func argminAll(clusters []*Gaussian, p []float64, dist func(*Gaussian, []float64) float64, lookupK int) (int, []int) {
	type cd struct {
		id int
		d  float64
	}
	all := make([]cd, len(clusters))
	for c, g := range clusters {
		all[c] = cd{c, dist(g, p)}
	}
	sort.Slice(all, func(a, b int) bool { return all[a].d < all[b].d })
	n := lookupK
	if n > len(all) {
		n = len(all)
	}
	ids := make([]int, n)
	for i := 0; i < n; i++ {
		ids[i] = all[i].id
	}
	return all[0].id, ids
}

// argminOver evaluates only the cached candidate IDs.
func argminOver(ids []int, clusters []*Gaussian, p []float64, dist func(*Gaussian, []float64) float64) int {
	best, bestD := ids[0], math.Inf(1)
	for _, id := range ids {
		if d := dist(clusters[id], p); d < bestD {
			best, bestD = id, d
		}
	}
	return best
}

// fitClusters fits one Gaussian per cluster; empty clusters are reseeded at
// a random point with an identity-scaled covariance. The per-cluster
// covariance accumulation (the dominant cost) fans out across workers;
// bucket construction and the reseed draws stay on the caller's goroutine
// in ascending cluster order, so the rng consumption sequence — and with it
// every result — is identical at any parallelism.
func fitClusters(ds *dataset.Dataset, assign []int, k int, ridgeScale float64, rng *rand.Rand, workers int) ([]*Gaussian, error) {
	buckets := make([][]float64, k)
	for i := 0; i < ds.N; i++ {
		c := assign[i]
		buckets[c] = append(buckets[c], ds.Point(i)...)
	}
	for c := range buckets {
		if len(buckets[c]) == 0 {
			// Reseed: singleton Gaussian at a random point.
			p := ds.Point(rng.Intn(ds.N))
			single := make([]float64, len(p))
			copy(single, p)
			buckets[c] = single
		}
	}
	clusters := make([]*Gaussian, k)
	errs := make([]error, k)
	pool.Run(workers, k, func(c int) {
		clusters[c], errs[c] = NewGaussian(buckets[c], ds.Dim, ridgeScale)
	})
	for c := range errs {
		if errs[c] != nil {
			return nil, errs[c]
		}
	}
	return clusters, nil
}

// updateMeans recomputes cluster means in place (covariances stay fixed
// during the inner loop, per the nested-loop structure). Summation is per
// cluster over its members in ascending point order — the same addition
// sequence the serial single-pass form produced — so means are bit-identical
// at any parallelism; empty-cluster reseeds draw from the rng serially in
// ascending cluster order, preserving the serial consumption sequence.
func updateMeans(ds *dataset.Dataset, assign []int, clusters []*Gaussian, rng *rand.Rand, workers int) {
	k := len(clusters)
	members := make([][]int, k)
	for i := 0; i < ds.N; i++ {
		members[assign[i]] = append(members[assign[i]], i)
	}
	pool.Run(workers, k, func(c int) {
		if len(members[c]) == 0 {
			return
		}
		mean := clusters[c].Mean
		for j := range mean {
			mean[j] = 0
		}
		for _, i := range members[c] {
			p := ds.Point(i)
			for j, v := range p {
				mean[j] += v
			}
		}
		inv := 1 / float64(len(members[c]))
		for j := range mean {
			mean[j] *= inv
		}
	})
	for c := range clusters {
		if len(members[c]) == 0 {
			copy(clusters[c].Mean, ds.Point(rng.Intn(ds.N)))
		}
	}
}
