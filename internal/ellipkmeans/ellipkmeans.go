package ellipkmeans

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"mmdr/internal/dataset"
	"mmdr/internal/iostat"
	"mmdr/internal/kmeans"
	"mmdr/internal/obs"
)

// Options configures the elliptical k-means run.
type Options struct {
	K        int   // number of clusters (MaxEC in the paper)
	MaxOuter int   // outer (covariance re-estimation) iterations; default 15
	MaxInner int   // inner (assignment) iterations per outer pass; default 25
	Seed     int64 // initialization randomness

	// Normalized selects the Normalized Mahalanobis Distance (paper
	// Definition 3.2). The raw quadratic form lets large clusters swallow
	// small ones; normalized is the paper's default.
	Normalized bool

	// UseLookupTable enables the §4.2 optimization: per point, cache the k
	// closest centroid IDs and only re-evaluate those on later iterations.
	UseLookupTable bool
	LookupK        int // IDs kept per point; paper default 3

	// ActivityThreshold freezes a point after this many consecutive
	// iterations without a membership change (paper default 10). Zero
	// disables the optimization.
	ActivityThreshold int

	// RidgeScale regularizes degenerate covariance matrices; default 1e-6.
	RidgeScale float64

	// Restarts runs the whole nested loop from several initializations and
	// keeps the model with the lowest total cost (sum of the configured
	// distance over all points). Elliptical k-means inherits k-means'
	// sensitivity to initialization; restarts are the standard remedy.
	// Default 3.
	Restarts int

	// Counter, when non-nil, accumulates distance-computation counts.
	Counter iostat.Sink

	// Tracer, when non-nil, receives per-restart spans with per-iteration
	// convergence telemetry: reassignments, active-point counts and the
	// §4.2 lookup-table hit rate.
	Tracer obs.Tracer
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.MaxOuter <= 0 {
		out.MaxOuter = 15
	}
	if out.MaxInner <= 0 {
		out.MaxInner = 25
	}
	if out.LookupK <= 0 {
		out.LookupK = 3
	}
	if out.RidgeScale <= 0 {
		out.RidgeScale = 1e-6
	}
	if out.Restarts <= 0 {
		out.Restarts = 3
	}
	return out
}

// Result holds an elliptical k-means clustering.
type Result struct {
	K          int
	Clusters   []*Gaussian
	Assign     []int
	Sizes      []int
	OuterIters int
	InnerIters int // total inner iterations across all outer passes
}

// Members returns the indices of points in cluster c.
func (r *Result) Members(c int) []int {
	out := make([]int, 0, r.Sizes[c])
	for i, a := range r.Assign {
		if a == c {
			out = append(out, i)
		}
	}
	return out
}

// lookupEntry is one row of the §4.2 lookup table.
type lookupEntry struct {
	ids      []int // k closest centroid IDs from the last full evaluation
	activity int   // consecutive iterations without membership change
}

// Run performs elliptical k-means on ds.
//
// Structure (paper §2, describing Sung–Poggio): the inner loop is k-means
// under Mahalanobis distance with covariances held fixed; the outer loop
// re-computes each cluster's covariance matrix; both stop when membership
// stabilizes. Options.Restarts initializations are tried and the
// lowest-cost model is returned.
func Run(ds *dataset.Dataset, opts Options) (*Result, error) {
	o := opts.withDefaults()
	if o.K <= 0 {
		return nil, fmt.Errorf("ellipkmeans: K must be positive, got %d", o.K)
	}
	if ds.N == 0 {
		return nil, fmt.Errorf("ellipkmeans: empty dataset")
	}
	obs.Begin(o.Tracer, obs.PhaseCluster)
	obs.Attr(o.Tracer, "k", float64(o.K))
	obs.Attr(o.Tracer, "points", float64(ds.N))
	obs.Attr(o.Tracer, "restarts", float64(o.Restarts))
	defer obs.End(o.Tracer)
	var best *Result
	bestCost := math.Inf(1)
	var firstErr error
	for r := 0; r < o.Restarts; r++ {
		ro := o
		ro.Seed = o.Seed + int64(r)*7919
		res, err := runOnce(ds, ro)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		cost := totalCost(ds, res, o.Normalized)
		if cost < bestCost {
			best, bestCost = res, cost
		}
	}
	if best == nil {
		return nil, firstErr
	}
	obs.Attr(o.Tracer, "best_cost", bestCost)
	obs.Attr(o.Tracer, "outer_iters", float64(best.OuterIters))
	obs.Attr(o.Tracer, "inner_iters", float64(best.InnerIters))
	return best, nil
}

// totalCost sums the configured distance from each point to its assigned
// cluster: the model-selection criterion across restarts.
func totalCost(ds *dataset.Dataset, res *Result, normalized bool) float64 {
	var sum float64
	for i := 0; i < ds.N; i++ {
		g := res.Clusters[res.Assign[i]]
		if normalized {
			sum += g.NormMahaDist(ds.Point(i))
		} else {
			sum += g.MahaDist(ds.Point(i))
		}
	}
	return sum
}

// runOnce executes one full nested-loop clustering from a single
// initialization.
func runOnce(ds *dataset.Dataset, o Options) (*Result, error) {
	k := o.K
	if k > ds.N {
		k = ds.N
	}

	// Initialize membership with Euclidean k-means: cheap and gives
	// non-degenerate covariance estimates.
	init, err := kmeans.Run(ds, kmeans.Options{K: k, Seed: o.Seed, MaxIters: 10})
	if err != nil {
		return nil, err
	}
	assign := make([]int, ds.N)
	copy(assign, init.Assign)
	k = init.K

	res := &Result{K: k, Assign: assign, Sizes: make([]int, k)}
	rng := rand.New(rand.NewSource(o.Seed + 1))

	var table []lookupEntry
	if o.UseLookupTable {
		table = make([]lookupEntry, ds.N)
	}

	dist := func(g *Gaussian, p []float64) float64 {
		if o.Counter != nil {
			o.Counter.CountDistanceOps(1)
		}
		if o.Normalized {
			return g.NormMahaDist(p)
		}
		return g.MahaDist(p)
	}

	obs.Begin(o.Tracer, obs.PhaseRestart)
	obs.Attr(o.Tracer, "seed", float64(o.Seed))
	defer obs.End(o.Tracer)

	for outer := 0; outer < o.MaxOuter; outer++ {
		res.OuterIters = outer + 1
		// Outer step: (re)fit Gaussians to current memberships.
		clusters, err := fitClusters(ds, assign, k, o.RidgeScale, rng)
		if err != nil {
			return nil, err
		}
		res.Clusters = clusters
		// Covariances changed: cached closest-ID lists are stale.
		if o.UseLookupTable {
			for i := range table {
				table[i].ids = nil
			}
		}

		// Per-pass convergence telemetry (§4.2 effectiveness): how points
		// were evaluated this outer pass — frozen (no distance work), via
		// the cached lookup IDs, or with a full evaluation.
		outerChanged := 0
		innerPasses := 0
		var frozen, lookupEvals, fullEvals int64
		for inner := 0; inner < o.MaxInner; inner++ {
			res.InnerIters++
			innerPasses++
			changed := 0
			for i := 0; i < ds.N; i++ {
				if o.UseLookupTable && o.ActivityThreshold > 0 &&
					table[i].activity > o.ActivityThreshold {
					// Inactive point: skip all distance work (§4.2).
					frozen++
					continue
				}
				p := ds.Point(i)
				var best int
				if o.UseLookupTable && table[i].ids != nil {
					lookupEvals++
					best = argminOver(table[i].ids, clusters, p, dist)
				} else {
					fullEvals++
					var ids []int
					best, ids = argminAll(clusters, p, dist, o.LookupK)
					if o.UseLookupTable {
						table[i].ids = ids
					}
				}
				if best != assign[i] {
					assign[i] = best
					changed++
					if o.UseLookupTable {
						// Membership changed: refresh the entry fully next
						// round and reset its activity.
						table[i].ids = nil
						table[i].activity = 0
					}
				} else if o.UseLookupTable {
					table[i].activity++
				}
			}
			outerChanged += changed
			// Update centroids (means only) after each inner iteration.
			updateMeans(ds, assign, clusters, rng)
			if changed == 0 {
				break
			}
		}
		if o.Tracer != nil {
			obs.Begin(o.Tracer, obs.PhaseIteration)
			obs.Attr(o.Tracer, "outer", float64(outer+1))
			obs.Attr(o.Tracer, "inner_passes", float64(innerPasses))
			obs.Attr(o.Tracer, "reassigned", float64(outerChanged))
			obs.Attr(o.Tracer, "frozen_points", float64(frozen))
			if evaluated := lookupEvals + fullEvals; evaluated > 0 {
				obs.Attr(o.Tracer, "active_points", float64(evaluated))
				obs.Attr(o.Tracer, "lookup_hit_rate", float64(lookupEvals)/float64(evaluated))
			}
			obs.End(o.Tracer)
		}
		if outerChanged == 0 && outer > 0 {
			break
		}
	}

	for i := range res.Sizes {
		res.Sizes[i] = 0
	}
	for _, a := range assign {
		res.Sizes[a]++
	}
	// Final refit so the returned Gaussians match the final memberships.
	clusters, err := fitClusters(ds, assign, k, o.RidgeScale, rng)
	if err != nil {
		return nil, err
	}
	res.Clusters = clusters
	return res, nil
}

// argminAll evaluates all clusters and returns the best index plus the
// lookupK closest IDs (sorted by distance).
func argminAll(clusters []*Gaussian, p []float64, dist func(*Gaussian, []float64) float64, lookupK int) (int, []int) {
	type cd struct {
		id int
		d  float64
	}
	all := make([]cd, len(clusters))
	for c, g := range clusters {
		all[c] = cd{c, dist(g, p)}
	}
	sort.Slice(all, func(a, b int) bool { return all[a].d < all[b].d })
	n := lookupK
	if n > len(all) {
		n = len(all)
	}
	ids := make([]int, n)
	for i := 0; i < n; i++ {
		ids[i] = all[i].id
	}
	return all[0].id, ids
}

// argminOver evaluates only the cached candidate IDs.
func argminOver(ids []int, clusters []*Gaussian, p []float64, dist func(*Gaussian, []float64) float64) int {
	best, bestD := ids[0], math.Inf(1)
	for _, id := range ids {
		if d := dist(clusters[id], p); d < bestD {
			best, bestD = id, d
		}
	}
	return best
}

// fitClusters fits one Gaussian per cluster; empty clusters are reseeded at
// a random point with an identity-scaled covariance.
func fitClusters(ds *dataset.Dataset, assign []int, k int, ridgeScale float64, rng *rand.Rand) ([]*Gaussian, error) {
	buckets := make([][]float64, k)
	for i := 0; i < ds.N; i++ {
		c := assign[i]
		buckets[c] = append(buckets[c], ds.Point(i)...)
	}
	clusters := make([]*Gaussian, k)
	for c := range clusters {
		if len(buckets[c]) == 0 {
			// Reseed: singleton Gaussian at a random point.
			p := ds.Point(rng.Intn(ds.N))
			single := make([]float64, len(p))
			copy(single, p)
			g, err := NewGaussian(single, ds.Dim, ridgeScale)
			if err != nil {
				return nil, err
			}
			clusters[c] = g
			continue
		}
		g, err := NewGaussian(buckets[c], ds.Dim, ridgeScale)
		if err != nil {
			return nil, err
		}
		clusters[c] = g
	}
	return clusters, nil
}

// updateMeans recomputes cluster means in place (covariances stay fixed
// during the inner loop, per the nested-loop structure).
func updateMeans(ds *dataset.Dataset, assign []int, clusters []*Gaussian, rng *rand.Rand) {
	k := len(clusters)
	sums := make([][]float64, k)
	counts := make([]int, k)
	for c := range sums {
		sums[c] = make([]float64, ds.Dim)
	}
	for i := 0; i < ds.N; i++ {
		c := assign[i]
		counts[c]++
		p := ds.Point(i)
		for j, v := range p {
			sums[c][j] += v
		}
	}
	for c := range clusters {
		if counts[c] == 0 {
			copy(clusters[c].Mean, ds.Point(rng.Intn(ds.N)))
			continue
		}
		inv := 1 / float64(counts[c])
		for j := range sums[c] {
			clusters[c].Mean[j] = sums[c][j] * inv
		}
	}
}
