// Package ellipkmeans implements the elliptical k-means algorithm
// (Sung & Poggio, PAMI 1998) that MMDR uses to discover elliptical
// clusters: a nested-loop k-means where the inner loop assigns points by
// Mahalanobis distance under fixed per-cluster covariance matrices and the
// outer loop re-estimates those covariances. It includes the paper's §4.2
// optimizations: a per-point lookup table of the k closest centroid IDs and
// an Activity counter that freezes points whose membership has stopped
// changing.
package ellipkmeans

import (
	"math"

	"mmdr/internal/matrix"
	"mmdr/internal/stats"
)

// ln2Pi is ln(2π), used by the normalized Mahalanobis distance.
var ln2Pi = math.Log(2 * math.Pi)

// Gaussian models one elliptical cluster: its centroid and the inverse and
// log-determinant of its covariance matrix.
type Gaussian struct {
	Mean   []float64
	Cov    *matrix.Mat
	CovInv *matrix.Mat
	LogDet float64
}

// NewGaussian fits a Gaussian to the points (row-major, dimension dim),
// regularizing the covariance with ridgeScale when degenerate.
func NewGaussian(points []float64, dim int, ridgeScale float64) (*Gaussian, error) {
	cov, mean, err := stats.Covariance(points, dim)
	if err != nil {
		return nil, err
	}
	inv, logDet, err := matrix.InverseSPD(cov, ridgeScale)
	if err != nil {
		return nil, err
	}
	return &Gaussian{Mean: mean, Cov: cov, CovInv: inv, LogDet: logDet}, nil
}

// MahaDist returns the (squared-form) Mahalanobis distance
// (p-μ)ᵀ C⁻¹ (p-μ) — paper Definition 3.2.
func (g *Gaussian) MahaDist(p []float64) float64 {
	return mahaQuadForm(p, g.Mean, g.CovInv)
}

// NormMahaDist returns the Normalized Mahalanobis Distance
// ½(d·ln 2π + ln|C| + maha). This is the Gaussian negative log-likelihood
// form from Sung–Poggio that the paper adopts; the paper's printed formula
// ½(d·ln(2Π·|C|)+maha) is a typesetting slip (see DESIGN.md). The
// normalization penalizes large-volume clusters so they cannot swallow
// small ones.
func (g *Gaussian) NormMahaDist(p []float64) float64 {
	d := float64(len(g.Mean))
	return 0.5 * (d*ln2Pi + g.LogDet + g.MahaDist(p))
}

// mahaQuadForm computes (p-o)ᵀ M (p-o) without allocating.
func mahaQuadForm(p, o []float64, m *matrix.Mat) float64 {
	n := len(p)
	var total float64
	for i := 0; i < n; i++ {
		di := p[i] - o[i]
		if di == 0 {
			continue
		}
		row := m.Row(i)
		var s float64
		for j := 0; j < n; j++ {
			s += row[j] * (p[j] - o[j])
		}
		total += di * s
	}
	return total
}

// MahaRadius returns the maximum Mahalanobis distance from the Gaussian's
// mean over the given points — the cluster's Mahalanobis radius r used by
// MMDR when sizing subspaces.
func (g *Gaussian) MahaRadius(points []float64) float64 {
	dim := len(g.Mean)
	if dim == 0 || len(points) == 0 {
		return 0
	}
	var r float64
	for i := 0; i+dim <= len(points); i += dim {
		if d := g.MahaDist(points[i : i+dim]); d > r {
			r = d
		}
	}
	return r
}
