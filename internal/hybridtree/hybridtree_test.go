package hybridtree

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"mmdr/internal/core"
	"mmdr/internal/datagen"
	"mmdr/internal/index"
	"mmdr/internal/iostat"
)

func randPoints(n, dim int, seed int64) ([]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]float64, n*dim)
	for i := range pts {
		pts[i] = rng.Float64()
	}
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	return pts, ids
}

// bruteKNN computes exact k nearest neighbors by scan.
func bruteKNN(pts []float64, dim int, q []float64, k int) []index.Neighbor {
	n := len(pts) / dim
	top := index.NewTopK(k)
	for i := 0; i < n; i++ {
		var s float64
		for j := 0; j < dim; j++ {
			d := q[j] - pts[i*dim+j]
			s += d * d
		}
		top.Add(i, math.Sqrt(s))
	}
	return top.Sorted()
}

func knnViaSearch(tr *Tree, q []float64, k int) []index.Neighbor {
	top := index.NewTopK(k)
	tr.Search(q, top.Kth(), func(id int, dist float64) float64 {
		top.Add(id, dist)
		return top.Kth()
	})
	return top.Sorted()
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(nil, 0, nil, Options{}); err == nil {
		t.Fatal("expected error for dim 0")
	}
	if _, err := Build([]float64{1, 2, 3}, 2, []int{0}, Options{}); err == nil {
		t.Fatal("expected error for ragged points")
	}
	if _, err := Build([]float64{1, 2}, 2, []int{0, 1}, Options{}); err == nil {
		t.Fatal("expected error for id count mismatch")
	}
}

func TestSearchMatchesBruteForce(t *testing.T) {
	pts, ids := randPoints(1000, 6, 111)
	tr, err := Build(pts, 6, ids, Options{PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 1000 {
		t.Fatalf("Len = %d", tr.Len())
	}
	rng := rand.New(rand.NewSource(112))
	for trial := 0; trial < 20; trial++ {
		q := make([]float64, 6)
		for j := range q {
			q[j] = rng.Float64()
		}
		got := knnViaSearch(tr, q, 10)
		want := bruteKNN(pts, 6, q, 10)
		for i := range want {
			if math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
				t.Fatalf("trial %d rank %d: %v vs %v", trial, i, got[i].Dist, want[i].Dist)
			}
		}
	}
}

// Property: for random small datasets, tree KNN equals brute force.
func TestSearchProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(113))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dim := 1 + r.Intn(5)
		n := 1 + r.Intn(200)
		pts, ids := randPoints(n, dim, seed)
		tr, err := Build(pts, dim, ids, Options{PageSize: 256})
		if err != nil {
			return false
		}
		k := 1 + r.Intn(10)
		q := make([]float64, dim)
		for j := range q {
			q[j] = r.Float64()*2 - 0.5
		}
		got := knnViaSearch(tr, q, k)
		want := bruteKNN(pts, dim, q, k)
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestSearchPrunes(t *testing.T) {
	pts, ids := randPoints(5000, 4, 114)
	var ctr iostat.Counter
	tr, err := Build(pts, 4, ids, Options{PageSize: 1024, Counter: &ctr})
	if err != nil {
		t.Fatal(err)
	}
	q := []float64{0.5, 0.5, 0.5, 0.5}
	knnViaSearch(tr, q, 5)
	visited := ctr.NodeAccesses
	ctr.Reset()
	knnViaSearch(tr, q, 5000)
	full := ctr.NodeAccesses
	if visited*2 > full {
		t.Fatalf("5-NN visited %d nodes vs %d for full retrieval — no pruning", visited, full)
	}
}

func TestGlobalMatchesSeqScan(t *testing.T) {
	cfg := datagen.CorrelatedConfig{N: 700, Dim: 12, NumClusters: 3, SDim: 2, VarRatio: 20, Seed: 115}
	ds, _, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	datagen.Normalize(ds)
	red, err := core.New(core.Params{Seed: 115, MaxEC: 5}).Reduce(ds)
	if err != nil {
		t.Fatal(err)
	}
	g, err := BuildGlobal(ds, red, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if g.Name() != "gLDR" {
		t.Fatal("name")
	}
	scan := index.NewSeqScan(ds, red, nil)
	queries := datagen.SampleQueries(ds, 15, 0.02, 116)
	for qi := 0; qi < queries.N; qi++ {
		q := queries.Point(qi)
		got := g.KNN(q, 10)
		want := scan.KNN(q, 10)
		if len(got) != len(want) {
			t.Fatalf("query %d: %d vs %d results", qi, len(got), len(want))
		}
		for i := range want {
			if math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
				t.Fatalf("query %d rank %d: %v vs %v", qi, i, got[i].Dist, want[i].Dist)
			}
		}
	}
}

func TestGlobalEmpty(t *testing.T) {
	ds := datagen.Uniform(0, 4, 1)
	if _, err := BuildGlobal(ds, nil, Options{}); err == nil {
		t.Fatal("expected error for empty dataset")
	}
}

func TestDuplicatePointsAllReturned(t *testing.T) {
	pts := make([]float64, 0, 40)
	ids := make([]int, 0, 20)
	for i := 0; i < 20; i++ {
		pts = append(pts, 0.5, 0.5)
		ids = append(ids, i)
	}
	tr, err := Build(pts, 2, ids, Options{PageSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	got := knnViaSearch(tr, []float64{0.5, 0.5}, 20)
	if len(got) != 20 {
		t.Fatalf("got %d of 20 duplicates", len(got))
	}
	seen := map[int]bool{}
	for _, n := range got {
		seen[n.ID] = true
	}
	if len(seen) != 20 {
		t.Fatal("duplicate IDs collapsed")
	}
	sort.Ints(ids)
}

func TestGlobalWithOutliers(t *testing.T) {
	// Force a reduction with an outlier set so the outlier tree path runs.
	cfg := datagen.CorrelatedConfig{N: 600, Dim: 10, NumClusters: 2, SDim: 2, VarRatio: 25, Seed: 117}
	ds, _, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	datagen.Normalize(ds)
	red, err := core.New(core.Params{Seed: 117, Beta: 0.01, Xi: 0.2}).Reduce(ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(red.Outliers) == 0 {
		t.Skip("no outliers at this seed; tighten beta")
	}
	g, err := BuildGlobal(ds, red, Options{})
	if err != nil {
		t.Fatal(err)
	}
	scan := index.NewSeqScan(ds, red, nil)
	q := ds.Point(red.Outliers[0])
	got := g.KNN(q, 5)
	want := scan.KNN(q, 5)
	if len(got) != len(want) {
		t.Fatalf("%d vs %d results", len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
			t.Fatalf("rank %d: %v vs %v", i, got[i].Dist, want[i].Dist)
		}
	}
	// The outlier itself is its own nearest neighbor.
	if got[0].ID != red.Outliers[0] || got[0].Dist > 1e-9 {
		t.Fatalf("outlier not found: %+v", got[0])
	}
}
