package hybridtree

import (
	"fmt"

	"mmdr/internal/dataset"
	"mmdr/internal/index"
	"mmdr/internal/iostat"
	"mmdr/internal/reduction"
)

// Global is the paper's "Global indexing method" (gLDR): one Hybrid tree
// per reduced cluster in that cluster's reduced coordinates, one more for
// the outliers in the original space, and an array mapping clusters to
// trees. KNN searches every tree with a shared candidate set so the
// evolving k-th distance prunes across trees.
type Global struct {
	ds      *dataset.Dataset
	red     *reduction.Result
	trees   []*Tree
	subs    []*reduction.Subspace // parallel to trees; nil entry = outlier tree
	counter iostat.Sink
}

// BuildGlobal constructs the gLDR structure over a reduction of ds.
func BuildGlobal(ds *dataset.Dataset, red *reduction.Result, opts Options) (*Global, error) {
	if ds.N == 0 {
		return nil, fmt.Errorf("hybridtree: empty dataset")
	}
	g := &Global{ds: ds, red: red, counter: opts.Counter}
	for _, s := range red.Subspaces {
		pts := make([]float64, len(s.Coords))
		copy(pts, s.Coords)
		tr, err := Build(pts, s.Dr, append([]int(nil), s.Members...), opts)
		if err != nil {
			return nil, err
		}
		g.trees = append(g.trees, tr)
		g.subs = append(g.subs, s)
	}
	if len(red.Outliers) > 0 {
		out := ds.Subset(red.Outliers)
		tr, err := Build(out.Data, ds.Dim, append([]int(nil), red.Outliers...), opts)
		if err != nil {
			return nil, err
		}
		g.trees = append(g.trees, tr)
		g.subs = append(g.subs, nil)
	}
	if len(g.trees) == 0 {
		return nil, fmt.Errorf("hybridtree: reduction has no partitions")
	}
	return g, nil
}

// Name implements index.KNNIndex.
func (g *Global) Name() string { return "gLDR" }

// KNN implements index.KNNIndex, searching all trees with a shared top-k.
func (g *Global) KNN(q []float64, k int) []index.Neighbor {
	top := index.NewTopK(k)
	for ti, tr := range g.trees {
		var qq []float64
		if s := g.subs[ti]; s != nil {
			qq = s.Project(q)
		} else {
			qq = q
		}
		tr.Search(qq, top.Kth(), func(id int, dist float64) float64 {
			top.Add(id, dist)
			return top.Kth()
		})
	}
	return top.Sorted()
}
