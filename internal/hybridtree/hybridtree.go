// Package hybridtree implements the gLDR baseline of the paper's Figures 9
// and 10: the Global indexing method of Chakrabarti & Mehrotra, which keeps
// one Hybrid tree per reduced cluster (plus one for the outliers) and an
// auxiliary array describing the clusters.
//
// The Hybrid tree [ICDE'99] is a kd-tree/R-tree hybrid whose internal nodes
// split on a single dimension but may overlap. This implementation keeps
// the aspects that drive the paper's cost comparison — page-based nodes
// whose fan-out shrinks as dimensionality grows, single-dimension splits
// chosen by maximum spread, bounding boxes, and best-first KNN search —
// and omits the original's insert-time repartitioning (all indexes here
// are bulk-loaded).
package hybridtree

import (
	"fmt"
	"math"
	"sort"

	"mmdr/internal/iostat"
)

// Tree is a bulk-loaded hybrid tree over dim-dimensional points.
type Tree struct {
	dim     int
	root    *node
	size    int
	counter iostat.Sink
	pts     []float64 // row-major storage of the indexed points
	ids     []int     // external IDs parallel to pts rows
}

type node struct {
	lo, hi   []float64 // bounding box
	children []*node
	// leaf payload: row offsets into the tree's point storage
	rows []int
}

// Options configures construction.
type Options struct {
	PageSize int // 0 = iostat.PageSize
	Counter  iostat.Sink
}

// Build bulk-loads a tree over points (row-major, n x dim) with external
// ids.
func Build(points []float64, dim int, ids []int, opts Options) (*Tree, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("hybridtree: dim %d", dim)
	}
	if len(points)%dim != 0 {
		return nil, fmt.Errorf("hybridtree: ragged points")
	}
	n := len(points) / dim
	if len(ids) != n {
		return nil, fmt.Errorf("hybridtree: %d ids for %d points", len(ids), n)
	}
	pageSize := opts.PageSize
	if pageSize <= 0 {
		pageSize = iostat.PageSize
	}
	// A data page holds points of 8*dim bytes plus an 8-byte ID; an index
	// page holds child pointers with their 1-d split info. Fan-out shrinks
	// with dimensionality — the effect Figure 9 and 10 rely on. Dynamically
	// built trees average ~70% page utilization, so the effective capacity
	// is scaled accordingly (the original Hybrid tree is insert-built).
	leafCap := pageSize * 7 / 10 / (8*dim + 8)
	if leafCap < 2 {
		leafCap = 2
	}
	fanout := pageSize / 32 // child pointer + split dim + two split positions
	if fanout < 2 {
		fanout = 2
	}

	t := &Tree{dim: dim, size: n, counter: opts.Counter, pts: points, ids: ids}
	rows := make([]int, n)
	for i := range rows {
		rows[i] = i
	}
	t.root = t.build(rows, leafCap, fanout)
	return t, nil
}

// Len returns the number of indexed points.
func (t *Tree) Len() int { return t.size }

func (t *Tree) build(rows []int, leafCap, fanout int) *node {
	nd := &node{lo: make([]float64, t.dim), hi: make([]float64, t.dim)}
	for j := 0; j < t.dim; j++ {
		nd.lo[j], nd.hi[j] = math.Inf(1), math.Inf(-1)
	}
	for _, r := range rows {
		p := t.pts[r*t.dim : (r+1)*t.dim]
		for j, v := range p {
			if v < nd.lo[j] {
				nd.lo[j] = v
			}
			if v > nd.hi[j] {
				nd.hi[j] = v
			}
		}
	}
	if len(rows) <= leafCap {
		nd.rows = rows
		return nd
	}
	// Split on the dimension of maximum spread into up to `fanout` slabs of
	// equal cardinality (1-d splits, the hybrid tree's signature).
	splitDim := 0
	bestSpread := -1.0
	for j := 0; j < t.dim; j++ {
		if s := nd.hi[j] - nd.lo[j]; s > bestSpread {
			bestSpread, splitDim = s, j
		}
	}
	sort.Slice(rows, func(a, b int) bool {
		return t.pts[rows[a]*t.dim+splitDim] < t.pts[rows[b]*t.dim+splitDim]
	})
	parts := fanout
	if parts > (len(rows)+leafCap-1)/leafCap {
		parts = (len(rows) + leafCap - 1) / leafCap
	}
	if parts < 2 {
		parts = 2
	}
	per := (len(rows) + parts - 1) / parts
	for lo := 0; lo < len(rows); lo += per {
		hi := lo + per
		if hi > len(rows) {
			hi = len(rows)
		}
		nd.children = append(nd.children, t.build(append([]int(nil), rows[lo:hi]...), leafCap, fanout))
	}
	return nd
}

// minDistSq returns the squared distance from q to the node's bounding box
// (0 when q is inside).
func (t *Tree) minDistSq(q []float64, nd *node) float64 {
	var s float64
	for j, v := range q {
		if v < nd.lo[j] {
			d := nd.lo[j] - v
			s += d * d
		} else if v > nd.hi[j] {
			d := v - nd.hi[j]
			s += d * d
		}
	}
	return s
}

// pqItem is a priority-queue entry for best-first search.
type pqItem struct {
	nd   *node
	dist float64
}

// Search feeds every point whose distance could beat `bound` to emit,
// visiting nodes best-first and pruning by MINDIST against the evolving
// bound returned by emit. emit receives (externalID, distance) and returns
// the new pruning bound (typically the current k-th NN distance).
func (t *Tree) Search(q []float64, bound float64, emit func(id int, dist float64) float64) {
	if t.root == nil {
		return
	}
	pq := []pqItem{{t.root, math.Sqrt(t.minDistSq(q, t.root))}}
	for len(pq) > 0 {
		// Pop the minimum.
		best := 0
		for i := 1; i < len(pq); i++ {
			if pq[i].dist < pq[best].dist {
				best = i
			}
		}
		item := pq[best]
		pq[best] = pq[len(pq)-1]
		pq = pq[:len(pq)-1]
		if item.dist > bound {
			continue
		}
		nd := item.nd
		if t.counter != nil {
			t.counter.CountNodeAccesses(1)
			// Index levels are assumed buffered (as for the B⁺-tree); data
			// pages are charged as reads.
			if nd.rows != nil {
				t.counter.CountPageReads(1)
			}
		}
		if nd.rows != nil {
			for _, r := range nd.rows {
				p := t.pts[r*t.dim : (r+1)*t.dim]
				var s float64
				for j, v := range q {
					d := v - p[j]
					s += d * d
				}
				if t.counter != nil {
					t.counter.CountDistanceOps(1)
				}
				bound = emit(t.ids[r], math.Sqrt(s))
			}
			continue
		}
		for _, c := range nd.children {
			d := math.Sqrt(t.minDistSq(q, c))
			if t.counter != nil {
				t.counter.CountDistanceOps(1) // MINDIST is a dim-dimensional computation
			}
			if d <= bound {
				pq = append(pq, pqItem{c, d})
			}
		}
	}
}
