// Package stats computes the first- and second-order statistics the MMDR
// pipeline is built on: mean vectors, covariance matrices, and principal
// component analysis (PCA) via the symmetric eigensolver in internal/matrix.
package stats

import (
	"errors"
	"fmt"
	"math"

	"mmdr/internal/matrix"
)

// ErrEmpty is returned when statistics are requested for zero points.
var ErrEmpty = errors.New("stats: empty point set")

// Mean returns the componentwise mean of points, each of dimension dim.
// points is row-major flat storage of n rows.
func Mean(points []float64, dim int) ([]float64, error) {
	if dim <= 0 || len(points) == 0 || len(points)%dim != 0 {
		return nil, fmt.Errorf("stats: Mean invalid input len=%d dim=%d", len(points), dim)
	}
	n := len(points) / dim
	mean := make([]float64, dim)
	for r := 0; r < n; r++ {
		row := points[r*dim : (r+1)*dim]
		for j, v := range row {
			mean[j] += v
		}
	}
	inv := 1 / float64(n)
	for j := range mean {
		mean[j] *= inv
	}
	return mean, nil
}

// Covariance returns the sample covariance matrix (divisor n, maximum
// likelihood form — matching the Mahalanobis usage in the paper) of the
// points together with their mean. For n == 1 the covariance is the zero
// matrix.
func Covariance(points []float64, dim int) (*matrix.Mat, []float64, error) {
	mean, err := Mean(points, dim)
	if err != nil {
		return nil, nil, err
	}
	n := len(points) / dim
	cov := matrix.New(dim, dim)
	centered := make([]float64, dim)
	for r := 0; r < n; r++ {
		row := points[r*dim : (r+1)*dim]
		for j, v := range row {
			centered[j] = v - mean[j]
		}
		for i := 0; i < dim; i++ {
			ci := centered[i]
			if ci == 0 {
				continue
			}
			covRow := cov.Row(i)
			for j := i; j < dim; j++ {
				covRow[j] += ci * centered[j]
			}
		}
	}
	inv := 1 / float64(n)
	for i := 0; i < dim; i++ {
		for j := i; j < dim; j++ {
			v := cov.At(i, j) * inv
			cov.Set(i, j, v)
			cov.Set(j, i, v)
		}
	}
	return cov, mean, nil
}

// PCA is the result of principal component analysis: an orthonormal basis
// ordered by descending explained variance, centered at Mean.
type PCA struct {
	Mean       []float64
	Components *matrix.Mat // dim x dim, column k = k-th principal component
	Variances  []float64   // eigenvalues, descending
}

// ComputePCA runs PCA on n points of dimension dim stored row-major in
// points.
func ComputePCA(points []float64, dim int) (*PCA, error) {
	cov, mean, err := Covariance(points, dim)
	if err != nil {
		return nil, err
	}
	eig, err := matrix.SymEigen(cov)
	if err != nil {
		return nil, err
	}
	return &PCA{Mean: mean, Components: eig.Vectors, Variances: eig.Values}, nil
}

// Project maps p into the coordinate system of the first k principal
// components: out[j] = (p - mean)·component_j. It is the projection
// P'_{d_r} = P·Φ_{d_r} of the paper (after centering).
func (p *PCA) Project(point []float64, k int) []float64 {
	if k < 0 || k > p.Components.Cols {
		panic(fmt.Sprintf("stats: Project k=%d of %d components", k, p.Components.Cols))
	}
	dim := len(p.Mean)
	out := make([]float64, k)
	for j := 0; j < k; j++ {
		var s float64
		for i := 0; i < dim; i++ {
			s += (point[i] - p.Mean[i]) * p.Components.At(i, j)
		}
		out[j] = s
	}
	return out
}

// ProjectInto is Project writing into dst (len k), avoiding allocation in
// hot loops.
func (p *PCA) ProjectInto(point []float64, dst []float64) {
	dim := len(p.Mean)
	for j := range dst {
		var s float64
		for i := 0; i < dim; i++ {
			s += (point[i] - p.Mean[i]) * p.Components.At(i, j)
		}
		dst[j] = s
	}
}

// Reconstruct maps reduced coordinates (length k) back to the original
// space: mean + Σ coords[j]·component_j.
func (p *PCA) Reconstruct(coords []float64) []float64 {
	dim := len(p.Mean)
	out := make([]float64, dim)
	copy(out, p.Mean)
	for j, c := range coords {
		if c == 0 {
			continue
		}
		for i := 0; i < dim; i++ {
			out[i] += c * p.Components.At(i, j)
		}
	}
	return out
}

// ResidualSq returns the squared distance from point to its projection onto
// the first k components — i.e. ProjDist_r² in the paper's terminology (the
// information lost by keeping only k dimensions). It equals
// ‖p-mean‖² - ‖coords‖² computed stably by summing the trailing components.
func (p *PCA) ResidualSq(point []float64, k int) float64 {
	dim := len(p.Mean)
	var res float64
	for j := k; j < p.Components.Cols; j++ {
		var s float64
		for i := 0; i < dim; i++ {
			s += (point[i] - p.Mean[i]) * p.Components.At(i, j)
		}
		res += s * s
	}
	return res
}

// Residual returns ProjDist_r: the Euclidean distance from point to the
// k-dimensional principal subspace.
func (p *PCA) Residual(point []float64, k int) float64 {
	return sqrt(p.ResidualSq(point, k))
}

// RetainedSq returns ProjDist_e²: the squared norm of the projection onto
// the retained k-dimensional subspace (the information kept).
func (p *PCA) RetainedSq(point []float64, k int) float64 {
	dim := len(p.Mean)
	var res float64
	for j := 0; j < k; j++ {
		var s float64
		for i := 0; i < dim; i++ {
			s += (point[i] - p.Mean[i]) * p.Components.At(i, j)
		}
		res += s * s
	}
	return res
}

// MPE returns the Mean ProjDist_r Error (paper Definition 3.5): the average
// distance from each point to the k-dimensional principal subspace.
func (p *PCA) MPE(points []float64, k int) float64 {
	dim := len(p.Mean)
	if len(points) == 0 {
		return 0
	}
	n := len(points) / dim
	var sum float64
	for r := 0; r < n; r++ {
		sum += p.Residual(points[r*dim:(r+1)*dim], k)
	}
	return sum / float64(n)
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}

// ResidualEnergyFraction returns the fraction of total variance NOT
// captured by the first k principal components: (Σ_{j>=k} λ_j) / (Σ λ_j).
// It is the scale-invariant form of the Mean Projection Error used by the
// MMDR acceptance gate (see DESIGN.md: the paper's absolute MaxMPE = 0.05
// presupposes unit-scale data).
func (p *PCA) ResidualEnergyFraction(k int) float64 {
	var total, tail float64
	for j, v := range p.Variances {
		if v < 0 {
			v = 0
		}
		total += v
		if j >= k {
			tail += v
		}
	}
	if total <= 0 {
		return 0
	}
	return tail / total
}

// TailRMS returns sqrt(Σ_{j>=k} λ_j): the root-mean-square distance of the
// distribution to its k-dimensional principal subspace. It is the
// eigenvalue form of the Mean Projection Error (cheap to sweep over k) and
// is compared against the dataset's global RMS scale by the MMDR gates.
func (p *PCA) TailRMS(k int) float64 {
	var tail float64
	for j := k; j < len(p.Variances); j++ {
		if v := p.Variances[j]; v > 0 {
			tail += v
		}
	}
	return math.Sqrt(tail)
}
