package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mmdr/internal/matrix"
)

func TestMean(t *testing.T) {
	pts := []float64{1, 2, 3, 4, 5, 6} // 3 points in 2-d
	m, err := Mean(pts, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m[0] != 3 || m[1] != 4 {
		t.Fatalf("Mean = %v, want [3 4]", m)
	}
}

func TestMeanErrors(t *testing.T) {
	if _, err := Mean(nil, 2); err == nil {
		t.Fatal("expected error for empty input")
	}
	if _, err := Mean([]float64{1, 2, 3}, 2); err == nil {
		t.Fatal("expected error for ragged input")
	}
	if _, err := Mean([]float64{1}, 0); err == nil {
		t.Fatal("expected error for dim 0")
	}
}

func TestCovarianceKnown(t *testing.T) {
	// Points on the line y = x: covariance matrix [[v,v],[v,v]].
	pts := []float64{-1, -1, 0, 0, 1, 1}
	cov, mean, err := Covariance(pts, 2)
	if err != nil {
		t.Fatal(err)
	}
	if mean[0] != 0 || mean[1] != 0 {
		t.Fatalf("mean = %v", mean)
	}
	want := 2.0 / 3.0
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if math.Abs(cov.At(i, j)-want) > 1e-12 {
				t.Fatalf("cov = %v", cov)
			}
		}
	}
}

func TestCovarianceSinglePoint(t *testing.T) {
	cov, mean, err := Covariance([]float64{5, 7}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if mean[0] != 5 || mean[1] != 7 {
		t.Fatalf("mean = %v", mean)
	}
	for _, v := range cov.Data {
		if v != 0 {
			t.Fatalf("single-point covariance must be zero, got %v", cov)
		}
	}
}

// Property: covariance is symmetric PSD (all eigenvalues >= -eps).
func TestCovariancePSDProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dim := 1 + r.Intn(8)
		n := 2 + r.Intn(50)
		pts := make([]float64, n*dim)
		for i := range pts {
			pts[i] = r.NormFloat64() * 10
		}
		cov, _, err := Covariance(pts, dim)
		if err != nil {
			return false
		}
		if !cov.IsSymmetric(1e-9) {
			return false
		}
		eig, err := matrix.SymEigen(cov)
		if err != nil {
			return false
		}
		for _, v := range eig.Values {
			if v < -1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func genElongated(n int, rng *rand.Rand) []float64 {
	// 3-d data elongated along (1,1,0)/sqrt2 with small noise elsewhere.
	pts := make([]float64, n*3)
	for i := 0; i < n; i++ {
		tv := rng.NormFloat64() * 10
		pts[i*3] = tv/math.Sqrt2 + rng.NormFloat64()*0.1
		pts[i*3+1] = tv/math.Sqrt2 + rng.NormFloat64()*0.1
		pts[i*3+2] = rng.NormFloat64() * 0.1
	}
	return pts
}

func TestPCAFindsElongationDirection(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	pts := genElongated(500, rng)
	p, err := ComputePCA(pts, 3)
	if err != nil {
		t.Fatal(err)
	}
	// First component should align with (1,1,0)/sqrt2 (up to sign).
	c0 := p.Components.Col(0)
	align := math.Abs(c0[0]/math.Sqrt2 + c0[1]/math.Sqrt2)
	if align < 0.99 {
		t.Fatalf("first PC alignment = %v, want ~1 (PC=%v)", align, c0)
	}
	if p.Variances[0] < 10*p.Variances[1] {
		t.Fatalf("variances not dominated by first PC: %v", p.Variances)
	}
}

func TestProjectReconstructRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	dim := 5
	pts := make([]float64, 100*dim)
	for i := range pts {
		pts[i] = rng.NormFloat64()
	}
	p, err := ComputePCA(pts, dim)
	if err != nil {
		t.Fatal(err)
	}
	point := pts[:dim]
	coords := p.Project(point, dim) // full-rank: lossless
	back := p.Reconstruct(coords)
	for i := range point {
		if math.Abs(back[i]-point[i]) > 1e-9 {
			t.Fatalf("round trip failed: %v vs %v", back, point)
		}
	}
	// ProjectInto must agree with Project.
	dst := make([]float64, 3)
	p.ProjectInto(point, dst)
	c3 := p.Project(point, 3)
	for i := range dst {
		if dst[i] != c3[i] {
			t.Fatalf("ProjectInto disagrees with Project: %v vs %v", dst, c3)
		}
	}
}

// Property: Pythagoras — ResidualSq(k) + RetainedSq(k) == ‖p-mean‖².
func TestResidualRetainedPythagoras(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dim := 2 + r.Intn(6)
		n := dim + 2 + r.Intn(30)
		pts := make([]float64, n*dim)
		for i := range pts {
			pts[i] = r.NormFloat64() * 5
		}
		p, err := ComputePCA(pts, dim)
		if err != nil {
			return false
		}
		k := r.Intn(dim + 1)
		point := pts[:dim]
		var total float64
		for i := 0; i < dim; i++ {
			d := point[i] - p.Mean[i]
			total += d * d
		}
		got := p.ResidualSq(point, k) + p.RetainedSq(point, k)
		return math.Abs(got-total) <= 1e-8*(1+total)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestMPEMonotonicInK(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	dim := 6
	pts := make([]float64, 200*dim)
	for i := range pts {
		pts[i] = rng.NormFloat64()
	}
	p, err := ComputePCA(pts, dim)
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(1)
	for k := 0; k <= dim; k++ {
		m := p.MPE(pts, k)
		if m > prev+1e-9 {
			t.Fatalf("MPE not monotone non-increasing at k=%d: %v > %v", k, m, prev)
		}
		prev = m
	}
	if last := p.MPE(pts, dim); last > 1e-9 {
		t.Fatalf("MPE at full rank = %v, want ~0", last)
	}
}

func TestMPEEmptyPoints(t *testing.T) {
	p := &PCA{Mean: []float64{0, 0}, Components: matrix.Identity(2), Variances: []float64{1, 1}}
	if got := p.MPE(nil, 1); got != 0 {
		t.Fatalf("MPE(nil) = %v", got)
	}
}

func BenchmarkCovariance64(b *testing.B) {
	rng := rand.New(rand.NewSource(16))
	dim := 64
	pts := make([]float64, 1000*dim)
	for i := range pts {
		pts[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Covariance(pts, dim); err != nil {
			b.Fatal(err)
		}
	}
}

func TestResidualEnergyFractionAndTailRMS(t *testing.T) {
	p := &PCA{Variances: []float64{4, 3, 2, 1}}
	if f := p.ResidualEnergyFraction(0); f != 1 {
		t.Fatalf("fraction(0) = %v", f)
	}
	if f := p.ResidualEnergyFraction(4); f != 0 {
		t.Fatalf("fraction(4) = %v", f)
	}
	if f := p.ResidualEnergyFraction(2); math.Abs(f-0.3) > 1e-12 {
		t.Fatalf("fraction(2) = %v, want 0.3", f)
	}
	if r := p.TailRMS(2); math.Abs(r-math.Sqrt(3)) > 1e-12 {
		t.Fatalf("TailRMS(2) = %v, want sqrt(3)", r)
	}
	// Negative (numerical noise) eigenvalues are clamped.
	pn := &PCA{Variances: []float64{1, -1e-18}}
	if f := pn.ResidualEnergyFraction(1); f != 0 {
		t.Fatalf("clamped fraction = %v", f)
	}
	empty := &PCA{}
	if empty.ResidualEnergyFraction(0) != 0 || empty.TailRMS(0) != 0 {
		t.Fatal("empty PCA should report zero residuals")
	}
}
