package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mmdr/internal/datagen"
	"mmdr/internal/dataset"
	"mmdr/internal/iostat"
)

// correlated builds a normalized Appendix-A dataset.
func correlated(t *testing.T, n, dim, clusters, sdim int, ratio float64, seed int64) (*dataset.Dataset, []int) {
	t.Helper()
	cfg := datagen.CorrelatedConfig{N: n, Dim: dim, NumClusters: clusters, SDim: sdim, VarRatio: ratio, Seed: seed}
	ds, labels, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	datagen.Normalize(ds)
	return ds, labels
}

func TestDefaultParamsMatchTable1(t *testing.T) {
	p := DefaultParams()
	if p.Beta != 0.1 || p.MaxMPE != 0.05 || p.MaxEC != 10 || p.MaxDim != 20 ||
		p.Epsilon != 0.005 || p.LookupK != 3 {
		t.Fatalf("defaults diverge from Table 1: %+v", p)
	}
}

func TestReduceEmptyDataset(t *testing.T) {
	if _, err := New(Params{}).Reduce(dataset.New(0, 4)); err == nil {
		t.Fatal("expected error")
	}
	if _, err := (&Scalable{}).Reduce(dataset.New(0, 4)); err == nil {
		t.Fatal("expected error")
	}
}

func TestReduceRecoversPlantedSubspaces(t *testing.T) {
	ds, _ := correlated(t, 1200, 16, 3, 2, 25, 61)
	m := New(Params{Seed: 1, MaxEC: 6})
	if m.Name() != "MMDR" {
		t.Fatal("name")
	}
	res, err := m.Reduce(ds)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(ds.N); err != nil {
		t.Fatal(err)
	}
	st := res.Summarize()
	if st.NumSubspaces == 0 {
		t.Fatal("no subspaces discovered")
	}
	// Planted clusters are 2-d: the member-weighted retained dim must stay
	// small and the majority of points must land in subspaces.
	if st.AvgDim > 8 {
		t.Fatalf("avg retained dim %v too high for 2-d planted clusters", st.AvgDim)
	}
	if st.NumOutliers > ds.N/3 {
		t.Fatalf("too many outliers: %d / %d", st.NumOutliers, ds.N)
	}
	// Subspaces must represent their members well.
	for _, s := range res.Subspaces {
		if s.MPE > 0.1 {
			t.Fatalf("subspace %d MPE %v too high", s.ID, s.MPE)
		}
		if s.MaxRadius <= 0 {
			t.Fatalf("subspace %d has non-positive radius", s.ID)
		}
		if s.CovInv == nil || s.MahaRadius <= 0 {
			t.Fatalf("subspace %d missing auxiliary shape info", s.ID)
		}
	}
}

func TestReduceForcedDim(t *testing.T) {
	ds, _ := correlated(t, 600, 12, 2, 2, 20, 62)
	res, err := New(Params{Seed: 2, ForcedDim: 4, MaxEC: 4}).Reduce(ds)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Subspaces {
		if s.Dr != 4 {
			t.Fatalf("ForcedDim violated: Dr = %d", s.Dr)
		}
	}
}

func TestReduceOutlierSeparation(t *testing.T) {
	// Correlated cluster plus uniform noise: the noise must be classified
	// as outliers by the β threshold.
	cfg := datagen.CorrelatedConfig{N: 800, Dim: 10, NumClusters: 2, SDim: 2, VarRatio: 30, Seed: 63}
	ds, _, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	noise := datagen.Uniform(80, 10, 64)
	for i := 0; i < noise.N; i++ {
		p := noise.Point(i)
		for j := range p {
			p[j] = p[j]*60 - 30 // spread noise across the data range
		}
		ds.Append(p)
	}
	datagen.Normalize(ds)
	// Xi is set high enough that every injected noise point can be
	// evicted (the default ξ = 0.005 caps evictions at 0.5% of N).
	res, err := New(Params{Seed: 3, MaxEC: 5, Xi: 0.25}).Reduce(ds)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(ds.N); err != nil {
		t.Fatal(err)
	}
	if len(res.Outliers) == 0 {
		t.Fatal("expected some outliers from injected noise")
	}
	// Members kept in subspaces must satisfy the β bound (the eviction cap
	// was not hit, so every candidate left).
	for _, s := range res.Subspaces {
		for _, mIdx := range s.Members {
			if r := s.Residual(ds.Point(mIdx)); r > 0.1+1e-9 {
				t.Fatalf("member residual %v exceeds beta", r)
			}
		}
	}

	// With the Table 1 default ξ, β-based evictions are capped near 0.5%
	// of N (structural outliers from tiny clusters may add a few more).
	resDefault, err := New(Params{Seed: 3, MaxEC: 5}).Reduce(ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(resDefault.Outliers) > ds.N/10 {
		t.Fatalf("default xi left %d outliers of %d — cap not applied", len(resDefault.Outliers), ds.N)
	}
}

func TestReduceDeterministic(t *testing.T) {
	ds, _ := correlated(t, 400, 10, 2, 2, 20, 65)
	a, err := New(Params{Seed: 4}).Reduce(ds)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(Params{Seed: 4}).Reduce(ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Subspaces) != len(b.Subspaces) || len(a.Outliers) != len(b.Outliers) {
		t.Fatal("nondeterministic structure")
	}
	for i := range a.Subspaces {
		if a.Subspaces[i].Dr != b.Subspaces[i].Dr ||
			len(a.Subspaces[i].Members) != len(b.Subspaces[i].Members) {
			t.Fatal("nondeterministic subspaces")
		}
	}
}

// The multi-level recursion must engage on data where low subspace
// dimensionality is insufficient: clusters that only separate in higher
// dimensions get accepted at sdim > initial SDim.
func TestMultiLevelRecursionEngages(t *testing.T) {
	// Clusters with 6 remained dims: a 2-d subspace cannot reach MaxMPE.
	ds, _ := correlated(t, 900, 24, 3, 6, 25, 66)
	res, err := New(Params{Seed: 5, SDim: 2, MaxEC: 5}).Reduce(ds)
	if err != nil {
		t.Fatal(err)
	}
	maxDr := 0
	for _, s := range res.Subspaces {
		if s.Dr > maxDr {
			maxDr = s.Dr
		}
	}
	if maxDr < 3 {
		t.Fatalf("recursion never raised dimensionality: max Dr = %d", maxDr)
	}
}

func TestScalableMatchesInMemoryQuality(t *testing.T) {
	ds, _ := correlated(t, 1500, 12, 3, 2, 25, 67)
	plain, err := New(Params{Seed: 6, MaxEC: 5}).Reduce(ds)
	if err != nil {
		t.Fatal(err)
	}
	sc := &Scalable{Params: Params{Seed: 6, MaxEC: 5, Epsilon: 0.2}}
	if sc.Name() != "MMDR-scalable" {
		t.Fatal("name")
	}
	streamed, err := sc.Reduce(ds)
	if err != nil {
		t.Fatal(err)
	}
	if err := streamed.Validate(ds.N); err != nil {
		t.Fatal(err)
	}
	ps, ss := plain.Summarize(), streamed.Summarize()
	// Streamed must keep comparable coverage (within 20% outlier gap) and
	// similar dimensionality.
	pOut := float64(ps.NumOutliers) / float64(ds.N)
	sOut := float64(ss.NumOutliers) / float64(ds.N)
	if sOut > pOut+0.2 {
		t.Fatalf("scalable outlier rate %v much worse than plain %v", sOut, pOut)
	}
	if math.Abs(ss.AvgDim-ps.AvgDim) > 6 {
		t.Fatalf("avg dims diverge: %v vs %v", ss.AvgDim, ps.AvgDim)
	}
}

func TestScalableCountsSingleScan(t *testing.T) {
	ds, _ := correlated(t, 2000, 10, 2, 2, 20, 68)
	var ctr iostat.Counter
	sc := &Scalable{Params: Params{Seed: 7, Epsilon: 0.25, Counter: &ctr}}
	if _, err := sc.Reduce(ds); err != nil {
		t.Fatal(err)
	}
	want := iostat.PagesForPoints(ds.N, ds.Dim)
	if ctr.PageReads != want {
		t.Fatalf("scalable MMDR read %d pages, want exactly one scan = %d", ctr.PageReads, want)
	}
}

func TestChooseDrRespectsBounds(t *testing.T) {
	ds, _ := correlated(t, 500, 30, 1, 2, 25, 69)
	res, err := New(Params{Seed: 8, MaxDim: 5, MaxEC: 3}).Reduce(ds)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Subspaces {
		if s.Dr < 1 || s.Dr > 5 {
			t.Fatalf("Dr = %d outside [1, MaxDim=5]", s.Dr)
		}
	}
}

// Property: across random workload configurations, Reduce always produces
// a structurally valid result with bounded dimensionalities.
func TestReduceAlwaysValidProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(70))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		cfg := datagen.CorrelatedConfig{
			N:           200 + r.Intn(500),
			Dim:         4 + r.Intn(20),
			NumClusters: 1 + r.Intn(4),
			SDim:        1 + r.Intn(3),
			VarRatio:    4 + r.Float64()*30,
			ScaleDecay:  0.6 + r.Float64()*0.4,
			Seed:        seed,
		}
		if cfg.SDim > cfg.Dim {
			cfg.SDim = cfg.Dim
		}
		ds, _, err := cfg.Generate()
		if err != nil {
			return false
		}
		datagen.Normalize(ds)
		res, err := New(Params{Seed: seed, MaxDim: 8}).Reduce(ds)
		if err != nil {
			return false
		}
		if err := res.Validate(ds.N); err != nil {
			return false
		}
		for _, s := range res.Subspaces {
			if s.Dr < 1 || s.Dr > 8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}
