package core

import (
	"sort"

	"mmdr/internal/dataset"
	"mmdr/internal/stats"
)

// mergeSampleCap bounds how many member points a cross-fit test examines;
// the residual-energy fraction is a mean, so a sample suffices.
const mergeSampleCap = 48

// mergeEllipsoids coalesces GE output fragments that describe the same
// underlying ellipsoid. Elliptical k-means always produces MaxEC non-empty
// partitions, so a single coherent cluster that needed a high subspace
// dimensionality gets shattered into many small pieces on the way up the
// recursion (the same reason the paper's Scalable MMDR runs a merge pass
// over its Ellipsoid Array). Two ellipsoids merge when each one's members
// are represented by the other's subspace within the MaxMPE energy budget.
func mergeEllipsoids(ds *dataset.Dataset, ellipsoids []ellipsoid, p Params, gscale float64) ([]ellipsoid, error) {
	if len(ellipsoids) < 2 {
		return ellipsoids, nil
	}
	// Largest first: fragments get absorbed into the dominant piece.
	sort.Slice(ellipsoids, func(a, b int) bool {
		return len(ellipsoids[a].members) > len(ellipsoids[b].members)
	})
	live := make([]bool, len(ellipsoids))
	for i := range live {
		live[i] = true
	}
	for i := 0; i < len(ellipsoids); i++ {
		if !live[i] {
			continue
		}
		for j := i + 1; j < len(ellipsoids); j++ {
			if !live[j] {
				continue
			}
			if !fitsIn(ds, ellipsoids[j], ellipsoids[i], p, gscale) ||
				!fitsIn(ds, ellipsoids[i], ellipsoids[j], p, gscale) {
				continue
			}
			merged, err := refitEllipsoid(ds,
				append(append([]int(nil), ellipsoids[i].members...), ellipsoids[j].members...), p, gscale)
			if err != nil {
				return nil, err
			}
			ellipsoids[i] = merged
			live[j] = false
			// The absorbed shape changed; re-test earlier candidates
			// against the new, larger ellipsoid.
			j = i
		}
	}
	out := ellipsoids[:0]
	for i, e := range ellipsoids {
		if live[i] {
			out = append(out, e)
		}
	}
	return out, nil
}

// fitsIn reports whether a's members are represented by b's subspace (at
// b's accepted dimensionality) within the MaxMPE residual-energy fraction.
// Residuals are measured against b's affine subspace, so both orientation
// and centroid offsets count.
// The test dimensionality is capped at MaxDim: Dimensionality Optimization
// never retains more, so "fits at full dimension" (trivially true) must not
// trigger merges.
func fitsIn(ds *dataset.Dataset, a, b ellipsoid, p Params, gscale float64) bool {
	members := a.members
	stride := 1
	if len(members) > mergeSampleCap {
		stride = len(members) / mergeSampleCap
	}
	sdim := b.sdim
	if sdim > p.MaxDim {
		sdim = p.MaxDim
	}
	if sdim > ds.Dim {
		sdim = ds.Dim
	}
	var resid float64
	n := 0
	for i := 0; i < len(members); i += stride {
		resid += b.pca.ResidualSq(ds.Point(members[i]), sdim)
		n++
	}
	if n == 0 {
		return true
	}
	rms := sqrtNonNeg(resid / float64(n))
	return rms <= p.MaxMPE*gscale
}

// refitEllipsoid rebuilds an ellipsoid over the merged member set: new
// local PCA and the smallest doubling of SDim whose subspace meets MaxMPE.
func refitEllipsoid(ds *dataset.Dataset, members []int, p Params, gscale float64) (ellipsoid, error) {
	memberData := ds.Subset(members)
	pca, err := stats.ComputePCA(memberData.Data, ds.Dim)
	if err != nil {
		return ellipsoid{}, err
	}
	sdim := p.SDim
	if sdim > ds.Dim {
		sdim = ds.Dim
	}
	return ellipsoid{
		members: members,
		sdim:    pickAcceptedDim(pca, memberData, sdim, p, gscale),
		pca:     pca,
	}, nil
}
